#!/usr/bin/env python3
"""Fail on dead intra-repo links in the project's markdown files.

Checks every [text](target) and bare reference-style link in *.md files
tracked in the repository. Targets that are URLs (scheme://, mailto:) or
pure in-page anchors (#...) are ignored; everything else must resolve to
an existing file or directory relative to the markdown file (or to the
repo root when the link starts with '/'). A '#anchor' on a link to a
markdown file must additionally match a heading in the target file
(GitHub slug rules: lowercased, punctuation stripped, spaces to dashes),
so section links can't silently rot when headings are renamed.

Usage: scripts/check_md_links.py [root]      (default: repo root)
Exit status: 0 when all links resolve, 1 otherwise (dead links listed).
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_DIRS = {".git", "build", "trace_out", ".github"}


def md_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            yield path


def is_external(target: str) -> bool:
    return (
        "://" in target
        or target.startswith("mailto:")
        or target.startswith("#")
    )


def heading_slugs(md: Path) -> set:
    """GitHub-style anchor slugs of every heading in `md`."""
    slugs = set()
    text = re.sub(r"```.*?```", "", md.read_text(encoding="utf-8"),
                  flags=re.DOTALL)
    for line in text.splitlines():
        m = re.match(r"#{1,6}\s+(.*\S)\s*$", line)
        if not m:
            continue
        # Strip inline code/links, lowercase, drop punctuation, dash spaces.
        heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", m.group(1))
        heading = heading.replace("`", "")
        slug = re.sub(r"[^\w\- ]", "", heading.lower()).strip()
        slugs.add(re.sub(r"\s+", "-", slug))
    return slugs


def check(root: Path):
    dead = []
    for md in md_files(root):
        text = md.read_text(encoding="utf-8")
        # Ignore links inside fenced code blocks (CLI examples etc.).
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if is_external(target):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            if path_part.startswith("/"):
                resolved = root / path_part.lstrip("/")
            else:
                resolved = md.parent / path_part
            if not resolved.exists():
                dead.append((md.relative_to(root), target))
                continue
            # Validate the heading anchor on links into markdown files.
            if "#" in target and resolved.is_file() and resolved.suffix == ".md":
                anchor = target.split("#", 1)[1]
                if anchor and anchor not in heading_slugs(resolved):
                    dead.append((md.relative_to(root),
                                 f"{target} (no such heading)"))
    return dead


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent
    dead = check(root)
    for md, target in dead:
        print(f"DEAD LINK: {md}: ({target})")
    if dead:
        print(f"{len(dead)} dead intra-repo link(s).")
        return 1
    print(f"All intra-repo markdown links resolve ({root}).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
