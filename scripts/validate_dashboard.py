#!/usr/bin/env python3
"""Validate a single-file run dashboard (report/dashboard.h output).

Structural checks — no browser needed:

  - the file is non-empty UTF-8 HTML with the run header
  - it is fully self-contained: no external stylesheet/script/image
    references (every href/src is either absent or an in-page anchor)
  - every inline <svg> block parses as well-formed XML
  - at least 3 SVG panels (tier timelines, VLRT strip, histogram)
  - the required sections are present: per-tier panels, VLRT windows,
    latency histogram, correlation engine verdict, registry counters
  - the correlation verdict names one of the three propagation classes
  - incident surface consistency: a dashboard that carries the obs
    incident table must also carry the fire-time markers and a
    machine-readable incident-data island that parses as JSON with the
    documented fields (and vice versa — the three appear together or
    not at all, the conditional-block byte-identity contract)

Usage: scripts/validate_dashboard.py [--expect-incidents] FILE.dashboard.html [...]
  --expect-incidents   additionally fail any file WITHOUT an incident
                       section (CI uses this on a run known to fire)
Exit status: 0 when every file validates, 1 otherwise.
"""

import json
import re
import sys
import xml.etree.ElementTree as ET

REQUIRED = [
    "<h1>ntier-ctqo run:",
    "<h3>VLRT windows",
    "<h3>Latency histogram",
    "<h3>Correlation engine</h3>",
    "queue-depth propagation:",
    "Registry counters",
]

EXTERNAL_REF = re.compile(r"""(?:href|src)\s*=\s*['"](?!#)[^'"]+['"]""", re.I)

INCIDENT_ISLAND = re.compile(
    r'<script type="application/json" id="incident-data">(.*?)</script>', re.S)
INCIDENT_FIELDS = ("detector", "series", "kind", "severity", "fired_s",
                   "cleared_s", "value_at_fire", "stat_at_fire", "peak_value")


def validate_incidents(path: str, html: str, errors: list,
                       expect_incidents: bool) -> None:
    """The incident table, SVG markers, and JSON island come as one unit."""
    island = INCIDENT_ISLAND.search(html)
    has_table = "<h3>Incidents (" in html
    has_markers = "class='incident'" in html
    if expect_incidents and island is None:
        errors.append(f"{path}: --expect-incidents but no incident-data island")
    if island is None and not has_table and not has_markers:
        return  # incident-free dashboard: the whole section is absent
    if island is None or not has_table or not has_markers:
        errors.append(f"{path}: partial incident section (island={island is not None} "
                      f"table={has_table} markers={has_markers})")
    if island is None:
        return
    try:
        incidents = json.loads(island.group(1))
    except ValueError as e:
        errors.append(f"{path}: incident-data island is not valid JSON: {e}")
        return
    if not isinstance(incidents, list) or not incidents:
        errors.append(f"{path}: incident-data island is not a non-empty list")
        return
    for i, inc in enumerate(incidents):
        missing = [k for k in INCIDENT_FIELDS if k not in inc]
        if missing:
            errors.append(f"{path}: incident[{i}] missing fields {missing}")


def validate(path: str, errors: list, expect_incidents: bool = False) -> None:
    before = len(errors)
    try:
        with open(path, encoding="utf-8") as f:
            html = f.read()
    except (OSError, UnicodeDecodeError) as e:
        errors.append(f"{path}: unreadable: {e}")
        return

    if not html.lstrip().lower().startswith("<!doctype html"):
        errors.append(f"{path}: missing <!doctype html> prologue")
    for token in REQUIRED:
        if token not in html:
            errors.append(f"{path}: missing required section {token!r}")
    if not re.search(r"\b(upstream|downstream|absent)\b", html):
        errors.append(f"{path}: no propagation verdict (upstream/downstream/absent)")
    for m in EXTERNAL_REF.finditer(html):
        errors.append(f"{path}: external reference breaks self-containment: {m.group(0)}")
    validate_incidents(path, html, errors, expect_incidents)

    svgs = re.findall(r"<svg\b.*?</svg>", html, re.S)
    if len(svgs) < 3:
        errors.append(f"{path}: only {len(svgs)} <svg> panels (expected >= 3)")
    for i, svg in enumerate(svgs):
        try:
            ET.fromstring(svg)
        except ET.ParseError as e:
            errors.append(f"{path}: svg[{i}] is not well-formed XML: {e}")

    if len(errors) == before:
        print(f"OK: {path}: {len(html)} bytes, {len(svgs)} SVG panels")


def main() -> int:
    argv = sys.argv[1:]
    expect_incidents = "--expect-incidents" in argv
    paths = [a for a in argv if a != "--expect-incidents"]
    if not paths:
        print(__doc__)
        return 2
    errors = []
    for path in paths:
        validate(path, errors, expect_incidents)
    for e in errors:
        print(f"INVALID: {e}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
