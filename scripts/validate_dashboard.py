#!/usr/bin/env python3
"""Validate a single-file run dashboard (report/dashboard.h output).

Structural checks — no browser needed:

  - the file is non-empty UTF-8 HTML with the run header
  - it is fully self-contained: no external stylesheet/script/image
    references (every href/src is either absent or an in-page anchor)
  - every inline <svg> block parses as well-formed XML
  - at least 3 SVG panels (tier timelines, VLRT strip, histogram)
  - the required sections are present: per-tier panels, VLRT windows,
    latency histogram, correlation engine verdict, registry counters
  - the correlation verdict names one of the three propagation classes

Usage: scripts/validate_dashboard.py FILE.dashboard.html [...]
Exit status: 0 when every file validates, 1 otherwise.
"""

import re
import sys
import xml.etree.ElementTree as ET

REQUIRED = [
    "<h1>ntier-ctqo run:",
    "<h3>VLRT windows",
    "<h3>Latency histogram",
    "<h3>Correlation engine</h3>",
    "queue-depth propagation:",
    "Registry counters",
]

EXTERNAL_REF = re.compile(r"""(?:href|src)\s*=\s*['"](?!#)[^'"]+['"]""", re.I)


def validate(path: str, errors: list) -> None:
    before = len(errors)
    try:
        with open(path, encoding="utf-8") as f:
            html = f.read()
    except (OSError, UnicodeDecodeError) as e:
        errors.append(f"{path}: unreadable: {e}")
        return

    if not html.lstrip().lower().startswith("<!doctype html"):
        errors.append(f"{path}: missing <!doctype html> prologue")
    for token in REQUIRED:
        if token not in html:
            errors.append(f"{path}: missing required section {token!r}")
    if not re.search(r"\b(upstream|downstream|absent)\b", html):
        errors.append(f"{path}: no propagation verdict (upstream/downstream/absent)")
    for m in EXTERNAL_REF.finditer(html):
        errors.append(f"{path}: external reference breaks self-containment: {m.group(0)}")

    svgs = re.findall(r"<svg\b.*?</svg>", html, re.S)
    if len(svgs) < 3:
        errors.append(f"{path}: only {len(svgs)} <svg> panels (expected >= 3)")
    for i, svg in enumerate(svgs):
        try:
            ET.fromstring(svg)
        except ET.ParseError as e:
            errors.append(f"{path}: svg[{i}] is not well-formed XML: {e}")

    if len(errors) == before:
        print(f"OK: {path}: {len(html)} bytes, {len(svgs)} SVG panels")


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    errors = []
    for path in sys.argv[1:]:
        validate(path, errors)
    for e in errors:
        print(f"INVALID: {e}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
