#!/usr/bin/env python3
"""Run the figure/extension bench binaries and collect their [perf] lines.

Every scenario bench prints one final line

    [perf] bench=<name> events=<N> wall_s=<S> events_per_s=<R>

summing the simulation events it executed across all of its runs
(bench/bench_util.h, class BenchPerf). This script runs each binary,
scrapes that line, and writes one aggregate JSON report — the repo's
engine-throughput record (BENCH_ntier.json, uploaded as a CI artifact).
Schema ntier.bench/5 adds the service-graph study
(ext_graph_topologies) to the roster and a top-level "graph" section
scraped from its machine-readable `[graph]` lines: the diamond CTQO
verdict, the deep-chain drop counts, the hedging-crossover operating
points, and the chain-equivalence match bit (the byte-identity contract
of docs/TOPOLOGY.md). Schema ntier.bench/6 adds the online-detection
study (ext_incident_detection) and a top-level "obs" section scraped
from its `[obs]` lines: detection latency vs. the first VLRT,
precision/recall against the offline CTQO episodes, the retroactive
flight-dump window, and the online-vs-verdict agreement bits
(docs/OBSERVABILITY.md). Schema ntier.bench/7 adds the protocol-matrix
study (ext_protocol_matrix) and a top-level "proto" section scraped
from its `[proto]` lines: per-point visible/hidden/absent CTQO verdicts
across protocol × workload × NX, plus the headline expectations
(fixed3s visible, linux_modern hidden, erpc absent — docs/PROTOCOLS.md)
pulled out as their own pass/fail. Schema ntier.bench/8 adds the
"micro_wheel" section for the hierarchical timing-wheel engine
(bench/micro_engine.cc): dense self-rescheduling timer throughput of
the wheel vs. the indexed-heap predecessor (wheel_over_heap_dense
speedup), the wheel's cancel-heavy churn rate, and the beyond-horizon
FarTimer fallback rate. Discovery is automatic, so the schema tag is
the record that the roster — and therefore the totals — changed.

The report also carries three microbench sections:

  * "micro_engine" — the event-queue CancelHeavy lineage comparison
    (bench/micro_engine.cc): items/s of the old lazy-cancellation
    priority_queue vs. a replica of the PR-5 indexed 4-ary heap, plus
    the indexed_over_lazy speedup ratio.
  * "micro_wheel" — the timing-wheel generation (bench/micro_engine.cc):
    WheelDense/HeapDense events/s, WheelCancelHeavy items/s, and
    FarTimer events/s, plus the wheel_over_heap_dense speedup ratio.
  * "micro_hotpath" — the allocation-discipline comparison
    (bench/micro_hotpath.cc): events/s of the pre-pooling substrate
    (shared_ptr requests/contexts + std::function events + per-push
    handle control block) vs. the current slab-pooled/InlineFn engine,
    plus the pooled_over_legacy speedup ratio (expected >= 2x).

Usage: scripts/run_benches.py [--build-dir build] [--out BENCH_ntier.json]
                              [--only SUBSTR] [--list] [--baseline FILE]

  --build-dir DIR   cmake build tree containing bench/ (default: build)
  --out FILE        output JSON path (default: BENCH_ntier.json)
  --only SUBSTR     run only benches whose name contains SUBSTR
  --list            print the discovered bench binaries and exit
  --baseline FILE   committed BENCH_ntier.json to compare against: any
                    scenario bench or microbench losing more than 25%
                    events/s vs. the baseline fails the run (CI gate)

Exit status: 0 when every selected bench ran, produced a [perf] line
(microbench sections parsed), and no baseline regression was detected;
1 otherwise (the report still records the failures).
"""

import argparse
import json
import os
import re
import subprocess
import sys

# google-benchmark microbenches have their own output format.
SKIP = {"micro_engine", "micro_hotpath"}

PERF_RE = re.compile(
    r"^\[perf\] bench=(?P<name>\S+) events=(?P<events>\d+) "
    r"wall_s=(?P<wall>[0-9.]+) events_per_s=(?P<rate>[0-9.]+)\s*$",
    re.MULTILINE,
)

# Machine-readable study lines from bench/ext_graph_topologies:
#   [graph] section=<name> key=value ...
GRAPH_RE = re.compile(r"^\[graph\]\s+(?P<kv>.*\S)\s*$", re.MULTILINE)

# Machine-readable study lines from bench/ext_incident_detection:
#   [obs] section=<name> key=value ...
OBS_RE = re.compile(r"^\[obs\]\s+(?P<kv>.*\S)\s*$", re.MULTILINE)

# Machine-readable study lines from bench/ext_protocol_matrix:
#   [proto] section=<name> key=value ...
PROTO_RE = re.compile(r"^\[proto\]\s+(?P<kv>.*\S)\s*$", re.MULTILINE)


def parse_kv_lines(regex: re.Pattern, stdout: str) -> list:
    """Tagged key=value lines as dicts (numbers coerced)."""
    records = []
    for m in regex.finditer(stdout):
        rec = {}
        for tok in m.group("kv").split():
            if "=" not in tok:
                continue
            key, val = tok.split("=", 1)
            try:
                rec[key] = int(val)
            except ValueError:
                try:
                    rec[key] = float(val)
                except ValueError:
                    rec[key] = val
        records.append(rec)
    return records


def discover(bench_dir: str) -> list:
    names = []
    for entry in sorted(os.listdir(bench_dir)):
        path = os.path.join(bench_dir, entry)
        if entry in SKIP or entry.startswith("."):
            continue
        if os.path.isfile(path) and os.access(path, os.X_OK):
            names.append(entry)
    return names


def run_one(bench_dir: str, name: str) -> dict:
    path = os.path.join(bench_dir, name)
    try:
        proc = subprocess.run(
            [path], capture_output=True, text=True, timeout=1800, check=False
        )
    except subprocess.TimeoutExpired:
        return {"name": name, "ok": False, "error": "timeout"}
    if proc.returncode != 0:
        return {"name": name, "ok": False, "error": f"exit {proc.returncode}"}
    m = None
    for m in PERF_RE.finditer(proc.stdout):
        pass  # keep the last match (the binary's final summary line)
    if m is None:
        return {"name": name, "ok": False, "error": "no [perf] line in output"}
    result = {
        "name": m.group("name"),
        "ok": True,
        "events": int(m.group("events")),
        "wall_s": float(m.group("wall")),
        "events_per_s": float(m.group("rate")),
    }
    graph = parse_kv_lines(GRAPH_RE, proc.stdout)
    if graph:
        result["graph"] = graph
    obs = parse_kv_lines(OBS_RE, proc.stdout)
    if obs:
        result["obs"] = obs
    proto = parse_kv_lines(PROTO_RE, proc.stdout)
    if proto:
        result["proto"] = proto
    return result


def run_micro_engine(bench_dir: str) -> dict:
    """Old-vs-new event-queue comparison from the CancelHeavy benchmarks."""
    path = os.path.join(bench_dir, "micro_engine")
    if not (os.path.isfile(path) and os.access(path, os.X_OK)):
        return {"ok": False, "error": "micro_engine binary not found"}
    try:
        proc = subprocess.run(
            [path, "--benchmark_filter=CancelHeavy", "--benchmark_format=json"],
            capture_output=True, text=True, timeout=600, check=False,
        )
    except subprocess.TimeoutExpired:
        return {"ok": False, "error": "timeout"}
    if proc.returncode != 0:
        return {"ok": False, "error": f"exit {proc.returncode}"}
    try:
        data = json.loads(proc.stdout)
    except ValueError:
        return {"ok": False, "error": "unparsable google-benchmark JSON"}
    rates = {}
    for b in data.get("benchmarks", []):
        name = b.get("name", "")
        rate = b.get("items_per_second")
        if "CancelHeavy_LazyPQ" in name:
            rates["lazy_pq_items_per_s"] = rate
        elif "CancelHeavy_IndexedHeap" in name:
            rates["indexed_heap_items_per_s"] = rate
    lazy = rates.get("lazy_pq_items_per_s")
    indexed = rates.get("indexed_heap_items_per_s")
    if not lazy or not indexed:
        return {"ok": False, "error": "CancelHeavy benchmarks missing from output"}
    return {
        "ok": True,
        "lazy_pq_items_per_s": round(lazy),
        "indexed_heap_items_per_s": round(indexed),
        "indexed_over_lazy": round(indexed / lazy, 3),
    }


def run_micro_wheel(bench_dir: str) -> dict:
    """Timing-wheel generation: dense/cancel-heavy/far-timer rates."""
    path = os.path.join(bench_dir, "micro_engine")
    if not (os.path.isfile(path) and os.access(path, os.X_OK)):
        return {"ok": False, "error": "micro_engine binary not found"}
    try:
        proc = subprocess.run(
            [path, "--benchmark_filter=Dense|WheelCancelHeavy|FarTimer",
             "--benchmark_format=json"],
            capture_output=True, text=True, timeout=600, check=False,
        )
    except subprocess.TimeoutExpired:
        return {"ok": False, "error": "timeout"}
    if proc.returncode != 0:
        return {"ok": False, "error": f"exit {proc.returncode}"}
    try:
        data = json.loads(proc.stdout)
    except ValueError:
        return {"ok": False, "error": "unparsable google-benchmark JSON"}
    rates = {}
    for b in data.get("benchmarks", []):
        name = b.get("name", "")
        rate = b.get("items_per_second")
        if "WheelDense" in name:
            rates["wheel_dense_events_per_s"] = rate
        elif "HeapDense" in name:
            rates["heap_dense_events_per_s"] = rate
        elif "WheelCancelHeavy" in name:
            rates["wheel_cancel_heavy_items_per_s"] = rate
        elif "FarTimer" in name:
            rates["far_timer_events_per_s"] = rate
    wheel = rates.get("wheel_dense_events_per_s")
    heap = rates.get("heap_dense_events_per_s")
    cancel = rates.get("wheel_cancel_heavy_items_per_s")
    far = rates.get("far_timer_events_per_s")
    if not wheel or not heap or not cancel or not far:
        return {"ok": False, "error": "wheel benchmarks missing from output"}
    return {
        "ok": True,
        "wheel_dense_events_per_s": round(wheel),
        "heap_dense_events_per_s": round(heap),
        "wheel_cancel_heavy_items_per_s": round(cancel),
        "far_timer_events_per_s": round(far),
        "wheel_over_heap_dense": round(wheel / heap, 3),
    }


def run_micro_hotpath(bench_dir: str) -> dict:
    """Pooled-vs-legacy allocation comparison from the HotPath benchmarks."""
    path = os.path.join(bench_dir, "micro_hotpath")
    if not (os.path.isfile(path) and os.access(path, os.X_OK)):
        return {"ok": False, "error": "micro_hotpath binary not found"}
    try:
        proc = subprocess.run(
            [path, "--benchmark_filter=HotPath", "--benchmark_format=json"],
            capture_output=True, text=True, timeout=600, check=False,
        )
    except subprocess.TimeoutExpired:
        return {"ok": False, "error": "timeout"}
    if proc.returncode != 0:
        return {"ok": False, "error": f"exit {proc.returncode}"}
    try:
        data = json.loads(proc.stdout)
    except ValueError:
        return {"ok": False, "error": "unparsable google-benchmark JSON"}
    rates = {}
    for b in data.get("benchmarks", []):
        name = b.get("name", "")
        rate = b.get("items_per_second")
        if "HotPath_LegacyAllocating" in name:
            rates["legacy_events_per_s"] = rate
        elif "HotPath_PooledInline" in name:
            rates["pooled_events_per_s"] = rate
    legacy = rates.get("legacy_events_per_s")
    pooled = rates.get("pooled_events_per_s")
    if not legacy or not pooled:
        return {"ok": False, "error": "HotPath benchmarks missing from output"}
    return {
        "ok": True,
        "legacy_events_per_s": round(legacy),
        "pooled_events_per_s": round(pooled),
        "pooled_over_legacy": round(pooled / legacy, 3),
    }


# Events/s may lose at most this fraction vs. the committed baseline.
REGRESSION_TOLERANCE = 0.25


def find_regressions(report: dict, baseline: dict) -> list:
    """Names of benches whose events/s regressed beyond the tolerance."""
    floor = 1.0 - REGRESSION_TOLERANCE
    base_rates = {
        b["name"]: b["events_per_s"]
        for b in baseline.get("benches", [])
        if b.get("ok") and b.get("events_per_s")
    }
    for section, key in (("micro_engine", "indexed_heap_items_per_s"),
                         ("micro_wheel", "wheel_dense_events_per_s"),
                         ("micro_hotpath", "pooled_events_per_s")):
        sec = baseline.get(section)
        if sec and sec.get("ok") and sec.get(key):
            base_rates[section] = sec[key]
    new_rates = {
        b["name"]: b["events_per_s"]
        for b in report.get("benches", [])
        if b.get("ok") and b.get("events_per_s")
    }
    for section, key in (("micro_engine", "indexed_heap_items_per_s"),
                         ("micro_wheel", "wheel_dense_events_per_s"),
                         ("micro_hotpath", "pooled_events_per_s")):
        sec = report.get(section)
        if sec and sec.get("ok") and sec.get(key):
            new_rates[section] = sec[key]
    regressions = []
    for name, new in sorted(new_rates.items()):
        old = base_rates.get(name)
        if old and new < floor * old:
            regressions.append(
                f"{name}: {new:.0f}/s vs baseline {old:.0f}/s "
                f"({new / old - 1.0:+.1%}, tolerance -{REGRESSION_TOLERANCE:.0%})")
    return regressions


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--out", default="BENCH_ntier.json")
    ap.add_argument("--only", default="")
    ap.add_argument("--list", action="store_true")
    ap.add_argument("--baseline", default="")
    args = ap.parse_args()

    bench_dir = os.path.join(args.build_dir, "bench")
    if not os.path.isdir(bench_dir):
        print(f"error: {bench_dir} does not exist (build the project first)")
        return 1
    names = [n for n in discover(bench_dir) if args.only in n]
    if args.list:
        print("\n".join(names))
        return 0
    want_micro = args.only in "micro_engine"
    want_hotpath = args.only in "micro_hotpath"
    if not names and not want_micro and not want_hotpath:
        print(f"error: no bench binaries match {args.only!r} under {bench_dir}")
        return 1

    results = []
    for name in names:
        print(f"running {name} ...", flush=True)
        r = run_one(bench_dir, name)
        if r["ok"]:
            print(f"  events={r['events']} wall_s={r['wall_s']:.3f} "
                  f"events_per_s={r['events_per_s']:.0f}")
        else:
            print(f"  FAILED: {r['error']}")
        results.append(r)

    micro = None
    wheel = None
    if want_micro:
        print("running micro_engine (CancelHeavy old-vs-new heap) ...", flush=True)
        micro = run_micro_engine(bench_dir)
        if micro["ok"]:
            print(f"  lazy_pq={micro['lazy_pq_items_per_s']}/s "
                  f"indexed_heap={micro['indexed_heap_items_per_s']}/s "
                  f"speedup={micro['indexed_over_lazy']}x")
        else:
            print(f"  FAILED: {micro['error']}")
        print("running micro_engine (timing-wheel dense/cancel/far) ...",
              flush=True)
        wheel = run_micro_wheel(bench_dir)
        if wheel["ok"]:
            print(f"  wheel_dense={wheel['wheel_dense_events_per_s']}/s "
                  f"heap_dense={wheel['heap_dense_events_per_s']}/s "
                  f"speedup={wheel['wheel_over_heap_dense']}x "
                  f"cancel_heavy={wheel['wheel_cancel_heavy_items_per_s']}/s "
                  f"far_timer={wheel['far_timer_events_per_s']}/s")
        else:
            print(f"  FAILED: {wheel['error']}")

    hotpath = None
    if want_hotpath:
        print("running micro_hotpath (pooled-vs-legacy allocation) ...", flush=True)
        hotpath = run_micro_hotpath(bench_dir)
        if hotpath["ok"]:
            print(f"  legacy={hotpath['legacy_events_per_s']}/s "
                  f"pooled={hotpath['pooled_events_per_s']}/s "
                  f"speedup={hotpath['pooled_over_legacy']}x")
        else:
            print(f"  FAILED: {hotpath['error']}")

    # The service-graph study section: every [graph] record from
    # ext_graph_topologies, plus the chain-equivalence bit pulled out as
    # its own pass/fail (the byte-identity contract, docs/TOPOLOGY.md).
    graph = None
    for r in results:
        if r.get("name") == "ext_graph_topologies" and r.get("ok"):
            records = r.pop("graph", [])
            eq = next((g for g in records
                       if g.get("section") == "chain_equivalence"), None)
            graph = {
                "ok": bool(eq) and eq.get("match") == 1,
                "chain_equivalence_match": (eq or {}).get("match", 0),
                "records": records,
            }
            if graph["ok"]:
                print(f"  graph: {len(records)} study records, "
                      f"chain equivalence byte-identical ({eq.get('bytes')} bytes)")
            else:
                print("  graph: FAILED chain-equivalence check")

    # The online-detection study section: every [obs] record from
    # ext_incident_detection, plus the online-vs-offline agreement
    # verdict pulled out as its own pass/fail (docs/OBSERVABILITY.md).
    obs = None
    for r in results:
        if r.get("name") == "ext_incident_detection" and r.get("ok"):
            records = r.pop("obs", [])
            verdict = next((o for o in records
                            if o.get("section") == "verdict"), None)
            obs = {
                "ok": bool(verdict) and verdict.get("pass") == 1,
                "records": records,
            }
            if obs["ok"]:
                print(f"  obs: {len(records)} study records, online detection "
                      "agrees with offline analysis")
            else:
                print("  obs: FAILED online-vs-offline agreement check")

    # The protocol-matrix study section: every [proto] record from
    # ext_protocol_matrix, plus the headline verdicts (fixed3s visible,
    # linux_modern hidden, erpc absent) pulled out as their own
    # pass/fail (docs/PROTOCOLS.md).
    proto = None
    for r in results:
        if r.get("name") == "ext_protocol_matrix" and r.get("ok"):
            records = r.pop("proto", [])
            verdicts = [p for p in records if p.get("section") == "verdict"]
            proto = {
                "ok": bool(verdicts) and all(v.get("pass") == 1
                                             for v in verdicts),
                "records": records,
            }
            if proto["ok"]:
                print(f"  proto: {len(records)} study records, headline "
                      "verdicts (visible/hidden/absent) all hold")
            else:
                print("  proto: FAILED headline verdict check")

    ok = [r for r in results if r["ok"]]
    report = {
        "schema": "ntier.bench/8",
        "benches": results,
        "graph": graph,
        "obs": obs,
        "proto": proto,
        "micro_engine": micro,
        "micro_wheel": wheel,
        "micro_hotpath": hotpath,
        "total_events": sum(r["events"] for r in ok),
        "total_wall_s": round(sum(r["wall_s"] for r in ok), 3),
        "failed": [r["name"] for r in results if not r["ok"]],
    }
    if micro is not None and not micro["ok"]:
        report["failed"].append("micro_engine")
    if wheel is not None and not wheel["ok"]:
        report["failed"].append("micro_wheel")
    if hotpath is not None and not hotpath["ok"]:
        report["failed"].append("micro_hotpath")
    if graph is not None and not graph["ok"]:
        report["failed"].append("graph-chain-equivalence")
    if obs is not None and not obs["ok"]:
        report["failed"].append("obs-online-agreement")
    if proto is not None and not proto["ok"]:
        report["failed"].append("proto-headline-verdicts")

    if args.baseline:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)
        regressions = find_regressions(report, baseline)
        report["regressions"] = regressions
        for line in regressions:
            print(f"REGRESSION {line}")
        if regressions:
            report["failed"].append("baseline-comparison")
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}: {len(ok)}/{len(results)} benches, "
          f"{report['total_events']} events in {report['total_wall_s']}s")
    return 0 if not report["failed"] else 1


if __name__ == "__main__":
    sys.exit(main())
