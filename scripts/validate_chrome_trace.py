#!/usr/bin/env python3
"""Validate exported trace JSON against the Chrome trace_event schema.

Checks the subset of the trace_event format this project emits
(docs/METRICS.md, docs/TRACING.md):

  - top level: {"traceEvents": [...], "displayTimeUnit": "ms"}
  - every event has string `name`/`cat`/`ph` and integer `pid`/`tid`
  - `ph` is one of "M" (metadata), "X" (complete), "i" (instant)
  - "X" events carry integer `ts` >= 0 and `dur` >= 0
  - "i" events carry `ts` and thread scope `"s": "t"`
  - span events carry args.span / args.parent / args.detail integers,
    with parent == -1 only for root spans (cat == "request")
  - per request (tid): span ids are unique, every non-root parent id
    references an earlier span of the same request — the tree is
    recoverable from the file
  - at least one "X" event (an export with zero retained traces is
    almost certainly a wiring bug in a --trace smoke test)

Usage: scripts/validate_chrome_trace.py FILE.json [FILE.json ...]
Exit status: 0 when every file validates, 1 otherwise.
"""

import json
import sys

PHASES = {"M", "X", "i"}


def fail(errors, path, msg):
    errors.append(f"{path}: {msg}")


def validate(path: str, errors: list) -> None:
    before = len(errors)
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(errors, path, f"unreadable or invalid JSON: {e}")
        return

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(errors, path, "top level must be an object with 'traceEvents'")
        return
    if doc.get("displayTimeUnit") != "ms":
        fail(errors, path, "displayTimeUnit must be 'ms'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(errors, path, "'traceEvents' must be a list")
        return

    spans_by_request = {}  # tid -> set of span ids seen so far
    complete_events = 0
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(errors, path, f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in PHASES:
            fail(errors, path, f"{where}: ph {ph!r} not in {sorted(PHASES)}")
            continue
        for key, typ in (("name", str), ("pid", int)):
            if not isinstance(ev.get(key), typ):
                fail(errors, path, f"{where}: missing/ill-typed {key!r}")
        if ph == "M":
            continue
        for key in ("cat", "tid", "ts"):
            if key not in ev:
                fail(errors, path, f"{where}: missing {key!r}")
        if not isinstance(ev.get("ts"), int) or ev.get("ts", -1) < 0:
            fail(errors, path, f"{where}: ts must be a non-negative integer (µs)")
        if ph == "X":
            complete_events += 1
            if not isinstance(ev.get("dur"), int) or ev.get("dur", -1) < 0:
                fail(errors, path, f"{where}: X event needs integer dur >= 0")
        if ph == "i" and ev.get("s") != "t":
            fail(errors, path, f"{where}: instant events must be thread-scoped (s='t')")

        args = ev.get("args")
        if not isinstance(args, dict):
            fail(errors, path, f"{where}: span events must carry args")
            continue
        span, parent = args.get("span"), args.get("parent")
        if not isinstance(span, int) or not isinstance(parent, int):
            fail(errors, path, f"{where}: args.span/args.parent must be integers")
            continue
        if not isinstance(args.get("detail"), int):
            fail(errors, path, f"{where}: args.detail must be an integer")
        if (parent == -1) != (ev.get("cat") == "request"):
            fail(errors, path,
                 f"{where}: parent -1 iff root 'request' span (cat={ev.get('cat')!r})")
        seen = spans_by_request.setdefault(ev.get("tid"), set())
        if span in seen:
            fail(errors, path, f"{where}: duplicate span id {span} in request {ev.get('tid')}")
        if parent != -1 and parent not in seen:
            fail(errors, path,
                 f"{where}: parent {parent} not seen before span {span} "
                 f"(parents must precede children)")
        seen.add(span)

    if complete_events == 0:
        fail(errors, path, "no complete ('X') events — empty trace export")
    if len(errors) == before:
        print(f"OK: {path}: {len(events)} events, "
              f"{len(spans_by_request)} traced requests, {complete_events} spans")


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    errors = []
    for path in sys.argv[1:]:
        validate(path, errors)
    for e in errors:
        print(f"INVALID: {e}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
