#!/usr/bin/env python3
"""Doc-comment gate for the public headers (the CI docs job runs this).

Doxygen-equivalent check that needs no toolchain beyond python3: every
public symbol in the audited headers must carry a `//` doc comment.
Enforced rules, per header file:

  R1  The file starts with a `//` comment block (file-level doc).
  R2  Every blank-line-separated group of namespace-scope declarations
      — class/struct/enum/using alias/free function/constant — has a
      `//` comment immediately above its first line (a template<> line
      may sit between the comment and the declaration).
  R3  The same grouping rule inside the public section of a class (or
      anywhere in a struct, public-by-default). Grouping matches the
      repo's comment style: one comment may cover a tight block of
      related members, but an undocumented group is an error.

Usage: scripts/check_doc_comments.py [DIR ...]
Default audit set: src/sim src/core src/sweep src/graph src/obs.
Exit status 0 when every header passes, 1 otherwise (one line per
violation: file:line: symbol).
"""

import os
import re
import sys

DEFAULT_DIRS = ["src/sim", "src/core", "src/net", "src/sweep", "src/graph",
                "src/obs"]

# Namespace-scope lines that are structure, not symbols to document.
SKIP_RE = re.compile(
    r"^(#|namespace\b|using namespace\b|extern\b|\}|\{|\)|template\b|"
    r"BENCHMARK|TEST|$)"
)
DECL_RE = re.compile(r"^[A-Za-z_~]")


def strip_inline_comment(line: str) -> str:
    pos = line.find("//")
    return line if pos < 0 else line[:pos]


def net_braces(line: str) -> int:
    code = strip_inline_comment(line)
    return code.count("{") - code.count("}")


def symbol_name(line: str) -> str:
    """Best-effort symbol name for the error message."""
    m = re.search(r"\b(class|struct|enum(?:\s+class)?|using)\s+([A-Za-z_]\w*)", line)
    if m:
        return m.group(2)
    m = re.search(r"([A-Za-z_~]\w*)\s*\(", line)
    if m:
        return m.group(1)
    return line.strip().rstrip("{;").strip()[:40]


def check_header(path: str) -> list:
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    errors = []

    # R1: file-level doc comment on line 1.
    if not lines or not lines[0].lstrip().startswith("//"):
        errors.append((1, "<file-level doc comment missing>"))

    # Section stack entry: {"public": bool, "depth": brace depth inside}.
    sections = []
    depth = 0
    prev_comment = False   # previous significant line was a // comment
    prev_blank = True      # previous line was blank (group boundary)
    pending_template = False
    parens = 0             # running ( ) balance across declaration lines
    cont = False           # inside a multi-line declaration continuation

    for i, raw in enumerate(lines, start=1):
        stripped = raw.strip()
        code = strip_inline_comment(raw)

        if not stripped:
            prev_blank = True
            continue
        if stripped.startswith("//"):
            prev_comment = True
            prev_blank = False
            continue

        in_body = bool(sections) and depth > sections[-1]["depth"]
        at_ns_scope = not sections and depth <= 1  # inside the namespace

        # Access specifiers flip the documentation requirement.
        if re.match(r"^(public|protected|private)\s*:", stripped):
            if sections:
                sections[-1]["public"] = stripped.startswith("public")
            prev_comment = False
            prev_blank = True  # a new group starts after the specifier
            continue

        if stripped.startswith("template"):
            # template<...> rides between the doc comment and the decl.
            pending_template = prev_comment
            prev_comment = False
            prev_blank = False
            depth += net_braces(raw)
            continue

        forward_decl = re.match(r"^(class|struct)\s+[A-Za-z_]\w*\s*;", stripped)
        must_document = False
        if (
            not in_body
            and not cont
            and not forward_decl
            and DECL_RE.match(stripped)
            and not SKIP_RE.match(stripped)
        ):
            if at_ns_scope:
                must_document = prev_blank  # R2: first decl of each group
            elif sections and sections[-1]["public"] and depth == sections[-1]["depth"]:
                must_document = prev_blank  # R3: first decl of each group
        if must_document and not (prev_comment or pending_template):
            errors.append((i, symbol_name(stripped)))

        # A declaration continues onto the next line while its parens are
        # unbalanced or it ends without ; { or } (e.g. a long signature).
        parens += code.count("(") - code.count(")")
        tail = code.rstrip()
        cont = parens > 0 or (
            bool(tail) and tail[-1] not in ";{}" and not stripped.startswith("#")
        )

        opens_type = re.match(r"^(class|struct)\s+[A-Za-z_]\w*", stripped) and not (
            code.rstrip().endswith(";") and "{" not in code
        )

        if opens_type and ("{" in code):
            # struct = public by default, class = private until public:.
            sections.append(
                {"public": stripped.startswith("struct"), "depth": depth + 1}
            )
        depth += net_braces(raw)
        while sections and depth < sections[-1]["depth"]:
            sections.pop()

        prev_comment = False
        prev_blank = False
        pending_template = False

    return errors


def main() -> int:
    dirs = sys.argv[1:] or DEFAULT_DIRS
    failed = 0
    checked = 0
    for d in dirs:
        if not os.path.isdir(d):
            print(f"error: {d} is not a directory (run from the repo root)")
            return 1
        for name in sorted(os.listdir(d)):
            if not name.endswith(".h"):
                continue
            path = os.path.join(d, name)
            checked += 1
            for line, sym in check_header(path):
                print(f"{path}:{line}: undocumented public symbol: {sym}")
                failed += 1
    if failed:
        print(f"\n{failed} undocumented public symbol(s) across {checked} headers")
        return 1
    print(f"ok: {checked} headers, every public symbol documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
