// Fig 11 reproduction: NX=3 with I/O millibottlenecks (collectl log
// flush on the XMySQL disk every 30 s). Paper: all three asynchronous
// servers buffer in lightweight queues; no CTQO, no dropped packets.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ntier;
  const auto tf = bench::parse_bench_flags(argc, argv);
  if (tf.bad) return 2;
  bench::BenchPerf perf("fig11_nx3_logflush");
  auto cfg = core::scenarios::fig11_nx3_logflush();
  cfg.trace = tf.config;
  cfg.obs = tf.obs;
  bench::apply_proto_flag(cfg, tf);
  auto sys = bench::run_figure(cfg, {"xmysql.demand", "dbdisk.busy"});
  const auto drops = sys->web()->stats().dropped + sys->app()->stats().dropped +
                     sys->db()->stats().dropped;
  std::printf("total drops across tiers: %llu (paper: 0), VLRT: %llu (paper: 0)\n",
              static_cast<unsigned long long>(drops),
              static_cast<unsigned long long>(sys->latency().vlrt_count()));
  bench::finalize_incidents(*sys);
  bench::export_traces(*sys, tf);
  bench::maybe_dashboard(*sys, tf);
  perf.add_events(sys->simulation().events_executed());
  perf.print();
  return 0;
}
