// Fig 8 reproduction: NX=2 (Nginx-XTomcat-MySQL), millibottlenecks in
// MySQL via a co-located bursty tenant. Paper: no upstream CTQO into
// XTomcat/Nginx; downstream CTQO at MySQL when > MaxSysQDepth(MySQL)=228
// requests arrive during the millibottleneck.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ntier;
  const auto tf = bench::parse_bench_flags(argc, argv);
  if (tf.bad) return 2;
  bench::BenchPerf perf("fig08_nx2_mysql");
  auto cfg = core::scenarios::fig8_nx2_mysql();
  cfg.trace = tf.config;
  cfg.obs = tf.obs;
  bench::apply_proto_flag(cfg, tf);
  auto sys = bench::run_figure(cfg, {"mysql.demand", "sysbursty.demand"});
  std::printf("drops: nginx=%llu xtomcat=%llu mysql=%llu (paper: only MySQL drops)\n",
              static_cast<unsigned long long>(sys->web()->stats().dropped),
              static_cast<unsigned long long>(sys->app()->stats().dropped),
              static_cast<unsigned long long>(sys->db()->stats().dropped));
  bench::finalize_incidents(*sys);
  bench::export_traces(*sys, tf);
  bench::maybe_dashboard(*sys, tf);
  perf.add_events(sys->simulation().events_executed());
  perf.print();
  return 0;
}
