// Fig 10 reproduction: NX=3 (Nginx-XTomcat-XMySQL) with millibottlenecks
// in XTomcat. Paper: queues grow in the lightweight queues during the
// bursts but no CTQO and no dropped packets anywhere.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ntier;
  const auto tf = bench::parse_bench_flags(argc, argv);
  if (tf.bad) return 2;
  bench::BenchPerf perf("fig10_nx3_xtomcat");
  auto cfg = core::scenarios::fig10_nx3_xtomcat();
  cfg.trace = tf.config;
  cfg.obs = tf.obs;
  bench::apply_proto_flag(cfg, tf);
  auto sys = bench::run_figure(cfg, {"xtomcat.demand", "sysbursty.demand"});
  const auto drops = sys->web()->stats().dropped + sys->app()->stats().dropped +
                     sys->db()->stats().dropped;
  std::printf("total drops across tiers: %llu (paper: 0), VLRT: %llu (paper: 0)\n",
              static_cast<unsigned long long>(drops),
              static_cast<unsigned long long>(sys->latency().vlrt_count()));
  std::printf("millibottlenecks observed in xtomcat: %zu saturated 50ms windows\n",
              sys->sampler().saturated_windows("xtomcat").size());
  bench::finalize_incidents(*sys);
  bench::export_traces(*sys, tf);
  bench::maybe_dashboard(*sys, tf);
  perf.add_events(sys->simulation().events_executed());
  perf.print();
  return 0;
}
