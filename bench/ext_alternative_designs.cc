// Extension study: alternative designs around CTQO.
//
//  (A) SEDA-style staged servers (the events-vs-threads middle ground of
//      the paper's related work): bounded stage queues sit between
//      MaxSysQDepth (~10^2) and LiteQDepth (~10^4), shrinking but not
//      eliminating drops.
//  (B) Load shedding at the web tier: answer overload with an immediate
//      error instead of letting TCP drop — no VLRT, but explicit
//      failures the application must handle.
//  (C) Browser-style client timeouts: with a 10 s timeout the retrans-
//      mitted stragglers turn into user-visible failures.
#include <cstdio>

#include "bench_util.h"
#include "core/chain.h"
#include "core/experiment.h"
#include "core/scenarios.h"
#include "metrics/table.h"
#include "server/sync_server.h"

using namespace ntier;
using sim::Duration;
using sim::Time;

namespace {

enum class Style { kSync, kStaged, kAsync };

core::ChainConfig chain_of(Style style) {
  core::ChainConfig cfg;
  cfg.name = style == Style::kSync    ? "alt-sync"
             : style == Style::kStaged ? "alt-staged"
                                       : "alt-async";
  auto tier = [&](std::string name, std::size_t threads, auto fn) {
    core::ChainTierSpec t;
    t.name = std::move(name);
    t.async = style == Style::kAsync;
    t.staged = style == Style::kStaged;
    t.sync.threads_per_process = threads;
    t.sync.max_processes = 1;
    t.staged_cfg.ingress.queue_cap = 1000;
    t.program_fn = fn;
    return t;
  };
  cfg.tiers.push_back(tier("web", 150, core::relay_fn(Duration::micros(60),
                                                      Duration::micros(40))));
  cfg.tiers.push_back(tier("app", 150, core::relay_fn(Duration::micros(150),
                                                      Duration::micros(600))));
  cfg.tiers.push_back(tier("db", 100, core::leaf_fn(Duration::micros(400))));
  cfg.workload.sessions = 7000;
  cfg.duration = Duration::seconds(40);
  cfg.freeze_tier = 1;
  cfg.freeze.first = Time::from_seconds(8);
  cfg.freeze.period = Duration::seconds(12);
  // Long enough (~1.5 s x ~1000 req/s) to overflow the staged tier's
  // 1000-slot stage queue too, exposing the full bound gradient.
  cfg.freeze.pause = Duration::millis(1500);
  return cfg;
}

void part_a(const bench::BenchFlags& tf, bench::BenchPerf& perf) {
  std::puts("(A) sync vs SEDA-staged vs async under the same app millibottleneck");
  metrics::Table t({"architecture", "admission_bound", "drops", "vlrt", "p99.9_ms"});
  for (auto [style, name] : {std::pair{Style::kSync, "thread-per-request"},
                             std::pair{Style::kStaged, "SEDA staged (q=1000)"},
                             std::pair{Style::kAsync, "event-driven"}}) {
    auto ccfg = chain_of(style);
    ccfg.obs = tf.obs;
    core::ChainSystem sys(std::move(ccfg));
    sys.run();
    t.add_row({name, metrics::Table::num(std::uint64_t{sys.tier(0)->max_sys_q_depth()}),
               metrics::Table::num(sys.total_drops()),
               metrics::Table::num(sys.latency().vlrt_count()),
               metrics::Table::num(sys.latency().histogram().percentile(99.9).to_millis(), 0)});
    bench::finalize_incidents(sys);
    bench::maybe_dashboard(sys, tf);
    perf.add_events(sys.simulation().events_executed());
  }
  std::puts(t.to_string().c_str());
  std::puts(
      "drops shrink with the admission bound (278 -> 1016 -> unbounded). Note\n"
      "the event-driven row: zero drops, yet a >3 s tail remains — with a\n"
      "1.5 s freeze the *stored* requests pay pure queueing delay. Asynchrony\n"
      "removes the retransmission cliff, not the backlog itself.\n");
}

void part_b(const bench::BenchFlags& tf, bench::BenchPerf& perf) {
  std::puts("(B) web-tier load shedding vs TCP drop (Fig 3 scenario)");
  metrics::Table t({"policy", "drops", "shed", "failed_requests", "vlrt", "rps"});
  for (bool shed : {false, true}) {
    auto cfg = core::scenarios::fig3_consolidation_sync();
    cfg.name = shed ? "altb-shed" : "altb-drop";
    cfg.system.web_shed_on_overload = shed;
    cfg.obs = tf.obs;
    auto sys = core::run_system(cfg);
    auto s = core::summarize(*sys);
    auto* web = dynamic_cast<server::SyncServer*>(sys->web());
    t.add_row({shed ? "shed (fast 503)" : "drop (TCP retransmit)",
               metrics::Table::num(s.total_drops),
               metrics::Table::num(web != nullptr ? web->shed_count() : 0),
               metrics::Table::num(sys->clients().failed()),
               metrics::Table::num(s.latency.vlrt_count),
               metrics::Table::num(s.throughput_rps, 0)});
    bench::finalize_incidents(*sys);
    bench::maybe_dashboard(*sys, tf);
    perf.add_events(sys->simulation().events_executed());
  }
  std::puts(t.to_string().c_str());
  std::puts("shedding converts multi-second VLRT into immediate failures.\n");
}

void part_c(const bench::BenchFlags& tf, bench::BenchPerf& perf) {
  std::puts("(C) browser timeouts over the dropping system (Fig 3 scenario)");
  metrics::Table t({"client_timeout", "vlrt", "timeouts", "failed", "p99.9_ms"});
  for (auto [timeout, label] : {std::pair{Duration::zero(), "none"},
                                std::pair{Duration::seconds(10), "10s"},
                                std::pair{Duration::seconds(3), "3s"}}) {
    auto cfg = core::scenarios::fig3_consolidation_sync();
    cfg.name = std::string("altc-timeout-") + label;
    cfg.workload.client_timeout = timeout;
    cfg.obs = tf.obs;
    auto sys = core::run_system(cfg);
    t.add_row({label, metrics::Table::num(sys->latency().vlrt_count()),
               metrics::Table::num(sys->clients().timeouts()),
               metrics::Table::num(sys->clients().failed()),
               metrics::Table::num(sys->latency().histogram().percentile(99.9).to_millis(), 0)});
    bench::finalize_incidents(*sys);
    bench::maybe_dashboard(*sys, tf);
    perf.add_events(sys->simulation().events_executed());
  }
  std::puts(t.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto tf = bench::parse_bench_flags(argc, argv);
  if (tf.bad) return 2;
  bench::BenchPerf perf("ext_alternative_designs");
  part_a(tf, perf);
  part_b(tf, perf);
  part_c(tf, perf);
  perf.print();
  return 0;
}
