// Ablations for the design discussion of paper §III and §V-E:
//  (1) MaxSysQDepth arithmetic — sweep the app-tier thread pool under the
//      same millibottleneck: bigger pools absorb bigger bursts (drops
//      shrink) but cannot eliminate them, matching the "RPC purist"
//      critique; and large pools carry the Fig 12 overhead.
//  (2) Interference weight — how strongly the co-located tenant starves
//      the steady tier (our substitution for the measured ESXi behavior).
//  (3) RTO policy — fixed 3 s vs RHEL exponential backoff changes where
//      the latency modes sit, not whether drops happen.
#include <cstdio>

#include "bench_util.h"
#include "core/ctqo_analyzer.h"
#include "core/experiment.h"
#include "core/scenarios.h"
#include "metrics/table.h"

using namespace ntier;

namespace {

core::ExperimentConfig base() {
  auto cfg = core::scenarios::fig3_consolidation_sync();
  cfg.duration = sim::Duration::seconds(24);
  return cfg;
}

void sweep_threads(const bench::BenchFlags& tf, bench::BenchPerf& perf) {
  std::puts(
      "(1) thread pool sweep in every tier, with the concurrency-overhead\n"
      "    model active (paper SV-E: bigger MaxSysQDepth postpones CTQO\n"
      "    but costs throughput)");
  metrics::Table t({"threads", "MaxSysQDepth", "drops(ideal)", "drops(overhead)",
                    "rps(overhead)"});
  for (std::size_t threads : {150u, 300u, 600u, 1200u, 2000u}) {
    std::uint64_t drops[2] = {0, 0};
    double rps = 0.0;
    for (int with_overhead = 0; with_overhead < 2; ++with_overhead) {
      auto cfg = base();
      cfg.system.web_threads = threads;
      cfg.system.web_processes = 1;
      cfg.system.app_threads = threads;
      cfg.system.db_threads = threads;
      cfg.system.db_pool = threads;
      if (with_overhead != 0) cfg.system.sync_overhead.alpha_per_thread = 1.3e-3;
      cfg.name = "abl-threads-" + std::to_string(threads) +
                 (with_overhead != 0 ? "-overhead" : "-ideal");
      cfg.obs = tf.obs;
      auto sys = core::run_system(cfg);
      auto s = core::summarize(*sys);
      drops[with_overhead] = s.total_drops;
      if (with_overhead != 0) rps = s.throughput_rps;
      bench::finalize_incidents(*sys);
      bench::maybe_dashboard(*sys, tf);
      perf.add_events(sys->simulation().events_executed());
    }
    t.add_row({metrics::Table::num(std::uint64_t{threads}),
               metrics::Table::num(std::uint64_t{threads + base().system.backlog}),
               metrics::Table::num(drops[0]), metrics::Table::num(drops[1]),
               metrics::Table::num(rps, 0)});
  }
  std::puts(t.to_string().c_str());
  std::puts(
      "with zero per-thread cost, bigger pools absorb the burst (drops shrink);\n"
      "with the measured overhead they overload the CPU instead - the paper's\n"
      "SV-E argument against the 'RPC purist' fix.\n");
}

void sweep_weight(const bench::BenchFlags& tf, bench::BenchPerf& perf) {
  std::puts("(2) interference weight sweep (how hard SysBursty starves SysSteady)");
  metrics::Table t({"weight", "steady_share_%", "drops", "vlrt"});
  for (double w : {1.0, 3.0, 9.0, 20.0, 50.0}) {
    auto cfg = base();
    cfg.bottleneck.interference_weight = w;
    cfg.name = "abl-weight-" + std::to_string(static_cast<int>(w));
    cfg.obs = tf.obs;
    auto sys = core::run_system(cfg);
    auto s = core::summarize(*sys);
    bench::finalize_incidents(*sys);
    bench::maybe_dashboard(*sys, tf);
    perf.add_events(sys->simulation().events_executed());
    t.add_row({metrics::Table::num(w, 0), metrics::Table::num(100.0 / (1.0 + w), 0),
               metrics::Table::num(s.total_drops),
               metrics::Table::num(s.latency.vlrt_count)});
  }
  std::puts(t.to_string().c_str());
}

void sweep_backlog(const bench::BenchFlags& tf, bench::BenchPerf& perf) {
  // §V-E's second component: the TCP buffer. Larger backlogs postpone
  // drops but queue more requests — the bufferbloat trade-off that made
  // the networking community keep the buffer small.
  std::puts("(4) TCP backlog sweep (bufferbloat trade-off)");
  metrics::Table t({"backlog", "MaxSysQDepth(web)", "drops", "vlrt", "p99_ms", "p99.9_ms"});
  for (std::size_t backlog : {32u, 128u, 512u, 2048u, 8192u}) {
    auto cfg = base();
    cfg.system.backlog = backlog;
    cfg.system.web_processes = 1;
    cfg.name = "abl-backlog-" + std::to_string(backlog);
    cfg.obs = tf.obs;
    auto sys = core::run_system(cfg);
    auto s = core::summarize(*sys);
    bench::finalize_incidents(*sys);
    bench::maybe_dashboard(*sys, tf);
    perf.add_events(sys->simulation().events_executed());
    t.add_row({metrics::Table::num(std::uint64_t{backlog}),
               metrics::Table::num(std::uint64_t{cfg.system.web_threads + backlog}),
               metrics::Table::num(s.total_drops),
               metrics::Table::num(s.latency.vlrt_count),
               metrics::Table::num(s.latency.p99.to_millis(), 0),
               metrics::Table::num(s.latency.p999.to_millis(), 0)});
  }
  std::puts(t.to_string().c_str());
  std::puts("bigger buffers trade dropped-packet VLRT for queueing delay on every\n"
            "request behind the bottleneck (bufferbloat), and still drop once full.\n");
}

void sweep_rto(const bench::BenchFlags& tf, bench::BenchPerf& perf) {
  std::puts("(3) RTO policy: latency mode positions");
  for (bool exponential : {false, true}) {
    auto cfg = base();
    cfg.duration = sim::Duration::seconds(60);
    const auto policy =
        exponential ? net::RtoPolicy::rhel6() : net::RtoPolicy::fixed3s();
    cfg.workload.client_rto = policy;
    cfg.system.tier_rto = policy;
    cfg.name = exponential ? "abl-rto-exponential" : "abl-rto-fixed3s";
    cfg.obs = tf.obs;
    auto sys = core::run_system(cfg);
    bench::finalize_incidents(*sys);
    bench::maybe_dashboard(*sys, tf);
    perf.add_events(sys->simulation().events_executed());
    std::printf("%s backoff: modes at", exponential ? "exponential" : "fixed-3s");
    for (auto m : sys->latency().histogram().modes(3))
      std::printf(" %.1fs", m.to_seconds());
    std::printf("  (drops=%llu)\n",
                static_cast<unsigned long long>(core::summarize(*sys).total_drops));
  }
  std::puts("");
}

}  // namespace

int main(int argc, char** argv) {
  const auto tf = bench::parse_bench_flags(argc, argv);
  if (tf.bad) return 2;
  bench::BenchPerf perf("ablation_qdepth");
  sweep_threads(tf, perf);
  sweep_weight(tf, perf);
  sweep_backlog(tf, perf);
  sweep_rto(tf, perf);
  perf.print();
  return 0;
}
