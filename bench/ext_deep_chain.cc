// Extension study: CTQO on deeper chains (the general "n" in n-tier).
//
// Sweeps chain depth 3..6 with the millibottleneck always in the leaf
// tier. In the all-RPC chain, upstream CTQO walks the whole chain and
// drops at the front regardless of depth — deeper chains only lengthen
// the cascade. The all-async chain absorbs the burst at every depth.
//
// The chains are built as graph-engine configs (src/graph): each one is
// chain-shaped, so GraphSystem wires it through the ChainSystem-
// identical fast path and every number below is byte-identical to the
// pre-graph ChainSystem build (the chain-equivalence contract,
// docs/TOPOLOGY.md).
#include <cstdio>

#include "bench_util.h"
#include "graph/graph_system.h"
#include "graph/topology.h"
#include "metrics/table.h"

using namespace ntier;
using sim::Duration;
using sim::Time;

namespace {

graph::GraphConfig make_chain(std::size_t depth, bool all_async) {
  graph::GraphConfig cfg;
  cfg.name = (all_async ? "async-depth-" : "sync-depth-") + std::to_string(depth);
  for (std::size_t i = 0; i < depth; ++i) {
    graph::NodeSpec node;
    node.name = (i == 0) ? "front" : (i + 1 == depth) ? "leaf" : "relay" + std::to_string(i);
    node.kind = all_async ? graph::NodeSpec::Kind::kAsync : graph::NodeSpec::Kind::kSync;
    node.sync.threads_per_process = (i + 1 == depth) ? 100 : 150;
    node.sync.max_processes = 1;
    if (i + 1 == depth) {
      node.work = {{server::WorkStep::Kind::kCpu, Duration::micros(500)}};
    } else {
      node.work = {{server::WorkStep::Kind::kCpu, Duration::micros(60)},
                   {server::WorkStep::Kind::kDownstream, Duration::zero()},
                   {server::WorkStep::Kind::kCpu, Duration::micros(60)}};
    }
    if (i > 0) cfg.edges.push_back({static_cast<int>(i) - 1, static_cast<int>(i), {}});
    cfg.nodes.push_back(std::move(node));
  }
  cfg.workload.sessions = 5000;
  cfg.duration = Duration::seconds(40);
  cfg.freeze_node = static_cast<int>(depth) - 1;
  cfg.freeze.first = Time::from_seconds(8);
  cfg.freeze.period = Duration::seconds(12);
  cfg.freeze.pause = Duration::millis(900);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const auto tf = bench::parse_bench_flags(argc, argv);
  if (tf.bad) return 2;
  bench::BenchPerf perf("ext_deep_chain");
  metrics::Table t({"depth", "stack", "front_drops", "other_drops", "vlrt",
                    "cascade"});
  for (std::size_t depth : {3u, 4u, 5u, 6u}) {
    for (bool all_async : {false, true}) {
      auto gcfg = make_chain(depth, all_async);
      gcfg.obs = tf.obs;
      graph::GraphSystem sys(std::move(gcfg));
      sys.run();
      std::uint64_t front = sys.server_flat(0)->stats().dropped;
      std::uint64_t other = sys.total_drops() - front;
      const auto report = graph::analyze_ctqo(sys);
      std::string cascade = report.episodes.empty()
                                ? "none"
                                : report.episodes[0].to_string().substr(22, 40);
      t.add_row({std::to_string(depth), all_async ? "async" : "sync",
                 metrics::Table::num(front), metrics::Table::num(other),
                 metrics::Table::num(sys.latency().vlrt_count()), cascade});
      bench::finalize_incidents(sys);
      bench::maybe_dashboard(sys, tf);
      perf.add_events(sys.simulation().events_executed());
    }
  }
  std::puts("CTQO vs chain depth (millibottleneck in the leaf, 900 ms freeze):");
  std::puts(t.to_string().c_str());
  std::puts("expected: sync drops at the front at every depth; async never drops.");
  perf.print();
  return 0;
}
