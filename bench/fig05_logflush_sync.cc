// Fig 5 reproduction: upstream CTQO from I/O millibottlenecks — collectl
// flushes its log to the MySQL disk every 30 s (flushes at 10/40/70 s),
// stalling MySQL; queues cascade MySQL -> Tomcat -> Apache; Apache drops.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ntier;
  const auto tf = bench::parse_bench_flags(argc, argv);
  if (tf.bad) return 2;
  bench::BenchPerf perf("fig05_logflush_sync");
  auto cfg = core::scenarios::fig5_logflush_sync();
  cfg.trace = tf.config;
  cfg.obs = tf.obs;
  bench::apply_proto_flag(cfg, tf);
  auto sys = bench::run_figure(
      cfg, {"mysql.demand", "dbdisk.busy", "tomcat.demand", "apache.demand"});
  std::printf("collectl flushes:");
  for (auto t : sys->collectl()->flush_times()) std::printf(" %.0fs", t.to_seconds());
  std::printf("  (paper: 10s 40s 70s)\n");
  bench::finalize_incidents(*sys);
  bench::export_traces(*sys, tf);
  bench::maybe_dashboard(*sys, tf);
  perf.add_events(sys->simulation().events_executed());
  perf.print();
  return 0;
}
