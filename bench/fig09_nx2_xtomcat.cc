// Fig 9 reproduction: NX=2, millibottlenecks in XTomcat. Paper: the
// event-driven XTomcat buffers the burst, then batch-releases queued
// queries to MySQL, exceeding MaxSysQDepth(MySQL)=228 — downstream CTQO
// with drops at MySQL although the bottleneck is in XTomcat.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ntier;
  const auto tf = bench::parse_bench_flags(argc, argv);
  if (tf.bad) return 2;
  bench::BenchPerf perf("fig09_nx2_xtomcat");
  auto cfg = core::scenarios::fig9_nx2_xtomcat();
  cfg.trace = tf.config;
  cfg.obs = tf.obs;
  bench::apply_proto_flag(cfg, tf);
  auto sys = bench::run_figure(cfg, {"xtomcat.demand", "sysbursty.demand"});
  std::printf("drops: nginx=%llu xtomcat=%llu mysql=%llu "
              "(paper: MySQL drops, bottleneck in XTomcat)\n",
              static_cast<unsigned long long>(sys->web()->stats().dropped),
              static_cast<unsigned long long>(sys->app()->stats().dropped),
              static_cast<unsigned long long>(sys->db()->stats().dropped));
  bench::finalize_incidents(*sys);
  bench::export_traces(*sys, tf);
  bench::maybe_dashboard(*sys, tf);
  perf.add_events(sys->simulation().events_executed());
  perf.print();
  return 0;
}
