// Headline bench for the src/obs layer: can ONLINE incident detection
// call the millibottleneck before its VLRT consequences land, and does
// it agree with the OFFLINE engines that see the whole run?
//
// Part A — fig 5's log-flush millibottleneck (collectl flushes to the
// MySQL disk; dbdisk.busy pegs, queues cascade, apache drops, VLRTs
// follow one 3 s RTO later). Runs with detection + flight recorder on
// and scores the online result against offline ground truth:
//   - attribution: the first saturation incident must name the same
//     series the correlation engine ranks as the bottleneck;
//   - detection latency: the first fire must precede the first VLRT
//     window (the whole point of online detection — the alarm beats the
//     user-visible symptom by roughly one TCP RTO);
//   - precision/recall: incident fires vs the CTQO analyzer's drop
//     episodes, with slack for debounce (1 s) and the RTO lag that
//     delays the VLRT burn-rate detector (4 s);
//   - the retroactive flight dump window must cover the causal episode,
//     not just its aftermath.
// Part B — the metastable retry storm (ext_overload_control): with no
// admission control the offline verdict engine says kMetastable and the
// online monitor must still be holding open incidents at run end; with
// CoDel shedding the verdict is kRecovered and every incident must have
// cleared. Online open-incident state and offline verdict must agree.
//
// Output includes machine-readable "[obs] ..." lines collected by
// scripts/run_benches.py into BENCH_ntier.json (schema ntier.bench/6).
// --quick runs Part A only. Exit code 1 on any scoring failure.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/experiment.h"
#include "core/metastability.h"
#include "core/scenarios.h"

using namespace ntier;

namespace {

double seconds_of(sim::Time t) { return (t - sim::Time::origin()).to_seconds(); }

// First window with at least one VLRT completion; -1 when none.
double first_vlrt_s(const metrics::Timeline& vlrt) {
  for (std::size_t i = 0; i < vlrt.window_count(); ++i)
    if (vlrt.value_at(i) > 0.0) return seconds_of(vlrt.window_start(i));
  return -1.0;
}

// Episode-level match with slack: fires up to `pre` before the first
// drop (detectors often see the saturation first) or `post` after the
// last drop (the burn-rate detector trails by one RTO) still count.
bool in_episode(const core::CtqoEpisode& ep, sim::Time fired, double pre, double post) {
  const double t = seconds_of(fired);
  return t >= seconds_of(ep.start) - pre && t <= seconds_of(ep.end) + post;
}

int part_a(const bench::BenchFlags& tf, bench::BenchPerf& perf) {
  std::puts("=== A. online detection vs offline analysis, fig 5 scenario ===");
  auto cfg = core::scenarios::fig5_logflush_sync();
  cfg.trace = tf.config;
  if (cfg.trace.mode == trace::TraceMode::kOff) {
    // The flight recorder needs span trees; default to light sampling
    // when the user did not pick a trace mode.
    cfg.trace.mode = trace::TraceMode::kSampled;
    cfg.trace.sample_every_n = 20;
  }
  cfg.obs = tf.obs;
  cfg.obs.enabled = true;  // this bench IS the detection study
  auto sys = core::run_system(cfg);
  bench::finalize_incidents(*sys);
  const obs::IncidentMonitor* om = sys->obs();
  const auto ctqo = core::analyze_ctqo(*sys);
  const auto corr = core::correlate(*sys);
  bench::maybe_dashboard(*sys, tf);
  perf.add_events(sys->simulation().events_executed());

  int failures = 0;
  const auto& incs = om->incidents();
  if (incs.empty()) {
    std::puts("FAIL: no incident fired on the fig 5 millibottleneck");
    return 1;
  }

  // Attribution: first saturation incident vs the correlation engine.
  const obs::Incident* first_sat = nullptr;
  for (const auto& inc : incs) {
    if (inc.kind == obs::DetectorKind::kThreshold) {
      first_sat = &inc;
      break;
    }
  }
  const bool attributed = first_sat != nullptr && !corr.bottleneck_series.empty() &&
                          first_sat->series == corr.bottleneck_series;
  if (!attributed) {
    std::printf("FAIL: online attribution %s != offline bottleneck %s\n",
                first_sat != nullptr ? first_sat->series.c_str() : "(none)",
                corr.bottleneck_series.c_str());
    ++failures;
  }

  // Detection latency: the alarm must beat the first VLRT completion.
  const double fire_s = seconds_of(incs.front().fired_at);
  const double vlrt_s = first_vlrt_s(sys->latency().vlrt_per_window());
  const bool early = vlrt_s < 0.0 || fire_s < vlrt_s;
  if (!early) {
    std::printf("FAIL: first fire %.2fs did not precede first VLRT window %.2fs\n",
                fire_s, vlrt_s);
    ++failures;
  }
  std::printf("[obs] section=fig05 incidents=%zu first_fire_s=%.3f first_vlrt_s=%.3f "
              "lead_s=%.3f series=%s attributed=%d\n",
              incs.size(), fire_s, vlrt_s, vlrt_s >= 0.0 ? vlrt_s - fire_s : -1.0,
              first_sat != nullptr ? first_sat->series.c_str() : "none",
              attributed ? 1 : 0);

  // Precision / recall against the CTQO analyzer's drop episodes.
  std::size_t matched_incidents = 0, detected_episodes = 0;
  for (const auto& inc : incs) {
    for (const auto& ep : ctqo.episodes) {
      if (in_episode(ep, inc.fired_at, 1.0, 4.0)) {
        ++matched_incidents;
        break;
      }
    }
  }
  for (const auto& ep : ctqo.episodes) {
    for (const auto& inc : incs) {
      if (in_episode(ep, inc.fired_at, 1.0, 4.0)) {
        ++detected_episodes;
        break;
      }
    }
  }
  const double precision =
      incs.empty() ? 0.0 : static_cast<double>(matched_incidents) / incs.size();
  const double recall = ctqo.episodes.empty()
                            ? 1.0
                            : static_cast<double>(detected_episodes) / ctqo.episodes.size();
  std::printf("[obs] section=fig05 episodes=%zu matched_incidents=%zu "
              "detected_episodes=%zu precision=%.3f recall=%.3f\n",
              ctqo.episodes.size(), matched_incidents, detected_episodes, precision,
              recall);
  if (!ctqo.episodes.empty() && detected_episodes == 0) {
    std::puts("FAIL: no drop episode was detected online");
    ++failures;
  }
  if (precision < 0.5) {
    std::printf("FAIL: precision %.3f below 0.5 — detectors fire away from episodes\n",
                precision);
    ++failures;
  }

  // The retroactive dump must overlap the causal episode.
  if (om->have_dump_window() && !ctqo.episodes.empty()) {
    const auto& ep = ctqo.episodes.front();
    const bool covers =
        om->dump_from() <= ep.end && om->dump_to() >= ep.start;
    std::printf("[obs] section=fig05 dump_from_s=%.2f dump_to_s=%.2f traces=%zu "
                "covers_episode=%d\n",
                seconds_of(om->dump_from()), seconds_of(om->dump_to()),
                om->dumped_traces(), covers ? 1 : 0);
    if (!covers) {
      std::puts("FAIL: retroactive dump window misses the first drop episode");
      ++failures;
    }
    if (sys->tracer() != nullptr && om->dumped_traces() == 0) {
      std::puts("FAIL: tracing was on but the flight dump captured no span trees");
      ++failures;
    }
  }
  return failures;
}

// Shared with ext_overload_control: the judged fault window must match
// the scenario's SlowNodeWindow.
core::RecoveryOptions verdict_options() {
  core::RecoveryOptions opt;
  opt.fault_start = sim::Time::from_seconds(12.0);
  opt.fault_clear = sim::Time::from_seconds(14.0);
  opt.horizon = sim::Duration::seconds(25);
  return opt;
}

int part_b(const bench::BenchFlags& tf, bench::BenchPerf& perf) {
  std::puts("=== B. online open-incident state vs the metastability verdict ===");
  int failures = 0;
  for (auto choice : {core::scenarios::OverloadChoice::kNone,
                      core::scenarios::OverloadChoice::kCoDel}) {
    auto cfg = core::scenarios::ext_overload_control(choice);
    cfg.obs = tf.obs;
    cfg.obs.enabled = true;
    auto sys = core::run_system(cfg);
    bench::finalize_incidents(*sys);
    const auto verdict = core::classify_recovery(
        {sys->web()->name(), sys->app()->name(), sys->db()->name()}, sys->sampler(),
        verdict_options());
    perf.add_events(sys->simulation().events_executed());

    const obs::IncidentSummary s = sys->obs()->summary();
    const bool metastable = verdict.regime != core::Regime::kRecovered;
    // Agreement contract on the storm-tracking detectors (VLRT burn
    // rate + drop CUSUM): a metastable run is still holding them open
    // at run end, a recovered run has fired and cleared them all. The
    // saturation thresholds are excluded — this scenario runs near
    // saturation by design, so a VM legitimately pegs 100% even after
    // a clean recovery.
    std::uint64_t storm_open = 0;
    for (const auto& inc : sys->obs()->incidents()) {
      if (inc.cleared) continue;
      if (inc.kind == obs::DetectorKind::kBurnRate ||
          inc.kind == obs::DetectorKind::kCusum)
        ++storm_open;
    }
    const bool agree = s.count > 0 && (metastable ? storm_open > 0 : storm_open == 0);
    std::printf("[obs] section=metastable policy=%s incidents=%llu open=%llu "
                "storm_open=%llu verdict=%s agree=%d\n",
                core::scenarios::to_string(choice),
                static_cast<unsigned long long>(s.count),
                static_cast<unsigned long long>(s.open),
                static_cast<unsigned long long>(storm_open),
                metastable ? "metastable" : "recovered", agree ? 1 : 0);
    if (!agree) {
      std::printf("FAIL: online state disagrees with the %s verdict under %s\n",
                  metastable ? "metastable" : "recovered",
                  core::scenarios::to_string(choice));
      ++failures;
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  const auto tf = bench::parse_bench_flags(argc, argv);
  if (tf.bad) return 2;
  bench::BenchPerf perf("ext_incident_detection");
  int failures = part_a(tf, perf);
  if (!tf.quick) failures += part_b(tf, perf);
  std::printf("[obs] section=verdict pass=%d\n", failures == 0 ? 1 : 0);
  if (failures == 0) std::puts("online detection agrees with offline analysis");
  perf.print();
  return failures == 0 ? 0 : 1;
}
