// Extension study: the paper's "if (and only if)" claim.
//
// §I: "Under moderate resource utilization levels, the CTQO problem
// disappears completely if (and only if) all the servers are
// asynchronous." The paper evaluates the front-to-back replacement
// order (NX=1,2,3); here we run ALL 8 sync/async combinations of a
// 3-tier chain under the same leaf-tier millibottleneck and check that
// exactly one combination — all-async — is drop-free.
#include <cstdio>

#include "bench_util.h"
#include "core/chain.h"
#include "metrics/table.h"

using namespace ntier;
using sim::Duration;
using sim::Time;

namespace {

core::ChainConfig combo(bool web_async, bool app_async, bool db_async) {
  core::ChainConfig cfg;
  cfg.name = std::string("mixed-") + (web_async ? "a" : "s") +
             (app_async ? "a" : "s") + (db_async ? "a" : "s");
  auto tier = [](std::string name, bool async, std::size_t threads, auto fn) {
    core::ChainTierSpec t;
    t.name = std::move(name);
    t.async = async;
    t.sync.threads_per_process = threads;
    t.sync.max_processes = 1;
    t.program_fn = fn;
    return t;
  };
  cfg.tiers.push_back(tier("web", web_async, 150,
                           core::relay_fn(Duration::micros(60), Duration::micros(40))));
  cfg.tiers.push_back(tier("app", app_async, 150,
                           core::relay_fn(Duration::micros(150), Duration::micros(600))));
  auto db = tier("db", db_async, 100, core::leaf_fn(Duration::micros(400)));
  db.async_cfg.max_active = 8;      // InnoDB thread concurrency
  db.async_cfg.lite_q_depth = 2000; // InnoDB wait queue
  cfg.tiers.push_back(std::move(db));
  cfg.workload.sessions = 7000;
  cfg.duration = Duration::seconds(40);
  // Millibottleneck in the app tier (the paper's consolidation case).
  cfg.freeze_tier = 1;
  cfg.freeze.first = Time::from_seconds(8);
  cfg.freeze.period = Duration::seconds(12);
  cfg.freeze.pause = Duration::millis(700);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const auto tf = bench::parse_bench_flags(argc, argv);
  if (tf.bad) return 2;
  bench::BenchPerf perf("ext_mixed_stacks");
  metrics::Table t({"web", "app", "db", "web_drops", "app_drops", "db_drops",
                    "vlrt", "ctqo_free"});
  for (int mask = 0; mask < 8; ++mask) {
    const bool web = (mask & 4) != 0;
    const bool app = (mask & 2) != 0;
    const bool db = (mask & 1) != 0;
    auto ccfg = combo(web, app, db);
    ccfg.obs = tf.obs;
    core::ChainSystem sys(std::move(ccfg));
    sys.run();
    t.add_row({web ? "async" : "sync", app ? "async" : "sync", db ? "async" : "sync",
               metrics::Table::num(sys.tier(0)->stats().dropped),
               metrics::Table::num(sys.tier(1)->stats().dropped),
               metrics::Table::num(sys.tier(2)->stats().dropped),
               metrics::Table::num(sys.latency().vlrt_count()),
               sys.total_drops() == 0 ? "YES" : "no"});
    bench::finalize_incidents(sys);
    bench::maybe_dashboard(sys, tf);
    perf.add_events(sys.simulation().events_executed());
  }
  std::puts("All 8 sync/async combinations under the same app-tier millibottleneck:");
  std::puts(t.to_string().c_str());
  std::puts("paper claim: CTQO disappears if and only if all servers are async.");
  perf.print();
  return 0;
}
