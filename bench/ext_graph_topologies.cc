// Extension study: CTQO beyond the chain — service-graph topologies.
//
// Four sections, all instances of the declarative graph engine
// (src/graph, docs/TOPOLOGY.md):
//   1. diamond DAG: a front fans out to two mid services in parallel,
//      both share one database. A leaf millibottleneck overflows the
//      database queue, the RPC waits hold workers in BOTH branches, and
//      upstream CTQO surfaces as front-tier drops — the chain mechanism
//      generalizes to fan-out/fan-in graphs.
//   2. deep chain: the same 6-deep chain as ext_deep_chain, but written
//      in the topology grammar; is_chain() routes it through the
//      ChainSystem-identical wiring path.
//   3. hedging crossover on a replicated group: three replicas behind a
//      power-of-two-choices balancer, one replica periodically frozen.
//      At low load a hedged duplicate (which re-picks the replica)
//      sidesteps the frozen copy and cuts p99; near saturation the
//      duplicates are pure extra load and hedging *raises* the tail —
//      the helps-then-hurts crossover of Poloczek & Ciucu (PAPERS.md).
//   4. chain equivalence: the paper's 3-tier chain expressed as a graph
//      config, fingerprinted against the ChainSystem run of the same
//      spec — byte-identical registries or the bench fails. With
//      --sweep-out=DIR both fingerprints are written for the CI cmp.
//
// Output includes machine-readable "[graph] ..." lines collected by
// scripts/run_benches.py into BENCH_ntier.json (schema ntier.bench/5).
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/chain.h"
#include "graph/graph_system.h"
#include "graph/topology.h"
#include "metrics/csv.h"
#include "metrics/table.h"

using namespace ntier;
using sim::Duration;
using sim::Time;

namespace {

// Deterministic run fingerprint shared by the chain-equivalence pair:
// the full telemetry snapshot plus the headline totals. Two runs are
// event-identical iff these strings match byte for byte.
template <typename System>
std::string fingerprint(System& sys) {
  std::string out;
  char buf[160];
  for (const auto& [name, value] : sys.registry().snapshot()) {
    std::snprintf(buf, sizeof buf, "%s,%.10g\n", name.c_str(), value);
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "totals,completed=%llu,vlrt=%llu,drops=%llu,events=%llu\n",
                static_cast<unsigned long long>(sys.latency().completed()),
                static_cast<unsigned long long>(sys.latency().vlrt_count()),
                static_cast<unsigned long long>(sys.total_drops()),
                static_cast<unsigned long long>(sys.simulation().events_executed()));
  out += buf;
  return out;
}

// --- 1. diamond DAG -------------------------------------------------------

graph::GraphConfig diamond_config(bool quick) {
  auto cfg = graph::parse_topology(R"(
graph diamond
seed 42
sessions 3000
node front   kind=sync threads=150 work=cpu:60us,down,cpu:60us
node catalog kind=sync threads=120 work=cpu:80us,down,cpu:40us
node ads     kind=sync threads=120 work=cpu:80us,down,cpu:40us
node db      kind=sync threads=100 work=cpu:500us
edge front catalog
edge front ads
edge catalog db
edge ads db
freeze db first=8s period=12s pause=900ms
)");
  cfg.duration = quick ? Duration::seconds(16) : Duration::seconds(40);
  return cfg;
}

void run_diamond(const bench::BenchFlags& flags, bench::BenchPerf& perf) {
  auto cfg = diamond_config(flags.quick);
  cfg.trace = flags.config;
  cfg.obs = flags.obs;
  auto sys = graph::run_graph(cfg);

  metrics::Table t({"node", "drops", "queue_peak", "completed"});
  for (std::size_t f = 0; f < sys->flat_count(); ++f) {
    const auto& st = sys->server_flat(f)->stats();
    t.add_row({sys->server_flat(f)->name(), metrics::Table::num(st.dropped),
               std::to_string(sys->server_flat(f)->max_sys_q_depth()),
               metrics::Table::num(st.completed)});
  }
  std::puts("--- 1. diamond DAG (900 ms leaf freeze; drops walk both branches up) ---");
  std::puts(t.to_string().c_str());
  const auto report = graph::analyze_ctqo(*sys);
  if (!report.episodes.empty())
    std::puts(report.episodes[0].to_string().c_str());
  const char* verdict = report.episodes.empty()
                            ? "none"
                            : (report.episodes[0].kind ==
                                       core::CtqoEpisode::Kind::kUpstream
                                   ? "upstream"
                                   : "downstream");
  std::printf("[graph] section=diamond nodes=%zu front_drops=%llu db_drops=%llu "
              "vlrt=%llu verdict=%s\n",
              sys->flat_count(),
              static_cast<unsigned long long>(sys->server_flat(0)->stats().dropped),
              static_cast<unsigned long long>(
                  sys->server_flat(sys->flat_count() - 1)->stats().dropped),
              static_cast<unsigned long long>(sys->latency().vlrt_count()), verdict);
  bench::finalize_incidents(*sys);
  bench::maybe_dashboard(*sys, flags);
  bench::export_traces(*sys, flags);
  perf.add_events(sys->simulation().events_executed());
}

// --- 2. deep chain in the graph grammar -----------------------------------

void run_deep_chain(const bench::BenchFlags& flags, bench::BenchPerf& perf) {
  const std::size_t depth = flags.quick ? 4 : 6;
  std::string text = "graph graph-chain-" + std::to_string(depth) + "\nseed 42\nsessions 5000\n";
  for (std::size_t i = 0; i < depth; ++i) {
    const std::string name =
        (i == 0) ? "front" : (i + 1 == depth) ? "leaf" : "relay" + std::to_string(i);
    if (i + 1 == depth) {
      text += "node " + name + " kind=sync threads=100 work=cpu:500us\n";
    } else {
      text += "node " + name + " kind=sync threads=150 work=cpu:60us,down,cpu:60us\n";
    }
  }
  for (std::size_t i = 0; i + 1 < depth; ++i) {
    const std::string a =
        (i == 0) ? "front" : "relay" + std::to_string(i);
    const std::string b =
        (i + 2 == depth) ? "leaf" : "relay" + std::to_string(i + 1);
    text += "edge " + a + " " + b + "\n";
  }
  text += "freeze leaf first=8s period=12s pause=900ms\n";
  auto cfg = graph::parse_topology(text);
  cfg.duration = flags.quick ? Duration::seconds(16) : Duration::seconds(40);
  cfg.obs = flags.obs;

  std::printf("--- 2. deep chain, depth %zu, via the topology grammar (is_chain=%d) ---\n",
              depth, graph::is_chain(cfg) ? 1 : 0);
  auto sys = graph::run_graph(cfg);
  const std::uint64_t front = sys->server_flat(0)->stats().dropped;
  const std::uint64_t other = sys->total_drops() - front;
  std::printf("front drops %llu, deeper-tier drops %llu, vlrt %llu — the cascade "
              "surfaces at the front at any depth\n",
              static_cast<unsigned long long>(front),
              static_cast<unsigned long long>(other),
              static_cast<unsigned long long>(sys->latency().vlrt_count()));
  std::printf("[graph] section=deep_chain depth=%zu is_chain=%d front_drops=%llu "
              "vlrt=%llu\n",
              depth, graph::is_chain(cfg) ? 1 : 0,
              static_cast<unsigned long long>(front),
              static_cast<unsigned long long>(sys->latency().vlrt_count()));
  bench::finalize_incidents(*sys);
  bench::maybe_dashboard(*sys, flags);
  perf.add_events(sys->simulation().events_executed());
}

// --- 3. hedging crossover on a replicated group ---------------------------

graph::GraphConfig replicated_config(std::size_t sessions, bool hedge, bool quick) {
  auto cfg = graph::parse_topology(R"(
graph replicated
seed 42
sessions 1
node front kind=sync threads=400 backlog=512 work=cpu:40us,down,cpu:40us
node svc   kind=sync replicas=3 lb=random threads=50 work=cpu:2ms
edge front svc
freeze svc replica=0 first=2s period=3s pause=800ms
)");
  cfg.name = std::string("replicated-") + (hedge ? "hedge" : "base") + "-" +
             std::to_string(sessions);
  cfg.workload.sessions = sessions;
  cfg.duration = quick ? Duration::seconds(12) : Duration::seconds(30);
  if (hedge) {
    cfg.tier_policy.hedge.enabled = true;
    cfg.tier_policy.hedge.percentile = 0.95;
    cfg.tier_policy.hedge.initial_delay = Duration::millis(20);
    cfg.tier_policy.hedge.max_hedges = 1;
  }
  return cfg;
}

void run_replicated(const bench::BenchFlags& flags, bench::BenchPerf& perf) {
  std::puts("--- 3. hedging on 3 p2c replicas, one periodically frozen ---");
  metrics::Table t({"sessions", "hedge", "p99_ms", "vlrt", "drops", "hedges"});
  const std::vector<std::size_t> loads =
      flags.quick ? std::vector<std::size_t>{2000, 9000}
                  : std::vector<std::size_t>{2000, 5000, 8000, 9500};
  for (std::size_t sessions : loads) {
    for (bool hedge : {false, true}) {
      auto cfg = replicated_config(sessions, hedge, flags.quick);
      cfg.obs = flags.obs;
      auto sys = graph::run_graph(cfg);
      bench::finalize_incidents(*sys);
      const double p99 = sys->latency().histogram().percentile(99.0).to_millis();
      std::uint64_t hedges = 0;
      if (const auto* g = sys->server_flat(0)->governor())
        hedges = g->stats().hedges;
      t.add_row({std::to_string(sessions), hedge ? "on" : "off",
                 metrics::Table::num(p99, 1), metrics::Table::num(sys->latency().vlrt_count()),
                 metrics::Table::num(sys->total_drops()), metrics::Table::num(hedges)});
      std::printf("[graph] section=hedging sessions=%zu hedge=%s p99_ms=%.3f "
                  "drops=%llu hedges=%llu\n",
                  sessions, hedge ? "on" : "off", p99,
                  static_cast<unsigned long long>(sys->total_drops()),
                  static_cast<unsigned long long>(hedges));
      perf.add_events(sys->simulation().events_executed());
    }
  }
  std::puts(t.to_string().c_str());
  std::puts("expected: hedging cuts p99 at low load (duplicates dodge the frozen "
            "replica) and inflates it near saturation (duplicates are extra load).");
}

// --- 4. chain equivalence (the byte-identical contract) --------------------

core::ChainConfig native_chain(bool quick) {
  core::ChainConfig cfg;
  cfg.name = "equiv";
  const char* names[3] = {"web", "app", "db"};
  for (int i = 0; i < 3; ++i) {
    core::ChainTierSpec tier;
    tier.name = names[i];
    if (i == 2) {
      tier.sync.threads_per_process = 100;
      tier.program_fn = core::leaf_fn(Duration::micros(500), Duration::millis(2));
      tier.has_disk = true;
    } else {
      tier.program_fn = core::relay_fn(Duration::micros(60), Duration::micros(60));
    }
    cfg.tiers.push_back(std::move(tier));
  }
  cfg.workload.sessions = 5000;
  cfg.duration = quick ? Duration::seconds(10) : Duration::seconds(25);
  cfg.freeze_tier = 2;
  cfg.freeze.first = Time::from_seconds(6);
  cfg.freeze.period = Duration::seconds(8);
  cfg.freeze.pause = Duration::millis(900);
  return cfg;
}

graph::GraphConfig graph_chain(bool quick) {
  auto cfg = graph::parse_topology(R"(
graph equiv
seed 42
sessions 5000
node web kind=sync threads=150 work=cpu:60us,down,cpu:60us
node app kind=sync threads=150 work=cpu:60us,down,cpu:60us
node db  kind=sync threads=100 work=cpu:500us,disk:2ms
edge web app
edge app db
freeze db first=6s period=8s pause=900ms
)");
  cfg.duration = quick ? Duration::seconds(10) : Duration::seconds(25);
  return cfg;
}

int run_equivalence(const bench::BenchFlags& flags, bench::BenchPerf& perf) {
  std::puts("--- 4. chain-equivalence: ChainSystem vs the same topology as a graph ---");
  core::ChainSystem chain(native_chain(flags.quick));
  chain.run();
  auto gcfg = graph_chain(flags.quick);
  graph::validate(gcfg);
  graph::GraphSystem graph_sys(std::move(gcfg));
  graph_sys.run();
  const std::string a = fingerprint(chain);
  const std::string b = fingerprint(graph_sys);
  const bool match = (a == b);
  std::printf("fingerprints %s (%zu bytes)\n", match ? "IDENTICAL" : "DIFFER", a.size());
  std::printf("[graph] section=chain_equivalence match=%d bytes=%zu\n",
              match ? 1 : 0, a.size());
  if (!flags.sweep_out.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(flags.sweep_out, ec);
    metrics::write_file(flags.sweep_out + "/chain_native.csv", a);
    metrics::write_file(flags.sweep_out + "/chain_graph.csv", b);
    std::printf("wrote %s/chain_native.csv and %s/chain_graph.csv\n",
                flags.sweep_out.c_str(), flags.sweep_out.c_str());
  }
  perf.add_events(chain.simulation().events_executed());
  perf.add_events(graph_sys.simulation().events_executed());
  return match ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = bench::parse_bench_flags(argc, argv);
  if (flags.bad) return 2;
  bench::BenchPerf perf("ext_graph_topologies");
  run_diamond(flags, perf);
  run_deep_chain(flags, perf);
  run_replicated(flags, perf);
  const int rc = run_equivalence(flags, perf);
  perf.print();
  return rc;
}
