// Fig 12 reproduction: throughput of the 3-tier system vs workload
// concurrency (zero think time) for the two architectures.
// Paper: synchronous with 2000-thread pools collapses from 1159 req/s at
// concurrency 100 to 374 req/s at 1600 (thread management overhead +
// JVM GC); the asynchronous system stays high across the sweep.
#include <cstdio>

#include "bench_util.h"
#include "metrics/table.h"

int main(int argc, char** argv) {
  using namespace ntier;
  const auto tf = bench::parse_bench_flags(argc, argv);
  if (tf.bad) return 2;
  bench::BenchPerf perf("fig12_throughput");
  metrics::Table table({"concurrency", "sync_rps", "async_rps", "paper_sync"});
  const char* paper_sync[] = {"1159", "~1000", "~800", "~550", "374"};
  int row = 0;
  for (std::size_t conc : {100u, 200u, 400u, 800u, 1600u}) {
    double rps[2] = {0, 0};
    int i = 0;
    for (auto arch : {core::Architecture::kSync, core::Architecture::kNx3}) {
      auto cfg = core::scenarios::fig12_point(arch, conc);
      cfg.trace = tf.config;
      cfg.obs = tf.obs;
      if (!tf.proto.empty()) {  // banner once, applied to every point
        core::apply_protocol(cfg, *net::ProtocolProfile::by_name(tf.proto));
        if (row == 0 && i == 0) bench::apply_proto_flag(cfg, tf);
      }
      auto sys = core::run_system(cfg);
      rps[i++] = core::summarize(*sys).throughput_rps;
      bench::finalize_incidents(*sys);
      bench::export_traces(*sys, tf);
      bench::maybe_dashboard(*sys, tf);
      perf.add_events(sys->simulation().events_executed());
    }
    table.add_row({metrics::Table::num(std::uint64_t{conc}), metrics::Table::num(rps[0], 0),
                   metrics::Table::num(rps[1], 0), paper_sync[row++]});
  }
  std::puts("Fig 12: system throughput vs workload concurrency (req/s)");
  std::puts(table.to_string().c_str());
  std::puts("expected shape: sync declines steeply with concurrency; async stays flat.");
  perf.print();
  return 0;
}
