// Fig 1 reproduction: semi-log frequency of response times at WL
// 4000/7000/8000 under stochastic (burst-index-100) consolidation
// interference. Paper: multi-modal peaks near 0/3/6/9 s; throughput
// 572/990/1103 req/s; highest average CPU util 43/75/85 %.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ntier;
  const auto tf = ntier::bench::parse_bench_flags(argc, argv);
  if (tf.bad) return 2;
  bench::BenchPerf perf("fig01_multimodal");
  for (std::size_t wl : {4000u, 7000u, 8000u}) {
    auto cfg = core::scenarios::fig1_multimodal(wl);
    cfg.trace = tf.config;
    cfg.obs = tf.obs;
    bench::apply_proto_flag(cfg, tf);
    std::puts(core::config_banner(cfg).c_str());
    auto sys = core::run_system(cfg);
    auto s = core::summarize(*sys);

    std::printf("throughput: %.0f req/s   (paper: %s)\n", s.throughput_rps,
                wl == 4000 ? "572" : wl == 7000 ? "990" : "1103");
    std::printf("highest avg CPU util: %.0f%%  (paper: %s%%)\n",
                s.highest_mean_util_pct,
                wl == 4000 ? "43" : wl == 7000 ? "75" : "85");
    std::printf("dropped packets: %llu, VLRT (>=3s): %llu of %llu requests\n",
                static_cast<unsigned long long>(s.total_drops),
                static_cast<unsigned long long>(s.latency.vlrt_count),
                static_cast<unsigned long long>(s.latency.count));
    std::puts(core::histogram_panel(sys->latency()).c_str());
    bench::finalize_incidents(*sys);
    bench::export_traces(*sys, tf);
    bench::maybe_dashboard(*sys, tf);
    perf.add_events(sys->simulation().events_executed());
    std::puts("");
  }
  perf.print();
  return 0;
}
