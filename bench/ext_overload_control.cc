// Extension study: which server-side overload controls turn a
// metastable retry storm back into a bounded outage?
//
// The scenario (core/scenarios.h ext_overload_control) runs the sync
// stack near saturation under the storm-prone client configuration
// (1 s attempt timeout, 4 attempts, synchronized 10 ms backoff, no
// budget), then throttles the app host to 15% speed for 2 s. The fault
// is transient; the verdict is about what happens after it clears:
//
//   - With no admission control the backlog built during the window is
//     sustained by client retries and 3 s TCP retransmits — offered
//     load stays above drain rate and the queues never return to their
//     pre-fault band. The verdict engine calls this kMetastable.
//   - Shedding policies (queue-cap, CoDel, adaptive-LIFO, token
//     bucket, brownout) convert the excess into immediate retryable
//     errors; failed clients burn their attempts in milliseconds and
//     back off into 7 s think time, which is exactly the load drop the
//     closed loop needs. The verdict engine reports kRecovered plus a
//     time-to-recovery.
//
// The bench asserts the headline result deterministically: kNone must
// be judged metastable, and CoDel + adaptive-LIFO must recover (the
// acceptance criteria of this study). --quick runs just those two ends
// of the spectrum.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/experiment.h"
#include "core/metastability.h"
#include "core/scenarios.h"
#include "metrics/table.h"

using namespace ntier;
using core::scenarios::OverloadChoice;

namespace {

// The judged fault window must match the scenario's SlowNodeWindow.
core::RecoveryOptions verdict_options() {
  core::RecoveryOptions opt;
  opt.fault_start = sim::Time::from_seconds(12.0);
  opt.fault_clear = sim::Time::from_seconds(14.0);
  opt.horizon = sim::Duration::seconds(25);
  return opt;
}

struct RunResult {
  OverloadChoice choice;
  core::MetastabilityVerdict verdict;
  core::ExperimentSummary summary;
  std::uint64_t shed = 0;       // admission + dequeue sheds, web + app
  std::uint64_t degraded = 0;   // brownout degradations, web + app
};

RunResult run_policy(OverloadChoice choice, const bench::BenchFlags& tf,
                     bench::BenchPerf& perf) {
  auto cfg = core::scenarios::ext_overload_control(choice);
  cfg.obs = tf.obs;
  auto sys = core::run_system(cfg);
  RunResult r;
  r.choice = choice;
  r.summary = core::summarize(*sys);
  r.verdict = core::classify_recovery(
      {sys->web()->name(), sys->app()->name(), sys->db()->name()}, sys->sampler(),
      verdict_options());
  for (auto* srv : {sys->web(), sys->app()}) {
    if (const auto* c = srv->overload()) {
      r.shed += c->stats().total_shed();
      r.degraded += c->stats().degraded;
    }
  }
  bench::finalize_incidents(*sys);
  bench::maybe_dashboard(*sys, tf);
  perf.add_events(sys->simulation().events_executed());
  return r;
}

const char* verdict_cell(const RunResult& r) {
  return r.verdict.regime == core::Regime::kRecovered ? "recovered" : "METASTABLE";
}

}  // namespace

int main(int argc, char** argv) {
  const auto tf = bench::parse_bench_flags(argc, argv);
  if (tf.bad) return 2;
  bench::BenchPerf perf("ext_overload_control");

  std::vector<OverloadChoice> sweep;
  if (tf.quick) {
    sweep = {OverloadChoice::kNone, OverloadChoice::kCoDel};
  } else {
    sweep = {OverloadChoice::kNone,         OverloadChoice::kQueueCap,
             OverloadChoice::kTokenBucket,  OverloadChoice::kCoDel,
             OverloadChoice::kAdaptiveLifo, OverloadChoice::kBrownout};
  }

  std::puts("=== overload control vs the metastable storm ===");
  std::puts("    (app host at 15% speed for 12s..14s; naive-retry clients, WL 8000)");
  metrics::Table t({"policy", "verdict", "ttr_s", "amplif", "shed", "degraded", "vlrt",
                    "drops", "failed", "goodput_rps"});
  std::vector<RunResult> results;
  for (auto c : sweep) {
    auto r = run_policy(c, tf, perf);
    t.add_row({core::scenarios::to_string(c), verdict_cell(r),
               r.verdict.regime == core::Regime::kRecovered
                   ? metrics::Table::num(r.verdict.time_to_recovery.to_seconds(), 1)
                   : std::string("-"),
               metrics::Table::num(r.verdict.storm_amplification, 2),
               metrics::Table::num(r.shed), metrics::Table::num(r.degraded),
               metrics::Table::num(r.summary.latency.vlrt_count),
               metrics::Table::num(r.summary.total_drops),
               metrics::Table::num(r.summary.failed_requests),
               metrics::Table::num(r.summary.throughput_rps, 0)});
    results.push_back(std::move(r));
  }
  std::puts(t.to_string().c_str());

  // Per-tier detail for the two headline runs.
  for (const auto& r : results) {
    if (r.choice != OverloadChoice::kNone && r.choice != OverloadChoice::kCoDel) continue;
    std::printf("--- %s ---\n%s", core::scenarios::to_string(r.choice),
                r.verdict.to_string().c_str());
    if (r.summary.ctqo.retry_storm_episodes > 0)
      std::printf("  analyzer: %llu storm episodes, longest %.1f s, peak retry "
                  "amplification %.2fx\n",
                  static_cast<unsigned long long>(r.summary.ctqo.retry_storm_episodes),
                  r.summary.ctqo.longest_storm.to_seconds(),
                  r.summary.ctqo.peak_retry_amplification);
  }

  // Acceptance: the uncontrolled baseline must be judged metastable and
  // the sojourn-control policies must restore bounded recovery.
  int failures = 0;
  for (const auto& r : results) {
    const bool is_recovered = r.verdict.regime == core::Regime::kRecovered;
    if (r.choice == OverloadChoice::kNone && is_recovered) {
      std::puts("FAIL: uncontrolled baseline recovered — no metastable storm to fix");
      ++failures;
    }
    if ((r.choice == OverloadChoice::kCoDel || r.choice == OverloadChoice::kAdaptiveLifo) &&
        !is_recovered) {
      std::printf("FAIL: %s did not recover within the horizon\n",
                  core::scenarios::to_string(r.choice));
      ++failures;
    }
  }
  if (failures == 0) std::puts("verdicts OK: baseline metastable, shedding recovers");
  perf.print();
  return failures == 0 ? 0 : 1;
}
