// Extension study: other millibottleneck causes from the paper's
// literature — JVM GC pauses (ref [32]) and DVFS governor lag (ref
// [31]). The paper's claim is that asynchrony removes CTQO *regardless
// of the specific cause* of millibottlenecks; this bench checks that for
// both causes by running the sync and NX=3 stacks under identical
// injections.
#include <cstdio>

#include "bench_util.h"
#include "core/ctqo_analyzer.h"
#include "core/experiment.h"
#include "core/scenarios.h"
#include "metrics/table.h"

using namespace ntier;

namespace {

void run_pair(const char* title, core::ExperimentConfig sync_cfg,
              core::ExperimentConfig async_cfg, const bench::BenchFlags& tf,
              bench::BenchPerf& perf) {
  std::printf("=== %s ===\n", title);
  metrics::Table t({"stack", "drops", "vlrt", "p99.9_ms", "episodes"});
  for (auto* cfg : {&sync_cfg, &async_cfg}) {
    cfg->obs = tf.obs;
    auto sys = core::run_system(*cfg);
    auto s = core::summarize(*sys);
    t.add_row({core::to_string(cfg->system.arch), metrics::Table::num(s.total_drops),
               metrics::Table::num(s.latency.vlrt_count),
               metrics::Table::num(s.latency.p999.to_millis(), 0),
               metrics::Table::num(std::uint64_t{s.ctqo.episodes.size()})});
    if (cfg->system.arch == core::Architecture::kSync && !s.ctqo.episodes.empty())
      std::fputs(s.ctqo.to_string().c_str(), stdout);
    bench::finalize_incidents(*sys);
    bench::maybe_dashboard(*sys, tf);
    perf.add_events(sys->simulation().events_executed());
  }
  std::puts(t.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto tf = bench::parse_bench_flags(argc, argv);
  if (tf.bad) return 2;
  bench::BenchPerf perf("ext_millibottleneck_causes");
  run_pair("GC-pause millibottlenecks in the app tier (450 ms every 12 s)",
           core::scenarios::ext_gc_pause(core::Architecture::kSync),
           core::scenarios::ext_gc_pause(core::Architecture::kNx3), tf, perf);

  run_pair("DVFS governor lag in the app tier (min 30% freq, 2 s governor interval)",
           core::scenarios::ext_dvfs(core::Architecture::kSync),
           core::scenarios::ext_dvfs(core::Architecture::kNx3), tf, perf);

  // Governor detail for the DVFS case.
  auto sys = core::run_system(core::scenarios::ext_dvfs(core::Architecture::kSync));
  std::printf("DVFS(sync): %.1fs throttled below max frequency, %zu freq changes\n",
              sys->dvfs()->throttled_seconds(), sys->dvfs()->history().size());
  perf.add_events(sys->simulation().events_executed());
  perf.print();
  return 0;
}
