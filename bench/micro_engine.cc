// google-benchmark microbenchmarks of the simulation substrates: these
// bound how much simulated time per wall-second the harness sustains.
//
// The CancelHeavy pair compares the current indexed 4-ary heap
// (O(log n) erase on cancel) against the previous lazy-cancellation
// std::priority_queue, replicated below as LazyEventQueue: the workload
// is the processor-sharing core's reschedule pattern (cancel the
// pending completion event, push a new one) where lazy cancellation
// accumulates dead entries. scripts/run_benches.py records the
// indexed-over-lazy delta into BENCH_ntier.json.
#include <benchmark/benchmark.h>

#include <memory>
#include <queue>
#include <vector>

#include "cpu/host_core.h"
#include "metrics/histogram.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulation.h"

namespace {

using namespace ntier;
using sim::Duration;

// The pre-indexed-heap EventQueue, verbatim in behaviour: a
// std::priority_queue with shared-flag lazy cancellation — cancel() is
// O(1) but dead entries stay in the heap until pop reaches them.
class LazyEventQueue {
 public:
  struct Handle {
    std::shared_ptr<bool> done;
    void cancel() { if (done) *done = true; }
  };

  Handle push(sim::Time when, sim::EventFn fn) {
    auto done = std::make_shared<bool>(false);
    heap_.push(Entry{when, next_seq_++, std::move(fn), done});
    return Handle{std::move(done)};
  }

  bool pop_and_run() {
    while (!heap_.empty() && *heap_.top().done) heap_.pop();
    if (heap_.empty()) return false;
    Entry e = heap_.top();
    heap_.pop();
    *e.done = true;
    e.fn();
    return true;
  }

  std::size_t size_upper_bound() const { return heap_.size(); }

 private:
  struct Entry {
    sim::Time when;
    std::uint64_t seq;
    sim::EventFn fn;
    std::shared_ptr<bool> done;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

// Cancel-heavy churn: 256 standing "timers" that are constantly
// rescheduled (cancel + re-push) with an occasional pop — how every
// tier server's next-completion event behaves under load.
template <typename Queue, typename Handle>
void cancel_heavy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Queue q;
    std::vector<Handle> slots(256);
    sim::Rng rng(7);
    for (int i = 0; i < n; ++i) {
      auto& slot = slots[rng.next_u64() % 256];
      slot.cancel();
      slot = q.push(sim::Time::from_micros(
                        1 + static_cast<std::int64_t>(rng.next_u64() % 1000000)),
                    [] {});
      if (i % 8 == 0) q.pop_and_run();
    }
    benchmark::DoNotOptimize(q);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_CancelHeavy_LazyPQ(benchmark::State& state) {
  cancel_heavy<LazyEventQueue, LazyEventQueue::Handle>(state);
}
BENCHMARK(BM_CancelHeavy_LazyPQ)->Arg(100000);

void BM_CancelHeavy_IndexedHeap(benchmark::State& state) {
  cancel_heavy<sim::EventQueue, sim::EventHandle>(state);
}
BENCHMARK(BM_CancelHeavy_IndexedHeap)->Arg(100000);

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i)
      q.push(sim::Time::from_micros(static_cast<std::int64_t>(rng.next_u64() % 1000000)),
             [] {});
    while (q.pop_and_run()) {
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1000)->Arg(100000);

void BM_EventCancellation(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventHandle> handles;
    handles.reserve(1000);
    for (int i = 0; i < 1000; ++i)
      handles.push_back(q.push(sim::Time::from_micros(i), [] {}));
    for (auto& h : handles) h.cancel();
    benchmark::DoNotOptimize(q.empty());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventCancellation);

void BM_PsCoreChurn(benchmark::State& state) {
  // Continuous submit/complete churn on a shared core with two VMs —
  // the hot path of every tier server.
  for (auto _ : state) {
    sim::Simulation sim;
    cpu::HostCpu host(sim, 1.0);
    auto* a = host.add_vm("a");
    auto* b = host.add_vm("b");
    sim::Rng rng(2);
    int completed = 0;
    for (int i = 0; i < 2000; ++i) {
      auto* vm = (i % 2 != 0) ? b : a;
      sim.after(Duration::micros(static_cast<std::int64_t>(rng.next_u64() % 10000)),
                [vm, &completed, &rng] {
                  vm->submit(Duration::micros(5 + static_cast<std::int64_t>(
                                                      rng.next_u64() % 200)),
                             [&completed] { ++completed; });
                });
    }
    sim.run_all();
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_PsCoreChurn);

void BM_HistogramRecord(benchmark::State& state) {
  metrics::LinearHistogram h(Duration::millis(100), Duration::seconds(30));
  sim::Rng rng(3);
  for (auto _ : state) {
    h.record(Duration::micros(static_cast<std::int64_t>(rng.next_u64() % 10'000'000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_RngExponential(benchmark::State& state) {
  sim::Rng rng(4);
  double acc = 0;
  for (auto _ : state) acc += rng.exponential(1.0);
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngExponential);

}  // namespace

BENCHMARK_MAIN();
