// google-benchmark microbenchmarks of the simulation substrates: these
// bound how much simulated time per wall-second the harness sustains.
#include <benchmark/benchmark.h>

#include "cpu/host_core.h"
#include "metrics/histogram.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulation.h"

namespace {

using namespace ntier;
using sim::Duration;

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i)
      q.push(sim::Time::from_micros(static_cast<std::int64_t>(rng.next_u64() % 1000000)),
             [] {});
    while (q.pop_and_run()) {
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1000)->Arg(100000);

void BM_EventCancellation(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventHandle> handles;
    handles.reserve(1000);
    for (int i = 0; i < 1000; ++i)
      handles.push_back(q.push(sim::Time::from_micros(i), [] {}));
    for (auto& h : handles) h.cancel();
    benchmark::DoNotOptimize(q.empty());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventCancellation);

void BM_PsCoreChurn(benchmark::State& state) {
  // Continuous submit/complete churn on a shared core with two VMs —
  // the hot path of every tier server.
  for (auto _ : state) {
    sim::Simulation sim;
    cpu::HostCpu host(sim, 1.0);
    auto* a = host.add_vm("a");
    auto* b = host.add_vm("b");
    sim::Rng rng(2);
    int completed = 0;
    for (int i = 0; i < 2000; ++i) {
      auto* vm = (i % 2 != 0) ? b : a;
      sim.after(Duration::micros(static_cast<std::int64_t>(rng.next_u64() % 10000)),
                [vm, &completed, &rng] {
                  vm->submit(Duration::micros(5 + static_cast<std::int64_t>(
                                                      rng.next_u64() % 200)),
                             [&completed] { ++completed; });
                });
    }
    sim.run_all();
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_PsCoreChurn);

void BM_HistogramRecord(benchmark::State& state) {
  metrics::LinearHistogram h(Duration::millis(100), Duration::seconds(30));
  sim::Rng rng(3);
  for (auto _ : state) {
    h.record(Duration::micros(static_cast<std::int64_t>(rng.next_u64() % 10'000'000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_RngExponential(benchmark::State& state) {
  sim::Rng rng(4);
  double acc = 0;
  for (auto _ : state) acc += rng.exponential(1.0);
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngExponential);

}  // namespace

BENCHMARK_MAIN();
