// google-benchmark microbenchmarks of the simulation substrates: these
// bound how much simulated time per wall-second the harness sustains.
//
// Three generations of the future-event list are compared in place:
// the original lazy-cancellation std::priority_queue (LazyEventQueue),
// the PR-5 indexed 4-ary heap (IndexedHeapEventQueue), and the live
// timing-wheel sim::EventQueue. The CancelHeavy trio runs the
// processor-sharing core's reschedule pattern (cancel the pending
// completion event, push a new one) against each; the Dense pair runs
// the homogeneous self-rescheduling timer mass the wheel was built for
// (think times, RTOs, sampler ticks); FarTimer pins the beyond-horizon
// heap fallback. scripts/run_benches.py records all of it into
// BENCH_ntier.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "cpu/host_core.h"
#include "metrics/histogram.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulation.h"

namespace {

using namespace ntier;
using sim::Duration;

// The pre-indexed-heap EventQueue, verbatim in behaviour: a
// std::priority_queue with shared-flag lazy cancellation — cancel() is
// O(1) but dead entries stay in the heap until pop reaches them.
class LazyEventQueue {
 public:
  struct Handle {
    std::shared_ptr<bool> done;
    void cancel() { if (done) *done = true; }
  };

  Handle push(sim::Time when, sim::EventFn fn) {
    auto done = std::make_shared<bool>(false);
    heap_.push(Entry{when, next_seq_++, std::move(fn), done});
    return Handle{std::move(done)};
  }

  bool pop_and_run() {
    while (!heap_.empty() && *heap_.top().done) heap_.pop();
    if (heap_.empty()) return false;
    Entry e = heap_.top();
    heap_.pop();
    *e.done = true;
    e.fn();
    return true;
  }

  std::size_t size_upper_bound() const { return heap_.size(); }

 private:
  struct Entry {
    sim::Time when;
    std::uint64_t seq;
    sim::EventFn fn;
    std::shared_ptr<bool> done;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

// The PR-5 generation, before the wheel front-end: every event lives
// in one indexed 4-ary min-heap keyed by (when, seq), with
// O(log n) erase-by-handle through a generation-checked slot table.
// Reproduced here so the Dense and CancelHeavy cases measure exactly
// what the timing wheel bought over its immediate predecessor.
class IndexedHeapEventQueue {
 public:
  struct Handle {
    IndexedHeapEventQueue* q = nullptr;
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
    void cancel() {
      if (q != nullptr) q->do_cancel(slot, gen);
    }
  };

  Handle push(sim::Time when, sim::EventFn fn) {
    std::uint32_t slot;
    if (free_head_ != kNil) {
      slot = free_head_;
      free_head_ = meta_[slot].pos;
    } else {
      slot = static_cast<std::uint32_t>(meta_.size());
      meta_.emplace_back();
      fns_.emplace_back();
    }
    meta_[slot].when = when.count_micros();
    meta_[slot].seq = next_seq_++;
    fns_[slot] = std::move(fn);
    meta_[slot].pos = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back(slot);
    sift_up(meta_[slot].pos);
    return Handle{this, slot, meta_[slot].gen};
  }

  bool pop_and_run() {
    if (heap_.empty()) return false;
    const std::uint32_t slot = heap_.front();
    remove_at(0);
    sim::EventFn fn = std::move(fns_[slot]);
    release(slot);
    fn();
    return true;
  }

  std::int64_t next_time_micros() const {
    return heap_.empty() ? std::numeric_limits<std::int64_t>::max()
                         : meta_[heap_.front()].when;
  }

  bool empty() const { return heap_.empty(); }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Meta {
    std::int64_t when = 0;
    std::uint64_t seq = 0;
    std::uint32_t gen = 0;
    std::uint32_t pos = kNil;  // heap index while live, next-free link after
  };

  void do_cancel(std::uint32_t slot, std::uint32_t gen) {
    if (slot >= meta_.size() || meta_[slot].gen != gen) return;
    remove_at(meta_[slot].pos);
    fns_[slot] = sim::EventFn();
    release(slot);
  }

  void release(std::uint32_t slot) {
    ++meta_[slot].gen;
    meta_[slot].pos = free_head_;
    free_head_ = slot;
  }

  bool before(std::uint32_t a, std::uint32_t b) const {
    if (meta_[a].when != meta_[b].when) return meta_[a].when < meta_[b].when;
    return meta_[a].seq < meta_[b].seq;
  }

  void place(std::uint32_t pos, std::uint32_t slot) {
    heap_[pos] = slot;
    meta_[slot].pos = pos;
  }

  void sift_up(std::uint32_t pos) {
    const std::uint32_t slot = heap_[pos];
    while (pos > 0) {
      const std::uint32_t parent = (pos - 1) / 4;
      if (!before(slot, heap_[parent])) break;
      place(pos, heap_[parent]);
      pos = parent;
    }
    place(pos, slot);
  }

  void sift_down(std::uint32_t pos) {
    const std::uint32_t slot = heap_[pos];
    const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
    for (;;) {
      const std::uint32_t first = pos * 4 + 1;
      if (first >= n) break;
      std::uint32_t best = first;
      const std::uint32_t end = first + 4 < n ? first + 4 : n;
      for (std::uint32_t c = first + 1; c < end; ++c)
        if (before(heap_[c], heap_[best])) best = c;
      if (!before(heap_[best], slot)) break;
      place(pos, heap_[best]);
      pos = best;
    }
    place(pos, slot);
  }

  void remove_at(std::uint32_t pos) {
    const std::uint32_t last = heap_.back();
    heap_.pop_back();
    if (pos == heap_.size()) return;
    place(pos, last);
    if (pos > 0 && before(last, heap_[(pos - 1) / 4]))
      sift_up(pos);
    else
      sift_down(pos);
  }

  std::vector<std::uint32_t> heap_;  // heap of slot indices
  std::vector<Meta> meta_;
  std::vector<sim::EventFn> fns_;
  std::uint32_t free_head_ = kNil;
  std::uint64_t next_seq_ = 0;
};

// Cancel-heavy churn: 256 standing "timers" that are constantly
// rescheduled (cancel + re-push) with an occasional pop — how every
// tier server's next-completion event behaves under load.
template <typename Queue, typename Handle>
void cancel_heavy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Queue q;
    std::vector<Handle> slots(256);
    sim::Rng rng(7);
    for (int i = 0; i < n; ++i) {
      auto& slot = slots[rng.next_u64() % 256];
      slot.cancel();
      slot = q.push(sim::Time::from_micros(
                        1 + static_cast<std::int64_t>(rng.next_u64() % 1000000)),
                    [] {});
      if (i % 8 == 0) q.pop_and_run();
    }
    benchmark::DoNotOptimize(q);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_CancelHeavy_LazyPQ(benchmark::State& state) {
  cancel_heavy<LazyEventQueue, LazyEventQueue::Handle>(state);
}
BENCHMARK(BM_CancelHeavy_LazyPQ)->Arg(100000);

void BM_CancelHeavy_IndexedHeap(benchmark::State& state) {
  cancel_heavy<IndexedHeapEventQueue, IndexedHeapEventQueue::Handle>(state);
}
BENCHMARK(BM_CancelHeavy_IndexedHeap)->Arg(100000);

void BM_WheelCancelHeavy(benchmark::State& state) {
  cancel_heavy<sim::EventQueue, sim::EventHandle>(state);
}
BENCHMARK(BM_WheelCancelHeavy)->Arg(100000);

// A self-rescheduling timer: each firing re-arms itself a small random
// delay ahead, like think-time clocks, retransmission timers, and
// sampler ticks do. Small enough (32 bytes) to stay inside the
// queues' inline callback storage — no allocation per event.
template <typename Queue>
struct DenseTimer {
  Queue* q;
  sim::Rng* rng;
  int* remaining;
  std::int64_t when;
  void operator()() {
    if (--*remaining <= 0) return;
    when += 1 + static_cast<std::int64_t>(rng->next_u64() % 250);
    q->push(sim::Time::from_micros(when),
            DenseTimer{q, rng, remaining, when});
  }
};

// Dense homogeneous timer mass: 256 standing timers re-arming at
// level-0 distances. This is the wheel's design load — every push
// lands O(1) in a near slot — and the workload behind the engine's
// events-per-second headline.
template <typename Queue>
void dense_timers(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Queue q;
    sim::Rng rng(11);
    int remaining = n;
    for (int i = 0; i < 256; ++i) {
      const std::int64_t when =
          1 + static_cast<std::int64_t>(rng.next_u64() % 250);
      q.push(sim::Time::from_micros(when),
             DenseTimer<Queue>{&q, &rng, &remaining, when});
    }
    if constexpr (requires(Queue& w, sim::Time& t) {
                    w.run_next_tick(sim::Time::max(), t);
                  }) {
      // The batched per-tick driver the Simulation itself uses.
      sim::Time now{};
      while (q.run_next_tick(sim::Time::max(), now) > 0) {
      }
    } else {
      while (q.pop_and_run()) {
      }
    }
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_WheelDense(benchmark::State& state) {
  dense_timers<sim::EventQueue>(state);
}
BENCHMARK(BM_WheelDense)->Arg(1000000);

void BM_HeapDense(benchmark::State& state) {
  dense_timers<IndexedHeapEventQueue>(state);
}
BENCHMARK(BM_HeapDense)->Arg(1000000);

// Far, irregular timers beyond the wheel horizon (>= 2^32 us out):
// all of them take the indexed-heap fallback, so this pins the cost of
// the escape hatch rather than the wheel fast path.
void BM_FarTimer(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Rng rng(13);
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i)
      q.push(sim::Time::from_micros(
                 (1ll << 33) +
                 static_cast<std::int64_t>(rng.next_u64() % (1ll << 32))),
             [] {});
    while (q.pop_and_run()) {
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FarTimer)->Arg(100000);

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i)
      q.push(sim::Time::from_micros(static_cast<std::int64_t>(rng.next_u64() % 1000000)),
             [] {});
    while (q.pop_and_run()) {
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1000)->Arg(100000);

void BM_EventCancellation(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventHandle> handles;
    handles.reserve(1000);
    for (int i = 0; i < 1000; ++i)
      handles.push_back(q.push(sim::Time::from_micros(i), [] {}));
    for (auto& h : handles) h.cancel();
    benchmark::DoNotOptimize(q.empty());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventCancellation);

void BM_PsCoreChurn(benchmark::State& state) {
  // Continuous submit/complete churn on a shared core with two VMs —
  // the hot path of every tier server.
  for (auto _ : state) {
    sim::Simulation sim;
    cpu::HostCpu host(sim, 1.0);
    auto* a = host.add_vm("a");
    auto* b = host.add_vm("b");
    sim::Rng rng(2);
    int completed = 0;
    for (int i = 0; i < 2000; ++i) {
      auto* vm = (i % 2 != 0) ? b : a;
      sim.after(Duration::micros(static_cast<std::int64_t>(rng.next_u64() % 10000)),
                [vm, &completed, &rng] {
                  vm->submit(Duration::micros(5 + static_cast<std::int64_t>(
                                                      rng.next_u64() % 200)),
                             [&completed] { ++completed; });
                });
    }
    sim.run_all();
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_PsCoreChurn);

void BM_HistogramRecord(benchmark::State& state) {
  metrics::LinearHistogram h(Duration::millis(100), Duration::seconds(30));
  sim::Rng rng(3);
  for (auto _ : state) {
    h.record(Duration::micros(static_cast<std::int64_t>(rng.next_u64() % 10'000'000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_RngExponential(benchmark::State& state) {
  sim::Rng rng(4);
  double acc = 0;
  for (auto _ : state) acc += rng.exponential(1.0);
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngExponential);

}  // namespace

BENCHMARK_MAIN();
