// Shared rendering for the per-figure bench binaries: each binary runs a
// canned scenario and prints the series the corresponding paper figure
// plots, plus the summary rows the paper quotes in its captions.
//
// Every figure binary accepts the shared bench flags:
//   --trace=all|vlrt|1inN|off   sampling mode (N an integer, e.g. 1in100)
//   --trace-out=DIR             trace artifact directory (default trace_out/)
//   --dashboard=DIR             write <DIR>/<name>.dashboard.html per run
//   --incidents=DIR             enable the online incident detectors +
//                               flight recorder (src/obs); incident
//                               artifacts land in DIR
//   --flight-window=SEC         retroactive capture half-window (default 5)
//   --proto=NAME                apply a named protocol profile
//                               (net/protocol.h, docs/PROTOCOLS.md) to the
//                               scenario before running; default keeps the
//                               scenario's own stack (fixed3s). Honored by
//                               every fig* binary; the study benches
//                               (ablation/ext/sweep) own their protocol
//                               axis and ignore it.
// Sweep-capable benches (bench/sweep_ctqo_surface) additionally accept
//   --replications=R            seed-replications per grid point (default 3)
//   --jobs=J                    worker threads; artifacts are J-invariant
//   --sweep-out=DIR             reduced CSV + sweep manifest directory
//   --quick                     shrunken grid for CI smoke runs
// With tracing on, the run writes <DIR>/<name>.trace.json (Chrome
// trace_event format — load in chrome://tracing or ui.perfetto.dev) and
// <DIR>/<name>.trace_spans.csv, then prints the per-VLRT critical-path
// attribution table (docs/TRACING.md). With --dashboard, each run also
// renders the single-file HTML dashboard (report/dashboard.h) with the
// CTQO episodes and the correlation engine's verdict inlined.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/chain.h"
#include "core/correlate.h"
#include "core/ctqo_analyzer.h"
#include "core/experiment.h"
#include "core/manifest.h"
#include "core/report.h"
#include "core/scenarios.h"
#include "graph/graph_system.h"
#include "metrics/csv.h"
#include "obs/incident_monitor.h"
#include "report/dashboard.h"
#include "trace/chrome_trace.h"
#include "trace/critical_path.h"

namespace ntier::bench {

struct BenchFlags {
  trace::TraceConfig config;        // mode kOff unless --trace given
  std::string out_dir = "trace_out";
  std::string dashboard_dir;        // empty = no dashboard
  obs::ObsConfig obs;               // enabled iff --incidents given
  // Sweep controls (sweep-capable benches only; sweep/engine.h):
  std::size_t replications = 3;     // --replications=R seed-replications/point
  std::size_t jobs = 1;             // --jobs=J worker threads (artifact-invariant)
  std::string sweep_out = "sweep_out";  // --sweep-out=DIR for CSV + manifest
  bool quick = false;               // --quick: shrunken grid for smoke runs
  std::string proto;                // --proto=NAME protocol profile ("" = default)
  bool bad = false;                 // an unparsable flag was seen
};

// Parses --trace= / --trace-out= / --dashboard= / --replications= /
// --jobs= / --sweep-out= / --quick from argv; prints usage on a bad flag.
inline BenchFlags parse_bench_flags(int argc, char** argv) {
  BenchFlags f;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--replications=", 0) == 0) {
      const long r = std::strtol(arg.c_str() + 15, nullptr, 10);
      if (r >= 1) f.replications = static_cast<std::size_t>(r);
      else f.bad = true;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      const long j = std::strtol(arg.c_str() + 7, nullptr, 10);
      if (j >= 1) f.jobs = static_cast<std::size_t>(j);
      else f.bad = true;
    } else if (arg.rfind("--sweep-out=", 0) == 0) {
      f.sweep_out = arg.substr(12);
      if (f.sweep_out.empty()) f.bad = true;
    } else if (arg == "--quick") {
      f.quick = true;
    } else if (arg.rfind("--proto=", 0) == 0) {
      f.proto = arg.substr(8);
      if (f.proto.empty() || !net::ProtocolProfile::by_name(f.proto)) f.bad = true;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      f.out_dir = arg.substr(12);
      if (f.out_dir.empty()) f.bad = true;
    } else if (arg.rfind("--dashboard=", 0) == 0) {
      f.dashboard_dir = arg.substr(12);
      if (f.dashboard_dir.empty()) f.bad = true;
    } else if (arg.rfind("--incidents=", 0) == 0) {
      f.obs.out_dir = arg.substr(12);
      if (f.obs.out_dir.empty()) f.bad = true;
      else f.obs.enabled = true;
    } else if (arg.rfind("--flight-window=", 0) == 0) {
      const double w = std::strtod(arg.c_str() + 16, nullptr);
      if (w > 0.0) f.obs.flight.window = sim::Duration::from_seconds(w);
      else f.bad = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      const std::string mode = arg.substr(8);
      if (mode == "off") {
        f.config.mode = trace::TraceMode::kOff;
      } else if (mode == "all") {
        f.config.mode = trace::TraceMode::kAll;
      } else if (mode == "vlrt") {
        f.config.mode = trace::TraceMode::kVlrtOnly;
      } else if (mode.rfind("1in", 0) == 0) {
        const long n = std::strtol(mode.c_str() + 3, nullptr, 10);
        if (n >= 1) {
          f.config.mode = trace::TraceMode::kSampled;
          f.config.sample_every_n = static_cast<std::uint64_t>(n);
        } else {
          f.bad = true;
        }
      } else {
        f.bad = true;
      }
    } else {
      f.bad = true;
    }
  }
  if (f.bad) {
    std::fprintf(stderr,
                 "usage: %s [--trace=all|vlrt|1inN|off] [--trace-out=DIR] "
                 "[--dashboard=DIR] [--incidents=DIR] [--flight-window=SEC] "
                 "[--proto=NAME] [--replications=R] [--jobs=J] "
                 "[--sweep-out=DIR] [--quick]\n",
                 argc > 0 ? argv[0] : "fig");
  }
  return f;
}

// Applies --proto=NAME to a scenario config and prints a banner line so
// the output records which stack produced it. No-op (and no output)
// without the flag, keeping default bench output byte-identical.
inline void apply_proto_flag(core::ExperimentConfig& cfg, const BenchFlags& flags) {
  if (flags.proto.empty()) return;
  const auto p = net::ProtocolProfile::by_name(flags.proto);
  if (!p) return;  // parse_bench_flags already flagged it
  core::apply_protocol(cfg, *p);
  std::printf("protocol profile: %s (rto0=%.0fms admission=%s)\n", p->name.c_str(),
              p->rto.rto(0).to_millis(), net::to_string(p->admission));
}

// Wall-clock + engine-throughput accounting for one bench binary. The
// wall clock lives only in the bench harness — simulated runs never read
// it — so determinism of the artifacts is untouched; the [perf] line is
// the one intentionally run-varying output (scripts/run_benches.py
// collects it into BENCH_ntier.json).
class BenchPerf {
 public:
  explicit BenchPerf(std::string bench)
      : bench_(std::move(bench)), t0_(std::chrono::steady_clock::now()) {}
  void add_events(std::uint64_t n) { events_ += n; }
  void print() const {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
    std::printf("[perf] bench=%s events=%llu wall_s=%.3f events_per_s=%.0f\n",
                bench_.c_str(), static_cast<unsigned long long>(events_), wall,
                wall > 0.0 ? static_cast<double>(events_) / wall : 0.0);
  }

 private:
  std::string bench_;
  std::uint64_t events_ = 0;
  std::chrono::steady_clock::time_point t0_;
};

// Closes the incident monitor's books after a run — pending retroactive
// flight dump plus <name>.incident.json — and prints its report to
// stdout. Call right after run(), before maybe_dashboard. No-op when
// --incidents was not given. Works on any system exposing obs().
template <typename System>
inline void finalize_incidents(System& sys) {
  obs::IncidentMonitor* om = sys.obs();
  if (om == nullptr) return;
  om->finalize(sys.simulation().now());
  const std::string report = om->to_string();
  if (!report.empty()) std::fputs(report.c_str(), stdout);
}

// The incident summary pointer manifests expect: non-null only when at
// least one incident fired (quiet runs keep byte-identical manifests).
inline const obs::IncidentSummary* incidents_for_manifest(
    const obs::IncidentMonitor* om, obs::IncidentSummary& storage) {
  if (om == nullptr) return nullptr;
  storage = om->summary();
  return storage.count > 0 ? &storage : nullptr;
}

// Writes <dir>/<name>.dashboard.html when --dashboard was given: the
// whole run (histogram, tier timelines, VLRT strip, CTQO episodes, and
// the correlation engine's causal-chain ranking) in one self-contained
// file, plus the <name>.manifest.json sidecar. Byte-identical for a
// fixed seed. With --incidents, fired incidents ride along into both
// (markers/table in the dashboard, the "incidents" manifest block).
inline void maybe_dashboard(core::NTierSystem& sys, const BenchFlags& flags) {
  if (flags.dashboard_dir.empty()) return;
  const auto ctqo = core::analyze_ctqo(sys);
  const auto corr = core::correlate(sys);
  obs::IncidentSummary inc;
  const std::string path = report::write_dashboard(sys, ctqo, corr, flags.dashboard_dir,
                                                   sys.config().name, sys.obs());
  core::write_manifest(sys, flags.dashboard_dir, &ctqo,
                       incidents_for_manifest(sys.obs(), inc));
  std::printf("wrote %s (%s)\n", path.c_str(), core::to_string(corr.propagation));
}

inline void maybe_dashboard(core::ChainSystem& sys, const BenchFlags& flags) {
  if (flags.dashboard_dir.empty()) return;
  const auto ctqo = core::analyze_ctqo(sys);
  const auto corr = core::correlate(sys);
  obs::IncidentSummary inc;
  const std::string path = report::write_dashboard(sys, ctqo, corr, flags.dashboard_dir,
                                                   sys.config().name, sys.obs());
  core::write_manifest(sys, flags.dashboard_dir, &ctqo,
                       incidents_for_manifest(sys.obs(), inc));
  std::printf("wrote %s (%s)\n", path.c_str(), core::to_string(corr.propagation));
}

inline void maybe_dashboard(graph::GraphSystem& sys, const BenchFlags& flags) {
  if (flags.dashboard_dir.empty()) return;
  const auto ctqo = graph::analyze_ctqo(sys);
  const auto corr = graph::correlate(sys);
  obs::IncidentSummary inc;
  const std::string path = report::write_dashboard(sys, ctqo, corr, flags.dashboard_dir,
                                                   sys.config().name, sys.obs());
  graph::write_manifest(sys, flags.dashboard_dir, &ctqo,
                        incidents_for_manifest(sys.obs(), inc));
  std::printf("wrote %s (%s)\n", path.c_str(), core::to_string(corr.propagation));
}

// Post-run trace artifacts: writes the Chrome JSON + span CSV and prints
// the per-VLRT attribution against the run's CTQO episodes. No-op when
// tracing was off.
inline void export_traces_for(trace::Tracer* tracer, const core::CtqoReport& report,
                              const std::string& name, const BenchFlags& flags) {
  std::error_code ec;
  std::filesystem::create_directories(flags.out_dir, ec);
  const std::string base = flags.out_dir + "/" + name;
  const std::string json_path = base + ".trace.json";
  const std::string csv_path = base + ".trace_spans.csv";
  const bool ok =
      metrics::write_file(json_path, trace::chrome_trace_json(tracer->traces())) &&
      metrics::write_file(csv_path, trace::spans_csv(tracer->traces()));

  std::printf("--- tracing (%s) ---\n", trace::to_string(tracer->config().mode));
  std::printf("requests traced %llu, retained %llu, discarded %llu%s\n",
              static_cast<unsigned long long>(tracer->begun()),
              static_cast<unsigned long long>(tracer->retained()),
              static_cast<unsigned long long>(tracer->discarded()),
              tracer->dropped_by_cap() > 0 ? " (retention cap hit)" : "");
  if (ok) {
    std::printf("wrote %s and %s\n", json_path.c_str(), csv_path.c_str());
  } else {
    std::printf("FAILED writing trace artifacts under %s\n", flags.out_dir.c_str());
  }

  const auto table = core::attribute_vlrt(tracer->traces(), report,
                                          tracer->config().vlrt_threshold);
  std::puts(table.to_string().c_str());

  // A few full critical paths, so the figure's headline number ("~3 s of
  // RTO at the drop tier") is visible without opening the JSON.
  std::size_t shown = 0;
  for (const auto& tr : tracer->traces()) {
    if (!tr || tr->empty() || !tr->root().closed()) continue;
    if (tr->total() < tracer->config().vlrt_threshold) continue;
    std::puts(trace::critical_path(*tr).to_string().c_str());
    if (++shown >= 3) break;
  }
}

inline void export_traces(core::NTierSystem& sys, const BenchFlags& flags) {
  trace::Tracer* tracer = sys.tracer();
  if (tracer == nullptr) return;
  export_traces_for(tracer, core::analyze_ctqo(sys), sys.config().name, flags);
}

inline void export_traces(graph::GraphSystem& sys, const BenchFlags& flags) {
  trace::Tracer* tracer = sys.tracer();
  if (tracer == nullptr) return;
  export_traces_for(tracer, graph::analyze_ctqo(sys), sys.config().name, flags);
}

// Runs cfg and prints the standard three-panel figure layout:
//   (a) CPU demand of the named VMs (the millibottleneck evidence),
//   (b) queued requests per tier against their MaxSysQDepth,
//   (c) VLRT requests per 50 ms window,
// followed by the experiment summary and CTQO classification.
inline std::unique_ptr<core::NTierSystem> run_figure(
    const core::ExperimentConfig& cfg, const std::vector<std::string>& cpu_series,
    sim::Duration row_step = sim::Duration::seconds(1)) {
  std::puts(core::config_banner(cfg).c_str());
  auto sys = core::run_system(cfg);
  const sim::Time until = sys->simulation().now();

  std::puts("--- (a) CPU demand %, peak per row ---");
  std::puts(core::timeline_panel(sys->sampler(), cpu_series, until, row_step).c_str());

  std::printf("--- (b) queued requests per tier (MaxSysQDepth: %s=%zu %s=%zu %s=%zu) ---\n",
              sys->web()->name().c_str(), sys->web()->max_sys_q_depth(),
              sys->app()->name().c_str(), sys->app()->max_sys_q_depth(),
              sys->db()->name().c_str(), sys->db()->max_sys_q_depth());
  std::puts(core::timeline_panel(sys->sampler(),
                                 {sys->web()->name() + ".queue",
                                  sys->app()->name() + ".queue",
                                  sys->db()->name() + ".queue"},
                                 until, row_step)
                .c_str());

  std::puts("--- (c) VLRT requests per 50 ms window ---");
  std::puts(core::vlrt_panel(sys->latency()).c_str());

  auto summary = core::summarize(*sys);
  std::puts(summary.to_string().c_str());
  return sys;
}

}  // namespace ntier::bench
