// Shared rendering for the per-figure bench binaries: each binary runs a
// canned scenario and prints the series the corresponding paper figure
// plots, plus the summary rows the paper quotes in its captions.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/ctqo_analyzer.h"
#include "core/experiment.h"
#include "core/report.h"
#include "core/scenarios.h"

namespace ntier::bench {

// Runs cfg and prints the standard three-panel figure layout:
//   (a) CPU demand of the named VMs (the millibottleneck evidence),
//   (b) queued requests per tier against their MaxSysQDepth,
//   (c) VLRT requests per 50 ms window,
// followed by the experiment summary and CTQO classification.
inline std::unique_ptr<core::NTierSystem> run_figure(
    const core::ExperimentConfig& cfg, const std::vector<std::string>& cpu_series,
    sim::Duration row_step = sim::Duration::seconds(1)) {
  std::puts(core::config_banner(cfg).c_str());
  auto sys = core::run_system(cfg);
  const sim::Time until = sys->simulation().now();

  std::puts("--- (a) CPU demand %, peak per row ---");
  std::puts(core::timeline_panel(sys->sampler(), cpu_series, until, row_step).c_str());

  std::printf("--- (b) queued requests per tier (MaxSysQDepth: %s=%zu %s=%zu %s=%zu) ---\n",
              sys->web()->name().c_str(), sys->web()->max_sys_q_depth(),
              sys->app()->name().c_str(), sys->app()->max_sys_q_depth(),
              sys->db()->name().c_str(), sys->db()->max_sys_q_depth());
  std::puts(core::timeline_panel(sys->sampler(),
                                 {sys->web()->name() + ".queue",
                                  sys->app()->name() + ".queue",
                                  sys->db()->name() + ".queue"},
                                 until, row_step)
                .c_str());

  std::puts("--- (c) VLRT requests per 50 ms window ---");
  std::puts(core::vlrt_panel(sys->latency()).c_str());

  auto summary = core::summarize(*sys);
  std::puts(summary.to_string().c_str());
  return sys;
}

}  // namespace ntier::bench
