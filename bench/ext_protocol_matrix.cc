// Protocol matrix: does the VLRT response-time tail survive a protocol
// upgrade, or does it just *hide*? The paper's CTQO chain ends in RHEL6
// TCP's 3 s SYN-retransmit minimum; this bench re-runs the Fig 3
// consolidation millibottleneck under every net::ProtocolProfile
// (docs/PROTOCOLS.md) × workload × NX level and classifies each point:
//
//   visible  -- kernel-level overflow AND multi-second p999 (the paper's
//               phenomenon: drops resolved by multi-second timers)
//   hidden   -- overflow still happens, but sub-second recovery timers
//               (linux_modern / udp_apptimeout) keep p999 under the
//               multi-second bar; the *cause* is intact, the *symptom*
//               shrank below the SLO radar
//   absent   -- no overflow at all (erpc bypass: nothing to retransmit)
//
// Emits machine-readable "[proto]" lines for scripts/run_benches.py
// (schema ntier.bench/7) and hard-asserts the headline result: at the
// same operating point, fixed3s is *visible*, linux_modern is *hidden*
// (drops nonzero, tail sub-second), and erpc is *absent*.
//
// Flags (bench_util.h): --replications=R --jobs=J --sweep-out=DIR
// [--quick]. --quick shrinks the grid to the 3-profile assertion column
// for CI smoke runs.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "net/protocol.h"
#include "sweep/engine.h"

namespace {

// Overflow events of one reduced point: kernel drops plus SYN-cookie
// "accepted-but-slow" admissions (both are accept-queue saturation; the
// cookie path just converts the drop into inflated service time).
double overflow_mean(const ntier::sweep::PointResult& pt,
                     std::size_t replications) {
  double cookie_total = 0.0;
  for (const auto& [name, value] : pt.registry_totals) {
    // Cumulative probes snapshot as "<srv>.cookie_admits.total".
    if (name.find(".cookie_admits") != std::string::npos) cookie_total += value;
  }
  const double reps = replications ? static_cast<double>(replications) : 1.0;
  return pt.drops.mean + cookie_total / reps;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ntier;
  const auto flags = bench::parse_bench_flags(argc, argv);
  if (flags.bad) return 2;
  bench::BenchPerf perf("ext_protocol_matrix");

  // Axis 0 indexes this table; the quick grid keeps exactly the three
  // profiles the headline assertion needs.
  const std::vector<std::string> protos =
      flags.quick ? std::vector<std::string>{"fixed3s", "linux_modern", "erpc"}
                  : net::ProtocolProfile::names();

  sweep::Grid grid;
  std::vector<double> proto_idx;
  for (std::size_t i = 0; i < protos.size(); ++i)
    proto_idx.push_back(static_cast<double>(i));
  if (flags.quick) {
    grid.add_axis("proto", proto_idx).add_axis("wl", {7000}).add_axis("nx", {0});
  } else {
    grid.add_axis("proto", proto_idx)
        .add_axis("wl", {5000, 7000})
        .add_axis("nx", {0, 3});
  }

  // Each point is the Fig 3 consolidation millibottleneck with the
  // profile applied on top; replication r of a point runs seed 42 + r.
  auto bind = [&flags, &protos](const sweep::GridPoint& p) {
    auto cfg = core::scenarios::fig3_consolidation_sync();
    cfg.obs = flags.obs;
    cfg.obs.out_dir.clear();
    cfg.obs.max_dumps = 0;
    const auto& proto = protos[static_cast<std::size_t>(p.value(0))];
    const auto wl = static_cast<std::size_t>(p.value(1));
    const auto nx = static_cast<int>(p.value(2));
    cfg.workload.sessions = wl;
    cfg.system.arch = static_cast<core::Architecture>(nx);
    cfg.duration = sim::Duration::seconds(16);
    const auto profile = net::ProtocolProfile::by_name(proto);
    core::apply_protocol(cfg, *profile);
    char name[96];
    std::snprintf(name, sizeof name, "proto-matrix-%s-wl%zu-nx%d",
                  proto.c_str(), wl, nx);
    cfg.name = name;
    return cfg;
  };

  sweep::SweepOptions opt;
  opt.replications = flags.replications;
  opt.jobs = flags.jobs;

  const auto result = sweep::run_sweep(grid, bind, opt);

  std::printf("protocol matrix: %zu points x %zu replications (Fig 3 "
              "millibottleneck, 16 s runs)\n",
              result.points.size(), result.replications);
  std::puts(result.to_string().c_str());

  // Classify every point and remember the verdict at the headline
  // operating point (wl=7000, nx=0) per profile.
  std::map<std::string, net::CtqoVisibility> headline;
  for (const auto& pt : result.points) {
    const auto& proto = protos[static_cast<std::size_t>(pt.point.value(0))];
    const auto wl = static_cast<std::size_t>(pt.point.value(1));
    const auto nx = static_cast<int>(pt.point.value(2));
    const double overflow = overflow_mean(pt, result.replications);
    const auto p999 = sim::Duration::from_seconds(pt.p999_ms.mean / 1000.0);
    const auto verdict = net::classify_ctqo(
        static_cast<std::uint64_t>(std::llround(overflow)), p999);
    std::printf(
        "[proto] section=matrix proto=%s wl=%zu nx=%d drops=%.1f "
        "overflow=%.1f p999_ms=%.1f verdict=%s\n",
        proto.c_str(), wl, nx, pt.drops.mean, overflow, pt.p999_ms.mean,
        net::to_string(verdict));
    if (wl == 7000 && nx == 0) headline[proto] = verdict;
  }

  // The headline result this bench exists to demonstrate: same load,
  // same millibottleneck, three different fates for the tail.
  bool ok = true;
  auto expect = [&](const char* proto, net::CtqoVisibility want) {
    const auto it = headline.find(proto);
    const bool pass = it != headline.end() && it->second == want;
    std::printf("[proto] section=verdict proto=%s expect=%s pass=%d\n", proto,
                net::to_string(want), pass ? 1 : 0);
    ok = ok && pass;
  };
  expect("fixed3s", net::CtqoVisibility::kVisible);
  expect("linux_modern", net::CtqoVisibility::kHidden);
  expect("erpc", net::CtqoVisibility::kAbsent);

  std::error_code ec;
  std::filesystem::create_directories(flags.sweep_out, ec);
  const std::string csv_path = flags.sweep_out + "/protocol_matrix.csv";
  const std::string man_path = flags.sweep_out + "/protocol_matrix.sweep.json";
  const bool wrote = metrics::write_file(csv_path, result.csv()) &&
                     metrics::write_file(man_path, result.manifest_json());
  if (wrote) {
    std::printf("wrote %s and %s\n", csv_path.c_str(), man_path.c_str());
  } else {
    std::printf("FAILED writing sweep artifacts under %s\n",
                flags.sweep_out.c_str());
  }

  perf.add_events(result.total_events);
  perf.print();
  return (ok && wrote) ? 0 : 1;
}
