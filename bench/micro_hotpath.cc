// Hot-path allocation microbenchmarks: the before/after of the
// zero-allocation engine work (docs/PERFORMANCE.md).
//
// The HotPath pair drives the same closed-loop request cycle — issue ->
// admit -> service -> reply -> think, four scheduled closures per cycle —
// through two substrates:
//
//   * LegacyAllocating replicates the pre-pooling engine: requests are
//     shared_ptr (object + control block per request), events are
//     std::function (heap-allocated once captures exceed the 16-byte
//     libstdc++ small buffer; every closure here captures 32 bytes).
//   * PooledInline is the current engine: slab-pooled requests
//     (sim/slab_pool.h) and InlineFn events (sim/inline_fn.h), so the
//     warmed steady state performs zero allocations per event — the
//     property tests/test_hotpath.cc asserts exactly.
//
// scripts/run_benches.py records the pooled-over-legacy events/sec ratio
// into BENCH_ntier.json; CI fails if it regresses below 2x.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulation.h"
#include "sim/slab_pool.h"

namespace {

using namespace ntier;
using sim::Duration;

// The request payload, identical for both substrates so the measured
// delta is purely allocation + refcount discipline.
struct BenchRequest {
  std::uint64_t id = 0;
  sim::Time issued;
  sim::Time completed;
  // Mirrors server::Request::trace — present but empty when untraced.
  std::vector<std::pair<std::string, sim::Time>> trace;
  bool failed = false;
};

// The pre-pooling scheduling substrate: the same (when, seq) heap
// ordering as the engine, but with the seed's per-event costs — events
// stored as std::function, and one shared_ptr<State> control block
// allocated per push (the old EventHandle's cancellation state, which
// this PR folded into the heap slots). The handle's pos-tracking
// bookkeeping is elided — only its allocation/refcount cost is
// reproduced. Pops move (no spurious copies).
class LegacySim {
 public:
  sim::Time now() const { return now_; }

  void after(Duration d, std::function<void()> fn) {
    auto state = std::make_shared<HandleState>();
    state->owner = this;
    heap_.push_back(Entry{now_ + d, seq_++, std::move(fn), std::move(state)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  std::uint64_t run_all() {
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      Entry e = std::move(heap_.back());
      heap_.pop_back();
      now_ = e.when;
      e.state->owner = nullptr;  // detach the handle, as the seed did
      e.fn();
      ++executed_;
    }
    return executed_;
  }

  std::uint64_t events_executed() const { return executed_; }

 private:
  struct HandleState {
    void* owner = nullptr;
    std::size_t pos = 0;
  };
  struct Entry {
    sim::Time when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<HandleState> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::vector<Entry> heap_;
  sim::Time now_ = sim::Time::origin();
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
};

constexpr int kSessions = 64;
constexpr int kCycles = 200;  // request cycles per session per iteration

// Per-admission server context, as every tier server keeps (program
// counter + the in-flight request): make_shared per admission before
// this PR, slab slot after.
template <class ReqPtr>
struct BenchCtx {
  ReqPtr req;
  std::size_t pc = 0;
};

// Closed-loop driver shared by both substrates. Every closure captures
// {this, handle, s} = 32 bytes: heap for std::function, inline for
// InlineFn.
template <class SimT, class ReqPtr, class CtxPtr, class MakeReq, class MakeCtx>
struct ClosedLoop {
  SimT& sim;
  MakeReq make_req;
  MakeCtx make_ctx;
  std::array<int, kSessions> cycles_left{};
  std::uint64_t next_id = 1;
  std::uint64_t settled = 0;

  void start() {
    for (std::size_t s = 0; s < kSessions; ++s) {
      cycles_left[s] = kCycles;
      // Staggered phases so timestamps interleave like a real run.
      sim.after(Duration::micros(13 * (s + 1)), [this, s] { issue(s); });
    }
  }
  void issue(std::size_t s) {
    ReqPtr req = make_req();
    req->id = next_id++;
    req->issued = sim.now();
    sim.after(Duration::micros(200), [this, req, s] { admit(req, s); });
  }
  void admit(const ReqPtr& req, std::size_t s) {
    CtxPtr ctx = make_ctx();
    ctx->req = req;
    sim.after(Duration::micros(100), [this, ctx, s] { complete(ctx, s); });
  }
  void complete(const CtxPtr& ctx, std::size_t s) {
    ++ctx->pc;
    sim.after(Duration::micros(200), [this, ctx, s] { settle(ctx, s); });
  }
  void settle(const CtxPtr& ctx, std::size_t s) {
    ctx->req->completed = sim.now();
    ++settled;
    benchmark::DoNotOptimize(ctx->req->completed);
    if (--cycles_left[s] > 0)
      sim.after(Duration::micros(700), [this, s] { issue(s); });
  }
};

void BM_HotPath_LegacyAllocating(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    LegacySim sim;
    auto mk = [] { return std::make_shared<BenchRequest>(); };
    using Req = std::shared_ptr<BenchRequest>;
    auto mc = [] { return std::make_shared<BenchCtx<Req>>(); };
    ClosedLoop<LegacySim, Req, std::shared_ptr<BenchCtx<Req>>, decltype(mk),
               decltype(mc)>
        loop{sim, mk, mc};
    loop.start();
    events += sim.run_all();
    benchmark::DoNotOptimize(loop.settled);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_HotPath_LegacyAllocating);

void BM_HotPath_PooledInline(benchmark::State& state) {
  // The pool outlives the iterations: after the first one it is warmed
  // to the loop's high-water mark and stays allocation-free — the state
  // every long simulation reaches.
  sim::SlabPool<BenchRequest> pool;
  using Req = sim::PoolRef<BenchRequest>;
  sim::SlabPool<BenchCtx<Req>> ctx_pool;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulation sim;
    auto mk = [&pool] { return pool.make(); };
    auto mc = [&ctx_pool] { return ctx_pool.make(); };
    ClosedLoop<sim::Simulation, Req, sim::PoolRef<BenchCtx<Req>>, decltype(mk),
               decltype(mc)>
        loop{sim, mk, mc};
    loop.start();
    sim.run_all();
    events += sim.events_executed();
    benchmark::DoNotOptimize(loop.settled);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_HotPath_PooledInline);

// Request lifecycle alone (no event queue): shared_ptr allocation per
// request vs warmed LIFO slot recycling.
void BM_RequestChurn_SharedPtr(benchmark::State& state) {
  std::uint64_t id = 0;
  for (auto _ : state) {
    auto r = std::make_shared<BenchRequest>();
    r->id = ++id;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RequestChurn_SharedPtr);

void BM_RequestChurn_Pooled(benchmark::State& state) {
  sim::SlabPool<BenchRequest> pool;
  std::uint64_t id = 0;
  for (auto _ : state) {
    auto r = pool.make();
    r->id = ++id;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RequestChurn_Pooled);

}  // namespace

BENCHMARK_MAIN();
