// Fig 3 reproduction: upstream CTQO from CPU millibottlenecks under VM
// consolidation (SysSteady-Tomcat co-located with SysBursty-MySQL).
// Paper: (a) bursts saturate the shared core; (b) Tomcat queue caps at
// MaxSysQDepth(Tomcat)=278 while Apache grows past 278, then past the
// second-process level 428; (c) VLRT bursts at the drop instants.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ntier;
  const auto tf = bench::parse_bench_flags(argc, argv);
  if (tf.bad) return 2;
  bench::BenchPerf perf("fig03_consolidation_sync");
  auto cfg = core::scenarios::fig3_consolidation_sync();
  cfg.trace = tf.config;
  cfg.obs = tf.obs;
  bench::apply_proto_flag(cfg, tf);
  auto sys = bench::run_figure(
      cfg, {"tomcat.demand", "sysbursty.demand", "apache.demand"});
  std::printf("burst marks (SysBursty batches):");
  for (auto t : sys->interference()->burst_marks())
    std::printf(" %.1fs", t.to_seconds());
  std::printf("\nApache processes spawned: second level MaxSysQDepth=%zu\n",
              sys->web()->max_sys_q_depth());
  bench::finalize_incidents(*sys);
  bench::export_traces(*sys, tf);
  bench::maybe_dashboard(*sys, tf);
  perf.add_events(sys->simulation().events_executed());
  perf.print();
  return 0;
}
