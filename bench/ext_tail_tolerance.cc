// Extension study: does the modern tail-tolerance toolkit tame CTQO
// millibottleneck tails — or amplify them?
//
// Three experiments, each sweeping the policy knob per mechanism:
//   1. Fig 3's consolidation millibottleneck on the sync stack (NX=0).
//      Near saturation, naive retries re-issue work into queues that
//      are already overflowing while the 3 s TCP retransmits of the
//      dropped originals are still in flight — the analyzer should
//      flag the resulting metastable drop chain as a retry storm, and
//      VLRT count should EXCEED the no-policy baseline. A retry budget
//      caps the amplification.
//   2. Fig 5's log-flush millibottleneck on NX=3 plus deterministic
//      lossy-link windows on the client hop. The baseline tail sits at
//      whole RTO multiples (~3/6 s); deadlines + hedging pull p99.9
//      down without adding a single server-side drop (the losses live
//      in the network, not in any tier's accept queue).
//   3. A combined fault schedule — DB crash-and-restart, app slow-node
//      window, degraded web->app link — exercising the injector end to
//      end on both stacks.
#include <cstdio>

#include "bench_util.h"
#include "core/ctqo_analyzer.h"
#include "core/experiment.h"
#include "core/scenarios.h"
#include "metrics/table.h"

using namespace ntier;
using core::scenarios::TailPolicyChoice;

namespace {

core::ExperimentSummary run_row(metrics::Table& t, core::ExperimentConfig cfg,
                                const char* label, const bench::BenchFlags& tf,
                                bench::BenchPerf& perf) {
  cfg.obs = tf.obs;
  auto sys = core::run_system(cfg);
  auto s = core::summarize(*sys);
  t.add_row({label, metrics::Table::num(s.latency.vlrt_count),
             metrics::Table::num(s.latency.p999.to_millis(), 0),
             metrics::Table::num(s.total_drops), metrics::Table::num(s.failed_requests),
             metrics::Table::num(s.client_retries), metrics::Table::num(s.client_hedges),
             metrics::Table::num(s.deadline_cancels),
             metrics::Table::num(std::uint64_t{s.ctqo.episodes.size()}),
             metrics::Table::num(s.ctqo.retry_storm_episodes)});
  bench::finalize_incidents(*sys);
  bench::maybe_dashboard(*sys, tf);
  perf.add_events(sys->simulation().events_executed());
  return s;
}

const TailPolicyChoice kSweep[] = {
    TailPolicyChoice::kNone,     TailPolicyChoice::kNaiveRetry,
    TailPolicyChoice::kBudgetedRetry, TailPolicyChoice::kDeadline,
    TailPolicyChoice::kHedge,    TailPolicyChoice::kBreaker,
    TailPolicyChoice::kDeadlineHedge, TailPolicyChoice::kFull};

metrics::Table make_table() {
  return metrics::Table({"policy", "vlrt", "p99.9_ms", "drops", "failed", "retries",
                         "hedges", "deadlineCancel", "episodes", "storms"});
}

}  // namespace

int main(int argc, char** argv) {
  const auto tf = bench::parse_bench_flags(argc, argv);
  if (tf.bad) return 2;
  bench::BenchPerf perf("ext_tail_tolerance");
  // --- 1: retry amplification against Fig 3's millibottleneck (NX=0) ---
  std::puts("=== consolidation millibottleneck (fig 3), sync stack (NX=0) ===");
  {
    auto t = make_table();
    core::ExperimentSummary naive, none;
    for (auto c : kSweep) {
      auto s = run_row(t, core::scenarios::ext_tail_tolerance(core::Architecture::kSync, c),
                       core::scenarios::to_string(c), tf, perf);
      if (c == TailPolicyChoice::kNone) none = s;
      if (c == TailPolicyChoice::kNaiveRetry) {
        naive = s;
        if (!s.ctqo.episodes.empty()) std::fputs(s.ctqo.to_string().c_str(), stdout);
      }
    }
    std::puts(t.to_string().c_str());
    std::printf("naive-retry amplification: VLRT %llu (baseline) -> %llu (naive), "
                "%llu storm episodes flagged\n\n",
                static_cast<unsigned long long>(none.latency.vlrt_count),
                static_cast<unsigned long long>(naive.latency.vlrt_count),
                static_cast<unsigned long long>(naive.ctqo.retry_storm_episodes));
  }

  // --- 2: lossy-link windows against Fig 5's millibottleneck (NX=3) ---
  std::puts("=== log-flush millibottleneck (fig 5) + lossy client link, NX=3 ===");
  {
    auto t = make_table();
    core::ExperimentSummary none, full;
    for (auto c : kSweep) {
      auto s = run_row(t, core::scenarios::ext_lossy_link(core::Architecture::kNx3, c),
                       core::scenarios::to_string(c), tf, perf);
      if (c == TailPolicyChoice::kNone) none = s;
      if (c == TailPolicyChoice::kDeadlineHedge) full = s;
    }
    std::puts(t.to_string().c_str());
    std::printf("deadline+hedge tail rescue: p99.9 %.0f ms -> %.0f ms, drops %llu -> %llu\n\n",
                none.latency.p999.to_millis(), full.latency.p999.to_millis(),
                static_cast<unsigned long long>(none.total_drops),
                static_cast<unsigned long long>(full.total_drops));
  }

  // --- 3: the combined deterministic fault schedule, both stacks -------
  std::puts("=== fault schedule: DB crash @12s, app slow-node @28s, lossy link @44s ===");
  {
    auto t = make_table();
    for (auto arch : {core::Architecture::kSync, core::Architecture::kNx3}) {
      auto cfg = core::scenarios::ext_fault_injection(arch);
      cfg.obs = tf.obs;
      auto sys = core::run_system(cfg);
      auto s = core::summarize(*sys);
      t.add_row({core::to_string(arch), metrics::Table::num(s.latency.vlrt_count),
                 metrics::Table::num(s.latency.p999.to_millis(), 0),
                 metrics::Table::num(s.total_drops), metrics::Table::num(s.failed_requests),
                 metrics::Table::num(s.client_retries), metrics::Table::num(s.client_hedges),
                 metrics::Table::num(s.deadline_cancels),
                 metrics::Table::num(std::uint64_t{s.ctqo.episodes.size()}),
                 metrics::Table::num(s.ctqo.retry_storm_episodes)});
      const auto& fc = sys->faults()->counters();
      std::printf("%s injector: %llu crashes, %llu restarts, %llu link windows, "
                  "%llu slow-node windows\n",
                  core::to_string(arch), static_cast<unsigned long long>(fc.crashes),
                  static_cast<unsigned long long>(fc.restarts),
                  static_cast<unsigned long long>(fc.link_windows),
                  static_cast<unsigned long long>(fc.slow_windows));
      bench::finalize_incidents(*sys);
      bench::maybe_dashboard(*sys, tf);
      perf.add_events(sys->simulation().events_executed());
    }
    std::puts(t.to_string().c_str());
  }
  perf.print();
  return 0;
}
