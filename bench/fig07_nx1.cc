// Fig 7 reproduction: NX=1 (Nginx-Tomcat-MySQL) with millibottlenecks in
// Tomcat. Paper: no upstream CTQO at Nginx; downstream CTQO when arrivals
// exceed MaxSysQDepth(Tomcat)=165+128=293; Tomcat drops, Nginx never.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace ntier;
  const auto tf = bench::parse_bench_flags(argc, argv);
  if (tf.bad) return 2;
  bench::BenchPerf perf("fig07_nx1");
  auto cfg = core::scenarios::fig7_nx1();
  cfg.trace = tf.config;
  cfg.obs = tf.obs;
  bench::apply_proto_flag(cfg, tf);
  auto sys = bench::run_figure(cfg, {"tomcat.demand", "sysbursty.demand"});
  std::printf("drops: nginx=%llu tomcat=%llu mysql=%llu (paper: only Tomcat drops)\n",
              static_cast<unsigned long long>(sys->web()->stats().dropped),
              static_cast<unsigned long long>(sys->app()->stats().dropped),
              static_cast<unsigned long long>(sys->db()->stats().dropped));
  bench::finalize_incidents(*sys);
  bench::export_traces(*sys, tf);
  bench::maybe_dashboard(*sys, tf);
  perf.add_events(sys->simulation().events_executed());
  perf.print();
  return 0;
}
