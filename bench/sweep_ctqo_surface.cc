// CTQO onset as a *surface*, not a point: the paper's Fig 3 experiment
// swept over workload intensity (λ) × MaxSysQDepth (TCP backlog) × NX
// level, with R seed-replications per grid point reduced to means with
// 95 % Student-t confidence intervals (sweep/engine.h). Where every
// single-run figure shows one configuration crossing into CTQO, this
// bench maps the onset frontier: the smallest workload at which drop
// episodes appear, per (backlog, NX) slice — and shows NX=3 never
// crossing it anywhere in the range.
//
// Flags (bench_util.h): --replications=R --jobs=J --sweep-out=DIR
// [--dashboard=DIR] [--quick]. The reduced CSV and sweep manifest are
// byte-identical for every J (the determinism contract of
// docs/SWEEPS.md); --quick shrinks the grid to 2×1×2 for smoke runs.
#include <cstdio>

#include "bench_util.h"
#include "sweep/engine.h"

int main(int argc, char** argv) {
  using namespace ntier;
  const auto flags = bench::parse_bench_flags(argc, argv);
  if (flags.bad) return 2;
  bench::BenchPerf perf("sweep_ctqo_surface");

  sweep::Grid grid;
  if (flags.quick) {
    grid.add_axis("wl", {3000, 7000})
        .add_axis("backlog", {128})
        .add_axis("nx", {0, 3});
  } else {
    grid.add_axis("wl", {3000, 5000, 7000})
        .add_axis("backlog", {64, 128})
        .add_axis("nx", {0, 3});
  }

  // Each point is the Fig 3 consolidation millibottleneck with the
  // axes applied; replication r of a point runs seed 42 + r.
  auto bind = [&flags](const sweep::GridPoint& p) {
    auto cfg = core::scenarios::fig3_consolidation_sync();
    // Detection-only under the sweep: replications share one run name,
    // so file-writing from worker threads would race. Incidents still
    // reach the rep-0 dashboard + manifest via maybe_dashboard.
    cfg.obs = flags.obs;
    cfg.obs.out_dir.clear();
    cfg.obs.max_dumps = 0;
    const auto wl = static_cast<std::size_t>(p.value(0));
    const auto backlog = static_cast<std::size_t>(p.value(1));
    const auto nx = static_cast<int>(p.value(2));
    cfg.workload.sessions = wl;
    cfg.system.backlog = backlog;
    cfg.system.arch = static_cast<core::Architecture>(nx);
    cfg.duration = sim::Duration::seconds(16);
    char name[96];
    std::snprintf(name, sizeof name, "ctqo-surface-wl%zu-q%zu-nx%d", wl,
                  backlog, nx);
    cfg.name = name;
    return cfg;
  };

  sweep::SweepOptions opt;
  opt.replications = flags.replications;
  opt.jobs = flags.jobs;

  // Replication 0 of each point optionally renders the standard run
  // dashboard; distinct runs write distinct files, so the hook is safe
  // under the worker pool.
  sweep::RunHook hook;
  if (!flags.dashboard_dir.empty()) {
    hook = [&flags](const sweep::GridPoint&, std::size_t rep,
                    core::NTierSystem& sys) {
      if (rep == 0) bench::maybe_dashboard(sys, flags);
    };
  }

  const auto result = sweep::run_sweep(grid, bind, opt, hook);

  std::printf("CTQO onset surface: %zu points x %zu replications (Fig 3 "
              "millibottleneck, 16 s runs)\n",
              result.points.size(), result.replications);
  std::puts(result.to_string().c_str());

  std::error_code ec;
  std::filesystem::create_directories(flags.sweep_out, ec);
  const std::string csv_path = flags.sweep_out + "/ctqo_surface.csv";
  const std::string man_path = flags.sweep_out + "/ctqo_surface.sweep.json";
  const bool ok = metrics::write_file(csv_path, result.csv()) &&
                  metrics::write_file(man_path, result.manifest_json());
  if (ok) {
    std::printf("wrote %s and %s\n", csv_path.c_str(), man_path.c_str());
  } else {
    std::printf("FAILED writing sweep artifacts under %s\n",
                flags.sweep_out.c_str());
  }

  perf.add_events(result.total_events);
  perf.print();
  return ok ? 0 : 1;
}
