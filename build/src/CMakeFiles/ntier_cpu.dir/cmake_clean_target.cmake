file(REMOVE_RECURSE
  "libntier_cpu.a"
)
