
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/dvfs.cc" "src/CMakeFiles/ntier_cpu.dir/cpu/dvfs.cc.o" "gcc" "src/CMakeFiles/ntier_cpu.dir/cpu/dvfs.cc.o.d"
  "/root/repo/src/cpu/host_core.cc" "src/CMakeFiles/ntier_cpu.dir/cpu/host_core.cc.o" "gcc" "src/CMakeFiles/ntier_cpu.dir/cpu/host_core.cc.o.d"
  "/root/repo/src/cpu/io_device.cc" "src/CMakeFiles/ntier_cpu.dir/cpu/io_device.cc.o" "gcc" "src/CMakeFiles/ntier_cpu.dir/cpu/io_device.cc.o.d"
  "/root/repo/src/cpu/thread_overhead.cc" "src/CMakeFiles/ntier_cpu.dir/cpu/thread_overhead.cc.o" "gcc" "src/CMakeFiles/ntier_cpu.dir/cpu/thread_overhead.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ntier_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
