# Empty dependencies file for ntier_cpu.
# This may be replaced when dependencies are built.
