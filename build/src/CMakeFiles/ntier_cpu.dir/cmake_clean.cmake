file(REMOVE_RECURSE
  "CMakeFiles/ntier_cpu.dir/cpu/dvfs.cc.o"
  "CMakeFiles/ntier_cpu.dir/cpu/dvfs.cc.o.d"
  "CMakeFiles/ntier_cpu.dir/cpu/host_core.cc.o"
  "CMakeFiles/ntier_cpu.dir/cpu/host_core.cc.o.d"
  "CMakeFiles/ntier_cpu.dir/cpu/io_device.cc.o"
  "CMakeFiles/ntier_cpu.dir/cpu/io_device.cc.o.d"
  "CMakeFiles/ntier_cpu.dir/cpu/thread_overhead.cc.o"
  "CMakeFiles/ntier_cpu.dir/cpu/thread_overhead.cc.o.d"
  "libntier_cpu.a"
  "libntier_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntier_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
