file(REMOVE_RECURSE
  "CMakeFiles/ntier_monitor.dir/monitor/collectl.cc.o"
  "CMakeFiles/ntier_monitor.dir/monitor/collectl.cc.o.d"
  "CMakeFiles/ntier_monitor.dir/monitor/sampler.cc.o"
  "CMakeFiles/ntier_monitor.dir/monitor/sampler.cc.o.d"
  "CMakeFiles/ntier_monitor.dir/monitor/trace_store.cc.o"
  "CMakeFiles/ntier_monitor.dir/monitor/trace_store.cc.o.d"
  "CMakeFiles/ntier_monitor.dir/monitor/vlrt_tracker.cc.o"
  "CMakeFiles/ntier_monitor.dir/monitor/vlrt_tracker.cc.o.d"
  "libntier_monitor.a"
  "libntier_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntier_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
