
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/collectl.cc" "src/CMakeFiles/ntier_monitor.dir/monitor/collectl.cc.o" "gcc" "src/CMakeFiles/ntier_monitor.dir/monitor/collectl.cc.o.d"
  "/root/repo/src/monitor/sampler.cc" "src/CMakeFiles/ntier_monitor.dir/monitor/sampler.cc.o" "gcc" "src/CMakeFiles/ntier_monitor.dir/monitor/sampler.cc.o.d"
  "/root/repo/src/monitor/trace_store.cc" "src/CMakeFiles/ntier_monitor.dir/monitor/trace_store.cc.o" "gcc" "src/CMakeFiles/ntier_monitor.dir/monitor/trace_store.cc.o.d"
  "/root/repo/src/monitor/vlrt_tracker.cc" "src/CMakeFiles/ntier_monitor.dir/monitor/vlrt_tracker.cc.o" "gcc" "src/CMakeFiles/ntier_monitor.dir/monitor/vlrt_tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ntier_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
