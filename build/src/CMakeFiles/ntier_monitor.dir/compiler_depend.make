# Empty compiler generated dependencies file for ntier_monitor.
# This may be replaced when dependencies are built.
