file(REMOVE_RECURSE
  "libntier_monitor.a"
)
