file(REMOVE_RECURSE
  "CMakeFiles/ntier_core.dir/core/chain.cc.o"
  "CMakeFiles/ntier_core.dir/core/chain.cc.o.d"
  "CMakeFiles/ntier_core.dir/core/config.cc.o"
  "CMakeFiles/ntier_core.dir/core/config.cc.o.d"
  "CMakeFiles/ntier_core.dir/core/ctqo_analyzer.cc.o"
  "CMakeFiles/ntier_core.dir/core/ctqo_analyzer.cc.o.d"
  "CMakeFiles/ntier_core.dir/core/experiment.cc.o"
  "CMakeFiles/ntier_core.dir/core/experiment.cc.o.d"
  "CMakeFiles/ntier_core.dir/core/export.cc.o"
  "CMakeFiles/ntier_core.dir/core/export.cc.o.d"
  "CMakeFiles/ntier_core.dir/core/report.cc.o"
  "CMakeFiles/ntier_core.dir/core/report.cc.o.d"
  "CMakeFiles/ntier_core.dir/core/scenarios.cc.o"
  "CMakeFiles/ntier_core.dir/core/scenarios.cc.o.d"
  "CMakeFiles/ntier_core.dir/core/system.cc.o"
  "CMakeFiles/ntier_core.dir/core/system.cc.o.d"
  "CMakeFiles/ntier_core.dir/core/trace_analysis.cc.o"
  "CMakeFiles/ntier_core.dir/core/trace_analysis.cc.o.d"
  "CMakeFiles/ntier_core.dir/core/validation.cc.o"
  "CMakeFiles/ntier_core.dir/core/validation.cc.o.d"
  "libntier_core.a"
  "libntier_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntier_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
