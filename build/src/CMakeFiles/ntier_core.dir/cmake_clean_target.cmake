file(REMOVE_RECURSE
  "libntier_core.a"
)
