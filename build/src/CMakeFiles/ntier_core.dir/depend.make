# Empty dependencies file for ntier_core.
# This may be replaced when dependencies are built.
