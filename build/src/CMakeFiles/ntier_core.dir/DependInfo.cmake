
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chain.cc" "src/CMakeFiles/ntier_core.dir/core/chain.cc.o" "gcc" "src/CMakeFiles/ntier_core.dir/core/chain.cc.o.d"
  "/root/repo/src/core/config.cc" "src/CMakeFiles/ntier_core.dir/core/config.cc.o" "gcc" "src/CMakeFiles/ntier_core.dir/core/config.cc.o.d"
  "/root/repo/src/core/ctqo_analyzer.cc" "src/CMakeFiles/ntier_core.dir/core/ctqo_analyzer.cc.o" "gcc" "src/CMakeFiles/ntier_core.dir/core/ctqo_analyzer.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/ntier_core.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/ntier_core.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/export.cc" "src/CMakeFiles/ntier_core.dir/core/export.cc.o" "gcc" "src/CMakeFiles/ntier_core.dir/core/export.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/ntier_core.dir/core/report.cc.o" "gcc" "src/CMakeFiles/ntier_core.dir/core/report.cc.o.d"
  "/root/repo/src/core/scenarios.cc" "src/CMakeFiles/ntier_core.dir/core/scenarios.cc.o" "gcc" "src/CMakeFiles/ntier_core.dir/core/scenarios.cc.o.d"
  "/root/repo/src/core/system.cc" "src/CMakeFiles/ntier_core.dir/core/system.cc.o" "gcc" "src/CMakeFiles/ntier_core.dir/core/system.cc.o.d"
  "/root/repo/src/core/trace_analysis.cc" "src/CMakeFiles/ntier_core.dir/core/trace_analysis.cc.o" "gcc" "src/CMakeFiles/ntier_core.dir/core/trace_analysis.cc.o.d"
  "/root/repo/src/core/validation.cc" "src/CMakeFiles/ntier_core.dir/core/validation.cc.o" "gcc" "src/CMakeFiles/ntier_core.dir/core/validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ntier_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_monitor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
