file(REMOVE_RECURSE
  "CMakeFiles/ntier_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/ntier_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/ntier_sim.dir/sim/random.cc.o"
  "CMakeFiles/ntier_sim.dir/sim/random.cc.o.d"
  "CMakeFiles/ntier_sim.dir/sim/simulation.cc.o"
  "CMakeFiles/ntier_sim.dir/sim/simulation.cc.o.d"
  "CMakeFiles/ntier_sim.dir/sim/time.cc.o"
  "CMakeFiles/ntier_sim.dir/sim/time.cc.o.d"
  "libntier_sim.a"
  "libntier_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntier_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
