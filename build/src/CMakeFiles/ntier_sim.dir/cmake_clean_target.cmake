file(REMOVE_RECURSE
  "libntier_sim.a"
)
