# Empty compiler generated dependencies file for ntier_sim.
# This may be replaced when dependencies are built.
