
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/csv.cc" "src/CMakeFiles/ntier_metrics.dir/metrics/csv.cc.o" "gcc" "src/CMakeFiles/ntier_metrics.dir/metrics/csv.cc.o.d"
  "/root/repo/src/metrics/histogram.cc" "src/CMakeFiles/ntier_metrics.dir/metrics/histogram.cc.o" "gcc" "src/CMakeFiles/ntier_metrics.dir/metrics/histogram.cc.o.d"
  "/root/repo/src/metrics/quantile_timeline.cc" "src/CMakeFiles/ntier_metrics.dir/metrics/quantile_timeline.cc.o" "gcc" "src/CMakeFiles/ntier_metrics.dir/metrics/quantile_timeline.cc.o.d"
  "/root/repo/src/metrics/summary.cc" "src/CMakeFiles/ntier_metrics.dir/metrics/summary.cc.o" "gcc" "src/CMakeFiles/ntier_metrics.dir/metrics/summary.cc.o.d"
  "/root/repo/src/metrics/table.cc" "src/CMakeFiles/ntier_metrics.dir/metrics/table.cc.o" "gcc" "src/CMakeFiles/ntier_metrics.dir/metrics/table.cc.o.d"
  "/root/repo/src/metrics/timeline.cc" "src/CMakeFiles/ntier_metrics.dir/metrics/timeline.cc.o" "gcc" "src/CMakeFiles/ntier_metrics.dir/metrics/timeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ntier_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
