file(REMOVE_RECURSE
  "libntier_metrics.a"
)
