# Empty dependencies file for ntier_metrics.
# This may be replaced when dependencies are built.
