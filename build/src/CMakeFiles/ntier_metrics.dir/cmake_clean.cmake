file(REMOVE_RECURSE
  "CMakeFiles/ntier_metrics.dir/metrics/csv.cc.o"
  "CMakeFiles/ntier_metrics.dir/metrics/csv.cc.o.d"
  "CMakeFiles/ntier_metrics.dir/metrics/histogram.cc.o"
  "CMakeFiles/ntier_metrics.dir/metrics/histogram.cc.o.d"
  "CMakeFiles/ntier_metrics.dir/metrics/quantile_timeline.cc.o"
  "CMakeFiles/ntier_metrics.dir/metrics/quantile_timeline.cc.o.d"
  "CMakeFiles/ntier_metrics.dir/metrics/summary.cc.o"
  "CMakeFiles/ntier_metrics.dir/metrics/summary.cc.o.d"
  "CMakeFiles/ntier_metrics.dir/metrics/table.cc.o"
  "CMakeFiles/ntier_metrics.dir/metrics/table.cc.o.d"
  "CMakeFiles/ntier_metrics.dir/metrics/timeline.cc.o"
  "CMakeFiles/ntier_metrics.dir/metrics/timeline.cc.o.d"
  "libntier_metrics.a"
  "libntier_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntier_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
