file(REMOVE_RECURSE
  "libntier_workload.a"
)
