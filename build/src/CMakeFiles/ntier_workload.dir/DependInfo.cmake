
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/burst_model.cc" "src/CMakeFiles/ntier_workload.dir/workload/burst_model.cc.o" "gcc" "src/CMakeFiles/ntier_workload.dir/workload/burst_model.cc.o.d"
  "/root/repo/src/workload/client.cc" "src/CMakeFiles/ntier_workload.dir/workload/client.cc.o" "gcc" "src/CMakeFiles/ntier_workload.dir/workload/client.cc.o.d"
  "/root/repo/src/workload/request_mix.cc" "src/CMakeFiles/ntier_workload.dir/workload/request_mix.cc.o" "gcc" "src/CMakeFiles/ntier_workload.dir/workload/request_mix.cc.o.d"
  "/root/repo/src/workload/session_model.cc" "src/CMakeFiles/ntier_workload.dir/workload/session_model.cc.o" "gcc" "src/CMakeFiles/ntier_workload.dir/workload/session_model.cc.o.d"
  "/root/repo/src/workload/sysbursty.cc" "src/CMakeFiles/ntier_workload.dir/workload/sysbursty.cc.o" "gcc" "src/CMakeFiles/ntier_workload.dir/workload/sysbursty.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ntier_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
