file(REMOVE_RECURSE
  "CMakeFiles/ntier_workload.dir/workload/burst_model.cc.o"
  "CMakeFiles/ntier_workload.dir/workload/burst_model.cc.o.d"
  "CMakeFiles/ntier_workload.dir/workload/client.cc.o"
  "CMakeFiles/ntier_workload.dir/workload/client.cc.o.d"
  "CMakeFiles/ntier_workload.dir/workload/request_mix.cc.o"
  "CMakeFiles/ntier_workload.dir/workload/request_mix.cc.o.d"
  "CMakeFiles/ntier_workload.dir/workload/session_model.cc.o"
  "CMakeFiles/ntier_workload.dir/workload/session_model.cc.o.d"
  "CMakeFiles/ntier_workload.dir/workload/sysbursty.cc.o"
  "CMakeFiles/ntier_workload.dir/workload/sysbursty.cc.o.d"
  "libntier_workload.a"
  "libntier_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntier_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
