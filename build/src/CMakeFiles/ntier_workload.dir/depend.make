# Empty dependencies file for ntier_workload.
# This may be replaced when dependencies are built.
