
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/app_profile.cc" "src/CMakeFiles/ntier_server.dir/server/app_profile.cc.o" "gcc" "src/CMakeFiles/ntier_server.dir/server/app_profile.cc.o.d"
  "/root/repo/src/server/async_server.cc" "src/CMakeFiles/ntier_server.dir/server/async_server.cc.o" "gcc" "src/CMakeFiles/ntier_server.dir/server/async_server.cc.o.d"
  "/root/repo/src/server/connection_pool.cc" "src/CMakeFiles/ntier_server.dir/server/connection_pool.cc.o" "gcc" "src/CMakeFiles/ntier_server.dir/server/connection_pool.cc.o.d"
  "/root/repo/src/server/request.cc" "src/CMakeFiles/ntier_server.dir/server/request.cc.o" "gcc" "src/CMakeFiles/ntier_server.dir/server/request.cc.o.d"
  "/root/repo/src/server/server_base.cc" "src/CMakeFiles/ntier_server.dir/server/server_base.cc.o" "gcc" "src/CMakeFiles/ntier_server.dir/server/server_base.cc.o.d"
  "/root/repo/src/server/staged_server.cc" "src/CMakeFiles/ntier_server.dir/server/staged_server.cc.o" "gcc" "src/CMakeFiles/ntier_server.dir/server/staged_server.cc.o.d"
  "/root/repo/src/server/sync_server.cc" "src/CMakeFiles/ntier_server.dir/server/sync_server.cc.o" "gcc" "src/CMakeFiles/ntier_server.dir/server/sync_server.cc.o.d"
  "/root/repo/src/server/tiers.cc" "src/CMakeFiles/ntier_server.dir/server/tiers.cc.o" "gcc" "src/CMakeFiles/ntier_server.dir/server/tiers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ntier_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
