file(REMOVE_RECURSE
  "CMakeFiles/ntier_server.dir/server/app_profile.cc.o"
  "CMakeFiles/ntier_server.dir/server/app_profile.cc.o.d"
  "CMakeFiles/ntier_server.dir/server/async_server.cc.o"
  "CMakeFiles/ntier_server.dir/server/async_server.cc.o.d"
  "CMakeFiles/ntier_server.dir/server/connection_pool.cc.o"
  "CMakeFiles/ntier_server.dir/server/connection_pool.cc.o.d"
  "CMakeFiles/ntier_server.dir/server/request.cc.o"
  "CMakeFiles/ntier_server.dir/server/request.cc.o.d"
  "CMakeFiles/ntier_server.dir/server/server_base.cc.o"
  "CMakeFiles/ntier_server.dir/server/server_base.cc.o.d"
  "CMakeFiles/ntier_server.dir/server/staged_server.cc.o"
  "CMakeFiles/ntier_server.dir/server/staged_server.cc.o.d"
  "CMakeFiles/ntier_server.dir/server/sync_server.cc.o"
  "CMakeFiles/ntier_server.dir/server/sync_server.cc.o.d"
  "CMakeFiles/ntier_server.dir/server/tiers.cc.o"
  "CMakeFiles/ntier_server.dir/server/tiers.cc.o.d"
  "libntier_server.a"
  "libntier_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntier_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
