file(REMOVE_RECURSE
  "libntier_server.a"
)
