# Empty compiler generated dependencies file for ntier_server.
# This may be replaced when dependencies are built.
