file(REMOVE_RECURSE
  "CMakeFiles/ntier_net.dir/net/link.cc.o"
  "CMakeFiles/ntier_net.dir/net/link.cc.o.d"
  "CMakeFiles/ntier_net.dir/net/message.cc.o"
  "CMakeFiles/ntier_net.dir/net/message.cc.o.d"
  "CMakeFiles/ntier_net.dir/net/rto_policy.cc.o"
  "CMakeFiles/ntier_net.dir/net/rto_policy.cc.o.d"
  "CMakeFiles/ntier_net.dir/net/tcp_queue.cc.o"
  "CMakeFiles/ntier_net.dir/net/tcp_queue.cc.o.d"
  "CMakeFiles/ntier_net.dir/net/transport.cc.o"
  "CMakeFiles/ntier_net.dir/net/transport.cc.o.d"
  "libntier_net.a"
  "libntier_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntier_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
