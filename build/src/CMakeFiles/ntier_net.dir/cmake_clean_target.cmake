file(REMOVE_RECURSE
  "libntier_net.a"
)
