# Empty compiler generated dependencies file for ntier_net.
# This may be replaced when dependencies are built.
