
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/link.cc" "src/CMakeFiles/ntier_net.dir/net/link.cc.o" "gcc" "src/CMakeFiles/ntier_net.dir/net/link.cc.o.d"
  "/root/repo/src/net/message.cc" "src/CMakeFiles/ntier_net.dir/net/message.cc.o" "gcc" "src/CMakeFiles/ntier_net.dir/net/message.cc.o.d"
  "/root/repo/src/net/rto_policy.cc" "src/CMakeFiles/ntier_net.dir/net/rto_policy.cc.o" "gcc" "src/CMakeFiles/ntier_net.dir/net/rto_policy.cc.o.d"
  "/root/repo/src/net/tcp_queue.cc" "src/CMakeFiles/ntier_net.dir/net/tcp_queue.cc.o" "gcc" "src/CMakeFiles/ntier_net.dir/net/tcp_queue.cc.o.d"
  "/root/repo/src/net/transport.cc" "src/CMakeFiles/ntier_net.dir/net/transport.cc.o" "gcc" "src/CMakeFiles/ntier_net.dir/net/transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ntier_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
