# Empty dependencies file for ablation_qdepth.
# This may be replaced when dependencies are built.
