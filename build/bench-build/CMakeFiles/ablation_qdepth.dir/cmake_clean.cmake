file(REMOVE_RECURSE
  "../bench/ablation_qdepth"
  "../bench/ablation_qdepth.pdb"
  "CMakeFiles/ablation_qdepth.dir/ablation_qdepth.cc.o"
  "CMakeFiles/ablation_qdepth.dir/ablation_qdepth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_qdepth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
