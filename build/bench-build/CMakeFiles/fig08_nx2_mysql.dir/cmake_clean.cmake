file(REMOVE_RECURSE
  "../bench/fig08_nx2_mysql"
  "../bench/fig08_nx2_mysql.pdb"
  "CMakeFiles/fig08_nx2_mysql.dir/fig08_nx2_mysql.cc.o"
  "CMakeFiles/fig08_nx2_mysql.dir/fig08_nx2_mysql.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_nx2_mysql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
