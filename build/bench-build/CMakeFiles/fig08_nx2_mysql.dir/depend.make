# Empty dependencies file for fig08_nx2_mysql.
# This may be replaced when dependencies are built.
