# Empty compiler generated dependencies file for fig07_nx1.
# This may be replaced when dependencies are built.
