file(REMOVE_RECURSE
  "../bench/fig07_nx1"
  "../bench/fig07_nx1.pdb"
  "CMakeFiles/fig07_nx1.dir/fig07_nx1.cc.o"
  "CMakeFiles/fig07_nx1.dir/fig07_nx1.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_nx1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
