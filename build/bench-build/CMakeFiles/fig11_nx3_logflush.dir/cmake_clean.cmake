file(REMOVE_RECURSE
  "../bench/fig11_nx3_logflush"
  "../bench/fig11_nx3_logflush.pdb"
  "CMakeFiles/fig11_nx3_logflush.dir/fig11_nx3_logflush.cc.o"
  "CMakeFiles/fig11_nx3_logflush.dir/fig11_nx3_logflush.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_nx3_logflush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
