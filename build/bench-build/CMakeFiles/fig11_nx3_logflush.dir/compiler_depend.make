# Empty compiler generated dependencies file for fig11_nx3_logflush.
# This may be replaced when dependencies are built.
