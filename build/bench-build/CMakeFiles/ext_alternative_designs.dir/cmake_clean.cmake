file(REMOVE_RECURSE
  "../bench/ext_alternative_designs"
  "../bench/ext_alternative_designs.pdb"
  "CMakeFiles/ext_alternative_designs.dir/ext_alternative_designs.cc.o"
  "CMakeFiles/ext_alternative_designs.dir/ext_alternative_designs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_alternative_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
