# Empty compiler generated dependencies file for ext_alternative_designs.
# This may be replaced when dependencies are built.
