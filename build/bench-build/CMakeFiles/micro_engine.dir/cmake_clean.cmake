file(REMOVE_RECURSE
  "../bench/micro_engine"
  "../bench/micro_engine.pdb"
  "CMakeFiles/micro_engine.dir/micro_engine.cc.o"
  "CMakeFiles/micro_engine.dir/micro_engine.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
