file(REMOVE_RECURSE
  "../bench/fig01_multimodal"
  "../bench/fig01_multimodal.pdb"
  "CMakeFiles/fig01_multimodal.dir/fig01_multimodal.cc.o"
  "CMakeFiles/fig01_multimodal.dir/fig01_multimodal.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_multimodal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
