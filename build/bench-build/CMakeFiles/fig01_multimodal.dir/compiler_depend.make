# Empty compiler generated dependencies file for fig01_multimodal.
# This may be replaced when dependencies are built.
