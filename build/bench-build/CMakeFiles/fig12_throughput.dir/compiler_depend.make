# Empty compiler generated dependencies file for fig12_throughput.
# This may be replaced when dependencies are built.
