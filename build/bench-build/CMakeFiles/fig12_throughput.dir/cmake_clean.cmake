file(REMOVE_RECURSE
  "../bench/fig12_throughput"
  "../bench/fig12_throughput.pdb"
  "CMakeFiles/fig12_throughput.dir/fig12_throughput.cc.o"
  "CMakeFiles/fig12_throughput.dir/fig12_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
