
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig12_throughput.cc" "bench-build/CMakeFiles/fig12_throughput.dir/fig12_throughput.cc.o" "gcc" "bench-build/CMakeFiles/fig12_throughput.dir/fig12_throughput.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ntier_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
