# Empty compiler generated dependencies file for fig03_consolidation_sync.
# This may be replaced when dependencies are built.
