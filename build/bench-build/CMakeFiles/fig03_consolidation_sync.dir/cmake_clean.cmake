file(REMOVE_RECURSE
  "../bench/fig03_consolidation_sync"
  "../bench/fig03_consolidation_sync.pdb"
  "CMakeFiles/fig03_consolidation_sync.dir/fig03_consolidation_sync.cc.o"
  "CMakeFiles/fig03_consolidation_sync.dir/fig03_consolidation_sync.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_consolidation_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
