# Empty compiler generated dependencies file for ext_deep_chain.
# This may be replaced when dependencies are built.
