file(REMOVE_RECURSE
  "../bench/ext_deep_chain"
  "../bench/ext_deep_chain.pdb"
  "CMakeFiles/ext_deep_chain.dir/ext_deep_chain.cc.o"
  "CMakeFiles/ext_deep_chain.dir/ext_deep_chain.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_deep_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
