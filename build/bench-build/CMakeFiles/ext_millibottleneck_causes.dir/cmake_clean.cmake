file(REMOVE_RECURSE
  "../bench/ext_millibottleneck_causes"
  "../bench/ext_millibottleneck_causes.pdb"
  "CMakeFiles/ext_millibottleneck_causes.dir/ext_millibottleneck_causes.cc.o"
  "CMakeFiles/ext_millibottleneck_causes.dir/ext_millibottleneck_causes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_millibottleneck_causes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
