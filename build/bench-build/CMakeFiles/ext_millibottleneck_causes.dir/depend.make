# Empty dependencies file for ext_millibottleneck_causes.
# This may be replaced when dependencies are built.
