file(REMOVE_RECURSE
  "../bench/ext_mixed_stacks"
  "../bench/ext_mixed_stacks.pdb"
  "CMakeFiles/ext_mixed_stacks.dir/ext_mixed_stacks.cc.o"
  "CMakeFiles/ext_mixed_stacks.dir/ext_mixed_stacks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mixed_stacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
