# Empty compiler generated dependencies file for ext_mixed_stacks.
# This may be replaced when dependencies are built.
