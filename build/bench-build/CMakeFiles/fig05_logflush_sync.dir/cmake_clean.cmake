file(REMOVE_RECURSE
  "../bench/fig05_logflush_sync"
  "../bench/fig05_logflush_sync.pdb"
  "CMakeFiles/fig05_logflush_sync.dir/fig05_logflush_sync.cc.o"
  "CMakeFiles/fig05_logflush_sync.dir/fig05_logflush_sync.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_logflush_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
