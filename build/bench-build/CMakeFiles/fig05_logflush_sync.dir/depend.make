# Empty dependencies file for fig05_logflush_sync.
# This may be replaced when dependencies are built.
