file(REMOVE_RECURSE
  "../bench/fig10_nx3_xtomcat"
  "../bench/fig10_nx3_xtomcat.pdb"
  "CMakeFiles/fig10_nx3_xtomcat.dir/fig10_nx3_xtomcat.cc.o"
  "CMakeFiles/fig10_nx3_xtomcat.dir/fig10_nx3_xtomcat.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_nx3_xtomcat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
