# Empty compiler generated dependencies file for fig10_nx3_xtomcat.
# This may be replaced when dependencies are built.
