file(REMOVE_RECURSE
  "../bench/fig09_nx2_xtomcat"
  "../bench/fig09_nx2_xtomcat.pdb"
  "CMakeFiles/fig09_nx2_xtomcat.dir/fig09_nx2_xtomcat.cc.o"
  "CMakeFiles/fig09_nx2_xtomcat.dir/fig09_nx2_xtomcat.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_nx2_xtomcat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
