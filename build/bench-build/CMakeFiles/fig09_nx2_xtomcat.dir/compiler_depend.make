# Empty compiler generated dependencies file for fig09_nx2_xtomcat.
# This may be replaced when dependencies are built.
