
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_app_profile.cc" "tests/CMakeFiles/ntier_tests.dir/test_app_profile.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_app_profile.cc.o.d"
  "/root/repo/tests/test_async_server.cc" "tests/CMakeFiles/ntier_tests.dir/test_async_server.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_async_server.cc.o.d"
  "/root/repo/tests/test_chain.cc" "tests/CMakeFiles/ntier_tests.dir/test_chain.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_chain.cc.o.d"
  "/root/repo/tests/test_connection_pool.cc" "tests/CMakeFiles/ntier_tests.dir/test_connection_pool.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_connection_pool.cc.o.d"
  "/root/repo/tests/test_core_system.cc" "tests/CMakeFiles/ntier_tests.dir/test_core_system.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_core_system.cc.o.d"
  "/root/repo/tests/test_csv_report.cc" "tests/CMakeFiles/ntier_tests.dir/test_csv_report.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_csv_report.cc.o.d"
  "/root/repo/tests/test_dvfs.cc" "tests/CMakeFiles/ntier_tests.dir/test_dvfs.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_dvfs.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/ntier_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/ntier_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_histogram.cc" "tests/CMakeFiles/ntier_tests.dir/test_histogram.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_histogram.cc.o.d"
  "/root/repo/tests/test_host_core.cc" "tests/CMakeFiles/ntier_tests.dir/test_host_core.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_host_core.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/ntier_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_io_device.cc" "tests/CMakeFiles/ntier_tests.dir/test_io_device.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_io_device.cc.o.d"
  "/root/repo/tests/test_monitor.cc" "tests/CMakeFiles/ntier_tests.dir/test_monitor.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_monitor.cc.o.d"
  "/root/repo/tests/test_net.cc" "tests/CMakeFiles/ntier_tests.dir/test_net.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_net.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/ntier_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_random.cc" "tests/CMakeFiles/ntier_tests.dir/test_random.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_random.cc.o.d"
  "/root/repo/tests/test_robustness.cc" "tests/CMakeFiles/ntier_tests.dir/test_robustness.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_robustness.cc.o.d"
  "/root/repo/tests/test_scenarios.cc" "tests/CMakeFiles/ntier_tests.dir/test_scenarios.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_scenarios.cc.o.d"
  "/root/repo/tests/test_session_timeout.cc" "tests/CMakeFiles/ntier_tests.dir/test_session_timeout.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_session_timeout.cc.o.d"
  "/root/repo/tests/test_simulation.cc" "tests/CMakeFiles/ntier_tests.dir/test_simulation.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_simulation.cc.o.d"
  "/root/repo/tests/test_staged_server.cc" "tests/CMakeFiles/ntier_tests.dir/test_staged_server.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_staged_server.cc.o.d"
  "/root/repo/tests/test_summary.cc" "tests/CMakeFiles/ntier_tests.dir/test_summary.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_summary.cc.o.d"
  "/root/repo/tests/test_sync_server.cc" "tests/CMakeFiles/ntier_tests.dir/test_sync_server.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_sync_server.cc.o.d"
  "/root/repo/tests/test_table.cc" "tests/CMakeFiles/ntier_tests.dir/test_table.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_table.cc.o.d"
  "/root/repo/tests/test_thread_overhead.cc" "tests/CMakeFiles/ntier_tests.dir/test_thread_overhead.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_thread_overhead.cc.o.d"
  "/root/repo/tests/test_tiers.cc" "tests/CMakeFiles/ntier_tests.dir/test_tiers.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_tiers.cc.o.d"
  "/root/repo/tests/test_time.cc" "tests/CMakeFiles/ntier_tests.dir/test_time.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_time.cc.o.d"
  "/root/repo/tests/test_timeline.cc" "tests/CMakeFiles/ntier_tests.dir/test_timeline.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_timeline.cc.o.d"
  "/root/repo/tests/test_validation_export.cc" "tests/CMakeFiles/ntier_tests.dir/test_validation_export.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_validation_export.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/ntier_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/ntier_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ntier_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ntier_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
