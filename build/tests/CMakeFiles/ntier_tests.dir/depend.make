# Empty dependencies file for ntier_tests.
# This may be replaced when dependencies are built.
