# Empty dependencies file for async_migration.
# This may be replaced when dependencies are built.
