file(REMOVE_RECURSE
  "CMakeFiles/async_migration.dir/async_migration.cpp.o"
  "CMakeFiles/async_migration.dir/async_migration.cpp.o.d"
  "async_migration"
  "async_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
