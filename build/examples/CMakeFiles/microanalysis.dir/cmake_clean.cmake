file(REMOVE_RECURSE
  "CMakeFiles/microanalysis.dir/microanalysis.cpp.o"
  "CMakeFiles/microanalysis.dir/microanalysis.cpp.o.d"
  "microanalysis"
  "microanalysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microanalysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
