# Empty dependencies file for microanalysis.
# This may be replaced when dependencies are built.
