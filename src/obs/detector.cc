#include "obs/detector.h"

#include <algorithm>
#include <cmath>

namespace ntier::obs {

const char* to_string(DetectorKind k) {
  switch (k) {
    case DetectorKind::kThreshold: return "threshold";
    case DetectorKind::kEwmaZ: return "ewma_z";
    case DetectorKind::kBurnRate: return "burn_rate";
    case DetectorKind::kCusum: return "cusum";
  }
  return "?";
}

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kCritical: return "critical";
  }
  return "?";
}

Detector::Detector(DetectorSpec spec) : spec_(std::move(spec)) {
  if (spec_.kind == DetectorKind::kBurnRate) {
    bad_ring_.assign(static_cast<std::size_t>(std::max(1, spec_.lookback_windows)), 0);
  }
}

double Detector::compute_statistic(double value) {
  switch (spec_.kind) {
    case DetectorKind::kThreshold:
      return value;
    case DetectorKind::kEwmaZ: {
      // Statistics freeze while firing so a long incident cannot teach
      // the baseline that the anomaly is normal.
      const bool learn = !firing_;
      if (seen_ == 0) {
        if (learn) {
          mean_ = value;
          var_ = 0.0;
          seen_ = 1;
        }
        return 0.0;
      }
      const double sigma = std::max(std::sqrt(var_), spec_.min_sigma);
      const double z = (value - mean_) / sigma;
      if (learn) {
        const double d = value - mean_;
        mean_ += spec_.alpha * d;
        var_ = (1.0 - spec_.alpha) * (var_ + spec_.alpha * d * d);
        ++seen_;
      }
      // Warmup: report the z-score but the fire arm below suppresses it
      // until the baseline has seen warmup_windows of history.
      return z;
    }
    case DetectorKind::kBurnRate: {
      const int was_bad = bad_ring_[ring_pos_];
      const int is_bad = value > spec_.slo ? 1 : 0;
      bad_count_ += is_bad - was_bad;
      bad_ring_[ring_pos_] = static_cast<std::uint8_t>(is_bad);
      ring_pos_ = (ring_pos_ + 1) % bad_ring_.size();
      const double bad_frac =
          static_cast<double>(bad_count_) / static_cast<double>(bad_ring_.size());
      const double budget = std::max(spec_.budget, 1e-9);
      return bad_frac / budget;
    }
    case DetectorKind::kCusum: {
      // One-sided, clamped at 2h so clearing needs a bounded amount of
      // calm evidence no matter how long the shift lasted.
      cusum_s_ = std::clamp(cusum_s_ + (value - spec_.cusum_ref) - spec_.cusum_k, 0.0,
                            2.0 * spec_.cusum_h);
      return cusum_s_;
    }
  }
  return 0.0;
}

Detector::Edge Detector::observe(double value) {
  stat_ = compute_statistic(value);

  double fire_level = 0.0;
  double clear_level = 0.0;
  bool may_fire = true;
  switch (spec_.kind) {
    case DetectorKind::kThreshold:
      fire_level = spec_.threshold;
      clear_level = spec_.threshold;
      break;
    case DetectorKind::kEwmaZ:
      fire_level = spec_.z_fire;
      clear_level = spec_.z_clear;
      may_fire = seen_ > spec_.warmup_windows;
      break;
    case DetectorKind::kBurnRate:
      fire_level = spec_.burn_fire;
      clear_level = spec_.burn_clear;
      break;
    case DetectorKind::kCusum:
      fire_level = spec_.cusum_h;
      // Clearing waits for the integrated evidence to fully drain.
      clear_level = 1e-12;
      break;
  }

  if (!firing_) {
    if (stat_ >= fire_level && may_fire) {
      ++over_;
      if (over_ >= std::max(1, spec_.arm_windows)) {
        firing_ = true;
        over_ = 0;
        calm_ = 0;
        return Edge::kFire;
      }
    } else {
      over_ = 0;
    }
    return Edge::kNone;
  }

  if (stat_ < clear_level) {
    ++calm_;
    if (calm_ >= std::max(1, spec_.clear_windows)) {
      firing_ = false;
      calm_ = 0;
      over_ = 0;
      return Edge::kClear;
    }
  } else {
    calm_ = 0;
  }
  return Edge::kNone;
}

std::vector<DetectorSpec> default_suite(const std::vector<SeriesGroup>& groups,
                                        double vlrt_slo_count) {
  std::vector<DetectorSpec> out;
  for (const SeriesGroup& g : groups) {
    for (const std::string& sat : g.saturation) {
      DetectorSpec d;
      d.name = "sat:" + sat;
      d.series = sat;
      d.kind = DetectorKind::kThreshold;
      d.severity = Severity::kCritical;
      d.threshold = 99.0;
      d.arm_windows = 2;
      out.push_back(std::move(d));
    }
    if (!g.queue.empty()) {
      DetectorSpec d;
      d.name = "queue:" + g.queue;
      d.series = g.queue;
      d.kind = DetectorKind::kEwmaZ;
      d.severity = Severity::kWarning;
      out.push_back(std::move(d));
    }
    if (!g.dropped.empty()) {
      DetectorSpec d;
      d.name = "drops:" + g.dropped;
      d.series = g.dropped;
      d.kind = DetectorKind::kCusum;
      d.severity = Severity::kCritical;
      d.arm_windows = 1;
      out.push_back(std::move(d));
    }
  }
  DetectorSpec v;
  v.name = "slo:vlrt";
  v.series = kVlrtSeries;
  v.kind = DetectorKind::kBurnRate;
  v.severity = Severity::kCritical;
  v.slo = vlrt_slo_count;
  v.arm_windows = 1;
  out.push_back(std::move(v));
  return out;
}

}  // namespace ntier::obs
