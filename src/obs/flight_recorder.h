// Always-on flight recorder: a bounded ring of completed span trees.
//
// Production tail hunting cannot afford full-fidelity trace retention at
// every operating point, but "start tracing after the page fires" misses
// the cause — the millibottleneck is over by the time anyone reacts.
// The flight recorder squares that: every finished span tree the Tracer
// sees (whatever its sampling mode) is offered to a fixed-capacity ring;
// old trees are evicted as new ones complete, so steady-state memory is
// O(ring_capacity) regardless of run length, and the hot path pays
// nothing beyond what the tracing mode already pays (one refcount
// retain per finished trace — no allocation, spans were recorded
// anyway). When a detector fires, the ring is frozen — eviction stops —
// and the retroactive window [T-W, T+W] around the trigger T can be
// dumped: the spans from *before* the incident are still in the ring.
//
// Span trees are slab-pooled PoolRefs (trace/span.h); holding one in
// the ring retains the pooled slot, dropping it on eviction releases it
// back to the pool. Freezing pins at most ring_capacity + the trees
// completed during the ±W window, so the memory bound survives the
// freeze (docs/OBSERVABILITY.md works the numbers).
//
// Determinism: offer/evict/freeze do no simulation work — no events, no
// randomness, no clock reads — so recording never perturbs the run
// (DESIGN.md invariant 10).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "trace/span.h"

namespace ntier::obs {

// Sizing of the retained ring and the retroactive dump window.
struct FlightRecorderConfig {
  // Completed span trees retained while healthy. At fig-scale traffic
  // (~2k req/s, 1-in-5 sampling) 4096 trees cover ~10 s of history.
  std::size_t ring_capacity = 4096;
  // Half-width W of the dump window [T-W, T+W] around the trigger.
  sim::Duration window = sim::Duration::seconds(5);
};

// The ring itself. IncidentMonitor owns one and feeds it from the
// Tracer's finish hook; tests drive it directly.
class FlightRecorder {
 public:
  // An empty, unfrozen ring (capacity 0 is clamped to 1).
  explicit FlightRecorder(FlightRecorderConfig cfg);

  // The sizing this recorder was built with (after clamping).
  const FlightRecorderConfig& config() const { return cfg_; }

  // Offers one finished span tree. Healthy: evicts the oldest entry
  // once the ring is full. Frozen: keeps everything (the post-trigger
  // half of the dump window must not evict the pre-trigger half).
  void offer(const trace::TracePtr& t);

  // Stops eviction until thaw(). Idempotent.
  void freeze() { frozen_ = true; }
  // Resumes normal eviction and re-trims the ring to capacity.
  void thaw();
  bool frozen() const { return frozen_; }

  // Retained trees whose root span overlaps [from, to), oldest first —
  // the retroactive dump set. Unclosed roots are treated as still open
  // (they overlap any window after their begin).
  std::vector<trace::TracePtr> window_snapshot(sim::Time from, sim::Time to) const;

  // Monotonic counters over one run (offered includes kept ones).
  std::uint64_t offered() const { return offered_; }
  std::uint64_t evicted() const { return evicted_; }
  // Live (retained) trees — excludes lazily-compacted dead slots.
  std::size_t size() const { return ring_.size() - start_; }

 private:
  FlightRecorderConfig cfg_;
  // Oldest-first deque emulated over a vector + start index; entries
  // before start_ are already-released null slots compacted lazily.
  std::vector<trace::TracePtr> ring_;
  std::size_t start_ = 0;
  bool frozen_ = false;
  std::uint64_t offered_ = 0;
  std::uint64_t evicted_ = 0;

  void compact();
};

}  // namespace ntier::obs
