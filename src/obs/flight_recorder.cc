#include "obs/flight_recorder.h"

#include <algorithm>

namespace ntier::obs {

FlightRecorder::FlightRecorder(FlightRecorderConfig cfg) : cfg_(cfg) {
  if (cfg_.ring_capacity == 0) cfg_.ring_capacity = 1;
  ring_.reserve(cfg_.ring_capacity);
}

void FlightRecorder::offer(const trace::TracePtr& t) {
  if (!t) return;
  ++offered_;
  if (!frozen_ && ring_.size() - start_ >= cfg_.ring_capacity) {
    ring_[start_] = nullptr;  // release the pooled tree
    ++start_;
    ++evicted_;
  }
  ring_.push_back(t);
  compact();
}

void FlightRecorder::thaw() {
  frozen_ = false;
  while (ring_.size() - start_ > cfg_.ring_capacity) {
    ring_[start_] = nullptr;
    ++start_;
    ++evicted_;
  }
  compact();
}

void FlightRecorder::compact() {
  // Amortized O(1): slide live entries down once a capacity's worth of
  // dead slots accumulated, keeping the vector at <= 2x capacity.
  if (start_ < cfg_.ring_capacity) return;
  ring_.erase(ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(start_));
  start_ = 0;
}

std::vector<trace::TracePtr> FlightRecorder::window_snapshot(sim::Time from,
                                                             sim::Time to) const {
  std::vector<trace::TracePtr> out;
  for (std::size_t i = start_; i < ring_.size(); ++i) {
    const trace::TracePtr& t = ring_[i];
    if (!t || t->empty()) continue;
    const trace::Span& root = t->root();
    const sim::Time end = root.closed() ? root.end : to;
    if (root.begin < to && end >= from) out.push_back(t);
  }
  return out;
}

}  // namespace ntier::obs
