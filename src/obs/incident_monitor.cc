#include "obs/incident_monitor.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>

#include "metrics/csv.h"
#include "trace/chrome_trace.h"

namespace ntier::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void append_num(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

IncidentMonitor::IncidentMonitor(ObsConfig cfg) : cfg_(std::move(cfg)) {}

IncidentMonitor::~IncidentMonitor() {
  // Fallback for callers that never finalize (sweep points, aborted
  // benches): close the books at the last sampled instant so enabled
  // runs always leave their incident log behind.
  if (attached_ && !finalized_) finalize(last_tick_end_);
}

void IncidentMonitor::attach(Bindings b) {
  b_ = std::move(b);
  attached_ = true;
  window_ = b_.sampler->window();

  std::vector<DetectorSpec> specs = cfg_.detectors;
  if (specs.empty()) specs = default_suite(b_.groups, cfg_.vlrt_slo_count);
  bound_.reserve(specs.size());
  for (DetectorSpec& s : specs) {
    Bound bd(std::move(s));
    const DetectorSpec& spec = bd.det.spec();
    if (spec.series == kVlrtSeries) {
      bd.tl = b_.vlrt;
    } else {
      bd.tl = b_.registry->find_series(spec.series);
    }
    bound_.push_back(std::move(bd));
  }

  b_.sampler->add_tick_hook([this](sim::Time wstart) { on_tick(wstart); });
  if (b_.tracer != nullptr && b_.tracer->enabled()) {
    recorder_ = std::make_unique<FlightRecorder>(cfg_.flight);
    b_.tracer->set_finish_hook(
        [this](const trace::TracePtr& t, sim::Duration) { recorder_->offer(t); });
  }
}

void IncidentMonitor::on_tick(sim::Time wstart) {
  last_tick_end_ = wstart + window_;
  for (Bound& bd : bound_) {
    double v = 0.0;
    if (bd.tl != nullptr) {
      const std::size_t ix = static_cast<std::size_t>(
          wstart.count_micros() / bd.tl->window().count_micros());
      v = bd.tl->value_at(ix);
    }
    const Detector::Edge edge = bd.det.observe(v);
    if (bd.open_incident >= 0) {
      Incident& inc = incidents_[static_cast<std::size_t>(bd.open_incident)];
      inc.peak_value = std::max(inc.peak_value, v);
    }
    if (edge == Detector::Edge::kFire) {
      Incident inc;
      const DetectorSpec& spec = bd.det.spec();
      inc.detector = spec.name;
      inc.series = spec.series;
      inc.kind = spec.kind;
      inc.severity = spec.severity;
      inc.fired_at = wstart;
      inc.value_at_fire = v;
      inc.stat_at_fire = bd.det.statistic();
      inc.peak_value = v;
      bd.open_incident = static_cast<int>(incidents_.size());
      incidents_.push_back(std::move(inc));
      trigger_capture(wstart);
    } else if (edge == Detector::Edge::kClear && bd.open_incident >= 0) {
      Incident& inc = incidents_[static_cast<std::size_t>(bd.open_incident)];
      inc.cleared = true;
      inc.cleared_at = wstart;
      bd.open_incident = -1;
    }
  }
  // The post-trigger half of the retro window has elapsed: dump now,
  // mid-run, while the frozen ring still holds the pre-trigger spans.
  if (capture_pending_ && last_tick_end_ >= trigger_ + cfg_.flight.window) {
    do_dump(last_tick_end_);
  }
}

void IncidentMonitor::trigger_capture(sim::Time fired_at) {
  if (capture_pending_ || dumps_done_ >= std::max(0, cfg_.max_dumps)) {
    if (!have_window_ && !capture_pending_) {
      // Dumping disabled (max_dumps 0): still pin the retro window to
      // the first fire so incident.json can slice the timelines.
      trigger_ = fired_at;
      have_window_ = true;
      dump_from_ = fired_at < sim::Time::origin() + cfg_.flight.window
                       ? sim::Time::origin()
                       : fired_at - cfg_.flight.window;
      dump_to_ = fired_at + cfg_.flight.window;
    }
    return;
  }
  capture_pending_ = true;
  trigger_ = fired_at;
  if (recorder_) recorder_->freeze();
}

void IncidentMonitor::do_dump(sim::Time at) {
  capture_pending_ = false;
  ++dumps_done_;
  const sim::Duration w = cfg_.flight.window;
  dump_from_ = trigger_ < sim::Time::origin() + w ? sim::Time::origin() : trigger_ - w;
  dump_to_ = std::min(trigger_ + w, std::max(at, trigger_));
  have_window_ = true;
  if (recorder_) {
    const std::vector<trace::TracePtr> snap =
        recorder_->window_snapshot(dump_from_, dump_to_);
    dumped_traces_ = snap.size();
    if (!cfg_.out_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(cfg_.out_dir, ec);
      const std::string base = cfg_.out_dir + "/" + b_.run_name + ".incident";
      if (metrics::write_file(base + ".trace.json", trace::chrome_trace_json(snap)))
        written_.push_back(base + ".trace.json");
      if (metrics::write_file(base + "_spans.csv", trace::spans_csv(snap)))
        written_.push_back(base + "_spans.csv");
    }
    recorder_->thaw();
  }
}

void IncidentMonitor::finalize(sim::Time end) {
  if (finalized_ || !attached_) return;
  finalized_ = true;
  if (capture_pending_) do_dump(end);
  if (!cfg_.out_dir.empty()) write_incident_json(end);
}

void IncidentMonitor::write_incident_json(sim::Time end) {
  std::string out = "{\n  \"schema\": \"ntier.incidents/1\",\n  \"name\": ";
  append_escaped(out, b_.run_name);
  out += ",\n  \"window_ms\": ";
  append_num(out, window_.to_millis());
  out += ",\n  \"detectors\": ";
  append_u64(out, bound_.size());
  out += ",\n  \"end_s\": ";
  append_num(out, end.to_seconds());
  if (recorder_) {
    out += ",\n  \"flight\": {\n    \"ring_capacity\": ";
    append_u64(out, cfg_.flight.ring_capacity);
    out += ",\n    \"window_s\": ";
    append_num(out, cfg_.flight.window.to_seconds());
    out += ",\n    \"offered\": ";
    append_u64(out, recorder_->offered());
    out += ",\n    \"evicted\": ";
    append_u64(out, recorder_->evicted());
    out += "\n  }";
  }
  if (have_window_) {
    out += ",\n  \"dump\": {\n    \"from_s\": ";
    append_num(out, dump_from_.to_seconds());
    out += ",\n    \"to_s\": ";
    append_num(out, dump_to_.to_seconds());
    out += ",\n    \"traces\": ";
    append_u64(out, dumped_traces_);
    out += "\n  }";
  }
  out += ",\n  \"incidents\": [";
  for (std::size_t i = 0; i < incidents_.size(); ++i) {
    const Incident& inc = incidents_[i];
    out += i == 0 ? "\n    {" : ",\n    {";
    out += "\"detector\": ";
    append_escaped(out, inc.detector);
    out += ", \"kind\": \"";
    out += obs::to_string(inc.kind);
    out += "\", \"series\": ";
    append_escaped(out, inc.series);
    out += ", \"severity\": \"";
    out += obs::to_string(inc.severity);
    out += "\", \"fired_s\": ";
    append_num(out, inc.fired_at.to_seconds());
    out += ", \"cleared_s\": ";
    if (inc.cleared)
      append_num(out, inc.cleared_at.to_seconds());
    else
      out += "null";
    out += ", \"value_at_fire\": ";
    append_num(out, inc.value_at_fire);
    out += ", \"stat_at_fire\": ";
    append_num(out, inc.stat_at_fire);
    out += ", \"peak_value\": ";
    append_num(out, inc.peak_value);
    out += "}";
  }
  out += incidents_.empty() ? "],\n" : "\n  ],\n";
  // Retro-window slices of every bound series: the flight-recorder view
  // of the *metric* plane, so the dump shows the causal drop episode
  // even when no spans were captured.
  out += "  \"timelines\": {";
  bool first = true;
  if (have_window_) {
    // Distinct bound series, preserving suite order.
    std::vector<const Bound*> slices;
    for (const Bound& bd : bound_) {
      if (bd.tl == nullptr) continue;
      bool dup = false;
      for (const Bound* prev : slices)
        if (prev->tl == bd.tl) { dup = true; break; }
      if (!dup) slices.push_back(&bd);
    }
    for (const Bound* bd : slices) {
      const std::int64_t win_us = bd->tl->window().count_micros();
      const std::size_t i0 =
          static_cast<std::size_t>(dump_from_.count_micros() / win_us);
      const std::size_t i1 = std::min(
          bd->tl->window_count(),
          static_cast<std::size_t>((dump_to_.count_micros() + win_us - 1) / win_us));
      out += first ? "\n    " : ",\n    ";
      first = false;
      append_escaped(out, bd->det.spec().series);
      out += ": {\"t0_s\": ";
      append_num(out, bd->tl->window_start(i0).to_seconds());
      out += ", \"window_ms\": ";
      append_num(out, bd->tl->window().to_millis());
      out += ", \"values\": [";
      for (std::size_t i = i0; i < i1; ++i) {
        if (i > i0) out += ", ";
        append_num(out, bd->tl->value_at(i));
      }
      out += "]}";
    }
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";

  std::error_code ec;
  std::filesystem::create_directories(cfg_.out_dir, ec);
  const std::string path = cfg_.out_dir + "/" + b_.run_name + ".incident.json";
  if (metrics::write_file(path, out)) written_.push_back(path);
}

IncidentSummary IncidentMonitor::summary() const {
  IncidentSummary s;
  s.count = incidents_.size();
  std::map<std::string, std::uint64_t> by;
  for (const Incident& inc : incidents_) {
    if (!inc.cleared) ++s.open;
    if (s.first_fire_s < 0 || inc.fired_at.to_seconds() < s.first_fire_s)
      s.first_fire_s = inc.fired_at.to_seconds();
    ++by[inc.detector];
  }
  s.by_detector.assign(by.begin(), by.end());
  return s;
}

std::string IncidentMonitor::to_string() const {
  if (incidents_.empty() && written_.empty()) return std::string();
  std::string out = "--- incidents: " + std::to_string(incidents_.size()) + " fired";
  const IncidentSummary s = summary();
  if (s.open > 0) out += " (" + std::to_string(s.open) + " still open)";
  out += " ---\n";
  for (const Incident& inc : incidents_) {
    char buf[256];
    std::snprintf(buf, sizeof buf, "  [%s] %s (%s) fired %.2fs", obs::to_string(inc.severity),
                  inc.detector.c_str(), obs::to_string(inc.kind), inc.fired_at.to_seconds());
    out += buf;
    if (inc.cleared) {
      std::snprintf(buf, sizeof buf, " cleared %.2fs", inc.cleared_at.to_seconds());
      out += buf;
    } else {
      out += " OPEN";
    }
    std::snprintf(buf, sizeof buf, " peak %.3g\n", inc.peak_value);
    out += buf;
  }
  if (recorder_) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "  flight: offered %llu evicted %llu",
                  static_cast<unsigned long long>(recorder_->offered()),
                  static_cast<unsigned long long>(recorder_->evicted()));
    out += buf;
    if (have_window_) {
      std::snprintf(buf, sizeof buf, " dump %.2f..%.2fs traces %llu",
                    dump_from_.to_seconds(), dump_to_.to_seconds(),
                    static_cast<unsigned long long>(dumped_traces_));
      out += buf;
    }
    out += '\n';
  }
  for (const std::string& p : written_) out += "  wrote " + p + "\n";
  return out;
}

}  // namespace ntier::obs
