// Online incident detectors over telemetry timelines.
//
// The offline correlation engine (core/correlate.h) can name the
// bottleneck device only after a run finishes; this module detects the
// same millibottleneck signatures *while the run is happening*, one
// 50 ms window at a time. A Detector is a small state machine fed one
// value per sampler window (piggybacked on the existing Sampler tick by
// obs/incident_monitor.h); it fires an Incident when the bound series
// misbehaves and clears it when the series settles. Four detector kinds
// cover the paper's signals:
//
//   kThreshold — value >= threshold for `arm_windows` consecutive
//       windows. The millibottleneck primitive: a disk or VM pegged at
//       >= 99% for 100+ ms is exactly the paper's Fig 5(a) "I/O wait"
//       spike.
//   kEwmaZ — exponentially weighted moving mean/variance; fires when
//       the z-score (value - mean) / max(sigma, min_sigma) exceeds
//       `z_fire`. Baseline-relative, so it works on series whose normal
//       level varies by scenario (queue depths). Statistics freeze while
//       the detector is firing, so a long incident cannot teach the
//       baseline that the anomaly is normal.
//   kBurnRate — windowed SLO burn rate. A window is "bad" when the
//       value exceeds `slo`; the burn rate is bad-fraction / budget
//       over the trailing `lookback_windows`. Burn >= `burn_fire`
//       means the error budget is being consumed faster than allowed
//       (the SRE multiwindow-burn idiom). Bound to the VLRT tracker
//       (budget 0, any VLRT burns) it is the online "tail mode began"
//       signal.
//   kCusum — one-sided CUSUM change-point statistic
//       S := clamp(S + (value - ref) - k, 0, 2h); fires at S >= h.
//       Integrates small persistent shifts that never cross a static
//       threshold — drop counters that tick 1-2 per window. The clamp
//       at 2h bounds how much evidence must drain before clearing.
//
// Determinism contract (DESIGN.md invariant 10): detectors read values,
// update doubles, and return an edge — they schedule no events and draw
// no randomness, so enabling them leaves every simulation artifact
// byte-identical. Tuning guidance lives in docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace ntier::obs {

// Detector algorithm menu (see file header for the math of each).
enum class DetectorKind : std::uint8_t { kThreshold, kEwmaZ, kBurnRate, kCusum };

// How bad a fired incident is — set per spec, carried on the Incident.
enum class Severity : std::uint8_t { kInfo, kWarning, kCritical };

// Stable lowercase names used in exports ("threshold", "warning", ...).
const char* to_string(DetectorKind k);
const char* to_string(Severity s);

// One declarative detector binding: which series to watch, which
// algorithm, and its tuning. Kind-specific fields are ignored by the
// other kinds. Defaults are the tuned values used by default_suite().
struct DetectorSpec {
  std::string name;    // unique detector name, e.g. "sat:dbdisk.busy"
  std::string series;  // registry series name, or obs::kVlrtSeries
  DetectorKind kind = DetectorKind::kThreshold;
  Severity severity = Severity::kWarning;

  // Debounce: consecutive over-windows to fire / calm windows to clear.
  int arm_windows = 2;
  int clear_windows = 10;

  // kThreshold: fire level (units of the bound series).
  double threshold = 99.0;

  // kEwmaZ: smoothing factor, fire/clear z-scores, variance floor, and
  // windows of baseline learning before the detector may fire.
  double alpha = 0.05;
  double z_fire = 8.0;
  double z_clear = 2.0;
  double min_sigma = 1.0;
  int warmup_windows = 40;

  // kBurnRate: SLO level, allowed bad fraction, fire/clear burn rates,
  // trailing window count (40 windows = 2 s at 50 ms).
  double slo = 0.0;
  double budget = 0.02;
  double burn_fire = 2.0;
  double burn_clear = 1.0;
  int lookback_windows = 40;

  // kCusum: reference level, slack per window, decision threshold.
  double cusum_ref = 0.0;
  double cusum_k = 0.5;
  double cusum_h = 3.0;
};

// Reserved series name binding a detector to the VLRT-per-window
// timeline (monitor::LatencyCollector) instead of a registry series.
inline constexpr const char* kVlrtSeries = "vlrt";

// One fired incident: which detector, on which series, when it fired,
// and (once the series settles) when it cleared. Times are the STARTS
// of the offending/calm sampler windows.
struct Incident {
  std::string detector;
  std::string series;
  DetectorKind kind = DetectorKind::kThreshold;
  Severity severity = Severity::kWarning;
  sim::Time fired_at;
  sim::Time cleared_at;     // valid iff cleared
  bool cleared = false;
  double value_at_fire = 0.0;  // raw series value in the firing window
  double stat_at_fire = 0.0;   // detector statistic (z, burn, S, value)
  double peak_value = 0.0;     // max raw value observed while firing
};

// The per-spec state machine. observe() consumes one window value and
// reports whether this window fired or cleared the detector.
class Detector {
 public:
  // What one observe() call did to the fired/cleared state.
  enum class Edge : std::uint8_t { kNone, kFire, kClear };

  // Initial state: not firing, empty history.
  explicit Detector(DetectorSpec spec);

  // The binding this detector was built from, unchanged.
  const DetectorSpec& spec() const { return spec_; }
  bool firing() const { return firing_; }
  // Current detector statistic: the raw value (kThreshold), z-score
  // (kEwmaZ), burn rate (kBurnRate), or CUSUM S (kCusum).
  double statistic() const { return stat_; }

  // Feeds the value of one sampler window (windows must be fed in
  // order, no gaps). Pure arithmetic — no events, no randomness.
  Edge observe(double value);

 private:
  double compute_statistic(double value);

  DetectorSpec spec_;
  bool firing_ = false;
  double stat_ = 0.0;
  int over_ = 0;   // consecutive windows with statistic past fire level
  int calm_ = 0;   // consecutive windows below the clear level
  // kEwmaZ state.
  double mean_ = 0.0;
  double var_ = 0.0;
  std::int64_t seen_ = 0;
  // kBurnRate state: ring of bad/good bits over the lookback.
  std::vector<std::uint8_t> bad_ring_;
  std::size_t ring_pos_ = 0;
  int bad_count_ = 0;
  // kCusum state.
  double cusum_s_ = 0.0;
};

// The series names of one tier/node used to build the default detector
// suite (core adapts its collect_signals() output into these).
struct SeriesGroup {
  std::string name;                     // tier/node name ("apache")
  std::vector<std::string> saturation;  // disk .busy first, then VM series
  std::string queue;                    // "<name>.queue"
  std::string dropped;                  // "<name>.dropped"
};

// The default suite bound to a system's signals: per tier a kThreshold
// on each saturation series (critical), a kEwmaZ on the queue, and a
// kCusum on the drop counter; plus one kBurnRate on the VLRT tracker.
// `vlrt_slo_count` is the per-window VLRT count treated as "bad" > slo
// (default 0: any VLRT completion burns budget).
std::vector<DetectorSpec> default_suite(const std::vector<SeriesGroup>& groups,
                                        double vlrt_slo_count = 0.0);

}  // namespace ntier::obs
