// IncidentMonitor: online detection + retroactive capture for one run.
//
// Owns the detector suite (obs/detector.h) and the flight recorder
// (obs/flight_recorder.h) and wires both into a running system without
// touching the event stream:
//   - detection piggybacks on the existing 50 ms Sampler tick via
//     Sampler::add_tick_hook — each tick the monitor reads the window
//     value of every bound series (pure Timeline reads) and steps the
//     detectors;
//   - capture piggybacks on Tracer::set_finish_hook — every finished
//     span tree is offered to the ring, whatever the sampling mode.
// Neither hook schedules events, reads the clock beyond the tick's own
// timestamp, or draws randomness, so a run with the monitor enabled is
// event- and artifact-byte-identical to one without (DESIGN.md
// invariant 10 — enforced by tests/test_obs.cc).
//
// Incident lifecycle: a detector fire opens an Incident; the first fire
// of the run freezes the flight recorder and schedules a retroactive
// dump of [T-W, T+W] around the fire time T, written as soon as the
// simulation clock passes T+W (or at finalize() if the run ends first).
// finalize() also writes `<name>.incident.json` — the incident log,
// flight-recorder stats, and the retro-window slices of every bound
// series (the dump therefore contains the causal drop episode, not just
// its VLRT aftermath). File writes happen from within the tick but
// touch only the host filesystem, never the simulation.
//
// Layering: obs sits between monitor/trace and core — core builds an
// IncidentMonitor per system (config.obs), adapts its collect_signals()
// output into SeriesGroups, and report/bench surface the results.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "metrics/timeline.h"
#include "monitor/sampler.h"
#include "obs/detector.h"
#include "obs/flight_recorder.h"
#include "sim/time.h"
#include "trace/tracer.h"

namespace ntier::obs {

// Per-run observability configuration (carried on the system configs as
// `cfg.obs`; bench --incidents=/--flight-window= flags fill it).
struct ObsConfig {
  bool enabled = false;
  // Detector bindings; empty selects default_suite() over the system's
  // per-tier signals plus the VLRT burn-rate detector.
  std::vector<DetectorSpec> detectors;
  FlightRecorderConfig flight{};
  // Directory for incident artifacts (<name>.incident.json + flight
  // dumps); empty keeps everything in memory only.
  std::string out_dir;
  // Retroactive flight dumps per run (the first fire triggers one; 0
  // disables dumping while keeping detection).
  int max_dumps = 1;
  // Per-window VLRT count the default suite's burn-rate detector
  // tolerates before the window counts as "bad" (0: any VLRT burns).
  double vlrt_slo_count = 0.0;
};

// Non-owning pointers to the run's collectors; all must outlive the
// monitor. `tracer` may be null (ChainSystem has none): detection and
// timeline capture still run, only span capture is skipped.
struct Bindings {
  monitor::Sampler* sampler = nullptr;       // required
  telemetry::Registry* registry = nullptr;   // required
  const metrics::Timeline* vlrt = nullptr;   // kVlrtSeries binding
  trace::Tracer* tracer = nullptr;           // optional
  std::string run_name;                      // artifact file prefix
  std::vector<SeriesGroup> groups;           // for default_suite()
};

// Manifest-facing rollup (mirrors the ctqo_storm block pattern: the
// manifest emits it only when count > 0).
struct IncidentSummary {
  std::uint64_t count = 0;       // incidents fired
  std::uint64_t open = 0;        // never cleared by run end
  double first_fire_s = -1.0;    // seconds; -1 when none fired
  // Fired-incident count per detector name, name-sorted.
  std::vector<std::pair<std::string, std::uint64_t>> by_detector;
};

// The per-run monitor: detector suite + flight recorder + artifacts.
class IncidentMonitor {
 public:
  // Built from the run's cfg.obs; inert until attach() installs hooks.
  explicit IncidentMonitor(ObsConfig cfg);
  // Auto-finalizes (writing pending artifacts) if finalize() never ran.
  ~IncidentMonitor();

  // Non-copyable: owns hook registrations and the recorder ring.
  IncidentMonitor(const IncidentMonitor&) = delete;
  IncidentMonitor& operator=(const IncidentMonitor&) = delete;

  // Resolves detector bindings against the registry and installs the
  // sampler/tracer hooks. Call once, before the run starts.
  void attach(Bindings b);

  // The configuration this monitor was built from.
  const ObsConfig& config() const { return cfg_; }
  // All incidents in fire order (open ones have cleared == false).
  const std::vector<Incident>& incidents() const { return incidents_; }
  // Null when no tracer was bound (or obs built detection-only).
  const FlightRecorder* recorder() const { return recorder_.get(); }

  // Closes the books at simulated `end`: performs a still-pending
  // retroactive dump and writes <name>.incident.json when out_dir is
  // set. Idempotent; benches call it right after the run.
  void finalize(sim::Time end);
  bool finalized() const { return finalized_; }

  // Manifest-facing rollup of the incident log (see IncidentSummary).
  IncidentSummary summary() const;
  // The retroactive window [from, to) actually captured; valid iff
  // have_dump_window() (at least one incident fired).
  bool have_dump_window() const { return have_window_; }
  sim::Time dump_from() const { return dump_from_; }
  sim::Time dump_to() const { return dump_to_; }
  // Span trees captured in the retro window at dump time.
  std::size_t dumped_traces() const { return dumped_traces_; }
  // Paths written so far (flight dumps + incident.json).
  const std::vector<std::string>& written_files() const { return written_; }

  // Human-readable report for bench stdout (incidents, flight stats,
  // written paths); "" when nothing fired and nothing was written.
  std::string to_string() const;

 private:
  // One spec bound to its timeline (null = series absent in this run;
  // the detector then sees a constant 0 and stays quiet).
  struct Bound {
    Detector det;
    const metrics::Timeline* tl = nullptr;
    int open_incident = -1;  // index into incidents_, -1 when idle
    explicit Bound(DetectorSpec s) : det(std::move(s)) {}
  };

  void on_tick(sim::Time wstart);
  void trigger_capture(sim::Time fired_at);
  void do_dump(sim::Time at);
  void write_incident_json(sim::Time end);

  ObsConfig cfg_;
  Bindings b_;
  bool attached_ = false;
  bool finalized_ = false;
  sim::Duration window_ = sim::Duration::millis(50);
  std::vector<Bound> bound_;
  std::vector<Incident> incidents_;
  std::unique_ptr<FlightRecorder> recorder_;

  bool capture_pending_ = false;
  bool have_window_ = false;
  int dumps_done_ = 0;
  sim::Time trigger_;
  sim::Time dump_from_;
  sim::Time dump_to_;
  std::size_t dumped_traces_ = 0;
  sim::Time last_tick_end_;
  std::vector<std::string> written_;
};

}  // namespace ntier::obs
