#include "net/rto_policy.h"

#include <cmath>

namespace ntier::net {

sim::Duration RtoPolicy::rto(int retry) const {
  if (retry < 0) retry = 0;
  if (tlp > sim::Duration::zero()) {
    if (retry == 0) return tlp;
    --retry;  // the probe consumed slot 0; the RTO ladder starts at `initial`
  }
  sim::Duration d = (backoff == Backoff::kFixed)
                        ? initial
                        : initial * std::pow(multiplier, static_cast<double>(retry));
  if (max_rto > sim::Duration::zero() && d > max_rto) d = max_rto;
  return d;
}

RtoPolicy RtoPolicy::rhel6() { return RtoPolicy{}; }

RtoPolicy RtoPolicy::fixed3s() {
  RtoPolicy p;
  p.backoff = Backoff::kFixed;
  return p;
}

RtoPolicy RtoPolicy::linux_modern() {
  RtoPolicy p;
  p.initial = sim::Duration::millis(200);
  p.backoff = Backoff::kExponential;
  p.multiplier = 2.0;
  p.max_retries = 6;
  p.tlp = sim::Duration::millis(10);
  p.max_rto = sim::Duration::seconds(120);
  return p;
}

RtoPolicy RtoPolicy::erpc() {
  RtoPolicy p;
  p.initial = sim::Duration::millis(2);
  p.backoff = Backoff::kFixed;
  p.max_retries = 64;
  return p;
}

}  // namespace ntier::net
