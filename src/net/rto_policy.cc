#include "net/rto_policy.h"

#include <cmath>

namespace ntier::net {

sim::Duration RtoPolicy::rto(int retry) const {
  if (retry < 0) retry = 0;
  if (backoff == Backoff::kFixed) return initial;
  return initial * std::pow(multiplier, static_cast<double>(retry));
}

RtoPolicy RtoPolicy::rhel6() { return RtoPolicy{}; }

RtoPolicy RtoPolicy::fixed3s() {
  RtoPolicy p;
  p.backoff = Backoff::kFixed;
  return p;
}

}  // namespace ntier::net
