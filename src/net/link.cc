#include "net/link.h"

namespace ntier::net {}
