// Small shared types for the inter-tier messaging substrate.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/time.h"

namespace ntier::net {

struct MessageId {
  std::uint64_t value = 0;
  friend constexpr auto operator<=>(MessageId, MessageId) = default;
};

// Monotonic id source; one per simulation.
class MessageIdGen {
 public:
  MessageId next() { return MessageId{++last_}; }

 private:
  std::uint64_t last_ = 0;
};

// Result of one logical send (possibly after retransmissions).
struct TxOutcome {
  bool delivered = false;
  int attempts = 1;            // total delivery attempts
  int drops = 0;               // attempts rejected by the receiver
  sim::Duration retrans_delay; // extra latency caused purely by drops
};

// Per-message trace observer: fired by the transport at each dropped or
// lost attempt with the drop instant and the RTO wait that follows —
// exactly the per-retransmission timestamps the paper aligns across
// tiers; the tracing layer records them as rto_gap spans. Must be a
// pure observer (no event scheduling, no RNG).
using TxRetransmitObserver =
    std::function<void(sim::Time at, sim::Duration rto, int attempt)>;

// Counters for a sender or receiver side.
struct TxStats {
  std::uint64_t sent = 0;        // logical sends initiated
  std::uint64_t delivered = 0;   // logical sends eventually accepted
  std::uint64_t drops = 0;       // attempts refused at the receiver's door
  std::uint64_t link_lost = 0;   // attempts lost in the network (degraded link)
  std::uint64_t retransmits = 0; // retransmission attempts issued
  std::uint64_t failed = 0;      // sends abandoned after max retries
  // Sends that hit RtoPolicy::max_retries (the kernel-style retry cap)
  // with every attempt refused or lost — the "connection timed out" case.
  std::uint64_t retransmit_exhausted = 0;
};

}  // namespace ntier::net
