// Small shared types for the inter-tier messaging substrate.
#pragma once

#include <cstdint>

#include "sim/inline_fn.h"
#include "sim/slab_pool.h"
#include "sim/time.h"

namespace ntier::net {

// Strongly-typed message identity (avoids bare-integer mixups).
struct MessageId {
  std::uint64_t value = 0;
  friend constexpr auto operator<=>(MessageId, MessageId) = default;
};

// Monotonic id source; one per simulation.
class MessageIdGen {
 public:
  // The next unused id (ids start at 1).
  MessageId next() { return MessageId{++last_}; }

 private:
  std::uint64_t last_ = 0;
};

// Result of one logical send (possibly after retransmissions).
struct TxOutcome {
  bool delivered = false;
  int attempts = 1;            // total delivery attempts
  int drops = 0;               // attempts rejected by the receiver
  sim::Duration retrans_delay; // extra latency caused purely by drops
};

// Transport callback types. All are heap-free InlineFn wrappers: the
// attempt closure carries a whole Job (the payload it re-offers on each
// retransmission), so it gets a wider inline budget than the result /
// retransmit observers, which capture only a couple of handles.
using TxAttemptFn = sim::InlineFn<bool(), 112>;
using TxResultFn = sim::InlineFn<void(const TxOutcome&), 64>;

// Per-message trace observer: fired by the transport at each dropped or
// lost attempt with the drop instant and the RTO wait that follows —
// exactly the per-retransmission timestamps the paper aligns across
// tiers; the tracing layer records them as rto_gap spans. Must be a
// pure observer (no event scheduling, no RNG).
using TxRetransmitObserver =
    sim::InlineFn<void(sim::Time at, sim::Duration rto, int attempt), 64>;

// One logical message in flight: the sender's attempt/result callbacks
// plus the retransmission bookkeeping the RTO loop accumulates. Slab-
// pooled — a send costs a free-list pop, never a malloc, once the pool
// covers the in-flight high-water mark.
struct Message {
  TxAttemptFn attempt;
  TxResultFn on_result;
  TxRetransmitObserver on_retransmit;
  int attempts = 0;
  int drops = 0;
  sim::Duration retrans_delay;
};

// Owning handle to a pooled in-flight Message.
using MessagePtr = sim::PoolRef<Message>;

// Thread-local pool backing Transport::send (one simulation per thread).
inline sim::SlabPool<Message>& message_pool() {
  thread_local sim::SlabPool<Message> pool;
  return pool;
}

// Counters for a sender or receiver side.
struct TxStats {
  std::uint64_t sent = 0;        // logical sends initiated
  std::uint64_t delivered = 0;   // logical sends eventually accepted
  std::uint64_t drops = 0;       // attempts refused at the receiver's door
  std::uint64_t link_lost = 0;   // attempts lost in the network (degraded link)
  std::uint64_t retransmits = 0; // retransmission attempts issued
  std::uint64_t failed = 0;      // sends abandoned after max retries
  // Sends that hit RtoPolicy::max_retries (the kernel-style retry cap)
  // with every attempt refused or lost — the "connection timed out" case.
  std::uint64_t retransmit_exhausted = 0;
};

}  // namespace ntier::net
