// Bounded TCP accept queue (the kernel "backlog").
//
// The paper's MaxSysQDepth arithmetic is thread-pool size + TCP buffer
// (backlog) size, 128 on their Linux kernel. A server admits a request
// either into a free worker or into this queue; when both are full the
// packet is dropped and the sender retransmits per RtoPolicy.
//
// The admission mode generalizes "when both are full" beyond the
// paper's drop-and-retransmit kernel (docs/PROTOCOLS.md):
//
//   kTcpDrop    — classic bounded backlog: overflow drops the packet and
//                 the sender eats an RTO (the CTQO mechanism).
//   kSynCookies — stateless overflow handling: the kernel answers the
//                 SYN without a queue slot, so the connection is
//                 *accepted* instead of dropped, but the cookie slow
//                 path costs extra server work (SyncConfig::
//                 cookie_penalty). Overflow admits are counted in
//                 cookie_admits() and the depth may exceed capacity().
//   kBypass     — kernel-bypass transport (eRPC-style): there is no
//                 kernel queue to overflow; every request is admitted
//                 into userspace queueing.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace ntier::net {

// What a full accept queue does to the next arriving packet (see the
// class comment above; selected per server via SyncConfig::admission
// and per protocol profile via net/protocol.h).
enum class AdmissionMode { kTcpDrop, kSynCookies, kBypass };
const char* to_string(AdmissionMode m);

// The bounded accept queue of one server, with its admission mode and
// overflow counters.
class TcpQueue {
 public:
  // A queue holding at most `capacity` waiting requests (in kTcpDrop
  // mode; cookie/bypass modes may exceed it).
  explicit TcpQueue(std::size_t capacity) : capacity_(capacity) {}

  // Capacity, current depth, and whether the next kTcpDrop arrival drops.
  std::size_t capacity() const { return capacity_; }
  std::size_t depth() const { return depth_; }
  bool full() const { return depth_ >= capacity_; }

  // The overflow behaviour (set once at wiring time, before traffic).
  AdmissionMode mode() const { return mode_; }
  void set_mode(AdmissionMode m) { mode_ = m; }

  // Outcome of one admission attempt: a regular slot, a SYN-cookie
  // overflow admit (slow path), or a drop.
  enum class Admit { kSlot, kCookie, kDrop };

  // Admits one request per the admission mode; records the drop (and
  // its time) in kTcpDrop mode, the overflow admit in kSynCookies mode.
  Admit try_admit(sim::Time now) {
    if (depth_ >= capacity_) {
      switch (mode_) {
        case AdmissionMode::kTcpDrop:
          ++drops_;
          drop_times_.push_back(now);
          return Admit::kDrop;
        case AdmissionMode::kSynCookies:
          ++cookie_admits_;
          ++depth_;
          return Admit::kCookie;
        case AdmissionMode::kBypass:
          ++depth_;
          return Admit::kSlot;
      }
    }
    ++depth_;
    return Admit::kSlot;
  }

  // Admits one request; returns false (and records the drop) when full
  // in kTcpDrop mode. Convenience wrapper over try_admit().
  bool try_push(sim::Time now) { return try_admit(now) != Admit::kDrop; }

  // Removes one queued request (a worker picked it up).
  void pop() {
    if (depth_ > 0) --depth_;
  }

  // Total packets dropped (kTcpDrop overflow), and each drop's instant.
  std::uint64_t drops() const { return drops_; }
  const std::vector<sim::Time>& drop_times() const { return drop_times_; }
  // Overflow admissions taken on the SYN-cookie slow path.
  std::uint64_t cookie_admits() const { return cookie_admits_; }

 private:
  std::size_t capacity_;
  std::size_t depth_ = 0;
  AdmissionMode mode_ = AdmissionMode::kTcpDrop;
  std::uint64_t drops_ = 0;
  std::uint64_t cookie_admits_ = 0;
  std::vector<sim::Time> drop_times_;
};

}  // namespace ntier::net
