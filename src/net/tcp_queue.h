// Bounded TCP accept queue (the kernel "backlog").
//
// The paper's MaxSysQDepth arithmetic is thread-pool size + TCP buffer
// (backlog) size, 128 on their Linux kernel. A server admits a request
// either into a free worker or into this queue; when both are full the
// packet is dropped and the sender retransmits per RtoPolicy.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace ntier::net {

class TcpQueue {
 public:
  explicit TcpQueue(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t depth() const { return depth_; }
  bool full() const { return depth_ >= capacity_; }

  // Admits one request; returns false (and records the drop) when full.
  bool try_push(sim::Time now) {
    if (depth_ >= capacity_) {
      ++drops_;
      drop_times_.push_back(now);
      return false;
    }
    ++depth_;
    return true;
  }

  // Removes one queued request (a worker picked it up).
  void pop() {
    if (depth_ > 0) --depth_;
  }

  std::uint64_t drops() const { return drops_; }
  const std::vector<sim::Time>& drop_times() const { return drop_times_; }

 private:
  std::size_t capacity_;
  std::size_t depth_ = 0;
  std::uint64_t drops_ = 0;
  std::vector<sim::Time> drop_times_;
};

}  // namespace ntier::net
