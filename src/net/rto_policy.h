// Retransmission-timeout policy: the timer semantics of one protocol stack.
//
// The paper's testbed runs RHEL 6.3 (kernel 2.6.32), where a dropped
// connection-establishment packet is retransmitted after 3 s, with
// exponential backoff on further losses (3 s, 6 s, 12 s, ...). These
// delays — not queueing — are what turn a millisecond request into a
// multi-second VLRT request, producing Fig 1's modes near 3/6/9 s
// (one drop = 3 s; drops on two hops = 6 s; a double drop on one
// hop = 3+6 = 9 s).
//
// Retransmission is not unbounded: after `max_retries` retransmissions
// the attempt is abandoned and surfaced to the sender as
// TxStats::retransmit_exhausted (net/message.h) — the simulated analogue
// of the kernel giving up after tcp_syn_retries and the application
// seeing ETIMEDOUT. Policy governors (policy/tail_policy.h) and client
// timeouts then decide what happens to the logical request.
//
// Named profiles (see docs/PROTOCOLS.md for the full matrix and the
// closed-form schedules):
//
//   profile        rto(0)  rto(1)  rto(2)  rto(3)  rto(4)  rto(5)  cap
//   rhel6()          3 s     6 s    12 s    24 s    48 s     —      —
//   fixed3s()        3 s     3 s     3 s     3 s     3 s     —      —
//   linux_modern()  10 ms  200 ms  400 ms  800 ms  1.6 s   3.2 s  120 s
//   erpc()           2 ms    2 ms    2 ms   ... (fixed, 64 tries)   —
//
// linux_modern()'s rto(0) is the tail-loss probe (TLP): modern kernels
// probe ~10 ms after a suspected tail loss before engaging the real RTO
// state machine, so the first recovery is two orders of magnitude
// cheaper than RHEL 6's 3 s. erpc() models a kernel-bypass transport
// whose *client* drives retransmission at RTT timescales (the eRPC
// design); it is normally paired with AdmissionMode::kBypass so drops
// only come from link loss, never from kernel queue overflow.
#pragma once

#include "sim/time.h"

namespace ntier::net {

// The retransmission-timer schedule of one protocol stack; rto(k) gives
// the delay before retransmission k (see the profile table above).
struct RtoPolicy {
  enum class Backoff { kFixed, kExponential };

  // Delay before the first (non-probe) retransmission; the base the
  // exponential ladder multiplies from.
  sim::Duration initial = sim::Duration::seconds(3);
  Backoff backoff = Backoff::kExponential;
  double multiplier = 2.0;  // used by kExponential
  // Kernel-style retransmission cap (tcp_syn_retries = 5 on the paper's
  // RHEL 6.3 kernel): after this many retransmissions the connection
  // attempt is abandoned and surfaced as TxStats::retransmit_exhausted.
  // Without the cap a persistently-full accept queue retransmits forever.
  int max_retries = 5;
  // Tail-loss probe: when positive, the FIRST retransmission fires after
  // this delay and the backoff schedule above starts at the second
  // retransmission (modern kernels probe at ~2*SRTT, min 10 ms, before
  // declaring a real RTO). Zero = no probe (the legacy schedule).
  sim::Duration tlp = sim::Duration::zero();
  // Upper bound on any single RTO (TCP_RTO_MAX, 120 s on Linux). Zero =
  // uncapped, which is exact for the short schedules above.
  sim::Duration max_rto = sim::Duration::zero();

  // Timeout before retransmission number `retry` (0-based: the delay
  // after the first drop is rto(0)). With a tail-loss probe, rto(0) is
  // `tlp` and rto(k>=1) is the ordinary schedule at position k-1.
  sim::Duration rto(int retry) const;

  // RHEL 6.3 / kernel 2.6.32 SYN-retransmit behaviour (paper default):
  // 3 s initial, doubling, 5 retries.
  static RtoPolicy rhel6();
  // Fixed 3 s for every retry — reproduces Fig 1's 3/6/9 s modes exactly
  // (k drops => ~3k s). The repo-wide seed default.
  static RtoPolicy fixed3s();
  // Modern Linux (>= 3.10 era): 10 ms tail-loss probe, then 200 ms min
  // RTO doubling up to TCP_RTO_MAX = 120 s, 6 tries total. Worst-case
  // added delay before abandonment: 10ms+200+400+800+1600+3200 ≈ 6.2 s.
  static RtoPolicy linux_modern();
  // Kernel-bypass transport (eRPC-style): the client retransmits on a
  // fixed ~RTT-scale 2 ms timer, 64 tries. Pair with kBypass admission.
  static RtoPolicy erpc();
};

}  // namespace ntier::net
