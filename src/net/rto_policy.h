// TCP retransmission-timeout policy.
//
// The paper's testbed runs RHEL 6.3 (kernel 2.6.32), where a dropped
// connection-establishment packet is retransmitted after 3 s, with
// exponential backoff on further losses (3 s, 6 s, 12 s, ...). These
// delays — not queueing — are what turn a millisecond request into a
// multi-second VLRT request, producing Fig 1's modes near 3/6/9 s
// (one drop = 3 s; drops on two hops = 6 s; a double drop on one
// hop = 3+6 = 9 s).
#pragma once

#include "sim/time.h"

namespace ntier::net {

struct RtoPolicy {
  enum class Backoff { kFixed, kExponential };

  sim::Duration initial = sim::Duration::seconds(3);
  Backoff backoff = Backoff::kExponential;
  double multiplier = 2.0;  // used by kExponential
  // Kernel-style retransmission cap (tcp_syn_retries = 5 on the paper's
  // RHEL 6.3 kernel): after this many retransmissions the connection
  // attempt is abandoned and surfaced as TxStats::retransmit_exhausted.
  // Without the cap a persistently-full accept queue retransmits forever.
  int max_retries = 5;

  // Timeout before retransmission number `retry` (0-based: the delay
  // after the first drop is rto(0)).
  sim::Duration rto(int retry) const;

  // RHEL 6.3 / kernel 2.6.32 SYN-retransmit behaviour (paper default).
  static RtoPolicy rhel6();
  // Fixed 3 s for every retry.
  static RtoPolicy fixed3s();
};

}  // namespace ntier::net
