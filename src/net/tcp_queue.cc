#include "net/tcp_queue.h"

namespace ntier::net {

const char* to_string(AdmissionMode m) {
  switch (m) {
    case AdmissionMode::kTcpDrop: return "tcp_drop";
    case AdmissionMode::kSynCookies: return "syn_cookies";
    case AdmissionMode::kBypass: return "bypass";
  }
  return "?";
}

}  // namespace ntier::net
