#include "net/tcp_queue.h"

namespace ntier::net {}
