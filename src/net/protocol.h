// Named network-protocol profiles: the protocol axis of the study.
//
// The paper's VLRT mechanism is pinned to one protocol stack (RHEL 6.3,
// fixed 3 s SYN retransmit, drop-on-overflow admission). A
// ProtocolProfile bundles everything that distinguishes one stack from
// another — the retransmission-timer schedule (RtoPolicy), the
// accept-queue overflow behaviour (AdmissionMode), the transport kind,
// and the app-level recovery knobs for datagram transports — so a whole
// experiment can switch stacks by name: core::apply_protocol() threads a
// profile through an ExperimentConfig, the graph grammar's `proto`
// directive (docs/TOPOLOGY.md) does it per graph or per edge, and
// bench/ext_protocol_matrix sweeps the matrix. docs/PROTOCOLS.md is the
// narrative companion: per-profile timer schedules, which real
// deployment each profile models, and the visible/hidden/absent CTQO
// taxonomy formalized by classify_ctqo() below.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/rto_policy.h"
#include "net/tcp_queue.h"
#include "sim/time.h"

namespace ntier::net {

// How messages travel between tiers.
//
//   kTcp           — kernel TCP: the sender's stack retransmits refused
//                    or lost packets per RtoPolicy (the paper's model).
//   kUdpAppTimeout — fire-and-forget datagrams: the stack never
//                    retransmits (RtoPolicy::max_retries = 0, so a
//                    refused or lost attempt fails immediately);
//                    recovery belongs to the application — the PR 1
//                    policy governors retry with app_timeout /
//                    app_attempts / app_retry_budget.
//   kErpc          — kernel-bypass RPC (eRPC-style): no kernel queues to
//                    overflow (pair with AdmissionMode::kBypass); the
//                    client library retransmits at ~RTT timescales.
enum class TransportKind { kTcp, kUdpAppTimeout, kErpc };
const char* to_string(TransportKind k);

// One named protocol stack. A pure value: applying the same profile to
// the same config yields bit-identical runs (DESIGN.md invariant 9).
struct ProtocolProfile {
  std::string name = "fixed3s";
  TransportKind transport = TransportKind::kTcp;
  // Accept-queue overflow behaviour at every sync tier (tcp_queue.h).
  AdmissionMode admission = AdmissionMode::kTcpDrop;
  // Retransmission timers for every hop (client->web and tier->tier).
  RtoPolicy rto = RtoPolicy::fixed3s();
  // kSynCookies only: extra per-request CPU demand of the cookie slow
  // path (stateless SYN-ACK encode/decode + options reconstruction) —
  // the "accepted but slow" cost that replaces the drop.
  sim::Duration cookie_penalty = sim::Duration::zero();
  // kUdpAppTimeout only: per-attempt timeout, total attempts (including
  // the first), and the retry-budget ratio handed to the policy
  // governors (policy/tail_policy.h; 0 = unbudgeted).
  sim::Duration app_timeout = sim::Duration::zero();
  int app_attempts = 1;
  double app_retry_budget = 0.0;

  // --- the named matrix (schedules tabulated in rto_policy.h and
  // --- docs/PROTOCOLS.md) ------------------------------------------------
  // Repo seed default: fixed 3 s retransmit, drop on overflow.
  static ProtocolProfile fixed3s();
  // Paper testbed: RHEL 6.3 exponential 3/6/12 s, drop on overflow.
  static ProtocolProfile rhel6();
  // Modern Linux timers (TLP + 200 ms min RTO), still drop on overflow.
  static ProtocolProfile linux_modern();
  // Modern timers + SYN cookies: overflow is admitted via the stateless
  // slow path (cookie_penalty CPU) instead of dropped.
  static ProtocolProfile syn_cookies();
  // Datagram transport with app-level timeout/retry via the governors.
  static ProtocolProfile udp_apptimeout();
  // Kernel-bypass RPC: no kernel queues, client retransmit at RTT scale.
  static ProtocolProfile erpc();

  // Profile by name ("fixed3s", "rhel6", "linux_modern", "syn_cookies",
  // "udp_apptimeout", "erpc"); nullopt for unknown names.
  static std::optional<ProtocolProfile> by_name(std::string_view name);
  // Every profile name, in matrix order (for sweeps and usage strings).
  static std::vector<std::string> names();
};

// CTQO visibility taxonomy for one operating point (docs/PROTOCOLS.md):
//   kVisible — overflow events occurred AND the tail shows multi-second
//              modes (p999 at or beyond the visibility threshold): the
//              paper's phenomenon.
//   kHidden  — overflow events still occur but retransmission is cheap
//              enough that the tail stays below the threshold: CTQO is
//              present yet invisible to modes-in-seconds analysis.
//   kAbsent  — no overflow events at all: the mechanism is gone.
enum class CtqoVisibility { kVisible, kHidden, kAbsent };
const char* to_string(CtqoVisibility v);

// Classifies one operating point. `overflow_events` counts admission
// overflows however the stack surfaced them — kernel drops plus
// SYN-cookie slow-path admits (TcpQueue::drops() + cookie_admits()).
// The default threshold sits below the 3 s RTO mode but above any
// sub-second inflation the modern schedules produce.
CtqoVisibility classify_ctqo(
    std::uint64_t overflow_events, sim::Duration p999,
    sim::Duration visible_threshold = sim::Duration::from_seconds(2.5));

}  // namespace ntier::net
