#include "net/transport.h"

#include <utility>

namespace ntier::net {

void Transport::send(AttemptFn attempt, ResultFn on_result,
                     RetransmitFn on_retransmit) {
  ++stats_.sent;
  MessagePtr p = message_pool().make();
  p->attempt = std::move(attempt);
  p->on_result = std::move(on_result);
  p->on_retransmit = std::move(on_retransmit);
  attempt_at(std::move(p), link_.sample());
}

void Transport::attempt_at(MessagePtr p, sim::Duration delay,
                           sim::SchedClass klass) {
  sim_.after(delay, [this, p] {
    ++p->attempts;
    // A degraded link may lose the packet in flight; the sender cannot
    // tell a loss from an admission refusal — both go unacked and
    // retransmit after the same RTO.
    const bool lost_in_network = link_.lose_packet();
    if (!lost_in_network && p->attempt()) {
      ++stats_.delivered;
      if (p->on_result) {
        p->on_result(TxOutcome{true, p->attempts, p->drops, p->retrans_delay});
      }
      return;
    }
    if (lost_in_network) {
      ++stats_.link_lost;
    } else {
      ++stats_.drops;
    }
    if (p->drops >= rto_.max_retries) {
      ++stats_.failed;
      ++stats_.retransmit_exhausted;
      if (p->on_result) {
        p->on_result(TxOutcome{false, p->attempts, p->drops + 1, p->retrans_delay});
      }
      return;
    }
    const sim::Duration rto = rto_.rto(p->drops);
    ++p->drops;
    ++stats_.retransmits;
    p->retrans_delay += rto;
    if (p->on_retransmit) p->on_retransmit(sim_.now(), rto, p->attempts);
    attempt_at(p, rto + link_.sample(), sim::SchedClass::kTimer);
  }, klass);
}

}  // namespace ntier::net
