#include "net/protocol.h"

namespace ntier::net {

const char* to_string(TransportKind k) {
  switch (k) {
    case TransportKind::kTcp: return "tcp";
    case TransportKind::kUdpAppTimeout: return "udp_apptimeout";
    case TransportKind::kErpc: return "erpc";
  }
  return "?";
}

const char* to_string(CtqoVisibility v) {
  switch (v) {
    case CtqoVisibility::kVisible: return "visible";
    case CtqoVisibility::kHidden: return "hidden";
    case CtqoVisibility::kAbsent: return "absent";
  }
  return "?";
}

ProtocolProfile ProtocolProfile::fixed3s() { return ProtocolProfile{}; }

ProtocolProfile ProtocolProfile::rhel6() {
  ProtocolProfile p;
  p.name = "rhel6";
  p.rto = RtoPolicy::rhel6();
  return p;
}

ProtocolProfile ProtocolProfile::linux_modern() {
  ProtocolProfile p;
  p.name = "linux_modern";
  p.rto = RtoPolicy::linux_modern();
  return p;
}

ProtocolProfile ProtocolProfile::syn_cookies() {
  ProtocolProfile p;
  p.name = "syn_cookies";
  p.rto = RtoPolicy::linux_modern();
  p.admission = AdmissionMode::kSynCookies;
  // Stateless slow path: SYN-ACK encode + ACK decode + TCP-option
  // reconstruction, charged to the accepting server's CPU per request.
  p.cookie_penalty = sim::Duration::millis(1);
  return p;
}

ProtocolProfile ProtocolProfile::udp_apptimeout() {
  ProtocolProfile p;
  p.name = "udp_apptimeout";
  p.transport = TransportKind::kUdpAppTimeout;
  // The stack never retransmits a datagram: max_retries = 0 makes the
  // first refused/lost attempt fail straight back to the application.
  // `initial` is never consulted as a timer; it is set to the app
  // timeout so config validation (client_timeout >= rto(0)) stays sane.
  p.rto.backoff = RtoPolicy::Backoff::kFixed;
  p.rto.initial = sim::Duration::millis(200);
  p.rto.max_retries = 0;
  p.app_timeout = sim::Duration::millis(200);
  p.app_attempts = 4;
  p.app_retry_budget = 0.1;
  return p;
}

ProtocolProfile ProtocolProfile::erpc() {
  ProtocolProfile p;
  p.name = "erpc";
  p.transport = TransportKind::kErpc;
  p.admission = AdmissionMode::kBypass;
  p.rto = RtoPolicy::erpc();
  return p;
}

std::optional<ProtocolProfile> ProtocolProfile::by_name(std::string_view name) {
  if (name == "fixed3s") return fixed3s();
  if (name == "rhel6") return rhel6();
  if (name == "linux_modern") return linux_modern();
  if (name == "syn_cookies") return syn_cookies();
  if (name == "udp_apptimeout") return udp_apptimeout();
  if (name == "erpc") return erpc();
  return std::nullopt;
}

std::vector<std::string> ProtocolProfile::names() {
  return {"fixed3s", "rhel6", "linux_modern", "syn_cookies", "udp_apptimeout", "erpc"};
}

CtqoVisibility classify_ctqo(std::uint64_t overflow_events, sim::Duration p999,
                             sim::Duration visible_threshold) {
  if (overflow_events == 0) return CtqoVisibility::kAbsent;
  return p999 >= visible_threshold ? CtqoVisibility::kVisible : CtqoVisibility::kHidden;
}

}  // namespace ntier::net
