// Network link latency model (LAN between tiers).
//
// A link can be placed into a degraded episode by the fault injector:
// while degraded it adds `extra_latency` to every traversal and loses
// each request packet with probability `loss_prob` (the sender's TCP
// stack then retransmits per its RtoPolicy, exactly as for an admission
// drop — lost-in-network and refused-at-the-door are indistinguishable
// to the sender).
#pragma once

#include "sim/random.h"
#include "sim/time.h"

namespace ntier::net {

// One inter-tier link: base latency, optional jitter, and the degraded
// state the fault injector toggles.
class Link {
 public:
  // Fixed one-way latency.
  explicit Link(sim::Duration latency = sim::Duration::micros(200))
      : latency_(latency) {}
  // Latency with uniform jitter in [latency, latency + jitter); rng must
  // outlive the link.
  Link(sim::Duration latency, sim::Duration jitter, sim::Rng& rng)
      : latency_(latency), jitter_(jitter), rng_(&rng) {}

  // One traversal's latency: base + degradation extra + jitter draw.
  sim::Duration sample() {
    sim::Duration d = latency_ + extra_latency_;
    if (rng_ != nullptr && jitter_ > sim::Duration::zero())
      d += sim::Duration::from_seconds(rng_->uniform() * jitter_.to_seconds());
    return d;
  }

  // The configured base latency (excludes jitter and degradation).
  sim::Duration base_latency() const { return latency_; }

  // --- fault-injection hooks (see fault::FaultInjector) ------------------
  // `rng` drives the loss draws and must outlive the degraded episode.
  void degrade(double loss_prob, sim::Duration extra_latency, sim::Rng* rng) {
    loss_prob_ = loss_prob;
    extra_latency_ = extra_latency;
    loss_rng_ = rng;
  }
  void restore() {
    loss_prob_ = 0.0;
    extra_latency_ = sim::Duration::zero();
    loss_rng_ = nullptr;
  }
  bool degraded() const { return loss_prob_ > 0.0 || extra_latency_ > sim::Duration::zero(); }
  // Draws whether the packet currently traversing the link is lost.
  bool lose_packet() {
    return loss_prob_ > 0.0 && loss_rng_ != nullptr && loss_rng_->chance(loss_prob_);
  }

 private:
  sim::Duration latency_;
  sim::Duration jitter_{};
  sim::Rng* rng_ = nullptr;
  double loss_prob_ = 0.0;
  sim::Duration extra_latency_{};
  sim::Rng* loss_rng_ = nullptr;
};

}  // namespace ntier::net
