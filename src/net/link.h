// Network link latency model (LAN between tiers).
#pragma once

#include "sim/random.h"
#include "sim/time.h"

namespace ntier::net {

class Link {
 public:
  // Fixed one-way latency.
  explicit Link(sim::Duration latency = sim::Duration::micros(200))
      : latency_(latency) {}
  // Latency with uniform jitter in [latency, latency + jitter); rng must
  // outlive the link.
  Link(sim::Duration latency, sim::Duration jitter, sim::Rng& rng)
      : latency_(latency), jitter_(jitter), rng_(&rng) {}

  sim::Duration sample() {
    if (!rng_ || jitter_ <= sim::Duration::zero()) return latency_;
    return latency_ + sim::Duration::from_seconds(rng_->uniform() * jitter_.to_seconds());
  }

  sim::Duration base_latency() const { return latency_; }

 private:
  sim::Duration latency_;
  sim::Duration jitter_{};
  sim::Rng* rng_ = nullptr;
};

}  // namespace ntier::net
