// Reliable delivery over an unreliable admission boundary.
//
// Transport::send models one logical message: after the link latency the
// receiver's admission function is attempted; a refusal is a dropped
// packet, and the transport re-attempts after RtoPolicy::rto(k) like the
// sender's TCP stack would. The accumulated retransmission delay is the
// entire VLRT mechanism of the paper — requests are never lost inside
// servers, only delayed by whole RTOs at admission.
#pragma once

#include "net/link.h"
#include "net/message.h"
#include "net/rto_policy.h"
#include "sim/simulation.h"

namespace ntier::net {

// Returns true when the receiver admits the message now.
using AttemptFn = TxAttemptFn;
// Invoked once per logical send, after final success or abandonment.
using ResultFn = TxResultFn;
// Trace observer at each refused/lost attempt that will be retried
// (see net/message.h for the contract).
using RetransmitFn = TxRetransmitObserver;

// One sender's reliable-delivery endpoint: a link plus the RTO loop.
class Transport {
 public:
  // Binds the transport to its simulation clock, timer schedule, and
  // link; all three persist for the transport's lifetime.
  Transport(sim::Simulation& sim, RtoPolicy rto, Link link)
      : sim_(sim), rto_(rto), link_(link) {}

  // Fire-and-track send. `attempt` is called after each link traversal;
  // `on_result` (optional) after delivery or failure; `on_retransmit`
  // (optional) at each drop that leads to a retransmission.
  void send(AttemptFn attempt, ResultFn on_result = {},
            RetransmitFn on_retransmit = {});

  // Lifetime counters, the active timer schedule, and the mutable link
  // (the fault injector degrades/restores it in place).
  const TxStats& stats() const { return stats_; }
  const RtoPolicy& rto_policy() const { return rto_; }
  Link& link() { return link_; }

 private:
  // Schedules the next delivery attempt. The first attempt rides the
  // sampled link latency (kAuto); RTO-driven retransmissions pass
  // kTimer — they are exactly the homogeneous 3 s/ladder timer mass the
  // timing wheel absorbs.
  void attempt_at(MessagePtr p, sim::Duration delay,
                  sim::SchedClass klass = sim::SchedClass::kAuto);

  sim::Simulation& sim_;
  RtoPolicy rto_;
  Link link_;
  TxStats stats_;
};

}  // namespace ntier::net
