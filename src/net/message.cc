#include "net/message.h"

// Header-only types; this TU anchors the library target.
namespace ntier::net {}
