// Per-layer publish points: each helper registers the layer's statistics
// as pull-probes on the unified registry (registry.h). Header-only so the
// registry core stays dependent on sim/ and metrics/ alone; the system
// builders (core/system.cc, core/chain.cc) include this and wire every
// layer at construction time.
//
// All probes are pure reads of state the layers already maintain —
// publishing draws no randomness and schedules no events (DESIGN.md
// invariant 10). Series names are documented in docs/TELEMETRY.md.
#pragma once

#include <string>

#include "net/tcp_queue.h"
#include "net/transport.h"
#include "policy/overload/overload.h"
#include "policy/tail_policy.h"
#include "server/server_base.h"
#include "sim/simulation.h"
#include "telemetry/registry.h"

namespace ntier::telemetry {

// sim: engine throughput and future-event-list pressure.
//   sim.events     — events executed per second (cumulative probe)
//   sim.heap_depth — future-event-list size at each window edge
inline void publish_simulation(Registry& r, sim::Simulation& sim) {
  r.add_probe("sim.events", Registry::ProbeKind::kCumulative,
              [&sim] { return static_cast<double>(sim.events_executed()); });
  r.add_probe("sim.heap_depth", Registry::ProbeKind::kGauge,
              [&sim] { return static_cast<double>(sim.pending_events()); });
}

// server: occupancy and headroom against the paper's queue bounds.
//   <srv>.busy_workers — threads (sync) / active slots (async) in service
//   <srv>.backlog      — TCP accept-queue / lite-queue ingress depth
//   <srv>.headroom     — MaxSysQDepth (or LiteQDepth) minus requests in
//                        system: distance to the drop point
inline void publish_server(Registry& r, server::Server& s) {
  const std::string p = s.name();
  r.add_probe(p + ".busy_workers", Registry::ProbeKind::kGauge,
              [&s] { return static_cast<double>(s.busy_workers()); });
  r.add_probe(p + ".backlog", Registry::ProbeKind::kGauge,
              [&s] { return static_cast<double>(s.backlog_depth()); });
  r.add_probe(p + ".headroom", Registry::ProbeKind::kGauge, [&s] {
    const double cap = static_cast<double>(s.max_sys_q_depth());
    const double in = static_cast<double>(s.queued_requests());
    return cap > in ? cap - in : 0.0;
  });
}

// net: the sender side of one hop (client->web or tier->tier).
//   <sender>.retransmits — RTO retransmission attempts issued per second
inline void publish_transport(Registry& r, const std::string& sender, net::Transport& t) {
  r.add_probe(sender + ".retransmits", Registry::ProbeKind::kCumulative,
              [&t] { return static_cast<double>(t.stats().retransmits); });
}

// net admission: the SYN-cookie slow path of one accept queue.
//   <srv>.cookie_admits — overflow admissions taken via the stateless
//                         cookie path per second (tcp_queue.h)
// Registered only for non-default admission modes, so a kTcpDrop run's
// registry snapshot (and thus its manifest) is unchanged.
inline void publish_accept_queue(Registry& r, const std::string& srv,
                                 const net::TcpQueue& q) {
  r.add_probe(srv + ".cookie_admits", Registry::ProbeKind::kCumulative,
              [&q] { return static_cast<double>(q.cookie_admits()); });
}

// policy: the tail-tolerance governor of one hop.
//   <sender>.retries       — policy-layer re-sends per second
//   <sender>.hedges        — duplicate copies per second
//   <sender>.breaker_state — 0 closed, 1 half-open, 2 open
inline void publish_governor(Registry& r, const std::string& sender,
                             const policy::HopGovernor& g) {
  r.add_probe(sender + ".retries", Registry::ProbeKind::kCumulative,
              [&g] { return static_cast<double>(g.stats().retries); });
  r.add_probe(sender + ".hedges", Registry::ProbeKind::kCumulative,
              [&g] { return static_cast<double>(g.stats().hedges); });
  r.add_probe(sender + ".breaker_state", Registry::ProbeKind::kGauge, [&g] {
    const auto* b = g.breaker();
    if (b == nullptr) return 0.0;
    switch (b->state()) {
      case policy::CircuitBreaker::State::kClosed: return 0.0;
      case policy::CircuitBreaker::State::kHalfOpen: return 1.0;
      case policy::CircuitBreaker::State::kOpen: return 2.0;
    }
    return 0.0;
  });
}

// overload: one tier's admission controller (policy/overload/overload.h).
//   <srv>.ov_admitted      — offers admitted per second
//   <srv>.ov_shed          — sheds per second (admission + dequeue)
//   <srv>.ov_degraded      — brownout degradations per second
//   <srv>.ov_sojourn_p99_ms — p99 queue sojourn of served requests (ms)
// Registered only when a controller exists, so an overload-free run's
// registry snapshot (and thus its manifest) is unchanged.
inline void publish_overload(Registry& r, const std::string& srv,
                             const policy::overload::AdmissionController& c) {
  r.add_probe(srv + ".ov_admitted", Registry::ProbeKind::kCumulative,
              [&c] { return static_cast<double>(c.stats().admitted); });
  r.add_probe(srv + ".ov_shed", Registry::ProbeKind::kCumulative,
              [&c] { return static_cast<double>(c.stats().total_shed()); });
  r.add_probe(srv + ".ov_degraded", Registry::ProbeKind::kCumulative,
              [&c] { return static_cast<double>(c.stats().degraded); });
  r.add_probe(srv + ".ov_sojourn_p99_ms", Registry::ProbeKind::kGauge,
              [&c] { return c.sojourn_quantile(0.99).to_millis(); });
}

}  // namespace ntier::telemetry
