// Unified telemetry registry: the one metric plane every layer
// publishes into.
//
// Before this registry existed the instruments were scattered — the
// Sampler kept its own timeline map, servers kept Stats structs,
// transports kept TxStats, governors kept PolicyStats — and every
// consumer (CTQO analyzer, exports, figure benches) stitched them
// together by hand. The registry gives them one namespace:
//
//   * counter(name)  — monotonic totals (drops, retransmits, events);
//   * gauge(name)    — instantaneous levels (heap depth, breaker state);
//   * quantile(name) — streaming GK latency summaries (metric.h);
//   * series(name)   — fixed-window metrics::Timeline (the 50 ms plane
//                      the paper's figures and the correlation engine
//                      consume; monitor::Sampler stores its lines here);
//   * add_probe(...) — pull-model publishing: a layer registers a
//                      closure over its own cumulative or instantaneous
//                      statistic, and sample() materializes one window
//                      per tick into the matching series.
//
// Non-perturbation guarantee (DESIGN.md invariant 10): the registry
// schedules no events and draws no randomness. Probes are pure reads;
// sample() runs inside the Sampler tick that exists in every run
// anyway. A run with every publish point live is event-identical — and
// therefore latency/drop bit-identical — to the same seed without them.
// docs/TELEMETRY.md documents the full schema and every publish point.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "metrics/timeline.h"
#include "sim/time.h"
#include "telemetry/metric.h"

namespace ntier::telemetry {

class Registry {
 public:
  explicit Registry(sim::Duration window = sim::Duration::millis(50));
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  sim::Duration window() const { return window_; }

  // --- create-or-get (references are stable for the registry's life) ---
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  GkQuantile& quantile(const std::string& name, double eps = 0.005);
  metrics::Timeline& series(const std::string& name);

  // --- probes -------------------------------------------------------------
  // kCumulative: fn() is a monotonically non-decreasing total; sample()
  //   writes the per-second rate over each window into series `name`.
  // kGauge: fn() is an instantaneous level; sample() writes it verbatim.
  enum class ProbeKind { kCumulative, kGauge };
  void add_probe(const std::string& name, ProbeKind kind, std::function<double()> fn);

  // Materializes one window for every probe (called by the Sampler tick;
  // `wstart` is the window's start stamp, `window_seconds` its width).
  void sample(sim::Time wstart, double window_seconds);

  // --- read access --------------------------------------------------------
  bool has_series(const std::string& name) const;
  const metrics::Timeline* find_series(const std::string& name) const;
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const GkQuantile* find_quantile(const std::string& name) const;
  std::vector<std::string> series_names() const;
  std::vector<std::string> counter_names() const;

  // Flat name->value view of every scalar (counters, gauges, and probe
  // totals), name-sorted — the manifest/dashboard "counter totals"
  // block. Probe totals appear under their probe name (cumulative reads
  // fn() now; gauge probes report the current level).
  std::vector<std::pair<std::string, double>> snapshot() const;

 private:
  struct Probe {
    std::string name;
    ProbeKind kind;
    std::function<double()> fn;
    double last = 0.0;
  };

  sim::Duration window_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, GkQuantile> quantiles_;
  std::map<std::string, metrics::Timeline> series_;
  std::vector<Probe> probes_;
};

}  // namespace ntier::telemetry
