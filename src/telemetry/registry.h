// Unified telemetry registry: the one metric plane every layer
// publishes into.
//
// Before this registry existed the instruments were scattered — the
// Sampler kept its own timeline map, servers kept Stats structs,
// transports kept TxStats, governors kept PolicyStats — and every
// consumer (CTQO analyzer, exports, figure benches) stitched them
// together by hand. The registry gives them one namespace:
//
//   * counter(name)  — monotonic totals (drops, retransmits, events);
//   * gauge(name)    — instantaneous levels (heap depth, breaker state);
//   * quantile(name) — streaming GK latency summaries (metric.h);
//   * series(name)   — fixed-window metrics::Timeline (the 50 ms plane
//                      the paper's figures and the correlation engine
//                      consume; monitor::Sampler stores its lines here);
//   * add_probe(...) — pull-model publishing: a layer registers a
//                      closure over its own cumulative or instantaneous
//                      statistic, and sample() materializes one window
//                      per tick into the matching series.
//
// Names are interned: intern_*() resolves a name to a stable index
// handle once, at wiring time, and every later update through the
// handle is plain array indexing — the periodic sample() tick touches
// no strings and no maps. The name maps survive only for wiring and
// export-time resolution (find_*, snapshot, *_names).
//
// Non-perturbation guarantee (DESIGN.md invariant 10): the registry
// schedules no events and draws no randomness. Probes are pure reads;
// sample() runs inside the Sampler tick that exists in every run
// anyway. A run with every publish point live is event-identical — and
// therefore latency/drop bit-identical — to the same seed without them.
// docs/TELEMETRY.md documents the full schema and every publish point.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "metrics/timeline.h"
#include "sim/time.h"
#include "telemetry/metric.h"

namespace ntier::telemetry {

// Sentinel index of a default-constructed (invalid) metric handle.
inline constexpr std::uint32_t kNoMetric = 0xffffffffu;

// Stable index of an interned Counter; resolves via Registry::at() with
// no string or map work. Trivially copyable, 4 bytes.
struct CounterHandle {
  std::uint32_t idx = kNoMetric;
  bool valid() const { return idx != kNoMetric; }
};

// Stable index of an interned Gauge (see CounterHandle).
struct GaugeHandle {
  std::uint32_t idx = kNoMetric;
  bool valid() const { return idx != kNoMetric; }
};

// Stable index of an interned Timeline series (see CounterHandle).
struct SeriesHandle {
  std::uint32_t idx = kNoMetric;
  bool valid() const { return idx != kNoMetric; }
};

class Registry {
 public:
  explicit Registry(sim::Duration window = sim::Duration::millis(50));
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  sim::Duration window() const { return window_; }

  // --- interning (create-or-get; handles stay valid for the registry's
  // life and index in O(1) with no string work) --------------------------
  CounterHandle intern_counter(std::string_view name);
  GaugeHandle intern_gauge(std::string_view name);
  SeriesHandle intern_series(std::string_view name);

  // --- handle resolution (hot path: plain array indexing) ---------------
  Counter& at(CounterHandle h) { return counter_store_[h.idx]; }
  Gauge& at(GaugeHandle h) { return gauge_store_[h.idx]; }
  metrics::Timeline& at(SeriesHandle h) { return series_store_[h.idx]; }
  const Counter& at(CounterHandle h) const { return counter_store_[h.idx]; }
  const Gauge& at(GaugeHandle h) const { return gauge_store_[h.idx]; }
  const metrics::Timeline& at(SeriesHandle h) const { return series_store_[h.idx]; }

  // --- create-or-get by name (references are stable for the registry's
  // life; prefer interning a handle outside one-shot wiring code) --------
  Counter& counter(std::string_view name) { return at(intern_counter(name)); }
  Gauge& gauge(std::string_view name) { return at(intern_gauge(name)); }
  GkQuantile& quantile(std::string_view name, double eps = 0.005);
  metrics::Timeline& series(std::string_view name) { return at(intern_series(name)); }

  // --- probes -------------------------------------------------------------
  // kCumulative: fn() is a monotonically non-decreasing total; sample()
  //   writes the per-second rate over each window into series `name`.
  // kGauge: fn() is an instantaneous level; sample() writes it verbatim.
  enum class ProbeKind { kCumulative, kGauge };
  void add_probe(std::string_view name, ProbeKind kind, std::function<double()> fn);

  // Materializes one window for every probe (called by the Sampler tick;
  // `wstart` is the window's start stamp, `window_seconds` its width).
  // Touches no strings and no maps: probes hold interned handles.
  void sample(sim::Time wstart, double window_seconds);

  // --- read access --------------------------------------------------------
  bool has_series(std::string_view name) const;
  const metrics::Timeline* find_series(std::string_view name) const;
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const GkQuantile* find_quantile(std::string_view name) const;
  // Name lists, sorted; cached between interns so repeated exports do
  // not rebuild them. Views point at registry-owned storage.
  const std::vector<std::string_view>& series_names() const;
  const std::vector<std::string_view>& counter_names() const;

  // Flat name->value view of every scalar (counters, gauges, and probe
  // totals), name-sorted — the manifest/dashboard "counter totals"
  // block. Probe totals appear under their probe name (cumulative reads
  // fn() now; gauge probes report the current level). Duplicate names
  // resolve gauge-over-counter, probe-over-both (last write wins).
  std::vector<std::pair<std::string, double>> snapshot() const;

 private:
  struct Probe {
    SeriesHandle series;
    ProbeKind kind;
    std::function<double()> fn;
    double last = 0.0;
  };
  // Name -> store index, heterogeneous lookup (string_view probes the
  // map without materializing a std::string).
  using NameIndex = std::map<std::string, std::uint32_t, std::less<>>;

  // The series name an interned handle was registered under (map keys
  // are node-stable, so the view outlives any rehash/regrow).
  std::string_view series_name(SeriesHandle h) const { return series_keys_[h.idx]; }

  sim::Duration window_;
  // Metric stores are deques: push_back never moves existing elements,
  // so counter()/series() references and handle indices stay valid.
  std::deque<Counter> counter_store_;
  std::deque<Gauge> gauge_store_;
  std::deque<metrics::Timeline> series_store_;
  NameIndex counter_ix_;
  NameIndex gauge_ix_;
  NameIndex series_ix_;
  std::vector<std::string_view> series_keys_;  // store index -> name
  std::map<std::string, GkQuantile, std::less<>> quantiles_;
  std::vector<Probe> probes_;
  // Sorted-name caches, invalidated on intern (cold: exports only).
  mutable std::vector<std::string_view> series_names_cache_;
  mutable std::vector<std::string_view> counter_names_cache_;
  mutable bool series_names_dirty_ = true;
  mutable bool counter_names_dirty_ = true;
};

}  // namespace ntier::telemetry
