// Metric primitives for the unified telemetry registry.
//
// Three shapes cover every publish point in the system:
//  * Counter — monotonic event count (drops, retransmits, events executed).
//  * Gauge — instantaneous level (heap depth, pool occupancy, breaker state).
//  * GkQuantile — a Greenwald–Khanna streaming quantile summary with a
//    provable rank guarantee: after n observations, quantile(q) returns a
//    value whose rank in the sorted sample lies within eps*n of q*n, using
//    O((1/eps)*log(eps*n)) space instead of the raw sample. Unlike P²,
//    the bound is distribution-free, which matters here: latency samples
//    are multi-modal (peaks at 0/3/6/9 s), exactly the shape that defeats
//    curve-fitting estimators. tests/test_telemetry.cc validates the
//    bound against the exact metrics::LinearHistogram percentiles.
//
// Everything is plain memory arithmetic: recording draws no randomness
// and schedules no simulation events, so an instrumented run is
// event-identical to an uninstrumented one (DESIGN.md invariant 10).
#pragma once

#include <cstdint>
#include <vector>

namespace ntier::telemetry {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Greenwald–Khanna epsilon-approximate quantile summary (SIGMOD'01).
// Mergeable: merge(a, b) holds eps_a + eps_b; repeated self-merges
// therefore degrade the bound, which merged_eps() tracks.
class GkQuantile {
 public:
  explicit GkQuantile(double eps = 0.005);

  void record(double x);

  // Any q in [0, 1]. Returns a sample value whose rank is within
  // merged_eps()*count() of q*count(); 0 when empty.
  double quantile(double q) const;

  std::uint64_t count() const { return count_; }
  double eps() const { return eps_; }
  // Effective error bound after merges (eps sums across merged inputs).
  double merged_eps() const { return merged_eps_; }
  std::size_t tuple_count() const { return tuples_.size(); }

  // Absorbs another summary; the result answers queries over the union
  // within merged_eps() = this->merged_eps() + other.merged_eps().
  void merge(const GkQuantile& other);

 private:
  // One GK tuple: value v covering g ranks, with rank uncertainty delta.
  // min-rank(i) = sum of g up to i; max-rank(i) = min-rank(i) + delta_i.
  struct Tuple {
    double v;
    std::uint64_t g;
    std::uint64_t delta;
  };

  void compress();

  double eps_;
  double merged_eps_;
  std::uint64_t count_ = 0;
  std::uint64_t since_compress_ = 0;
  std::vector<Tuple> tuples_;  // sorted by v
};

}  // namespace ntier::telemetry
