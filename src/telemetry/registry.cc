#include "telemetry/registry.h"

namespace ntier::telemetry {

Registry::Registry(sim::Duration window) : window_(window) {}

Counter& Registry::counter(const std::string& name) { return counters_[name]; }

Gauge& Registry::gauge(const std::string& name) { return gauges_[name]; }

GkQuantile& Registry::quantile(const std::string& name, double eps) {
  auto it = quantiles_.find(name);
  if (it == quantiles_.end()) it = quantiles_.emplace(name, GkQuantile(eps)).first;
  return it->second;
}

metrics::Timeline& Registry::series(const std::string& name) {
  auto it = series_.find(name);
  if (it == series_.end()) it = series_.emplace(name, metrics::Timeline(name, window_)).first;
  return it->second;
}

void Registry::add_probe(const std::string& name, ProbeKind kind,
                         std::function<double()> fn) {
  series(name);  // the series exists even before the first sample
  double initial = kind == ProbeKind::kCumulative ? fn() : 0.0;
  probes_.push_back(Probe{name, kind, std::move(fn), initial});
}

void Registry::sample(sim::Time wstart, double window_seconds) {
  for (auto& p : probes_) {
    const double cur = p.fn();
    if (p.kind == ProbeKind::kCumulative) {
      series(p.name).set(wstart, (cur - p.last) / window_seconds);
      p.last = cur;
    } else {
      series(p.name).set(wstart, cur);
    }
  }
}

bool Registry::has_series(const std::string& name) const { return series_.count(name) > 0; }

const metrics::Timeline* Registry::find_series(const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

const Counter* Registry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const GkQuantile* Registry::find_quantile(const std::string& name) const {
  auto it = quantiles_.find(name);
  return it == quantiles_.end() ? nullptr : &it->second;
}

std::vector<std::string> Registry::series_names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [k, v] : series_) out.push_back(k);
  return out;
}

std::vector<std::string> Registry::counter_names() const {
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [k, v] : counters_) out.push_back(k);
  return out;
}

std::vector<std::pair<std::string, double>> Registry::snapshot() const {
  std::map<std::string, double> flat;
  for (const auto& [k, c] : counters_) flat[k] = static_cast<double>(c.value());
  for (const auto& [k, g] : gauges_) flat[k] = g.value();
  for (const auto& p : probes_) flat[p.name + (p.kind == ProbeKind::kCumulative ? ".total" : "")] = p.fn();
  return {flat.begin(), flat.end()};
}

}  // namespace ntier::telemetry
