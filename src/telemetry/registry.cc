#include "telemetry/registry.h"

#include <algorithm>

namespace ntier::telemetry {

Registry::Registry(sim::Duration window) : window_(window) {}

CounterHandle Registry::intern_counter(std::string_view name) {
  auto it = counter_ix_.find(name);
  if (it == counter_ix_.end()) {
    const auto idx = static_cast<std::uint32_t>(counter_store_.size());
    counter_store_.emplace_back();
    it = counter_ix_.emplace(std::string(name), idx).first;
    counter_names_dirty_ = true;
  }
  return CounterHandle{it->second};
}

GaugeHandle Registry::intern_gauge(std::string_view name) {
  auto it = gauge_ix_.find(name);
  if (it == gauge_ix_.end()) {
    const auto idx = static_cast<std::uint32_t>(gauge_store_.size());
    gauge_store_.emplace_back();
    it = gauge_ix_.emplace(std::string(name), idx).first;
  }
  return GaugeHandle{it->second};
}

SeriesHandle Registry::intern_series(std::string_view name) {
  auto it = series_ix_.find(name);
  if (it == series_ix_.end()) {
    const auto idx = static_cast<std::uint32_t>(series_store_.size());
    series_store_.emplace_back(std::string(name), window_);
    it = series_ix_.emplace(std::string(name), idx).first;
    series_keys_.push_back(it->first);  // map keys are node-stable
    series_names_dirty_ = true;
  }
  return SeriesHandle{it->second};
}

GkQuantile& Registry::quantile(std::string_view name, double eps) {
  auto it = quantiles_.find(name);
  if (it == quantiles_.end())
    it = quantiles_.emplace(std::string(name), GkQuantile(eps)).first;
  return it->second;
}

void Registry::add_probe(std::string_view name, ProbeKind kind,
                         std::function<double()> fn) {
  // The series exists even before the first sample; the probe keeps the
  // interned handle so every tick is an array index, not a map lookup.
  const SeriesHandle h = intern_series(name);
  double initial = kind == ProbeKind::kCumulative ? fn() : 0.0;
  probes_.push_back(Probe{h, kind, std::move(fn), initial});
}

void Registry::sample(sim::Time wstart, double window_seconds) {
  for (auto& p : probes_) {
    const double cur = p.fn();
    if (p.kind == ProbeKind::kCumulative) {
      at(p.series).set(wstart, (cur - p.last) / window_seconds);
      p.last = cur;
    } else {
      at(p.series).set(wstart, cur);
    }
  }
}

bool Registry::has_series(std::string_view name) const {
  return series_ix_.count(name) > 0;
}

const metrics::Timeline* Registry::find_series(std::string_view name) const {
  auto it = series_ix_.find(name);
  return it == series_ix_.end() ? nullptr : &series_store_[it->second];
}

const Counter* Registry::find_counter(std::string_view name) const {
  auto it = counter_ix_.find(name);
  return it == counter_ix_.end() ? nullptr : &counter_store_[it->second];
}

const Gauge* Registry::find_gauge(std::string_view name) const {
  auto it = gauge_ix_.find(name);
  return it == gauge_ix_.end() ? nullptr : &gauge_store_[it->second];
}

const GkQuantile* Registry::find_quantile(std::string_view name) const {
  auto it = quantiles_.find(name);
  return it == quantiles_.end() ? nullptr : &it->second;
}

const std::vector<std::string_view>& Registry::series_names() const {
  if (series_names_dirty_) {
    series_names_cache_.clear();
    series_names_cache_.reserve(series_ix_.size());
    for (const auto& [k, v] : series_ix_) series_names_cache_.push_back(k);
    series_names_dirty_ = false;
  }
  return series_names_cache_;
}

const std::vector<std::string_view>& Registry::counter_names() const {
  if (counter_names_dirty_) {
    counter_names_cache_.clear();
    counter_names_cache_.reserve(counter_ix_.size());
    for (const auto& [k, v] : counter_ix_) counter_names_cache_.push_back(k);
    counter_names_dirty_ = false;
  }
  return counter_names_cache_;
}

std::vector<std::pair<std::string, double>> Registry::snapshot() const {
  // Insertion order counters -> gauges -> probes; a stable sort plus a
  // keep-last dedupe reproduces the old map's overwrite semantics.
  std::vector<std::pair<std::string, double>> flat;
  flat.reserve(counter_ix_.size() + gauge_ix_.size() + probes_.size());
  for (const auto& [k, idx] : counter_ix_)
    flat.emplace_back(k, static_cast<double>(counter_store_[idx].value()));
  for (const auto& [k, idx] : gauge_ix_)
    flat.emplace_back(k, gauge_store_[idx].value());
  for (const auto& p : probes_) {
    std::string name(series_name(p.series));
    if (p.kind == ProbeKind::kCumulative) name += ".total";
    flat.emplace_back(std::move(name), p.fn());
  }
  std::stable_sort(flat.begin(), flat.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<std::string, double>> out;
  out.reserve(flat.size());
  for (auto& kv : flat) {
    if (!out.empty() && out.back().first == kv.first)
      out.back().second = kv.second;  // later publisher wins
    else
      out.push_back(std::move(kv));
  }
  return out;
}

}  // namespace ntier::telemetry
