#include "telemetry/metric.h"

#include <algorithm>
#include <cmath>

namespace ntier::telemetry {

GkQuantile::GkQuantile(double eps) : eps_(eps), merged_eps_(eps) {
  if (eps_ <= 0.0 || eps_ >= 1.0) {
    eps_ = 0.005;
    merged_eps_ = eps_;
  }
}

void GkQuantile::record(double x) {
  // Insert a new tuple (x, 1, delta) keeping tuples_ sorted by value.
  auto it = std::upper_bound(tuples_.begin(), tuples_.end(), x,
                             [](double a, const Tuple& t) { return a < t.v; });
  std::uint64_t delta = 0;
  if (it != tuples_.begin() && it != tuples_.end()) {
    // Interior insert: inherit the local uncertainty bound floor(2*eps*n).
    const double band = 2.0 * eps_ * static_cast<double>(count_);
    delta = band > 1.0 ? static_cast<std::uint64_t>(band) - 1 : 0;
  }
  tuples_.insert(it, Tuple{x, 1, delta});
  ++count_;
  if (++since_compress_ >= static_cast<std::uint64_t>(1.0 / (2.0 * eps_)) + 1) {
    compress();
    since_compress_ = 0;
  }
}

void GkQuantile::compress() {
  if (tuples_.size() < 3) return;
  const double band = 2.0 * eps_ * static_cast<double>(count_);
  const std::uint64_t cap = band > 0.0 ? static_cast<std::uint64_t>(band) : 0;
  // Merge tuple i into its right neighbor when the combined coverage
  // stays within the uncertainty budget. Never touch the extremes: they
  // pin the min/max exactly.
  std::vector<Tuple> out;
  out.reserve(tuples_.size());
  out.push_back(tuples_.front());
  for (std::size_t i = 1; i + 1 < tuples_.size(); ++i) {
    const Tuple& t = tuples_[i];
    const Tuple& next = tuples_[i + 1];
    if (t.g + next.g + next.delta <= cap) {
      // Fold t into next by carrying its coverage forward.
      tuples_[i + 1].g += t.g;
    } else {
      out.push_back(t);
    }
  }
  out.push_back(tuples_.back());
  tuples_ = std::move(out);
}

double GkQuantile::quantile(double q) const {
  if (tuples_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Canonical GK query: answer with the predecessor of the first tuple
  // whose max-rank overshoots the target by more than the slack.
  const double target = q * static_cast<double>(count_);
  const double slack = std::max(1.0, merged_eps_ * static_cast<double>(count_));
  std::uint64_t min_rank = 0;
  for (std::size_t i = 0; i < tuples_.size(); ++i) {
    min_rank += tuples_[i].g;
    if (static_cast<double>(min_rank + tuples_[i].delta) > target + slack)
      return i == 0 ? tuples_.front().v : tuples_[i - 1].v;
  }
  return tuples_.back().v;
}

void GkQuantile::merge(const GkQuantile& other) {
  if (other.tuples_.empty()) return;
  if (tuples_.empty()) {
    *this = other;
    return;
  }
  // Merge-sort the tuple lists; g and delta carry over unchanged (the
  // classic mergeable-summary construction: rank intervals add).
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + other.tuples_.size());
  std::merge(tuples_.begin(), tuples_.end(), other.tuples_.begin(), other.tuples_.end(),
             std::back_inserter(merged),
             [](const Tuple& a, const Tuple& b) { return a.v < b.v; });
  tuples_ = std::move(merged);
  count_ += other.count_;
  merged_eps_ += other.merged_eps_;
  compress();
}

}  // namespace ntier::telemetry
