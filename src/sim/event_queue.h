// Cancellable future-event list for the discrete-event engine.
//
// A *hierarchical timing wheel* front-end absorbs the homogeneous timer
// mass (think times, RTO ladders, 50 ms sampler ticks, TLP probes):
// four levels of 256 slots at 1 µs base resolution cover ~71.6 minutes
// of simulated future, so insert and cancel are O(1) — a free-slot pop
// plus an intrusive doubly-linked-list splice, no sifting. Events
// beyond the wheel horizon (or scheduled at/before the wheel's current
// tick) fall back to the pre-existing *indexed 4-ary min-heap*, which
// keeps O(log n) insert/erase for far or irregular events. Execution is
// *batched per tick*: all events due at one `(when)` instant — wheel
// slot plus any same-instant heap events — are gathered into a scratch
// batch, sorted by sequence number, and drained in a single pass,
// amortizing dispatch and keeping the hot arrays in cache
// (docs/PERFORMANCE.md has the hierarchy parameters and the measured
// before/after table; bench/micro_engine.cc has the wheel-vs-heap
// cases).
//
// Slot storage is struct-of-arrays: the 24-byte POD heap entries, the
// 40-byte bookkeeping records (`Meta`: seq/when/generation/position/
// wheel links), and the 64-byte inline callbacks live in three parallel
// arrays, so heap sifts, wheel splices, and cancels never touch
// callback bytes — only execution does. Handles are plain
// {queue, slot, generation} triples; schedule/cancel touch no allocator
// at all (tests/test_hotpath.cc proves insert/cancel/cascade are
// allocation-free on a warmed queue).
//
// Callbacks are sim::InlineFn (src/sim/inline_fn.h): captures live
// inline in the slot, never on the heap, and oversized captures fail to
// compile.
//
// Determinism: live events pop in strict (when, seq) order — a total
// order. Within a tick the gathered batch is sorted by seq (wheel slots
// are unordered: a cascaded far event may carry a smaller seq than a
// directly-pushed near one), and events pushed *at the draining tick*
// append to the live batch with monotonically larger seqs, so the pop
// sequence is identical to the heap-only and priority-queue
// implementations for any program that never observes dead entries
// (tests/test_wheel.cc checks this against a priority-queue oracle over
// randomized push/cancel/advance schedules).
//
// Contract: pushing an event earlier than the tick a *batched* driver
// (run_tick / run_next_tick) is currently draining is not supported
// (the Simulation facade asserts `when >= now()`, which is strictly
// stronger). Outside a batched drain the raw queue API is fully
// general: pushes at or before the wheel's current tick route to the
// heap, and pop_and_run single-steps the exact global minimum, so even
// pushes into the already-executed past fire in (when, seq) order (the
// priority-queue-oracle property tests exercise exactly this).
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/inline_fn.h"
#include "sim/time.h"

namespace ntier::sim {

// An event's callback. Must be invocable exactly once. Captures beyond
// kInlineFnCapacity bytes are a compile error — pool bigger state and
// capture a PoolRef instead (see docs/PERFORMANCE.md).
using EventFn = InlineFn<void()>;

// Scheduling-class hint for Simulation::at/after call sites. Purely an
// audited annotation: classification into wheel levels is automatic
// (and identical for every hint), but the hint documents the intended
// class at the call site.
//   kAuto      — unclassified / irregular delay (link samples, service
//                completions).
//   kTimer     — homogeneous timer mass: think times, RTO/TLP ladders,
//                sampler ticks, deadline/hedge/backoff/fault timers.
//                Expected to land in a wheel level; a stochastic draw
//                may legally round to zero delay, so the class is not
//                delay-checked.
//   kImmediate — zero-delay dispatch (checked in debug builds):
//                appends to the currently draining tick's batch (O(1),
//                no classification).
enum class SchedClass : std::uint8_t { kAuto = 0, kTimer, kImmediate };

class EventQueue;

// Handle to a scheduled event: a POD {queue, slot, generation} triple
// (no shared state, no allocation). Safe to cancel after the event has
// fired or been cancelled (generation mismatch makes it a no-op), but —
// unlike the pre-PR-5 handle — must not be used after the owning
// EventQueue is destroyed. Every in-tree holder (HostCpu, IoDevice,
// Sampler, timers) is torn down before its Simulation, so this contract
// change is invisible to the models.
class EventHandle {
 public:
  // Default-constructed handles are empty: pending() is false, cancel()
  // is a no-op. Real handles come from EventQueue::push.
  EventHandle() = default;
  // True if the event has neither fired nor been cancelled.
  bool pending() const;
  // Prevents a pending event from firing: O(1) for wheel-resident and
  // batched events, O(log n) indexed erase for heap-resident ones.
  // Idempotent; a no-op after the event fires.
  void cancel();

 private:
  friend class EventQueue;
  EventHandle(EventQueue* q, std::uint32_t slot, std::uint32_t gen)
      : owner_(q), slot_(slot), gen_(gen) {}
  EventQueue* owner_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

// The future-event list: timing-wheel front-end, 4-ary-heap overflow,
// per-tick batch execution. Single-threaded; all complexity bounds are
// in the number of *live* (pending) events — cancelled entries are
// unlinked (wheel), erased (heap), or generation-skipped (batch) and
// never accumulate. The slot table, heap, and batch arrays grow
// amortized to the high-water mark and are then reused forever, so a
// warmed-up queue performs no allocations.
class EventQueue {
 public:
  // Non-copyable (handles and entries index into this queue's slot
  // table by address/index).
  EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Enqueues fn to run at `when`: O(1) for events within the wheel
  // horizon (~71.6 min), O(log n) heap insert beyond it. Events at
  // equal times fire in scheduling order. Takes the callback by rvalue
  // so it moves exactly once, straight into its slot.
  EventHandle push(Time when, EventFn&& fn);

  // Exact time of the earliest live event; Time::max() when empty.
  // Correct across the batch/wheel/heap split — an event resident in a
  // coarse wheel slot surfaces its exact time before any cascade.
  // Amortized O(1): the wheel's minimum is cached and recomputed (a
  // 4×4-word bitmap scan plus at most one slot-list walk) only after a
  // gather, cascade, or minimum-removing cancel.
  Time next_time() const;

  // Pops and runs the earliest live event — the exact (when, seq)
  // global minimum. Returns false if none exists. Single-stepping
  // variant of run_tick for tests and microbenches; never gathers a
  // batch, so pushes at or before already-executed ticks (legal
  // through the raw queue API) interleave in correct order.
  bool pop_and_run();

  // Gathers and runs *all* events due at the earliest instant. Events
  // the batch pushes at the same instant join the pass (in seq order);
  // returns the number of events executed (0 when the queue is empty).
  std::size_t run_tick();

  // Fused per-tick driver for Simulation::run_until: computes the
  // earliest tick once, runs nothing if it lies past `deadline`,
  // otherwise advances `now` to it and drains the whole tick,
  // returning the count executed. Singleton ticks — one wheel event
  // due and no same-instant heap event, the overwhelmingly common case
  // in closed-loop workloads — skip batch formation and the seq sort
  // entirely and run the lone callback straight out of its level-0
  // slot.
  std::size_t run_next_tick(Time deadline, Time& now);

  // True when no live events remain. O(1).
  bool empty() const { return live_ == 0; }
  // Exact number of live (pending, uncancelled) events, wherever they
  // reside (batch, wheel slots, or heap). O(1).
  std::size_t size() const { return live_; }

 private:
  friend class EventHandle;
  static constexpr std::uint32_t kNil = 0xffffffffu;
  // Sentinel for "no event" in µs comparisons; equals Time::max().
  static constexpr std::int64_t kNoEvent =
      std::numeric_limits<std::int64_t>::max();

  // Wheel geometry: kLevels levels of kSlots slots; level l spans
  // 2^(kSlotBits*(l+1)) µs at 2^(kSlotBits*l) µs per slot. With 8-bit
  // levels the finest slot is exactly one 1 µs tick — a level-0 slot
  // holds events of a single instant — and the horizon is 2^32 µs.
  static constexpr int kSlotBits = 8;
  static constexpr int kLevels = 4;
  static constexpr std::uint32_t kSlots = 1u << kSlotBits;
  static constexpr std::uint32_t kSlotMask = kSlots - 1;

  // Where a live slot currently resides (drives the cancel path).
  enum Where : std::uint8_t { kLocFree = 0, kLocHeap, kLocWheel, kLocBatch };

  // 24-byte POD heap entry: sifts are plain assignments, no callback
  // moves. `slot` indexes the SoA slot arrays.
  struct Entry {
    Time when;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  // Per-slot bookkeeping (SoA twin of fns_). `gen` increments when the
  // event fires or is cancelled, invalidating outstanding handles;
  // `pos` is the heap index (kLocHeap) or packed level<<kSlotBits|slot
  // (kLocWheel); `prev`/`next` thread the intrusive wheel list, with
  // `next` doubling as the free-list link.
  struct Meta {
    std::uint64_t seq = 0;
    Time when;
    std::uint32_t gen = 0;
    std::uint32_t pos = 0;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::uint8_t where = kLocFree;
  };

  // One gathered event awaiting execution this tick; `gen` makes
  // entries self-invalidating under cancel (lazy skip, no compaction).
  struct BatchEntry {
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  // True when a must fire strictly before b: the (when, seq) total order.
  static bool before(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  // Digit of absolute time t at wheel level l (its slot index there).
  static std::uint32_t digit(std::int64_t t, int l) {
    return static_cast<std::uint32_t>(t >> (kSlotBits * l)) & kSlotMask;
  }

  // Slot allocation (free-list pop or table growth) and retirement
  // (generation bump + free-list push, retiring outstanding handles).
  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);

  // Routes a live slot to its residence: wheel level by highest
  // differing bit vs. the current tick, heap when past/at the current
  // tick or beyond the horizon.
  void place(std::uint32_t slot, Time when);

  // Wheel list maintenance: O(1) splice in/out plus occupancy-bitmap
  // upkeep.
  void wheel_link(std::uint32_t slot, int level, std::uint32_t idx);
  void wheel_unlink(std::uint32_t slot);

  // Redistributes one coarse slot's events one step toward their exact
  // tick (called while entering the slot's window; members due exactly
  // at the new current tick land in its level-0 slot).
  void cascade(int level, std::uint32_t idx);
  // Advances the wheel's current tick to t, cascading every newly
  // entered slot level by level.
  void advance_to(std::int64_t t);

  // Exact earliest event time in the wheel (kNoEvent when none):
  // bitmap scan per level, min-`when` walk of the first occupied
  // coarse slot. Read-only — used by the const next_time() path.
  std::int64_t wheel_next_scan() const;
  // Cached wheel_next_scan; recomputed only when marked dirty.
  std::int64_t wheel_next() const;
  // Mutating twin for the hot tick driver: instead of walking a coarse
  // slot's (unordered) list for its minimum, cascades the first
  // occupied slot at its window start — always at or before its
  // earliest event, so cur_ never passes a wheel resident — until the
  // wheel's front event sits in level 0, where the occupancy bitmap
  // alone yields the exact time. Amortized O(1): each event cascades
  // at most kLevels-1 times over its lifetime either way.
  std::int64_t wheel_settle_next();

  // Gathers everything due at the earliest instant (wheel slot + heap
  // prefix) into the seq-sorted batch. False when the queue is empty.
  bool form_batch();
  // form_batch's gathering half, for callers that already computed the
  // tick time `t` and the heap/wheel minima (kNoEvent when absent).
  void gather_batch(std::int64_t t, std::int64_t th, std::int64_t tw);
  // Executes batch_[batch_pos_] if live; advances the cursor either way.
  // Returns true when an event actually ran.
  bool run_batch_entry();

  // Heap maintenance; every move keeps Meta::pos in sync.
  void heap_place(const Entry& e, std::size_t i);
  void sift_up(Entry e, std::size_t i);
  void sift_down(Entry e, std::size_t i);
  // Invalidates the slot and removes the entry at heap index `pos`.
  void heap_erase(std::size_t pos);
  // Moves the heap root into the batch (no execution, no callback move).
  void heap_pop_root_to_batch();

  std::vector<Entry> heap_;   // 4-ary: children of i are 4i+1 .. 4i+4
  std::vector<Meta> meta_;    // SoA bookkeeping, parallel to fns_
  std::vector<EventFn> fns_;  // SoA callbacks, parallel to meta_
  std::uint32_t free_head_ = kNil;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;

  // Wheel state: intrusive list heads, occupancy bitmaps, resident
  // count, the current tick (the instant the queue last drained or
  // advanced to), and the cached earliest-wheel-event time.
  std::uint32_t wheel_head_[kLevels][kSlots];
  std::uint64_t wheel_bits_[kLevels][kSlots / 64];
  std::size_t wheel_count_ = 0;
  std::int64_t cur_ = 0;
  mutable std::int64_t wheel_next_cache_ = kNoEvent;
  mutable bool wheel_dirty_ = false;

  // The tick batch: entries due at batch_time_, sorted by seq;
  // batch_pos_ is the drain cursor, batch_live_ the count of
  // still-pending (unexecuted, uncancelled) entries — the batch is
  // active while batch_live_ > 0, and same-instant pushes append to it.
  std::vector<BatchEntry> batch_;
  std::size_t batch_pos_ = 0;
  std::size_t batch_live_ = 0;
  Time batch_time_;
};

// Liveness = the queue still exists and the slot generation matches
// (firing or cancelling bumps it, retiring every outstanding handle).
inline bool EventHandle::pending() const {
  return owner_ != nullptr && owner_->meta_[slot_].gen == gen_;
}

}  // namespace ntier::sim
