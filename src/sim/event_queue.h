// Cancellable future-event list for the discrete-event engine.
//
// An *indexed 4-ary min-heap* keyed by (time, sequence) gives
// deterministic FIFO order among events scheduled for the same instant.
// Every queue slot back-references its EventHandle's shared state, so
// cancellation erases the entry in O(log n) instead of leaving a dead
// tombstone behind (the previous lazily-cancelled std::priority_queue
// accumulated cancelled entries until pop skipped them — a real cost for
// the processor-sharing core, which reschedules its next-completion
// event on every job arrival/departure). 4-ary rather than binary
// because sift-down does 3/4 fewer levels at ~the same compares per
// level, and the hot pop path is sift-down dominated;
// bench/micro_engine.cc measures both against the lazy-cancel baseline.
//
// Determinism: live events pop in strict (when, seq) order — a total
// order — so the pop sequence is identical to the previous binary-heap
// implementation for any program that never observes dead entries.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/time.h"

namespace ntier::sim {

// An event's callback. Must be invocable exactly once.
using EventFn = std::function<void()>;

class EventQueue;

// Handle that outlives the queue entry; safe to cancel after firing, and
// safe to use after the owning EventQueue has been destroyed (no-ops).
class EventHandle {
 public:
  // Default-constructed handles are empty: pending() is false, cancel()
  // is a no-op. Real handles come from EventQueue::push.
  EventHandle() = default;
  // True if the event has neither fired nor been cancelled.
  bool pending() const { return state_ && state_->owner != nullptr; }
  // Prevents a pending event from firing, erasing its queue entry in
  // O(log n). Idempotent; a no-op after the event fires.
  void cancel();

 private:
  friend class EventQueue;
  // Shared between the handle and the queue slot. `owner` is null once
  // the event has fired, been cancelled, or its queue was destroyed;
  // while non-null, `pos` is the entry's current heap index.
  struct State {
    EventQueue* owner = nullptr;
    std::size_t pos = 0;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

// The future-event list. Single-threaded; all complexity bounds are in
// the number of *live* (pending) events — cancelled entries are removed
// eagerly and never occupy heap slots.
class EventQueue {
 public:
  // Non-copyable (queue slots back-reference handle state by address);
  // destruction detaches every outstanding handle, so handles may
  // outlive the queue.
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  ~EventQueue();

  // Enqueues fn to run at `when` in O(log n). Events at equal times fire
  // in scheduling order.
  EventHandle push(Time when, EventFn fn);

  // Time of the earliest live event; Time::max() when empty. O(1).
  Time next_time() const;

  // Pops and runs the earliest live event. Returns false if none exists.
  bool pop_and_run();

  // True when no live events remain. O(1).
  bool empty() const { return heap_.empty(); }
  // Exact number of live (pending, uncancelled) events. O(1).
  std::size_t size() const { return heap_.size(); }

 private:
  friend class EventHandle;
  struct Entry {
    Time when;
    std::uint64_t seq;
    EventFn fn;
    std::shared_ptr<EventHandle::State> state;
  };

  // True when a must fire strictly before b: the (when, seq) total order.
  static bool before(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  // Heap maintenance; every move keeps state->pos in sync.
  void place(Entry&& e, std::size_t i);
  void sift_up(Entry&& e, std::size_t i);
  void sift_down(Entry&& e, std::size_t i);
  // Detaches the handle and removes the entry at heap index `pos`.
  void erase(std::size_t pos);

  std::vector<Entry> heap_;  // 4-ary: children of i are 4i+1 .. 4i+4
  std::uint64_t next_seq_ = 0;
};

}  // namespace ntier::sim
