// Cancellable future-event list for the discrete-event engine.
//
// A binary heap keyed by (time, sequence) gives deterministic FIFO order
// among events scheduled for the same instant. Cancellation is lazy: a
// cancelled entry stays in the heap and is skipped on pop, which keeps
// cancel() O(1) — important for the processor-sharing core, which
// reschedules its next-completion event on every job arrival/departure.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace ntier::sim {

using EventFn = std::function<void()>;

// Handle that outlives the queue entry; safe to cancel after firing (no-op).
class EventHandle {
 public:
  EventHandle() = default;
  // True if the event has neither fired nor been cancelled.
  bool pending() const { return state_ && !*state_; }
  // Prevents a pending event from firing. Idempotent.
  void cancel() { if (state_) *state_ = true; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> s) : state_(std::move(s)) {}
  std::shared_ptr<bool> state_;  // true = cancelled-or-fired
};

class EventQueue {
 public:
  // Enqueues fn to run at `when`. Events at equal times fire in
  // scheduling order.
  EventHandle push(Time when, EventFn fn);

  // Time of the earliest live event; Time::max() when empty.
  Time next_time();

  // Pops and runs the earliest live event. Returns false if none exists.
  bool pop_and_run();

  bool empty() { return next_time() == Time::max(); }
  std::size_t size_upper_bound() const { return heap_.size(); }

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    EventFn fn;
    std::shared_ptr<bool> done;  // shared with the handle
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  void drop_dead();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ntier::sim
