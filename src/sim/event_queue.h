// Cancellable future-event list for the discrete-event engine.
//
// An *indexed 4-ary min-heap* keyed by (time, sequence) gives
// deterministic FIFO order among events scheduled for the same instant.
// The heap stores 24-byte POD entries; each entry indexes a *slot* in a
// side table that owns the callback and a generation counter. Handles
// are plain {queue, slot, generation} triples, so schedule/cancel touch
// no allocator at all: push is a free-slot pop + heap insert, cancel is
// a generation check + O(log n) indexed erase (the pre-PR-5 design
// allocated a shared_ptr<State> per event; before that, a lazily
// cancelled std::priority_queue accumulated dead tombstones). 4-ary
// rather than binary because sift-down does 3/4 fewer levels at ~the
// same compares per level, and the hot pop path is sift-down dominated;
// bench/micro_engine.cc and bench/micro_hotpath.cc measure the steps.
//
// Callbacks are sim::InlineFn (src/sim/inline_fn.h): captures live
// inline in the slot, never on the heap, and oversized captures fail to
// compile. Combined with the slot table this makes the steady-state
// schedule/fire/cancel cycle allocation-free (tests/test_hotpath.cc
// asserts exactly that).
//
// Determinism: live events pop in strict (when, seq) order — a total
// order — so the pop sequence is identical to both earlier
// implementations for any program that never observes dead entries.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/inline_fn.h"
#include "sim/time.h"

namespace ntier::sim {

// An event's callback. Must be invocable exactly once. Captures beyond
// kInlineFnCapacity bytes are a compile error — pool bigger state and
// capture a PoolRef instead (see docs/PERFORMANCE.md).
using EventFn = InlineFn<void()>;

class EventQueue;

// Handle to a scheduled event: a POD {queue, slot, generation} triple
// (no shared state, no allocation). Safe to cancel after the event has
// fired or been cancelled (generation mismatch makes it a no-op), but —
// unlike the pre-PR-5 handle — must not be used after the owning
// EventQueue is destroyed. Every in-tree holder (HostCpu, IoDevice,
// Sampler, timers) is torn down before its Simulation, so this contract
// change is invisible to the models.
class EventHandle {
 public:
  // Default-constructed handles are empty: pending() is false, cancel()
  // is a no-op. Real handles come from EventQueue::push.
  EventHandle() = default;
  // True if the event has neither fired nor been cancelled.
  bool pending() const;
  // Prevents a pending event from firing, erasing its queue entry in
  // O(log n). Idempotent; a no-op after the event fires.
  void cancel();

 private:
  friend class EventQueue;
  EventHandle(EventQueue* q, std::uint32_t slot, std::uint32_t gen)
      : owner_(q), slot_(slot), gen_(gen) {}
  EventQueue* owner_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

// The future-event list. Single-threaded; all complexity bounds are in
// the number of *live* (pending) events — cancelled entries are removed
// eagerly and never occupy heap slots. The slot table and heap arrays
// grow amortized to the high-water mark and are then reused forever, so
// a warmed-up queue performs no allocations.
class EventQueue {
 public:
  // Non-copyable (handles and heap entries index into this queue's slot
  // table by address/index).
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Enqueues fn to run at `when` in O(log n). Events at equal times fire
  // in scheduling order.
  EventHandle push(Time when, EventFn fn);

  // Time of the earliest live event; Time::max() when empty. O(1).
  Time next_time() const;

  // Pops and runs the earliest live event. Returns false if none exists.
  bool pop_and_run();

  // True when no live events remain. O(1).
  bool empty() const { return heap_.empty(); }
  // Exact number of live (pending, uncancelled) events. O(1).
  std::size_t size() const { return heap_.size(); }

 private:
  friend class EventHandle;
  static constexpr std::uint32_t kNil = 0xffffffffu;

  // 24-byte POD heap entry: sifts are plain assignments, no callback
  // moves. `slot` indexes slots_.
  struct Entry {
    Time when;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  // Callback storage + liveness. `gen` increments when the event fires
  // or is cancelled, invalidating outstanding handles; `pos` tracks the
  // entry's heap index while live; `next_free` threads the free list.
  struct Slot {
    EventFn fn;
    std::uint32_t gen = 0;
    std::uint32_t pos = 0;
    std::uint32_t next_free = kNil;
  };

  // True when a must fire strictly before b: the (when, seq) total order.
  static bool before(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  // Heap maintenance; every move keeps Slot::pos in sync.
  void place(const Entry& e, std::size_t i);
  void sift_up(Entry e, std::size_t i);
  void sift_down(Entry e, std::size_t i);
  // Invalidates the slot and removes the entry at heap index `pos`.
  void erase(std::size_t pos);
  // Returns `slot` (callback already moved out or reset) to the free
  // list with its generation bumped.
  void free_slot(std::uint32_t slot);

  std::vector<Entry> heap_;  // 4-ary: children of i are 4i+1 .. 4i+4
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNil;
  std::uint64_t next_seq_ = 0;
};

// Liveness = the queue still exists and the slot generation matches
// (firing or cancelling bumps it, retiring every outstanding handle).
inline bool EventHandle::pending() const {
  return owner_ != nullptr && owner_->slots_[slot_].gen == gen_;
}

// O(log n) eager erase via the slot's tracked heap position; a no-op
// once the event fired, was cancelled, or outlived its queue.
inline void EventHandle::cancel() {
  if (pending()) owner_->erase(owner_->slots_[slot_].pos);
}

}  // namespace ntier::sim
