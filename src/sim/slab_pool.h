// SlabPool: generation-checked object pool for the simulation hot path.
//
// The steady-state loop creates and retires a Request, several transport
// sends, and one per-tier context per simulated request; with shared_ptr
// each of those is a heap allocation (object + control block). SlabPool
// carves objects out of fixed-size slabs and recycles retired slots
// through a LIFO free list, so after warm-up the loop allocates nothing:
// make() is a free-list pop plus placement-new, and release is a
// destructor call plus a free-list push. The LIFO discipline makes reuse
// order deterministic (the unit tests rely on this) and keeps recycled
// slots cache-hot.
//
// Safety: every slot carries a generation counter bumped on each
// release. Handle (a weak, non-owning reference) validates the
// generation on access, so a stale handle to a recycled slot is caught
// as an assert in debug builds instead of reading another object's
// state. Under AddressSanitizer, freed slots are manually poisoned so
// pooling does not mask use-after-free from raw pointers either.
//
// Threading: a pool and all refs into it belong to one thread. Pools are
// typically thread_local (see server::request_pool), which the sweep
// engine's one-simulation-per-worker model requires and which guarantees
// the pool outlives every simulation object that holds refs into it.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define NTIER_SLAB_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define NTIER_SLAB_ASAN 1
#endif
#endif
#ifdef NTIER_SLAB_ASAN
#include <sanitizer/asan_interface.h>
#include <sanitizer/lsan_interface.h>
#endif

namespace ntier::sim {

template <class T>
class SlabPool;
template <class T>
class PoolRef;

namespace detail {

// One pooled slot: refcount + generation header, then inline storage.
// The header lives outside `storage` so ASan poisoning of a freed slot
// never covers pool bookkeeping.
template <class T>
struct PoolSlot {
  std::uint32_t refs = 0;
  std::uint32_t gen = 0;
  SlabPool<T>* pool = nullptr;
  PoolSlot* next_free = nullptr;  // intrusive free list (valid when free)
  alignas(T) unsigned char storage[sizeof(T)];

  // The constructed object living in `storage` (valid while refs > 0).
  T* obj() { return std::launder(reinterpret_cast<T*>(storage)); }
};

}  // namespace detail

// Owning, intrusively refcounted handle to a pooled T. Copy bumps the
// refcount; when the last ref drops, the object is destroyed and its
// slot returns to the pool's free list. 16 bytes, trivially relocatable
// — sized to be captured inline by InlineFn closures. Not thread-safe
// (see the pool's threading contract).
template <class T>
class PoolRef {
 public:
  // Empty refs compare equal to nullptr and are safe to copy/destroy.
  PoolRef() noexcept = default;
  PoolRef(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  // Value semantics over the shared slot (copy = retain, move = steal).
  PoolRef(const PoolRef& o) noexcept : slot_(o.slot_), gen_(o.gen_) {
    if (slot_) ++slot_->refs;
  }
  PoolRef(PoolRef&& o) noexcept : slot_(o.slot_), gen_(o.gen_) {
    o.slot_ = nullptr;
  }
  PoolRef& operator=(const PoolRef& o) noexcept {
    PoolRef tmp(o);
    swap(tmp);
    return *this;
  }
  PoolRef& operator=(PoolRef&& o) noexcept {
    PoolRef tmp(std::move(o));
    swap(tmp);
    return *this;
  }
  PoolRef& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }
  ~PoolRef() { reset(); }

  // Accessors; debug builds verify the slot generation so a stale ref
  // (kept across a release cycle by buggy code) asserts instead of
  // silently aliasing the slot's next tenant.
  T* get() const noexcept {
    if (!slot_) return nullptr;
    assert(slot_->gen == gen_ && "stale PoolRef: slot was recycled");
    return slot_->obj();
  }
  T* operator->() const noexcept { return get(); }
  T& operator*() const noexcept { return *get(); }
  explicit operator bool() const noexcept { return slot_ != nullptr; }
  friend bool operator==(const PoolRef& a, const PoolRef& b) noexcept {
    return a.slot_ == b.slot_;
  }
  friend bool operator==(const PoolRef& a, std::nullptr_t) noexcept {
    return a.slot_ == nullptr;
  }

  // Drops this ref (releasing the object if it was the last one).
  void reset() noexcept {
    if (slot_ && --slot_->refs == 0) SlabPool<T>::release(slot_);
    slot_ = nullptr;
  }
  // Swaps two refs without touching refcounts.
  void swap(PoolRef& o) noexcept {
    std::swap(slot_, o.slot_);
    std::swap(gen_, o.gen_);
  }
  // Current refcount (1 = sole owner); 0 for an empty ref. Debug aid.
  std::uint32_t use_count() const noexcept { return slot_ ? slot_->refs : 0; }

 private:
  friend class SlabPool<T>;
  template <class U>
  friend class PoolHandle;
  PoolRef(detail::PoolSlot<T>* s, std::uint32_t g) noexcept
      : slot_(s), gen_(g) {}
  detail::PoolSlot<T>* slot_ = nullptr;
  std::uint32_t gen_ = 0;
};

// Weak, non-owning view of a pooled slot: unlike PoolRef it does not
// keep the object alive, so it observes recycling. stale() flips to true
// the moment the referenced object is released — the unit tests use this
// to prove the generation check catches use-after-release.
template <class T>
class PoolHandle {
 public:
  // Empty handles are stale by definition.
  PoolHandle() noexcept = default;
  // Snapshots the slot + generation of a live ref.
  explicit PoolHandle(const PoolRef<T>& ref) noexcept
      : slot_(ref.slot_), gen_(ref.gen_) {}

  // True once the referenced object has been released (or was never set).
  bool stale() const noexcept { return !slot_ || slot_->gen != gen_; }
  // The object, when still live; asserts (debug) on stale access.
  T* get() const noexcept {
    assert(!stale() && "stale PoolHandle: slot was recycled");
    return slot_ ? slot_->obj() : nullptr;
  }

 private:
  detail::PoolSlot<T>* slot_ = nullptr;
  std::uint32_t gen_ = 0;
};

// The pool itself: slab storage + LIFO free list. Allocates only when
// the free list is empty (one slab of kSlabSlots at a time), so a
// warmed-up pool serves make()/release cycles with zero heap traffic.
template <class T>
class SlabPool {
 public:
  // Slots carved per slab allocation; growth is amortized and stops
  // once the pool covers the simulation's high-water live-object mark.
  static constexpr std::size_t kSlabSlots = 256;

  // Pools are address-stable anchors for their slots: non-copyable.
  SlabPool() = default;
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;
  ~SlabPool() {
#ifdef NTIER_SLAB_ASAN
    for (auto& slab : slabs_)
      for (std::size_t i = 0; i < kSlabSlots; ++i)
        ASAN_UNPOISON_MEMORY_REGION(slab[i].storage, sizeof(T));
#endif
    if (live_ != 0) {
      // Refs can legitimately outlive a thread_local pool: main-thread
      // TLS destructors run before static destructors, so e.g. a test
      // fixture cached in a function-static still holds refs here. Leak
      // the slabs and orphan their slots — a later release then only
      // runs the object's destructor instead of touching a dead pool.
      for (auto& slab : slabs_) {
        for (std::size_t i = 0; i < kSlabSlots; ++i) slab[i].pool = nullptr;
#ifdef NTIER_SLAB_ASAN
        __lsan_ignore_object(slab.get());
#endif
        slab.release();
      }
    }
  }

  // Constructs a T in a recycled (or freshly carved) slot and returns
  // the sole owning ref. Reuse order is deterministic LIFO: the most
  // recently released slot is handed out first.
  template <class... A>
  PoolRef<T> make(A&&... args) {
    Slot* s = free_head_;
    if (s == nullptr) {
      grow();
      s = free_head_;
    }
    free_head_ = s->next_free;
#ifdef NTIER_SLAB_ASAN
    ASAN_UNPOISON_MEMORY_REGION(s->storage, sizeof(T));
#endif
    ::new (static_cast<void*>(s->storage)) T{std::forward<A>(args)...};
    s->refs = 1;
    ++live_;
    return PoolRef<T>(s, s->gen);
  }

  // Pool occupancy: live objects and total carved slots. Test/debug aid.
  std::size_t live() const noexcept { return live_; }
  std::size_t capacity() const noexcept { return slabs_.size() * kSlabSlots; }

 private:
  friend class PoolRef<T>;
  using Slot = detail::PoolSlot<T>;

  // Destroys the object, bumps the generation (stale-handle detection),
  // poisons the vacated storage under ASan, and pushes the slot LIFO.
  static void release(Slot* s) noexcept {
    s->obj()->~T();
    ++s->gen;
    SlabPool* p = s->pool;
    if (p == nullptr) return;  // pool already destroyed; slab is leaked
#ifdef NTIER_SLAB_ASAN
    ASAN_POISON_MEMORY_REGION(s->storage, sizeof(T));
#endif
    s->next_free = p->free_head_;
    p->free_head_ = s;
    --p->live_;
  }

  // Carves one more slab and threads its slots onto the free list in
  // reverse index order, so slot 0 of the new slab is handed out first.
  void grow() {
    slabs_.push_back(std::make_unique<Slot[]>(kSlabSlots));
    Slot* slab = slabs_.back().get();
    for (std::size_t i = kSlabSlots; i-- > 0;) {
      slab[i].pool = this;
      slab[i].next_free = free_head_;
      free_head_ = &slab[i];
#ifdef NTIER_SLAB_ASAN
      ASAN_POISON_MEMORY_REGION(slab[i].storage, sizeof(T));
#endif
    }
  }

  std::vector<std::unique_ptr<Slot[]>> slabs_;
  Slot* free_head_ = nullptr;
  std::size_t live_ = 0;
};

}  // namespace ntier::sim
