// Simulation: the clock plus scheduling facade every model component uses.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace ntier::sim {

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const { return now_; }

  // Schedules fn at an absolute instant (>= now()).
  EventHandle at(Time when, EventFn fn) {
    assert(when >= now_);
    return queue_.push(when, std::move(fn));
  }

  // Schedules fn after a non-negative delay.
  EventHandle after(Duration delay, EventFn fn) {
    assert(delay >= Duration::zero());
    return queue_.push(now_ + delay, std::move(fn));
  }

  // Runs events until the clock would pass `deadline`. The clock ends at
  // exactly `deadline` (events at the deadline itself do run).
  void run_until(Time deadline);

  // Runs until no live events remain (use with closed models only).
  void run_all();

  // Events executed so far; useful for microbenchmarks and loop guards.
  std::uint64_t events_executed() const { return executed_; }

  // Upper bound on the future-event-list size (includes lazily-cancelled
  // entries) — the "heap depth" gauge the telemetry registry samples.
  std::size_t pending_events() const { return queue_.size_upper_bound(); }

 private:
  EventQueue queue_;
  Time now_ = Time::origin();
  std::uint64_t executed_ = 0;
};

}  // namespace ntier::sim
