// Simulation: the clock plus scheduling facade every model component uses.
#pragma once

#include <cassert>
#include <cstdint>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace ntier::sim {

// One discrete-event world: a monotonic clock and its event queue.
// Distinct Simulation instances share nothing, so independent runs can
// execute on separate threads (the sweep engine relies on this).
class Simulation {
 public:
  // Non-copyable: events capture pointers into this world.
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Current simulated instant (starts at Time::origin()).
  Time now() const { return now_; }

  // Schedules fn at an absolute instant (>= now()). The optional hint
  // documents the call site's scheduling class (see sim::SchedClass);
  // placement is identical for every hint. Debug builds check that
  // kImmediate really is a same-instant dispatch; kTimer is a pure
  // audited annotation (stochastic timer draws may legally round to
  // zero delay).
  EventHandle at(Time when, EventFn fn, SchedClass hint = SchedClass::kAuto) {
    assert(when >= now_);
    assert(hint != SchedClass::kImmediate || when == now_);
    (void)hint;
    return queue_.push(when, std::move(fn));
  }

  // Schedules fn after a non-negative delay (same hint semantics).
  EventHandle after(Duration delay, EventFn fn,
                    SchedClass hint = SchedClass::kAuto) {
    assert(delay >= Duration::zero());
    assert(hint != SchedClass::kImmediate || delay == Duration::zero());
    (void)hint;
    return queue_.push(now_ + delay, std::move(fn));
  }

  // Runs events until the clock would pass `deadline`, one whole tick
  // batch at a time (every event at one instant drains in a single
  // pass). The clock ends at exactly `deadline` (events at the deadline
  // itself do run).
  void run_until(Time deadline);

  // Runs until no live events remain (use with closed models only).
  void run_all();

  // Events executed so far; useful for microbenchmarks and loop guards.
  std::uint64_t events_executed() const { return executed_; }

  // Exact number of live future events — the "queue depth" gauge the
  // telemetry registry samples. Counts every pending event wherever it
  // resides (tick batch, wheel slot, or overflow heap); cancelled
  // events leave the count immediately.
  std::size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  Time now_ = Time::origin();
  std::uint64_t executed_ = 0;
};

}  // namespace ntier::sim
