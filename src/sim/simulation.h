// Simulation: the clock plus scheduling facade every model component uses.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace ntier::sim {

// One discrete-event world: a monotonic clock and its event queue.
// Distinct Simulation instances share nothing, so independent runs can
// execute on separate threads (the sweep engine relies on this).
class Simulation {
 public:
  // Non-copyable: events capture pointers into this world.
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Current simulated instant (starts at Time::origin()).
  Time now() const { return now_; }

  // Schedules fn at an absolute instant (>= now()).
  EventHandle at(Time when, EventFn fn) {
    assert(when >= now_);
    return queue_.push(when, std::move(fn));
  }

  // Schedules fn after a non-negative delay.
  EventHandle after(Duration delay, EventFn fn) {
    assert(delay >= Duration::zero());
    return queue_.push(now_ + delay, std::move(fn));
  }

  // Runs events until the clock would pass `deadline`. The clock ends at
  // exactly `deadline` (events at the deadline itself do run).
  void run_until(Time deadline);

  // Runs until no live events remain (use with closed models only).
  void run_all();

  // Events executed so far; useful for microbenchmarks and loop guards.
  std::uint64_t events_executed() const { return executed_; }

  // Exact number of live future events — the "heap depth" gauge the
  // telemetry registry samples. (Cancelled events are erased eagerly by
  // the indexed heap, so this is no longer an upper bound.)
  std::size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  Time now_ = Time::origin();
  std::uint64_t executed_ = 0;
};

}  // namespace ntier::sim
