// Strong time types for the discrete-event engine.
//
// All simulated time is integral microseconds. Strong wrappers prevent
// accidental mixing of absolute times and durations and of simulated vs.
// wall-clock values. Microsecond resolution is three orders of magnitude
// finer than the paper's millisecond message timestamps and 50 ms
// monitoring windows, so quantization never affects reproduced results.
#pragma once
#include <concepts>

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace ntier::sim {

// A signed span of simulated time (integral microseconds).
class Duration {
 public:
  // Zero by default; named factories for each unit.
  constexpr Duration() = default;
  static constexpr Duration micros(std::int64_t us) { return Duration{us}; }
  static constexpr Duration millis(std::int64_t ms) { return Duration{ms * 1000}; }
  static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000}; }
  // Converts fractional seconds, rounding to the nearest microsecond.
  static constexpr Duration from_seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e6 + (s >= 0 ? 0.5 : -0.5))};
  }
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  // Unit accessors (exact in µs; float in coarser units).
  constexpr std::int64_t count_micros() const { return us_; }
  constexpr double to_seconds() const { return static_cast<double>(us_) / 1e6; }
  constexpr double to_millis() const { return static_cast<double>(us_) / 1e3; }

  // Closed arithmetic on durations; integral scaling stays exact,
  // double scaling rounds to the nearest microsecond.
  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.us_ + b.us_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.us_ - b.us_}; }
  template <std::integral T>
  friend constexpr Duration operator*(Duration a, T k) {
    return Duration{a.us_ * static_cast<std::int64_t>(k)};
  }
  template <std::integral T>
  friend constexpr Duration operator*(T k, Duration a) {
    return a * k;
  }
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration::from_seconds(a.to_seconds() * k);
  }
  friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.us_) / static_cast<double>(b.us_);
  }
  friend constexpr Duration operator/(Duration a, std::int64_t k) { return Duration{a.us_ / k}; }
  constexpr Duration& operator+=(Duration o) { us_ += o.us_; return *this; }
  constexpr Duration& operator-=(Duration o) { us_ -= o.us_; return *this; }
  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  explicit constexpr Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

// An absolute simulated instant (µs since Time::origin()).
class Time {
 public:
  // The origin by default; named factories for absolute instants.
  constexpr Time() = default;
  static constexpr Time origin() { return Time{0}; }
  static constexpr Time from_micros(std::int64_t us) { return Time{us}; }
  static constexpr Time from_seconds(double s) {
    return Time{Duration::from_seconds(s).count_micros()};
  }
  static constexpr Time max() { return Time{std::numeric_limits<std::int64_t>::max()}; }

  // Unit accessors, measured from the origin.
  constexpr std::int64_t count_micros() const { return us_; }
  constexpr double to_seconds() const { return static_cast<double>(us_) / 1e6; }
  constexpr double to_millis() const { return static_cast<double>(us_) / 1e3; }

  // Instant ± span arithmetic; instant − instant yields a Duration.
  friend constexpr Time operator+(Time t, Duration d) { return Time{t.us_ + d.count_micros()}; }
  friend constexpr Time operator-(Time t, Duration d) { return Time{t.us_ - d.count_micros()}; }
  friend constexpr Duration operator-(Time a, Time b) { return Duration::micros(a.us_ - b.us_); }
  constexpr Time& operator+=(Duration d) { us_ += d.count_micros(); return *this; }
  friend constexpr auto operator<=>(Time, Time) = default;

 private:
  explicit constexpr Time(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

// "1.234s"-style rendering for reports and test diagnostics.
std::string to_string(Duration d);
std::string to_string(Time t);

namespace literals {
constexpr Duration operator""_us(unsigned long long v) {
  return Duration::micros(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::millis(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_s(unsigned long long v) {
  return Duration::seconds(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_s(long double v) {
  return Duration::from_seconds(static_cast<double>(v));
}
}  // namespace literals

}  // namespace ntier::sim
