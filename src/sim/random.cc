#include "sim/random.h"

#include <cmath>

namespace ntier::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
}

Rng Rng::fork(std::uint64_t stream_index) {
  // Mix the child index into fresh entropy drawn from this stream.
  std::uint64_t base = next_u64() ^ (stream_index * 0x9e3779b97f4a7c15ULL + 1);
  return Rng{base};
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection-free modulo is fine here: n is tiny relative to 2^64 in all
  // simulator uses (mix sizes, client counts), so bias is negligible.
  return next_u64() % n;
}

double Rng::exponential(double mean) {
  double u;
  do { u = uniform(); } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * m;
  have_spare_normal_ = true;
  return mean + stddev * u * m;
}

double Rng::pareto(double xm, double alpha) {
  double u;
  do { u = uniform(); } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

bool Rng::chance(double p) { return uniform() < p; }

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  // Inverse-CDF over the (small) support; n is a request-mix size.
  if (n <= 1) return 0;
  double norm = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(double(k), s);
  double u = uniform() * norm;
  double acc = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(double(k), s);
    if (u <= acc) return k - 1;
  }
  return n - 1;
}

Duration Rng::exp_duration(Duration mean) {
  return Duration::from_seconds(exponential(mean.to_seconds()));
}

}  // namespace ntier::sim
