#include "sim/simulation.h"

namespace ntier::sim {

void Simulation::run_until(Time deadline) {
  while (true) {
    Time t = queue_.next_time();
    if (t > deadline) break;
    now_ = t;
    queue_.pop_and_run();
    ++executed_;
  }
  if (deadline > now_) now_ = deadline;
}

void Simulation::run_all() {
  while (true) {
    Time t = queue_.next_time();
    if (t == Time::max()) break;
    now_ = t;
    queue_.pop_and_run();
    ++executed_;
  }
}

}  // namespace ntier::sim
