#include "sim/simulation.h"

namespace ntier::sim {

void Simulation::run_until(Time deadline) {
  while (const std::size_t n = queue_.run_next_tick(deadline, now_))
    executed_ += n;
  if (deadline > now_) now_ = deadline;
}

void Simulation::run_all() {
  while (const std::size_t n = queue_.run_next_tick(Time::max(), now_))
    executed_ += n;
}

}  // namespace ntier::sim
