#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <utility>

namespace ntier::sim {

EventQueue::EventQueue() {
  for (auto& level : wheel_head_)
    for (auto& head : level) head = kNil;
  for (auto& level : wheel_bits_)
    for (auto& word : level) word = 0;
}

// O(1) for pending events anywhere; the location tag picks the cheapest
// removal (wheel splice / batch generation-skip / indexed heap erase).
void EventHandle::cancel() {
  if (!pending()) return;
  EventQueue& q = *owner_;
  switch (q.meta_[slot_].where) {
    case EventQueue::kLocHeap:
      q.heap_erase(q.meta_[slot_].pos);
      break;
    case EventQueue::kLocWheel:
      q.wheel_unlink(slot_);
      q.fns_[slot_].reset();
      q.free_slot(slot_);
      --q.live_;
      break;
    case EventQueue::kLocBatch:
      q.fns_[slot_].reset();
      q.free_slot(slot_);
      --q.live_;
      assert(q.batch_live_ > 0);
      --q.batch_live_;
      break;
    default:
      assert(false && "pending event with no residence");
  }
}

std::uint32_t EventQueue::alloc_slot() {
  if (free_head_ != kNil) {
    const std::uint32_t slot = free_head_;
    free_head_ = meta_[slot].next;
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(meta_.size());
  meta_.emplace_back();
  fns_.emplace_back();
  return slot;
}

void EventQueue::free_slot(std::uint32_t slot) {
  Meta& m = meta_[slot];
  ++m.gen;  // invalidate outstanding handles
  m.where = kLocFree;
  m.next = free_head_;
  free_head_ = slot;
}

void EventQueue::wheel_link(std::uint32_t slot, int level, std::uint32_t idx) {
  Meta& m = meta_[slot];
  m.where = kLocWheel;
  m.pos = (static_cast<std::uint32_t>(level) << kSlotBits) | idx;
  m.prev = kNil;
  m.next = wheel_head_[level][idx];
  if (m.next != kNil) meta_[m.next].prev = slot;
  wheel_head_[level][idx] = slot;
  wheel_bits_[level][idx >> 6] |= 1ull << (idx & 63);
  ++wheel_count_;
}

void EventQueue::wheel_unlink(std::uint32_t slot) {
  Meta& m = meta_[slot];
  const int level = static_cast<int>(m.pos >> kSlotBits);
  const std::uint32_t idx = m.pos & kSlotMask;
  if (m.prev != kNil)
    meta_[m.prev].next = m.next;
  else
    wheel_head_[level][idx] = m.next;
  if (m.next != kNil) meta_[m.next].prev = m.prev;
  if (wheel_head_[level][idx] == kNil)
    wheel_bits_[level][idx >> 6] &= ~(1ull << (idx & 63));
  --wheel_count_;
  // Removing the cached minimum invalidates the cache; removing any
  // later event leaves it exact.
  if (!wheel_dirty_ && m.when.count_micros() == wheel_next_cache_)
    wheel_dirty_ = true;
}

void EventQueue::place(std::uint32_t slot, Time when) {
  const std::int64_t w = when.count_micros();
  if (w > cur_) {
    // Level = position of the highest bit in which `when` differs from
    // the current tick: the finest level whose slot for `when` has not
    // yet been passed. Beyond kLevels*kSlotBits bits lies the horizon.
    const std::uint64_t x =
        static_cast<std::uint64_t>(w) ^ static_cast<std::uint64_t>(cur_);
    const int level = (63 - std::countl_zero(x)) / kSlotBits;
    if (level < kLevels) {
      wheel_link(slot, level, digit(w, level));
      if (!wheel_dirty_ && w < wheel_next_cache_) wheel_next_cache_ = w;
      return;
    }
  }
  // At/before the current tick, or beyond the wheel horizon: the 4-ary
  // heap handles arbitrary times in O(log n).
  meta_[slot].where = kLocHeap;
  heap_.emplace_back();  // make room; sift_up fills the final slot
  sift_up(Entry{when, meta_[slot].seq, slot}, heap_.size() - 1);
}

EventHandle EventQueue::push(Time when, EventFn&& fn) {
  // Scheduling earlier than the tick currently being drained would
  // reorder history; the Simulation facade's `when >= now()` assert is
  // strictly stronger than this.
  assert(batch_live_ == 0 || when >= batch_time_);
  const std::uint32_t slot = alloc_slot();
  Meta& m = meta_[slot];
  m.seq = next_seq_++;
  m.when = when;
  fns_[slot] = std::move(fn);
  ++live_;
  if (batch_live_ > 0 && when == batch_time_) {
    // Same instant as the active batch: join it. next_seq_ is monotone,
    // so appending keeps the batch sorted by seq.
    m.where = kLocBatch;
    batch_.push_back({m.seq, slot, m.gen});
    ++batch_live_;
  } else {
    place(slot, when);
  }
  return EventHandle{this, slot, m.gen};
}

void EventQueue::cascade(int level, std::uint32_t idx) {
  std::uint32_t slot = wheel_head_[level][idx];
  if (slot == kNil) return;
  wheel_head_[level][idx] = kNil;
  wheel_bits_[level][idx >> 6] &= ~(1ull << (idx & 63));
  while (slot != kNil) {
    const std::uint32_t next = meta_[slot].next;
    --wheel_count_;  // leaving this residence; re-linking re-counts
    const std::int64_t w = meta_[slot].when.count_micros();
    if (w == cur_) {
      // Due exactly at the tick being entered: land in its level-0 slot
      // so the imminent gather collects it (place() would misroute an
      // at-current-tick event to the heap).
      wheel_link(slot, 0, digit(w, 0));
    } else {
      place(slot, meta_[slot].when);
    }
    slot = next;
  }
}

void EventQueue::advance_to(std::int64_t t) {
  const std::int64_t old = cur_;
  cur_ = t;  // first, so cascaded events re-place relative to t
  // Same level-0 window (the common tick-to-tick step): no slot at any
  // coarser level is being entered, so nothing can cascade.
  if ((t >> kSlotBits) == (old >> kSlotBits)) return;
  for (int l = kLevels - 1; l >= 1; --l) {
    if ((t >> (kSlotBits * l)) != (old >> (kSlotBits * l)))
      cascade(l, digit(t, l));
  }
}

std::int64_t EventQueue::wheel_next_scan() const {
  for (int l = 0; l < kLevels; ++l) {
    // Occupied slots at or above the current tick's digit hold every
    // level-l event (passed slots were cascaded or gathered), and any
    // level-l event is earlier than any level-(l+1) event, so the
    // first occupied slot at the lowest occupied level wins. The
    // current digit itself can be occupied only at level 0 — due-now
    // events sit there between pop_and_run single-steps — at coarser
    // levels entering a slot cascades it empty.
    const std::uint32_t start = digit(cur_, l);
    std::uint32_t word = start >> 6;
    const std::uint32_t bit = start & 63;
    std::uint64_t bits = wheel_bits_[l][word] &
                         (l == 0 ? ~0ull << bit
                                 : bit == 63 ? 0 : ~0ull << (bit + 1));
    for (;;) {
      if (bits != 0) {
        const std::uint32_t idx =
            (word << 6) + static_cast<std::uint32_t>(std::countr_zero(bits));
        if (l == 0) {
          // A level-0 slot is a single 1 µs tick: the index alone
          // reconstructs the exact time.
          return (cur_ & ~static_cast<std::int64_t>(kSlotMask)) |
                 static_cast<std::int64_t>(idx);
        }
        // Coarser slots span many ticks and are unordered: the exact
        // minimum needs one walk of this (first occupied) slot's list.
        std::int64_t best = kNoEvent;
        for (std::uint32_t s = wheel_head_[l][idx]; s != kNil;
             s = meta_[s].next)
          best = std::min(best, meta_[s].when.count_micros());
        return best;
      }
      if (++word >= kSlots / 64) break;
      bits = wheel_bits_[l][word];
    }
  }
  return kNoEvent;
}

std::int64_t EventQueue::wheel_next() const {
  if (wheel_count_ == 0) {
    wheel_next_cache_ = kNoEvent;
    wheel_dirty_ = false;
    return kNoEvent;
  }
  if (wheel_dirty_) {
    wheel_next_cache_ = wheel_next_scan();
    wheel_dirty_ = false;
  }
  return wheel_next_cache_;
}

std::int64_t EventQueue::wheel_settle_next() {
  if (wheel_count_ == 0) {
    wheel_next_cache_ = kNoEvent;
    wheel_dirty_ = false;
    return kNoEvent;
  }
  if (!wheel_dirty_) return wheel_next_cache_;
  for (;;) {
    // Level 0 first: a hit is exact straight from the bitmap (the
    // current digit's own slot counts — it may hold due-now events).
    {
      const std::uint32_t start = digit(cur_, 0);
      std::uint32_t word = start >> 6;
      std::uint64_t bits = wheel_bits_[0][word] & (~0ull << (start & 63));
      for (;;) {
        if (bits != 0) {
          const std::uint32_t idx =
              (word << 6) + static_cast<std::uint32_t>(std::countr_zero(bits));
          wheel_next_cache_ = (cur_ & ~static_cast<std::int64_t>(kSlotMask)) |
                              static_cast<std::int64_t>(idx);
          wheel_dirty_ = false;
          return wheel_next_cache_;
        }
        if (++word >= kSlots / 64) break;
        bits = wheel_bits_[0][word];
      }
    }
    // Enter the window of the first occupied coarse slot, cascading it
    // one level down; cur_ may run ahead of the Simulation clock here,
    // which only biases *placement* of later pushes (never pop order).
    [[maybe_unused]] bool found = false;
    for (int l = 1; l < kLevels && !found; ++l) {
      const std::uint32_t start = digit(cur_, l);
      std::uint32_t word = start >> 6;
      const std::uint32_t bit = start & 63;
      std::uint64_t bits =
          wheel_bits_[l][word] & (bit == 63 ? 0 : ~0ull << (bit + 1));
      for (;;) {
        if (bits != 0) {
          const std::uint32_t idx =
              (word << 6) + static_cast<std::uint32_t>(std::countr_zero(bits));
          const std::int64_t span = 1ll << (kSlotBits * l);
          const std::int64_t window_start =
              (cur_ & ~((span << kSlotBits) - 1)) + span * idx;
          advance_to(window_start);
          found = true;
          break;
        }
        if (++word >= kSlots / 64) break;
        bits = wheel_bits_[l][word];
      }
    }
    assert(found && "wheel_count_ > 0 but no occupied slot");
  }
}

Time EventQueue::next_time() const {
  std::int64_t t = batch_live_ > 0 ? batch_time_.count_micros() : kNoEvent;
  if (!heap_.empty()) t = std::min(t, heap_.front().when.count_micros());
  t = std::min(t, wheel_next());
  return Time::from_micros(t);  // kNoEvent is Time::max()
}

bool EventQueue::form_batch() {
  assert(batch_live_ == 0);
  batch_.clear();
  batch_pos_ = 0;
  const std::int64_t th =
      heap_.empty() ? kNoEvent : heap_.front().when.count_micros();
  const std::int64_t tw = wheel_next();
  const std::int64_t t = std::min(th, tw);
  if (t == kNoEvent) return false;
  gather_batch(t, th, tw);
  return true;
}

void EventQueue::gather_batch(std::int64_t t, std::int64_t th,
                              std::int64_t tw) {
  (void)th;  // the heap prefix is re-checked directly below
  batch_time_ = Time::from_micros(t);
  if (tw == t) {
    // The wheel participates in this tick: enter it (cascading every
    // newly opened coarse slot down to level 0) and take the whole
    // level-0 slot — all events due at exactly t — in one splice.
    if (t > cur_) advance_to(t);
    const std::uint32_t idx = digit(t, 0);
    std::uint32_t slot = wheel_head_[0][idx];
    if (slot != kNil) {
      wheel_head_[0][idx] = kNil;
      wheel_bits_[0][idx >> 6] &= ~(1ull << (idx & 63));
      while (slot != kNil) {
        Meta& m = meta_[slot];
        assert(m.when.count_micros() == t);
        m.where = kLocBatch;
        batch_.push_back({m.seq, slot, m.gen});
        --wheel_count_;
        slot = m.next;
      }
    }
    wheel_dirty_ = true;  // the wheel just lost its minimum
  }
  while (!heap_.empty() && heap_.front().when.count_micros() == t)
    heap_pop_root_to_batch();
  // Restore the (when, seq) total order: all entries share `when`, and
  // wheel slots are unordered (a cascaded far event may carry a smaller
  // seq than a directly-pushed near one).
  std::sort(batch_.begin(), batch_.end(),
            [](const BatchEntry& a, const BatchEntry& b) {
              return a.seq < b.seq;
            });
  batch_live_ = batch_.size();
  assert(batch_live_ > 0);
}

bool EventQueue::run_batch_entry() {
  const BatchEntry e = batch_[batch_pos_++];
  if (meta_[e.slot].gen != e.gen) return false;  // cancelled after gathering
  // Move the callback out before running: fn may push new events and
  // recycle the slot or grow the tables.
  EventFn fn = std::move(fns_[e.slot]);
  free_slot(e.slot);
  --live_;
  --batch_live_;
  fn();
  return true;
}

std::size_t EventQueue::run_tick() {
  if (batch_live_ == 0 && !form_batch()) return 0;
  std::size_t ran = 0;
  while (batch_live_ > 0) {
    assert(batch_pos_ < batch_.size());
    if (run_batch_entry()) ++ran;
  }
  batch_.clear();
  batch_pos_ = 0;
  return ran;
}

std::size_t EventQueue::run_next_tick(Time deadline, Time& now) {
  if (batch_live_ == 0) {
    const std::int64_t th =
        heap_.empty() ? kNoEvent : heap_.front().when.count_micros();
    const std::int64_t tw = wheel_settle_next();
    const std::int64_t t = th < tw ? th : tw;
    if (t == kNoEvent || t > deadline.count_micros()) return 0;
    now = Time::from_micros(t);
    if (tw < th) {
      // Wheel-only tick. Enter it (a no-op within the current 256 µs
      // window), after which the level-0 slot for t holds exactly the
      // wheel events due at t — a later event can only share the slot
      // index from >= t + 256 µs, which classifies to level >= 1.
      if (t > cur_) advance_to(t);
      const std::uint32_t idx = digit(t, 0);
      const std::uint32_t head = wheel_head_[0][idx];
      assert(head != kNil);
      if (meta_[head].next == kNil) {
        // Singleton tick: run the lone callback straight out of its
        // slot — no batch, no seq sort. Same-instant pushes made by
        // the callback route to the heap (when <= cur_) and run on the
        // very next call, still in seq order.
        wheel_head_[0][idx] = kNil;
        wheel_bits_[0][idx >> 6] &= ~(1ull << (idx & 63));
        --wheel_count_;
        wheel_dirty_ = true;  // the wheel just lost its minimum
        EventFn fn = std::move(fns_[head]);
        free_slot(head);
        --live_;
        fn();
        return 1;
      }
    }
    batch_.clear();
    batch_pos_ = 0;
    gather_batch(t, th, tw);
  } else {
    // A partially drained batch (pop_and_run interleaving): finish it.
    if (batch_time_ > deadline) return 0;
    now = batch_time_;
  }
  std::size_t ran = 0;
  while (batch_live_ > 0) {
    assert(batch_pos_ < batch_.size());
    if (run_batch_entry()) ++ran;
  }
  batch_.clear();
  batch_pos_ = 0;
  return ran;
}

bool EventQueue::pop_and_run() {
  // Unlike the batched tick drivers, this single-steps the exact
  // (when, seq) global minimum without gathering a batch, so pushes at
  // or before already-executed ticks (legal through the raw queue API,
  // though not through Simulation) interleave correctly.
  const std::int64_t tb =
      batch_live_ > 0 ? batch_time_.count_micros() : kNoEvent;
  const std::int64_t th =
      heap_.empty() ? kNoEvent : heap_.front().when.count_micros();
  const std::int64_t tw = wheel_next();
  const std::int64_t t = std::min({tb, th, tw});
  if (t == kNoEvent) return false;
  if (tb == t) {
    // An already-gathered tick batch (single-stepping from inside a
    // draining tick) still holds the minimum: continue draining it.
    while (batch_live_ > 0) {
      assert(batch_pos_ < batch_.size());
      if (run_batch_entry()) return true;
    }
    return pop_and_run();  // batch was all-cancelled; recompute
  }
  std::uint32_t slot = kNil;
  if (tw == t) {
    // Enter the tick so every wheel event due at t sits in its level-0
    // slot, then take the smallest seq there.
    if (t > cur_) advance_to(t);
    const std::uint32_t idx = digit(t, 0);
    for (std::uint32_t s = wheel_head_[0][idx]; s != kNil; s = meta_[s].next)
      if (slot == kNil || meta_[s].seq < meta_[slot].seq) slot = s;
    assert(slot != kNil);
  }
  if (th == t && (slot == kNil || heap_.front().seq < meta_[slot].seq)) {
    // The heap root is the (when, seq) minimum (the heap order makes
    // the root the min-seq heap entry at t). Remove it; any same-tick
    // wheel event stays for the next call.
    slot = heap_.front().slot;
    const Entry tail = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(tail, 0);
  } else {
    wheel_unlink(slot);
  }
  EventFn fn = std::move(fns_[slot]);
  free_slot(slot);
  --live_;
  fn();
  return true;
}

void EventQueue::heap_place(const Entry& e, std::size_t i) {
  meta_[e.slot].pos = static_cast<std::uint32_t>(i);
  heap_[i] = e;
}

void EventQueue::sift_up(Entry e, std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(e, heap_[parent])) break;
    heap_place(heap_[parent], i);
    i = parent;
  }
  heap_place(e, i);
}

void EventQueue::sift_down(Entry e, std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c)
      if (before(heap_[c], heap_[best])) best = c;
    if (!before(heap_[best], e)) break;
    heap_place(heap_[best], i);
    i = best;
  }
  heap_place(e, i);
}

void EventQueue::heap_erase(std::size_t pos) {
  const std::uint32_t slot = heap_[pos].slot;
  fns_[slot].reset();
  free_slot(slot);
  --live_;
  const Entry tail = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // erased the last slot
  // Reposition the relocated tail: it may need to move either way.
  if (pos > 0 && before(tail, heap_[(pos - 1) / 4])) {
    sift_up(tail, pos);
  } else {
    sift_down(tail, pos);
  }
}

void EventQueue::heap_pop_root_to_batch() {
  const Entry root = heap_.front();
  Meta& m = meta_[root.slot];
  m.where = kLocBatch;
  batch_.push_back({root.seq, root.slot, m.gen});
  const Entry tail = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(tail, 0);
}

}  // namespace ntier::sim
