#include "sim/event_queue.h"

#include <utility>

namespace ntier::sim {

EventHandle EventQueue::push(Time when, EventFn fn) {
  auto done = std::make_shared<bool>(false);
  heap_.push(Entry{when, next_seq_++, std::move(fn), done});
  return EventHandle{std::move(done)};
}

void EventQueue::drop_dead() {
  while (!heap_.empty() && *heap_.top().done) heap_.pop();
}

Time EventQueue::next_time() {
  drop_dead();
  return heap_.empty() ? Time::max() : heap_.top().when;
}

bool EventQueue::pop_and_run() {
  drop_dead();
  if (heap_.empty()) return false;
  // Move the entry out before running: fn may push new events and
  // invalidate the top reference.
  Entry e = heap_.top();
  heap_.pop();
  *e.done = true;
  e.fn();
  return true;
}

}  // namespace ntier::sim
