#include "sim/event_queue.h"

#include <utility>

namespace ntier::sim {

void EventHandle::cancel() {
  if (state_ && state_->owner != nullptr) state_->owner->erase(state_->pos);
}

EventQueue::~EventQueue() {
  // Detach every live handle so cancel()/pending() on a handle that
  // outlives the queue stays a safe no-op.
  for (Entry& e : heap_) e.state->owner = nullptr;
}

void EventQueue::place(Entry&& e, std::size_t i) {
  e.state->pos = i;
  heap_[i] = std::move(e);
}

void EventQueue::sift_up(Entry&& e, std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(e, heap_[parent])) break;
    place(std::move(heap_[parent]), i);
    i = parent;
  }
  place(std::move(e), i);
}

void EventQueue::sift_down(Entry&& e, std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c)
      if (before(heap_[c], heap_[best])) best = c;
    if (!before(heap_[best], e)) break;
    place(std::move(heap_[best]), i);
    i = best;
  }
  place(std::move(e), i);
}

EventHandle EventQueue::push(Time when, EventFn fn) {
  auto state = std::make_shared<EventHandle::State>();
  state->owner = this;
  heap_.emplace_back();  // make room; sift_up fills the final slot
  sift_up(Entry{when, next_seq_++, std::move(fn), state}, heap_.size() - 1);
  return EventHandle{std::move(state)};
}

void EventQueue::erase(std::size_t pos) {
  heap_[pos].state->owner = nullptr;
  Entry tail = std::move(heap_.back());
  heap_.pop_back();
  if (pos == heap_.size()) return;  // erased the last slot
  // Reposition the relocated tail: it may need to move either way.
  if (pos > 0 && before(tail, heap_[(pos - 1) / 4])) {
    sift_up(std::move(tail), pos);
  } else {
    sift_down(std::move(tail), pos);
  }
}

Time EventQueue::next_time() const {
  return heap_.empty() ? Time::max() : heap_.front().when;
}

bool EventQueue::pop_and_run() {
  if (heap_.empty()) return false;
  // Move the entry out before running: fn may push new events and
  // invalidate references into the heap.
  Entry e = std::move(heap_.front());
  e.state->owner = nullptr;
  if (heap_.size() > 1) {
    Entry tail = std::move(heap_.back());
    heap_.pop_back();
    sift_down(std::move(tail), 0);
  } else {
    heap_.pop_back();
  }
  e.fn();
  return true;
}

}  // namespace ntier::sim
