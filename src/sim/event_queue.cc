#include "sim/event_queue.h"

#include <utility>

namespace ntier::sim {

void EventQueue::place(const Entry& e, std::size_t i) {
  slots_[e.slot].pos = static_cast<std::uint32_t>(i);
  heap_[i] = e;
}

void EventQueue::sift_up(Entry e, std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(e, heap_[parent])) break;
    place(heap_[parent], i);
    i = parent;
  }
  place(e, i);
}

void EventQueue::sift_down(Entry e, std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c)
      if (before(heap_[c], heap_[best])) best = c;
    if (!before(heap_[best], e)) break;
    place(heap_[best], i);
    i = best;
  }
  place(e, i);
}

void EventQueue::free_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  ++s.gen;  // invalidate outstanding handles
  s.next_free = free_head_;
  free_head_ = slot;
}

EventHandle EventQueue::push(Time when, EventFn fn) {
  std::uint32_t idx;
  if (free_head_ != kNil) {
    idx = free_head_;
    free_head_ = slots_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[idx];
  s.fn = std::move(fn);
  heap_.emplace_back();  // make room; sift_up fills the final slot
  sift_up(Entry{when, next_seq_++, idx}, heap_.size() - 1);
  return EventHandle{this, idx, s.gen};
}

void EventQueue::erase(std::size_t pos) {
  const std::uint32_t slot = heap_[pos].slot;
  slots_[slot].fn.reset();
  free_slot(slot);
  const Entry tail = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // erased the last slot
  // Reposition the relocated tail: it may need to move either way.
  if (pos > 0 && before(tail, heap_[(pos - 1) / 4])) {
    sift_up(tail, pos);
  } else {
    sift_down(tail, pos);
  }
}

Time EventQueue::next_time() const {
  return heap_.empty() ? Time::max() : heap_.front().when;
}

bool EventQueue::pop_and_run() {
  if (heap_.empty()) return false;
  // Move the callback out before running: fn may push new events and
  // recycle the slot or grow the tables.
  const std::uint32_t slot = heap_.front().slot;
  EventFn fn = std::move(slots_[slot].fn);
  free_slot(slot);
  if (heap_.size() > 1) {
    const Entry tail = heap_.back();
    heap_.pop_back();
    sift_down(tail, 0);
  } else {
    heap_.pop_back();
  }
  fn();
  return true;
}

}  // namespace ntier::sim
