// Deterministic random number generation for the simulator.
//
// xoshiro256++ seeded via SplitMix64. Every stochastic component takes an
// Rng (usually forked from one experiment master seed), so a scenario's
// entire artifact set is a pure function of its config — invariant 9 in
// DESIGN.md.
#pragma once

#include <array>
#include <cstdint>

#include "sim/time.h"

namespace ntier::sim {

// A deterministic generator stream: xoshiro256++ state plus the
// distribution samplers every model component draws from.
class Rng {
 public:
  // Seeds the stream (SplitMix64 expansion of `seed` into the state).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Derives an independent stream; children of distinct indices from the
  // same parent are decorrelated (SplitMix64 over seed ^ golden*index).
  Rng fork(std::uint64_t stream_index);

  // Next raw 64-bit draw; all samplers below consume these.
  std::uint64_t next_u64();
  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);
  // Exponential with the given mean (> 0).
  double exponential(double mean);
  // Standard normal via Marsaglia polar method.
  double normal(double mean, double stddev);
  // Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed demands).
  double pareto(double xm, double alpha);
  // Bernoulli.
  bool chance(double p);
  // Zipf over {0..n-1} with exponent s (popularity skew in request mixes).
  std::uint64_t zipf(std::uint64_t n, double s);

  // Duration helpers (never negative, rounded to µs).
  Duration exp_duration(Duration mean);

 private:
  std::array<std::uint64_t, 4> s_;
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace ntier::sim
