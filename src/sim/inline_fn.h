// InlineFn: a fixed-capacity, heap-free replacement for std::function.
//
// The steady-state event loop schedules millions of closures per run;
// with std::function each closure whose captures exceed the library's
// small-buffer (16 bytes on libstdc++) costs one heap allocation plus a
// later free. InlineFn stores the callable *inline* in a fixed buffer
// and refuses — at compile time — any callable that does not fit, so
// the hot path provably never touches the allocator. There is no heap
// fallback: a capture that outgrows the buffer is a build error, which
// keeps capture sizes an explicit, reviewed budget (see
// docs/PERFORMANCE.md for the per-callback capacity table).
//
// Semantics match the std::function subset the engine uses: copyable,
// movable, nullable, bool-testable. The target must be copy
// constructible and nothrow move constructible (every engine capture is:
// raw pointers, PoolRef handles, PODs, SSO strings). A moved-from
// InlineFn is empty. Invoking an empty InlineFn is undefined (asserted
// in debug builds), exactly like calling through a null function pointer.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace ntier::sim {

// Default inline capacity (bytes) for engine callbacks. 48 bytes holds
// `this` plus up to five pointer/handle captures — every steady-state
// closure in the simulator fits (static_assert-enforced per call site).
inline constexpr std::size_t kInlineFnCapacity = 48;

// Primary template; only the R(Args...) partial specialization exists.
template <class Signature, std::size_t Capacity = kInlineFnCapacity>
class InlineFn;

// The real InlineFn: callable wrapper with `Capacity` bytes of inline
// storage and no heap fallback.
template <class R, class... Args, std::size_t Capacity>
class InlineFn<R(Args...), Capacity> {
 public:
  // Empty function objects: pending() semantics mirror std::function.
  InlineFn() noexcept = default;
  InlineFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  // Wraps any callable `f` with sizeof(F) <= Capacity. Intentionally
  // implicit, so lambdas convert at call sites just like std::function.
  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "closure captures exceed this InlineFn's inline budget; "
                  "shrink the capture (pool the state and capture a handle)");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned callables are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "InlineFn targets must be nothrow move constructible");
    static_assert(std::is_copy_constructible_v<Fn>,
                  "InlineFn targets must be copy constructible");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    invoke_ = [](void* self, Args... args) -> R {
      return (*static_cast<Fn*>(self))(std::forward<Args>(args)...);
    };
    // Trivially copyable + destructible targets (the steady-state
    // closures: pointer/handle/POD captures) need no manager at all —
    // move and copy degrade to a fixed-size memcpy and destruction to
    // nothing, sparing the event loop an indirect call per transfer.
    if constexpr (!(std::is_trivially_copyable_v<Fn> &&
                    std::is_trivially_destructible_v<Fn>)) {
      manage_ = [](Op op, void* self, void* other) {
        switch (op) {
          case Op::kDestroy:
            static_cast<Fn*>(self)->~Fn();
            break;
          case Op::kMoveTo:
            ::new (other) Fn(std::move(*static_cast<Fn*>(self)));
            static_cast<Fn*>(self)->~Fn();
            break;
          case Op::kCopyTo:
            ::new (other) Fn(*static_cast<const Fn*>(self));
            break;
        }
      };
    }
  }

  // Copy duplicates the target; move transfers it and empties the source.
  // A stored target with no manager is trivially copyable: both degrade
  // to copying the buffer.
  InlineFn(const InlineFn& o) : invoke_(o.invoke_), manage_(o.manage_) {
    if (manage_)
      manage_(Op::kCopyTo, const_cast<unsigned char*>(o.buf_), buf_);
    else if (invoke_)
      std::memcpy(buf_, o.buf_, Capacity);
  }
  InlineFn(InlineFn&& o) noexcept : invoke_(o.invoke_), manage_(o.manage_) {
    if (manage_)
      manage_(Op::kMoveTo, o.buf_, buf_);
    else if (invoke_)
      std::memcpy(buf_, o.buf_, Capacity);
    o.invoke_ = nullptr;
    o.manage_ = nullptr;
  }
  InlineFn& operator=(const InlineFn& o) {
    if (this != &o) {
      reset();
      invoke_ = o.invoke_;
      manage_ = o.manage_;
      if (manage_)
        manage_(Op::kCopyTo, const_cast<unsigned char*>(o.buf_), buf_);
      else if (invoke_)
        std::memcpy(buf_, o.buf_, Capacity);
    }
    return *this;
  }
  InlineFn& operator=(InlineFn&& o) noexcept {
    if (this != &o) {
      reset();
      invoke_ = o.invoke_;
      manage_ = o.manage_;
      if (manage_)
        manage_(Op::kMoveTo, o.buf_, buf_);
      else if (invoke_)
        std::memcpy(buf_, o.buf_, Capacity);
      o.invoke_ = nullptr;
      o.manage_ = nullptr;
    }
    return *this;
  }
  InlineFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }
  ~InlineFn() { reset(); }

  // Invokes the stored target (debug-asserted non-empty).
  R operator()(Args... args) const {
    assert(invoke_ && "invoking an empty InlineFn");
    return invoke_(buf_, std::forward<Args>(args)...);
  }

  // True when a target is stored.
  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  // Destroys the target, leaving the function empty.
  void reset() noexcept {
    if (manage_) manage_(Op::kDestroy, buf_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

 private:
  enum class Op : std::uint8_t { kDestroy, kMoveTo, kCopyTo };
  using Invoke = R (*)(void*, Args...);
  using Manage = void (*)(Op, void*, void*);

  alignas(std::max_align_t) mutable unsigned char buf_[Capacity];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace ntier::sim
