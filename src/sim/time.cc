#include "sim/time.h"

#include <cstdio>

namespace ntier::sim {

std::string to_string(Duration d) {
  char buf[64];
  const std::int64_t us = d.count_micros();
  if (us % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%llds", static_cast<long long>(us / 1'000'000));
  } else if (us % 1000 == 0) {
    std::snprintf(buf, sizeof buf, "%lldms", static_cast<long long>(us / 1000));
  } else {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(us));
  }
  return buf;
}

std::string to_string(Time t) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3fs", t.to_seconds());
  return buf;
}

}  // namespace ntier::sim
