#include "graph/topology.h"

#include "net/protocol.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstddef>
#include <deque>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace ntier::graph {

namespace {

// "60us" / "2ms" / "1.5s" -> Duration (integral microseconds).
bool parse_duration_tok(const std::string& s, sim::Duration& out) {
  std::size_t i = 0;
  while (i < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.'))
    ++i;
  if (i == 0 || i == s.size()) return false;
  double value = 0.0;
  try {
    value = std::stod(s.substr(0, i));
  } catch (const std::exception&) {
    return false;
  }
  const std::string unit = s.substr(i);
  double scale_us = 0.0;
  if (unit == "us") scale_us = 1.0;
  else if (unit == "ms") scale_us = 1e3;
  else if (unit == "s") scale_us = 1e6;
  else return false;
  out = sim::Duration::micros(static_cast<std::int64_t>(std::llround(value * scale_us)));
  return true;
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream in(line);
  std::string t;
  while (in >> t) toks.push_back(t);
  return toks;
}

std::vector<std::string> split_on(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(cur);
  return parts;
}

[[noreturn]] void fail(int lineno, const std::string& why) {
  throw std::invalid_argument("topology line " + std::to_string(lineno) + ": " + why);
}

std::vector<server::WorkStep> parse_work(const std::string& spec, int lineno) {
  std::vector<server::WorkStep> steps;
  for (const std::string& tok : split_on(spec, ',')) {
    if (tok == "down") {
      steps.push_back({server::WorkStep::Kind::kDownstream, sim::Duration::zero()});
      continue;
    }
    const auto colon = tok.find(':');
    if (colon == std::string::npos) fail(lineno, "bad work step '" + tok + "'");
    const std::string kind = tok.substr(0, colon);
    sim::Duration amount;
    if (!parse_duration_tok(tok.substr(colon + 1), amount))
      fail(lineno, "bad duration in work step '" + tok + "'");
    if (kind == "cpu") {
      steps.push_back({server::WorkStep::Kind::kCpu, amount});
    } else if (kind == "disk") {
      steps.push_back({server::WorkStep::Kind::kDisk, amount});
    } else {
      fail(lineno, "unknown work step kind '" + kind + "'");
    }
  }
  return steps;
}

std::uint64_t parse_u64(const std::string& s, int lineno, const std::string& what) {
  try {
    return std::stoull(s);
  } catch (const std::exception&) {
    fail(lineno, "bad " + what + " '" + s + "'");
  }
}

NodeSpec parse_node(const std::vector<std::string>& toks, int lineno) {
  if (toks.size() < 2) fail(lineno, "node needs a name");
  NodeSpec spec;
  spec.name = toks[1];
  bool have_work = false;
  for (std::size_t i = 2; i < toks.size(); ++i) {
    const std::string& attr = toks[i];
    const auto eq = attr.find('=');
    if (eq == std::string::npos) {
      if (attr == "disk") {
        spec.has_disk = true;
        continue;
      }
      fail(lineno, "unknown node flag '" + attr + "'");
    }
    const std::string key = attr.substr(0, eq);
    const std::string val = attr.substr(eq + 1);
    if (key == "kind") {
      if (val == "sync") spec.kind = NodeSpec::Kind::kSync;
      else if (val == "async") spec.kind = NodeSpec::Kind::kAsync;
      else if (val == "staged") spec.kind = NodeSpec::Kind::kStaged;
      else fail(lineno, "unknown node kind '" + val + "'");
    } else if (key == "replicas") {
      spec.replicas = parse_u64(val, lineno, "replicas");
    } else if (key == "lb") {
      if (!parse_lb(val, spec.lb)) fail(lineno, "unknown lb policy '" + val + "'");
    } else if (key == "sched") {
      if (!parse_sched(val, spec.sched)) fail(lineno, "unknown sched '" + val + "'");
    } else if (key == "vcpus") {
      spec.vcpus = static_cast<int>(parse_u64(val, lineno, "vcpus"));
    } else if (key == "threads") {
      spec.sync.threads_per_process = parse_u64(val, lineno, "threads");
    } else if (key == "backlog") {
      spec.sync.backlog = parse_u64(val, lineno, "backlog");
    } else if (key == "dbpool") {
      spec.sync.db_pool = parse_u64(val, lineno, "dbpool");
    } else if (key == "liteq") {
      spec.async_cfg.lite_q_depth = parse_u64(val, lineno, "liteq");
    } else if (key == "active") {
      spec.async_cfg.max_active = parse_u64(val, lineno, "active");
    } else if (key == "stage_threads") {
      spec.staged_cfg.ingress.threads = parse_u64(val, lineno, "stage_threads");
      spec.staged_cfg.continuation.threads = spec.staged_cfg.ingress.threads;
    } else if (key == "stage_queue") {
      spec.staged_cfg.ingress.queue_cap = parse_u64(val, lineno, "stage_queue");
      spec.staged_cfg.continuation.queue_cap = spec.staged_cfg.ingress.queue_cap;
    } else if (key == "work") {
      spec.work = parse_work(val, lineno);
      have_work = true;
    } else {
      fail(lineno, "unknown node attribute '" + key + "'");
    }
  }
  if (!have_work) fail(lineno, "node '" + spec.name + "' has no work= program");
  // A disk work step implies the device even without the `disk` flag.
  for (const auto& st : spec.work)
    if (st.kind == server::WorkStep::Kind::kDisk) spec.has_disk = true;
  return spec;
}

}  // namespace

int node_index(const GraphConfig& cfg, const std::string& name) {
  for (std::size_t i = 0; i < cfg.nodes.size(); ++i)
    if (cfg.nodes[i].name == name) return static_cast<int>(i);
  return -1;
}

std::vector<int> out_edges(const GraphConfig& cfg, int node) {
  std::vector<int> out;
  for (const EdgeSpec& e : cfg.edges)
    if (e.from == node) out.push_back(e.to);
  return out;
}

bool is_chain(const GraphConfig& cfg) {
  const std::size_t n = cfg.nodes.size();
  for (const NodeSpec& spec : cfg.nodes)
    if (spec.replicas != 1) return false;
  // A per-edge protocol override needs per-route transports, which the
  // connect_downstream fast path cannot express.
  for (const EdgeSpec& e : cfg.edges)
    if (!e.proto.empty()) return false;
  if (cfg.edges.size() != (n == 0 ? 0 : n - 1)) return false;
  // Every consecutive pair linked, and no other edges — order-free.
  std::vector<bool> seen(n, false);
  for (const EdgeSpec& e : cfg.edges) {
    if (e.to != e.from + 1) return false;
    if (e.from < 0 || static_cast<std::size_t>(e.from) >= n) return false;
    if (seen[e.from]) return false;
    seen[e.from] = true;
  }
  return true;
}

GraphConfig parse_topology(const std::string& text) {
  GraphConfig cfg;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  std::unordered_map<std::string, int> by_name;
  while (std::getline(in, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    const std::vector<std::string> toks = split_ws(line);
    if (toks.empty()) continue;
    const std::string& kw = toks[0];
    auto want = [&](std::size_t n) {
      if (toks.size() != n)
        fail(lineno, "'" + kw + "' takes " + std::to_string(n - 1) + " argument(s)");
    };
    auto dur_arg = [&](const std::string& tok) {
      sim::Duration d;
      if (!parse_duration_tok(tok, d)) fail(lineno, "bad duration '" + tok + "'");
      return d;
    };
    if (kw == "graph") {
      want(2);
      cfg.name = toks[1];
    } else if (kw == "seed") {
      want(2);
      cfg.seed = parse_u64(toks[1], lineno, "seed");
    } else if (kw == "duration") {
      want(2);
      cfg.duration = dur_arg(toks[1]);
    } else if (kw == "sessions") {
      want(2);
      cfg.workload.sessions = parse_u64(toks[1], lineno, "session count");
    } else if (kw == "think") {
      want(2);
      cfg.workload.mean_think = dur_arg(toks[1]);
    } else if (kw == "link") {
      want(2);
      cfg.link_latency = dur_arg(toks[1]);
    } else if (kw == "proto") {
      want(2);
      const auto p = net::ProtocolProfile::by_name(toks[1]);
      if (!p) fail(lineno, "unknown protocol profile '" + toks[1] + "'");
      cfg.protocol = toks[1];
      cfg.tier_rto = p->rto;
      cfg.workload.client_rto = p->rto;
      cfg.admission = p->admission;
      cfg.cookie_penalty = p->cookie_penalty;
      core::apply_app_recovery(cfg.workload.client_policy, *p);
      core::apply_app_recovery(cfg.tier_policy, *p);
    } else if (kw == "burst") {
      want(4);
      try {
        cfg.workload.burst_index = std::stod(toks[1]);
      } catch (const std::exception&) {
        fail(lineno, "bad burst index '" + toks[1] + "'");
      }
      cfg.workload.burst_dwell = dur_arg(toks[2]);
      cfg.workload.normal_dwell = dur_arg(toks[3]);
    } else if (kw == "node") {
      NodeSpec spec = parse_node(toks, lineno);
      if (by_name.count(spec.name)) fail(lineno, "duplicate node '" + spec.name + "'");
      by_name[spec.name] = static_cast<int>(cfg.nodes.size());
      cfg.nodes.push_back(std::move(spec));
    } else if (kw == "edge") {
      if (toks.size() != 3 && toks.size() != 4)
        fail(lineno, "'edge' takes 2 node names and an optional proto=<name>");
      const auto from = by_name.find(toks[1]);
      const auto to = by_name.find(toks[2]);
      if (from == by_name.end()) fail(lineno, "edge from unknown node '" + toks[1] + "'");
      if (to == by_name.end()) fail(lineno, "edge to unknown node '" + toks[2] + "'");
      EdgeSpec e{from->second, to->second, {}};
      if (toks.size() == 4) {
        const std::string& attr = toks[3];
        const auto eq = attr.find('=');
        if (eq == std::string::npos || attr.substr(0, eq) != "proto")
          fail(lineno, "unknown edge attribute '" + attr + "'");
        e.proto = attr.substr(eq + 1);
        if (!net::ProtocolProfile::by_name(e.proto))
          fail(lineno, "unknown protocol profile '" + e.proto + "'");
      }
      cfg.edges.push_back(std::move(e));
    } else if (kw == "freeze") {
      // freeze <node> [replica=N] [first=<dur>] [period=<dur>] [pause=<dur>]
      if (toks.size() < 2) fail(lineno, "freeze needs a node name");
      const auto it = by_name.find(toks[1]);
      if (it == by_name.end()) fail(lineno, "freeze of unknown node '" + toks[1] + "'");
      cfg.freeze_node = it->second;
      for (std::size_t i = 2; i < toks.size(); ++i) {
        const auto eq = toks[i].find('=');
        if (eq == std::string::npos) fail(lineno, "bad freeze attribute '" + toks[i] + "'");
        const std::string key = toks[i].substr(0, eq);
        const std::string val = toks[i].substr(eq + 1);
        if (key == "replica") {
          cfg.freeze_replica = static_cast<int>(parse_u64(val, lineno, "replica"));
        } else if (key == "first") {
          cfg.freeze.first = sim::Time::origin() + dur_arg(val);
        } else if (key == "period") {
          cfg.freeze.period = dur_arg(val);
        } else if (key == "pause") {
          cfg.freeze.pause = dur_arg(val);
        } else {
          fail(lineno, "unknown freeze attribute '" + key + "'");
        }
      }
    } else {
      fail(lineno, "unknown directive '" + kw + "'");
    }
  }
  return cfg;
}

std::string invalid_reason(const GraphConfig& cfg) {
  auto why = [&cfg](const std::string& msg) { return "graph '" + cfg.name + "': " + msg; };
  const std::size_t n = cfg.nodes.size();
  if (n == 0) return why("a graph needs at least one node");
  if (cfg.duration <= sim::Duration::zero()) return why("duration must be positive");
  if (cfg.sample_window <= sim::Duration::zero())
    return why("sample_window must be positive");
  if (cfg.link_latency < sim::Duration::zero())
    return why("link_latency cannot be negative");

  std::unordered_set<std::string> names;
  for (const NodeSpec& t : cfg.nodes) {
    if (t.name.empty()) return why("a node has an empty name");
    if (!names.insert(t.name).second) return why("duplicate node name '" + t.name + "'");
    if (t.vcpus <= 0) return why("node '" + t.name + "' has no vCPUs");
    if (t.replicas == 0) return why("node '" + t.name + "' has zero replicas");
    if (t.work.empty()) return why("node '" + t.name + "' has an empty work program");
    switch (t.kind) {
      case NodeSpec::Kind::kSync:
        if (t.sync.threads_per_process == 0)
          return why("node '" + t.name + "' has an empty thread pool");
        if (t.sync.backlog == 0) return why("node '" + t.name + "' has a zero TCP backlog");
        break;
      case NodeSpec::Kind::kAsync:
        if (t.async_cfg.lite_q_depth == 0)
          return why("node '" + t.name + "' has a zero LiteQDepth");
        if (t.async_cfg.max_active == 0)
          return why("node '" + t.name + "' allows no active requests");
        break;
      case NodeSpec::Kind::kStaged:
        if (t.staged_cfg.ingress.threads == 0 || t.staged_cfg.continuation.threads == 0)
          return why("node '" + t.name + "' has an empty stage thread pool");
        break;
    }
    if (t.sched == Sched::kEdf && t.kind != NodeSpec::Kind::kSync)
      return why("node '" + t.name + "' wants EDF but only sync nodes queue by deadline");
    for (const auto& st : t.work)
      if (st.kind == server::WorkStep::Kind::kDisk && !t.has_disk)
        return why("node '" + t.name + "' has a disk step but no disk");
    const std::string ov = policy::overload::invalid_reason(t.overload);
    if (!ov.empty()) return why("node '" + t.name + "' overload: " + ov);
  }

  const int ni = static_cast<int>(n);
  std::vector<int> indeg(n, 0);
  std::vector<std::vector<int>> adj(n);
  std::unordered_set<std::int64_t> edge_keys;
  for (const EdgeSpec& e : cfg.edges) {
    if (e.from < 0 || e.from >= ni || e.to < 0 || e.to >= ni)
      return why("an edge references a node outside the graph");
    if (e.from == e.to)
      return why("node '" + cfg.nodes[e.from].name + "' has a self-edge");
    const std::int64_t key = static_cast<std::int64_t>(e.from) * ni + e.to;
    if (!edge_keys.insert(key).second)
      return why("duplicate edge " + cfg.nodes[e.from].name + " -> " + cfg.nodes[e.to].name);
    adj[e.from].push_back(e.to);
    ++indeg[e.to];
  }
  if (indeg[0] != 0)
    return why("entry node '" + cfg.nodes[0].name + "' has an incoming edge");
  if (cfg.nodes[0].replicas != 1)
    return why("entry node '" + cfg.nodes[0].name + "' cannot be replicated");

  // Protocol profiles: the graph-wide name and every per-edge override
  // must resolve, and all edges into one node must agree on the
  // receiver's admission mode (admission belongs to the receiving
  // server, not to one route).
  if (!cfg.protocol.empty() && !net::ProtocolProfile::by_name(cfg.protocol))
    return why("unknown protocol profile '" + cfg.protocol + "'");
  {
    std::vector<int> node_adm(n, -1);
    for (const EdgeSpec& e : cfg.edges) {
      net::AdmissionMode m = cfg.admission;
      if (!e.proto.empty()) {
        const auto p = net::ProtocolProfile::by_name(e.proto);
        if (!p)
          return why("edge " + cfg.nodes[e.from].name + " -> " + cfg.nodes[e.to].name +
                     ": unknown protocol profile '" + e.proto + "'");
        m = p->admission;
      }
      int& cur = node_adm[static_cast<std::size_t>(e.to)];
      if (cur >= 0 && cur != static_cast<int>(m))
        return why("node '" + cfg.nodes[e.to].name +
                   "' receives edges with conflicting admission modes");
      cur = static_cast<int>(m);
    }
  }

  // Kahn's algorithm: a leftover node means a cycle.
  {
    std::vector<int> deg = indeg;
    std::deque<int> ready;
    for (int i = 0; i < ni; ++i)
      if (deg[i] == 0) ready.push_back(i);
    int seen = 0;
    while (!ready.empty()) {
      const int u = ready.front();
      ready.pop_front();
      ++seen;
      for (int v : adj[u])
        if (--deg[v] == 0) ready.push_back(v);
    }
    if (seen != ni) return why("the edge set contains a cycle");
  }
  // Reachability from the entry node.
  {
    std::vector<bool> reach(n, false);
    std::deque<int> bfs{0};
    reach[0] = true;
    while (!bfs.empty()) {
      const int u = bfs.front();
      bfs.pop_front();
      for (int v : adj[u])
        if (!reach[v]) {
          reach[v] = true;
          bfs.push_back(v);
        }
    }
    for (int i = 0; i < ni; ++i)
      if (!reach[i])
        return why("node '" + cfg.nodes[i].name + "' is unreachable from the entry");
  }
  // A node dispatches downstream iff it has somewhere to dispatch to.
  for (int i = 0; i < ni; ++i) {
    std::size_t down_steps = 0;
    for (const auto& st : cfg.nodes[i].work)
      if (st.kind == server::WorkStep::Kind::kDownstream) ++down_steps;
    if (adj[i].empty() && down_steps > 0)
      return why("node '" + cfg.nodes[i].name + "' has a downstream step but no out-edge");
    if (!adj[i].empty() && down_steps == 0)
      return why("node '" + cfg.nodes[i].name + "' has out-edges but no downstream step");
  }

  const core::WorkloadConfig& w = cfg.workload;
  if (w.sessions == 0) return why("workload needs at least one session");
  if (w.mean_think <= sim::Duration::zero()) return why("mean_think must be positive");
  if (w.client_timeout > sim::Duration::zero() && w.client_timeout < w.client_rto.rto(0))
    return why("client_timeout shorter than one retransmission timeout");
  std::string bad = policy::invalid_reason(w.client_policy);
  if (!bad.empty()) return why("client_policy: " + bad);
  bad = policy::invalid_reason(cfg.tier_policy);
  if (!bad.empty()) return why("tier_policy: " + bad);
  bad = fault::invalid_reason(cfg.faults);
  if (!bad.empty()) return why(bad);

  // Fault indices address flattened replicas; hop 0 is the client link.
  int flat = 0;
  for (const NodeSpec& t : cfg.nodes) flat += static_cast<int>(t.replicas);
  int hops = 1;
  if (is_chain(cfg)) {
    hops += ni - 1;
  } else {
    for (int i = 0; i < ni; ++i)
      hops += static_cast<int>(cfg.nodes[i].replicas * adj[i].size());
  }
  for (const auto& c : cfg.faults.crashes)
    if (c.tier >= flat) return why("fault: crash tier index beyond the graph");
  for (const auto& l : cfg.faults.links)
    if (l.hop >= hops) return why("fault: link hop index beyond the graph");
  for (const auto& s : cfg.faults.slow_nodes)
    if (s.tier >= flat) return why("fault: slow-node tier index beyond the graph");

  if (cfg.freeze_node >= ni) return why("freeze_node index beyond the graph");
  if (cfg.freeze_node >= 0 && cfg.freeze_replica >= 0 &&
      static_cast<std::size_t>(cfg.freeze_replica) >= cfg.nodes[cfg.freeze_node].replicas)
    return why("freeze_replica index beyond the node's replicas");
  return "";
}

void validate(const GraphConfig& cfg) {
  const std::string bad = invalid_reason(cfg);
  if (!bad.empty()) throw std::invalid_argument(bad);
}

}  // namespace ntier::graph
