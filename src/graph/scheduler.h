// Per-node scheduler and load-balancer menu for service graphs.
//
// Two pluggable decisions per graph node (docs/TOPOLOGY.md):
//  - the *queue discipline* (Sched) a replica uses to pick the next
//    queued request when a worker frees — FCFS (the paper's accept
//    queue) or EDF (earliest absolute deadline first, composed with the
//    tail-policy layer's deadline stamping);
//  - the *load-balancer policy* (LbPolicy) a replicated node group uses
//    to pick the destination replica for each delivery attempt — round-
//    robin, uniform random, or power-of-two-choices on instantaneous
//    queued-request depth (the classic balanced-allocations result:
//    two random probes, keep the shorter queue).
//
// ReplicaGroup is the balancer itself: a stateful picker shared by every
// upstream route that targets the group, so round-robin rotation and
// p2c probe draws are global across senders, exactly like a fronting
// L4 balancer. Picks re-run on every attempt (retransmit, policy retry,
// hedge copy), which is what lets hedging reproduce the replication
// helps-then-hurts crossover on a loaded group.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "server/server_base.h"
#include "sim/random.h"

namespace ntier::graph {

// Queue discipline a node's replicas apply to their ingress backlog.
enum class Sched {
  kFcfs,  // arrival order (default; the paper's TCP accept queue)
  kEdf,   // earliest deadline first (sync nodes only; needs deadlines)
};

// How a replicated node group picks the replica for one delivery
// attempt.
enum class LbPolicy {
  kRoundRobin,  // rotate through replicas in declaration order
  kRandom,      // uniform random replica per attempt
  kPowerOfTwo,  // two random probes, keep the lower queued_requests()
};

// Stable lowercase names ("fcfs"/"edf", "rr"/"random"/"p2c") used in
// exports and error messages.
const char* to_string(Sched s);
const char* to_string(LbPolicy p);
// Parse the TOPOLOGY.md keyword ("fcfs"/"edf", "rr"/"random"/"p2c");
// returns false (out untouched) on an unknown keyword.
bool parse_sched(const std::string& s, Sched& out);
bool parse_lb(const std::string& s, LbPolicy& out);

// The load balancer in front of one node's replicas. pick() is called
// once per delivery attempt by every route targeting this group; state
// (rotation cursor, probe RNG) is shared across all callers.
class ReplicaGroup {
 public:
  // `rng` feeds random/p2c probes; fork it from the experiment master
  // seed so runs stay reproducible.
  ReplicaGroup(std::vector<server::Server*> replicas, LbPolicy lb, sim::Rng rng);

  // Chooses the replica for one attempt. Round-robin rotates; random
  // draws uniformly; p2c probes two distinct random replicas and keeps
  // the one with fewer queued requests (lower index wins ties). A
  // single-replica group returns it without consuming randomness.
  server::Server* pick();

  // Replica count, the configured policy, and direct replica access.
  std::size_t size() const { return replicas_.size(); }
  LbPolicy policy() const { return lb_; }
  server::Server* replica(std::size_t i) { return replicas_.at(i); }

 private:
  std::vector<server::Server*> replicas_;
  LbPolicy lb_;
  sim::Rng rng_;
  std::size_t rr_ = 0;  // round-robin cursor
};

}  // namespace ntier::graph
