#include "graph/graph_system.h"

#include <cassert>
#include <utility>

#include "net/link.h"
#include "net/protocol.h"
#include "telemetry/publish.h"

namespace ntier::graph {

namespace {

// Every request class runs the node's declared steps verbatim.
std::function<server::Program(const server::RequestClassProfile&)> program_from(
    const std::vector<server::WorkStep>& steps) {
  return [steps](const server::RequestClassProfile&) {
    return server::Program(steps.begin(), steps.end());
  };
}

std::string replica_name(const NodeSpec& spec, std::size_t r) {
  if (spec.replicas == 1) return spec.name;
  return spec.name + "#" + std::to_string(r);
}

}  // namespace

GraphSystem::GraphSystem(GraphConfig cfg)
    : cfg_(std::move(cfg)),
      rng_(cfg_.seed),
      registry_(cfg_.sample_window),
      sampler_(sim_, registry_, cfg_.sample_window) {
  assert(!cfg_.nodes.empty());
  const std::size_t n = cfg_.nodes.size();
  const bool chain = is_chain(cfg_);

  // Effective admission mode per node: the node's own SyncConfig unless
  // a graph-wide protocol (cfg_.admission) or an incoming edge's
  // `proto=` override says otherwise (validated consistent).
  std::vector<net::AdmissionMode> node_adm(n, cfg_.admission);
  std::vector<sim::Duration> node_cookie(n, cfg_.cookie_penalty);
  for (const EdgeSpec& e : cfg_.edges) {
    if (e.proto.empty()) continue;
    if (const auto p = net::ProtocolProfile::by_name(e.proto)) {
      node_adm[static_cast<std::size_t>(e.to)] = p->admission;
      node_cookie[static_cast<std::size_t>(e.to)] = p->cookie_penalty;
    }
  }

  // Components, node-major replica-minor — the same construction order
  // as ChainSystem when the graph is a chain (one replica per node).
  for (std::size_t i = 0; i < n; ++i) {
    const NodeSpec& spec = cfg_.nodes[i];
    flat_base_.push_back(servers_.size());
    for (std::size_t r = 0; r < spec.replicas; ++r) {
      const std::string name = replica_name(spec, r);
      hosts_.push_back(
          std::make_unique<cpu::HostCpu>(sim_, static_cast<double>(spec.vcpus)));
      vms_.push_back(hosts_.back()->add_vm(name, spec.vcpus));
      if (spec.has_disk) {
        disks_.push_back(std::make_unique<cpu::IoDevice>(sim_, name + ".disk"));
      } else {
        disks_.push_back(nullptr);
      }
      std::unique_ptr<server::Server> srv;
      switch (spec.kind) {
        case NodeSpec::Kind::kStaged:
          srv = std::make_unique<server::StagedServer>(sim_, name, vms_.back(),
                                                       &cfg_.profile,
                                                       program_from(spec.work),
                                                       spec.staged_cfg);
          break;
        case NodeSpec::Kind::kAsync:
          srv = std::make_unique<server::AsyncServer>(sim_, name, vms_.back(),
                                                      &cfg_.profile,
                                                      program_from(spec.work),
                                                      spec.async_cfg);
          break;
        case NodeSpec::Kind::kSync: {
          server::SyncConfig sc = spec.sync;
          sc.edf = (spec.sched == Sched::kEdf);
          if (node_adm[i] != net::AdmissionMode::kTcpDrop) {
            sc.admission = node_adm[i];
            sc.cookie_penalty = node_cookie[i];
          }
          srv = std::make_unique<server::SyncServer>(sim_, name, vms_.back(),
                                                     &cfg_.profile,
                                                     program_from(spec.work), sc);
          break;
        }
      }
      if (disks_.back()) srv->attach_io(disks_.back().get());
      servers_.push_back(std::move(srv));
    }
  }

  // Wiring. The chain path is the ChainSystem fast path: no balancers,
  // no extra RNG forks, connect_downstream in front-to-back order —
  // byte-identical artifacts per the chain-equivalence contract.
  net::Link link{cfg_.link_latency};
  if (chain) {
    for (std::size_t i = 0; i + 1 < n; ++i)
      servers_[i]->connect_downstream(servers_[i + 1].get(), cfg_.tier_rto, link);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<server::Server*> members;
      for (std::size_t r = 0; r < cfg_.nodes[i].replicas; ++r)
        members.push_back(servers_[flat_index(i, r)].get());
      groups_.push_back(std::make_unique<ReplicaGroup>(
          std::move(members), cfg_.nodes[i].lb, rng_.fork(100 + i)));
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t r = 0; r < cfg_.nodes[i].replicas; ++r) {
        server::Server* from = servers_[flat_index(i, r)].get();
        // Edge-declaration order (matches out_edges()); a per-edge
        // `proto=` swaps the retransmission timers of that route.
        for (const EdgeSpec& e : cfg_.edges) {
          if (e.from != static_cast<int>(i)) continue;
          const std::size_t j = static_cast<std::size_t>(e.to);
          ReplicaGroup* g = groups_[j].get();
          net::RtoPolicy rto = cfg_.tier_rto;
          if (!e.proto.empty())
            if (const auto p = net::ProtocolProfile::by_name(e.proto)) rto = p->rto;
          from->add_route([g] { return g->pick(); }, rto, link,
                          cfg_.nodes[j].name);
        }
      }
    }
  }

  if (cfg_.tier_policy.any()) {
    for (std::size_t f = 0; f < servers_.size(); ++f)
      if (servers_[f]->downstream() != nullptr || servers_[f]->route_count() > 0)
        servers_[f]->enable_tail_policy(cfg_.tier_policy, rng_.fork(10 + f));
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t r = 0; r < cfg_.nodes[i].replicas; ++r)
      servers_[flat_index(i, r)]->enable_overload_control(cfg_.nodes[i].overload);

  // Workload.
  const core::WorkloadConfig& w = cfg_.workload;
  if (w.burst_index > 1.0) {
    workload::BurstClock::Config bc;
    bc.burst_index = w.burst_index;
    bc.burst_dwell = w.burst_dwell;
    bc.normal_dwell = w.normal_dwell;
    burst_ = std::make_unique<workload::BurstClock>(sim_, rng_, bc);
  }
  if (cfg_.trace.mode != trace::TraceMode::kOff)
    tracer_ = std::make_unique<trace::Tracer>(cfg_.trace);
  workload::ClientConfig cc;
  cc.sessions = w.sessions;
  cc.mean_think = w.mean_think;
  cc.rto = w.client_rto;
  cc.link = net::Link{w.client_link};
  cc.trace_requests = w.trace_requests;
  cc.measure_from = w.measure_from;
  cc.timeout = w.client_timeout;
  cc.policy = w.client_policy;
  cc.tracer = tracer_.get();
  clients_ = std::make_unique<workload::ClientPool>(
      sim_, rng_.fork(1), &cfg_.profile, servers_[0].get(), cc, burst_.get());
  clients_->on_complete([this](const server::RequestPtr& r) {
    latency_.record(r);
    registry_.quantile("client.latency_ms").record(r->latency().to_millis());
  });

  if (cfg_.freeze_node >= 0) {
    assert(static_cast<std::size_t>(cfg_.freeze_node) < n);
    const NodeSpec& spec = cfg_.nodes[cfg_.freeze_node];
    for (std::size_t r = 0; r < spec.replicas; ++r) {
      if (cfg_.freeze_replica >= 0 && static_cast<std::size_t>(cfg_.freeze_replica) != r)
        continue;
      injectors_.push_back(std::make_unique<cpu::FreezeInjector>(
          sim_, vms_[flat_index(cfg_.freeze_node, r)], cfg_.freeze));
    }
  }

  for (std::size_t f = 0; f < servers_.size(); ++f) {
    sampler_.track_vm(vms_[f]->name(), vms_[f]);
    sampler_.track_server(servers_[f]->name(), servers_[f].get());
    if (disks_[f]) sampler_.track_io(disks_[f]->name(), disks_[f].get());
  }

  telemetry::publish_simulation(registry_, sim_);
  for (auto& srv : servers_) telemetry::publish_server(registry_, *srv);
  telemetry::publish_transport(registry_, "client", clients_->transport());
  for (auto& srv : servers_) {
    if (auto* t = srv->downstream_transport())
      telemetry::publish_transport(registry_, srv->name(), *t);
    for (std::size_t k = 0; k < srv->route_count(); ++k)
      telemetry::publish_transport(registry_, srv->name() + "->" + srv->route_label(k),
                                   *srv->route_transport(k));
  }
  if (const auto* g = clients_->governor()) telemetry::publish_governor(registry_, "client", *g);
  for (auto& srv : servers_) {
    if (const auto* g = srv->governor())
      telemetry::publish_governor(registry_, srv->name(), *g);
  }
  for (auto& srv : servers_) {
    if (const auto* c = srv->overload())
      telemetry::publish_overload(registry_, srv->name(), *c);
  }
  // SYN-cookie slow-path counter, only under that admission mode (the
  // default registry snapshot stays unchanged).
  for (auto& srv : servers_) {
    if (const auto* q = srv->accept_queue();
        q != nullptr && q->mode() == net::AdmissionMode::kSynCookies)
      telemetry::publish_accept_queue(registry_, srv->name(), *q);
  }

  if (!cfg_.faults.empty()) {
    fault::FaultTargets targets;
    for (auto& srv : servers_) targets.tiers.push_back(srv.get());
    for (auto& host : hosts_) targets.hosts.push_back(host.get());
    targets.hops.push_back(&clients_->transport());
    for (auto& srv : servers_) {
      if (auto* t = srv->downstream_transport()) targets.hops.push_back(t);
      for (std::size_t k = 0; k < srv->route_count(); ++k)
        targets.hops.push_back(srv->route_transport(k));
    }
    fault_injector_ = std::make_unique<fault::FaultInjector>(
        sim_, rng_.fork(20), cfg_.faults, std::move(targets));
  }

  if (cfg_.obs.enabled) {
    obs_ = std::make_unique<obs::IncidentMonitor>(cfg_.obs);
    obs::Bindings b;
    b.sampler = &sampler_;
    b.registry = &registry_;
    b.vlrt = &latency_.vlrt_per_window();
    b.tracer = tracer_.get();
    b.run_name = cfg_.name;
    b.groups = core::detector_groups(collect_signals(*this));
    obs_->attach(std::move(b));
  }
}

void GraphSystem::run() { run_until(sim_.now() + cfg_.duration); }

void GraphSystem::run_until(sim::Time t) {
  if (!started_) {
    started_ = true;
    sampler_.start();
    clients_->start();
    if (fault_injector_) fault_injector_->arm();
  }
  sim_.run_until(t);
}

std::uint64_t GraphSystem::total_drops() const {
  std::uint64_t acc = 0;
  for (const auto& s : servers_) acc += s->stats().dropped;
  return acc;
}

core::CtqoReport analyze_ctqo(GraphSystem& sys, core::AnalyzerOptions opt) {
  std::vector<core::TierView> tiers;
  for (std::size_t f = 0; f < sys.flat_count(); ++f) {
    core::TierView v;
    v.server = sys.server_flat(f);
    v.vm_prefix = sys.vm_flat(f)->name();
    if (sys.disk_flat(f) != nullptr) v.disk_prefix = sys.disk_flat(f)->name();
    tiers.push_back(std::move(v));
  }
  return core::analyze_tiers(tiers, sys.sampler(), opt);
}

core::SignalSet collect_signals(const GraphSystem& sys) {
  core::SignalSet s;
  s.registry = &sys.registry();
  s.vlrt = &sys.latency().vlrt_per_window();
  s.window = sys.sampler().window();
  for (std::size_t f = 0; f < sys.flat_count(); ++f) {
    core::TierSignals ts;
    ts.name = sys.server_flat(f)->name();
    if (sys.disk_flat(f) != nullptr)
      ts.saturation.push_back(sys.disk_flat(f)->name() + ".busy");
    const std::string vm = sys.vm_flat(f)->name();
    ts.saturation.push_back(vm + ".demand");
    ts.saturation.push_back(vm + ".stall");
    ts.dropped = ts.name + ".dropped";
    ts.queue = ts.name + ".queue";
    s.tiers.push_back(std::move(ts));
  }
  return s;
}

core::CorrelationReport correlate(const GraphSystem& sys, core::CorrelateOptions opt) {
  return core::correlate_signals(collect_signals(sys), opt);
}

namespace {

core::ManifestRun manifest_run(const GraphSystem& sys) {
  core::ManifestRun run;
  run.kind = "graph";
  run.name = sys.config().name;
  run.seed = sys.config().seed;
  run.duration = sys.config().duration;
  run.sample_window = sys.config().sample_window;
  run.sessions = sys.config().workload.sessions;
  for (std::size_t f = 0; f < sys.flat_count(); ++f)
    run.tiers.push_back(sys.server_flat(f)->name());
  run.total_drops = sys.total_drops();
  run.events_executed = sys.simulation().events_executed();
  run.latency = &sys.latency();
  run.registry = &sys.registry();
  return run;
}

}  // namespace

std::string run_manifest_json(const GraphSystem& sys, const core::CtqoReport* ctqo,
                              const obs::IncidentSummary* incidents) {
  return core::run_manifest_json(manifest_run(sys), ctqo, incidents);
}

std::string write_manifest(const GraphSystem& sys, const std::string& dir,
                           const core::CtqoReport* ctqo,
                           const obs::IncidentSummary* incidents) {
  return core::write_manifest(manifest_run(sys), dir, ctqo, incidents);
}

std::unique_ptr<GraphSystem> run_graph(const GraphConfig& cfg) {
  validate(cfg);
  auto sys = std::make_unique<GraphSystem>(cfg);
  sys->run();
  return sys;
}

}  // namespace ntier::graph
