// Declarative service-graph topologies: config model + text grammar.
//
// Generalizes the tier chain (core/chain.h) to an arbitrary service
// DAG: nodes carry a server model (sync / async / staged), a work
// program, pool sizing, an optional disk, a replica count with a
// load-balancer policy, and a queue discipline; edges carry fan-out
// semantics — a node with several out-edges contacts ALL of them in
// parallel inside one kDownstream step and resumes at the fan-in
// barrier once the last branch settles.
//
// Two ways to build a GraphConfig: programmatically (fill the structs),
// or from the small text grammar accepted by parse_topology() and
// documented in docs/TOPOLOGY.md:
//
//   graph diamond
//   seed 42
//   duration 30s
//   sessions 120
//   think 200ms
//   proto linux_modern
//   node front kind=sync threads=60 backlog=64 work=cpu:500us,down,cpu:200us
//   node auth  kind=async work=cpu:800us
//   node data  kind=sync replicas=3 lb=p2c work=cpu:1ms,disk:2ms
//   edge front auth
//   edge front data proto=erpc
//
// `proto <name>` applies a named protocol profile (net/protocol.h,
// docs/PROTOCOLS.md) graph-wide; `edge a b proto=<name>` overrides the
// timers of one route and the receiving node's admission mode.
//
// Chain-equivalence contract: a chain-shaped config (every node one
// replica, edges exactly i -> i+1) is wired through the same
// connect_downstream fast path as ChainSystem with the same RNG fork
// schedule, so its artifacts are byte-identical to the equivalent
// ChainConfig run at the same seed (enforced by tests and a CI cmp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "cpu/dvfs.h"
#include "fault/fault_injector.h"
#include "graph/scheduler.h"
#include "net/rto_policy.h"
#include "net/tcp_queue.h"
#include "policy/overload/overload.h"
#include "policy/tail_policy.h"
#include "server/app_profile.h"
#include "server/async_server.h"
#include "server/request.h"
#include "server/staged_server.h"
#include "server/sync_server.h"
#include "sim/time.h"
#include "trace/tracer.h"

namespace ntier::graph {

// One node of the service graph: server model, sizing, work program,
// replication, and scheduling knobs.
struct NodeSpec {
  std::string name;
  enum class Kind { kSync, kAsync, kStaged } kind = Kind::kSync;
  // Per-kind server configuration (only the active kind's is read).
  server::SyncConfig sync{};
  server::AsyncConfig async_cfg{};
  server::StagedConfig staged_cfg{};
  int vcpus = 1;
  // Replication: `replicas` copies behind one shared balancer applying
  // `lb` per delivery attempt. The entry node cannot be replicated.
  std::size_t replicas = 1;
  LbPolicy lb = LbPolicy::kPowerOfTwo;
  // Ingress queue discipline (EDF is sync-only; see scheduler.h).
  Sched sched = Sched::kFcfs;
  // The per-request work program. Every request class runs the same
  // steps; a kDownstream step fans out to ALL out-edges in parallel.
  std::vector<server::WorkStep> work;
  bool has_disk = false;  // attach an IoDevice for kDisk steps
  // Per-node overload control (applies to every replica).
  policy::overload::OverloadPolicy overload{};
};

// One directed edge: requests flow from `from`'s kDownstream step to
// `to` (indices into GraphConfig::nodes).
struct EdgeSpec {
  int from = 0;
  int to = 0;
  // Optional per-edge protocol profile (net/protocol.h) written as
  // `edge a b proto=erpc` in the grammar: overrides the retransmission
  // timers on this route and the *receiving* node's admission mode.
  // Empty = the graph-wide protocol. Every edge into one node must
  // agree on the receiver's admission mode (validated), and any
  // per-edge override takes the graph off the chain fast path.
  std::string proto;
};

// A whole graph experiment: topology plus the workload / fault / policy
// knobs shared with ChainConfig. Pure value; same config + seed =>
// same artifacts.
struct GraphConfig {
  // Run name, the node list (entry node FIRST — it faces the clients),
  // the edge list, and the request-class profile.
  std::string name = "graph";
  std::vector<NodeSpec> nodes;
  std::vector<EdgeSpec> edges;
  server::AppProfile profile = server::AppProfile::rubbos();
  // Load, inter-node networking, monitoring cadence, run length, seed.
  core::WorkloadConfig workload{};
  net::RtoPolicy tier_rto = net::RtoPolicy::fixed3s();
  sim::Duration link_latency = sim::Duration::micros(200);
  // Graph-wide protocol profile name ("" = the defaults below; set by
  // the grammar's `proto <name>` directive, which also rewrites
  // tier_rto, the client RTO, the admission fields, and — for
  // udp_apptimeout — the client/tier policy governors). Recorded so
  // tooling can tell which profile produced a run.
  std::string protocol;
  // Accept-queue overflow behaviour at sync nodes plus the SYN-cookie
  // slow-path CPU cost (net/tcp_queue.h); per-edge `proto=` overrides
  // the receiving node's mode.
  net::AdmissionMode admission = net::AdmissionMode::kTcpDrop;
  sim::Duration cookie_penalty = sim::Duration::zero();
  sim::Duration sample_window = sim::Duration::millis(50);
  sim::Duration duration = sim::Duration::seconds(30);
  std::uint64_t seed = 42;
  // Millibottleneck: periodic freeze of node `freeze_node` (-1 = none);
  // freeze_replica selects one replica (-1 = every replica freezes).
  int freeze_node = -1;
  int freeze_replica = -1;
  cpu::FreezeInjector::Config freeze{};
  // Tail-tolerance policy on every inter-node hop (see ChainConfig).
  policy::TailPolicy tier_policy{};
  // Deterministic fault schedule; tier indices address flattened
  // replicas (node-major, replica-minor), hop 0 is the client link.
  fault::FaultPlan faults{};
  // Distributed tracing (span trees across fan-out joins).
  trace::TraceConfig trace{};
  // Online incident detection + flight recorder (obs/incident_monitor.h);
  // the flight recorder engages only when tracing is enabled.
  obs::ObsConfig obs{};
};

// Node index by name; -1 when absent.
int node_index(const GraphConfig& cfg, const std::string& name);
// Out-edge destinations of `node`, in edge-declaration order.
std::vector<int> out_edges(const GraphConfig& cfg, int node);

// True when the graph is an unreplicated chain (edges exactly
// i -> i+1): such configs take the ChainSystem-identical wiring path.
bool is_chain(const GraphConfig& cfg);

// Why `cfg` is invalid, or "" when it is well-formed. Checks node/pool
// sanity, name uniqueness, edge validity, acyclicity (Kahn), entry and
// reachability constraints, work-program/edge agreement (a node has a
// kDownstream step iff it has out-edges), EDF-on-sync-only, and the
// workload/policy/fault/freeze knobs.
std::string invalid_reason(const GraphConfig& cfg);
// Throws std::invalid_argument with invalid_reason() when non-empty.
void validate(const GraphConfig& cfg);

// Parses the TOPOLOGY.md text grammar into a GraphConfig (syntax errors
// throw std::invalid_argument naming the offending line). The result is
// NOT auto-validated: callers compose further knobs programmatically,
// then validate()/run_graph() checks the finished config.
GraphConfig parse_topology(const std::string& text);

}  // namespace ntier::graph
