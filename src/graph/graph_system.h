// GraphSystem: a built service-graph experiment.
//
// Owns the simulation, one host/VM per replica, the servers, the
// replica-group balancers, clients, and monitors for one run of a
// GraphConfig. Construction wires everything; run() drives.
//
// Wiring takes one of two paths (the chain-equivalence contract,
// docs/TOPOLOGY.md):
//  - chain-shaped configs (is_chain) use connect_downstream with the
//    exact ChainSystem construction order and RNG fork schedule, so the
//    run is byte-identical to the equivalent ChainConfig;
//  - general DAGs build one shared ReplicaGroup per node and add one
//    fan-out Route per (sender replica, out-edge); a kDownstream step
//    then contacts every out-edge in parallel and the reply resumes at
//    the fan-in barrier. Replica picks re-run per delivery attempt
//    (retransmit / policy retry / hedge), which is what produces the
//    hedging helps-then-hurts crossover on a loaded replica group.
//
// Replica naming: an unreplicated node keeps its config name; replica r
// of a replicated node is "<name>#r" in telemetry and reports. Flat
// indices run node-major, replica-minor, front node first.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/correlate.h"
#include "core/ctqo_analyzer.h"
#include "core/manifest.h"
#include "cpu/dvfs.h"
#include "fault/fault_injector.h"
#include "cpu/host_core.h"
#include "cpu/io_device.h"
#include "graph/scheduler.h"
#include "graph/topology.h"
#include "monitor/sampler.h"
#include "monitor/vlrt_tracker.h"
#include "sim/random.h"
#include "sim/simulation.h"
#include "telemetry/registry.h"
#include "trace/tracer.h"
#include "workload/client.h"

namespace ntier::graph {

// A built graph: construction validates nothing (call validate() or use
// run_graph); non-copyable (components hold pointers into sim_).
class GraphSystem {
 public:
  // Builds the whole graph (hosts, replicas, balancers, routes, clients,
  // monitors) from cfg; call validate(cfg) first or use run_graph.
  explicit GraphSystem(GraphConfig cfg);
  GraphSystem(const GraphSystem&) = delete;
  GraphSystem& operator=(const GraphSystem&) = delete;

  // Runs to cfg.duration (run) or an arbitrary instant (run_until);
  // both start the workload on first call and may be resumed.
  void run();
  void run_until(sim::Time t);

  // The config the system was built from, and topology shape.
  const GraphConfig& config() const { return cfg_; }
  std::size_t node_count() const { return cfg_.nodes.size(); }
  std::size_t replica_count(std::size_t node) const { return cfg_.nodes.at(node).replicas; }
  // Total replicas across all nodes (= flat index space).
  std::size_t flat_count() const { return servers_.size(); }
  // Flat index of (node, replica): node-major, replica-minor.
  std::size_t flat_index(std::size_t node, std::size_t replica) const {
    return flat_base_.at(node) + replica;
  }

  // Per-replica component access, flat-indexed (front node first).
  server::Server* server_flat(std::size_t i) { return servers_.at(i).get(); }
  const server::Server* server_flat(std::size_t i) const { return servers_.at(i).get(); }
  server::Server* server(std::size_t node, std::size_t replica = 0) {
    return server_flat(flat_index(node, replica));
  }
  cpu::VmCpu* vm_flat(std::size_t i) { return vms_.at(i); }
  const cpu::VmCpu* vm_flat(std::size_t i) const { return vms_.at(i); }
  cpu::IoDevice* disk_flat(std::size_t i) { return disks_.at(i).get(); }
  const cpu::IoDevice* disk_flat(std::size_t i) const { return disks_.at(i).get(); }
  // The node's shared balancer; null on the chain-equivalence path
  // (chains have no balancers).
  ReplicaGroup* group(std::size_t node) {
    return groups_.empty() ? nullptr : groups_.at(node).get();
  }

  // Shared infrastructure: clock, sampler, telemetry, latency
  // collector, client pool, and the optional injectors/collectors.
  sim::Simulation& simulation() { return sim_; }
  const sim::Simulation& simulation() const { return sim_; }
  monitor::Sampler& sampler() { return sampler_; }
  const monitor::Sampler& sampler() const { return sampler_; }
  telemetry::Registry& registry() { return registry_; }
  const telemetry::Registry& registry() const { return registry_; }
  monitor::LatencyCollector& latency() { return latency_; }
  const monitor::LatencyCollector& latency() const { return latency_; }
  workload::ClientPool& clients() { return *clients_; }
  // First freeze injector (they all share one schedule); null when
  // cfg.freeze_node is -1.
  cpu::FreezeInjector* injector() {
    return injectors_.empty() ? nullptr : injectors_.front().get();
  }
  fault::FaultInjector* faults() { return fault_injector_.get(); }
  // Distributed-tracing collector; null when cfg.trace.mode is kOff.
  trace::Tracer* tracer() { return tracer_.get(); }
  const trace::Tracer* tracer() const { return tracer_.get(); }
  // Online incident detection; null when cfg.obs is disabled.
  obs::IncidentMonitor* obs() { return obs_.get(); }
  const obs::IncidentMonitor* obs() const { return obs_.get(); }

  // Dropped packets summed over every replica listen queue.
  std::uint64_t total_drops() const;

 private:
  GraphConfig cfg_;
  sim::Simulation sim_;
  sim::Rng rng_;
  telemetry::Registry registry_;
  std::vector<std::size_t> flat_base_;  // node -> first flat index
  std::vector<std::unique_ptr<cpu::HostCpu>> hosts_;
  std::vector<cpu::VmCpu*> vms_;
  std::vector<std::unique_ptr<cpu::IoDevice>> disks_;
  std::vector<std::unique_ptr<server::Server>> servers_;
  std::vector<std::unique_ptr<ReplicaGroup>> groups_;  // per node; empty for chains
  std::unique_ptr<workload::BurstClock> burst_;
  std::unique_ptr<trace::Tracer> tracer_;
  std::unique_ptr<workload::ClientPool> clients_;
  std::vector<std::unique_ptr<cpu::FreezeInjector>> injectors_;
  std::unique_ptr<fault::FaultInjector> fault_injector_;
  monitor::Sampler sampler_;
  monitor::LatencyCollector latency_;
  // Declared after every collector it reads so its (auto-finalizing)
  // destructor runs first.
  std::unique_ptr<obs::IncidentMonitor> obs_;
  bool started_ = false;
};

// CTQO analysis over a graph (same episode semantics as the chain
// analyzer; tier indices are flat replica indices, front node first).
core::CtqoReport analyze_ctqo(GraphSystem& sys,
                              core::AnalyzerOptions opt = core::AnalyzerOptions());

// Correlation-engine entry points (core/correlate.h) over a graph run:
// the per-replica saturation/queue/drop series in flat order. Declared
// here rather than in core because the graph layer sits above core.
core::SignalSet collect_signals(const GraphSystem& sys);
core::CorrelationReport correlate(const GraphSystem& sys,
                                  core::CorrelateOptions opt = core::CorrelateOptions());

// The reproducibility sidecar (core/manifest.h) for a graph run, kind
// "graph", tiers = flattened replica names.
std::string run_manifest_json(const GraphSystem& sys,
                              const core::CtqoReport* ctqo = nullptr,
                              const obs::IncidentSummary* incidents = nullptr);
std::string write_manifest(const GraphSystem& sys, const std::string& dir,
                           const core::CtqoReport* ctqo = nullptr,
                           const obs::IncidentSummary* incidents = nullptr);

// Builds and runs cfg.duration after validating; the system stays alive
// for inspection (mirrors run_chain for chain topologies).
std::unique_ptr<GraphSystem> run_graph(const GraphConfig& cfg);

}  // namespace ntier::graph
