#include "graph/scheduler.h"

#include <cassert>
#include <utility>

namespace ntier::graph {

const char* to_string(Sched s) {
  switch (s) {
    case Sched::kFcfs: return "fcfs";
    case Sched::kEdf: return "edf";
  }
  return "?";
}

const char* to_string(LbPolicy p) {
  switch (p) {
    case LbPolicy::kRoundRobin: return "rr";
    case LbPolicy::kRandom: return "random";
    case LbPolicy::kPowerOfTwo: return "p2c";
  }
  return "?";
}

bool parse_sched(const std::string& s, Sched& out) {
  if (s == "fcfs") { out = Sched::kFcfs; return true; }
  if (s == "edf") { out = Sched::kEdf; return true; }
  return false;
}

bool parse_lb(const std::string& s, LbPolicy& out) {
  if (s == "rr" || s == "roundrobin") { out = LbPolicy::kRoundRobin; return true; }
  if (s == "random") { out = LbPolicy::kRandom; return true; }
  if (s == "p2c") { out = LbPolicy::kPowerOfTwo; return true; }
  return false;
}

ReplicaGroup::ReplicaGroup(std::vector<server::Server*> replicas, LbPolicy lb,
                           sim::Rng rng)
    : replicas_(std::move(replicas)), lb_(lb), rng_(rng) {
  assert(!replicas_.empty());
}

server::Server* ReplicaGroup::pick() {
  const std::size_t n = replicas_.size();
  if (n == 1) return replicas_[0];
  switch (lb_) {
    case LbPolicy::kRoundRobin:
      return replicas_[rr_++ % n];
    case LbPolicy::kRandom:
      return replicas_[rng_.uniform_index(n)];
    case LbPolicy::kPowerOfTwo: {
      const std::size_t a = rng_.uniform_index(n);
      std::size_t b = rng_.uniform_index(n - 1);
      if (b >= a) ++b;  // second probe distinct from the first
      // Keep the shorter queue; on a tie the lower index wins so the
      // decision is deterministic given the two probes.
      const std::size_t qa = replicas_[a]->queued_requests();
      const std::size_t qb = replicas_[b]->queued_requests();
      if (qa != qb) return replicas_[qa < qb ? a : b];
      return replicas_[a < b ? a : b];
    }
  }
  return replicas_[0];
}

}  // namespace ntier::graph
