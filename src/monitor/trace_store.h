// TraceStore: retains completed requests for post-run micro analysis.
//
// Keeps a bounded reservoir of normal requests plus every anomalous one
// (dropped/failed/VLRT), so per-hop breakdowns can compare the two
// populations without holding the whole run in memory.
//
// Contract: feed every completed request once; `normal_capacity` bounds
// the clean-request sample (first-come, deterministic), anomalous
// requests are always kept. Thresholds and the per-hop timestamps it
// aggregates are simulated durations (µs resolution).
//
// Relation to src/trace/: this store predates the span-tree tracer and
// keeps only the coarse per-hop enter/leave timestamps already carried
// by every Request — enough for the population-level "time outside all
// tiers" comparison in examples/microanalysis, with zero sampling
// configuration. For per-request cause attribution (which queue, which
// RTO gap, which policy event) use trace::Tracer + critical_path
// instead (docs/TRACING.md).
#pragma once

#include <cstdint>
#include <vector>

#include "server/request.h"
#include "sim/time.h"

namespace ntier::monitor {

class TraceStore {
 public:
  struct Config {
    std::size_t normal_capacity = 2000;  // bounded sample of clean requests
    sim::Duration vlrt_threshold = sim::Duration::seconds(3);
  };

  explicit TraceStore(Config cfg);
  TraceStore();

  // ClientPool::on_complete-compatible.
  void record(const server::RequestPtr& req);

  const std::vector<server::RequestPtr>& normal() const { return normal_; }
  const std::vector<server::RequestPtr>& anomalous() const { return anomalous_; }
  std::uint64_t seen() const { return seen_; }

 private:
  Config cfg_;
  std::vector<server::RequestPtr> normal_;
  std::vector<server::RequestPtr> anomalous_;
  std::uint64_t seen_ = 0;
};

}  // namespace ntier::monitor
