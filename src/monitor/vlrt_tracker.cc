#include "monitor/vlrt_tracker.h"

namespace ntier::monitor {

LatencyCollector::LatencyCollector(Config cfg)
    : cfg_(cfg),
      hist_(cfg.histogram_bin, cfg.histogram_max),
      vlrt_("vlrt", cfg.vlrt_window),
      thpt_("throughput", cfg.throughput_window),
      quantiles_({50.0, 99.0}, cfg.throughput_window) {}

LatencyCollector::LatencyCollector() : LatencyCollector(Config()) {}

void LatencyCollector::record(const server::RequestPtr& req) {
  const sim::Duration lat = req->latency();
  ++completed_;
  hist_.record(lat);
  thpt_.add(req->completed, 1.0);
  quantiles_.record(req->completed, lat);
  if (req->class_index >= per_class_.size()) per_class_.resize(req->class_index + 1);
  ClassStats& cls = per_class_[req->class_index];
  ++cls.completed;
  if (req->total_drops > 0) {
    ++dropped_requests_;
    ++cls.dropped;
  }
  if (req->failed) ++failed_;
  if (lat >= cfg_.vlrt_threshold) {
    ++vlrt_count_;
    ++cls.vlrt;
    vlrt_.add(req->completed, 1.0);
  }
}

const LatencyCollector::ClassStats& LatencyCollector::class_stats(
    std::size_t class_index) const {
  static const ClassStats kEmpty{};
  return class_index < per_class_.size() ? per_class_[class_index] : kEmpty;
}

double LatencyCollector::throughput_rps(sim::Time from, sim::Time to) const {
  if (to <= from) return 0.0;
  return thpt_.mean_over(from, to) / cfg_.throughput_window.to_seconds();
}

metrics::LatencyDigest LatencyCollector::digest() const {
  metrics::LatencyDigest d;
  d.count = completed_;
  d.mean = hist_.mean();
  d.p50 = hist_.percentile(50);
  d.p99 = hist_.percentile(99);
  d.p999 = hist_.percentile(99.9);
  d.max = hist_.max();
  d.vlrt_count = vlrt_count_;
  return d;
}

}  // namespace ntier::monitor
