// collectl model: fine-grained monitoring whose own log flush causes
// millibottlenecks (paper §IV-B).
//
// The real collectl buffers 50 ms samples in memory and flushes the log
// to disk every 30 s; on the DB node that flush saturates the disk for
// a few hundred ms, stalling MySQL's I/O and creating the Fig 5 / Fig 11
// millibottleneck. The sampling itself is Sampler; this class models the
// flush side effect against the node's IoDevice.
//
// Contract: construction schedules the first flush at `first_flush`
// (simulated time) and every `flush_period` after it; each flush
// enqueues `bytes_per_flush` of FIFO disk work, whose occupancy time is
// bytes / the device's bandwidth (36 MiB ≈ 0.72 s at the Fig 5
// calibration). flush_times() records when each flush was issued.
#pragma once

#include <cstdint>
#include <vector>

#include "cpu/io_device.h"
#include "sim/simulation.h"

namespace ntier::monitor {

class Collectl {
 public:
  struct Config {
    sim::Duration flush_period = sim::Duration::seconds(30);
    std::uint64_t bytes_per_flush = 20ull * 1024 * 1024;
    sim::Time first_flush = sim::Time::from_seconds(10.0);
  };

  Collectl(sim::Simulation& sim, cpu::IoDevice* target, Config cfg);
  Collectl(sim::Simulation& sim, cpu::IoDevice* target);

  const std::vector<sim::Time>& flush_times() const { return flushes_; }
  std::uint64_t flushes_completed() const { return done_; }
  // How long one flush occupies the disk (for tests / calibration).
  sim::Duration flush_occupancy() const;

 private:
  void flush();

  sim::Simulation& sim_;
  cpu::IoDevice* target_;
  Config cfg_;
  std::vector<sim::Time> flushes_;
  std::uint64_t done_ = 0;
};

}  // namespace ntier::monitor
