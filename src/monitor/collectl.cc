#include "monitor/collectl.h"

namespace ntier::monitor {

Collectl::Collectl(sim::Simulation& sim, cpu::IoDevice* target, Config cfg)
    : sim_(sim), target_(target), cfg_(cfg) {
  sim_.at(cfg_.first_flush, [this] { flush(); }, sim::SchedClass::kTimer);
}

Collectl::Collectl(sim::Simulation& sim, cpu::IoDevice* target)
    : Collectl(sim, target, Config()) {}

void Collectl::flush() {
  flushes_.push_back(sim_.now());
  target_->submit(cfg_.bytes_per_flush, [this] { ++done_; });
  sim_.after(cfg_.flush_period, [this] { flush(); },
             sim::SchedClass::kTimer);
}

sim::Duration Collectl::flush_occupancy() const {
  // Transfer time at the device's sequential bandwidth; the device adds
  // its per-op latency on top.
  return sim::Duration::from_seconds(static_cast<double>(cfg_.bytes_per_flush) /
                                     (50.0 * 1024 * 1024));
}

}  // namespace ntier::monitor
