#include "monitor/trace_store.h"

namespace ntier::monitor {

TraceStore::TraceStore(Config cfg) : cfg_(cfg) {}
TraceStore::TraceStore() : TraceStore(Config()) {}

void TraceStore::record(const server::RequestPtr& req) {
  ++seen_;
  const bool anomalous =
      req->failed || req->total_drops > 0 || req->latency() >= cfg_.vlrt_threshold;
  if (anomalous) {
    anomalous_.push_back(req);
    return;
  }
  if (normal_.size() < cfg_.normal_capacity) normal_.push_back(req);
}

}  // namespace ntier::monitor
