// Latency collection: histograms, per-window VLRT counts, throughput.
//
// Feed it every completed request (ClientPool::on_complete) and it
// produces the paper's three per-run artifacts: the Fig 1 frequency
// histogram, the Fig 3(c)-style "# VLRT requests per 50 ms window"
// series, and throughput.
//
// Contract: record() must be called exactly once per finished request,
// at its completion instant; latencies are simulated durations. Window
// series are stamped at the window start, in completion time (a drop at
// t surfaces as VLRT mass near t + 3 s, when the retransmission
// returns): vlrt_per_window uses `vlrt_window` (50 ms) windows,
// throughput and the p50/p99 quantile series use `throughput_window`
// (1 s). A request counts as VLRT iff latency >= vlrt_threshold
// (the paper's 3 s line); counters are monotonic over one run.
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/histogram.h"
#include "metrics/quantile_timeline.h"
#include "metrics/summary.h"
#include "metrics/timeline.h"
#include "server/request.h"
#include "sim/simulation.h"

namespace ntier::monitor {

class LatencyCollector {
 public:
  struct Config {
    sim::Duration vlrt_threshold = sim::Duration::seconds(3);
    sim::Duration histogram_bin = sim::Duration::millis(100);
    sim::Duration histogram_max = sim::Duration::seconds(30);
    sim::Duration vlrt_window = sim::Duration::millis(50);
    sim::Duration throughput_window = sim::Duration::seconds(1);
  };

  explicit LatencyCollector(Config cfg);
  LatencyCollector();

  void record(const server::RequestPtr& req);

  const metrics::LinearHistogram& histogram() const { return hist_; }
  const metrics::Timeline& vlrt_per_window() const { return vlrt_; }
  const metrics::Timeline& throughput_per_window() const { return thpt_; }
  // Finalizes the open quantile window. Call once after the run, before
  // reading latency_quantile_series; idempotent.
  void flush() { quantiles_.flush(); }
  // True when there is no open quantile window (flush() ran, or nothing
  // was recorded since) — the precondition for reading the series.
  bool flushed() const { return quantiles_.flushed(); }
  // Per-second p50/p99 latency series. Contract: flush() first — the
  // last partial window is only included after flush(), and debug
  // builds assert on a pre-flush read.
  const metrics::Timeline& latency_quantile_series(double q) const {
    return quantiles_.series(q);
  }

  std::uint64_t completed() const { return completed_; }
  std::uint64_t vlrt_count() const { return vlrt_count_; }
  std::uint64_t dropped_request_count() const { return dropped_requests_; }
  std::uint64_t failed_count() const { return failed_; }
  sim::Duration vlrt_threshold() const { return cfg_.vlrt_threshold; }

  // Per-request-class counters (indexed by Request::class_index). The
  // paper's Fig 4 point: during upstream CTQO even static requests —
  // which never leave the web tier — queue and drop.
  struct ClassStats {
    std::uint64_t completed = 0;
    std::uint64_t vlrt = 0;
    std::uint64_t dropped = 0;  // requests with >= 1 dropped packet
  };
  const ClassStats& class_stats(std::size_t class_index) const;

  // Mean throughput between two instants (req/s).
  double throughput_rps(sim::Time from, sim::Time to) const;

  metrics::LatencyDigest digest() const;

 private:
  Config cfg_;
  metrics::LinearHistogram hist_;
  metrics::Timeline vlrt_;
  metrics::Timeline thpt_;
  metrics::QuantileTimeline quantiles_;
  std::uint64_t completed_ = 0;
  std::uint64_t vlrt_count_ = 0;
  std::uint64_t dropped_requests_ = 0;  // requests that saw >= 1 drop
  std::uint64_t failed_ = 0;
  std::vector<ClassStats> per_class_;
};

}  // namespace ntier::monitor
