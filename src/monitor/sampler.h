// Fine-grained resource monitor (the paper's 50 ms instrumentation).
//
// Samples tracked VMs, servers, and disks every window and materializes
// the paper's timeline series:
//   <vm>.cpu     — % of its vCPUs actually consumed
//   <vm>.demand  — % of windows with runnable work (pegs at 100 during a
//                  millibottleneck: the "CPU util" lines of Fig 3/7/8/9)
//   <vm>.stall   — % of window frozen with work pending
//   <srv>.queue  — queued requests inside the server (Fig 3(b), 5(b), ...)
//   <srv>.offered   — admission attempts/s, incl. TCP retransmits and
//                     policy retries (the retry-storm detector's input)
//   <srv>.completed — replies/s (the drain rate the offered rate must
//                     stay below for queues to shrink)
//   <srv>.dropped   — admission drops per window (count, not a rate:
//                     the correlation engine's drop-impulse series)
//   <io>.busy    — % of window the disk was busy (the I/O wait of Fig 5(a))
//
// All series live in the unified telemetry::Registry (telemetry/
// registry.h): the Sampler writes its lines there, and at each tick it
// also materializes every registered pull-probe (sim.events, headroom,
// retransmit rates, ...), so one registry holds the whole metric plane.
// Construct the Sampler over an external registry to share it with other
// publishers, or use the two-argument constructor for a self-contained
// one.
//
// Contract: call track_vm/track_server/track_io before start(); start()
// schedules a self-re-arming tick every `window` of simulated time (the
// paper's 50 ms). Each sample summarizes the window that just ended and
// is stamped at the window's START, so series indices align with wall
// time. Utilization values are percentages (0-100); rate series are
// per-second. Series are exposed as metrics::Timeline by name
// ("tomcat.queue") — docs/METRICS.md documents every one.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cpu/host_core.h"
#include "cpu/io_device.h"
#include "metrics/timeline.h"
#include "server/server_base.h"
#include "sim/simulation.h"
#include "telemetry/registry.h"

namespace ntier::monitor {

class Sampler {
 public:
  // Shares an externally owned registry (its window must match).
  Sampler(sim::Simulation& sim, telemetry::Registry& registry,
          sim::Duration window = sim::Duration::millis(50));
  // Self-contained: owns a private registry of the same window.
  explicit Sampler(sim::Simulation& sim, sim::Duration window = sim::Duration::millis(50));

  void track_vm(const std::string& prefix, cpu::VmCpu* vm);
  void track_server(const std::string& prefix, server::Server* srv);
  void track_io(const std::string& prefix, cpu::IoDevice* dev);

  // Begins periodic sampling (runs until the simulation stops).
  void start();

  // Registers an observer run at the END of every tick, inside the tick
  // event itself, after all series and probes for the window starting at
  // `wstart` are materialized. Hooks must schedule no events and draw no
  // randomness (DESIGN.md invariant 10) — they piggyback on the tick so
  // that adding one changes nothing about the event stream. The online
  // incident detectors (obs/incident_monitor.h) ride here.
  void add_tick_hook(std::function<void(sim::Time wstart)> hook);

  sim::Duration window() const { return window_; }
  telemetry::Registry& registry() { return *registry_; }
  const telemetry::Registry& registry() const { return *registry_; }
  // Series access by full name (e.g. "tomcat.queue"); throws if unknown.
  const metrics::Timeline& series(std::string_view name) const;
  bool has_series(std::string_view name) const;
  const std::vector<std::string_view>& series_names() const;

  // Windows where a VM's demand was pegged >= threshold% — the
  // millibottleneck marks used by the CTQO analyzer.
  std::vector<sim::Time> saturated_windows(const std::string& vm_prefix,
                                           double threshold_pct = 99.0) const;

 private:
  // Tracks hold interned series handles (resolved once in track_*), so
  // the periodic tick writes by array index — no per-tick string
  // concatenation or map lookups.
  struct VmTrack {
    cpu::VmCpu* vm;
    telemetry::SeriesHandle cpu, demand, stall;
    double last_busy = 0.0;
    double last_want = 0.0;
    double last_stall = 0.0;
  };
  struct IoTrack {
    cpu::IoDevice* dev;
    telemetry::SeriesHandle busy;
    double last_busy = 0.0;
  };
  struct ServerTrack {
    server::Server* srv;
    telemetry::SeriesHandle queue, offered, completed, dropped;
    std::uint64_t last_offered = 0;
    std::uint64_t last_completed = 0;
    std::uint64_t last_dropped = 0;
  };

  void tick();
  metrics::Timeline& line(std::string_view name);

  sim::Simulation& sim_;
  sim::Duration window_;
  bool started_ = false;
  std::unique_ptr<telemetry::Registry> owned_registry_;
  telemetry::Registry* registry_;
  std::vector<VmTrack> vms_;
  std::vector<ServerTrack> servers_;
  std::vector<IoTrack> ios_;
  std::vector<std::function<void(sim::Time)>> hooks_;
};

}  // namespace ntier::monitor
