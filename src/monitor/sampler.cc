#include "monitor/sampler.h"

#include <cassert>
#include <stdexcept>

namespace ntier::monitor {

Sampler::Sampler(sim::Simulation& sim, telemetry::Registry& registry, sim::Duration window)
    : sim_(sim), window_(window), registry_(&registry) {
  assert(registry.window() == window);
}

Sampler::Sampler(sim::Simulation& sim, sim::Duration window)
    : sim_(sim),
      window_(window),
      owned_registry_(std::make_unique<telemetry::Registry>(window)),
      registry_(owned_registry_.get()) {}

metrics::Timeline& Sampler::line(const std::string& name) { return registry_->series(name); }

void Sampler::track_vm(const std::string& prefix, cpu::VmCpu* vm) {
  vms_.push_back(VmTrack{prefix, vm, 0.0, 0.0, 0.0});
  line(prefix + ".cpu");
  line(prefix + ".demand");
  line(prefix + ".stall");
}

void Sampler::track_server(const std::string& prefix, server::Server* srv) {
  servers_.push_back(ServerTrack{prefix, srv, 0, 0, 0});
  line(prefix + ".queue");
  line(prefix + ".offered");
  line(prefix + ".completed");
  line(prefix + ".dropped");
}

void Sampler::track_io(const std::string& prefix, cpu::IoDevice* dev) {
  ios_.push_back(IoTrack{prefix, dev, 0.0});
  line(prefix + ".busy");
}

void Sampler::start() {
  if (started_) return;
  started_ = true;
  sim_.after(window_, [this] { tick(); });
}

void Sampler::tick() {
  const sim::Time now = sim_.now();
  // The sample summarizes the window that just ended: stamp it at the
  // window's start so series indices align with wall time.
  const sim::Time wstart = now - window_;
  const double win_s = window_.to_seconds();

  for (auto& t : vms_) {
    const double busy = t.vm->busy_core_seconds();
    const double want = t.vm->demand_seconds();
    const double stall = t.vm->stalled_seconds();
    line(t.prefix + ".cpu").set(wstart, 100.0 * (busy - t.last_busy) / win_s / t.vm->vcpus());
    line(t.prefix + ".demand").set(wstart, 100.0 * (want - t.last_want) / win_s);
    line(t.prefix + ".stall").set(wstart, 100.0 * (stall - t.last_stall) / win_s);
    t.last_busy = busy;
    t.last_want = want;
    t.last_stall = stall;
  }
  for (auto& t : servers_) {
    line(t.prefix + ".queue").set(wstart, static_cast<double>(t.srv->queued_requests()));
    const std::uint64_t off = t.srv->stats().offered;
    const std::uint64_t comp = t.srv->stats().completed;
    const std::uint64_t drop = t.srv->stats().dropped;
    line(t.prefix + ".offered").set(wstart, static_cast<double>(off - t.last_offered) / win_s);
    line(t.prefix + ".completed")
        .set(wstart, static_cast<double>(comp - t.last_completed) / win_s);
    line(t.prefix + ".dropped").set(wstart, static_cast<double>(drop - t.last_dropped));
    t.last_offered = off;
    t.last_completed = comp;
    t.last_dropped = drop;
  }
  for (auto& t : ios_) {
    const double busy = t.dev->busy_seconds_until(now);
    line(t.prefix + ".busy").set(wstart, 100.0 * (busy - t.last_busy) / win_s);
    t.last_busy = busy;
  }
  // Materialize every registered pull-probe for this window (sim.events,
  // headroom, retransmit rates, ... — see telemetry/publish.h).
  registry_->sample(wstart, win_s);
  sim_.after(window_, [this] { tick(); });
}

const metrics::Timeline& Sampler::series(const std::string& name) const {
  const metrics::Timeline* tl = registry_->find_series(name);
  if (tl == nullptr) throw std::out_of_range("Sampler: unknown series " + name);
  return *tl;
}

bool Sampler::has_series(const std::string& name) const { return registry_->has_series(name); }

std::vector<std::string> Sampler::series_names() const { return registry_->series_names(); }

std::vector<sim::Time> Sampler::saturated_windows(const std::string& vm_prefix,
                                                  double threshold_pct) const {
  return series(vm_prefix + ".demand").windows_at_least(threshold_pct);
}

}  // namespace ntier::monitor
