#include "monitor/sampler.h"

#include <cassert>
#include <stdexcept>

namespace ntier::monitor {

Sampler::Sampler(sim::Simulation& sim, telemetry::Registry& registry, sim::Duration window)
    : sim_(sim), window_(window), registry_(&registry) {
  assert(registry.window() == window);
}

Sampler::Sampler(sim::Simulation& sim, sim::Duration window)
    : sim_(sim),
      window_(window),
      owned_registry_(std::make_unique<telemetry::Registry>(window)),
      registry_(owned_registry_.get()) {}

metrics::Timeline& Sampler::line(std::string_view name) { return registry_->series(name); }

void Sampler::track_vm(const std::string& prefix, cpu::VmCpu* vm) {
  VmTrack t;
  t.vm = vm;
  t.cpu = registry_->intern_series(prefix + ".cpu");
  t.demand = registry_->intern_series(prefix + ".demand");
  t.stall = registry_->intern_series(prefix + ".stall");
  vms_.push_back(t);
}

void Sampler::track_server(const std::string& prefix, server::Server* srv) {
  ServerTrack t;
  t.srv = srv;
  t.queue = registry_->intern_series(prefix + ".queue");
  t.offered = registry_->intern_series(prefix + ".offered");
  t.completed = registry_->intern_series(prefix + ".completed");
  t.dropped = registry_->intern_series(prefix + ".dropped");
  servers_.push_back(t);
}

void Sampler::track_io(const std::string& prefix, cpu::IoDevice* dev) {
  IoTrack t;
  t.dev = dev;
  t.busy = registry_->intern_series(prefix + ".busy");
  ios_.push_back(t);
}

void Sampler::add_tick_hook(std::function<void(sim::Time)> hook) {
  hooks_.push_back(std::move(hook));
}

void Sampler::start() {
  if (started_) return;
  started_ = true;
  sim_.after(window_, [this] { tick(); }, sim::SchedClass::kTimer);
}

void Sampler::tick() {
  const sim::Time now = sim_.now();
  // The sample summarizes the window that just ended: stamp it at the
  // window's start so series indices align with wall time.
  const sim::Time wstart = now - window_;
  const double win_s = window_.to_seconds();

  for (auto& t : vms_) {
    const double busy = t.vm->busy_core_seconds();
    const double want = t.vm->demand_seconds();
    const double stall = t.vm->stalled_seconds();
    registry_->at(t.cpu).set(wstart, 100.0 * (busy - t.last_busy) / win_s / t.vm->vcpus());
    registry_->at(t.demand).set(wstart, 100.0 * (want - t.last_want) / win_s);
    registry_->at(t.stall).set(wstart, 100.0 * (stall - t.last_stall) / win_s);
    t.last_busy = busy;
    t.last_want = want;
    t.last_stall = stall;
  }
  for (auto& t : servers_) {
    registry_->at(t.queue).set(wstart, static_cast<double>(t.srv->queued_requests()));
    const std::uint64_t off = t.srv->stats().offered;
    const std::uint64_t comp = t.srv->stats().completed;
    const std::uint64_t drop = t.srv->stats().dropped;
    registry_->at(t.offered).set(wstart, static_cast<double>(off - t.last_offered) / win_s);
    registry_->at(t.completed)
        .set(wstart, static_cast<double>(comp - t.last_completed) / win_s);
    registry_->at(t.dropped).set(wstart, static_cast<double>(drop - t.last_dropped));
    t.last_offered = off;
    t.last_completed = comp;
    t.last_dropped = drop;
  }
  for (auto& t : ios_) {
    const double busy = t.dev->busy_seconds_until(now);
    registry_->at(t.busy).set(wstart, 100.0 * (busy - t.last_busy) / win_s);
    t.last_busy = busy;
  }
  // Materialize every registered pull-probe for this window (sim.events,
  // headroom, retransmit rates, ... — see telemetry/publish.h).
  registry_->sample(wstart, win_s);
  // Tick hooks (online detectors) run inside this event, after the
  // window is fully materialized — they add no events of their own.
  for (const auto& hook : hooks_) hook(wstart);
  sim_.after(window_, [this] { tick(); }, sim::SchedClass::kTimer);
}

const metrics::Timeline& Sampler::series(std::string_view name) const {
  const metrics::Timeline* tl = registry_->find_series(name);
  if (tl == nullptr)
    throw std::out_of_range("Sampler: unknown series " + std::string(name));
  return *tl;
}

bool Sampler::has_series(std::string_view name) const { return registry_->has_series(name); }

const std::vector<std::string_view>& Sampler::series_names() const {
  return registry_->series_names();
}

std::vector<sim::Time> Sampler::saturated_windows(const std::string& vm_prefix,
                                                  double threshold_pct) const {
  return series(vm_prefix + ".demand").windows_at_least(threshold_pct);
}

}  // namespace ntier::monitor
