// FaultInjector: binds a FaultPlan to a live system and executes it.
//
// Deterministic by construction: every window is scheduled up front from
// the plan's absolute times, and the only randomness (packet-loss draws
// on degraded links) comes from an injector-owned sim::Rng forked from
// the experiment master seed — so the same config + seed produces a
// bit-identical fault timeline and loss pattern.
#pragma once

#include <cstdint>
#include <vector>

#include "cpu/host_core.h"
#include "fault/fault_plan.h"
#include "net/transport.h"
#include "server/server_base.h"
#include "sim/random.h"
#include "sim/simulation.h"

namespace ntier::fault {

// Live attachment points, in tier order (0=web, 1=app, 2=db for the
// canonical 3-tier system; chains may be longer). `hops[0]` is the
// client's transport toward the front tier, `hops[i]` the transport of
// tier i-1 toward tier i.
struct FaultTargets {
  std::vector<server::Server*> tiers;
  std::vector<cpu::HostCpu*> hosts;
  std::vector<net::Transport*> hops;
};

class FaultInjector {
 public:
  struct Counters {
    std::uint64_t crashes = 0;       // crash windows begun
    std::uint64_t restarts = 0;      // crash windows ended
    std::uint64_t link_windows = 0;  // degradation windows begun
    std::uint64_t slow_windows = 0;  // slow-node windows begun
  };

  // Validates the plan against the targets (tier/hop indices in range);
  // asserts on mismatch. `rng` should be forked from the master seed.
  FaultInjector(sim::Simulation& sim, sim::Rng rng, FaultPlan plan, FaultTargets targets);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Schedules every window; call once before the run starts.
  void arm();

  const FaultPlan& plan() const { return plan_; }
  const Counters& counters() const { return counters_; }

 private:
  sim::Simulation& sim_;
  sim::Rng rng_;
  FaultPlan plan_;
  FaultTargets targets_;
  Counters counters_;
  bool armed_ = false;
  // Original host capacities, captured when a slow-node window begins.
  std::vector<double> base_capacity_;
  // Nested-window bookkeeping: restore only when the last window ends.
  std::vector<int> down_depth_;
  std::vector<int> degraded_depth_;
  std::vector<int> slow_depth_;
};

}  // namespace ntier::fault
