// FaultPlan: a declarative, replayable schedule of infrastructure faults.
//
// Pure value types — no pointers into the system — so a plan can live
// inside an ExperimentConfig and the same config + seed replays the
// exact same fault timeline (DESIGN.md invariant 9). The FaultInjector
// binds a plan to live targets at build time.
//
// Faults are the paper's "very short bottlenecks" pushed one level up:
// instead of transient CPU/I/O contention, whole components misbehave
// for bounded windows — a tier crashes and refuses connections, a link
// loses packets and stretches latency, a node runs at a fraction of its
// speed. Tail-tolerance policies are evaluated against these.
#pragma once

#include <string>
#include <vector>

#include "sim/time.h"

namespace ntier::fault {

// Tier index convention everywhere in this module: 0=web, 1=app, 2=db.

// The tier's server process is down for [at, at+down_for): every packet
// is refused (the sender's TCP stack retransmits, exactly like an
// admission drop), and queued-but-unstarted work is either reset with
// failure replies at crash time (kAbort: in-flight work lost) or left to
// drain through the still-running workers (kDrain: a graceful stop).
struct CrashWindow {
  int tier = 0;
  sim::Time at;
  sim::Duration down_for = sim::Duration::seconds(1);
  enum class InFlight { kAbort, kDrain };
  InFlight in_flight = InFlight::kAbort;
};

// The hop's link is degraded for [at, at+duration): each request packet
// is lost with `loss_prob` (drawn from the injector's own rng stream)
// and every traversal costs `extra_latency` more. hop 0 = client->web,
// hop i = tier i-1 -> tier i.
struct LinkDegradeWindow {
  int hop = 0;
  sim::Time at;
  sim::Duration duration = sim::Duration::seconds(1);
  double loss_prob = 0.1;
  sim::Duration extra_latency{};
};

// The tier's host runs at `speed_factor` of its capacity for
// [at, at+duration) — a slow node (thermal throttling, noisy neighbor,
// failing disk controller eating cycles).
struct SlowNodeWindow {
  int tier = 0;
  sim::Time at;
  sim::Duration duration = sim::Duration::seconds(1);
  double speed_factor = 0.25;
};

struct FaultPlan {
  std::vector<CrashWindow> crashes;
  std::vector<LinkDegradeWindow> links;
  std::vector<SlowNodeWindow> slow_nodes;

  bool empty() const { return crashes.empty() && links.empty() && slow_nodes.empty(); }
};

// Human-readable reason a plan is invalid; empty when fine. Used by
// core::validate().
std::string invalid_reason(const FaultPlan& plan);

}  // namespace ntier::fault
