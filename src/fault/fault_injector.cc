#include "fault/fault_injector.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace ntier::fault {

namespace {

// One (target, [at, end)) extent, for the overlap scan below.
struct Extent {
  int target;
  sim::Time at;
  sim::Time end;
};

// Two windows of the same kind on the same target must not overlap: the
// injector applies "latest settings win" within a window, so overlap
// would make the replayed timeline depend on schedule order rather than
// the plan. Touching windows (one ends exactly where the next starts)
// are fine. Returns the reason, or "" when disjoint.
std::string overlap_reason(std::vector<Extent> ws, const char* what) {
  std::sort(ws.begin(), ws.end(), [](const Extent& a, const Extent& b) {
    return a.target != b.target ? a.target < b.target : a.at < b.at;
  });
  for (std::size_t i = 1; i < ws.size(); ++i) {
    const Extent& prev = ws[i - 1];
    const Extent& next = ws[i];
    if (prev.target == next.target && next.at < prev.end) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "fault: overlapping %s windows on target %d "
                    "([%.3fs, %.3fs) vs one starting at %.3fs)",
                    what, prev.target, prev.at.to_seconds(),
                    prev.end.to_seconds(), next.at.to_seconds());
      return buf;
    }
  }
  return {};
}

}  // namespace

std::string invalid_reason(const FaultPlan& plan) {
  for (const auto& c : plan.crashes) {
    if (c.tier < 0) return "fault: crash window targets a negative tier index";
    if (c.down_for <= sim::Duration::zero())
      return "fault: crash window with non-positive down_for (a crash must last)";
  }
  for (const auto& l : plan.links) {
    if (l.hop < 0) return "fault: link window targets a negative hop index";
    if (l.duration <= sim::Duration::zero())
      return "fault: link degradation window with non-positive duration";
    if (l.loss_prob < 0.0 || l.loss_prob > 1.0)
      return "fault: link loss probability must be within [0, 1]";
    if (l.extra_latency < sim::Duration::zero())
      return "fault: link extra latency cannot be negative";
    if (l.loss_prob == 0.0 && l.extra_latency == sim::Duration::zero())
      return "fault: link degradation window degrades nothing "
             "(zero loss and zero extra latency)";
  }
  for (const auto& s : plan.slow_nodes) {
    if (s.tier < 0) return "fault: slow-node window targets a negative tier index";
    if (s.duration <= sim::Duration::zero())
      return "fault: slow-node window with non-positive duration";
    if (s.speed_factor <= 0.0 || s.speed_factor > 1.0)
      return "fault: slow-node speed_factor must be in (0, 1] "
             "(0 would halt the host forever; use a crash window instead)";
  }

  std::vector<Extent> ws;
  for (const auto& c : plan.crashes) ws.push_back({c.tier, c.at, c.at + c.down_for});
  std::string why = overlap_reason(std::move(ws), "crash");
  if (!why.empty()) return why;
  ws.clear();
  for (const auto& l : plan.links) ws.push_back({l.hop, l.at, l.at + l.duration});
  why = overlap_reason(std::move(ws), "link-degrade");
  if (!why.empty()) return why;
  ws.clear();
  for (const auto& s : plan.slow_nodes) ws.push_back({s.tier, s.at, s.at + s.duration});
  return overlap_reason(std::move(ws), "slow-node");
}

FaultInjector::FaultInjector(sim::Simulation& sim, sim::Rng rng, FaultPlan plan,
                             FaultTargets targets)
    : sim_(sim), rng_(std::move(rng)), plan_(std::move(plan)), targets_(std::move(targets)) {
  for ([[maybe_unused]] const auto& c : plan_.crashes)
    assert(c.tier >= 0 && static_cast<std::size_t>(c.tier) < targets_.tiers.size());
  for ([[maybe_unused]] const auto& l : plan_.links)
    assert(l.hop >= 0 && static_cast<std::size_t>(l.hop) < targets_.hops.size());
  for ([[maybe_unused]] const auto& s : plan_.slow_nodes)
    assert(s.tier >= 0 && static_cast<std::size_t>(s.tier) < targets_.hosts.size());
  base_capacity_.resize(targets_.hosts.size(), 0.0);
  down_depth_.assign(targets_.tiers.size(), 0);
  degraded_depth_.assign(targets_.hops.size(), 0);
  slow_depth_.assign(targets_.hosts.size(), 0);
}

void FaultInjector::arm() {
  assert(!armed_ && "FaultInjector::arm is one-shot");
  armed_ = true;

  for (const auto& c : plan_.crashes) {
    sim_.at(c.at, [this, c] {
      ++counters_.crashes;
      if (++down_depth_[c.tier] == 1) {
        targets_.tiers[c.tier]->set_down(true,
                                         c.in_flight == CrashWindow::InFlight::kAbort);
      }
    }, sim::SchedClass::kTimer);
    sim_.at(c.at + c.down_for, [this, c] {
      ++counters_.restarts;
      if (--down_depth_[c.tier] == 0) targets_.tiers[c.tier]->set_down(false);
    }, sim::SchedClass::kTimer);
  }

  for (const auto& l : plan_.links) {
    sim_.at(l.at, [this, l] {
      ++counters_.link_windows;
      // Overlapping windows on one hop: the latest settings win; the hop
      // restores when the last window ends.
      ++degraded_depth_[l.hop];
      targets_.hops[l.hop]->link().degrade(l.loss_prob, l.extra_latency, &rng_);
    }, sim::SchedClass::kTimer);
    sim_.at(l.at + l.duration, [this, l] {
      if (--degraded_depth_[l.hop] == 0) targets_.hops[l.hop]->link().restore();
    }, sim::SchedClass::kTimer);
  }

  for (const auto& s : plan_.slow_nodes) {
    sim_.at(s.at, [this, s] {
      ++counters_.slow_windows;
      cpu::HostCpu* host = targets_.hosts[s.tier];
      if (++slow_depth_[s.tier] == 1) base_capacity_[s.tier] = host->n_cores();
      // Overlapping slow windows compose as the most recent factor of
      // the original capacity (not multiplicative stacking).
      host->set_capacity(base_capacity_[s.tier] * s.speed_factor);
    }, sim::SchedClass::kTimer);
    sim_.at(s.at + s.duration, [this, s] {
      if (--slow_depth_[s.tier] == 0)
        targets_.hosts[s.tier]->set_capacity(base_capacity_[s.tier]);
    }, sim::SchedClass::kTimer);
  }
}

}  // namespace ntier::fault
