// Umbrella header: the whole public API.
//
// Downstream users can include this single header; fine-grained headers
// remain available for faster builds.
#pragma once

#include "core/chain.h"          // arbitrary-depth n-tier chains
#include "core/config.h"         // experiment configuration
#include "core/ctqo_analyzer.h"  // drop-episode classification
#include "core/experiment.h"     // run + summarize
#include "core/export.h"         // CSV dumps of a run
#include "core/report.h"         // figure-style text panels
#include "core/scenarios.h"      // the paper's canned experiments
#include "core/system.h"         // the 3-tier testbed (NX=0..3)
#include "core/trace_analysis.h" // per-hop latency breakdowns
#include "core/validation.h"     // queueing-law sanity checks
#include "fault/fault_injector.h"  // deterministic crash/link/slow-node faults
#include "graph/graph_system.h"  // service-graph experiments (DAG topologies)
#include "graph/topology.h"      // graph config model + text grammar
#include "monitor/trace_store.h"
#include "policy/tail_policy.h"  // deadlines, retries, hedging, breakers
#include "workload/session_model.h"
