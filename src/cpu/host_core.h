// Hierarchical processor-sharing CPU model: host -> VMs -> jobs.
//
// This substitutes for the paper's ESXi host with consolidated VMs
// (DESIGN.md §2). A HostCpu owns `n_cores` of capacity; each VmCpu on it
// has a weight and a vCPU count. Capacity is divided by weighted
// water-filling among VMs with runnable jobs (a VM can use at most
// min(#jobs, #vcpus) cores); within a VM, runnable jobs share the
// allocation equally (classic PS). This reproduces the paper's
// consolidation mechanics: when SysBursty-MySQL bursts, the fair-share
// allocation of SysSteady-Tomcat collapses to ~50% of the shared core,
// its service rate drops below its demand, and queues build — a CPU
// millibottleneck.
//
// Completion bookkeeping uses the attained-service trick: per VM we keep
// a scalar A(t) that advances at rate alloc/n_jobs; a job arriving when
// the accumulator is A with demand d completes when A reaches A + d, so
// a min-heap of completion targets gives O(log n) arrivals/departures.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/simulation.h"

namespace ntier::cpu {

// Completion callback. Same inline type as the event queue's EventFn so
// submit() can forward a caller's closure without re-wrapping it.
using JobDoneFn = sim::EventFn;

class HostCpu;

// One VM's virtual CPU(s). Created via HostCpu::add_vm; pointer-stable.
class VmCpu {
 public:
  const std::string& name() const { return name_; }
  int vcpus() const { return vcpus_; }

  // Submits a CPU job; `done` fires when `demand` of CPU time has been
  // served under the sharing policy. Zero/negative demands complete on
  // the next event-loop tick.
  void submit(sim::Duration demand, JobDoneFn done);

  // Freezes the vCPU (no progress, still accumulates "wanting" time)
  // until now+d. Extends an existing freeze if longer. Models I/O-wait
  // stalls and GC pauses.
  void freeze_for(sim::Duration d);
  bool frozen() const;

  std::size_t active_jobs() const { return jobs_.size(); }

  // --- accounting (cumulative; monitors diff successive reads). The
  // getters sync integration up to now() first, so sampling windows are
  // exact even when no CPU event fell on the window edge. ---
  // Core-seconds actually consumed.
  double busy_core_seconds();
  // Seconds during which >= 1 job was present (guest-visible "CPU busy
  // or runnable": this is what pegs at 100% during a millibottleneck).
  double demand_seconds();
  // Seconds frozen while jobs were present (guest-visible I/O wait).
  double stalled_seconds();

 private:
  friend class HostCpu;
  VmCpu(HostCpu& host, std::string name, int vcpus, double weight)
      : host_(host), name_(std::move(name)), vcpus_(vcpus), weight_(weight) {}

  struct Job {
    double target;  // attained-service level at which this job completes
    std::uint64_t seq;
    JobDoneFn done;
  };
  struct LaterTarget {
    bool operator()(const Job& a, const Job& b) const {
      if (a.target != b.target) return a.target > b.target;
      return a.seq > b.seq;
    }
  };

  HostCpu& host_;
  std::string name_;
  int vcpus_;
  double weight_;

  std::priority_queue<Job, std::vector<Job>, LaterTarget> jobs_;
  double attained_ = 0.0;   // seconds of per-job service delivered
  double alloc_ = 0.0;      // current allocation, in cores
  sim::Time frozen_until_{};

  double busy_core_s_ = 0.0;
  double want_s_ = 0.0;
  double stalled_s_ = 0.0;
};

class HostCpu {
 public:
  // n_cores > 0; fractional capacities allowed (e.g. capped VMs).
  HostCpu(sim::Simulation& sim, double n_cores);
  HostCpu(const HostCpu&) = delete;
  HostCpu& operator=(const HostCpu&) = delete;

  // Adds a VM with `vcpus` maximum parallelism and a fair-share weight.
  // The returned pointer is owned by the host and lives as long as it.
  VmCpu* add_vm(std::string name, int vcpus = 1, double weight = 1.0);

  double n_cores() const { return n_cores_; }
  const std::vector<std::unique_ptr<VmCpu>>& vms() const { return vms_; }
  sim::Simulation& simulation() { return sim_; }

  // Changes the host's capacity (DVFS frequency scaling: capacity =
  // cores x relative frequency). Running jobs keep their attained
  // service; rates change from now on.
  void set_capacity(double n_cores);

  // Total core-seconds consumed by all VMs up to now (governor input).
  double total_busy_core_seconds();

 private:
  friend class VmCpu;

  // Brings accounting and attained-service up to sim.now().
  void advance();
  // Recomputes allocations and re-arms the next completion event.
  void reschedule();
  void on_completion_event();
  static bool runnable(const VmCpu& vm, sim::Time now);

  sim::Simulation& sim_;
  double n_cores_;
  std::vector<std::unique_ptr<VmCpu>> vms_;
  sim::Time last_advance_{};
  sim::EventHandle pending_;
  std::uint64_t next_seq_ = 0;
  // Scratch buffers reused across calls (steady state allocates nothing).
  std::vector<VmCpu*> open_scratch_;
  std::vector<JobDoneFn> done_scratch_;
};

}  // namespace ntier::cpu
