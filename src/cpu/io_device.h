// FIFO storage device model.
//
// Substitutes for the paper's 7200rpm SATA local disk. Operations are
// serviced in order at a fixed bandwidth (plus per-op seek latency); a
// large sequential write — collectl's 30 s log flush — occupies the
// device for hundreds of ms, starving the DB tier's small I/Os. That is
// the I/O millibottleneck of paper §IV-B / Fig 5 and Fig 11.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "sim/simulation.h"

namespace ntier::cpu {

class IoDevice {
 public:
  struct Config {
    double bytes_per_second = 50.0 * 1024 * 1024;  // sequential bandwidth
    sim::Duration per_op_latency = sim::Duration::micros(100);
  };

  IoDevice(sim::Simulation& sim, std::string name, Config cfg);
  IoDevice(sim::Simulation& sim, std::string name);

  const std::string& name() const { return name_; }

  // Submits an operation of `bytes`; `done` fires at completion.
  void submit(std::uint64_t bytes, sim::EventFn done);
  // Submits an op with an explicit service time.
  void submit_service(sim::Duration service, sim::EventFn done);

  // Ops submitted but not completed (including the one in service).
  std::size_t queue_depth() const { return in_flight_; }

  // Cumulative busy time as of `t` (t <= now): monitors diff successive
  // reads to get per-window utilization ("I/O wait" in Fig 5(a)).
  double busy_seconds_until(sim::Time t) const;

  std::uint64_t ops_completed() const { return ops_completed_; }
  std::uint64_t bytes_written() const { return bytes_total_; }

 private:
  sim::Simulation& sim_;
  std::string name_;
  Config cfg_;

  sim::Time free_at_{};          // device is busy until this time
  sim::Time period_start_{};     // start of the current busy period
  double busy_before_period_ = 0.0;
  std::size_t in_flight_ = 0;
  std::uint64_t ops_completed_ = 0;
  std::uint64_t bytes_total_ = 0;
};

}  // namespace ntier::cpu
