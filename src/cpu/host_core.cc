#include "cpu/host_core.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ntier::cpu {
namespace {
// Slack when matching attained service against completion targets;
// absorbs the sub-nanosecond error from rounding event times to µs.
constexpr double kTargetEps = 1e-9;
}  // namespace

HostCpu::HostCpu(sim::Simulation& sim, double n_cores) : sim_(sim), n_cores_(n_cores) {
  assert(n_cores > 0.0);
  last_advance_ = sim.now();
}

VmCpu* HostCpu::add_vm(std::string name, int vcpus, double weight) {
  assert(vcpus >= 1);
  assert(weight > 0.0);
  advance();
  vms_.push_back(std::unique_ptr<VmCpu>(new VmCpu(*this, std::move(name), vcpus, weight)));
  reschedule();
  return vms_.back().get();
}

bool HostCpu::runnable(const VmCpu& vm, sim::Time now) {
  return !vm.jobs_.empty() && vm.frozen_until_ < now + sim::Duration::micros(1);
}

void HostCpu::advance() {
  const sim::Time now = sim_.now();
  if (now <= last_advance_) { last_advance_ = now; return; }
  const double dt = (now - last_advance_).to_seconds();
  for (auto& vmp : vms_) {
    VmCpu& vm = *vmp;
    if (!vm.jobs_.empty()) {
      vm.want_s_ += dt;
      // Freeze boundaries always coincide with events (freeze_for arms a
      // wake-up at expiry), so the interval is frozen either fully or
      // not at all.
      if (vm.frozen_until_ >= now && vm.alloc_ == 0.0) vm.stalled_s_ += dt;
      if (vm.alloc_ > 0.0) {
        vm.busy_core_s_ += vm.alloc_ * dt;
        vm.attained_ += vm.alloc_ * dt / static_cast<double>(vm.jobs_.size());
      }
    }
    // Note: alloc_ was computed for a fixed job set; jobs_ only mutates
    // via submit/completion which advance() first, so the set is
    // constant over [last_advance_, now].
  }
  last_advance_ = now;
}

void HostCpu::reschedule() {
  const sim::Time now = sim_.now();
  // Weighted water-filling of n_cores_ across runnable VMs.
  std::vector<VmCpu*>& open = open_scratch_;
  open.clear();
  for (auto& vmp : vms_) {
    vmp->alloc_ = 0.0;
    if (runnable(*vmp, now)) open.push_back(vmp.get());
  }
  double remaining = n_cores_;
  while (!open.empty() && remaining > 1e-12) {
    double total_w = 0.0;
    for (auto* vm : open) total_w += vm->weight_;
    bool closed_any = false;
    for (auto it = open.begin(); it != open.end();) {
      VmCpu* vm = *it;
      const double want =
          std::min<double>(static_cast<double>(vm->jobs_.size()), vm->vcpus_);
      const double share = remaining * vm->weight_ / total_w;
      if (want <= share + 1e-12) {
        vm->alloc_ = want;
        remaining -= want;
        it = open.erase(it);
        closed_any = true;
      } else {
        ++it;
      }
    }
    if (!closed_any) {
      double total_w2 = 0.0;
      for (auto* vm : open) total_w2 += vm->weight_;
      for (auto* vm : open) vm->alloc_ = remaining * vm->weight_ / total_w2;
      break;
    }
  }

  // Earliest completion across VMs.
  pending_.cancel();
  sim::Time best = sim::Time::max();
  for (auto& vmp : vms_) {
    VmCpu& vm = *vmp;
    if (vm.jobs_.empty() || vm.alloc_ <= 0.0) continue;
    const double gap = std::max(0.0, vm.jobs_.top().target - vm.attained_);
    const double dt_s = gap * static_cast<double>(vm.jobs_.size()) / vm.alloc_;
    // Round up to the next µs so attained >= target at the event.
    const auto dt = sim::Duration::micros(
        static_cast<std::int64_t>(std::ceil(dt_s * 1e6 - 1e-9)));
    const sim::Time t = now + std::max(dt, sim::Duration::zero());
    best = std::min(best, t);
  }
  if (best != sim::Time::max()) {
    pending_ = sim_.at(best, [this] { on_completion_event(); });
  }
}

void HostCpu::on_completion_event() {
  advance();
  std::vector<JobDoneFn>& done = done_scratch_;
  done.clear();
  for (auto& vmp : vms_) {
    VmCpu& vm = *vmp;
    while (!vm.jobs_.empty() && vm.jobs_.top().target <= vm.attained_ + kTargetEps) {
      done.push_back(std::move(const_cast<VmCpu::Job&>(vm.jobs_.top()).done));
      vm.jobs_.pop();
    }
  }
  reschedule();
  for (auto& fn : done) fn();
}

void VmCpu::submit(sim::Duration demand, JobDoneFn done) {
  host_.advance();
  if (demand <= sim::Duration::zero()) {
    host_.sim_.after(sim::Duration::zero(), std::move(done),
                     sim::SchedClass::kImmediate);
    return;
  }
  jobs_.push(Job{attained_ + demand.to_seconds(), host_.next_seq_++, std::move(done)});
  host_.reschedule();
}

void VmCpu::freeze_for(sim::Duration d) {
  host_.advance();
  const sim::Time until = host_.sim_.now() + d;
  if (until > frozen_until_) {
    frozen_until_ = until;
    host_.sim_.at(until, [this] {
      host_.advance();
      host_.reschedule();
    });
  }
  host_.reschedule();
}

bool VmCpu::frozen() const {
  return frozen_until_ >= host_.sim_.now() + sim::Duration::micros(1);
}

void HostCpu::set_capacity(double n_cores) {
  assert(n_cores > 0.0);
  advance();
  n_cores_ = n_cores;
  reschedule();
}

double HostCpu::total_busy_core_seconds() {
  advance();
  double acc = 0.0;
  for (const auto& vm : vms_) acc += vm->busy_core_s_;
  return acc;
}

double VmCpu::busy_core_seconds() {
  host_.advance();
  return busy_core_s_;
}

double VmCpu::demand_seconds() {
  host_.advance();
  return want_s_;
}

double VmCpu::stalled_seconds() {
  host_.advance();
  return stalled_s_;
}

}  // namespace ntier::cpu
