// DVFS governor model — the CPU-power-management millibottleneck cause
// of Wang et al., "Lightning in the cloud" (TRIOS'14), cited by the
// paper as reference [31].
//
// An ondemand-style governor samples host utilization every interval and
// steps the frequency up or down. The millibottleneck mechanism: under
// moderate load the governor settles at a low frequency; when a workload
// burst arrives, capacity stays low for one or more governor intervals
// — a sub-second capacity deficit that fills queues exactly like the
// consolidation bursts, triggering CTQO in an RPC-coupled chain.
#pragma once

#include <vector>

#include "cpu/host_core.h"
#include "sim/simulation.h"

namespace ntier::cpu {

class DvfsGovernor {
 public:
  struct Config {
    double min_freq = 0.4;   // relative to nominal
    double max_freq = 1.0;
    double step = 0.2;       // frequency change per decision
    double up_threshold = 0.8;    // utilization (of current capacity)
    double down_threshold = 0.35;
    sim::Duration interval = sim::Duration::millis(500);
    double start_freq = 1.0;
  };

  // Governs `host`, whose configured capacity is taken as the nominal
  // (max-frequency) capacity. The governor owns the host's set_capacity.
  DvfsGovernor(sim::Simulation& sim, HostCpu& host, Config cfg);
  DvfsGovernor(sim::Simulation& sim, HostCpu& host);

  double frequency() const { return freq_; }

  struct FreqChange {
    sim::Time at;
    double freq;
  };
  const std::vector<FreqChange>& history() const { return history_; }
  // Seconds spent below max frequency (for reports).
  double throttled_seconds() const;

 private:
  void tick();
  void apply(double freq);

  sim::Simulation& sim_;
  HostCpu& host_;
  Config cfg_;
  double nominal_;
  double freq_;
  double last_busy_ = 0.0;
  std::vector<FreqChange> history_;
};

// Periodic stop-the-world pauses on one VM — the JVM garbage-collection
// millibottleneck cause (paper reference [32]). Also usable for any
// "server frozen for D every P" study.
class FreezeInjector {
 public:
  struct Config {
    sim::Time first = sim::Time::from_seconds(10.0);
    sim::Duration period = sim::Duration::seconds(10);
    sim::Duration pause = sim::Duration::millis(400);
  };

  FreezeInjector(sim::Simulation& sim, VmCpu* vm, Config cfg);

  const std::vector<sim::Time>& pause_times() const { return pauses_; }

 private:
  void fire();

  sim::Simulation& sim_;
  VmCpu* vm_;
  Config cfg_;
  std::vector<sim::Time> pauses_;
};

}  // namespace ntier::cpu
