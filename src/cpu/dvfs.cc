#include "cpu/dvfs.h"

#include <algorithm>

namespace ntier::cpu {

DvfsGovernor::DvfsGovernor(sim::Simulation& sim, HostCpu& host, Config cfg)
    : sim_(sim), host_(host), cfg_(cfg), nominal_(host.n_cores()), freq_(cfg.start_freq) {
  apply(freq_);
  last_busy_ = host_.total_busy_core_seconds();
  sim_.after(cfg_.interval, [this] { tick(); }, sim::SchedClass::kTimer);
}

DvfsGovernor::DvfsGovernor(sim::Simulation& sim, HostCpu& host)
    : DvfsGovernor(sim, host, Config()) {}

void DvfsGovernor::apply(double freq) {
  freq_ = std::clamp(freq, cfg_.min_freq, cfg_.max_freq);
  host_.set_capacity(nominal_ * freq_);
  history_.push_back(FreqChange{sim_.now(), freq_});
}

void DvfsGovernor::tick() {
  const double busy = host_.total_busy_core_seconds();
  const double used = busy - last_busy_;
  last_busy_ = busy;
  // Utilization relative to what the current frequency could deliver.
  const double avail = nominal_ * freq_ * cfg_.interval.to_seconds();
  const double util = avail > 0 ? used / avail : 0.0;
  if (util > cfg_.up_threshold && freq_ < cfg_.max_freq) {
    apply(freq_ + cfg_.step);
  } else if (util < cfg_.down_threshold && freq_ > cfg_.min_freq) {
    apply(freq_ - cfg_.step);
  }
  sim_.after(cfg_.interval, [this] { tick(); }, sim::SchedClass::kTimer);
}

double DvfsGovernor::throttled_seconds() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < history_.size(); ++i) {
    if (history_[i].freq >= cfg_.max_freq) continue;
    const sim::Time end =
        (i + 1 < history_.size()) ? history_[i + 1].at : sim_.now();
    acc += (end - history_[i].at).to_seconds();
  }
  return acc;
}

FreezeInjector::FreezeInjector(sim::Simulation& sim, VmCpu* vm, Config cfg)
    : sim_(sim), vm_(vm), cfg_(cfg) {
  sim_.at(cfg_.first, [this] { fire(); }, sim::SchedClass::kTimer);
}

void FreezeInjector::fire() {
  pauses_.push_back(sim_.now());
  vm_->freeze_for(cfg_.pause);
  sim_.after(cfg_.period, [this] { fire(); }, sim::SchedClass::kTimer);
}

}  // namespace ntier::cpu
