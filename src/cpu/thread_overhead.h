// Concurrency-overhead model for thread-per-request servers (Fig 12).
//
// The paper's §V-E shows the 2000-thread "RPC purist" alternative
// collapsing from 1159 req/s at concurrency 100 to 374 req/s at 1600,
// attributing it to context-switch/scheduling overhead and JVM GC cost
// that grow with the live thread count. We model that as (a) a per-job
// demand inflation linear in the number of concurrently busy threads and
// (b) optional periodic GC pauses whose length grows with thread count.
#pragma once

#include <cstddef>
#include <functional>

#include "sim/simulation.h"

namespace ntier::cpu {

class VmCpu;

struct ThreadOverheadModel {
  // Effective demand multiplier: 1 + alpha_per_thread * busy_threads.
  // alpha ~ 1.3e-3 reproduces the Fig 12 sync collapse.
  double alpha_per_thread = 0.0;

  // GC: every `gc_interval` (if > 0) the VM freezes for
  // gc_base + gc_per_thread * busy_threads.
  sim::Duration gc_interval = sim::Duration::zero();
  sim::Duration gc_base = sim::Duration::zero();
  sim::Duration gc_per_thread = sim::Duration::zero();

  double inflation(std::size_t busy_threads) const {
    return 1.0 + alpha_per_thread * static_cast<double>(busy_threads);
  }
  sim::Duration inflate(sim::Duration demand, std::size_t busy_threads) const {
    if (alpha_per_thread == 0.0) return demand;
    return demand * inflation(busy_threads);
  }
  sim::Duration gc_pause(std::size_t busy_threads) const {
    return gc_base + gc_per_thread * static_cast<std::int64_t>(busy_threads);
  }
};

// Arms the periodic GC pause against a VM. No-op if gc_interval == 0.
// `busy_threads` is sampled through the callback at each GC tick.
void arm_gc(sim::Simulation& sim, VmCpu& vm, const ThreadOverheadModel& model,
            std::function<std::size_t()> busy_threads);

}  // namespace ntier::cpu
