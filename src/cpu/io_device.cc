#include "cpu/io_device.h"

#include <algorithm>

#include "sim/slab_pool.h"

namespace ntier::cpu {
namespace {

// Completion callbacks are parked in a slab so the scheduled closure is
// just {this, ref} — a caller's full-size EventFn cannot nest inside
// another EventFn's inline buffer.
sim::SlabPool<sim::EventFn>& done_pool() {
  thread_local sim::SlabPool<sim::EventFn> pool;
  return pool;
}

}  // namespace

IoDevice::IoDevice(sim::Simulation& sim, std::string name, Config cfg)
    : sim_(sim), name_(std::move(name)), cfg_(cfg) {
  free_at_ = period_start_ = sim.now();
}

IoDevice::IoDevice(sim::Simulation& sim, std::string name)
    : IoDevice(sim, std::move(name), Config()) {}

void IoDevice::submit(std::uint64_t bytes, sim::EventFn done) {
  const auto xfer =
      sim::Duration::from_seconds(static_cast<double>(bytes) / cfg_.bytes_per_second);
  bytes_total_ += bytes;
  submit_service(cfg_.per_op_latency + xfer, std::move(done));
}

void IoDevice::submit_service(sim::Duration service, sim::EventFn done) {
  const sim::Time now = sim_.now();
  if (free_at_ < now) {
    // Device went idle: close the previous busy period.
    busy_before_period_ += (free_at_ - period_start_).to_seconds();
    period_start_ = now;
    free_at_ = now;
  }
  free_at_ += std::max(service, sim::Duration::zero());
  ++in_flight_;
  auto cb = done_pool().make(std::move(done));
  sim_.at(free_at_, [this, cb] {
    --in_flight_;
    ++ops_completed_;
    (*cb)();
  });
}

double IoDevice::busy_seconds_until(sim::Time t) const {
  const sim::Time upto = std::min(t, free_at_);
  double cur = 0.0;
  if (upto > period_start_) cur = (upto - period_start_).to_seconds();
  return busy_before_period_ + cur;
}

}  // namespace ntier::cpu
