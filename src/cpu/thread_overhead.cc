#include "cpu/thread_overhead.h"

#include "cpu/host_core.h"

namespace ntier::cpu {
namespace {

void tick(sim::Simulation& sim, VmCpu& vm, ThreadOverheadModel model,
          std::shared_ptr<std::function<std::size_t()>> busy) {
  const auto pause = model.gc_pause((*busy)());
  if (pause > sim::Duration::zero()) vm.freeze_for(pause);
  sim.after(model.gc_interval,
            [&sim, &vm, model, busy] { tick(sim, vm, model, busy); });
}

}  // namespace

void arm_gc(sim::Simulation& sim, VmCpu& vm, const ThreadOverheadModel& model,
            std::function<std::size_t()> busy_threads) {
  if (model.gc_interval <= sim::Duration::zero()) return;
  auto busy = std::make_shared<std::function<std::size_t()>>(std::move(busy_threads));
  sim.after(model.gc_interval,
            [&sim, &vm, model, busy] { tick(sim, vm, model, busy); });
}

}  // namespace ntier::cpu
