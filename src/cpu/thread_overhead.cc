#include "cpu/thread_overhead.h"

#include <memory>
#include <utility>

#include "cpu/host_core.h"

namespace ntier::cpu {
namespace {

// Bundled tick state: the recurring GC event captures one shared_ptr so
// the closure stays within the EventFn inline budget.
struct GcState {
  sim::Simulation* sim;
  VmCpu* vm;
  ThreadOverheadModel model;
  std::function<std::size_t()> busy;
};

void tick(const std::shared_ptr<GcState>& st) {
  const auto pause = st->model.gc_pause(st->busy());
  if (pause > sim::Duration::zero()) st->vm->freeze_for(pause);
  st->sim->after(st->model.gc_interval, [st] { tick(st); },
                 sim::SchedClass::kTimer);
}

}  // namespace

void arm_gc(sim::Simulation& sim, VmCpu& vm, const ThreadOverheadModel& model,
            std::function<std::size_t()> busy_threads) {
  if (model.gc_interval <= sim::Duration::zero()) return;
  auto st = std::make_shared<GcState>(
      GcState{&sim, &vm, model, std::move(busy_threads)});
  sim.after(model.gc_interval, [st] { tick(st); }, sim::SchedClass::kTimer);
}

}  // namespace ntier::cpu
