// Deterministic parallel experiment engine: a grid of configurations ×
// R seed-replications fanned out over a worker thread pool, reduced to
// per-point means with Student-t confidence intervals and CTQO-onset
// detection.
//
// Execution model: every (point, replication) pair is one independent
// job running its own isolated core::NTierSystem/Simulation — workers
// share nothing but the job counter, so replication r of a point is
// bit-identical to a solo run of the same config with seed
// `cfg.seed + r` (DESIGN.md invariants 9/10 carry over unchanged).
//
// Determinism contract (tested in tests/test_sweep.cc): results land in
// slots indexed by (point, replication), never by completion order, and
// the reduction runs sequentially after all workers join — so the
// reduced CSV, manifest, and report are byte-identical for any
// `jobs` value, and the worker count appears in no artifact.
// docs/SWEEPS.md is the full spec.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "sweep/grid.h"
#include "sweep/stats.h"

namespace ntier::sweep {

// Builds the configuration for one grid point. Called once per point on
// the calling thread, before any worker starts; the returned config's
// `seed` is the replication-0 seed (replication r adds r to it) and its
// `name` names the point in every artifact.
using ConfigBinder = std::function<core::ExperimentConfig(const GridPoint&)>;

// Optional per-run hook, called on the worker thread while the finished
// system is still alive (e.g. to render a dashboard). Runs concurrently
// for distinct runs, so it must only touch per-run state or perform
// independent file writes.
using RunHook =
    std::function<void(const GridPoint&, std::size_t replication, core::NTierSystem&)>;

// Execution knobs for one run_sweep call.
struct SweepOptions {
  // Seed-replications per grid point (>= 1).
  std::size_t replications = 3;
  // Worker threads (>= 1). Artifacts are invariant in this value; it
  // only trades wall-clock for cores.
  std::size_t jobs = 1;
};

// Everything retained from one finished replication.
struct ReplicationResult {
  std::uint64_t seed = 0;    // the seed this replication ran with
  std::uint64_t events = 0;  // simulation events executed
  core::ExperimentSummary summary;  // incl. the CtqoReport
  // Registry scalar snapshot (name-sorted) of this run's private
  // telemetry registry; merged across replications at reduce time.
  std::vector<std::pair<std::string, double>> registry;
};

// One grid point after reduction over its replications.
struct PointResult {
  GridPoint point;
  std::string name;            // cfg.name from the binder
  std::uint64_t base_seed = 0; // replication-0 seed
  std::vector<ReplicationResult> reps;  // by replication index

  // 95 % Student-t intervals over the replications.
  Interval throughput_rps;
  Interval latency_mean_ms;
  Interval p99_ms;
  Interval p999_ms;
  Interval vlrt_fraction;  // vlrt_count / completed per replication
  Interval drops;          // dropped packets
  Interval episodes;       // CTQO episodes found by the analyzer
  Interval upstream_episodes;
  Interval downstream_episodes;
  double completed_mean = 0.0;

  // True when at least half the replications show >= 1 CTQO episode —
  // the point sits past the CTQO onset.
  bool ctqo = false;

  // Per-worker registries merged at reduce: sum over replications of
  // each scalar, name-sorted.
  std::vector<std::pair<std::string, double>> registry_totals;
};

// CTQO onset along axis 0, one entry per combination ("slice") of the
// remaining axes: the smallest axis-0 value (in axis insertion order)
// whose point has `ctqo` set.
struct CtqoOnset {
  std::vector<double> slice;  // values of axes 1..k-1
  std::string slice_label;    // "qdepth=278 nx=0" ("" when 1-axis grid)
  bool found = false;
  double onset_value = 0.0;   // axis-0 value at onset, when found
};

// The whole sweep after reduction, plus its artifact renderers.
struct SweepResult {
  std::vector<Axis> axes;           // the grid's axes, echoed
  std::size_t replications = 0;
  std::vector<PointResult> points;  // grid (row-major) order
  std::vector<CtqoOnset> onsets;    // slice order = first appearance
  std::uint64_t runs = 0;           // points × replications
  std::uint64_t total_events = 0;   // summed over every run

  // Reduced per-point CSV: one row per grid point, axes first, then the
  // means and 95 % CI half-widths (docs/SWEEPS.md documents every
  // column). Byte-identical for any SweepOptions::jobs.
  std::string csv() const;
  // Sweep manifest JSON: schema ntier.sweep-manifest/1 — axes, R, and
  // per-point reductions incl. merged registry totals. Deterministic;
  // deliberately excludes the worker count.
  std::string manifest_json() const;
  // Human-readable table + onset lines for bench output.
  std::string to_string() const;
};

// Runs the full grid × replications sweep. Binds and validates every
// config up front (throwing std::invalid_argument on a bad one), then
// fans the runs out over `opt.jobs` workers. Throws std::runtime_error
// if any run fails.
SweepResult run_sweep(const Grid& grid, const ConfigBinder& bind,
                      const SweepOptions& opt, const RunHook& hook = nullptr);

}  // namespace ntier::sweep
