// Parameter grids for multi-configuration experiments.
//
// A Grid is an ordered list of named axes; enumerating it yields the
// full cartesian product in deterministic row-major order (first axis
// slowest, last axis fastest) — the iteration order every sweep artifact
// (CSV row order, manifest entries) is defined in. Axis values are plain
// doubles; the sweep's ConfigBinder (engine.h) interprets them into an
// ExperimentConfig, so an axis can drive any config field (workload
// intensity, queue bounds, NX level, ...). docs/SWEEPS.md describes the
// grammar with worked examples.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ntier::sweep {

// One sweep dimension: a parameter name and the values it takes.
// Values keep their insertion order (they need not be sorted, but
// CTQO-onset detection scans axis 0 in insertion order).
struct Axis {
  std::string name;
  std::vector<double> values;
};

// One cell of the cartesian product.
struct GridPoint {
  // Row-major rank in [0, Grid::size()); also the point's position in
  // every sweep artifact.
  std::size_t index = 0;
  // One value per axis, aligned with Grid::axes() order.
  std::vector<double> values;

  // Value of the axis at `axis_index` (bounds-checked by the vector).
  double value(std::size_t axis_index) const { return values.at(axis_index); }

  // "wl=7000 qdepth=278 nx=0"-style rendering for names and logs, using
  // the axis names of `axes` (must be the grid that produced the point).
  std::string label(const std::vector<Axis>& axes) const;
};

// An ordered set of axes plus cartesian enumeration over them.
class Grid {
 public:
  // Appends an axis. Name must be non-empty and unique within the grid;
  // values must be non-empty. Throws std::invalid_argument otherwise.
  Grid& add_axis(std::string name, std::vector<double> values);

  // Axes in insertion order.
  const std::vector<Axis>& axes() const { return axes_; }
  // Number of axes.
  std::size_t axis_count() const { return axes_.size(); }
  // Total number of grid points (product of axis sizes; 0 when no axes).
  std::size_t size() const;

  // The full cartesian product, row-major (axis 0 slowest). Point i of
  // the result has index == i.
  std::vector<GridPoint> points() const;

 private:
  std::vector<Axis> axes_;
};

}  // namespace ntier::sweep
