#include "sweep/grid.h"

#include <cstdio>
#include <stdexcept>

namespace ntier::sweep {

std::string GridPoint::label(const std::vector<Axis>& axes) const {
  std::string out;
  char buf[64];
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ' ';
    std::snprintf(buf, sizeof buf, "%s=%.10g",
                  i < axes.size() ? axes[i].name.c_str() : "?", values[i]);
    out += buf;
  }
  return out;
}

Grid& Grid::add_axis(std::string name, std::vector<double> values) {
  if (name.empty()) throw std::invalid_argument("sweep axis needs a name");
  if (values.empty())
    throw std::invalid_argument("sweep axis '" + name + "' needs >= 1 value");
  for (const Axis& a : axes_)
    if (a.name == name)
      throw std::invalid_argument("duplicate sweep axis '" + name + "'");
  axes_.push_back(Axis{std::move(name), std::move(values)});
  return *this;
}

std::size_t Grid::size() const {
  if (axes_.empty()) return 0;
  std::size_t n = 1;
  for (const Axis& a : axes_) n *= a.values.size();
  return n;
}

std::vector<GridPoint> Grid::points() const {
  const std::size_t total = size();
  std::vector<GridPoint> out;
  out.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    GridPoint p;
    p.index = i;
    p.values.resize(axes_.size());
    // Decode the row-major rank, last axis fastest.
    std::size_t rem = i;
    for (std::size_t a = axes_.size(); a-- > 0;) {
      const auto& vals = axes_[a].values;
      p.values[a] = vals[rem % vals.size()];
      rem /= vals.size();
    }
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace ntier::sweep
