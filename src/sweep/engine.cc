#include "sweep/engine.h"

#include <atomic>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <thread>

#include "core/config.h"
#include "core/system.h"
#include "metrics/table.h"

namespace ntier::sweep {

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

double vlrt_fraction_of(const core::ExperimentSummary& s) {
  return s.latency.count > 0
             ? static_cast<double>(s.latency.vlrt_count) /
                   static_cast<double>(s.latency.count)
             : 0.0;
}

// Collects one reduced sample per replication via `get`.
template <typename Fn>
Interval reduce(const std::vector<ReplicationResult>& reps, Fn get) {
  std::vector<double> xs;
  xs.reserve(reps.size());
  for (const auto& r : reps) xs.push_back(get(r));
  return t_interval(xs);
}

}  // namespace

SweepResult run_sweep(const Grid& grid, const ConfigBinder& bind,
                      const SweepOptions& opt, const RunHook& hook) {
  if (!bind) throw std::invalid_argument("sweep: null config binder");
  if (opt.replications < 1)
    throw std::invalid_argument("sweep: replications must be >= 1");
  if (opt.jobs < 1) throw std::invalid_argument("sweep: jobs must be >= 1");

  const std::vector<GridPoint> points = grid.points();
  if (points.empty()) throw std::invalid_argument("sweep: empty grid");
  const std::size_t R = opt.replications;

  // Bind and validate every point's config up front, on this thread:
  // workers then only copy a config and bump its seed, so a bad config
  // fails fast instead of inside the pool.
  std::vector<core::ExperimentConfig> configs;
  configs.reserve(points.size());
  for (const GridPoint& p : points) {
    core::ExperimentConfig cfg = bind(p);
    core::validate(cfg);
    configs.push_back(std::move(cfg));
  }

  // One slot per (point, replication): slot k = point k/R, replication
  // k%R. Workers write only their own slot, so artifact content never
  // depends on scheduling or the worker count.
  const std::size_t total = points.size() * R;
  std::vector<ReplicationResult> slots(total);
  std::vector<std::string> errors(total);
  std::atomic<std::size_t> next{0};

  auto worker = [&] {
    for (;;) {
      const std::size_t k = next.fetch_add(1);
      if (k >= total) return;
      const std::size_t pi = k / R;
      const std::size_t r = k % R;
      try {
        core::ExperimentConfig cfg = configs[pi];
        cfg.seed += r;  // replication r == solo run with seed base+r
        auto sys = core::run_system(cfg);
        ReplicationResult& out = slots[k];
        out.seed = cfg.seed;
        out.events = sys->simulation().events_executed();
        out.summary = core::summarize(*sys);
        out.registry = sys->registry().snapshot();
        if (hook) hook(points[pi], r, *sys);
      } catch (const std::exception& e) {
        errors[k] = e.what();
      }
    }
  };

  const std::size_t nworkers = opt.jobs < total ? opt.jobs : total;
  if (nworkers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(nworkers);
    for (std::size_t i = 0; i < nworkers; ++i) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  for (std::size_t k = 0; k < total; ++k)
    if (!errors[k].empty())
      throw std::runtime_error("sweep run " + configs[k / R].name +
                               " replication " + std::to_string(k % R) +
                               " failed: " + errors[k]);

  // ---- sequential reduction (identical for any worker count) -----------
  SweepResult result;
  result.axes = grid.axes();
  result.replications = R;
  result.runs = total;
  result.points.reserve(points.size());
  for (std::size_t pi = 0; pi < points.size(); ++pi) {
    PointResult pr;
    pr.point = points[pi];
    pr.name = configs[pi].name;
    pr.base_seed = configs[pi].seed;
    pr.reps.assign(slots.begin() + static_cast<std::ptrdiff_t>(pi * R),
                   slots.begin() + static_cast<std::ptrdiff_t>((pi + 1) * R));

    pr.throughput_rps =
        reduce(pr.reps, [](const auto& r) { return r.summary.throughput_rps; });
    pr.latency_mean_ms =
        reduce(pr.reps, [](const auto& r) { return r.summary.latency.mean.to_millis(); });
    pr.p99_ms =
        reduce(pr.reps, [](const auto& r) { return r.summary.latency.p99.to_millis(); });
    pr.p999_ms =
        reduce(pr.reps, [](const auto& r) { return r.summary.latency.p999.to_millis(); });
    pr.vlrt_fraction =
        reduce(pr.reps, [](const auto& r) { return vlrt_fraction_of(r.summary); });
    pr.drops = reduce(pr.reps, [](const auto& r) {
      return static_cast<double>(r.summary.total_drops);
    });
    pr.episodes = reduce(pr.reps, [](const auto& r) {
      return static_cast<double>(r.summary.ctqo.episodes.size());
    });
    pr.upstream_episodes = reduce(pr.reps, [](const auto& r) {
      return static_cast<double>(r.summary.ctqo.upstream_episodes);
    });
    pr.downstream_episodes = reduce(pr.reps, [](const auto& r) {
      return static_cast<double>(r.summary.ctqo.downstream_episodes);
    });
    pr.completed_mean = reduce(pr.reps, [](const auto& r) {
      return static_cast<double>(r.summary.latency.count);
    }).mean;

    std::size_t with_ctqo = 0;
    for (const auto& r : pr.reps)
      if (!r.summary.ctqo.episodes.empty()) ++with_ctqo;
    pr.ctqo = 2 * with_ctqo >= R;

    // Merge the per-run registries: sum each scalar across replications.
    std::map<std::string, double> merged;
    for (const auto& r : pr.reps) {
      for (const auto& [name, value] : r.registry) merged[name] += value;
      result.total_events += r.events;
    }
    pr.registry_totals.assign(merged.begin(), merged.end());
    result.points.push_back(std::move(pr));
  }

  // ---- CTQO onset along axis 0, per slice of the remaining axes --------
  std::map<std::vector<double>, std::size_t> slice_rank;  // -> onsets index
  for (const PointResult& pr : result.points) {
    std::vector<double> slice(pr.point.values.begin() + 1, pr.point.values.end());
    auto it = slice_rank.find(slice);
    if (it == slice_rank.end()) {
      CtqoOnset o;
      o.slice = slice;
      std::vector<Axis> rest(result.axes.begin() + 1, result.axes.end());
      GridPoint sp;
      sp.values = slice;
      o.slice_label = rest.empty() ? std::string() : sp.label(rest);
      it = slice_rank.emplace(std::move(slice), result.onsets.size()).first;
      result.onsets.push_back(std::move(o));
    }
    CtqoOnset& o = result.onsets[it->second];
    // Axis 0 is slowest in row-major order, so points of one slice are
    // visited in axis-0 insertion order: the first ctqo hit is the onset.
    if (!o.found && pr.ctqo) {
      o.found = true;
      o.onset_value = pr.point.value(0);
    }
  }

  return result;
}

std::string SweepResult::csv() const {
  std::string out;
  for (const Axis& a : axes) out += a.name + ",";
  out +=
      "name,replications,completed_mean,throughput_rps_mean,"
      "throughput_rps_ci95,latency_mean_ms,latency_mean_ci95,p99_ms,p99_ci95,"
      "p999_ms,p999_ci95,vlrt_fraction,vlrt_fraction_ci95,drops_mean,"
      "drops_ci95,ctqo_episodes_mean,ctqo_upstream_mean,ctqo_downstream_mean,"
      "ctqo\n";
  for (const PointResult& p : points) {
    for (double v : p.point.values) out += num(v) + ",";
    out += p.name + "," + std::to_string(replications) + "," +
           num(p.completed_mean) + "," + num(p.throughput_rps.mean) + "," +
           num(p.throughput_rps.half_width) + "," + num(p.latency_mean_ms.mean) +
           "," + num(p.latency_mean_ms.half_width) + "," + num(p.p99_ms.mean) +
           "," + num(p.p99_ms.half_width) + "," + num(p.p999_ms.mean) + "," +
           num(p.p999_ms.half_width) + "," + num(p.vlrt_fraction.mean) + "," +
           num(p.vlrt_fraction.half_width) + "," + num(p.drops.mean) + "," +
           num(p.drops.half_width) + "," + num(p.episodes.mean) + "," +
           num(p.upstream_episodes.mean) + "," + num(p.downstream_episodes.mean) +
           "," + (p.ctqo ? "1" : "0") + "\n";
  }
  return out;
}

std::string SweepResult::manifest_json() const {
  std::string out = "{\n  \"schema\": \"ntier.sweep-manifest/1\",\n  \"axes\": [";
  for (std::size_t i = 0; i < axes.size(); ++i) {
    out += i ? ", " : "";
    out += "{\"name\": ";
    append_escaped(out, axes[i].name);
    out += ", \"values\": [";
    for (std::size_t j = 0; j < axes[i].values.size(); ++j) {
      out += j ? ", " : "";
      out += num(axes[i].values[j]);
    }
    out += "]}";
  }
  out += "],\n  \"replications\": " + std::to_string(replications);
  out += ",\n  \"runs\": " + std::to_string(runs);
  out += ",\n  \"total_events\": " + std::to_string(total_events);
  out += ",\n  \"points\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointResult& p = points[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"name\": ";
    append_escaped(out, p.name);
    out += ", \"values\": [";
    for (std::size_t j = 0; j < p.point.values.size(); ++j) {
      out += j ? ", " : "";
      out += num(p.point.values[j]);
    }
    out += "], \"base_seed\": " + std::to_string(p.base_seed);
    out += ", \"ctqo\": ";
    out += p.ctqo ? "true" : "false";
    out += ", \"throughput_rps\": [" + num(p.throughput_rps.mean) + ", " +
           num(p.throughput_rps.half_width) + "]";
    out += ", \"p99_ms\": [" + num(p.p99_ms.mean) + ", " + num(p.p99_ms.half_width) + "]";
    out += ", \"p999_ms\": [" + num(p.p999_ms.mean) + ", " + num(p.p999_ms.half_width) + "]";
    out += ", \"vlrt_fraction\": [" + num(p.vlrt_fraction.mean) + ", " +
           num(p.vlrt_fraction.half_width) + "]";
    out += ", \"drops_mean\": " + num(p.drops.mean);
    out += ", \"episodes_mean\": " + num(p.episodes.mean);
    out += ", \"registry_totals\": {";
    for (std::size_t j = 0; j < p.registry_totals.size(); ++j) {
      out += j ? ", " : "";
      append_escaped(out, p.registry_totals[j].first);
      out += ": " + num(p.registry_totals[j].second);
    }
    out += "}}";
  }
  out += "\n  ],\n  \"ctqo_onsets\": [";
  for (std::size_t i = 0; i < onsets.size(); ++i) {
    out += i ? ", " : "";
    out += "{\"slice\": ";
    append_escaped(out, onsets[i].slice_label);
    out += ", \"onset\": ";
    out += onsets[i].found ? num(onsets[i].onset_value) : std::string("null");
    out += "}";
  }
  out += "]\n}\n";
  return out;
}

std::string SweepResult::to_string() const {
  std::vector<std::string> header;
  for (const Axis& a : axes) header.push_back(a.name);
  header.insert(header.end(),
                {"thpt_rps", "ci95", "p99_ms", "ci95", "p999_ms", "ci95",
                 "vlrt_frac", "drops", "episodes", "ctqo"});
  metrics::Table table(header);
  for (const PointResult& p : points) {
    std::vector<std::string> row;
    for (double v : p.point.values) row.push_back(metrics::Table::num(v, 0));
    row.push_back(metrics::Table::num(p.throughput_rps.mean, 1));
    row.push_back(metrics::Table::num(p.throughput_rps.half_width, 1));
    row.push_back(metrics::Table::num(p.p99_ms.mean, 1));
    row.push_back(metrics::Table::num(p.p99_ms.half_width, 1));
    row.push_back(metrics::Table::num(p.p999_ms.mean, 1));
    row.push_back(metrics::Table::num(p.p999_ms.half_width, 1));
    row.push_back(metrics::Table::num(p.vlrt_fraction.mean, 4));
    row.push_back(metrics::Table::num(p.drops.mean, 1));
    row.push_back(metrics::Table::num(p.episodes.mean, 1));
    row.push_back(p.ctqo ? "yes" : "no");
    table.add_row(row);
  }
  std::string out = table.to_string();
  for (const CtqoOnset& o : onsets) {
    out += "CTQO onset";
    if (!o.slice_label.empty()) out += " [" + o.slice_label + "]";
    out += o.found ? ": " + axes[0].name + " = " + num(o.onset_value)
                   : ": none in the swept range";
    out += "\n";
  }
  return out;
}

}  // namespace ntier::sweep
