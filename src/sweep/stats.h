// Replication statistics: Student-t confidence intervals over the R
// per-seed results of one grid point.
//
// The math (docs/SWEEPS.md §"Replication math"): with R independent
// replications x_1..x_R, the 95 % two-sided confidence interval for the
// mean is  x̄ ± t_{0.975, R-1} · s/√R  where s is the *sample* standard
// deviation (n-1 denominator). Replications are independent simulations
// with distinct seeds, so the i.i.d. assumption holds by construction —
// this is the textbook replication/CI method the Poloczek & Ciucu
// replication study (PAPERS.md) analyzes the sample-efficiency of.
#pragma once

#include <cstdint>
#include <vector>

namespace ntier::sweep {

// Two-sided 95 % Student-t critical value t_{0.975, df}. Exact table
// values for df <= 30; above that the next *smaller* tabulated df
// (40/60/120) is used, which rounds the interval conservatively wide;
// 1.96 (the Normal limit) beyond 120. df == 0 returns 0.
double t_critical_95(std::size_t df);

// A reduced statistic over one grid point's replications.
struct Interval {
  double mean = 0.0;        // sample mean x̄
  double half_width = 0.0;  // t_{0.975, n-1} · s/√n; 0 when n < 2
  double stddev = 0.0;      // sample standard deviation s
  std::uint64_t n = 0;      // number of replications

  // Interval endpoints: mean ∓ half_width.
  double lo() const { return mean - half_width; }
  double hi() const { return mean + half_width; }
};

// Mean and 95 % t-interval of `samples`. Empty input yields all zeros;
// a single sample yields its value with zero width.
Interval t_interval(const std::vector<double>& samples);

}  // namespace ntier::sweep
