#include "sweep/stats.h"

#include <cmath>

namespace ntier::sweep {

double t_critical_95(std::size_t df) {
  // Two-sided 95 % (alpha/2 = 0.025) Student-t critical values.
  static constexpr double kTable[31] = {
      0.0,     12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
      2.306,   2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
      2.120,   2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
      2.064,   2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df];
  if (df < 60) return 2.021;   // df 40 row
  if (df < 120) return 2.000;  // df 60 row
  if (df < 1000) return 1.980; // df 120 row
  return 1.960;                // Normal limit
}

Interval t_interval(const std::vector<double>& samples) {
  Interval out;
  out.n = samples.size();
  if (samples.empty()) return out;
  double sum = 0.0;
  for (double x : samples) sum += x;
  out.mean = sum / static_cast<double>(samples.size());
  if (samples.size() < 2) return out;
  double ss = 0.0;
  for (double x : samples) ss += (x - out.mean) * (x - out.mean);
  out.stddev = std::sqrt(ss / static_cast<double>(samples.size() - 1));
  out.half_width = t_critical_95(samples.size() - 1) * out.stddev /
                   std::sqrt(static_cast<double>(samples.size()));
  return out;
}

}  // namespace ntier::sweep
