// Figure-style text rendering of a finished run.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/system.h"

namespace ntier::core {

// Multi-column "t_s  <series...>" table over [0, until], downsampled to
// `step` (e.g. 0.5 s rows of 50 ms windows keep peaks readable: each row
// shows the max over the windows it covers).
std::string timeline_panel(const monitor::Sampler& sampler,
                           const std::vector<std::string>& series, sim::Time until,
                           sim::Duration step);

// The Fig 1 panel: response-time histogram plus detected modes.
std::string histogram_panel(const monitor::LatencyCollector& collector);

// The Fig 3(c)-style panel: VLRT counts per window, non-zero rows only.
std::string vlrt_panel(const monitor::LatencyCollector& collector);

// One-paragraph run header (config echo).
std::string config_banner(const ExperimentConfig& cfg);

}  // namespace ntier::core
