// Per-hop latency breakdown from request traces.
//
// The paper's micro-level event analysis, automated: given traced
// requests, attribute each request's latency to tiers (first admit to
// last reply per tier, inclusive of nested downstream time), plus the
// retransmission delay inferred from drop stamps. Comparing the normal
// and VLRT populations makes the CTQO signature obvious: VLRT requests
// spend ~k x RTO *in front of* some tier, not inside any of them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "server/request.h"

namespace ntier::core {

// Aggregate in-tier time for one tier across the analyzed requests.
struct HopStats {
  std::string tier;
  std::uint64_t count = 0;
  sim::Duration mean_in_tier;   // admit -> final reply, inclusive
  sim::Duration max_in_tier;
  std::uint64_t drops = 0;      // drop stamps in front of this tier
};

// The full per-hop decomposition of a request population.
struct TraceBreakdown {
  std::vector<HopStats> hops;   // in first-visit order
  std::uint64_t requests = 0;
  sim::Duration mean_total;
  // Mean client-visible time spent waiting on retransmissions (latency
  // minus the time covered inside tiers, clamped at zero).
  sim::Duration mean_outside_tiers;

  // Fixed-width table rendering for reports.
  std::string to_table() const;
};

// Requires requests recorded with tracing enabled; untraced requests are
// skipped.
TraceBreakdown analyze_traces(const std::vector<server::RequestPtr>& requests);

}  // namespace ntier::core
