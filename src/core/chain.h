// ChainSystem: arbitrary-depth n-tier chains.
//
// NTierSystem hardwires the paper's 3-tier testbed; ChainSystem
// generalizes to any chain length so the CTQO mechanics can be studied
// on deeper topologies (the paper's title says *n*-tier): front tier
// faces the clients, each tier forwards to the next, the last tier is a
// leaf. Tiers are sync (thread-per-request) or async (event-driven)
// independently; a freeze-based millibottleneck can be injected into any
// tier. Upstream CTQO then cascades through every synchronous tier above
// the bottleneck, dropping at the first tier below an unbounded source.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/ctqo_analyzer.h"
#include "cpu/dvfs.h"
#include "fault/fault_injector.h"
#include "cpu/host_core.h"
#include "cpu/io_device.h"
#include "monitor/sampler.h"
#include "monitor/vlrt_tracker.h"
#include "server/async_server.h"
#include "server/staged_server.h"
#include "server/sync_server.h"
#include "sim/random.h"
#include "sim/simulation.h"
#include "telemetry/registry.h"
#include "workload/client.h"

namespace ntier::core {

// One tier of a chain: server kind, pool sizing, and its per-request
// work program.
struct ChainTierSpec {
  // Tier name (reports/telemetry) and server model: sync by default.
  std::string name;
  bool async = false;
  // SEDA-style staged tier (takes precedence over `async` when set).
  bool staged = false;
  // Per-kind server configuration (only the active kind's is read) and
  // the tier host's vCPU count.
  server::SyncConfig sync{};
  server::AsyncConfig async_cfg{};
  server::StagedConfig staged_cfg{};
  int vcpus = 1;
  // Tier-local work per request class; use relay_fn/leaf_fn helpers.
  std::function<server::Program(const server::RequestClassProfile&)> program_fn;
  bool has_disk = false;  // attach an IoDevice for kDisk steps
  // Per-tier overload control (policy/overload/overload.h); kNone = the
  // uncontrolled baseline.
  policy::overload::OverloadPolicy overload{};
};

// [cpu(pre), downstream, cpu(post)] regardless of request class.
std::function<server::Program(const server::RequestClassProfile&)> relay_fn(
    sim::Duration pre, sim::Duration post);
// [cpu(demand)] (+ disk step when disk > 0) — the leaf tier.
std::function<server::Program(const server::RequestClassProfile&)> leaf_fn(
    sim::Duration cpu, sim::Duration disk = sim::Duration::zero());

// A whole chain experiment: tiers plus the workload/fault/policy knobs
// shared with ExperimentConfig. Pure value; same config + seed => same
// artifacts.
struct ChainConfig {
  // Run name, the tier stack, and the request-class profile.
  std::string name = "chain";
  std::vector<ChainTierSpec> tiers;  // front (client-facing) first
  server::AppProfile profile = server::AppProfile::rubbos();
  // Load, inter-tier networking, monitoring cadence, run length, seed.
  WorkloadConfig workload{};
  net::RtoPolicy tier_rto = net::RtoPolicy::fixed3s();
  sim::Duration link_latency = sim::Duration::micros(200);
  sim::Duration sample_window = sim::Duration::millis(50);
  sim::Duration duration = sim::Duration::seconds(30);
  std::uint64_t seed = 42;
  // Millibottleneck: periodic freeze of tier `freeze_tier` (-1 = none).
  int freeze_tier = -1;
  cpu::FreezeInjector::Config freeze{};
  // Tail-tolerance policy on every inter-tier hop (see ExperimentConfig).
  policy::TailPolicy tier_policy{};
  // Deterministic fault schedule; tier/hop indices run front to back.
  fault::FaultPlan faults{};
  // Online incident detection (obs/incident_monitor.h). Chains have no
  // tracer, so enabling this runs detectors + timeline capture only.
  obs::ObsConfig obs{};
};

// A built chain: owns the simulation, hosts, servers, clients, and
// monitors for one run. Construction validates and wires; run() drives.
class ChainSystem {
 public:
  // Builds the whole chain from a validated config; non-copyable (every
  // component holds pointers into this system's Simulation).
  explicit ChainSystem(ChainConfig cfg);
  ChainSystem(const ChainSystem&) = delete;
  ChainSystem& operator=(const ChainSystem&) = delete;

  // Runs to cfg.duration (run) or an arbitrary instant (run_until);
  // both start the workload on first call and may be resumed.
  void run();
  void run_until(sim::Time t);

  // The config the system was built from, and per-tier component access
  // (index 0 = front tier; tier_disk is null for diskless tiers).
  const ChainConfig& config() const { return cfg_; }
  std::size_t tier_count() const { return servers_.size(); }
  server::Server* tier(std::size_t i) { return servers_.at(i).get(); }
  const server::Server* tier(std::size_t i) const { return servers_.at(i).get(); }
  cpu::VmCpu* tier_vm(std::size_t i) { return vms_.at(i); }
  const cpu::VmCpu* tier_vm(std::size_t i) const { return vms_.at(i); }
  cpu::IoDevice* tier_disk(std::size_t i) { return disks_.at(i).get(); }
  const cpu::IoDevice* tier_disk(std::size_t i) const { return disks_.at(i).get(); }

  // Shared infrastructure: clock, sampler, telemetry, latency
  // collector, client pool, and the optional injectors.
  sim::Simulation& simulation() { return sim_; }
  const sim::Simulation& simulation() const { return sim_; }
  monitor::Sampler& sampler() { return sampler_; }
  const monitor::Sampler& sampler() const { return sampler_; }
  telemetry::Registry& registry() { return registry_; }
  const telemetry::Registry& registry() const { return registry_; }
  monitor::LatencyCollector& latency() { return latency_; }
  const monitor::LatencyCollector& latency() const { return latency_; }
  workload::ClientPool& clients() { return *clients_; }
  cpu::FreezeInjector* injector() { return injector_.get(); }
  fault::FaultInjector* faults() { return fault_injector_.get(); }
  // Online incident detection; null when cfg.obs is disabled.
  obs::IncidentMonitor* obs() { return obs_.get(); }
  const obs::IncidentMonitor* obs() const { return obs_.get(); }

  // Dropped packets summed over every tier listen queue.
  std::uint64_t total_drops() const;

 private:
  ChainConfig cfg_;
  sim::Simulation sim_;
  sim::Rng rng_;
  telemetry::Registry registry_;
  std::vector<std::unique_ptr<cpu::HostCpu>> hosts_;
  std::vector<cpu::VmCpu*> vms_;
  std::vector<std::unique_ptr<cpu::IoDevice>> disks_;
  std::vector<std::unique_ptr<server::Server>> servers_;
  std::unique_ptr<workload::BurstClock> burst_;
  std::unique_ptr<workload::ClientPool> clients_;
  std::unique_ptr<cpu::FreezeInjector> injector_;
  std::unique_ptr<fault::FaultInjector> fault_injector_;
  monitor::Sampler sampler_;
  monitor::LatencyCollector latency_;
  // Declared after every collector it reads so its (auto-finalizing)
  // destructor runs first.
  std::unique_ptr<obs::IncidentMonitor> obs_;
  bool started_ = false;
};

// CTQO analysis over a chain (same episode semantics as the 3-tier
// analyzer, tier indices run 0..tier_count-1 front to back).
CtqoReport analyze_ctqo(ChainSystem& sys, AnalyzerOptions opt = AnalyzerOptions());

// Rejects nonsensical chain configurations (no tiers, zero pools,
// invalid policies, out-of-range fault targets) with a descriptive
// std::invalid_argument. run_chain() calls this first.
void validate(const ChainConfig& cfg);

// Builds and runs cfg.duration after validating; the system stays alive
// for inspection (mirrors run_system for the 3-tier testbed).
std::unique_ptr<ChainSystem> run_chain(const ChainConfig& cfg);

}  // namespace ntier::core
