#include "core/export.h"

#include "core/manifest.h"
#include "metrics/csv.h"
#include "trace/chrome_trace.h"

namespace ntier::core {

ExportResult export_run_csv(NTierSystem& sys, const std::string& dir) {
  ExportResult result;
  auto emit = [&](const std::string& name, const std::string& content) {
    const std::string path = dir + "/" + name;
    if (metrics::write_file(path, content)) {
      result.files_written.push_back(path);
    } else {
      result.ok = false;
    }
  };

  std::vector<const metrics::Timeline*> series;
  for (const auto& name : sys.sampler().series_names())
    series.push_back(&sys.sampler().series(name));
  emit("series.csv", metrics::timelines_to_csv(series));
  emit("histogram.csv", metrics::histogram_to_csv(sys.latency().histogram()));
  emit("vlrt.csv", metrics::timelines_to_csv({&sys.latency().vlrt_per_window()}));
  sys.latency().flush();  // close the open quantile window before reading
  emit("latency_q.csv",
       metrics::timelines_to_csv({&sys.latency().latency_quantile_series(50.0),
                                  &sys.latency().latency_quantile_series(99.0)}));
  emit("manifest.json", run_manifest_json(sys));
  if (sys.tracer() != nullptr) {
    emit("trace.json", trace::chrome_trace_json(sys.tracer()->traces()));
    emit("trace_spans.csv", trace::spans_csv(sys.tracer()->traces()));
  }
  return result;
}

}  // namespace ntier::core
