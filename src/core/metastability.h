// Metastability verdict engine: did the system recover after the fault?
//
// The overload-control literature (and this repo's PR 1 naive-retry
// experiments) distinguishes two post-fault regimes. In the *recovered*
// regime, clearing the fault lets queues drain and throughput return to
// its pre-fault band within a bounded horizon. In the *metastable*
// regime, the trigger is gone but the storm persists: retransmissions
// and policy retries keep the offered rate above the drain rate, so the
// queues the fault built never empty — the sustaining feedback loop has
// replaced the trigger as the cause of the outage.
//
// This module turns that distinction into a mechanical verdict over the
// Sampler's per-tier series. For each tier it establishes a pre-fault
// baseline (queue peak and goodput mean over the window preceding the
// fault), then scans the post-clear horizon for the first settle period
// in which the queue stayed inside the baseline band AND goodput was
// back at baseline. All tiers recovered => kRecovered with a
// time-to-recovery; any tier still outside its band at the end of the
// horizon => kMetastable, with the offered/drain amplification that
// sustained the storm.
//
// Pure analysis: reads finished timelines, schedules nothing, and is
// deterministic for a given run.
#pragma once

#include <string>
#include <vector>

#include "monitor/sampler.h"
#include "sim/time.h"

namespace ntier::core {

// The two post-fault regimes: queues drained and throughput returned
// (kRecovered), or the storm outlived its trigger (kMetastable).
enum class Regime { kRecovered, kMetastable };
const char* to_string(Regime r);

// Knobs for one verdict: the fault window under judgment and the
// baseline/settle bands that define "back to normal".
struct RecoveryOptions {
  // The fault window being judged (from the injector's plan).
  sim::Time fault_start;
  sim::Time fault_clear;
  // Baseline period: [fault_start - pre_window, fault_start).
  sim::Duration pre_window = sim::Duration::seconds(5);
  // How long after fault_clear the system gets to come back.
  sim::Duration horizon = sim::Duration::seconds(20);
  // A tier counts as recovered only after staying in band this long.
  sim::Duration settle = sim::Duration::seconds(2);
  // Queue band: recovered when the settle-period queue peak is at most
  // max(queue_floor, queue_band * pre-fault queue peak). The floor keeps
  // a near-empty baseline (peak ~0) from demanding a literally empty
  // queue.
  double queue_band = 1.25;
  double queue_floor = 5.0;
  // Goodput band: settle-period completion rate must reach this fraction
  // of the pre-fault mean.
  double goodput_band = 0.8;
};

// Per-tier verdict detail.
struct TierRecovery {
  std::string name;          // sampler prefix ("apache", "tomcat", ...)
  double pre_queue_peak = 0.0;
  double pre_goodput = 0.0;  // completed/s, pre-fault mean
  bool recovered = false;
  // Start of the first settle period with queue and goodput in band
  // (valid iff recovered).
  sim::Time recovered_at;
  double post_queue_peak = 0.0;  // queue peak over the post-clear horizon
  // Mean offered / mean completed over the post-clear horizon: >1
  // sustained means retries are feeding the queue faster than it drains.
  double amplification = 0.0;
  std::string to_string() const;
};

// The whole-system verdict: per-tier detail plus the headline regime,
// time-to-recovery (kRecovered) or storm amplification (kMetastable).
struct MetastabilityVerdict {
  Regime regime = Regime::kMetastable;
  std::vector<TierRecovery> tiers;  // front-to-back order of the input
  // Slowest tier's (recovered_at - fault_clear); valid iff kRecovered.
  sim::Duration time_to_recovery = sim::Duration::zero();
  // Max per-tier amplification over the post-clear horizon.
  double storm_amplification = 0.0;
  // The tier that decided the verdict: last to recover, or the
  // unrecovered tier with the highest amplification.
  std::string worst_tier;
  std::string to_string() const;
};

// Judges one fault window. `tier_prefixes` are the Sampler server
// prefixes front-to-back (each must have .queue/.offered/.completed
// series). The scan steps by the sampler window so same-run calls are
// exactly reproducible.
MetastabilityVerdict classify_recovery(
    const std::vector<std::string>& tier_prefixes,
    const monitor::Sampler& sampler, const RecoveryOptions& opt);

}  // namespace ntier::core
