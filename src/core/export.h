// Whole-run CSV export: dumps every sampled series plus the latency
// artifacts of a run into a directory for external plotting.
#pragma once

#include <string>
#include <vector>

#include "core/system.h"

namespace ntier::core {

// What export_run_csv managed to write (ok = every file succeeded).
struct ExportResult {
  std::vector<std::string> files_written;
  bool ok = true;
};

// Writes into `dir` (must exist):
//   series.csv       — all 50 ms sampler series, merged
//   histogram.csv    — response-time frequency bins
//   vlrt.csv         — VLRT counts per 50 ms window
//   latency_q.csv    — per-second p50/p99 latency
//   manifest.json    — run manifest (core/manifest.h): scenario, seed,
//                      and the telemetry registry's scalar snapshot
// and, when the run had tracing enabled (cfg.trace.mode != kOff):
//   trace.json       — retained span trees in Chrome trace_event format
//                      (load in chrome://tracing or ui.perfetto.dev)
//   trace_spans.csv  — the same spans flat, one row per span
// Column-by-column documentation for every file: docs/METRICS.md.
ExportResult export_run_csv(NTierSystem& sys, const std::string& dir);

}  // namespace ntier::core
