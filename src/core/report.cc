#include "core/report.h"

#include <algorithm>
#include <cstdio>

#include "metrics/table.h"

namespace ntier::core {

std::string timeline_panel(const monitor::Sampler& sampler,
                           const std::vector<std::string>& series, sim::Time until,
                           sim::Duration step) {
  std::vector<std::string> headers{"t_s"};
  for (const auto& s : series) headers.push_back(s);
  metrics::Table table(headers);

  const sim::Duration win = sampler.window();
  const auto per_row = static_cast<std::size_t>(
      std::max<std::int64_t>(1, step.count_micros() / win.count_micros()));

  const auto rows = static_cast<std::size_t>(until.count_micros() / step.count_micros());
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::string> cells;
    const sim::Time t0 = sim::Time::origin() + step * static_cast<std::int64_t>(r);
    cells.push_back(metrics::Table::num(t0.to_seconds(), 2));
    for (const auto& name : series) {
      const auto& line = sampler.series(name);
      double peak = 0.0;
      for (std::size_t k = 0; k < per_row; ++k) {
        const sim::Time t = t0 + win * static_cast<std::int64_t>(k);
        if (t >= until) break;
        peak = std::max(peak, line.value_at_time(t));
      }
      cells.push_back(metrics::Table::num(peak, 1));
    }
    table.add_row(std::move(cells));
  }
  return table.to_string();
}

std::string histogram_panel(const monitor::LatencyCollector& collector) {
  std::string out = "response-time frequency (bin=" +
                    sim::to_string(collector.histogram().bin_width()) + ")\n";
  out += collector.histogram().to_table();
  const auto modes = collector.histogram().modes(3);
  out += "modes:";
  for (auto m : modes) {
    char buf[32];
    std::snprintf(buf, sizeof buf, " %.2fs", m.to_seconds());
    out += buf;
  }
  out += "\n";
  return out;
}

std::string vlrt_panel(const monitor::LatencyCollector& collector) {
  std::string out = "# VLRT requests (>=" +
                    sim::to_string(collector.vlrt_threshold()) + ") per " +
                    sim::to_string(collector.vlrt_per_window().window()) + " window\n";
  out += collector.vlrt_per_window().to_table();
  return out;
}

std::string config_banner(const ExperimentConfig& cfg) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "=== %s ===\narch=%s WL=%zu think=%.1fs duration=%.0fs seed=%llu\n"
                "web=%zu threads x%zu proc, app=%zu threads (%d vcpu), db=%zu threads, "
                "backlog=%zu, db_pool=%zu\n",
                cfg.name.c_str(), to_string(cfg.system.arch), cfg.workload.sessions,
                cfg.workload.mean_think.to_seconds(), cfg.duration.to_seconds(),
                static_cast<unsigned long long>(cfg.seed), cfg.system.web_threads,
                cfg.system.web_processes, cfg.system.app_threads, cfg.system.app_vcpus,
                cfg.system.db_threads, cfg.system.backlog, cfg.system.db_pool);
  return buf;
}

}  // namespace ntier::core
