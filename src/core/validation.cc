#include "core/validation.h"

#include <cmath>
#include <cstdio>

namespace ntier::core {

namespace {

ValidationCheck ratio_check(std::string name, double expected, double measured,
                            double rel_tol) {
  ValidationCheck c;
  c.name = std::move(name);
  c.expected = expected;
  c.measured = measured;
  c.rel_error = expected != 0.0 ? std::abs(measured - expected) / std::abs(expected)
                                : std::abs(measured);
  c.ok = c.rel_error <= rel_tol;
  return c;
}

ValidationCheck exact_check(std::string name, double expected, double measured) {
  ValidationCheck c;
  c.name = std::move(name);
  c.expected = expected;
  c.measured = measured;
  c.rel_error = std::abs(measured - expected);
  c.ok = c.rel_error < 0.5;  // integers
  return c;
}

}  // namespace

ValidationReport validate_run(NTierSystem& sys, double rel_tol) {
  ValidationReport report;
  const auto& cfg = sys.config();
  const sim::Time now = sys.simulation().now();
  const sim::Time from = cfg.workload.measure_from;
  const double horizon_s = (now - from).to_seconds();

  const double X = sys.latency().throughput_rps(from, now);
  const double R = sys.latency().histogram().mean().to_seconds();
  const double Z = cfg.workload.mean_think.to_seconds();
  const double N = static_cast<double>(cfg.workload.sessions);

  if (horizon_s > 1.0 && X > 0.0) {
    // Closed-loop law: X = N / (R + Z).
    report.checks.push_back(
        ratio_check("closed-loop X = N/(R+Z)", N / (R + Z), X, rel_tol));
    // Little's law at the web tier: time-averaged in-system population
    // equals X times the server-side residence time (response time minus
    // the client-side link round trip). Only meaningful without dropped
    // packets: RTO waits happen *outside* the tier, so X*R deliberately
    // overestimates the in-tier population in CTQO runs — that gap is
    // the paper's phenomenon, not a simulator error.
    const std::uint64_t drops = sys.web()->stats().dropped +
                                sys.app()->stats().dropped +
                                sys.db()->stats().dropped;
    if (drops == 0) {
      const double r_server =
          std::max(0.0, R - 2.0 * cfg.workload.client_link.to_seconds());
      const double mean_in_web =
          sys.sampler().series(sys.web()->name() + ".queue").mean_over(from, now);
      ValidationCheck little = ratio_check("Little mean(web.queue) = X*R_server",
                                           X * r_server, mean_in_web, rel_tol * 2.5);
      // Absolute slack for near-empty systems (gauge quantization).
      if (!little.ok && std::abs(little.measured - little.expected) < 0.5)
        little.ok = true;
      report.checks.push_back(little);
    }
  }

  for (auto tier : {Tier::kWeb, Tier::kApp, Tier::kDb}) {
    const auto* srv = sys.tier(tier);
    report.checks.push_back(exact_check(
        srv->name() + " flow balance",
        static_cast<double>(srv->stats().accepted),
        static_cast<double>(srv->stats().completed + srv->queued_requests())));
  }

  // Client conservation.
  report.checks.push_back(exact_check(
      "client conservation",
      static_cast<double>(sys.clients().issued()),
      static_cast<double>(sys.clients().completed() + sys.clients().in_flight())));

  for (const auto& c : report.checks) report.all_ok = report.all_ok && c.ok;
  return report;
}

std::string ValidationReport::to_string() const {
  std::string out = all_ok ? "validation: OK\n" : "validation: FAILED\n";
  char buf[160];
  for (const auto& c : checks) {
    std::snprintf(buf, sizeof buf, "  [%s] %-36s expected=%.2f measured=%.2f err=%.3f\n",
                  c.ok ? "ok" : "FAIL", c.name.c_str(), c.expected, c.measured,
                  c.rel_error);
    out += buf;
  }
  return out;
}

}  // namespace ntier::core
