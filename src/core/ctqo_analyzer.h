// CTQO analyzer: micro-level event analysis of a finished run.
//
// Implements the paper's diagnostic reasoning: cluster dropped packets
// into episodes, find the millibottleneck (a VM whose demand or stall
// pegged at ~100% just before/during the drops — or a saturated disk),
// and classify the episode —
//   upstream CTQO:   drops at a tier *above* the bottleneck tier
//                    (queue overflow pushed back through RPC waits);
//   downstream CTQO: drops at or *below* the bottleneck tier (an async
//                    upstream flooded it, or it overflowed locally).
//
// On top of the paper's classification, the analyzer flags *retry
// storms*: episode chains where the offered rate at the drop tier (TCP
// retransmits + policy-layer retries) stays above the drain rate for
// several RTOs — the metastable regime where retries stop being a
// tail-latency cure and become the amplifier that sustains the CTQO.
//
// Works on the paper's 3-tier NTierSystem and on arbitrary-depth
// ChainSystems through the generic tier-view entry point.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "monitor/sampler.h"
#include "server/server_base.h"
#include "trace/critical_path.h"

namespace ntier::core {

class NTierSystem;

// One drop cluster with its attributed millibottleneck: where packets
// were lost, which tier was saturated just before, and which way the
// queue pressure travelled.
struct CtqoEpisode {
  // Episode extent and the tier that dropped.
  sim::Time start;  // first drop of the cluster
  sim::Time end;    // last drop of the cluster
  int drop_tier = 0;
  std::string drop_tier_name;
  std::uint64_t drops = 0;
  bool bottleneck_found = false;
  int bottleneck_tier = 0;
  std::string bottleneck_name;
  sim::Time bottleneck_at;  // first saturated window near the episode
  enum class Kind { kUpstream, kDownstream, kUnknown } kind = Kind::kUnknown;
  // Retry-storm classification (orthogonal to Kind): this episode is part
  // of a sustained chain where offered load at the drop tier exceeded its
  // drain rate — queue growth kept alive by retransmission/retry
  // feedback rather than by the original burst.
  bool retry_storm = false;
  // Mean offered / mean completed at the drop tier over the storm chain
  // (only meaningful when retry_storm is set).
  double storm_amplification = 0.0;
  // Extent of the storm chain this episode belongs to (first drop of the
  // chain to its last), and the worst offered/drain ratio seen in any
  // one-second slice of the chain — the storm's peak intensity, which a
  // long tail of mild overload would otherwise average away. Only
  // meaningful when retry_storm is set; all episodes of one chain share
  // the same values.
  sim::Duration storm_duration = sim::Duration::zero();
  double storm_peak_amplification = 0.0;
  std::string to_string() const;
};

// All episodes of one run plus the headline counters.
struct CtqoReport {
  // Episodes in start order; counters aggregate their classifications.
  std::vector<CtqoEpisode> episodes;
  std::uint64_t total_drops = 0;
  std::uint64_t upstream_episodes = 0;
  std::uint64_t downstream_episodes = 0;
  std::uint64_t retry_storm_episodes = 0;
  // Storm aggregates across every chain of the run (zero when no storm):
  // duration of the longest chain and the worst one-second peak
  // amplification anywhere. Surfaced in the run manifest.
  sim::Duration longest_storm = sim::Duration::zero();
  double peak_retry_amplification = 0.0;
  std::string to_string() const;
};

// Episode clustering and bottleneck-attribution thresholds.
struct AnalyzerOptions {
  // Drops separated by more than this belong to different episodes.
  sim::Duration episode_gap = sim::Duration::seconds(2);
  // Demand/stall/disk-busy % that counts as a millibottleneck.
  double saturation_pct = 99.0;
  // How far before the first drop to look for the bottleneck.
  sim::Duration lookback = sim::Duration::seconds(2);
  // --- retry-storm detection -------------------------------------------
  // Episodes at the same tier closer than this are chained into one
  // storm candidate. Must exceed episode_gap: a fixed 3 s RTO spaces
  // retransmission waves ~3 s apart, which would otherwise split a
  // single storm into separate episodes.
  sim::Duration storm_merge_gap = sim::Duration::from_seconds(3.5);
  // A chain shorter than this is an ordinary millibottleneck transient,
  // not a storm (several RTOs must have passed without recovery).
  sim::Duration storm_min_duration = sim::Duration::seconds(5);
  // Offered-rate / drain-rate ratio above which the chain is metastable.
  double storm_amplification = 1.5;
};

// One analyzable tier: its server, the steady VM's sampler prefix, and
// (optionally) the sampler prefix of an attached disk ("" = none).
struct TierView {
  server::Server* server = nullptr;
  std::string vm_prefix;
  std::string disk_prefix;
};

// Generic entry point over an ordered front-to-back tier list.
CtqoReport analyze_tiers(const std::vector<TierView>& tiers,
                         const monitor::Sampler& sampler,
                         AnalyzerOptions opt = AnalyzerOptions());

// Convenience for the paper's 3-tier system.
CtqoReport analyze_ctqo(NTierSystem& sys, AnalyzerOptions opt = AnalyzerOptions());

// --- per-VLRT attribution (closes the loop: VLRT -> episode -> tier) ----
//
// For each retained trace above the VLRT line, the critical path names
// where the request's seconds went; when the dominant cost is an RTO
// retransmission gap, the gap's receiver tier is the dropping tier and
// the gap's start instant (== the drop instant) is matched against the
// drop episodes above. The table is the paper's Fig 2/3 narrative, one
// row per request: "this 3.2 s request spent 3.0 s retransmitting into
// mysql during episode 0".
struct VlrtAttributionRow {
  std::uint64_t request_id = 0;
  sim::Duration latency;           // end-to-end (root span duration)
  trace::CriticalPath::Item dominant;  // largest critical-path bucket
  sim::Duration rto_time;          // total rto_gap time across all hops
  double rto_share = 0.0;          // rto_time / latency
  // Receiver side of the largest rto_gap hop ("mysql" from
  // "tomcat->mysql"); empty when the request lost no time to RTO gaps.
  std::string drop_tier;
  // Index into CtqoReport::episodes containing the first retransmission
  // at that tier; -1 when unmatched (e.g. drops outside every episode
  // window, or no RTO involvement at all).
  int episode = -1;
  std::string to_string() const;
};

// The attribution rows for every traced VLRT request of a run.
struct VlrtAttributionTable {
  std::vector<VlrtAttributionRow> rows;  // completion order
  std::string to_string() const;         // header + rows + tier summary
};

// Builds the table from the retained traces and the episode report.
VlrtAttributionTable attribute_vlrt(
    const std::vector<trace::TracePtr>& traces,
    const CtqoReport& report,
    sim::Duration vlrt_threshold = sim::Duration::seconds(3));

}  // namespace ntier::core
