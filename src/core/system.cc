#include "core/system.h"

#include <cassert>

#include "core/correlate.h"
#include "server/tiers.h"
#include "telemetry/publish.h"

namespace ntier::core {

namespace st = server::tiers;

NTierSystem::NTierSystem(ExperimentConfig cfg)
    : cfg_(std::move(cfg)),
      rng_(cfg_.seed),
      registry_(cfg_.sample_window),
      sampler_(sim_, registry_, cfg_.sample_window),
      latency_() {
  build_hosts();
  build_servers();
  build_workload();
  build_monitoring();
  build_faults();
  build_obs();
}

void NTierSystem::build_hosts() {
  hosts_[index(Tier::kWeb)] = std::make_unique<cpu::HostCpu>(sim_, 1.0);
  hosts_[index(Tier::kApp)] =
      std::make_unique<cpu::HostCpu>(sim_, static_cast<double>(cfg_.system.app_vcpus));
  hosts_[index(Tier::kDb)] = std::make_unique<cpu::HostCpu>(sim_, 1.0);

  const bool web_async = cfg_.system.arch != Architecture::kSync;
  const bool app_async = cfg_.system.arch == Architecture::kNx2 ||
                         cfg_.system.arch == Architecture::kNx3;
  const bool db_async = cfg_.system.arch == Architecture::kNx3;
  vms_[0] = hosts_[0]->add_vm(web_async ? "nginx" : "apache", 1);
  vms_[1] = hosts_[1]->add_vm(app_async ? "xtomcat" : "tomcat", cfg_.system.app_vcpus);
  vms_[2] = hosts_[2]->add_vm(db_async ? "xmysql" : "mysql", 1);

  // The consolidated SysBursty VM shares the target tier's host/core.
  const auto kind = cfg_.bottleneck.kind;
  if (kind == MillibottleneckSpec::Kind::kConsolidationBatch ||
      kind == MillibottleneckSpec::Kind::kConsolidationMmpp) {
    bursty_vm_ = hosts_[index(cfg_.bottleneck.target)]->add_vm(
        "sysbursty", 1, cfg_.bottleneck.interference_weight);
  }

  db_disk_ = std::make_unique<cpu::IoDevice>(sim_, "dbdisk");
}

void NTierSystem::build_servers() {
  const SystemConfig& s = cfg_.system;
  const auto* prof = &cfg_.profile;

  // Web tier.
  if (s.arch == Architecture::kSync) {
    auto web_cfg = st::apache_config();
    web_cfg.threads_per_process = s.web_threads;
    web_cfg.max_processes = s.web_processes;
    web_cfg.process_spawn_after = s.web_spawn_after;
    web_cfg.backlog = s.backlog;
    web_cfg.overhead = s.sync_overhead;
    web_cfg.shed_on_overload = s.web_shed_on_overload;
    web_cfg.admission = s.admission;
    web_cfg.cookie_penalty = s.cookie_penalty;
    servers_[0] = st::make_apache(sim_, vms_[0], prof, web_cfg);
  } else {
    auto web_cfg = st::nginx_config();
    web_cfg.lite_q_depth = s.lite_q_web;
    servers_[0] = st::make_nginx(sim_, vms_[0], prof, web_cfg);
  }

  // App tier.
  if (s.arch == Architecture::kSync || s.arch == Architecture::kNx1) {
    auto app_cfg = st::tomcat_config(s.app_threads);
    app_cfg.backlog = s.backlog;
    app_cfg.db_pool = s.db_pool;
    app_cfg.overhead = s.sync_overhead;
    app_cfg.admission = s.admission;
    app_cfg.cookie_penalty = s.cookie_penalty;
    servers_[1] = st::make_tomcat(sim_, vms_[1], prof, app_cfg);
  } else {
    auto app_cfg = st::xtomcat_config();
    app_cfg.lite_q_depth = s.lite_q_app;
    servers_[1] = st::make_xtomcat(sim_, vms_[1], prof, app_cfg);
  }

  // DB tier.
  if (s.arch != Architecture::kNx3) {
    auto db_cfg = st::mysql_config();
    db_cfg.threads_per_process = s.db_threads;
    db_cfg.backlog = s.backlog;
    db_cfg.overhead = s.sync_overhead;
    db_cfg.admission = s.admission;
    db_cfg.cookie_penalty = s.cookie_penalty;
    servers_[2] = st::make_mysql(sim_, vms_[2], prof, db_cfg);
  } else {
    auto db_cfg = st::xmysql_config();
    db_cfg.lite_q_depth = s.lite_q_db;
    db_cfg.max_active = s.db_async_threads;
    servers_[2] = st::make_xmysql(sim_, vms_[2], prof, db_cfg);
  }
  servers_[2]->attach_io(db_disk_.get());

  net::Link tier_link{s.link_latency};
  servers_[0]->connect_downstream(servers_[1].get(), s.tier_rto, tier_link);
  servers_[1]->connect_downstream(servers_[2].get(), s.tier_rto, tier_link);

  if (cfg_.tier_policy.any()) {
    // Distinct jitter streams per hop, decorrelated from the workload
    // streams (fork 1 = clients, 2 = interference).
    servers_[0]->enable_tail_policy(cfg_.tier_policy, rng_.fork(10));
    servers_[1]->enable_tail_policy(cfg_.tier_policy, rng_.fork(11));
  }
  // Per-tier overload control (no rng: the controllers are deterministic
  // state machines; enable_overload_control is a no-op for kNone).
  servers_[0]->enable_overload_control(cfg_.overload.web);
  servers_[1]->enable_overload_control(cfg_.overload.app);
  servers_[2]->enable_overload_control(cfg_.overload.db);
}

void NTierSystem::build_workload() {
  const WorkloadConfig& w = cfg_.workload;
  if (cfg_.trace.mode != trace::TraceMode::kOff)
    tracer_ = std::make_unique<trace::Tracer>(cfg_.trace);
  if (w.burst_index > 1.0) {
    workload::BurstClock::Config bc;
    bc.burst_index = w.burst_index;
    bc.burst_dwell = w.burst_dwell;
    bc.normal_dwell = w.normal_dwell;
    client_burst_ = std::make_unique<workload::BurstClock>(sim_, rng_, bc);
  }
  workload::ClientConfig cc;
  cc.sessions = w.sessions;
  cc.mean_think = w.mean_think;
  cc.rto = w.client_rto;
  cc.link = net::Link{w.client_link};
  cc.trace_requests = w.trace_requests;
  cc.measure_from = w.measure_from;
  cc.timeout = w.client_timeout;
  cc.policy = w.client_policy;
  cc.tracer = tracer_.get();
  if (w.markov_sessions) {
    session_model_ = std::make_unique<workload::SessionModel>(
        workload::SessionModel::rubbos_browse());
    cc.session_model = session_model_.get();
  }
  clients_ = std::make_unique<workload::ClientPool>(
      sim_, rng_.fork(1), &cfg_.profile, servers_[0].get(), cc, client_burst_.get());
  clients_->on_complete([this](const server::RequestPtr& r) {
    latency_.record(r);
    registry_.quantile("client.latency_ms").record(r->latency().to_millis());
  });

  switch (cfg_.bottleneck.kind) {
    case MillibottleneckSpec::Kind::kNone:
      break;
    case MillibottleneckSpec::Kind::kConsolidationBatch:
      interference_ = std::make_unique<workload::InterferenceLoad>(
          sim_, bursty_vm_, cfg_.bottleneck.batch);
      break;
    case MillibottleneckSpec::Kind::kConsolidationMmpp:
      interference_ = std::make_unique<workload::InterferenceLoad>(
          sim_, bursty_vm_, rng_.fork(2), cfg_.bottleneck.mmpp);
      break;
    case MillibottleneckSpec::Kind::kLogFlush:
      collectl_ = std::make_unique<monitor::Collectl>(sim_, db_disk_.get(),
                                                      cfg_.bottleneck.logflush);
      break;
    case MillibottleneckSpec::Kind::kGcPause:
      gc_ = std::make_unique<cpu::FreezeInjector>(
          sim_, vms_[index(cfg_.bottleneck.target)], cfg_.bottleneck.gc);
      break;
    case MillibottleneckSpec::Kind::kDvfs:
      dvfs_ = std::make_unique<cpu::DvfsGovernor>(
          sim_, *hosts_[index(cfg_.bottleneck.target)], cfg_.bottleneck.dvfs);
      break;
  }
}

void NTierSystem::build_monitoring() {
  for (int i = 0; i < 3; ++i) {
    sampler_.track_vm(vms_[i]->name(), vms_[i]);
    sampler_.track_server(servers_[i]->name(), servers_[i].get());
  }
  if (bursty_vm_ != nullptr) sampler_.track_vm("sysbursty", bursty_vm_);
  sampler_.track_io("dbdisk", db_disk_.get());

  // Pull-probes: every layer publishes into the shared registry, sampled
  // at the Sampler tick (no events, no randomness — invariant 10).
  telemetry::publish_simulation(registry_, sim_);
  for (auto& srv : servers_) telemetry::publish_server(registry_, *srv);
  telemetry::publish_transport(registry_, "client", clients_->transport());
  for (int i = 0; i < 2; ++i) {
    if (auto* t = servers_[i]->downstream_transport())
      telemetry::publish_transport(registry_, servers_[i]->name(), *t);
  }
  if (const auto* g = clients_->governor()) telemetry::publish_governor(registry_, "client", *g);
  for (int i = 0; i < 2; ++i) {
    if (const auto* g = servers_[i]->governor())
      telemetry::publish_governor(registry_, servers_[i]->name(), *g);
  }
  for (auto& srv : servers_) {
    if (const auto* c = srv->overload())
      telemetry::publish_overload(registry_, srv->name(), *c);
  }
  // SYN-cookie slow-path counter, only under that admission mode (the
  // default registry snapshot stays unchanged).
  for (auto& srv : servers_) {
    if (const auto* q = srv->accept_queue();
        q != nullptr && q->mode() == net::AdmissionMode::kSynCookies)
      telemetry::publish_accept_queue(registry_, srv->name(), *q);
  }
}

void NTierSystem::build_faults() {
  if (cfg_.faults.empty()) return;
  fault::FaultTargets targets;
  for (auto& srv : servers_) targets.tiers.push_back(srv.get());
  for (auto& host : hosts_) targets.hosts.push_back(host.get());
  targets.hops = {&clients_->transport(), servers_[0]->downstream_transport(),
                  servers_[1]->downstream_transport()};
  fault_injector_ = std::make_unique<fault::FaultInjector>(
      sim_, rng_.fork(20), cfg_.faults, std::move(targets));
}

void NTierSystem::build_obs() {
  if (!cfg_.obs.enabled) return;
  obs_ = std::make_unique<obs::IncidentMonitor>(cfg_.obs);
  obs::Bindings b;
  b.sampler = &sampler_;
  b.registry = &registry_;
  b.vlrt = &latency_.vlrt_per_window();
  b.tracer = tracer_.get();
  b.run_name = cfg_.name;
  b.groups = detector_groups(collect_signals(*this));
  obs_->attach(std::move(b));
}

void NTierSystem::run() { run_until(sim_.now() + cfg_.duration); }

void NTierSystem::run_until(sim::Time t) {
  if (!started_) {
    started_ = true;
    sampler_.start();
    clients_->start();
    if (fault_injector_) fault_injector_->arm();
  }
  sim_.run_until(t);
}

}  // namespace ntier::core
