// Run validation: queueing-theory sanity checks over a finished run.
//
// A simulator is only trustworthy if the classic conservation laws hold
// in its measured output. `validate_run` checks:
//   * Little's law at the system level: mean in-flight N = X * R
//     computed from three *independent* measurements (client counters,
//     throughput windows, latency histogram);
//   * closed-loop law: X = sessions / (R + Z);
//   * flow balance per tier: accepted = completed + in-system.
// Every canned scenario must pass within tolerance (tests enforce it).
#pragma once

#include <string>
#include <vector>

#include "core/system.h"

namespace ntier::core {

// One conservation/consistency check: expected vs. measured.
struct ValidationCheck {
  std::string name;
  double expected = 0.0;
  double measured = 0.0;
  double rel_error = 0.0;
  bool ok = false;
};

// All checks for one run; all_ok is their conjunction.
struct ValidationReport {
  std::vector<ValidationCheck> checks;
  bool all_ok = true;
  std::string to_string() const;
};

// `rel_tol` applies to the ratio checks; flow balance must hold exactly.
ValidationReport validate_run(NTierSystem& sys, double rel_tol = 0.1);

}  // namespace ntier::core
