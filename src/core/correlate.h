// Automated millibottleneck -> VLRT correlation engine.
//
// The paper's diagnosis (Figs 3, 5, 7-9) was done by hand: overlay the
// 50 ms resource timelines, the per-tier queue/drop series, and the VLRT
// windows, then eyeball which saturation spike lines up with which drop
// burst and which VLRT cluster 3 s later. This module automates that
// reasoning from the telemetry registry's timelines alone — it is given
// no scenario knowledge (which figure, which bottleneck was injected),
// only the per-tier series names and the VLRT series.
//
// Method: lagged Pearson cross-correlation over the shared 50 ms window
// grid. For every candidate saturation series S (VM demand/stall, disk
// busy) and every tier D that dropped packets, the engine scores the
// two-link causal chain
//
//     S  --fill lag-->  D.dropped  --RTO lag-->  VLRT per window
//
// where the first link captures queue fill (saturation precedes the
// overflow by roughly the time the queues take to fill, sub-second) and
// the second captures the paper's signature: a dropped SYN/packet
// surfaces as a client VLRT one retransmission timeout (~3 s) after the
// drop. A chain's score is the weaker of its two link correlations, so
// a spuriously co-moving series that cannot explain the drops (or drops
// that cannot explain the VLRTs) ranks low. The top chain names the
// bottleneck device and the RTO-link lag is the headline "saturation
// causes VLRT at ~3 s" number.
//
// The engine also classifies queue-depth propagation direction the same
// way the paper distinguishes its architectures: drops concentrated
// *above* the bottleneck tier mean the overflow pushed back through
// RPC waits (upstream CTQO, fully synchronous stacks), drops at or
// *below* it mean an asynchronous upstream flooded it (downstream
// CTQO), and no drops at all means the chain absorbed the burst
// (fully asynchronous stacks).
//
// Determinism: lag sweeps ascend and only a strictly greater r replaces
// the incumbent, candidate enumeration order is fixed (front-to-back
// tiers, disk before VM series), and no randomness is drawn — the same
// run yields byte-identical reports.
#pragma once

#include <string>
#include <vector>

#include "metrics/timeline.h"
#include "obs/detector.h"
#include "sim/time.h"
#include "telemetry/registry.h"

namespace ntier::core {

class NTierSystem;
class ChainSystem;

// One lag-swept correlation: source leads target by `lag_windows`.
struct LagCorrelation {
  std::string source;
  std::string target;
  int lag_windows = 0;
  double lag_seconds = 0.0;
  double r = 0.0;  // Pearson coefficient at the best (strictly max) lag
  std::string to_string() const;
};

// A scored saturation -> drops -> VLRT chain.
struct CausalChain {
  int bottleneck_tier = -1;       // tier owning the saturation series
  std::string saturation_series;  // e.g. "dbdisk.busy", "tomcat.demand"
  int drop_tier = -1;
  std::string drop_series;  // e.g. "apache.dropped"
  LagCorrelation fill;      // saturation -> drops (queue-fill lag)
  LagCorrelation rto;       // drops -> VLRT (the ~3 s retransmission lag)
  double score = 0.0;       // min(fill.r, rto.r)
  std::string to_string() const;
};

// Which way queue pressure travelled (kAbsent = no CTQO evidence).
enum class Propagation { kUpstream, kDownstream, kAbsent };
const char* to_string(Propagation p);

// The correlation engine's full answer over one run's telemetry.
struct CorrelationReport {
  // All chains, best first (score desc; enumeration order breaks ties).
  std::vector<CausalChain> chains;
  // Every candidate series correlated directly against VLRT, r desc —
  // the "ranked pairs" table a human would scan for spurious matches.
  std::vector<LagCorrelation> direct;

  // Conclusion: drawn from the dominant drop tier (most drops) and the
  // best chain explaining it.
  Propagation propagation = Propagation::kAbsent;
  int drop_tier = -1;
  std::string drop_tier_name;
  int bottleneck_tier = -1;
  std::string bottleneck_series;  // saturation series of the best chain

  // Supporting evidence: when each tier's queue first reached half its
  // run maximum (seconds; -1 when the queue never grew). Upstream CTQO
  // shows back-to-front onset, downstream shows front-to-back.
  std::vector<std::pair<std::string, double>> queue_onsets;

  // Multi-line human-readable rendering.
  std::string to_string() const;
};

// What the engine reads: registry series names per tier plus the VLRT
// series. Tier order is front (client-facing) to back.
struct TierSignals {
  std::string name;                     // server/tier name ("apache")
  std::vector<std::string> saturation;  // candidate series, disk first
  std::string dropped;                  // "<name>.dropped"
  std::string queue;                    // "<name>.queue"
};
// The bundle of series the correlator reads: one registry, the VLRT
// timeline, and the per-tier signal names.
struct SignalSet {
  // Non-owning; both must outlive the correlate() call.
  const telemetry::Registry* registry = nullptr;
  const metrics::Timeline* vlrt = nullptr;  // 50 ms VLRT counts
  std::vector<TierSignals> tiers;
  sim::Duration window = sim::Duration::millis(50);
};

// Tuning knobs for the lag-correlation search.
struct CorrelateOptions {
  // Saturation candidates are correlated as 0/1 pegged-window indicators
  // (value >= this %), the paper's millibottleneck definition — raw
  // utilization co-moves with the *consequences* of backpressure and
  // would misattribute the bottleneck.
  double saturation_pct = 99.0;
  // Queue-fill link sweep bound: saturation may lead drops by up to this
  // many windows (2 s at 50 ms).
  int max_fill_lag_windows = 40;
  // RTO link sweep bound: drops may lead VLRTs by up to this many
  // windows (5 s covers the 3 s RTO plus residual queueing).
  int max_rto_lag_windows = 100;
  // Chains whose weaker link falls below this are noise and are pruned.
  double min_link_r = 0.05;
};

// Signal extraction (no analysis): names every per-tier saturation/queue/
// drop series the systems publish, in tier order.
SignalSet collect_signals(const NTierSystem& sys);
SignalSet collect_signals(const ChainSystem& sys);

// Adapts a SignalSet into the obs detector suite's per-tier series
// groups — the same series the offline engine correlates are what the
// online detectors (obs/detector.h default_suite) watch, which is what
// makes online-vs-offline precision/recall scoring apples-to-apples.
std::vector<obs::SeriesGroup> detector_groups(const SignalSet& s);

// The engine proper. Pure function of the signals: reads timelines,
// schedules nothing, draws no randomness (DESIGN.md invariant 10).
CorrelationReport correlate_signals(const SignalSet& s,
                                    CorrelateOptions opt = CorrelateOptions());

// Convenience wrappers.
CorrelationReport correlate(const NTierSystem& sys,
                            CorrelateOptions opt = CorrelateOptions());
CorrelationReport correlate(const ChainSystem& sys,
                            CorrelateOptions opt = CorrelateOptions());

}  // namespace ntier::core
