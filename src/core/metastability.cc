#include "core/metastability.h"

#include <algorithm>
#include <cstdio>

namespace ntier::core {

const char* to_string(Regime r) {
  switch (r) {
    case Regime::kRecovered: return "recovered";
    case Regime::kMetastable: return "metastable";
  }
  return "?";
}

std::string TierRecovery::to_string() const {
  char buf[192];
  if (recovered) {
    std::snprintf(buf, sizeof buf,
                  "  %-10s recovered at t=%.2fs  (pre peak %.1f, post peak %.1f, "
                  "amplification %.2fx)",
                  name.c_str(), recovered_at.to_seconds(), pre_queue_peak,
                  post_queue_peak, amplification);
  } else {
    std::snprintf(buf, sizeof buf,
                  "  %-10s NOT recovered        (pre peak %.1f, post peak %.1f, "
                  "amplification %.2fx)",
                  name.c_str(), pre_queue_peak, post_queue_peak, amplification);
  }
  return buf;
}

std::string MetastabilityVerdict::to_string() const {
  char head[160];
  if (regime == Regime::kRecovered) {
    std::snprintf(head, sizeof head,
                  "verdict: RECOVERED  time-to-recovery %.2fs  amplification %.2fx "
                  "(slowest tier: %s)",
                  time_to_recovery.to_seconds(), storm_amplification,
                  worst_tier.c_str());
  } else {
    std::snprintf(head, sizeof head,
                  "verdict: METASTABLE  amplification %.2fx (worst tier: %s)",
                  storm_amplification, worst_tier.c_str());
  }
  std::string out = head;
  for (const auto& t : tiers) {
    out += '\n';
    out += t.to_string();
  }
  return out;
}

MetastabilityVerdict classify_recovery(
    const std::vector<std::string>& tier_prefixes,
    const monitor::Sampler& sampler, const RecoveryOptions& opt) {
  MetastabilityVerdict v;
  const sim::Duration win = sampler.window();
  const sim::Time horizon_end = opt.fault_clear + opt.horizon;

  for (const auto& prefix : tier_prefixes) {
    const metrics::Timeline& queue = sampler.series(prefix + ".queue");
    const metrics::Timeline& offered = sampler.series(prefix + ".offered");
    const metrics::Timeline& completed = sampler.series(prefix + ".completed");

    TierRecovery tr;
    tr.name = prefix;
    const sim::Time pre_from = opt.fault_start - opt.pre_window;
    tr.pre_queue_peak = queue.max_over(pre_from, opt.fault_start);
    tr.pre_goodput = completed.mean_over(pre_from, opt.fault_start);
    tr.post_queue_peak = queue.max_over(opt.fault_clear, horizon_end);

    const double drain = completed.mean_over(opt.fault_clear, horizon_end);
    const double offer = offered.mean_over(opt.fault_clear, horizon_end);
    tr.amplification = offer / std::max(drain, 1e-9);

    const double queue_ok =
        std::max(opt.queue_floor, opt.queue_band * tr.pre_queue_peak);
    const double goodput_ok = opt.goodput_band * tr.pre_goodput;
    for (sim::Time t = opt.fault_clear; t + opt.settle <= horizon_end; t = t + win) {
      if (queue.max_over(t, t + opt.settle) <= queue_ok &&
          completed.mean_over(t, t + opt.settle) >= goodput_ok) {
        tr.recovered = true;
        tr.recovered_at = t;
        break;
      }
    }
    v.tiers.push_back(std::move(tr));
  }

  bool all = !v.tiers.empty();
  sim::Duration ttr = sim::Duration::zero();
  for (const auto& t : v.tiers) {
    if (!t.recovered) all = false;
    v.storm_amplification = std::max(v.storm_amplification, t.amplification);
  }
  if (all) {
    v.regime = Regime::kRecovered;
    for (const auto& t : v.tiers) {
      const sim::Duration d = t.recovered_at - opt.fault_clear;
      if (t.recovered && d >= ttr) {
        ttr = d;
        v.worst_tier = t.name;
      }
    }
    v.time_to_recovery = ttr;
  } else {
    v.regime = Regime::kMetastable;
    double worst = -1.0;
    for (const auto& t : v.tiers) {
      if (!t.recovered && t.amplification > worst) {
        worst = t.amplification;
        v.worst_tier = t.name;
      }
    }
  }
  return v;
}

}  // namespace ntier::core
