#include "core/scenarios.h"

namespace ntier::core::scenarios {

using sim::Duration;
using sim::Time;

namespace {

// Consolidation batch tuned so each burst saturates the shared core
// long enough (~0.5-1 s) to overflow MaxSysQDepth at WL 7000.
workload::InterferenceLoad::BatchConfig paper_batch(Time first, Duration period) {
  workload::InterferenceLoad::BatchConfig b;
  b.first_at = first;
  b.period = period;
  b.batch_size = 400;  // "a batch of 400 ViewStory requests"
  b.demand_per_job = Duration::micros(1500);
  return b;
}

ExperimentConfig base_sync() {
  ExperimentConfig cfg;
  cfg.system.arch = Architecture::kSync;
  cfg.workload.sessions = 7000;
  cfg.workload.measure_from = Time::from_seconds(0.0);
  return cfg;
}

}  // namespace

ExperimentConfig fig1_multimodal(std::size_t workload) {
  ExperimentConfig cfg = base_sync();
  cfg.name = "fig1-wl" + std::to_string(workload);
  cfg.workload.sessions = workload;
  cfg.duration = Duration::seconds(300);
  cfg.bottleneck.kind = MillibottleneckSpec::Kind::kConsolidationMmpp;
  cfg.bottleneck.target = Tier::kApp;
  cfg.bottleneck.mmpp.clients = 400;  // paper: SysBursty = 400 clients
  cfg.bottleneck.mmpp.mean_think = Duration::seconds(7);
  cfg.bottleneck.mmpp.demand_per_job = Duration::micros(1500);
  cfg.bottleneck.mmpp.burst.burst_index = 100.0;
  cfg.bottleneck.mmpp.burst.burst_dwell = Duration::millis(800);
  cfg.bottleneck.mmpp.burst.normal_dwell = Duration::seconds(14);
  cfg.workload.measure_from = Time::from_seconds(10.0);
  return cfg;
}

ExperimentConfig fig3_consolidation_sync() {
  ExperimentConfig cfg = base_sync();
  cfg.name = "fig3-consolidation-sync";
  cfg.duration = Duration::seconds(24);
  // Let repeated bursts push prefork into its second process, exposing
  // the 278 -> 428 second-level overflow of Fig 3(b).
  cfg.system.web_spawn_after = Duration::from_seconds(0.5);
  cfg.bottleneck.kind = MillibottleneckSpec::Kind::kConsolidationBatch;
  cfg.bottleneck.target = Tier::kApp;  // SysSteady-Tomcat x SysBursty-MySQL
  cfg.bottleneck.batch = paper_batch(Time::from_seconds(2.0), Duration::from_seconds(4.5));
  return cfg;
}

ExperimentConfig fig5_logflush_sync() {
  ExperimentConfig cfg = base_sync();
  cfg.name = "fig5-logflush-sync";
  cfg.duration = Duration::seconds(85);
  cfg.system.app_vcpus = 4;  // paper: Tomcat scaled to 4 cores
  cfg.bottleneck.kind = MillibottleneckSpec::Kind::kLogFlush;
  cfg.bottleneck.logflush.first_flush = Time::from_seconds(10.0);
  cfg.bottleneck.logflush.flush_period = Duration::seconds(30);
  cfg.bottleneck.logflush.bytes_per_flush = 36ull * 1024 * 1024;
  return cfg;
}

ExperimentConfig fig7_nx1() {
  ExperimentConfig cfg = base_sync();
  cfg.name = "fig7-nx1-tomcat-mb";
  cfg.system.arch = Architecture::kNx1;
  cfg.system.app_threads = 165;  // paper: MaxSysQDepth(Tomcat) = 165+128
  cfg.duration = Duration::seconds(62);
  cfg.bottleneck.kind = MillibottleneckSpec::Kind::kConsolidationBatch;
  cfg.bottleneck.target = Tier::kApp;
  cfg.bottleneck.batch = paper_batch(Time::from_seconds(7.0), Duration::from_seconds(16.5));
  return cfg;
}

ExperimentConfig fig8_nx2_mysql() {
  ExperimentConfig cfg = base_sync();
  cfg.name = "fig8-nx2-mysql-mb";
  cfg.system.arch = Architecture::kNx2;
  cfg.duration = Duration::seconds(62);
  cfg.bottleneck.kind = MillibottleneckSpec::Kind::kConsolidationBatch;
  cfg.bottleneck.target = Tier::kDb;  // SysBursty co-located with MySQL
  cfg.bottleneck.batch = paper_batch(Time::from_seconds(6.0), Duration::from_seconds(17.0));
  return cfg;
}

ExperimentConfig fig9_nx2_xtomcat() {
  ExperimentConfig cfg = base_sync();
  cfg.name = "fig9-nx2-xtomcat-mb";
  cfg.system.arch = Architecture::kNx2;
  cfg.duration = Duration::seconds(50);
  cfg.bottleneck.kind = MillibottleneckSpec::Kind::kConsolidationBatch;
  cfg.bottleneck.target = Tier::kApp;  // SysBursty co-located with XTomcat
  cfg.bottleneck.batch = paper_batch(Time::from_seconds(8.0), Duration::from_seconds(15.5));
  return cfg;
}

ExperimentConfig fig10_nx3_xtomcat() {
  ExperimentConfig cfg = fig9_nx2_xtomcat();
  cfg.name = "fig10-nx3-xtomcat-mb";
  cfg.system.arch = Architecture::kNx3;
  cfg.bottleneck.batch = paper_batch(Time::from_seconds(4.0), Duration::from_seconds(15.0));
  return cfg;
}

ExperimentConfig fig11_nx3_logflush() {
  ExperimentConfig cfg = fig5_logflush_sync();
  cfg.name = "fig11-nx3-logflush";
  cfg.system.arch = Architecture::kNx3;
  return cfg;
}

ExperimentConfig fig12_point(Architecture arch, std::size_t concurrency) {
  ExperimentConfig cfg;
  cfg.name = std::string("fig12-") +
             (arch == Architecture::kSync ? "sync" : "async") + "-c" +
             std::to_string(concurrency);
  cfg.system.arch = arch;
  cfg.duration = Duration::seconds(30);
  cfg.workload.sessions = concurrency;
  cfg.workload.mean_think = Duration::zero();
  cfg.workload.measure_from = Time::from_seconds(5.0);
  if (arch == Architecture::kSync) {
    // The "RPC purist" alternative: 2000-thread pools everywhere, with
    // the concurrency-overhead model active (paper §V-E).
    cfg.system.web_threads = 2000;
    cfg.system.web_processes = 1;
    cfg.system.app_threads = 2000;
    cfg.system.db_threads = 2000;
    cfg.system.db_pool = 2000;
    cfg.system.sync_overhead.alpha_per_thread = 1.3e-3;
    cfg.system.sync_overhead.gc_interval = Duration::seconds(2);
    cfg.system.sync_overhead.gc_base = Duration::millis(5);
    cfg.system.sync_overhead.gc_per_thread = Duration::micros(50);
  }
  return cfg;
}

ExperimentConfig ext_gc_pause(Architecture arch) {
  ExperimentConfig cfg = base_sync();
  cfg.name = std::string("ext-gc-") + (arch == Architecture::kSync ? "sync" : "nx3");
  cfg.system.arch = arch;
  cfg.duration = Duration::seconds(45);
  cfg.bottleneck.kind = MillibottleneckSpec::Kind::kGcPause;
  cfg.bottleneck.target = Tier::kApp;
  cfg.bottleneck.gc.first = Time::from_seconds(8.0);
  cfg.bottleneck.gc.period = Duration::seconds(12);
  cfg.bottleneck.gc.pause = Duration::millis(450);  // full-GC scale pause
  return cfg;
}

ExperimentConfig ext_dvfs(Architecture arch) {
  ExperimentConfig cfg;
  cfg.name = std::string("ext-dvfs-") + (arch == Architecture::kSync ? "sync" : "nx3");
  cfg.system.arch = arch;
  cfg.duration = Duration::seconds(60);
  // Light load parks the ondemand governor at its floor (util between
  // the thresholds); multi-second client bursts then outrun the sluggish
  // ~8 s ramp — several governor intervals of capacity deficit.
  cfg.workload.sessions = 1800;
  cfg.workload.burst_index = 8.0;
  cfg.workload.burst_dwell = Duration::seconds(5);
  cfg.workload.normal_dwell = Duration::seconds(25);
  cfg.bottleneck.kind = MillibottleneckSpec::Kind::kDvfs;
  cfg.bottleneck.target = Tier::kApp;
  cfg.bottleneck.dvfs.min_freq = 0.3;
  cfg.bottleneck.dvfs.step = 0.175;  // ~8 s from floor to full speed
  cfg.bottleneck.dvfs.interval = Duration::seconds(2);
  cfg.bottleneck.dvfs.start_freq = 0.3;
  return cfg;
}

const char* to_string(TailPolicyChoice c) {
  switch (c) {
    case TailPolicyChoice::kNone: return "none";
    case TailPolicyChoice::kNaiveRetry: return "naive-retry";
    case TailPolicyChoice::kBudgetedRetry: return "budgeted-retry";
    case TailPolicyChoice::kDeadline: return "deadline";
    case TailPolicyChoice::kHedge: return "hedge";
    case TailPolicyChoice::kBreaker: return "breaker";
    case TailPolicyChoice::kDeadlineHedge: return "deadline+hedge";
    case TailPolicyChoice::kFull: return "full";
  }
  return "?";
}

policy::TailPolicy make_tail_policy(TailPolicyChoice c) {
  policy::TailPolicy p;
  switch (c) {
    case TailPolicyChoice::kNone:
      break;
    case TailPolicyChoice::kNaiveRetry:
      // Give up on an attempt well before the 3 s RTO delivers it, then
      // re-issue almost immediately, in phase with everyone else. Each
      // timed-out attempt keeps retransmitting into the full queue while
      // its replacement joins it — the amplification feedback loop.
      p.attempt_timeout = Duration::seconds(1);
      p.retry.max_attempts = 4;
      p.retry.base_backoff = Duration::millis(10);
      p.retry.max_backoff = Duration::millis(10);
      p.retry.decorrelated_jitter = false;
      break;
    case TailPolicyChoice::kBudgetedRetry:
      p.attempt_timeout = Duration::seconds(1);
      p.retry.max_attempts = 4;
      p.retry.base_backoff = Duration::millis(50);
      p.retry.max_backoff = Duration::seconds(2);
      p.retry.decorrelated_jitter = true;
      p.retry.budget_ratio = 0.1;  // retries may add at most 10% load
      p.retry.budget_capacity = 50.0;
      break;
    case TailPolicyChoice::kDeadline:
      p.deadline = Duration::from_seconds(2.5);
      break;
    case TailPolicyChoice::kHedge:
      p.hedge.enabled = true;
      p.hedge.percentile = 0.95;
      p.hedge.initial_delay = Duration::millis(500);
      p.hedge.min_delay = Duration::millis(20);
      p.hedge.max_hedges = 1;
      break;
    case TailPolicyChoice::kBreaker:
      p.breaker.enabled = true;
      p.breaker.failure_threshold = 0.5;
      p.breaker.min_samples = 20;
      p.breaker.window = Duration::seconds(1);
      p.breaker.open_for = Duration::seconds(2);
      break;
    case TailPolicyChoice::kDeadlineHedge:
      // The lossy-link antidote: a second (and third) copy after the
      // observed p95 survives independent packet loss; the deadline
      // bounds whatever still straggles. No retries, no breaker.
      p.deadline = Duration::from_seconds(2.5);
      p.hedge.enabled = true;
      p.hedge.percentile = 0.95;
      p.hedge.initial_delay = Duration::millis(500);
      p.hedge.min_delay = Duration::millis(20);
      p.hedge.max_hedges = 2;
      break;
    case TailPolicyChoice::kFull:
      p.deadline = Duration::from_seconds(2.5);
      p.attempt_timeout = Duration::seconds(1);
      p.retry.max_attempts = 3;
      p.retry.base_backoff = Duration::millis(50);
      p.retry.max_backoff = Duration::seconds(2);
      p.retry.decorrelated_jitter = true;
      p.retry.budget_ratio = 0.1;
      p.retry.budget_capacity = 50.0;
      p.hedge.enabled = true;
      p.hedge.percentile = 0.95;
      p.hedge.initial_delay = Duration::millis(500);
      p.hedge.min_delay = Duration::millis(20);
      p.breaker.enabled = true;
      p.breaker.failure_threshold = 0.5;
      p.breaker.min_samples = 20;
      p.breaker.window = Duration::seconds(1);
      p.breaker.open_for = Duration::seconds(2);
      break;
  }
  return p;
}

ExperimentConfig ext_tail_tolerance(Architecture arch, TailPolicyChoice choice) {
  ExperimentConfig cfg = fig3_consolidation_sync();
  cfg.name = std::string("ext-tail-") +
             (arch == Architecture::kSync ? "sync" : "nx3") + "-" + to_string(choice);
  cfg.system.arch = arch;
  // Run closer to saturation than fig 3 proper: with little headroom the
  // queues drain slowly after each burst, so policy re-sends arrive while
  // the overflow is still standing — the regime where retries can tip a
  // transient millibottleneck into a metastable storm.
  cfg.workload.sessions = 8000;
  cfg.duration = Duration::seconds(40);
  cfg.workload.client_policy = make_tail_policy(choice);
  return cfg;
}

ExperimentConfig ext_lossy_link(Architecture arch, TailPolicyChoice choice) {
  ExperimentConfig cfg = fig5_logflush_sync();
  cfg.name = std::string("ext-lossy-") +
             (arch == Architecture::kSync ? "sync" : "nx3") + "-" + to_string(choice);
  cfg.system.arch = arch;
  cfg.workload.client_policy = make_tail_policy(choice);
  // Two deterministic loss windows on the client hop. A first packet lost
  // in-window comes back after one 3 s RTO — exactly the paper's VLRT
  // modes, but caused by the network instead of admission drops.
  for (double at : {20.0, 50.0}) {
    fault::LinkDegradeWindow w;
    w.hop = 0;
    w.at = Time::from_seconds(at);
    w.duration = Duration::seconds(3);
    w.loss_prob = 0.25;
    w.extra_latency = Duration::millis(1);
    cfg.faults.links.push_back(w);
  }
  return cfg;
}

ExperimentConfig ext_fault_injection(Architecture arch) {
  ExperimentConfig cfg = base_sync();
  cfg.name = std::string("ext-faults-") + (arch == Architecture::kSync ? "sync" : "nx3");
  cfg.system.arch = arch;
  cfg.duration = Duration::seconds(60);
  {
    fault::CrashWindow c;
    c.tier = 2;  // the DB goes away mid-run
    c.at = Time::from_seconds(12.0);
    c.down_for = Duration::from_seconds(1.5);
    c.in_flight = fault::CrashWindow::InFlight::kAbort;
    cfg.faults.crashes.push_back(c);
  }
  {
    fault::SlowNodeWindow s;
    s.tier = 1;  // app host throttles to 30% speed
    s.at = Time::from_seconds(28.0);
    s.duration = Duration::seconds(2);
    s.speed_factor = 0.3;
    cfg.faults.slow_nodes.push_back(s);
  }
  {
    fault::LinkDegradeWindow l;
    l.hop = 1;  // web -> app link degrades
    l.at = Time::from_seconds(44.0);
    l.duration = Duration::seconds(3);
    l.loss_prob = 0.2;
    l.extra_latency = Duration::millis(2);
    cfg.faults.links.push_back(l);
  }
  return cfg;
}

const char* to_string(OverloadChoice c) {
  switch (c) {
    case OverloadChoice::kNone: return "none";
    case OverloadChoice::kQueueCap: return "queue-cap";
    case OverloadChoice::kTokenBucket: return "token-bucket";
    case OverloadChoice::kCoDel: return "codel";
    case OverloadChoice::kAdaptiveLifo: return "adaptive-lifo";
    case OverloadChoice::kBrownout: return "brownout";
  }
  return "?";
}

policy::overload::OverloadPolicy make_overload_policy(OverloadChoice c) {
  using policy::overload::OverloadPolicy;
  using OK = policy::overload::Kind;
  OverloadPolicy p;
  switch (c) {
    case OverloadChoice::kNone:
      break;
    case OverloadChoice::kQueueCap:
      // Shed as errors well before MaxSysQDepth (278 at the web tier)
      // would start dropping packets into 3 s retransmission limbo.
      p.kind = OK::kQueueCap;
      p.queue_cap = 100;
      break;
    case OverloadChoice::kTokenBucket:
      // Provisioned near the healthy operating point (~1.1k req/s at WL
      // 8000 with 7 s think); the burst absorbs sampling noise only.
      p.kind = OK::kTokenBucket;
      p.bucket_rate = 1400.0;
      p.bucket_burst = 150.0;
      break;
    case OverloadChoice::kCoDel:
      // Classic parameters scaled to this stack: healthy queue waits are
      // sub-millisecond, so a 20 ms sojourn sustained for 100 ms is
      // unambiguous standing queue.
      p.kind = OK::kCoDel;
      p.codel_target = Duration::millis(20);
      p.codel_interval = Duration::millis(100);
      break;
    case OverloadChoice::kAdaptiveLifo:
      // Newest-first once the backlog passes 16. The stale-shed bound
      // must sit below the storm's standing backlog wait (~120 ms here:
      // MaxSysQDepth minus the thread pool, over the drain rate) or the
      // age gate never fires and the full front door keeps TCP-dropping;
      // healthy waits are sub-millisecond, so 50 ms is far out of band.
      p.kind = OK::kAdaptiveLifo;
      p.lifo_threshold = 16;
      p.lifo_max_sojourn = Duration::millis(50);
      break;
    case OverloadChoice::kBrownout:
      // Degrade (skip the downstream call) once 32 requests are in
      // system; hard-shed above 200 so the queue stays bounded even if
      // degraded service alone cannot keep up.
      p.kind = OK::kBrownout;
      p.degrade_above = 32;
      p.brownout_cap = 200;
      break;
  }
  return p;
}

ExperimentConfig ext_overload_control(OverloadChoice choice) {
  ExperimentConfig cfg = base_sync();
  cfg.name = std::string("ext-overload-") + to_string(choice);
  // Near saturation, with the storm-prone client configuration of the
  // tail-tolerance study: tight 1 s attempt timeout, 4 attempts, tiny
  // synchronized backoff, no budget.
  cfg.workload.sessions = 8000;
  cfg.workload.client_policy = make_tail_policy(TailPolicyChoice::kNaiveRetry);
  cfg.duration = Duration::seconds(45);
  // The trigger: the app host throttles to 15% speed for 2 s. During the
  // window the app tier accumulates far more work than two seconds'
  // worth; what happens after the window ends is the experiment.
  {
    fault::SlowNodeWindow s;
    s.tier = 1;
    s.at = Time::from_seconds(12.0);
    s.duration = Duration::seconds(2);
    s.speed_factor = 0.15;
    cfg.faults.slow_nodes.push_back(s);
  }
  // Server-side control at the tiers that queue (web front door and the
  // app tier behind it); the leaf DB never sees overload the app tier
  // has not already admitted.
  cfg.overload.web = make_overload_policy(choice);
  cfg.overload.app = make_overload_policy(choice);
  return cfg;
}

}  // namespace ntier::core::scenarios
