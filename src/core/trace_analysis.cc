#include "core/trace_analysis.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "metrics/table.h"

namespace ntier::core {

namespace {

// Splits "tier:event" stamps.
bool split(const std::string& where, std::string& tier, std::string& event) {
  const auto pos = where.find(':');
  if (pos == std::string::npos) return false;
  tier = where.substr(0, pos);
  event = where.substr(pos + 1);
  return true;
}

struct Acc {
  std::uint64_t count = 0;
  double sum_s = 0.0;
  double max_s = 0.0;
  std::uint64_t drops = 0;
  std::size_t order = std::numeric_limits<std::size_t>::max();  // unassigned
};

}  // namespace

TraceBreakdown analyze_traces(const std::vector<server::RequestPtr>& requests) {
  TraceBreakdown out;
  std::map<std::string, Acc> tiers;
  std::size_t next_order = 0;
  double total_s = 0.0;
  double outside_s = 0.0;

  for (const auto& req : requests) {
    if (req->trace.empty()) continue;
    ++out.requests;
    total_s += req->latency().to_seconds();

    // Per-tier first admit and last reply within this request. Hop order
    // is the chronological first-sight order across all traces.
    std::map<std::string, std::pair<sim::Time, sim::Time>> spans;
    std::map<std::string, std::uint64_t> drops;
    for (const auto& s : req->trace) {
      std::string tier, event;
      if (!split(s.where, tier, event)) continue;
      if (tier == "client") continue;
      Acc& acc = tiers[tier];
      if (acc.order == std::numeric_limits<std::size_t>::max())
        acc.order = next_order++;
      if (event == "drop") {
        ++drops[tier];
        continue;
      }
      auto it = spans.find(tier);
      if (it == spans.end()) {
        spans.emplace(tier, std::make_pair(s.at, s.at));
      } else {
        it->second.second = s.at;
      }
    }

    double covered_s = 0.0;
    // The front tier's span covers the nested ones; "outside" time is
    // what even the front tier never saw (RTO waits before admission).
    for (const auto& [tier, span] : spans) {
      const double in_tier = (span.second - span.first).to_seconds();
      Acc& acc = tiers[tier];
      ++acc.count;
      acc.sum_s += in_tier;
      acc.max_s = std::max(acc.max_s, in_tier);
      covered_s = std::max(covered_s, in_tier);
    }
    for (const auto& [tier, n] : drops) tiers[tier].drops += n;
    outside_s += std::max(0.0, req->latency().to_seconds() - covered_s);
  }

  if (out.requests > 0) {
    out.mean_total = sim::Duration::from_seconds(total_s / out.requests);
    out.mean_outside_tiers =
        sim::Duration::from_seconds(outside_s / out.requests);
  }
  std::vector<std::pair<std::string, Acc>> ordered(tiers.begin(), tiers.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.second.order < b.second.order; });
  for (const auto& [name, acc] : ordered) {
    HopStats h;
    h.tier = name;
    h.count = acc.count;
    h.drops = acc.drops;
    if (acc.count > 0) {
      h.mean_in_tier = sim::Duration::from_seconds(acc.sum_s / acc.count);
      h.max_in_tier = sim::Duration::from_seconds(acc.max_s);
    }
    out.hops.push_back(std::move(h));
  }
  return out;
}

std::string TraceBreakdown::to_table() const {
  metrics::Table t({"tier", "visits", "mean_in_tier_ms", "max_in_tier_ms", "drops"});
  for (const auto& h : hops) {
    t.add_row({h.tier, metrics::Table::num(h.count),
               metrics::Table::num(h.mean_in_tier.to_millis(), 2),
               metrics::Table::num(h.max_in_tier.to_millis(), 2),
               metrics::Table::num(h.drops)});
  }
  std::string out = t.to_string();
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "requests=%llu mean_total=%.2fms mean_outside_tiers=%.2fms\n",
                static_cast<unsigned long long>(requests), mean_total.to_millis(),
                mean_outside_tiers.to_millis());
  out += buf;
  return out;
}

}  // namespace ntier::core
