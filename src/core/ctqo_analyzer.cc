#include "core/ctqo_analyzer.h"

#include <algorithm>
#include <cstdio>

#include "core/system.h"

namespace ntier::core {

namespace {

struct DropEvent {
  sim::Time at;
  int tier;
};

}  // namespace

std::string CtqoEpisode::to_string() const {
  char buf[320];
  const char* k = kind == Kind::kUpstream     ? "upstream CTQO"
                  : kind == Kind::kDownstream ? "downstream CTQO"
                                              : "unclassified";
  if (bottleneck_found) {
    std::snprintf(buf, sizeof buf,
                  "[%7.2fs - %7.2fs] %llu drops at %s; millibottleneck at %s "
                  "(%.2fs) -> %s",
                  start.to_seconds(), end.to_seconds(),
                  static_cast<unsigned long long>(drops), drop_tier_name.c_str(),
                  bottleneck_name.c_str(), bottleneck_at.to_seconds(), k);
  } else {
    std::snprintf(buf, sizeof buf, "[%7.2fs - %7.2fs] %llu drops at %s; %s",
                  start.to_seconds(), end.to_seconds(),
                  static_cast<unsigned long long>(drops), drop_tier_name.c_str(), k);
  }
  std::string out = buf;
  if (retry_storm) {
    std::snprintf(buf, sizeof buf,
                  " [RETRY STORM: offered %.2fx drain, %.1fs, peak %.2fx]",
                  storm_amplification, storm_duration.to_seconds(),
                  storm_peak_amplification);
    out += buf;
  }
  return out;
}

std::string CtqoReport::to_string() const {
  std::string out;
  char head[160];
  std::snprintf(head, sizeof head,
                "CTQO report: %llu dropped packets, %zu episodes (%llu upstream, "
                "%llu downstream, %llu in retry storms)\n",
                static_cast<unsigned long long>(total_drops), episodes.size(),
                static_cast<unsigned long long>(upstream_episodes),
                static_cast<unsigned long long>(downstream_episodes),
                static_cast<unsigned long long>(retry_storm_episodes));
  out += head;
  if (retry_storm_episodes > 0) {
    std::snprintf(head, sizeof head,
                  "  longest storm %.1fs, peak retry amplification %.2fx\n",
                  longest_storm.to_seconds(), peak_retry_amplification);
    out += head;
  }
  for (const auto& e : episodes) out += "  " + e.to_string() + "\n";
  return out;
}

CtqoReport analyze_tiers(const std::vector<TierView>& tiers,
                         const monitor::Sampler& sampler, AnalyzerOptions opt) {
  CtqoReport report;

  // Gather all admission drops, tagged by tier index.
  std::vector<DropEvent> events;
  for (std::size_t t = 0; t < tiers.size(); ++t) {
    for (sim::Time at : tiers[t].server->drop_times())
      events.push_back({at, static_cast<int>(t)});
  }
  report.total_drops = events.size();
  if (events.empty()) return report;
  std::sort(events.begin(), events.end(),
            [](const DropEvent& a, const DropEvent& b) { return a.at < b.at; });

  // Cluster into episodes by time gap.
  std::vector<std::pair<std::size_t, std::size_t>> clusters;  // [first, last]
  std::size_t begin = 0;
  for (std::size_t i = 1; i <= events.size(); ++i) {
    if (i == events.size() || events[i].at - events[i - 1].at > opt.episode_gap) {
      clusters.emplace_back(begin, i - 1);
      begin = i;
    }
  }

  for (auto [lo, hi] : clusters) {
    CtqoEpisode ep;
    ep.start = events[lo].at;
    ep.end = events[hi].at;
    ep.drops = hi - lo + 1;
    // Dominant drop tier of the cluster.
    std::vector<std::uint64_t> per_tier(tiers.size(), 0);
    for (std::size_t i = lo; i <= hi; ++i) ++per_tier[events[i].tier];
    int best = 0;
    for (std::size_t t = 1; t < tiers.size(); ++t)
      if (per_tier[t] > per_tier[best]) best = static_cast<int>(t);
    ep.drop_tier = best;
    ep.drop_tier_name = tiers[best].server->name();

    // Millibottleneck: earliest tier whose VM demand or stall — or whose
    // disk — saturated in [start - lookback, end].
    const sim::Time from =
        ep.start.count_micros() > opt.lookback.count_micros()
            ? ep.start - opt.lookback
            : sim::Time::origin();
    sim::Time best_at = sim::Time::max();
    for (std::size_t t = 0; t < tiers.size(); ++t) {
      const auto& view = tiers[t];
      sim::Time at = sampler.series(view.vm_prefix + ".demand")
                         .first_time_at_least(opt.saturation_pct, from, ep.end);
      at = std::min(at, sampler.series(view.vm_prefix + ".stall")
                            .first_time_at_least(opt.saturation_pct, from, ep.end));
      if (!view.disk_prefix.empty()) {
        at = std::min(at, sampler.series(view.disk_prefix + ".busy")
                              .first_time_at_least(opt.saturation_pct, from, ep.end));
      }
      if (at < best_at) {
        best_at = at;
        ep.bottleneck_tier = static_cast<int>(t);
        ep.bottleneck_name = view.vm_prefix;
      }
    }
    if (best_at != sim::Time::max()) {
      ep.bottleneck_found = true;
      ep.bottleneck_at = best_at;
      ep.kind = ep.drop_tier < ep.bottleneck_tier ? CtqoEpisode::Kind::kUpstream
                                                  : CtqoEpisode::Kind::kDownstream;
      if (ep.kind == CtqoEpisode::Kind::kUpstream) ++report.upstream_episodes;
      if (ep.kind == CtqoEpisode::Kind::kDownstream) ++report.downstream_episodes;
    }
    report.episodes.push_back(ep);
  }

  // --- retry-storm pass ----------------------------------------------------
  // Chain consecutive episodes at the same drop tier whose gaps fit within
  // storm_merge_gap (a fixed 3 s RTO spaces retransmission waves just past
  // the 2 s episode_gap, splitting one storm across several episodes). A
  // chain is a storm when it lasted storm_min_duration and the tier's
  // offered rate (retransmits + retries included) exceeded its drain rate
  // by storm_amplification on average — arrivals outpacing departures for
  // multiple RTOs is the metastable signature.
  auto& eps = report.episodes;
  std::size_t chain_begin = 0;
  for (std::size_t i = 1; i <= eps.size(); ++i) {
    const bool chain_ends =
        i == eps.size() || eps[i].drop_tier != eps[chain_begin].drop_tier ||
        eps[i].start - eps[i - 1].end > opt.storm_merge_gap;
    if (!chain_ends) continue;
    const sim::Time cstart = eps[chain_begin].start;
    const sim::Time cend = eps[i - 1].end;
    const std::string prefix = tiers[eps[chain_begin].drop_tier].server->name();
    if (cend - cstart >= opt.storm_min_duration &&
        sampler.has_series(prefix + ".offered") &&
        sampler.has_series(prefix + ".completed")) {
      const double offered = sampler.series(prefix + ".offered").mean_over(cstart, cend);
      const double drained = sampler.series(prefix + ".completed").mean_over(cstart, cend);
      const double amp = drained > 0.0 ? offered / drained
                                       : (offered > 0.0 ? opt.storm_amplification : 0.0);
      if (amp >= opt.storm_amplification) {
        // Peak intensity: worst offered/drain ratio over any one-second
        // slice of the chain (the chain mean hides how hard the worst
        // retransmission wave hit).
        const auto& off_tl = sampler.series(prefix + ".offered");
        const auto& cmp_tl = sampler.series(prefix + ".completed");
        const sim::Duration slice = sim::Duration::seconds(1);
        double peak = amp;
        for (sim::Time t = cstart; t < cend; t = t + slice) {
          const sim::Time t1 = std::min(t + slice, cend);
          const double o = off_tl.mean_over(t, t1);
          const double c = cmp_tl.mean_over(t, t1);
          if (c > 0.0 && o / c > peak) peak = o / c;
        }
        const sim::Duration dur = cend - cstart;
        for (std::size_t j = chain_begin; j < i; ++j) {
          eps[j].retry_storm = true;
          eps[j].storm_amplification = amp;
          eps[j].storm_duration = dur;
          eps[j].storm_peak_amplification = peak;
          ++report.retry_storm_episodes;
        }
        report.longest_storm = std::max(report.longest_storm, dur);
        report.peak_retry_amplification =
            std::max(report.peak_retry_amplification, peak);
      }
    }
    chain_begin = i;
  }
  return report;
}

std::string VlrtAttributionRow::to_string() const {
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "req %8llu  %9.1f ms  dominant %s at %s %.1f ms (%4.1f%%)  "
                "rto %.1f ms (%4.1f%%)",
                static_cast<unsigned long long>(request_id),
                latency.to_millis(), trace::to_string(dominant.kind),
                dominant.site.c_str(), dominant.time.to_millis(),
                dominant.share * 100.0, rto_time.to_millis(),
                rto_share * 100.0);
  std::string out = buf;
  if (!drop_tier.empty()) {
    out += "  drop tier " + drop_tier;
    if (episode >= 0) {
      std::snprintf(buf, sizeof buf, " (episode %d)", episode);
      out += buf;
    } else {
      out += " (no episode matched)";
    }
  }
  return out;
}

std::string VlrtAttributionTable::to_string() const {
  std::string out = "VLRT attribution (" + std::to_string(rows.size()) + " requests)\n";
  for (const auto& r : rows) out += "  " + r.to_string() + "\n";
  // Tier summary: how many VLRTs each dropping tier accounts for.
  std::vector<std::pair<std::string, std::size_t>> per_tier;
  for (const auto& r : rows) {
    const std::string key = r.drop_tier.empty() ? "(no rto)" : r.drop_tier;
    auto it = std::find_if(per_tier.begin(), per_tier.end(),
                           [&](const auto& p) { return p.first == key; });
    if (it == per_tier.end()) per_tier.emplace_back(key, 1);
    else ++it->second;
  }
  for (const auto& [tier, n] : per_tier)
    out += "  " + std::to_string(n) + " VLRT at " + tier + "\n";
  return out;
}

VlrtAttributionTable attribute_vlrt(
    const std::vector<trace::TracePtr>& traces,
    const CtqoReport& report, sim::Duration vlrt_threshold) {
  VlrtAttributionTable table;
  for (const auto& tr : traces) {
    if (!tr || tr->empty() || !tr->root().closed()) continue;
    if (tr->total() < vlrt_threshold) continue;

    const trace::CriticalPath cp = trace::critical_path(*tr);
    VlrtAttributionRow row;
    row.request_id = tr->request_id();
    row.latency = cp.total;
    if (!cp.items.empty()) row.dominant = cp.dominant();
    row.rto_time = cp.by_kind(trace::SpanKind::kRtoGap);
    if (cp.total > sim::Duration::zero())
      row.rto_share = static_cast<double>(row.rto_time.count_micros()) /
                      static_cast<double>(cp.total.count_micros());

    // Largest rto_gap bucket names the hop whose receiver dropped.
    const trace::CriticalPath::Item* rto_item = nullptr;
    for (const auto& item : cp.items) {
      if (item.kind == trace::SpanKind::kRtoGap) { rto_item = &item; break; }
    }
    if (rto_item != nullptr) {
      const auto arrow = rto_item->site.find("->");
      row.drop_tier = arrow == std::string::npos
                          ? rto_item->site
                          : rto_item->site.substr(arrow + 2);
      // The first retransmission at that hop begins AT the drop instant,
      // so it falls inside the episode that clustered the drop.
      sim::Time first_gap = sim::Time::max();
      for (const auto& s : tr->spans()) {
        if (s.kind == trace::SpanKind::kRtoGap && s.site == rto_item->site &&
            s.begin < first_gap) {
          first_gap = s.begin;
        }
      }
      for (std::size_t e = 0; e < report.episodes.size(); ++e) {
        const auto& ep = report.episodes[e];
        if (ep.drop_tier_name == row.drop_tier && first_gap >= ep.start &&
            first_gap <= ep.end) {
          row.episode = static_cast<int>(e);
          break;
        }
      }
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

CtqoReport analyze_ctqo(NTierSystem& sys, AnalyzerOptions opt) {
  std::vector<TierView> tiers;
  for (int t = 0; t < 3; ++t) {
    const Tier tier = static_cast<Tier>(t);
    TierView v;
    v.server = sys.tier(tier);
    v.vm_prefix = sys.tier_vm(tier)->name();
    if (tier == Tier::kDb) v.disk_prefix = "dbdisk";
    tiers.push_back(std::move(v));
  }
  return analyze_tiers(tiers, sys.sampler(), opt);
}

}  // namespace ntier::core
