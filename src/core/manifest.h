// Run manifest: the reproducibility sidecar written next to every
// exported artifact (CSV bundles, dashboards).
//
// One small JSON object answering "what run produced this file?": the
// scenario name, seed, duration, sampling window, stack shape, and the
// telemetry registry's full scalar snapshot (every counter, gauge, and
// probe total). Deterministic — same config + seed yields a
// byte-identical manifest, so sidecars diff cleanly across runs.
#pragma once

#include <string>

#include "core/chain.h"
#include "core/system.h"

namespace ntier::core {

struct CtqoReport;

// Renders the manifest for a finished run (3-tier or chain). When a
// CTQO report is supplied and it detected retry storms, a "ctqo_storm"
// block (episode count, longest storm, peak retry amplification) is
// included; storm-free runs emit byte-identical manifests either way.
// When an obs incident summary with count > 0 is supplied, an
// "incidents" block (count, open, first-fire time, per-detector
// breakdown) rides along the same way — incident-free runs (or callers
// not passing a summary) emit byte-identical manifests.
std::string run_manifest_json(const NTierSystem& sys,
                              const CtqoReport* ctqo = nullptr,
                              const obs::IncidentSummary* incidents = nullptr);
std::string run_manifest_json(const ChainSystem& sys,
                              const CtqoReport* ctqo = nullptr,
                              const obs::IncidentSummary* incidents = nullptr);

// Generic manifest entry for system shapes core does not know about
// (the service-graph engine lives above core in the layer stack):
// callers fill the run identity plus non-owning pointers to the
// collectors. `tiers` lists server names front to back (flattened
// replicas for graphs).
struct ManifestRun {
  std::string kind;  // "graph", ... ("ntier"/"chain" use the typed APIs)
  std::string name;
  std::uint64_t seed = 0;
  sim::Duration duration = sim::Duration::zero();
  sim::Duration sample_window = sim::Duration::zero();
  std::uint64_t sessions = 0;
  std::vector<std::string> tiers;
  std::uint64_t total_drops = 0;
  std::uint64_t events_executed = 0;
  const monitor::LatencyCollector* latency = nullptr;  // required
  const telemetry::Registry* registry = nullptr;       // required
};
std::string run_manifest_json(const ManifestRun& run, const CtqoReport* ctqo = nullptr,
                              const obs::IncidentSummary* incidents = nullptr);

// Writes <dir>/<name>.manifest.json (creating dir if needed); returns
// the path, or "" on write failure.
std::string write_manifest(const NTierSystem& sys, const std::string& dir,
                           const CtqoReport* ctqo = nullptr,
                           const obs::IncidentSummary* incidents = nullptr);
std::string write_manifest(const ChainSystem& sys, const std::string& dir,
                           const CtqoReport* ctqo = nullptr,
                           const obs::IncidentSummary* incidents = nullptr);
std::string write_manifest(const ManifestRun& run, const std::string& dir,
                           const CtqoReport* ctqo = nullptr,
                           const obs::IncidentSummary* incidents = nullptr);

}  // namespace ntier::core
