// Run manifest: the reproducibility sidecar written next to every
// exported artifact (CSV bundles, dashboards).
//
// One small JSON object answering "what run produced this file?": the
// scenario name, seed, duration, sampling window, stack shape, and the
// telemetry registry's full scalar snapshot (every counter, gauge, and
// probe total). Deterministic — same config + seed yields a
// byte-identical manifest, so sidecars diff cleanly across runs.
#pragma once

#include <string>

#include "core/chain.h"
#include "core/system.h"

namespace ntier::core {

struct CtqoReport;

// Renders the manifest for a finished run (3-tier or chain). When a
// CTQO report is supplied and it detected retry storms, a "ctqo_storm"
// block (episode count, longest storm, peak retry amplification) is
// included; storm-free runs emit byte-identical manifests either way.
std::string run_manifest_json(const NTierSystem& sys,
                              const CtqoReport* ctqo = nullptr);
std::string run_manifest_json(const ChainSystem& sys,
                              const CtqoReport* ctqo = nullptr);

// Writes <dir>/<name>.manifest.json (creating dir if needed); returns
// the path, or "" on write failure.
std::string write_manifest(const NTierSystem& sys, const std::string& dir,
                           const CtqoReport* ctqo = nullptr);
std::string write_manifest(const ChainSystem& sys, const std::string& dir,
                           const CtqoReport* ctqo = nullptr);

}  // namespace ntier::core
