#include "core/correlate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/chain.h"
#include "core/system.h"

namespace ntier::core {

namespace {

std::string fmt(const char* f, double a, double b) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), f, a, b);
  return buf;
}

std::vector<double> values_of(const metrics::Timeline& t) {
  std::vector<double> v(t.window_count());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = t.value_at(i);
  return v;
}

// A millibottleneck is defined by *pegged* windows (the paper marks a VM
// or disk saturated when demand/busy >= ~99%), so saturation candidates
// are correlated as 0/1 saturation indicators rather than raw
// percentages. Raw co-movement is misleading here: during upstream CTQO
// the victim tier's own utilization rises as a consequence of the
// backpressure and can out-correlate the true bottleneck, while the
// pegged-window indicator stays clean.
std::vector<double> binarize(std::vector<double> v, double threshold) {
  for (double& x : v) x = x >= threshold ? 1.0 : 0.0;
  return v;
}

// Pearson r of (x[i], y[i + lag]). Series zero-fill past their recorded
// length, so one that simply stopped early — e.g. no VLRT after the last
// episode — contributes genuine zeros rather than truncating the overlap.
double pearson_at_lag(const std::vector<double>& x, const std::vector<double>& y, int lag) {
  const std::size_t horizon = std::max(x.size(), y.size());
  if (horizon < 2 || static_cast<std::size_t>(lag) + 2 > horizon) return 0.0;
  const std::size_t m = horizon - static_cast<std::size_t>(lag);
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const double a = i < x.size() ? x[i] : 0.0;
    const std::size_t j = i + static_cast<std::size_t>(lag);
    const double b = j < y.size() ? y[j] : 0.0;
    sx += a;
    sy += b;
    sxx += a * a;
    syy += b * b;
    sxy += a * b;
  }
  const double n = static_cast<double>(m);
  const double cov = n * sxy - sx * sy;
  const double vx = n * sxx - sx * sx;
  const double vy = n * syy - sy * sy;
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

// Ascending lag sweep; only a strictly greater r displaces the incumbent
// so the smallest best lag wins ties (determinism).
LagCorrelation best_lag(std::string source, std::string target,
                        const std::vector<double>& x, const std::vector<double>& y,
                        int max_lag, double window_seconds) {
  LagCorrelation out;
  out.source = std::move(source);
  out.target = std::move(target);
  out.r = pearson_at_lag(x, y, 0);
  for (int lag = 1; lag <= max_lag; ++lag) {
    const double r = pearson_at_lag(x, y, lag);
    if (r > out.r) {
      out.r = r;
      out.lag_windows = lag;
    }
  }
  out.lag_seconds = out.lag_windows * window_seconds;
  return out;
}

double series_total(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc;
}

}  // namespace

std::string LagCorrelation::to_string() const {
  return source + " -> " + target + fmt(": lag %.2f s r %.3f", lag_seconds, r);
}

std::string CausalChain::to_string() const {
  return saturation_series + " -> " + drop_series +
         fmt(" (lag %.2f s, r %.3f)", fill.lag_seconds, fill.r) + " -> vlrt" +
         fmt(" (lag %.2f s, r %.3f)", rto.lag_seconds, rto.r) +
         fmt(" score %.3f", score, 0.0);
}

const char* to_string(Propagation p) {
  switch (p) {
    case Propagation::kUpstream: return "upstream";
    case Propagation::kDownstream: return "downstream";
    case Propagation::kAbsent: return "absent";
  }
  return "absent";
}

std::string CorrelationReport::to_string() const {
  std::string out = "correlation report: propagation=";
  out += core::to_string(propagation);
  if (drop_tier >= 0) out += " drops at " + drop_tier_name;
  if (bottleneck_tier >= 0) out += " bottleneck " + bottleneck_series;
  out += "\n";
  for (const auto& c : chains) out += "  chain: " + c.to_string() + "\n";
  for (const auto& d : direct) out += "  direct: " + d.to_string() + "\n";
  if (!queue_onsets.empty()) {
    out += "  queue onset:";
    for (const auto& [name, at] : queue_onsets) {
      out += " " + name + (at < 0 ? "=never" : fmt("=%.2f s", at, 0.0));
    }
    out += "\n";
  }
  return out;
}

SignalSet collect_signals(const NTierSystem& sys) {
  SignalSet s;
  s.registry = &sys.registry();
  s.vlrt = &sys.latency().vlrt_per_window();
  s.window = sys.sampler().window();
  for (Tier t : {Tier::kWeb, Tier::kApp, Tier::kDb}) {
    TierSignals ts;
    ts.name = sys.tier(t)->name();
    if (t == Tier::kDb && sys.db_disk() != nullptr)
      ts.saturation.push_back(sys.db_disk()->name() + ".busy");
    const std::string vm = sys.tier_vm(t)->name();
    ts.saturation.push_back(vm + ".demand");
    ts.saturation.push_back(vm + ".stall");
    ts.dropped = ts.name + ".dropped";
    ts.queue = ts.name + ".queue";
    s.tiers.push_back(std::move(ts));
  }
  return s;
}

std::vector<obs::SeriesGroup> detector_groups(const SignalSet& s) {
  std::vector<obs::SeriesGroup> groups;
  groups.reserve(s.tiers.size());
  for (const TierSignals& ts : s.tiers) {
    obs::SeriesGroup g;
    g.name = ts.name;
    g.saturation = ts.saturation;
    g.queue = ts.queue;
    g.dropped = ts.dropped;
    groups.push_back(std::move(g));
  }
  return groups;
}

SignalSet collect_signals(const ChainSystem& sys) {
  SignalSet s;
  s.registry = &sys.registry();
  s.vlrt = &sys.latency().vlrt_per_window();
  s.window = sys.sampler().window();
  for (std::size_t i = 0; i < sys.tier_count(); ++i) {
    TierSignals ts;
    ts.name = sys.tier(i)->name();
    if (sys.tier_disk(i) != nullptr)
      ts.saturation.push_back(sys.tier_disk(i)->name() + ".busy");
    const std::string vm = sys.tier_vm(i)->name();
    ts.saturation.push_back(vm + ".demand");
    ts.saturation.push_back(vm + ".stall");
    ts.dropped = ts.name + ".dropped";
    ts.queue = ts.name + ".queue";
    s.tiers.push_back(std::move(ts));
  }
  return s;
}

CorrelationReport correlate_signals(const SignalSet& s, CorrelateOptions opt) {
  CorrelationReport rep;
  if (s.registry == nullptr || s.vlrt == nullptr || s.tiers.empty()) return rep;
  const double win_s = s.window.to_seconds();
  const int direct_max_lag = opt.max_fill_lag_windows + opt.max_rto_lag_windows;
  const std::vector<double> vlrt = values_of(*s.vlrt);

  // Extract every tier's signals once: saturation indicators (pegged
  // windows) and raw per-window drop counts.
  struct TierData {
    std::vector<std::pair<std::string, std::vector<double>>> sat;
    std::vector<double> drops;
  };
  std::vector<TierData> data(s.tiers.size());
  std::vector<double> drop_totals(s.tiers.size(), 0.0);
  for (std::size_t i = 0; i < s.tiers.size(); ++i) {
    for (const auto& name : s.tiers[i].saturation) {
      const metrics::Timeline* x = s.registry->find_series(name);
      if (x != nullptr)
        data[i].sat.emplace_back(name, binarize(values_of(*x), opt.saturation_pct));
    }
    const metrics::Timeline* d = s.registry->find_series(s.tiers[i].dropped);
    if (d != nullptr) {
      data[i].drops = values_of(*d);
      drop_totals[i] = series_total(data[i].drops);
    }
  }

  // Ranked pairs: every candidate series against VLRT directly.
  for (std::size_t i = 0; i < s.tiers.size(); ++i) {
    for (const auto& [name, sig] : data[i].sat)
      rep.direct.push_back(best_lag(name, "vlrt", sig, vlrt, direct_max_lag, win_s));
    if (!data[i].drops.empty())
      rep.direct.push_back(best_lag(s.tiers[i].dropped, "vlrt", data[i].drops, vlrt,
                                    opt.max_rto_lag_windows, win_s));
  }
  std::stable_sort(rep.direct.begin(), rep.direct.end(),
                   [](const LagCorrelation& a, const LagCorrelation& b) { return a.r > b.r; });

  // Chains: every saturation candidate against every dropping tier. The
  // RTO link is shared per drop tier; compute it once.
  std::vector<CausalChain> all;
  for (std::size_t d = 0; d < s.tiers.size(); ++d) {
    if (drop_totals[d] <= 0.0) continue;
    const LagCorrelation rto = best_lag(s.tiers[d].dropped, "vlrt", data[d].drops, vlrt,
                                        opt.max_rto_lag_windows, win_s);
    for (std::size_t b = 0; b < s.tiers.size(); ++b) {
      for (const auto& [sat, sig] : data[b].sat) {
        CausalChain c;
        c.bottleneck_tier = static_cast<int>(b);
        c.saturation_series = sat;
        c.drop_tier = static_cast<int>(d);
        c.drop_series = s.tiers[d].dropped;
        c.fill = best_lag(sat, s.tiers[d].dropped, sig, data[d].drops,
                          opt.max_fill_lag_windows, win_s);
        c.rto = rto;
        c.score = std::min(c.fill.r, c.rto.r);
        all.push_back(std::move(c));
      }
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const CausalChain& a, const CausalChain& b) { return a.score > b.score; });
  for (const auto& c : all)
    if (c.score >= opt.min_link_r) rep.chains.push_back(c);

  // Conclusion: dominant drop tier + the best chain explaining it.
  double best_drops = 0.0;
  for (std::size_t i = 0; i < s.tiers.size(); ++i) {
    if (drop_totals[i] > best_drops) {
      best_drops = drop_totals[i];
      rep.drop_tier = static_cast<int>(i);
    }
  }
  if (rep.drop_tier < 0) {
    rep.propagation = Propagation::kAbsent;
  } else {
    rep.drop_tier_name = s.tiers[static_cast<std::size_t>(rep.drop_tier)].name;
    for (const auto& c : all) {
      if (c.drop_tier == rep.drop_tier) {
        rep.bottleneck_tier = c.bottleneck_tier;
        rep.bottleneck_series = c.saturation_series;
        break;
      }
    }
    rep.propagation = rep.drop_tier < rep.bottleneck_tier ? Propagation::kUpstream
                                                          : Propagation::kDownstream;
  }

  // Queue-onset evidence: when each queue first hit half its own peak.
  for (const auto& tier : s.tiers) {
    const metrics::Timeline* q = s.registry->find_series(tier.queue);
    double at = -1.0;
    if (q != nullptr && q->max_value() > 0.0) {
      const sim::Time t = q->first_time_at_least(
          0.5 * q->max_value(), sim::Time::origin(), q->window_start(q->window_count()));
      if (t != sim::Time::max()) at = (t - sim::Time::origin()).to_seconds();
    }
    rep.queue_onsets.emplace_back(tier.name, at);
  }
  return rep;
}

CorrelationReport correlate(const NTierSystem& sys, CorrelateOptions opt) {
  return correlate_signals(collect_signals(sys), opt);
}

CorrelationReport correlate(const ChainSystem& sys, CorrelateOptions opt) {
  return correlate_signals(collect_signals(sys), opt);
}

}  // namespace ntier::core
