#include "core/config.h"

#include <stdexcept>
#include <string>

namespace ntier::core {

const char* to_string(Architecture a) {
  switch (a) {
    case Architecture::kSync: return "sync (Apache-Tomcat-MySQL)";
    case Architecture::kNx1: return "NX=1 (Nginx-Tomcat-MySQL)";
    case Architecture::kNx2: return "NX=2 (Nginx-XTomcat-MySQL)";
    case Architecture::kNx3: return "NX=3 (Nginx-XTomcat-XMySQL)";
  }
  return "?";
}

namespace {

[[noreturn]] void reject(const std::string& name, const std::string& why) {
  throw std::invalid_argument("config '" + name + "': " + why);
}

void check_policy(const std::string& name, const char* where,
                  const policy::TailPolicy& p) {
  const std::string why = policy::invalid_reason(p);
  if (!why.empty()) reject(name, std::string(where) + ": " + why);
}

}  // namespace

void apply_app_recovery(policy::TailPolicy& t, const net::ProtocolProfile& p) {
  if (p.transport != net::TransportKind::kUdpAppTimeout) return;
  t.attempt_timeout = p.app_timeout;
  t.retry.max_attempts = p.app_attempts;
  t.retry.budget_ratio = p.app_retry_budget;
}

void apply_protocol(ExperimentConfig& cfg, const net::ProtocolProfile& p) {
  cfg.system.tier_rto = p.rto;
  cfg.system.admission = p.admission;
  cfg.system.cookie_penalty = p.cookie_penalty;
  cfg.workload.client_rto = p.rto;
  // Datagram recovery lives in the application: arm the PR 1 governors
  // on the client hop and every inter-tier hop with the profile's
  // timeout / attempt / budget knobs.
  apply_app_recovery(cfg.workload.client_policy, p);
  apply_app_recovery(cfg.tier_policy, p);
}

void validate(const ExperimentConfig& cfg) {
  const SystemConfig& s = cfg.system;
  const WorkloadConfig& w = cfg.workload;

  if (cfg.duration <= sim::Duration::zero())
    reject(cfg.name, "duration must be positive");
  if (cfg.sample_window <= sim::Duration::zero())
    reject(cfg.name, "sample_window must be positive");

  if (s.web_threads == 0 || s.app_threads == 0 || s.db_threads == 0)
    reject(cfg.name, "thread pools must be non-empty (a zero-thread tier can never serve)");
  if (s.web_processes == 0) reject(cfg.name, "web_processes must be at least 1");
  if (s.backlog == 0)
    reject(cfg.name, "TCP backlog must be positive (MaxSysQDepth = threads + backlog)");
  if (s.lite_q_web == 0 || s.lite_q_app == 0 || s.lite_q_db == 0)
    reject(cfg.name, "LiteQDepth bounds must be positive");
  if (s.db_async_threads == 0) reject(cfg.name, "db_async_threads must be positive");
  if (s.app_vcpus <= 0) reject(cfg.name, "app_vcpus must be positive");
  if (s.link_latency < sim::Duration::zero())
    reject(cfg.name, "link_latency cannot be negative");
  if (s.web_spawn_after <= sim::Duration::zero())
    reject(cfg.name, "web_spawn_after must be positive");

  if (w.sessions == 0) reject(cfg.name, "workload needs at least one session");
  if (w.mean_think < sim::Duration::zero())
    reject(cfg.name, "mean_think cannot be negative (zero = saturation test)");
  if (w.burst_index < 1.0)
    reject(cfg.name, "burst_index below 1.0 is not a burst model");
  if (w.client_link < sim::Duration::zero())
    reject(cfg.name, "client_link latency cannot be negative");
  if (w.client_timeout < sim::Duration::zero())
    reject(cfg.name, "client_timeout cannot be negative");
  if (w.client_timeout > sim::Duration::zero() && w.client_timeout < w.client_rto.rto(0))
    reject(cfg.name,
           "client_timeout shorter than one retransmission timeout: every "
           "dropped first packet would time out before TCP could retry");

  if (cfg.bottleneck.interference_weight <= 0.0)
    reject(cfg.name, "interference_weight must be positive");

  check_policy(cfg.name, "client_policy", w.client_policy);
  check_policy(cfg.name, "tier_policy", cfg.tier_policy);

  const struct { const char* where; const policy::overload::OverloadPolicy& p; }
      overloads[] = {{"overload.web", cfg.overload.web},
                     {"overload.app", cfg.overload.app},
                     {"overload.db", cfg.overload.db}};
  for (const auto& [where, p] : overloads) {
    const std::string why = policy::overload::invalid_reason(p);
    if (!why.empty()) reject(cfg.name, std::string(where) + ": " + why);
  }

  if (cfg.trace.mode == trace::TraceMode::kSampled && cfg.trace.sample_every_n == 0)
    reject(cfg.name, "trace: sample_every_n must be positive in sampled mode");
  if (cfg.trace.mode != trace::TraceMode::kOff && cfg.trace.max_traces == 0)
    reject(cfg.name, "trace: max_traces must be positive when tracing is on");
  if (cfg.trace.mode == trace::TraceMode::kVlrtOnly &&
      cfg.trace.vlrt_threshold <= sim::Duration::zero())
    reject(cfg.name, "trace: vlrt_threshold must be positive in vlrt-only mode");

  const std::string fault_why = fault::invalid_reason(cfg.faults);
  if (!fault_why.empty()) reject(cfg.name, fault_why);
  for (const auto& c : cfg.faults.crashes)
    if (c.tier > 2) reject(cfg.name, "fault: crash tier index beyond the 3-tier system");
  for (const auto& l : cfg.faults.links)
    if (l.hop > 2)
      reject(cfg.name,
             "fault: link hop index beyond the 3-tier system "
             "(0=client->web, 1=web->app, 2=app->db)");
  for (const auto& sn : cfg.faults.slow_nodes)
    if (sn.tier > 2) reject(cfg.name, "fault: slow-node tier index beyond the 3-tier system");
}

}  // namespace ntier::core
