#include "core/config.h"

namespace ntier::core {

const char* to_string(Architecture a) {
  switch (a) {
    case Architecture::kSync: return "sync (Apache-Tomcat-MySQL)";
    case Architecture::kNx1: return "NX=1 (Nginx-Tomcat-MySQL)";
    case Architecture::kNx2: return "NX=2 (Nginx-XTomcat-MySQL)";
    case Architecture::kNx3: return "NX=3 (Nginx-XTomcat-XMySQL)";
  }
  return "?";
}

}  // namespace ntier::core
