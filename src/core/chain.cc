#include "core/chain.h"

#include <cassert>
#include <stdexcept>

#include "core/correlate.h"
#include "telemetry/publish.h"

namespace ntier::core {

std::function<server::Program(const server::RequestClassProfile&)> relay_fn(
    sim::Duration pre, sim::Duration post) {
  return [pre, post](const server::RequestClassProfile&) {
    return server::Program{
        server::WorkStep{server::WorkStep::Kind::kCpu, pre},
        server::WorkStep{server::WorkStep::Kind::kDownstream, sim::Duration::zero()},
        server::WorkStep{server::WorkStep::Kind::kCpu, post}};
  };
}

std::function<server::Program(const server::RequestClassProfile&)> leaf_fn(
    sim::Duration cpu, sim::Duration disk) {
  return [cpu, disk](const server::RequestClassProfile&) {
    server::Program prog{server::WorkStep{server::WorkStep::Kind::kCpu, cpu}};
    if (disk > sim::Duration::zero())
      prog.push_back(server::WorkStep{server::WorkStep::Kind::kDisk, disk});
    return prog;
  };
}

ChainSystem::ChainSystem(ChainConfig cfg)
    : cfg_(std::move(cfg)),
      rng_(cfg_.seed),
      registry_(cfg_.sample_window),
      sampler_(sim_, registry_, cfg_.sample_window) {
  assert(!cfg_.tiers.empty());
  const std::size_t n = cfg_.tiers.size();

  for (std::size_t i = 0; i < n; ++i) {
    const ChainTierSpec& spec = cfg_.tiers[i];
    assert(spec.program_fn && "every chain tier needs a program_fn");
    hosts_.push_back(
        std::make_unique<cpu::HostCpu>(sim_, static_cast<double>(spec.vcpus)));
    vms_.push_back(hosts_.back()->add_vm(spec.name, spec.vcpus));

    if (spec.has_disk) {
      disks_.push_back(std::make_unique<cpu::IoDevice>(sim_, spec.name + ".disk"));
    } else {
      disks_.push_back(nullptr);
    }

    std::unique_ptr<server::Server> srv;
    if (spec.staged) {
      srv = std::make_unique<server::StagedServer>(sim_, spec.name, vms_[i],
                                                   &cfg_.profile, spec.program_fn,
                                                   spec.staged_cfg);
    } else if (spec.async) {
      srv = std::make_unique<server::AsyncServer>(sim_, spec.name, vms_[i],
                                                  &cfg_.profile, spec.program_fn,
                                                  spec.async_cfg);
    } else {
      srv = std::make_unique<server::SyncServer>(sim_, spec.name, vms_[i],
                                                 &cfg_.profile, spec.program_fn,
                                                 spec.sync);
    }
    if (disks_[i]) srv->attach_io(disks_[i].get());
    servers_.push_back(std::move(srv));
  }

  net::Link link{cfg_.link_latency};
  for (std::size_t i = 0; i + 1 < n; ++i)
    servers_[i]->connect_downstream(servers_[i + 1].get(), cfg_.tier_rto, link);
  if (cfg_.tier_policy.any()) {
    for (std::size_t i = 0; i + 1 < n; ++i)
      servers_[i]->enable_tail_policy(cfg_.tier_policy, rng_.fork(10 + i));
  }
  for (std::size_t i = 0; i < n; ++i)
    servers_[i]->enable_overload_control(cfg_.tiers[i].overload);

  // Workload.
  const WorkloadConfig& w = cfg_.workload;
  if (w.burst_index > 1.0) {
    workload::BurstClock::Config bc;
    bc.burst_index = w.burst_index;
    bc.burst_dwell = w.burst_dwell;
    bc.normal_dwell = w.normal_dwell;
    burst_ = std::make_unique<workload::BurstClock>(sim_, rng_, bc);
  }
  workload::ClientConfig cc;
  cc.sessions = w.sessions;
  cc.mean_think = w.mean_think;
  cc.rto = w.client_rto;
  cc.link = net::Link{w.client_link};
  cc.trace_requests = w.trace_requests;
  cc.measure_from = w.measure_from;
  cc.timeout = w.client_timeout;
  cc.policy = w.client_policy;
  clients_ = std::make_unique<workload::ClientPool>(
      sim_, rng_.fork(1), &cfg_.profile, servers_[0].get(), cc, burst_.get());
  clients_->on_complete([this](const server::RequestPtr& r) {
    latency_.record(r);
    registry_.quantile("client.latency_ms").record(r->latency().to_millis());
  });

  if (cfg_.freeze_tier >= 0) {
    assert(static_cast<std::size_t>(cfg_.freeze_tier) < n);
    injector_ = std::make_unique<cpu::FreezeInjector>(
        sim_, vms_[cfg_.freeze_tier], cfg_.freeze);
  }

  for (std::size_t i = 0; i < n; ++i) {
    sampler_.track_vm(vms_[i]->name(), vms_[i]);
    sampler_.track_server(servers_[i]->name(), servers_[i].get());
    if (disks_[i]) sampler_.track_io(disks_[i]->name(), disks_[i].get());
  }

  telemetry::publish_simulation(registry_, sim_);
  for (auto& srv : servers_) telemetry::publish_server(registry_, *srv);
  telemetry::publish_transport(registry_, "client", clients_->transport());
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (auto* t = servers_[i]->downstream_transport())
      telemetry::publish_transport(registry_, servers_[i]->name(), *t);
  }
  if (const auto* g = clients_->governor()) telemetry::publish_governor(registry_, "client", *g);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (const auto* g = servers_[i]->governor())
      telemetry::publish_governor(registry_, servers_[i]->name(), *g);
  }
  for (auto& srv : servers_) {
    if (const auto* c = srv->overload())
      telemetry::publish_overload(registry_, srv->name(), *c);
  }

  if (!cfg_.faults.empty()) {
    fault::FaultTargets targets;
    for (auto& srv : servers_) targets.tiers.push_back(srv.get());
    for (auto& host : hosts_) targets.hosts.push_back(host.get());
    targets.hops.push_back(&clients_->transport());
    for (std::size_t i = 0; i + 1 < n; ++i)
      targets.hops.push_back(servers_[i]->downstream_transport());
    fault_injector_ = std::make_unique<fault::FaultInjector>(
        sim_, rng_.fork(20), cfg_.faults, std::move(targets));
  }

  if (cfg_.obs.enabled) {
    obs_ = std::make_unique<obs::IncidentMonitor>(cfg_.obs);
    obs::Bindings b;
    b.sampler = &sampler_;
    b.registry = &registry_;
    b.vlrt = &latency_.vlrt_per_window();
    b.run_name = cfg_.name;
    b.groups = detector_groups(collect_signals(*this));
    obs_->attach(std::move(b));
  }
}

void ChainSystem::run() { run_until(sim_.now() + cfg_.duration); }

void ChainSystem::run_until(sim::Time t) {
  if (!started_) {
    started_ = true;
    sampler_.start();
    clients_->start();
    if (fault_injector_) fault_injector_->arm();
  }
  sim_.run_until(t);
}

std::uint64_t ChainSystem::total_drops() const {
  std::uint64_t acc = 0;
  for (const auto& s : servers_) acc += s->stats().dropped;
  return acc;
}

void validate(const ChainConfig& cfg) {
  auto reject = [&cfg](const std::string& why) {
    throw std::invalid_argument("config '" + cfg.name + "': " + why);
  };
  if (cfg.tiers.empty()) reject("a chain needs at least one tier");
  if (cfg.duration <= sim::Duration::zero()) reject("duration must be positive");
  if (cfg.sample_window <= sim::Duration::zero()) reject("sample_window must be positive");
  if (cfg.link_latency < sim::Duration::zero()) reject("link_latency cannot be negative");
  for (const auto& t : cfg.tiers) {
    if (!t.program_fn) reject("tier '" + t.name + "' has no program_fn");
    if (t.vcpus <= 0) reject("tier '" + t.name + "' has no vCPUs");
    if (t.staged) {
      if (t.staged_cfg.ingress.threads == 0 || t.staged_cfg.continuation.threads == 0)
        reject("tier '" + t.name + "' has an empty stage thread pool");
    } else if (t.async) {
      if (t.async_cfg.lite_q_depth == 0)
        reject("tier '" + t.name + "' has a zero LiteQDepth");
      if (t.async_cfg.max_active == 0)
        reject("tier '" + t.name + "' allows no active requests");
    } else {
      if (t.sync.threads_per_process == 0)
        reject("tier '" + t.name + "' has an empty thread pool");
      if (t.sync.backlog == 0) reject("tier '" + t.name + "' has a zero TCP backlog");
    }
    const std::string ov = policy::overload::invalid_reason(t.overload);
    if (!ov.empty()) reject("tier '" + t.name + "' overload: " + ov);
  }
  const WorkloadConfig& w = cfg.workload;
  if (w.sessions == 0) reject("workload needs at least one session");
  if (w.mean_think <= sim::Duration::zero()) reject("mean_think must be positive");
  if (w.client_timeout > sim::Duration::zero() && w.client_timeout < w.client_rto.rto(0))
    reject("client_timeout shorter than one retransmission timeout");
  std::string why = policy::invalid_reason(w.client_policy);
  if (!why.empty()) reject("client_policy: " + why);
  why = policy::invalid_reason(cfg.tier_policy);
  if (!why.empty()) reject("tier_policy: " + why);
  why = fault::invalid_reason(cfg.faults);
  if (!why.empty()) reject(why);
  const int n = static_cast<int>(cfg.tiers.size());
  for (const auto& c : cfg.faults.crashes)
    if (c.tier >= n) reject("fault: crash tier index beyond the chain");
  for (const auto& l : cfg.faults.links)
    if (l.hop >= n) reject("fault: link hop index beyond the chain");
  for (const auto& s : cfg.faults.slow_nodes)
    if (s.tier >= n) reject("fault: slow-node tier index beyond the chain");
  if (cfg.freeze_tier >= n) reject("freeze_tier index beyond the chain");
}

std::unique_ptr<ChainSystem> run_chain(const ChainConfig& cfg) {
  validate(cfg);
  auto sys = std::make_unique<ChainSystem>(cfg);
  sys->run();
  return sys;
}

CtqoReport analyze_ctqo(ChainSystem& sys, AnalyzerOptions opt) {
  std::vector<TierView> tiers;
  for (std::size_t i = 0; i < sys.tier_count(); ++i) {
    TierView v;
    v.server = sys.tier(i);
    v.vm_prefix = sys.tier_vm(i)->name();
    if (sys.tier_disk(i) != nullptr) v.disk_prefix = sys.tier_disk(i)->name();
    tiers.push_back(std::move(v));
  }
  return analyze_tiers(tiers, sys.sampler(), opt);
}

}  // namespace ntier::core
