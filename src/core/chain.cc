#include "core/chain.h"

#include <cassert>

namespace ntier::core {

std::function<server::Program(const server::RequestClassProfile&)> relay_fn(
    sim::Duration pre, sim::Duration post) {
  return [pre, post](const server::RequestClassProfile&) {
    return server::Program{
        server::WorkStep{server::WorkStep::Kind::kCpu, pre},
        server::WorkStep{server::WorkStep::Kind::kDownstream, sim::Duration::zero()},
        server::WorkStep{server::WorkStep::Kind::kCpu, post}};
  };
}

std::function<server::Program(const server::RequestClassProfile&)> leaf_fn(
    sim::Duration cpu, sim::Duration disk) {
  return [cpu, disk](const server::RequestClassProfile&) {
    server::Program prog{server::WorkStep{server::WorkStep::Kind::kCpu, cpu}};
    if (disk > sim::Duration::zero())
      prog.push_back(server::WorkStep{server::WorkStep::Kind::kDisk, disk});
    return prog;
  };
}

ChainSystem::ChainSystem(ChainConfig cfg)
    : cfg_(std::move(cfg)), rng_(cfg_.seed), sampler_(sim_, cfg_.sample_window) {
  assert(!cfg_.tiers.empty());
  const std::size_t n = cfg_.tiers.size();

  for (std::size_t i = 0; i < n; ++i) {
    const ChainTierSpec& spec = cfg_.tiers[i];
    assert(spec.program_fn && "every chain tier needs a program_fn");
    hosts_.push_back(
        std::make_unique<cpu::HostCpu>(sim_, static_cast<double>(spec.vcpus)));
    vms_.push_back(hosts_.back()->add_vm(spec.name, spec.vcpus));

    if (spec.has_disk) {
      disks_.push_back(std::make_unique<cpu::IoDevice>(sim_, spec.name + ".disk"));
    } else {
      disks_.push_back(nullptr);
    }

    std::unique_ptr<server::Server> srv;
    if (spec.staged) {
      srv = std::make_unique<server::StagedServer>(sim_, spec.name, vms_[i],
                                                   &cfg_.profile, spec.program_fn,
                                                   spec.staged_cfg);
    } else if (spec.async) {
      srv = std::make_unique<server::AsyncServer>(sim_, spec.name, vms_[i],
                                                  &cfg_.profile, spec.program_fn,
                                                  spec.async_cfg);
    } else {
      srv = std::make_unique<server::SyncServer>(sim_, spec.name, vms_[i],
                                                 &cfg_.profile, spec.program_fn,
                                                 spec.sync);
    }
    if (disks_[i]) srv->attach_io(disks_[i].get());
    servers_.push_back(std::move(srv));
  }

  net::Link link{cfg_.link_latency};
  for (std::size_t i = 0; i + 1 < n; ++i)
    servers_[i]->connect_downstream(servers_[i + 1].get(), cfg_.tier_rto, link);

  // Workload.
  const WorkloadConfig& w = cfg_.workload;
  if (w.burst_index > 1.0) {
    workload::BurstClock::Config bc;
    bc.burst_index = w.burst_index;
    bc.burst_dwell = w.burst_dwell;
    bc.normal_dwell = w.normal_dwell;
    burst_ = std::make_unique<workload::BurstClock>(sim_, rng_, bc);
  }
  workload::ClientConfig cc;
  cc.sessions = w.sessions;
  cc.mean_think = w.mean_think;
  cc.rto = w.client_rto;
  cc.link = net::Link{w.client_link};
  cc.trace_requests = w.trace_requests;
  cc.measure_from = w.measure_from;
  clients_ = std::make_unique<workload::ClientPool>(
      sim_, rng_.fork(1), &cfg_.profile, servers_[0].get(), cc, burst_.get());
  clients_->on_complete([this](const server::RequestPtr& r) { latency_.record(r); });

  if (cfg_.freeze_tier >= 0) {
    assert(static_cast<std::size_t>(cfg_.freeze_tier) < n);
    injector_ = std::make_unique<cpu::FreezeInjector>(
        sim_, vms_[cfg_.freeze_tier], cfg_.freeze);
  }

  for (std::size_t i = 0; i < n; ++i) {
    sampler_.track_vm(vms_[i]->name(), vms_[i]);
    sampler_.track_server(servers_[i]->name(), servers_[i].get());
    if (disks_[i]) sampler_.track_io(disks_[i]->name(), disks_[i].get());
  }
}

void ChainSystem::run() { run_until(sim_.now() + cfg_.duration); }

void ChainSystem::run_until(sim::Time t) {
  if (!started_) {
    started_ = true;
    sampler_.start();
    clients_->start();
  }
  sim_.run_until(t);
}

std::uint64_t ChainSystem::total_drops() const {
  std::uint64_t acc = 0;
  for (const auto& s : servers_) acc += s->stats().dropped;
  return acc;
}

CtqoReport analyze_ctqo(ChainSystem& sys, AnalyzerOptions opt) {
  std::vector<TierView> tiers;
  for (std::size_t i = 0; i < sys.tier_count(); ++i) {
    TierView v;
    v.server = sys.tier(i);
    v.vm_prefix = sys.tier_vm(i)->name();
    if (sys.tier_disk(i) != nullptr) v.disk_prefix = sys.tier_disk(i)->name();
    tiers.push_back(std::move(v));
  }
  return analyze_tiers(tiers, sys.sampler(), opt);
}

}  // namespace ntier::core
