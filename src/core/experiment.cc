#include "core/experiment.h"

#include <cstdio>

namespace ntier::core {

std::unique_ptr<NTierSystem> run_system(const ExperimentConfig& cfg) {
  auto sys = std::make_unique<NTierSystem>(cfg);
  sys->run();
  return sys;
}

ExperimentSummary summarize(NTierSystem& sys) {
  ExperimentSummary s;
  const auto& cfg = sys.config();
  s.name = cfg.name;
  const sim::Time now = sys.simulation().now();
  const sim::Time from = cfg.workload.measure_from;
  s.duration_s = (now - from).to_seconds();
  s.throughput_rps = sys.latency().throughput_rps(from, now);
  s.latency = sys.latency().digest();
  s.failed_requests = sys.clients().failed();

  for (int t = 0; t < 3; ++t) {
    const Tier tier = static_cast<Tier>(t);
    auto* srv = sys.tier(tier);
    TierSummary ts;
    ts.server = srv->name();
    ts.accepted = srv->stats().accepted;
    ts.dropped = srv->stats().dropped;
    ts.completed = srv->stats().completed;
    ts.max_sys_q_depth = srv->max_sys_q_depth();
    ts.peak_queue = sys.sampler().series(srv->name() + ".queue").max_value();
    const auto& cpu = sys.sampler().series(sys.tier_vm(tier)->name() + ".cpu");
    ts.mean_cpu_pct = cpu.mean_over(from, now);
    s.total_drops += ts.dropped;
    if (ts.mean_cpu_pct > s.highest_mean_util_pct) s.highest_mean_util_pct = ts.mean_cpu_pct;
    s.tiers.push_back(std::move(ts));
  }
  s.ctqo = analyze_ctqo(sys);
  return s;
}

std::string ExperimentSummary::to_string() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%s: %.1f req/s over %.0fs, highest avg CPU %.0f%%, drops=%llu, "
                "failed=%llu\n  latency: %s\n",
                name.c_str(), throughput_rps, duration_s, highest_mean_util_pct,
                static_cast<unsigned long long>(total_drops),
                static_cast<unsigned long long>(failed_requests),
                latency.to_string().c_str());
  out += buf;
  for (const auto& t : tiers) {
    std::snprintf(buf, sizeof buf,
                  "  %-8s acc=%llu drop=%llu peakQ=%.0f maxSysQDepth=%zu cpu=%.0f%%\n",
                  t.server.c_str(), static_cast<unsigned long long>(t.accepted),
                  static_cast<unsigned long long>(t.dropped), t.peak_queue,
                  t.max_sys_q_depth, t.mean_cpu_pct);
    out += buf;
  }
  out += ctqo.to_string();
  return out;
}

}  // namespace ntier::core
