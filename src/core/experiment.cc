#include "core/experiment.h"

#include <cstdio>

namespace ntier::core {

std::unique_ptr<NTierSystem> run_system(const ExperimentConfig& cfg) {
  validate(cfg);
  auto sys = std::make_unique<NTierSystem>(cfg);
  sys->run();
  return sys;
}

ExperimentSummary summarize(NTierSystem& sys) {
  ExperimentSummary s;
  const auto& cfg = sys.config();
  s.name = cfg.name;
  const sim::Time now = sys.simulation().now();
  const sim::Time from = cfg.workload.measure_from;
  s.duration_s = (now - from).to_seconds();
  s.throughput_rps = sys.latency().throughput_rps(from, now);
  s.latency = sys.latency().digest();
  s.failed_requests = sys.clients().failed();

  for (int t = 0; t < 3; ++t) {
    const Tier tier = static_cast<Tier>(t);
    auto* srv = sys.tier(tier);
    TierSummary ts;
    ts.server = srv->name();
    ts.accepted = srv->stats().accepted;
    ts.dropped = srv->stats().dropped;
    ts.completed = srv->stats().completed;
    ts.max_sys_q_depth = srv->max_sys_q_depth();
    ts.peak_queue = sys.sampler().series(srv->name() + ".queue").max_value();
    const auto& cpu = sys.sampler().series(sys.tier_vm(tier)->name() + ".cpu");
    ts.mean_cpu_pct = cpu.mean_over(from, now);
    s.total_drops += ts.dropped;
    if (ts.mean_cpu_pct > s.highest_mean_util_pct) s.highest_mean_util_pct = ts.mean_cpu_pct;
    s.tiers.push_back(std::move(ts));
  }
  if (const auto* gov = sys.clients().governor()) {
    s.client_retries = gov->stats().retries;
    s.client_hedges = gov->stats().hedges;
    s.hedge_wins = gov->stats().hedge_wins;
    s.breaker_opens = gov->breaker() ? gov->breaker()->opens() : 0;
    s.deadline_cancels = gov->stats().deadline_cancels;
  }
  s.retransmit_exhausted = sys.clients().tx_stats().retransmit_exhausted;
  for (int t = 0; t < 3; ++t) {
    auto* srv = sys.tier(static_cast<Tier>(t));
    s.expired_at_admission += srv->stats().expired;
    if (const auto* gov = srv->governor()) {
      s.deadline_cancels += gov->stats().deadline_cancels;
      s.hedge_wins += gov->stats().hedge_wins;
    }
    if (auto* tx = srv->downstream_transport())
      s.retransmit_exhausted += tx->stats().retransmit_exhausted;
  }
  s.ctqo = analyze_ctqo(sys);
  return s;
}

std::string ExperimentSummary::to_string() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%s: %.1f req/s over %.0fs, highest avg CPU %.0f%%, drops=%llu, "
                "failed=%llu\n  latency: %s\n",
                name.c_str(), throughput_rps, duration_s, highest_mean_util_pct,
                static_cast<unsigned long long>(total_drops),
                static_cast<unsigned long long>(failed_requests),
                latency.to_string().c_str());
  out += buf;
  for (const auto& t : tiers) {
    std::snprintf(buf, sizeof buf,
                  "  %-8s acc=%llu drop=%llu peakQ=%.0f maxSysQDepth=%zu cpu=%.0f%%\n",
                  t.server.c_str(), static_cast<unsigned long long>(t.accepted),
                  static_cast<unsigned long long>(t.dropped), t.peak_queue,
                  t.max_sys_q_depth, t.mean_cpu_pct);
    out += buf;
  }
  if (client_retries || client_hedges || breaker_opens || deadline_cancels ||
      expired_at_admission || retransmit_exhausted) {
    std::snprintf(buf, sizeof buf,
                  "  policy: retries=%llu hedges=%llu (wins=%llu) breakerOpens=%llu "
                  "deadlineCancels=%llu expiredAtTier=%llu rtoExhausted=%llu\n",
                  static_cast<unsigned long long>(client_retries),
                  static_cast<unsigned long long>(client_hedges),
                  static_cast<unsigned long long>(hedge_wins),
                  static_cast<unsigned long long>(breaker_opens),
                  static_cast<unsigned long long>(deadline_cancels),
                  static_cast<unsigned long long>(expired_at_admission),
                  static_cast<unsigned long long>(retransmit_exhausted));
    out += buf;
  }
  out += ctqo.to_string();
  return out;
}

}  // namespace ntier::core
