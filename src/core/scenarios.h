// The paper's canned experiments, one builder per figure.
//
// Each returns a complete ExperimentConfig; bench binaries run them and
// print the corresponding series. Parameters mirror the paper where
// stated (thread pools, backlog, think time, WL sizes, 30 s flushes,
// 400-request batches); free parameters (burst demand, flush bytes,
// interference weight) are calibrated so the *shape* of each figure
// reproduces — see EXPERIMENTS.md for paper-vs-measured.
#pragma once

#include <cstddef>

#include "core/config.h"

namespace ntier::core::scenarios {

// Fig 1: multi-modal response-time histograms of the sync system under
// stochastic (burst-index-100) consolidation interference.
// workload in {4000, 7000, 8000}.
ExperimentConfig fig1_multimodal(std::size_t workload);

// Fig 3: upstream CTQO from CPU millibottlenecks (VM consolidation,
// SysSteady-Tomcat x SysBursty-MySQL), sync system, WL 7000.
ExperimentConfig fig3_consolidation_sync();

// Fig 5: upstream CTQO from I/O millibottlenecks (collectl log flush on
// the MySQL disk every 30 s), sync system, Tomcat on 4 vCPUs.
ExperimentConfig fig5_logflush_sync();

// Fig 7: NX=1 (Nginx-Tomcat-MySQL), millibottlenecks in Tomcat ->
// downstream CTQO at Tomcat (MaxSysQDepth 165+128=293).
ExperimentConfig fig7_nx1();

// Fig 8: NX=2 (Nginx-XTomcat-MySQL), millibottlenecks in MySQL ->
// downstream CTQO at MySQL (228).
ExperimentConfig fig8_nx2_mysql();

// Fig 9: NX=2, millibottlenecks in XTomcat -> batch release floods
// MySQL -> downstream CTQO at MySQL.
ExperimentConfig fig9_nx2_xtomcat();

// Fig 10: NX=3 (Nginx-XTomcat-XMySQL), millibottlenecks in XTomcat ->
// no CTQO, no drops.
ExperimentConfig fig10_nx3_xtomcat();

// Fig 11: NX=3, collectl log-flush millibottlenecks in XMySQL ->
// no CTQO, no drops.
ExperimentConfig fig11_nx3_logflush();

// Fig 12: throughput vs workload concurrency. Sync uses 2000-thread
// pools plus the thread-overhead model; async is the NX=3 stack.
// Zero think time; `concurrency` in {100, 200, 400, 800, 1600}.
ExperimentConfig fig12_point(Architecture arch, std::size_t concurrency);

// --- Extension studies (millibottleneck causes from the paper's
// --- references [31], [32]; "we add to the variety of millibottleneck
// --- studies") -----------------------------------------------------------

// JVM garbage-collection pauses in the app tier (ref [32]): periodic
// stop-the-world freezes, same CTQO consequences as consolidation.
ExperimentConfig ext_gc_pause(Architecture arch);

// DVFS governor lag (ref [31]): an ondemand-style governor parks the app
// host at low frequency under moderate load; client bursts arrive before
// the governor ramps up — a capacity-deficit millibottleneck.
ExperimentConfig ext_dvfs(Architecture arch);

// --- Tail-tolerance studies (policy layer vs. millibottlenecks) ----------

// One knob per mechanism so benches can sweep them independently.
enum class TailPolicyChoice {
  kNone,           // the paper's naive browser (baseline)
  kNaiveRetry,     // tight timeout, 4 attempts, tiny synchronized backoff,
                   // no budget — the configuration that can storm
  kBudgetedRetry,  // same attempts under decorrelated jitter + 10% budget
  kDeadline,       // 2.5 s end-to-end deadline, propagated to every tier
  kHedge,          // duplicate after the observed p95, first reply wins
  kBreaker,        // per-downstream circuit breaker, fast-fail when open
  kDeadlineHedge,  // 2.5 s deadline + two hedge copies — the lossy-link fix
  kFull,           // deadline + budgeted retry + hedge + breaker together
};
const char* to_string(TailPolicyChoice c);
policy::TailPolicy make_tail_policy(TailPolicyChoice c);

// Fig 3's consolidation millibottleneck (arch kSync or kNx3) with the
// chosen policy at the client hop. On NX=0, kNaiveRetry re-issues into
// full queues while TCP retransmits are still in flight — the retry
// storm the analyzer flags; budgets/deadlines are the comparison points.
ExperimentConfig ext_tail_tolerance(Architecture arch, TailPolicyChoice choice);

// Fig 5's log-flush millibottleneck plus deterministic lossy-link
// windows on the client hop. Losses put the baseline's tail at whole
// RTOs (~3 s modes); hedged duplicates and deadlines pull p99.9 back
// without adding a single server-side drop (losses are in the network).
ExperimentConfig ext_lossy_link(Architecture arch, TailPolicyChoice choice);

// A combined deterministic fault schedule — DB crash-and-restart, app
// slow-node window, degraded inter-tier link — with no interference
// bottleneck: exercises the injector end to end and the analyzer's view
// of fault-driven (rather than consolidation-driven) drop episodes.
ExperimentConfig ext_fault_injection(Architecture arch);

// --- Overload-control study (server side of the storm) --------------------

// One knob per admission/queue-management policy; kNone is the
// uncontrolled baseline that goes metastable.
enum class OverloadChoice {
  kNone,          // no controller: naive retries + TCP retransmits rule
  kQueueCap,      // explicit in-system cap, shed the excess as errors
  kTokenBucket,   // rate-limit admissions to provisioned throughput
  kCoDel,         // sojourn-target shedding at dequeue (CoDel control law)
  kAdaptiveLifo,  // newest-first under backlog + stale-entry shedding
  kBrownout,      // degraded responses (skip downstream) under pressure
};
const char* to_string(OverloadChoice c);
policy::overload::OverloadPolicy make_overload_policy(OverloadChoice c);

// The metastability experiment: near-saturation sync stack under
// kNaiveRetry clients, with a 2 s slow-node window throttling the app
// tier mid-run. With OverloadChoice::kNone the backlog built during the
// window outlives the fault indefinitely — retries and retransmits keep
// offered load above drain rate (a metastable failure). Shedding
// policies (applied at the web and app tiers) convert the excess into
// fast failures, failed clients back off into think time, and the
// system returns to its pre-fault operating point; the verdict engine
// (core/metastability.h) classifies each run.
ExperimentConfig ext_overload_control(OverloadChoice choice);

}  // namespace ntier::core::scenarios
