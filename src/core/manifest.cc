#include "core/manifest.h"

#include <cstdio>
#include <filesystem>

#include "core/ctqo_analyzer.h"
#include "metrics/csv.h"

namespace ntier::core {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void append_num(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

// Shared tail: totals from the latency collector + the registry's
// scalar snapshot. Keys are emitted in a fixed order (snapshot() is
// name-sorted), keeping the manifest byte-deterministic.
void append_common(std::string& out, const monitor::LatencyCollector& lat,
                   std::uint64_t total_drops, std::uint64_t events,
                   const telemetry::Registry& reg,
                   const CtqoReport* ctqo,
                   const obs::IncidentSummary* incidents) {
  // Storm aggregates ride along only when the analyzer flagged storms,
  // so storm-free manifests stay byte-identical to pre-report ones.
  if (ctqo != nullptr && ctqo->retry_storm_episodes > 0) {
    out += "  \"ctqo_storm\": {\n    \"episodes\": ";
    append_u64(out, ctqo->retry_storm_episodes);
    out += ",\n    \"longest_storm_s\": ";
    append_num(out, ctqo->longest_storm.to_seconds());
    out += ",\n    \"peak_retry_amplification\": ";
    append_num(out, ctqo->peak_retry_amplification);
    out += "\n  },\n";
  }
  // Same pattern for online incidents: the block appears only when at
  // least one detector fired, so incident-free manifests stay
  // byte-identical to pre-obs ones.
  if (incidents != nullptr && incidents->count > 0) {
    out += "  \"incidents\": {\n    \"count\": ";
    append_u64(out, incidents->count);
    out += ",\n    \"open\": ";
    append_u64(out, incidents->open);
    out += ",\n    \"first_fire_s\": ";
    append_num(out, incidents->first_fire_s);
    out += ",\n    \"by_detector\": {";
    bool first_det = true;
    for (const auto& [name, count] : incidents->by_detector) {
      out += first_det ? "\n      " : ",\n      ";
      first_det = false;
      append_escaped(out, name);
      out += ": ";
      append_u64(out, count);
    }
    out += "\n    }\n  },\n";
  }
  out += "  \"totals\": {\n    \"completed\": ";
  append_u64(out, lat.completed());
  out += ",\n    \"vlrt\": ";
  append_u64(out, lat.vlrt_count());
  out += ",\n    \"dropped_requests\": ";
  append_u64(out, lat.dropped_request_count());
  out += ",\n    \"failed\": ";
  append_u64(out, lat.failed_count());
  out += ",\n    \"dropped_packets\": ";
  append_u64(out, total_drops);
  out += ",\n    \"events_executed\": ";
  append_u64(out, events);
  out += "\n  },\n  \"registry\": {";
  bool first = true;
  for (const auto& [name, value] : reg.snapshot()) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": ";
    append_num(out, value);
  }
  out += "\n  }\n}\n";
}

std::string write_to(const std::string& json, const std::string& dir,
                     const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + name + ".manifest.json";
  return metrics::write_file(path, json) ? path : std::string();
}

}  // namespace

std::string run_manifest_json(const NTierSystem& sys, const CtqoReport* ctqo,
                              const obs::IncidentSummary* incidents) {
  const auto& cfg = sys.config();
  std::string out = "{\n  \"schema\": \"ntier.run-manifest/1\",\n  \"kind\": \"ntier\",\n";
  out += "  \"name\": ";
  append_escaped(out, cfg.name);
  out += ",\n  \"arch\": ";
  append_escaped(out, to_string(cfg.system.arch));
  out += ",\n  \"seed\": ";
  append_u64(out, cfg.seed);
  out += ",\n  \"duration_s\": ";
  append_num(out, cfg.duration.to_seconds());
  out += ",\n  \"sample_window_ms\": ";
  append_num(out, cfg.sample_window.to_millis());
  out += ",\n  \"sessions\": ";
  append_u64(out, cfg.workload.sessions);
  out += ",\n  \"tiers\": [";
  std::uint64_t drops = 0;
  for (int i = 0; i < 3; ++i) {
    const auto* srv = sys.tier(static_cast<Tier>(i));
    if (i > 0) out += ", ";
    append_escaped(out, srv->name());
    drops += srv->stats().dropped;
  }
  out += "],\n";
  append_common(out, sys.latency(), drops, sys.simulation().events_executed(),
                sys.registry(), ctqo, incidents);
  return out;
}

std::string run_manifest_json(const ChainSystem& sys, const CtqoReport* ctqo,
                              const obs::IncidentSummary* incidents) {
  const auto& cfg = sys.config();
  std::string out = "{\n  \"schema\": \"ntier.run-manifest/1\",\n  \"kind\": \"chain\",\n";
  out += "  \"name\": ";
  append_escaped(out, cfg.name);
  out += ",\n  \"seed\": ";
  append_u64(out, cfg.seed);
  out += ",\n  \"duration_s\": ";
  append_num(out, cfg.duration.to_seconds());
  out += ",\n  \"sample_window_ms\": ";
  append_num(out, cfg.sample_window.to_millis());
  out += ",\n  \"sessions\": ";
  append_u64(out, cfg.workload.sessions);
  out += ",\n  \"tiers\": [";
  for (std::size_t i = 0; i < sys.tier_count(); ++i) {
    if (i > 0) out += ", ";
    append_escaped(out, sys.tier(i)->name());
  }
  out += "],\n";
  append_common(out, sys.latency(), sys.total_drops(),
                sys.simulation().events_executed(), sys.registry(), ctqo, incidents);
  return out;
}

std::string run_manifest_json(const ManifestRun& run, const CtqoReport* ctqo,
                              const obs::IncidentSummary* incidents) {
  std::string out = "{\n  \"schema\": \"ntier.run-manifest/1\",\n  \"kind\": ";
  append_escaped(out, run.kind);
  out += ",\n  \"name\": ";
  append_escaped(out, run.name);
  out += ",\n  \"seed\": ";
  append_u64(out, run.seed);
  out += ",\n  \"duration_s\": ";
  append_num(out, run.duration.to_seconds());
  out += ",\n  \"sample_window_ms\": ";
  append_num(out, run.sample_window.to_millis());
  out += ",\n  \"sessions\": ";
  append_u64(out, run.sessions);
  out += ",\n  \"tiers\": [";
  for (std::size_t i = 0; i < run.tiers.size(); ++i) {
    if (i > 0) out += ", ";
    append_escaped(out, run.tiers[i]);
  }
  out += "],\n";
  append_common(out, *run.latency, run.total_drops, run.events_executed,
                *run.registry, ctqo, incidents);
  return out;
}

std::string write_manifest(const NTierSystem& sys, const std::string& dir,
                           const CtqoReport* ctqo, const obs::IncidentSummary* incidents) {
  return write_to(run_manifest_json(sys, ctqo, incidents), dir, sys.config().name);
}

std::string write_manifest(const ChainSystem& sys, const std::string& dir,
                           const CtqoReport* ctqo, const obs::IncidentSummary* incidents) {
  return write_to(run_manifest_json(sys, ctqo, incidents), dir, sys.config().name);
}

std::string write_manifest(const ManifestRun& run, const std::string& dir,
                           const CtqoReport* ctqo, const obs::IncidentSummary* incidents) {
  return write_to(run_manifest_json(run, ctqo, incidents), dir, run.name);
}

}  // namespace ntier::core
