// Experiment configuration: everything needed to reproduce a paper run.
//
// An ExperimentConfig is a pure value; the same config + seed always
// yields bit-identical artifacts (DESIGN.md invariant 9).
#pragma once

#include <cstdint>
#include <string>

#include "cpu/dvfs.h"
#include "cpu/thread_overhead.h"
#include "fault/fault_plan.h"
#include "monitor/collectl.h"
#include "net/protocol.h"
#include "net/rto_policy.h"
#include "obs/incident_monitor.h"
#include "policy/overload/overload.h"
#include "policy/tail_policy.h"
#include "server/app_profile.h"
#include "sim/time.h"
#include "trace/tracer.h"
#include "workload/sysbursty.h"

namespace ntier::core {

// NX = number of asynchronous servers, replaced front to back (paper §V).
enum class Architecture {
  kSync,  // NX=0: Apache - Tomcat  - MySQL
  kNx1,   // NX=1: Nginx  - Tomcat  - MySQL
  kNx2,   // NX=2: Nginx  - XTomcat - MySQL
  kNx3,   // NX=3: Nginx  - XTomcat - XMySQL
};
const char* to_string(Architecture a);

// The 3-tier testbed's tier positions, and their array index.
enum class Tier : int { kWeb = 0, kApp = 1, kDb = 2 };
constexpr int index(Tier t) { return static_cast<int>(t); }

// Where the millibottleneck comes from.
struct MillibottleneckSpec {
  enum class Kind {
    kNone,
    kConsolidationBatch,  // §V-B: fixed batches on a co-located VM
    kConsolidationMmpp,   // §IV-A: burst-index-100 tenant
    kLogFlush,            // §IV-B: collectl flush on the DB disk
    kGcPause,             // ref [32]: periodic JVM stop-the-world pauses
    kDvfs,                // ref [31]: slow frequency-governor ramp-up
  };
  Kind kind = Kind::kNone;
  Tier target = Tier::kApp;  // which tier's host the bursty VM shares
  // Scheduler weight of the bursty VM. The paper observes the bursty
  // tenant grabbing essentially the whole core ("requires 100% of CPU
  // during bursts", §IV-A), stopping the steady server "for a short
  // time"; a high weight reproduces that near-complete starvation in
  // our fluid fair-share model (bench/ablation_qdepth sweeps it).
  double interference_weight = 20.0;
  workload::InterferenceLoad::BatchConfig batch{};
  workload::InterferenceLoad::MmppConfig mmpp{};
  monitor::Collectl::Config logflush{};
  cpu::FreezeInjector::Config gc{};     // kGcPause, on `target`'s VM
  cpu::DvfsGovernor::Config dvfs{};     // kDvfs, on `target`'s host
};

// The server side: architecture, pool/queue sizing, hardware, and
// inter-tier networking (paper §III testbed parameters).
struct SystemConfig {
  // Which NX architecture to build.
  Architecture arch = Architecture::kSync;
  // Thread pools (sync tiers) — paper defaults.
  std::size_t web_threads = 150;
  std::size_t web_processes = 2;  // Apache prefork limit
  // Sustained pool exhaustion before prefork spawns another process.
  sim::Duration web_spawn_after = sim::Duration::from_seconds(1.5);
  std::size_t app_threads = 150;  // 165 in the NX=1 experiments
  std::size_t db_threads = 100;
  std::size_t backlog = 128;
  std::size_t db_pool = 50;  // Tomcat JDBC pool
  // Async bounds.
  std::size_t lite_q_web = 65535;
  std::size_t lite_q_app = 65535;
  std::size_t lite_q_db = 2000;  // InnoDB wait queue
  std::size_t db_async_threads = 8;
  // Hardware.
  int app_vcpus = 1;  // 4 in the log-flush experiments
  // Inter-tier networking. Fixed 3 s retransmission spacing reproduces
  // the paper's 3/6/9 s latency modes (k drops => ~3k s); rhel6() gives
  // strict exponential backoff instead (modes at 3/9 s per hop).
  net::RtoPolicy tier_rto = net::RtoPolicy::fixed3s();
  sim::Duration link_latency = sim::Duration::micros(200);
  // Accept-queue overflow behaviour at every sync tier, and the cookie
  // slow-path CPU cost when admission = kSynCookies (net/tcp_queue.h).
  // Defaults to the paper's drop-and-retransmit kernel; set via
  // apply_protocol() below for the named profiles.
  net::AdmissionMode admission = net::AdmissionMode::kTcpDrop;
  sim::Duration cookie_penalty = sim::Duration::zero();
  // Fig 12 concurrency-overhead model, applied to sync tiers.
  cpu::ThreadOverheadModel sync_overhead{};
  // Alternative design: web tier replies with an immediate overload
  // error instead of letting TCP drop (sync web tier only).
  bool web_shed_on_overload = false;
};

// The client side: session count, think/burst behaviour, client-hop
// networking, and the measurement window.
struct WorkloadConfig {
  // SysBursty/SysSteady load shape (paper §II-A defaults).
  std::size_t sessions = 7000;
  sim::Duration mean_think = sim::Duration::seconds(7);
  double burst_index = 1.0;  // SysSteady's own client burstiness
  sim::Duration burst_dwell = sim::Duration::millis(800);
  sim::Duration normal_dwell = sim::Duration::seconds(14);
  net::RtoPolicy client_rto = net::RtoPolicy::fixed3s();
  sim::Duration client_link = sim::Duration::micros(300);
  sim::Time measure_from = sim::Time::from_seconds(0.0);
  bool trace_requests = false;
  // Browser-style timeout (0 = none).
  sim::Duration client_timeout = sim::Duration::zero();
  // Navigate pages via the RUBBoS Markov session model instead of
  // independent class draws.
  bool markov_sessions = false;
  // Tail-tolerance policy applied at the client hop: stamps the
  // end-to-end deadline, drives client retries/hedges/breaker. Default:
  // all disabled (the paper's naive browser).
  policy::TailPolicy client_policy{};
};

// Per-tier overload control (policy/overload/overload.h): admission
// policy + queue discipline for each of the three tiers. Default all
// kNone — no controller is constructed and the run is event-identical
// to a build without the overload layer.
struct OverloadConfig {
  policy::overload::OverloadPolicy web{};
  policy::overload::OverloadPolicy app{};
  policy::overload::OverloadPolicy db{};

  // True when any tier has a policy other than kNone.
  bool any() const { return web.any() || app.any() || db.any(); }
};

// One complete run: system + workload + millibottleneck + run length.
// The sweep engine's ConfigBinder produces one of these per grid point.
struct ExperimentConfig {
  // Run name (artifact prefix) and the component configs above.
  std::string name = "experiment";
  SystemConfig system{};
  WorkloadConfig workload{};
  MillibottleneckSpec bottleneck{};
  server::AppProfile profile = server::AppProfile::rubbos();
  sim::Duration duration = sim::Duration::seconds(60);
  sim::Duration sample_window = sim::Duration::millis(50);
  std::uint64_t seed = 42;
  // Tail-tolerance policy applied on every inter-tier hop (web->app,
  // app->db): deadline-aware dispatch, downstream retries, hedging,
  // per-downstream circuit breaker. Default: all disabled.
  policy::TailPolicy tier_policy{};
  // Per-tier overload control (admission + queue management). Default:
  // all kNone (the paper's uncontrolled baseline).
  OverloadConfig overload{};
  // Deterministic fault schedule (crashes, link degradation, slow
  // nodes); empty = no faults. Replayed bit-identically from the seed.
  fault::FaultPlan faults{};
  // Distributed tracing (trace/tracer.h): which requests carry span
  // trees and which finished trees are retained. Default kOff — no
  // request allocates a tree and the run is bit-identical to a build
  // without the trace layer.
  trace::TraceConfig trace{};
  // Online observability (obs/incident_monitor.h): incident detectors
  // evaluated on the sampler tick plus the always-on flight recorder.
  // Default disabled; enabling it never perturbs the simulation
  // (DESIGN.md invariant 10).
  obs::ObsConfig obs{};
};

// Rejects nonsensical configurations (zero-sized pools, negative
// durations, a client timeout shorter than one retransmission timeout,
// invalid policies or fault windows) with a descriptive
// std::invalid_argument. run_system() calls this first, so every
// experiment fails fast instead of silently simulating garbage.
void validate(const ExperimentConfig& cfg);

// Arms one hop governor with a datagram profile's app-level recovery
// knobs — attempt_timeout, retry.max_attempts, retry.budget_ratio are
// overwritten from the profile; everything else is preserved. No-op for
// non-datagram profiles. apply_protocol() and the graph grammar's
// `proto` directive both route through this.
void apply_app_recovery(policy::TailPolicy& t, const net::ProtocolProfile& p);

// Threads a named protocol profile (net/protocol.h, docs/PROTOCOLS.md)
// through the whole experiment: retransmission timers on the client and
// inter-tier hops, accept-queue admission semantics at the sync tiers,
// and — for udp_apptimeout — the app-level timeout/retry knobs on the
// client and tier policy governors (attempt_timeout, max_attempts,
// budget_ratio are overwritten; other policy fields are preserved).
// Applying the default profile (fixed3s) is a no-op: the run stays
// byte-identical to one that never called this.
void apply_protocol(ExperimentConfig& cfg, const net::ProtocolProfile& p);

// MaxSysQDepth arithmetic of paper §III: thread pool + TCP backlog.
constexpr std::size_t max_sys_q_depth(std::size_t threads, std::size_t backlog) {
  return threads + backlog;
}

}  // namespace ntier::core
