// NTierSystem: a fully assembled simulated testbed.
//
// Owns the Simulation, the hosts/VMs/disk, the three tier servers
// (chosen by Architecture), the client population, the optional
// SysBursty interference tenant or collectl log flusher, the 50 ms
// sampler, and the latency collector. This is the public entry point a
// downstream user builds experiments with; `scenarios.h` provides the
// paper's canned configurations.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "core/config.h"
#include "cpu/dvfs.h"
#include "fault/fault_injector.h"
#include "cpu/host_core.h"
#include "cpu/io_device.h"
#include "monitor/collectl.h"
#include "monitor/sampler.h"
#include "monitor/vlrt_tracker.h"
#include "obs/incident_monitor.h"
#include "server/server_base.h"
#include "sim/random.h"
#include "sim/simulation.h"
#include "telemetry/registry.h"
#include "trace/tracer.h"
#include "workload/client.h"
#include "workload/sysbursty.h"

namespace ntier::core {

// The paper's 3-tier testbed, fully built: one Simulation owning hosts,
// servers, clients, the millibottleneck source, and every monitor.
// Distinct instances share nothing (sweep replications run in parallel).
class NTierSystem {
 public:
  // Builds the whole stack from a validated config; non-copyable (all
  // components hold pointers into this system's Simulation).
  explicit NTierSystem(ExperimentConfig cfg);
  NTierSystem(const NTierSystem&) = delete;
  NTierSystem& operator=(const NTierSystem&) = delete;

  // Runs the configured duration (idempotent extension allowed via
  // run_until). Starts clients/sampler on first call.
  void run();
  void run_until(sim::Time t);

  // --- access ------------------------------------------------------------
  const ExperimentConfig& config() const { return cfg_; }
  sim::Simulation& simulation() { return sim_; }
  const sim::Simulation& simulation() const { return sim_; }
  server::Server* tier(Tier t) { return servers_[index(t)].get(); }
  const server::Server* tier(Tier t) const { return servers_[index(t)].get(); }
  server::Server* web() { return tier(Tier::kWeb); }
  server::Server* app() { return tier(Tier::kApp); }
  server::Server* db() { return tier(Tier::kDb); }
  // Steady VM of a tier ("apache"/"nginx", "tomcat"/"xtomcat", ...).
  cpu::VmCpu* tier_vm(Tier t) { return vms_[index(t)]; }
  const cpu::VmCpu* tier_vm(Tier t) const { return vms_[index(t)]; }
  cpu::VmCpu* bursty_vm() { return bursty_vm_; }
  cpu::IoDevice* db_disk() { return db_disk_.get(); }
  const cpu::IoDevice* db_disk() const { return db_disk_.get(); }

  // Monitors, clients, and the optional bottleneck/fault components
  // (null when the config doesn't enable them).
  monitor::Sampler& sampler() { return sampler_; }
  const monitor::Sampler& sampler() const { return sampler_; }
  // Unified metric plane: every layer's counters/gauges/series/probes
  // (telemetry/registry.h; schema in docs/TELEMETRY.md).
  telemetry::Registry& registry() { return registry_; }
  const telemetry::Registry& registry() const { return registry_; }
  monitor::LatencyCollector& latency() { return latency_; }
  const monitor::LatencyCollector& latency() const { return latency_; }
  workload::ClientPool& clients() { return *clients_; }
  const workload::ClientPool& clients() const { return *clients_; }
  workload::InterferenceLoad* interference() { return interference_.get(); }
  const workload::InterferenceLoad* interference() const { return interference_.get(); }
  monitor::Collectl* collectl() { return collectl_.get(); }
  cpu::FreezeInjector* gc_injector() { return gc_.get(); }
  cpu::DvfsGovernor* dvfs() { return dvfs_.get(); }
  // Bound fault schedule; null when cfg.faults is empty.
  fault::FaultInjector* faults() { return fault_injector_.get(); }
  // Distributed-tracing collector; null when cfg.trace.mode is kOff.
  trace::Tracer* tracer() { return tracer_.get(); }
  const trace::Tracer* tracer() const { return tracer_.get(); }
  // Online incident detection + flight recorder; null when cfg.obs is
  // disabled (obs/incident_monitor.h).
  obs::IncidentMonitor* obs() { return obs_.get(); }
  const obs::IncidentMonitor* obs() const { return obs_.get(); }

  // The request-class profile the system was built with.
  const server::AppProfile& profile() const { return cfg_.profile; }

 private:
  void build_hosts();
  void build_servers();
  void build_workload();
  void build_monitoring();
  void build_faults();
  void build_obs();

  ExperimentConfig cfg_;
  sim::Simulation sim_;
  sim::Rng rng_;
  telemetry::Registry registry_;

  std::array<std::unique_ptr<cpu::HostCpu>, 3> hosts_;
  std::array<cpu::VmCpu*, 3> vms_{};
  cpu::VmCpu* bursty_vm_ = nullptr;
  std::unique_ptr<cpu::IoDevice> db_disk_;

  std::array<std::unique_ptr<server::Server>, 3> servers_;

  std::unique_ptr<workload::BurstClock> client_burst_;
  std::unique_ptr<workload::SessionModel> session_model_;
  std::unique_ptr<workload::ClientPool> clients_;
  std::unique_ptr<workload::InterferenceLoad> interference_;
  std::unique_ptr<monitor::Collectl> collectl_;
  std::unique_ptr<cpu::FreezeInjector> gc_;
  std::unique_ptr<cpu::DvfsGovernor> dvfs_;
  std::unique_ptr<fault::FaultInjector> fault_injector_;
  std::unique_ptr<trace::Tracer> tracer_;

  monitor::Sampler sampler_;
  monitor::LatencyCollector latency_;
  // Declared after every collector it reads so its (auto-finalizing)
  // destructor runs first.
  std::unique_ptr<obs::IncidentMonitor> obs_;
  bool started_ = false;
};

}  // namespace ntier::core
