// Experiment driver: build a system from a config, run it, summarize.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/ctqo_analyzer.h"
#include "core/system.h"
#include "metrics/summary.h"

namespace ntier::core {

// One tier's line in the run summary.
struct TierSummary {
  // Server name plus its accept/drop/complete counters and peaks.
  std::string server;
  std::uint64_t accepted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t completed = 0;
  std::size_t max_sys_q_depth = 0;
  double peak_queue = 0.0;     // max of the 50 ms queue series
  double mean_cpu_pct = 0.0;   // mean busy% over the run
};

// Everything a finished run reports: throughput, the latency digest,
// drops, per-tier lines, and the CTQO episode analysis. This is the
// value the sweep engine reduces over replications.
struct ExperimentSummary {
  // Identity and the headline numbers.
  std::string name;
  double duration_s = 0.0;
  double throughput_rps = 0.0;
  metrics::LatencyDigest latency;
  std::uint64_t total_drops = 0;
  std::uint64_t failed_requests = 0;
  double highest_mean_util_pct = 0.0;  // the paper's "highest average CPU util"
  std::vector<TierSummary> tiers;
  CtqoReport ctqo;
  // --- resilience layer (all zero for policy-free, fault-free runs) ----
  std::uint64_t client_retries = 0;      // policy re-sends at the client hop
  std::uint64_t client_hedges = 0;       // duplicate copies the client sent
  std::uint64_t hedge_wins = 0;          // duplicates that answered first
  std::uint64_t breaker_opens = 0;       // client breaker trips
  std::uint64_t deadline_cancels = 0;    // client + tier cancellations
  std::uint64_t expired_at_admission = 0;  // over-budget jobs refused by tiers
  std::uint64_t retransmit_exhausted = 0;  // sends that hit the RTO retry cap
  std::string to_string() const;
};

// Validates, builds, and runs cfg.duration; the system stays alive for
// inspection. Throws std::invalid_argument on a nonsensical config.
std::unique_ptr<NTierSystem> run_system(const ExperimentConfig& cfg);

// Summarizes a finished run over [measure_from, now].
ExperimentSummary summarize(NTierSystem& sys);

}  // namespace ntier::core
