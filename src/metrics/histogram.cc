#include "metrics/histogram.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace ntier::metrics {

LinearHistogram::LinearHistogram(sim::Duration bin_width, sim::Duration max_value)
    : bin_width_(bin_width) {
  assert(bin_width.count_micros() > 0);
  assert(max_value >= bin_width);
  const auto n = static_cast<std::size_t>(
      (max_value.count_micros() + bin_width.count_micros() - 1) / bin_width.count_micros());
  bins_.assign(n + 1, 0);  // +1 saturating overflow bin
}

void LinearHistogram::record(sim::Duration value) { record_n(value, 1); }

void LinearHistogram::record_n(sim::Duration value, std::uint64_t n) {
  if (n == 0) return;
  auto idx = static_cast<std::size_t>(
      std::max<std::int64_t>(0, value.count_micros()) / bin_width_.count_micros());
  if (idx >= bins_.size()) idx = bins_.size() - 1;
  bins_[idx] += n;
  for (std::uint64_t i = 0; i < n; ++i) raw_us_.push_back(value.count_micros());
  sorted_ = false;
  total_ += n;
  sum_us_ += static_cast<std::int64_t>(n) * value.count_micros();
}

sim::Duration LinearHistogram::percentile(double p) const {
  if (raw_us_.empty()) return sim::Duration::zero();
  if (!sorted_) {
    auto& raw = const_cast<std::vector<std::int64_t>&>(raw_us_);
    std::sort(raw.begin(), raw.end());
    sorted_ = true;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  auto rank = static_cast<std::size_t>(clamped / 100.0 * (raw_us_.size() - 1) + 0.5);
  return sim::Duration::micros(raw_us_[rank]);
}

sim::Duration LinearHistogram::min() const { return percentile(0.0); }
sim::Duration LinearHistogram::max() const { return percentile(100.0); }

sim::Duration LinearHistogram::mean() const {
  if (total_ == 0) return sim::Duration::zero();
  return sim::Duration::micros(sum_us_ / static_cast<std::int64_t>(total_));
}

std::uint64_t LinearHistogram::count_at_least(sim::Duration threshold) const {
  std::uint64_t n = 0;
  for (auto v : raw_us_)
    if (v >= threshold.count_micros()) ++n;
  return n;
}

std::vector<sim::Duration> LinearHistogram::modes(std::uint64_t min_count) const {
  // Contiguous regions of bins with count >= min_count form clusters;
  // each cluster's peak bin is a mode. Picks out the paper's RTO modes
  // (0/3/6/9 s) cleanly because the inter-mode bins are near-empty.
  const std::size_t n = bins_.size();
  std::vector<sim::Duration> out;
  std::size_t i = 0;
  while (i < n) {
    if (bins_[i] < min_count) { ++i; continue; }
    std::size_t best = i;
    std::size_t j = i;
    while (j < n && bins_[j] >= min_count) {
      if (bins_[j] > bins_[best]) best = j;
      ++j;
    }
    out.push_back(bin_lower(best) + bin_width_ / 2);
    i = j;
  }
  return out;
}

std::string LinearHistogram::to_table() const {
  std::string out = "lower_ms upper_ms count\n";
  char line[96];
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] == 0) continue;
    std::snprintf(line, sizeof line, "%.1f %.1f %llu\n", bin_lower(i).to_millis(),
                  (bin_lower(i) + bin_width_).to_millis(),
                  static_cast<unsigned long long>(bins_[i]));
    out += line;
  }
  return out;
}

}  // namespace ntier::metrics
