// Latency histograms for the Fig 1-style multi-modal analysis.
//
// Two shapes are needed by the paper's artifacts:
//  * LinearHistogram — fixed-width bins over [0, max), used for the
//    "frequency by response time" semi-log plots (Fig 1, 100 ms bins).
//  * Recorded percentiles/modes on the same data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace ntier::metrics {

class LinearHistogram {
 public:
  // bin_width > 0; values >= max_value land in a saturating last bin.
  LinearHistogram(sim::Duration bin_width, sim::Duration max_value);

  void record(sim::Duration value);
  void record_n(sim::Duration value, std::uint64_t n);

  std::uint64_t total() const { return total_; }
  std::uint64_t count_in_bin(std::size_t i) const { return bins_.at(i); }
  std::size_t bin_count() const { return bins_.size(); }
  sim::Duration bin_width() const { return bin_width_; }
  // Lower edge of bin i.
  sim::Duration bin_lower(std::size_t i) const { return bin_width_ * static_cast<std::int64_t>(i); }

  // Exact quantile over the recorded sample (uses the raw value list).
  sim::Duration percentile(double p) const;
  sim::Duration min() const;
  sim::Duration max() const;
  sim::Duration mean() const;

  // Count of samples with value >= threshold (e.g. VLRT >= 3 s).
  std::uint64_t count_at_least(sim::Duration threshold) const;

  // Local maxima of the smoothed bin counts whose height is at least
  // `min_count`. Returns the bin-center durations, ascending. This is how
  // tests and benches verify the 0/3/6/9 s modes of Fig 1.
  std::vector<sim::Duration> modes(std::uint64_t min_count) const;

  // One line per non-empty bin: "lower_ms upper_ms count". Matches the
  // series of the paper's Fig 1 frequency plots.
  std::string to_table() const;

 private:
  sim::Duration bin_width_;
  std::vector<std::uint64_t> bins_;
  std::vector<std::int64_t> raw_us_;  // raw sample for exact percentiles
  mutable bool sorted_ = true;
  std::uint64_t total_ = 0;
  std::int64_t sum_us_ = 0;
};

}  // namespace ntier::metrics
