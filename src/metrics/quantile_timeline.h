// Per-window latency quantiles: the "p99 over time" view that makes
// millibottlenecks visible as latency spikes even when no packet drops.
//
// Samples are buffered per window and reduced when the window closes
// (exact quantiles per window; memory is bounded by one window's
// completions).
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/timeline.h"
#include "sim/time.h"

namespace ntier::metrics {

class QuantileTimeline {
 public:
  // `quantiles` in (0,100], e.g. {50, 99}. One Timeline per quantile.
  QuantileTimeline(std::vector<double> quantiles, sim::Duration window);

  void record(sim::Time at, sim::Duration value);

  // Finalizes any open window (call once after the run). Idempotent.
  void flush();

  // True when no window is open, i.e. the series are safe to read.
  bool flushed() const { return !open_; }

  // Timeline of quantile q (must be one of the configured values); values
  // are milliseconds. Contract: call flush() first — a debug build
  // asserts on a pre-flush read, which would silently drop the final
  // partial window.
  const Timeline& series(double q) const;
  const std::vector<double>& quantiles() const { return qs_; }

 private:
  void close_window();
  std::size_t window_index(sim::Time t) const {
    return static_cast<std::size_t>(t.count_micros() / window_.count_micros());
  }

  std::vector<double> qs_;
  sim::Duration window_;
  std::vector<Timeline> lines_;
  std::vector<std::int64_t> buffer_us_;
  std::size_t current_window_ = 0;
  bool open_ = false;
};

}  // namespace ntier::metrics
