#include "metrics/csv.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace ntier::metrics {

std::string timelines_to_csv(const std::vector<const Timeline*>& series) {
  if (series.empty()) return "t_s\n";
  std::string out = "t_s";
  std::size_t max_windows = 0;
  for (const auto* s : series) {
    assert(s->window() == series.front()->window() &&
           "merged CSV requires equal windows");
    out += "," + s->name();
    max_windows = std::max(max_windows, s->window_count());
  }
  out += "\n";
  char buf[64];
  for (std::size_t i = 0; i < max_windows; ++i) {
    std::snprintf(buf, sizeof buf, "%.3f", series.front()->window_start(i).to_seconds());
    out += buf;
    for (const auto* s : series) {
      std::snprintf(buf, sizeof buf, ",%.4f", s->value_at(i));
      out += buf;
    }
    out += "\n";
  }
  return out;
}

std::string histogram_to_csv(const LinearHistogram& hist) {
  std::string out = "lower_ms,upper_ms,count\n";
  std::size_t last = hist.bin_count();
  while (last > 0 && hist.count_in_bin(last - 1) == 0) --last;
  char buf[96];
  for (std::size_t i = 0; i < last; ++i) {
    std::snprintf(buf, sizeof buf, "%.1f,%.1f,%llu\n", hist.bin_lower(i).to_millis(),
                  (hist.bin_lower(i) + hist.bin_width()).to_millis(),
                  static_cast<unsigned long long>(hist.count_in_bin(i)));
    out += buf;
  }
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

}  // namespace ntier::metrics
