// Scalar summaries: streaming mean/variance counters and a compact
// latency digest used in experiment reports.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace ntier::metrics {

// Welford streaming moments over double observations.
class Running {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance, 0 when n < 2
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Index of dispersion of inter-arrival times; the paper's burstiness
// measure (burst index I per Mi et al. ICAC'09) grows with this.
class DispersionIndex {
 public:
  void add_arrival(sim::Time t);
  // var/mean^2 of inter-arrival times (squared coefficient of variation).
  double scv() const;
  std::uint64_t arrivals() const { return inter_.count() + (has_last_ ? 1 : 0); }

 private:
  Running inter_;
  sim::Time last_{};
  bool has_last_ = false;
};

struct LatencyDigest {
  std::uint64_t count = 0;
  sim::Duration mean;
  sim::Duration p50;
  sim::Duration p99;
  sim::Duration p999;
  sim::Duration max;
  std::uint64_t vlrt_count = 0;  // >= vlrt threshold
  std::string to_string() const;
};

}  // namespace ntier::metrics
