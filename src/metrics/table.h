// Aligned text tables for bench output — the "rows the paper reports".
#pragma once

#include <string>
#include <vector>

namespace ntier::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Cells are stringified by the caller; row length must match headers.
  void add_row(std::vector<std::string> cells);
  Table& cell(std::string v);  // builder-style: fills the current row
  void end_row();

  std::size_t row_count() const { return rows_.size(); }
  std::string to_string() const;

  static std::string num(double v, int decimals = 1);
  static std::string num(std::uint64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
};

}  // namespace ntier::metrics
