// CSV export for external plotting: every paper figure's series can be
// written out and re-plotted with any tool.
#pragma once

#include <string>
#include <vector>

#include "metrics/histogram.h"
#include "metrics/timeline.h"

namespace ntier::metrics {

// Merged timelines: "t_s,<name1>,<name2>,..." with one row per window of
// the first series' width (all series must share the window width).
std::string timelines_to_csv(const std::vector<const Timeline*>& series);

// "lower_ms,upper_ms,count" rows, empty bins included up to the last
// non-empty one (semi-log plots need the zeros).
std::string histogram_to_csv(const LinearHistogram& hist);

// Writes content to path; returns false on I/O failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace ntier::metrics
