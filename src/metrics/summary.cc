#include "metrics/summary.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ntier::metrics {

void Running::add(double x) {
  ++n_;
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double Running::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Running::stddev() const { return std::sqrt(variance()); }

void DispersionIndex::add_arrival(sim::Time t) {
  if (has_last_) inter_.add((t - last_).to_seconds());
  last_ = t;
  has_last_ = true;
}

double DispersionIndex::scv() const {
  const double m = inter_.mean();
  if (m <= 0.0) return 0.0;
  return inter_.variance() / (m * m);
}

std::string LatencyDigest::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "n=%llu mean=%.1fms p50=%.1fms p99=%.1fms p99.9=%.1fms max=%.1fms vlrt=%llu",
                static_cast<unsigned long long>(count), mean.to_millis(), p50.to_millis(),
                p99.to_millis(), p999.to_millis(), max.to_millis(),
                static_cast<unsigned long long>(vlrt_count));
  return buf;
}

}  // namespace ntier::metrics
