// Fixed-window time series — the substrate for every timeline plot in the
// paper (CPU util, queued requests, and VLRT counts per 50 ms window).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace ntier::metrics {

// A series of double samples over equal windows starting at origin.
class Timeline {
 public:
  Timeline(std::string name, sim::Duration window);

  const std::string& name() const { return name_; }
  sim::Duration window() const { return window_; }

  // Adds `value` into the window containing `t` (sum aggregation).
  void add(sim::Time t, double value);
  // Overwrites the window containing `t` (gauge semantics).
  void set(sim::Time t, double value);
  // Record max within the window containing `t`.
  void max_in(sim::Time t, double value);

  std::size_t window_count() const { return values_.size(); }
  double value_at(std::size_t i) const { return i < values_.size() ? values_[i] : 0.0; }
  double value_at_time(sim::Time t) const { return value_at(index_of(t)); }
  sim::Time window_start(std::size_t i) const {
    return sim::Time::origin() + window_ * static_cast<std::int64_t>(i);
  }

  double max_value() const;
  double mean_over(sim::Time from, sim::Time to) const;
  // Max value over windows intersecting [from, to); 0 when empty.
  double max_over(sim::Time from, sim::Time to) const;
  // Earliest window start in [from, to) whose value >= threshold, or
  // Time::max() if none — used by the CTQO analyzer to order queue growth
  // across tiers.
  sim::Time first_time_at_least(double threshold, sim::Time from, sim::Time to) const;
  // All window starts with value >= threshold (e.g. millibottleneck marks).
  std::vector<sim::Time> windows_at_least(double threshold) const;

  // "t_s value" rows, skipping trailing zeros; step > 1 downsamples.
  std::string to_table(std::size_t step = 1) const;

 private:
  std::size_t index_of(sim::Time t) const {
    return static_cast<std::size_t>(t.count_micros() / window_.count_micros());
  }
  void ensure(std::size_t i);

  std::string name_;
  sim::Duration window_;
  std::vector<double> values_;
};

}  // namespace ntier::metrics
