#include "metrics/quantile_timeline.h"

#include <algorithm>
#include <cstdio>
#include <cassert>
#include <stdexcept>

namespace ntier::metrics {

QuantileTimeline::QuantileTimeline(std::vector<double> quantiles, sim::Duration window)
    : qs_(std::move(quantiles)), window_(window) {
  assert(!qs_.empty());
  char name[32];
  for (double q : qs_) {
    assert(q > 0.0 && q <= 100.0);
    std::snprintf(name, sizeof name, "p%g_ms", q);
    lines_.emplace_back(name, window_);
  }
}

void QuantileTimeline::record(sim::Time at, sim::Duration value) {
  const std::size_t w = window_index(at);
  if (open_ && w != current_window_) close_window();
  if (!open_) {
    current_window_ = w;
    open_ = true;
  }
  // Out-of-order samples from an earlier window fold into the current
  // one; completions are near-ordered so the distortion is negligible.
  buffer_us_.push_back(value.count_micros());
}

void QuantileTimeline::close_window() {
  if (!open_ || buffer_us_.empty()) {
    buffer_us_.clear();
    open_ = false;
    return;
  }
  std::sort(buffer_us_.begin(), buffer_us_.end());
  const sim::Time wstart =
      sim::Time::origin() + window_ * static_cast<std::int64_t>(current_window_);
  for (std::size_t i = 0; i < qs_.size(); ++i) {
    const auto rank = static_cast<std::size_t>(
        qs_[i] / 100.0 * static_cast<double>(buffer_us_.size() - 1) + 0.5);
    lines_[i].set(wstart, static_cast<double>(buffer_us_[rank]) / 1000.0);
  }
  buffer_us_.clear();
  open_ = false;
}

void QuantileTimeline::flush() { close_window(); }

const Timeline& QuantileTimeline::series(double q) const {
  // Reading with a window still open means the caller forgot flush():
  // the final partial window would silently be missing from the series
  // (the PR-3 API change every caller was audited against).
  assert(!open_ && "QuantileTimeline::series() read before flush()");
  for (std::size_t i = 0; i < qs_.size(); ++i)
    if (qs_[i] == q) return lines_[i];
  throw std::out_of_range("QuantileTimeline: quantile not configured");
}

}  // namespace ntier::metrics
