#include "metrics/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace ntier::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

Table& Table::cell(std::string v) {
  pending_.push_back(std::move(v));
  if (pending_.size() == headers_.size()) end_row();
  return *this;
}

void Table::end_row() {
  if (!pending_.empty()) {
    pending_.resize(headers_.size());
    rows_.push_back(std::move(pending_));
    pending_.clear();
  }
}

std::string Table::to_string() const {
  std::vector<std::size_t> w(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) w[c] = std::max(w[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& r, std::string& out) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      out += r[c];
      if (c + 1 < r.size()) out.append(w[c] - r[c].size() + 2, ' ');
    }
    out += '\n';
  };
  std::string out;
  emit(headers_, out);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule.append(w[c], '-');
    if (c + 1 < headers_.size()) rule.append(2, ' ');
  }
  out += rule + '\n';
  for (const auto& r : rows_) emit(r, out);
  return out;
}

std::string Table::num(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string Table::num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace ntier::metrics
