#include "metrics/timeline.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace ntier::metrics {

Timeline::Timeline(std::string name, sim::Duration window)
    : name_(std::move(name)), window_(window) {
  assert(window.count_micros() > 0);
}

void Timeline::ensure(std::size_t i) {
  if (i >= values_.size()) values_.resize(i + 1, 0.0);
}

void Timeline::add(sim::Time t, double value) {
  const auto i = index_of(t);
  ensure(i);
  values_[i] += value;
}

void Timeline::set(sim::Time t, double value) {
  const auto i = index_of(t);
  ensure(i);
  values_[i] = value;
}

void Timeline::max_in(sim::Time t, double value) {
  const auto i = index_of(t);
  ensure(i);
  values_[i] = std::max(values_[i], value);
}

double Timeline::max_value() const {
  double m = 0.0;
  for (double v : values_) m = std::max(m, v);
  return m;
}

double Timeline::mean_over(sim::Time from, sim::Time to) const {
  if (to <= from || values_.empty()) return 0.0;
  std::size_t lo = index_of(from);
  std::size_t hi = std::min(index_of(to - sim::Duration::micros(1)) + 1, values_.size());
  if (lo >= hi) return 0.0;
  double acc = 0.0;
  for (std::size_t i = lo; i < hi; ++i) acc += values_[i];
  return acc / static_cast<double>(hi - lo);
}

double Timeline::max_over(sim::Time from, sim::Time to) const {
  if (to <= from || values_.empty()) return 0.0;
  std::size_t lo = index_of(from);
  std::size_t hi = std::min(index_of(to - sim::Duration::micros(1)) + 1, values_.size());
  double m = 0.0;
  for (std::size_t i = lo; i < hi; ++i) m = std::max(m, values_[i]);
  return m;
}

sim::Time Timeline::first_time_at_least(double threshold, sim::Time from, sim::Time to) const {
  std::size_t lo = index_of(from);
  for (std::size_t i = lo; i < values_.size(); ++i) {
    if (window_start(i) >= to) break;
    if (values_[i] >= threshold) return window_start(i);
  }
  return sim::Time::max();
}

std::vector<sim::Time> Timeline::windows_at_least(double threshold) const {
  std::vector<sim::Time> out;
  for (std::size_t i = 0; i < values_.size(); ++i)
    if (values_[i] >= threshold) out.push_back(window_start(i));
  return out;
}

std::string Timeline::to_table(std::size_t step) const {
  if (step == 0) step = 1;
  std::size_t last = values_.size();
  while (last > 0 && values_[last - 1] == 0.0) --last;
  std::string out = "t_s " + name_ + "\n";
  char line[96];
  for (std::size_t i = 0; i < last; i += step) {
    std::snprintf(line, sizeof line, "%.2f %.3f\n", window_start(i).to_seconds(), values_[i]);
    out += line;
  }
  return out;
}

}  // namespace ntier::metrics
