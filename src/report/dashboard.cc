#include "report/dashboard.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "core/chain.h"
#include "core/system.h"
#include "graph/graph_system.h"
#include "obs/incident_monitor.h"

namespace ntier::report {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

std::string esc(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '&')
      out += "&amp;";
    else if (c == '<')
      out += "&lt;";
    else if (c == '>')
      out += "&gt;";
    else if (c == '"')
      out += "&quot;";
    else if (c == '\'')
      out += "&#39;";
    else
      out += c;
  }
  return out;
}

// JSON string escaping that is additionally safe inside an inline
// <script> element: <, >, & become \u00XX so a series name containing
// "</script>" cannot terminate the data island.
std::string json_js(const std::string& s) {
  std::string out;
  for (unsigned char c : s) {
    if (c == '"')
      out += "\\\"";
    else if (c == '\\')
      out += "\\\\";
    else if (c == '<')
      out += "\\u003c";
    else if (c == '>')
      out += "\\u003e";
    else if (c == '&')
      out += "\\u0026";
    else if (c < 0x20)
      appendf(out, "\\u%04x", c);
    else
      out += static_cast<char>(c);
  }
  return out;
}

// Round up to a friendly axis ceiling (1/2/5 * 10^k).
double nice_ceil(double v) {
  if (v <= 0.0) return 1.0;
  const double mag = std::pow(10.0, std::floor(std::log10(v)));
  for (double m : {1.0, 2.0, 5.0, 10.0}) {
    if (v <= m * mag) return m * mag;
  }
  return 10.0 * mag;
}

std::vector<double> values_of(const metrics::Timeline& t) {
  std::vector<double> v(t.window_count());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = t.value_at(i);
  return v;
}

// --- the render-ready view of one run ------------------------------------

struct TierPanel {
  std::string name;               // server name ("apache")
  std::vector<std::string> util;  // %-scaled series (vm demand, disk busy)
  std::string queue;              // "<name>.queue"
  std::string dropped;            // "<name>.dropped"
};

struct RunView {
  std::string name;
  std::uint64_t seed = 0;
  double duration_s = 0.0;
  double window_s = 0.05;
  const telemetry::Registry* registry = nullptr;
  const monitor::LatencyCollector* latency = nullptr;
  std::vector<TierPanel> tiers;
};

RunView make_view(const core::NTierSystem& sys) {
  RunView v;
  v.name = sys.config().name;
  v.seed = sys.config().seed;
  v.duration_s = (sys.simulation().now() - sim::Time::origin()).to_seconds();
  v.window_s = sys.sampler().window().to_seconds();
  v.registry = &sys.registry();
  v.latency = &sys.latency();
  for (core::Tier t : {core::Tier::kWeb, core::Tier::kApp, core::Tier::kDb}) {
    TierPanel p;
    p.name = sys.tier(t)->name();
    p.util.push_back(sys.tier_vm(t)->name() + ".demand");
    if (t == core::Tier::kDb && sys.db_disk() != nullptr)
      p.util.push_back(sys.db_disk()->name() + ".busy");
    p.queue = p.name + ".queue";
    p.dropped = p.name + ".dropped";
    v.tiers.push_back(std::move(p));
  }
  return v;
}

RunView make_view(const core::ChainSystem& sys) {
  RunView v;
  v.name = sys.config().name;
  v.seed = sys.config().seed;
  v.duration_s = (sys.simulation().now() - sim::Time::origin()).to_seconds();
  v.window_s = sys.sampler().window().to_seconds();
  v.registry = &sys.registry();
  v.latency = &sys.latency();
  for (std::size_t i = 0; i < sys.tier_count(); ++i) {
    TierPanel p;
    p.name = sys.tier(i)->name();
    p.util.push_back(sys.tier_vm(i)->name() + ".demand");
    if (sys.tier_disk(i) != nullptr) p.util.push_back(sys.tier_disk(i)->name() + ".busy");
    p.queue = p.name + ".queue";
    p.dropped = p.name + ".dropped";
    v.tiers.push_back(std::move(p));
  }
  return v;
}

// One panel per flattened replica (node-major, front node first) so a
// replicated group renders side-by-side queue/saturation timelines.
RunView make_view(const graph::GraphSystem& sys) {
  RunView v;
  v.name = sys.config().name;
  v.seed = sys.config().seed;
  v.duration_s = (sys.simulation().now() - sim::Time::origin()).to_seconds();
  v.window_s = sys.sampler().window().to_seconds();
  v.registry = &sys.registry();
  v.latency = &sys.latency();
  for (std::size_t f = 0; f < sys.flat_count(); ++f) {
    TierPanel p;
    p.name = sys.server_flat(f)->name();
    p.util.push_back(sys.vm_flat(f)->name() + ".demand");
    if (sys.disk_flat(f) != nullptr) p.util.push_back(sys.disk_flat(f)->name() + ".busy");
    p.queue = p.name + ".queue";
    p.dropped = p.name + ".dropped";
    v.tiers.push_back(std::move(p));
  }
  return v;
}

// --- SVG timeline chart ---------------------------------------------------

constexpr double kW = 900, kML = 52, kMR = 56, kMT = 16, kMB = 24;

struct TimeChart {
  double h;           // total height
  double duration_s;  // x domain [0, duration]
  std::string body;

  double ph() const { return h - kMT - kMB; }
  double pw() const { return kW - kML - kMR; }
  double x(double t_s) const {
    return kML + (duration_s > 0 ? t_s / duration_s : 0.0) * pw();
  }
  double y(double v, double ymax) const {
    const double f = ymax > 0 ? v / ymax : 0.0;
    return kMT + (1.0 - (f > 1.0 ? 1.0 : f)) * ph();
  }

  TimeChart(double height, double duration) : h(height), duration_s(duration) {}

  void shade(double t0, double t1, const char* fill) {
    appendf(body, "<rect x='%.2f' y='%.2f' width='%.2f' height='%.2f' fill='%s'/>\n", x(t0),
            kMT, std::max(x(t1) - x(t0), 1.0), ph(), fill);
  }

  // Dashed full-height marker at an incident fire time.
  void marker(double t_s, const char* color) {
    appendf(body,
            "<line x1='%.2f' y1='%.2f' x2='%.2f' y2='%.2f' stroke='%s' stroke-width='1' "
            "stroke-dasharray='4,3' class='incident'/>\n",
            x(t_s), kMT, x(t_s), kMT + ph(), color);
  }

  void frame_and_xaxis() {
    appendf(body,
            "<rect x='%.2f' y='%.2f' width='%.2f' height='%.2f' fill='none' "
            "stroke='#ccc'/>\n",
            kML, kMT, pw(), ph());
    const double step = nice_ceil(duration_s / 8.0);
    for (double t = 0.0; t <= duration_s + 1e-9; t += step) {
      appendf(body,
              "<line x1='%.2f' y1='%.2f' x2='%.2f' y2='%.2f' stroke='#eee'/>"
              "<text x='%.2f' y='%.2f' class='tick' text-anchor='middle'>%g</text>\n",
              x(t), kMT, x(t), kMT + ph(), x(t), h - 8.0, t);
    }
  }

  void yaxis_left(double ymax, const char* unit) {
    appendf(body,
            "<text x='%.2f' y='%.2f' class='tick' text-anchor='end'>%g%s</text>"
            "<text x='%.2f' y='%.2f' class='tick' text-anchor='end'>0</text>\n",
            kML - 4.0, kMT + 9.0, ymax, unit, kML - 4.0, kMT + ph());
  }

  void yaxis_right(double ymax, const char* unit, const char* color) {
    appendf(body, "<text x='%.2f' y='%.2f' class='tick' fill='%s'>%g%s</text>\n",
            kW - kMR + 4.0, kMT + 9.0, color, ymax, unit);
  }

  void line(const std::vector<double>& v, double win_s, double ymax, const char* color) {
    if (v.empty()) return;
    std::string pts;
    for (std::size_t i = 0; i < v.size(); ++i)
      appendf(pts, "%.2f,%.2f ", x((static_cast<double>(i) + 0.5) * win_s), y(v[i], ymax));
    body += "<polyline points='";
    body += pts;
    appendf(body, "' fill='none' stroke='%s' stroke-width='1'/>\n", color);
  }

  void impulses(const std::vector<double>& v, double win_s, double ymax, const char* color) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i] <= 0.0) continue;
      const double px = x((static_cast<double>(i) + 0.5) * win_s);
      appendf(body,
              "<line x1='%.2f' y1='%.2f' x2='%.2f' y2='%.2f' stroke='%s' "
              "stroke-width='1.4'/>\n",
              px, y(0.0, ymax), px, y(v[i], ymax), color);
    }
  }

  void label(double px, double py, const char* color, const std::string& text) {
    appendf(body, "<text x='%.2f' y='%.2f' class='lbl' fill='%s'>%s</text>\n", px, py, color,
            esc(text).c_str());
  }

  std::string svg() const {
    std::string out;
    appendf(out, "<svg viewBox='0 0 %.0f %.0f' xmlns='http://www.w3.org/2000/svg'>\n", kW, h);
    out += body;
    out += "</svg>\n";
    return out;
  }
};

const char* kUtilColors[] = {"#1f77b4", "#9467bd", "#17becf"};

const char* severity_color(obs::Severity s) {
  return s == obs::Severity::kCritical ? "#d62728"
         : s == obs::Severity::kWarning ? "#ff7f0e"
                                        : "#888888";
}

bool panel_has_series(const TierPanel& p, const std::string& series) {
  if (series == p.queue || series == p.dropped) return true;
  for (const auto& u : p.util)
    if (u == series) return true;
  return false;
}

void draw_incident_markers(TimeChart& c, const std::vector<obs::Incident>* incs,
                           const TierPanel* panel) {
  if (incs == nullptr) return;
  for (const auto& inc : *incs) {
    if (panel != nullptr && !panel_has_series(*panel, inc.series)) continue;
    c.marker((inc.fired_at - sim::Time::origin()).to_seconds(), severity_color(inc.severity));
  }
}

void render_tier_panel(std::string& out, const RunView& v, const TierPanel& p,
                       const core::CtqoReport& ctqo,
                       const std::vector<obs::Incident>* incs) {
  TimeChart c(150, v.duration_s);
  for (const auto& ep : ctqo.episodes) {
    c.shade((ep.start - sim::Time::origin()).to_seconds(),
            (ep.end - sim::Time::origin()).to_seconds(), "#fde9e6");
  }
  c.frame_and_xaxis();
  c.yaxis_left(100.0, "%");
  draw_incident_markers(c, incs, &p);

  const metrics::Timeline* q = v.registry->find_series(p.queue);
  const bool has_queue = q != nullptr && q->max_value() > 0.0;
  const double qmax = has_queue ? nice_ceil(q->max_value()) : 1.0;
  if (has_queue) {
    c.line(values_of(*q), v.window_s, qmax, "#2ca02c");
    c.yaxis_right(qmax, " q", "#2ca02c");
  }
  const metrics::Timeline* d = v.registry->find_series(p.dropped);
  const bool has_drops = d != nullptr && d->max_value() > 0.0;
  if (has_drops) c.impulses(values_of(*d), v.window_s, nice_ceil(d->max_value()), "#d62728");

  double lx = kML + 6.0;
  for (std::size_t i = 0; i < p.util.size(); ++i) {
    const metrics::Timeline* u = v.registry->find_series(p.util[i]);
    if (u == nullptr) continue;
    const char* color = kUtilColors[i % 3];
    c.line(values_of(*u), v.window_s, 100.0, color);
    c.label(lx, kMT + 11.0, color, p.util[i]);
    lx += 10.0 + 6.2 * static_cast<double>(p.util[i].size());
  }
  if (has_queue) {
    c.label(lx, kMT + 11.0, "#2ca02c", p.queue);
    lx += 10.0 + 6.2 * static_cast<double>(p.queue.size());
  }
  if (has_drops) c.label(lx, kMT + 11.0, "#d62728", p.dropped + " (impulses)");

  appendf(out, "<h3>%s</h3>\n", esc(p.name).c_str());
  out += c.svg();
}

void render_vlrt_strip(std::string& out, const RunView& v, const core::CtqoReport& ctqo,
                       const std::vector<obs::Incident>* incs) {
  const std::vector<double> vals = values_of(v.latency->vlrt_per_window());
  double vmax = 0.0;
  for (double x : vals) vmax = std::max(vmax, x);
  TimeChart c(130, v.duration_s);
  for (const auto& ep : ctqo.episodes) {
    c.shade((ep.start - sim::Time::origin()).to_seconds(),
            (ep.end - sim::Time::origin()).to_seconds(), "#fde9e6");
  }
  c.frame_and_xaxis();
  // Every incident marks the VLRT strip: the strip is the end-to-end
  // consequence the detectors are trying to get ahead of.
  draw_incident_markers(c, incs, nullptr);
  c.yaxis_left(nice_ceil(vmax), "");
  c.impulses(vals, v.window_s, nice_ceil(vmax), "#d62728");
  c.label(kML + 6.0, kMT + 11.0, "#d62728", "VLRT requests per 50 ms window");
  appendf(out, "<h3>VLRT windows (%llu requests &ge; %.1f s; shaded = drop episodes)</h3>\n",
          static_cast<unsigned long long>(v.latency->vlrt_count()),
          v.latency->vlrt_threshold().to_seconds());
  out += c.svg();
}

void render_histogram(std::string& out, const RunView& v) {
  const metrics::LinearHistogram& h = v.latency->histogram();
  std::size_t last = 0;
  std::uint64_t peak = 0;
  for (std::size_t i = 0; i < h.bin_count(); ++i) {
    if (h.count_in_bin(i) > 0) last = i;
    peak = std::max(peak, h.count_in_bin(i));
  }
  appendf(out, "<h3>Latency histogram (n=%llu, p50 %.0f ms, p99 %.0f ms, max %.2f s)</h3>\n",
          static_cast<unsigned long long>(h.total()), h.percentile(50.0).to_millis(),
          h.percentile(99.0).to_millis(), h.max().to_seconds());
  if (h.total() == 0) {
    out += "<p class='meta'>no completed requests</p>\n";
    return;
  }
  const double xmax = h.bin_lower(last).to_seconds() + h.bin_width().to_seconds();
  const double ymax = std::log10(static_cast<double>(peak) + 1.0);
  TimeChart c(180, xmax);  // x axis is latency seconds, log10 bar heights
  c.frame_and_xaxis();
  appendf(c.body, "<text x='%.2f' y='%.2f' class='tick' text-anchor='end'>%llu</text>\n",
          kML - 4.0, kMT + 9.0, static_cast<unsigned long long>(peak));
  for (std::size_t i = 0; i <= last; ++i) {
    const std::uint64_t n = h.count_in_bin(i);
    if (n == 0) continue;
    const double x0 = c.x(h.bin_lower(i).to_seconds());
    const double x1 = c.x(h.bin_lower(i).to_seconds() + h.bin_width().to_seconds());
    const double top = c.y(std::log10(static_cast<double>(n) + 1.0), ymax);
    appendf(c.body, "<rect x='%.2f' y='%.2f' width='%.2f' height='%.2f' fill='#1f77b4'/>\n",
            x0, top, std::max(x1 - x0 - 0.5, 0.5), c.y(0.0, ymax) - top);
  }
  c.label(kML + 6.0, kMT + 11.0, "#555",
          "frequency by response time (log count); whole-RTO modes sit at 3/6/9 s");
  out += c.svg();
}

void render_correlation(std::string& out, const core::CorrelationReport& corr) {
  out += "<h3>Correlation engine</h3>\n";
  appendf(out, "<p class='verdict'>queue-depth propagation: <b>%s</b>",
          core::to_string(corr.propagation));
  if (corr.drop_tier >= 0)
    appendf(out, " &mdash; drops at <b>%s</b> (tier %d), bottleneck <b>%s</b> (tier %d)",
            esc(corr.drop_tier_name).c_str(), corr.drop_tier,
            esc(corr.bottleneck_series).c_str(), corr.bottleneck_tier);
  out += "</p>\n";
  if (!corr.chains.empty()) {
    out += "<table><tr><th>#</th><th>saturation</th><th>&rarr; drops</th><th>fill lag</th>"
           "<th>r</th><th>&rarr; VLRT lag</th><th>r</th><th>score</th></tr>\n";
    int i = 0;
    for (const auto& ch : corr.chains) {
      appendf(out,
              "<tr><td>%d</td><td>%s</td><td>%s</td><td>%.2f s</td><td>%.3f</td>"
              "<td>%.2f s</td><td>%.3f</td><td><b>%.3f</b></td></tr>\n",
              ++i, esc(ch.saturation_series).c_str(), esc(ch.drop_series).c_str(),
              ch.fill.lag_seconds, ch.fill.r, ch.rto.lag_seconds, ch.rto.r, ch.score);
    }
    out += "</table>\n";
  }
  if (!corr.direct.empty()) {
    out += "<details><summary>Ranked pairs vs VLRT (spurious-match check)</summary><table>"
           "<tr><th>series</th><th>best lag</th><th>r</th></tr>\n";
    for (const auto& d : corr.direct) {
      appendf(out, "<tr><td>%s</td><td>%.2f s</td><td>%.3f</td></tr>\n", esc(d.source).c_str(),
              d.lag_seconds, d.r);
    }
    out += "</table></details>\n";
  }
  if (!corr.queue_onsets.empty()) {
    out += "<p class='meta'>queue onset (first window at half peak):";
    for (const auto& [name, at] : corr.queue_onsets) {
      if (at < 0)
        appendf(out, " %s=never", esc(name).c_str());
      else
        appendf(out, " %s=%.2fs", esc(name).c_str(), at);
    }
    out += "</p>\n";
  }
}

void render_episodes(std::string& out, const core::CtqoReport& ctqo) {
  appendf(out,
          "<h3>CTQO episodes (%llu drops, %llu upstream / %llu downstream / %llu storms)"
          "</h3>\n",
          static_cast<unsigned long long>(ctqo.total_drops),
          static_cast<unsigned long long>(ctqo.upstream_episodes),
          static_cast<unsigned long long>(ctqo.downstream_episodes),
          static_cast<unsigned long long>(ctqo.retry_storm_episodes));
  if (ctqo.episodes.empty()) {
    out += "<p class='meta'>no drop episodes &mdash; the chain absorbed every burst</p>\n";
    return;
  }
  out += "<table><tr><th>window</th><th>drops</th><th>at</th><th>bottleneck</th>"
         "<th>kind</th><th>storm</th></tr>\n";
  for (const auto& ep : ctqo.episodes) {
    const char* kind = ep.kind == core::CtqoEpisode::Kind::kUpstream     ? "upstream"
                       : ep.kind == core::CtqoEpisode::Kind::kDownstream ? "downstream"
                                                                         : "unknown";
    appendf(out,
            "<tr><td>%.2f&ndash;%.2f s</td><td>%llu</td><td>%s</td><td>%s</td><td>%s</td>"
            "<td>%s</td></tr>\n",
            (ep.start - sim::Time::origin()).to_seconds(),
            (ep.end - sim::Time::origin()).to_seconds(),
            static_cast<unsigned long long>(ep.drops), esc(ep.drop_tier_name).c_str(),
            esc(ep.bottleneck_found ? ep.bottleneck_name : std::string("?")).c_str(), kind,
            ep.retry_storm ? "yes" : "");
  }
  out += "</table>\n";
}

// The incidents table, flight-recorder summary line, and the
// machine-readable data island (satellite of the obs layer; only
// rendered when at least one incident fired, so incident-free runs keep
// byte-identical dashboards).
void render_incidents(std::string& out, const obs::IncidentMonitor& om) {
  const std::vector<obs::Incident>& incs = om.incidents();
  std::size_t open = 0;
  for (const auto& inc : incs)
    if (!inc.cleared) ++open;
  appendf(out, "<h3>Incidents (%llu fired, %llu open at run end)</h3>\n",
          static_cast<unsigned long long>(incs.size()), static_cast<unsigned long long>(open));
  if (om.have_dump_window()) {
    appendf(out, "<p class='meta'>flight recorder: retroactive window %.2f&ndash;%.2f s",
            (om.dump_from() - sim::Time::origin()).to_seconds(),
            (om.dump_to() - sim::Time::origin()).to_seconds());
    if (om.recorder() != nullptr) {
      appendf(out, " &middot; %llu span trees dumped (%llu offered, %llu evicted)",
              static_cast<unsigned long long>(om.dumped_traces()),
              static_cast<unsigned long long>(om.recorder()->offered()),
              static_cast<unsigned long long>(om.recorder()->evicted()));
    }
    out += "</p>\n";
  }
  out += "<table><tr><th>#</th><th>detector</th><th>kind</th><th>series</th>"
         "<th>severity</th><th>fired</th><th>cleared</th><th>value</th><th>stat</th>"
         "<th>peak</th></tr>\n";
  int i = 0;
  for (const auto& inc : incs) {
    appendf(out, "<tr><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%.2f s</td>",
            ++i, esc(inc.detector).c_str(), obs::to_string(inc.kind), esc(inc.series).c_str(),
            obs::to_string(inc.severity), (inc.fired_at - sim::Time::origin()).to_seconds());
    if (inc.cleared)
      appendf(out, "<td>%.2f s</td>", (inc.cleared_at - sim::Time::origin()).to_seconds());
    else
      out += "<td>open</td>";
    appendf(out, "<td>%.3g</td><td>%.3g</td><td>%.3g</td></tr>\n", inc.value_at_fire,
            inc.stat_at_fire, inc.peak_value);
  }
  out += "</table>\n";
  out += "<script type=\"application/json\" id=\"incident-data\">[";
  i = 0;
  for (const auto& inc : incs) {
    if (i++ > 0) out += ",";
    appendf(out,
            "{\"detector\":\"%s\",\"series\":\"%s\",\"kind\":\"%s\",\"severity\":\"%s\","
            "\"fired_s\":%.6f,",
            json_js(inc.detector).c_str(), json_js(inc.series).c_str(),
            obs::to_string(inc.kind), obs::to_string(inc.severity),
            (inc.fired_at - sim::Time::origin()).to_seconds());
    if (inc.cleared)
      appendf(out, "\"cleared_s\":%.6f,", (inc.cleared_at - sim::Time::origin()).to_seconds());
    else
      out += "\"cleared_s\":null,";
    appendf(out, "\"value_at_fire\":%.6g,\"stat_at_fire\":%.6g,\"peak_value\":%.6g}",
            inc.value_at_fire, inc.stat_at_fire, inc.peak_value);
  }
  out += "]</script>\n";
}

void render_counters(std::string& out, const RunView& v) {
  out += "<details><summary>Registry counters &amp; probe totals</summary><table>"
         "<tr><th>metric</th><th>value</th></tr>\n";
  for (const auto& [name, value] : v.registry->snapshot())
    appendf(out, "<tr><td>%s</td><td>%.6g</td></tr>\n", esc(name).c_str(), value);
  const telemetry::GkQuantile* q = v.registry->find_quantile("client.latency_ms");
  if (q != nullptr && q->count() > 0) {
    for (double p : {0.50, 0.99, 0.999}) {
      appendf(out, "<tr><td>client.latency_ms p%g</td><td>%.1f</td></tr>\n", p * 100.0,
              q->quantile(p));
    }
  }
  out += "</table></details>\n";
}

std::string render(const RunView& v, const core::CtqoReport& ctqo,
                   const core::CorrelationReport& corr, const obs::IncidentMonitor* om) {
  const bool have_incidents = om != nullptr && !om->incidents().empty();
  const std::vector<obs::Incident>* incs = have_incidents ? &om->incidents() : nullptr;
  std::string out;
  out += "<!doctype html>\n<html><head><meta charset='utf-8'>\n<title>ntier-ctqo &mdash; ";
  out += esc(v.name);
  out += "</title>\n<style>\n"
         "body{font:14px/1.45 system-ui,sans-serif;margin:24px auto;max-width:940px;"
         "color:#222}\n"
         "h1{font-size:22px;margin-bottom:2px} h3{margin:18px 0 4px}\n"
         ".meta{color:#666;margin:2px 0} .verdict{background:#f4f7fb;border-left:4px solid "
         "#1f77b4;padding:6px 10px}\n"
         "svg{width:100%;height:auto;display:block} .tick{font-size:10px;fill:#888}\n"
         ".lbl{font-size:10px}\n"
         "table{border-collapse:collapse;margin:6px 0} td,th{border:1px solid #ddd;"
         "padding:2px 8px;font-size:13px;text-align:left}\n"
         "details{margin:8px 0} summary{cursor:pointer;color:#1f77b4}\n"
         "</style></head>\n<body>\n";
  appendf(out, "<h1>ntier-ctqo run: %s</h1>\n", esc(v.name).c_str());
  appendf(out,
          "<p class='meta'>seed %llu &middot; %.0f s simulated &middot; %.0f ms windows "
          "&middot; %llu completed &middot; %llu VLRT &middot; %llu failed</p>\n",
          static_cast<unsigned long long>(v.seed), v.duration_s, v.window_s * 1000.0,
          static_cast<unsigned long long>(v.latency->completed()),
          static_cast<unsigned long long>(v.latency->vlrt_count()),
          static_cast<unsigned long long>(v.latency->failed_count()));
  render_correlation(out, corr);
  render_histogram(out, v);
  for (const auto& p : v.tiers) render_tier_panel(out, v, p, ctqo, incs);
  render_vlrt_strip(out, v, ctqo, incs);
  render_episodes(out, ctqo);
  if (have_incidents) render_incidents(out, *om);
  render_counters(out, v);
  out += "</body></html>\n";
  return out;
}

std::string write_file(const std::string& dir, const std::string& name,
                       const std::string& html) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + name + ".dashboard.html";
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("dashboard: cannot write " + path);
  f << html;
  return path;
}

}  // namespace

std::string render_dashboard(const core::NTierSystem& sys, const core::CtqoReport& ctqo,
                             const core::CorrelationReport& corr,
                             const obs::IncidentMonitor* om) {
  return render(make_view(sys), ctqo, corr, om);
}

std::string render_dashboard(const core::ChainSystem& sys, const core::CtqoReport& ctqo,
                             const core::CorrelationReport& corr,
                             const obs::IncidentMonitor* om) {
  return render(make_view(sys), ctqo, corr, om);
}

std::string write_dashboard(const core::NTierSystem& sys, const core::CtqoReport& ctqo,
                            const core::CorrelationReport& corr, const std::string& dir,
                            const std::string& name, const obs::IncidentMonitor* om) {
  return write_file(dir, name, render_dashboard(sys, ctqo, corr, om));
}

std::string write_dashboard(const core::ChainSystem& sys, const core::CtqoReport& ctqo,
                            const core::CorrelationReport& corr, const std::string& dir,
                            const std::string& name, const obs::IncidentMonitor* om) {
  return write_file(dir, name, render_dashboard(sys, ctqo, corr, om));
}

std::string render_dashboard(const graph::GraphSystem& sys, const core::CtqoReport& ctqo,
                             const core::CorrelationReport& corr,
                             const obs::IncidentMonitor* om) {
  return render(make_view(sys), ctqo, corr, om);
}

std::string write_dashboard(const graph::GraphSystem& sys, const core::CtqoReport& ctqo,
                            const core::CorrelationReport& corr, const std::string& dir,
                            const std::string& name, const obs::IncidentMonitor* om) {
  return write_file(dir, name, render_dashboard(sys, ctqo, corr, om));
}

}  // namespace ntier::report
