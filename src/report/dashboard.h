// Single-file HTML run dashboard (inline SVG, no external assets).
#pragma once

#include <string>

#include "core/correlate.h"
#include "core/ctqo_analyzer.h"

namespace ntier::core {
class NTierSystem;
class ChainSystem;
}  // namespace ntier::core

namespace ntier::graph {
class GraphSystem;
}  // namespace ntier::graph

namespace ntier::report {

// Renders the full run dashboard as one self-contained HTML document:
// latency histogram, per-tier saturation and queue timelines with CTQO
// episode shading, the VLRT strip, the ranked correlation table, and the
// registry counter snapshot. Deterministic: same run, same bytes.
std::string render_dashboard(const core::NTierSystem& sys, const core::CtqoReport& ctqo,
                             const core::CorrelationReport& corr);
std::string render_dashboard(const core::ChainSystem& sys, const core::CtqoReport& ctqo,
                             const core::CorrelationReport& corr);
std::string render_dashboard(const graph::GraphSystem& sys, const core::CtqoReport& ctqo,
                             const core::CorrelationReport& corr);

// Renders and writes `<dir>/<name>.dashboard.html`; returns the path.
std::string write_dashboard(const core::NTierSystem& sys, const core::CtqoReport& ctqo,
                            const core::CorrelationReport& corr, const std::string& dir,
                            const std::string& name);
std::string write_dashboard(const core::ChainSystem& sys, const core::CtqoReport& ctqo,
                            const core::CorrelationReport& corr, const std::string& dir,
                            const std::string& name);
std::string write_dashboard(const graph::GraphSystem& sys, const core::CtqoReport& ctqo,
                            const core::CorrelationReport& corr, const std::string& dir,
                            const std::string& name);

}  // namespace ntier::report
