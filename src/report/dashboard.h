// Single-file HTML run dashboard (inline SVG, no external assets).
#pragma once

#include <string>

#include "core/correlate.h"
#include "core/ctqo_analyzer.h"

namespace ntier::core {
class NTierSystem;
class ChainSystem;
}  // namespace ntier::core

namespace ntier::graph {
class GraphSystem;
}  // namespace ntier::graph

namespace ntier::obs {
class IncidentMonitor;
}  // namespace ntier::obs

namespace ntier::report {

// Renders the full run dashboard as one self-contained HTML document:
// latency histogram, per-tier saturation and queue timelines with CTQO
// episode shading, the VLRT strip, the ranked correlation table, and the
// registry counter snapshot. Deterministic: same run, same bytes.
//
// When an IncidentMonitor with at least one fired incident is supplied,
// the dashboard additionally shows incident fire-time markers on the
// panels, an incident table, and a machine-readable
// `<script type="application/json" id="incident-data">` island (series
// names JS-escaped). Passing null — or a monitor that never fired —
// yields bytes identical to the incident-free dashboard.
std::string render_dashboard(const core::NTierSystem& sys, const core::CtqoReport& ctqo,
                             const core::CorrelationReport& corr,
                             const obs::IncidentMonitor* om = nullptr);
std::string render_dashboard(const core::ChainSystem& sys, const core::CtqoReport& ctqo,
                             const core::CorrelationReport& corr,
                             const obs::IncidentMonitor* om = nullptr);
std::string render_dashboard(const graph::GraphSystem& sys, const core::CtqoReport& ctqo,
                             const core::CorrelationReport& corr,
                             const obs::IncidentMonitor* om = nullptr);

// Renders and writes `<dir>/<name>.dashboard.html`; returns the path.
std::string write_dashboard(const core::NTierSystem& sys, const core::CtqoReport& ctqo,
                            const core::CorrelationReport& corr, const std::string& dir,
                            const std::string& name,
                            const obs::IncidentMonitor* om = nullptr);
std::string write_dashboard(const core::ChainSystem& sys, const core::CtqoReport& ctqo,
                            const core::CorrelationReport& corr, const std::string& dir,
                            const std::string& name,
                            const obs::IncidentMonitor* om = nullptr);
std::string write_dashboard(const graph::GraphSystem& sys, const core::CtqoReport& ctqo,
                            const core::CorrelationReport& corr, const std::string& dir,
                            const std::string& name,
                            const obs::IncidentMonitor* om = nullptr);

}  // namespace ntier::report
