// Per-tier overload control: admission policies and queue management.
//
// The paper's §V-E asks what *server-side* designs tame CTQO; PR 1's
// tail-tolerance layer answered only the client side, and its naive-retry
// configuration showed how unshed overload turns a transient
// millibottleneck into a metastable retry storm. This module supplies the
// server side: an AdmissionController owned by a tier server, consulted
// at admission (offer) and at dequeue, with one policy active per tier:
//
//   kQueueCap     — hard bound on requests in system, shed the excess
//                   (the paper's baseline, made explicit instead of
//                   relying on the TCP backlog drop);
//   kTokenBucket  — rate-limit admissions to a provisioned throughput,
//                   absorbing bursts up to the bucket depth;
//   kCoDel        — sojourn-time shedding: once queue *wait* stays above
//                   a target for an interval, shed at dequeue on the
//                   inverse-sqrt control-law schedule; while dropping,
//                   entries that already outwaited a whole interval are
//                   shed off-schedule (CoDel adapted from packet queues
//                   to request queues, where senders time out);
//   kAdaptiveLifo — FIFO while healthy, newest-first under backlog (the
//                   Facebook adaptive-LIFO design): fresh requests, whose
//                   senders are still waiting, are served before stale
//                   ones whose senders have long timed out; entries older
//                   than a max sojourn are shed so dead work drains;
//   kBrownout     — serve a cheap degraded response instead of the full
//                   downstream chain while the queue is deep (the
//                   request is marked Request::degraded and every tier
//                   skips its kDownstream steps for it).
//
// Shed/retry contract (docs/OVERLOAD.md): a shed with ShedMode::kErrorReply
// is a *retryable* rejection — the shedding tier replies immediately with
// Request::overload_shed set, the upstream governed sender (PR 1
// HopGovernor, server or client side) concludes the attempt as a failure
// and routes it through retry_or_fail, spending retry budget. ShedMode::
// kTcpDrop instead refuses the packet like a full accept queue (sender
// retransmits per RTO) — the paper-baseline behaviour.
//
// Everything here is a deterministic state machine: no randomness, no
// scheduled events, so an all-kNone configuration is byte-identical to a
// build without this layer (DESIGN.md invariant 9).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "policy/tail_policy.h"
#include "sim/time.h"

namespace ntier::policy::overload {

enum class Kind : std::uint8_t {
  kNone,
  kQueueCap,
  kTokenBucket,
  kCoDel,
  kAdaptiveLifo,
  kBrownout,
};
const char* to_string(Kind k);

// The policy for one tier. Pure value; lives inside core configs.
struct OverloadPolicy {
  Kind kind = Kind::kNone;

  // How a shed leaves the building: an immediate canned error reply the
  // upstream policy layer treats as retryable (default), or a refused
  // packet the sender's TCP stack retransmits (paper baseline).
  enum class ShedMode : std::uint8_t { kErrorReply, kTcpDrop };
  ShedMode shed_mode = ShedMode::kErrorReply;

  // kQueueCap: shed when requests in system would exceed this.
  std::size_t queue_cap = 128;

  // kTokenBucket: sustained admissions/s and burst capacity.
  double bucket_rate = 1000.0;
  double bucket_burst = 100.0;

  // kCoDel: sojourn target and initial control interval.
  sim::Duration codel_target = sim::Duration::millis(20);
  sim::Duration codel_interval = sim::Duration::millis(100);

  // kAdaptiveLifo: backlog depth that flips dequeue order to
  // newest-first, and the sojourn beyond which a stale entry is shed at
  // dequeue instead of served (zero = never shed, serve arbitrarily
  // stale work).
  std::size_t lifo_threshold = 16;
  sim::Duration lifo_max_sojourn = sim::Duration::seconds(1);

  // kBrownout: degrade once requests in system reach degrade_above;
  // additionally shed above brownout_cap (0 = rely on the server's own
  // admission bound).
  std::size_t degrade_above = 32;
  std::size_t brownout_cap = 0;

  bool any() const { return kind != Kind::kNone; }
};

// Human-readable reason a policy is invalid; empty when fine. Used by
// core::validate().
std::string invalid_reason(const OverloadPolicy& p);

struct OverloadStats {
  std::uint64_t admitted = 0;        // offers that passed the controller
  std::uint64_t shed_admission = 0;  // rejected at offer time
  std::uint64_t shed_dequeue = 0;    // shed at dequeue (CoDel / stale LIFO)
  std::uint64_t degraded = 0;        // marked for the brownout response
  std::uint64_t lifo_picks = 0;      // dequeues taken newest-first

  std::uint64_t total_shed() const { return shed_admission + shed_dequeue; }
};

// Per-tier runtime for one OverloadPolicy. Owned by the server; consulted
// inline on the admission and dequeue paths (no events, no rng).
class AdmissionController {
 public:
  explicit AdmissionController(OverloadPolicy p);

  enum class Decision : std::uint8_t { kAdmit, kShed, kDegrade };

  const OverloadPolicy& policy() const { return p_; }
  OverloadStats& stats() { return stats_; }
  const OverloadStats& stats() const { return stats_; }

  // Admission-time decision for one offered job, given the requests
  // currently in the system. Counts admitted/shed/degraded.
  Decision on_offer(sim::Time now, std::size_t in_system);

  // Queue-management hooks, called by the server's dequeue sites
  // (usually through pop_next below).
  //
  // True when the backlog is deep enough that adaptive-LIFO serves
  // newest-first.
  bool use_lifo(std::size_t backlog_depth) const;
  // CoDel control law / stale-LIFO age gate: true = shed this entry
  // instead of serving it. Counts shed_dequeue.
  bool shed_on_dequeue(sim::Time now, sim::Duration sojourn);
  // Feed the sojourn window for an entry that was actually served.
  void record_sojourn(sim::Duration sojourn) { sojourn_.record(sojourn); }
  // Sojourn quantile over the recent window (telemetry probe; zero until
  // the first dequeue).
  sim::Duration sojourn_quantile(double q) const { return sojourn_.quantile(q); }

 private:
  OverloadPolicy p_;
  OverloadStats stats_;
  LatencyEstimator sojourn_;

  // Token-bucket state (refilled lazily at each decision).
  double tokens_;
  sim::Time bucket_at_{};

  // CoDel state (Nichols & Jacobson's control law, adapted: decisions
  // happen at request dequeue instead of packet dequeue).
  sim::Time first_above_ = sim::Time::max();
  sim::Time drop_next_{};
  bool dropping_ = false;
  std::uint32_t drop_count_ = 0;

  sim::Duration codel_gap() const;  // interval / sqrt(drop_count_)
};

// Applies the controller's queue discipline to one dequeue from a
// deque-like backlog: adaptive-LIFO picks the back, CoDel/stale-LIFO
// sheds entries via `shed(entry)` until one survives. `enq(e)` returns
// the entry's enqueue instant. Null controller = plain FIFO. Returns
// nullopt when the queue ran dry (possibly after shedding everything).
template <class Queue, class EnqFn, class ShedFn>
std::optional<typename Queue::value_type> pop_next(AdmissionController* ctl,
                                                   Queue& q, sim::Time now,
                                                   EnqFn enq, ShedFn shed) {
  while (!q.empty()) {
    typename Queue::value_type e;
    if (ctl != nullptr && ctl->use_lifo(q.size())) {
      ++ctl->stats().lifo_picks;
      e = std::move(q.back());
      q.pop_back();
    } else {
      e = std::move(q.front());
      q.pop_front();
    }
    const sim::Duration sojourn = now - enq(e);
    if (ctl != nullptr && ctl->shed_on_dequeue(now, sojourn)) {
      shed(std::move(e));
      continue;
    }
    if (ctl != nullptr) ctl->record_sojourn(sojourn);
    return e;
  }
  return std::nullopt;
}

}  // namespace ntier::policy::overload
