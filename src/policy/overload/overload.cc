#include "policy/overload/overload.h"

#include <algorithm>
#include <cmath>

namespace ntier::policy::overload {

const char* to_string(Kind k) {
  switch (k) {
    case Kind::kNone: return "none";
    case Kind::kQueueCap: return "queue-cap";
    case Kind::kTokenBucket: return "token-bucket";
    case Kind::kCoDel: return "codel";
    case Kind::kAdaptiveLifo: return "adaptive-lifo";
    case Kind::kBrownout: return "brownout";
  }
  return "?";
}

std::string invalid_reason(const OverloadPolicy& p) {
  switch (p.kind) {
    case Kind::kNone:
      return {};
    case Kind::kQueueCap:
      if (p.queue_cap == 0)
        return "overload: queue_cap of zero would shed every request";
      return {};
    case Kind::kTokenBucket:
      if (p.bucket_rate <= 0.0)
        return "overload: token bucket needs a positive refill rate";
      if (p.bucket_burst < 1.0)
        return "overload: token bucket burst below one token can never admit";
      return {};
    case Kind::kCoDel:
      if (p.codel_target <= sim::Duration::zero())
        return "overload: CoDel sojourn target must be positive";
      if (p.codel_interval <= sim::Duration::zero())
        return "overload: CoDel control interval must be positive";
      return {};
    case Kind::kAdaptiveLifo:
      if (p.lifo_threshold == 0)
        return "overload: adaptive-LIFO threshold of zero is plain LIFO; "
               "set at least 1 so an empty queue stays FIFO";
      if (p.lifo_max_sojourn < sim::Duration::zero())
        return "overload: adaptive-LIFO max sojourn cannot be negative";
      return {};
    case Kind::kBrownout:
      if (p.degrade_above == 0)
        return "overload: brownout degrade_above of zero degrades every request";
      if (p.brownout_cap != 0 && p.brownout_cap < p.degrade_above)
        return "overload: brownout_cap below degrade_above sheds before degrading";
      return {};
  }
  return {};
}

AdmissionController::AdmissionController(OverloadPolicy p)
    : p_(p), tokens_(p.bucket_burst) {}

AdmissionController::Decision AdmissionController::on_offer(sim::Time now,
                                                            std::size_t in_system) {
  switch (p_.kind) {
    case Kind::kNone:
      break;
    case Kind::kQueueCap:
      if (in_system >= p_.queue_cap) {
        ++stats_.shed_admission;
        return Decision::kShed;
      }
      break;
    case Kind::kTokenBucket: {
      // Lazy refill: deterministic function of elapsed simulated time.
      const double dt = (now - bucket_at_).to_seconds();
      tokens_ = std::min(p_.bucket_burst, tokens_ + p_.bucket_rate * dt);
      bucket_at_ = now;
      if (tokens_ < 1.0) {
        ++stats_.shed_admission;
        return Decision::kShed;
      }
      tokens_ -= 1.0;
      break;
    }
    case Kind::kCoDel:
    case Kind::kAdaptiveLifo:
      // Queue-management policies act at dequeue, not admission.
      break;
    case Kind::kBrownout:
      if (p_.brownout_cap != 0 && in_system >= p_.brownout_cap) {
        ++stats_.shed_admission;
        return Decision::kShed;
      }
      if (in_system >= p_.degrade_above) {
        ++stats_.admitted;
        ++stats_.degraded;
        return Decision::kDegrade;
      }
      break;
  }
  ++stats_.admitted;
  return Decision::kAdmit;
}

bool AdmissionController::use_lifo(std::size_t backlog_depth) const {
  return p_.kind == Kind::kAdaptiveLifo && backlog_depth >= p_.lifo_threshold;
}

sim::Duration AdmissionController::codel_gap() const {
  return p_.codel_interval *
         (1.0 / std::sqrt(static_cast<double>(std::max<std::uint32_t>(drop_count_, 1))));
}

bool AdmissionController::shed_on_dequeue(sim::Time now, sim::Duration sojourn) {
  if (p_.kind == Kind::kAdaptiveLifo) {
    // LIFO alone would let stale work sit forever; entries whose sender
    // has certainly given up are shed so the queue holds only live work.
    if (p_.lifo_max_sojourn > sim::Duration::zero() &&
        sojourn >= p_.lifo_max_sojourn) {
      ++stats_.shed_dequeue;
      return true;
    }
    return false;
  }
  if (p_.kind != Kind::kCoDel) return false;

  if (sojourn < p_.codel_target) {
    // Below target: leave the dropping state, forget the first-above mark.
    first_above_ = sim::Time::max();
    dropping_ = false;
    return false;
  }
  if (first_above_ == sim::Time::max()) {
    // First sojourn above target: arm the interval timer, serve this one.
    first_above_ = now + p_.codel_interval;
    return false;
  }
  if (!dropping_) {
    if (now < first_above_) return false;
    // Sojourn stayed above target for a whole interval: enter dropping
    // state. Resume from the previous drop rate if we left it recently
    // (within 8 intervals), else restart gently at one drop per interval.
    dropping_ = true;
    drop_count_ = (drop_count_ > 2 && now - drop_next_ < p_.codel_interval * 8)
                      ? drop_count_ - 2
                      : 1;
    drop_next_ = now + codel_gap();
    ++stats_.shed_dequeue;
    return true;
  }
  // Overload regime (the request-queue adaptation): while dropping, an
  // entry that has already outwaited a whole control interval is dead
  // weight — its sender's timeout is closer than its service would be —
  // so it is shed immediately, off-schedule. This bounds the standing
  // sojourn near the interval under persistent overload, where the
  // inverse-sqrt schedule alone could not keep up with arrivals.
  if (sojourn >= p_.codel_interval) {
    ++stats_.shed_dequeue;
    return true;
  }
  if (now >= drop_next_) {
    // Still above target at the scheduled instant: shed and tighten the
    // schedule (interval / sqrt(count) — the inverse-sqrt control law).
    ++drop_count_;
    drop_next_ = drop_next_ + codel_gap();
    ++stats_.shed_dequeue;
    return true;
  }
  return false;
}

}  // namespace ntier::policy::overload
