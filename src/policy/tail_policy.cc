#include "policy/tail_policy.h"

#include <cmath>

namespace ntier::policy {

sim::Duration RetryPolicy::backoff(int attempt, sim::Duration prev,
                                   sim::Rng& rng) const {
  if (attempt < 1) attempt = 1;
  sim::Duration d;
  if (decorrelated_jitter) {
    // AWS-style decorrelated jitter: uniform in [base, 3 * prev], where
    // prev starts at base. Spreads retry waves instead of synchronizing
    // them at base * 2^k.
    const double lo = base_backoff.to_seconds();
    const double hi =
        std::max(lo, 3.0 * (prev > sim::Duration::zero() ? prev : base_backoff).to_seconds());
    d = sim::Duration::from_seconds(rng.uniform(lo, hi));
  } else {
    d = base_backoff * std::pow(2.0, static_cast<double>(attempt - 1));
  }
  return std::min(d, max_backoff);
}

LatencyEstimator::LatencyEstimator(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void LatencyEstimator::record(sim::Duration d) {
  if (ring_.size() < capacity_) {
    ring_.push_back(d);
  } else {
    ring_[next_] = d;
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

sim::Duration LatencyEstimator::quantile(double q) const {
  if (ring_.empty()) return sim::Duration::zero();
  std::vector<sim::Duration> sorted(ring_);
  std::sort(sorted.begin(), sorted.end());
  q = std::min(std::max(q, 0.0), 1.0);
  const std::size_t idx = std::min(
      sorted.size() - 1, static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
  return sorted[idx];
}

bool CircuitBreaker::allow() {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (sim_.now() - opened_at_ >= p_.open_for) {
        state_ = State::kHalfOpen;
        probes_in_flight_ = 0;
      } else {
        ++rejects_;
        return false;
      }
      [[fallthrough]];
    case State::kHalfOpen:
      if (probes_in_flight_ < p_.half_open_probes) {
        ++probes_in_flight_;
        return true;
      }
      ++rejects_;
      return false;
  }
  return true;
}

void CircuitBreaker::record_success() {
  if (state_ == State::kHalfOpen) {
    // A successful probe closes the circuit.
    state_ = State::kClosed;
    reset_window();
    return;
  }
  ++window_successes_;
  evaluate();
}

void CircuitBreaker::record_failure() {
  if (state_ == State::kHalfOpen) {
    // A failed probe re-opens immediately.
    state_ = State::kOpen;
    opened_at_ = sim_.now();
    ++opens_;
    return;
  }
  if (state_ == State::kOpen) return;  // stragglers from before the trip
  ++window_failures_;
  evaluate();
}

void CircuitBreaker::evaluate() {
  const std::uint32_t n = window_successes_ + window_failures_;
  if (n >= p_.min_samples &&
      static_cast<double>(window_failures_) / n >= p_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ = sim_.now();
    ++opens_;
    reset_window();
    return;
  }
  // Age out old outcomes so a brief bad patch long ago cannot trip the
  // breaker much later.
  if (sim_.now() - window_start_ >= p_.window) reset_window();
}

void CircuitBreaker::reset_window() {
  window_successes_ = 0;
  window_failures_ = 0;
  window_start_ = sim_.now();
}

HopGovernor::HopGovernor(sim::Simulation& sim, sim::Rng rng, TailPolicy p)
    : sim_(sim),
      rng_(rng),
      p_(p),
      budget_(p.retry.budget_ratio, p.retry.budget_capacity) {
  if (p_.breaker.enabled) breaker_.emplace(sim_, p_.breaker);
}

bool HopGovernor::allow_send() {
  if (!breaker_) return true;
  if (breaker_->allow()) return true;
  ++stats_.breaker_rejects;
  return false;
}

void HopGovernor::on_outcome(bool success) {
  if (!breaker_) return;
  const std::uint64_t opens_before = breaker_->opens();
  if (success) {
    breaker_->record_success();
  } else {
    breaker_->record_failure();
  }
  stats_.breaker_opens += breaker_->opens() - opens_before;
}

void HopGovernor::record_latency(sim::Duration d) { estimator_.record(d); }

sim::Duration HopGovernor::hedge_delay() const {
  const HedgePolicy& h = p_.hedge;
  if (estimator_.count() < h.warmup_samples) return h.initial_delay;
  return std::max(h.min_delay, estimator_.quantile(h.percentile));
}

bool HopGovernor::try_retry_token() {
  if (budget_.try_spend()) return true;
  ++stats_.retries_suppressed;
  return false;
}

sim::Duration HopGovernor::next_backoff(int attempt) {
  last_backoff_ = p_.retry.backoff(attempt, last_backoff_, rng_);
  return last_backoff_;
}

std::string invalid_reason(const TailPolicy& p) {
  if (p.deadline < sim::Duration::zero()) return "deadline is negative";
  if (p.attempt_timeout < sim::Duration::zero()) return "attempt_timeout is negative";
  if (p.retry.max_attempts < 1) return "retry.max_attempts < 1 (need at least the first attempt)";
  if (p.retry.enabled() && p.retry.base_backoff < sim::Duration::zero())
    return "retry.base_backoff is negative";
  if (p.retry.enabled() && p.retry.max_backoff < p.retry.base_backoff)
    return "retry.max_backoff < retry.base_backoff";
  if (p.retry.budget_ratio < 0.0) return "retry.budget_ratio is negative";
  if (p.retry.budgeted() && p.retry.budget_capacity < 1.0)
    return "retry.budget_capacity < 1 can never afford a retry";
  if (p.hedge.enabled) {
    if (p.hedge.initial_delay <= sim::Duration::zero())
      return "hedge delay of zero would duplicate every request immediately";
    if (p.hedge.percentile <= 0.0 || p.hedge.percentile >= 1.0)
      return "hedge.percentile must be in (0,1)";
    if (p.hedge.max_hedges < 1) return "hedge enabled with max_hedges < 1";
  }
  if (p.breaker.enabled) {
    if (p.breaker.failure_threshold <= 0.0 || p.breaker.failure_threshold > 1.0)
      return "breaker.failure_threshold must be in (0,1]";
    if (p.breaker.min_samples == 0) return "breaker.min_samples must be >= 1";
    if (p.breaker.open_for <= sim::Duration::zero()) return "breaker.open_for must be positive";
    if (p.breaker.half_open_probes < 1) return "breaker.half_open_probes must be >= 1";
  }
  return "";
}

}  // namespace ntier::policy
