// Tail-tolerance policies: deadlines, retries, hedging, circuit breaking.
//
// The paper's §V-E only evaluates two naive CTQO countermeasures (bigger
// pools/buffers, shedding). This module supplies the modern tail-tolerance
// toolkit — per-request deadlines with cross-tier propagation, retry
// policies with exponential backoff + decorrelated jitter + a retry
// budget, hedged requests after a percentile delay, and a per-downstream
// circuit breaker — so experiments can measure when each mechanism tames
// the millibottleneck tail and when it *amplifies* it (retry storms near
// saturation; cf. Sriraman et al. and Poloczek & Ciucu in PAPERS.md).
//
// Everything here is a pure value or a deterministic state machine; all
// randomness (jitter) comes from an injected sim::Rng so runs replay
// bit-identically.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/random.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace ntier::policy {

// --- retries ---------------------------------------------------------------

struct RetryPolicy {
  // Total delivery attempts for one logical request (1 = never retry).
  int max_attempts = 1;
  sim::Duration base_backoff = sim::Duration::millis(50);
  sim::Duration max_backoff = sim::Duration::seconds(5);
  // Decorrelated jitter (uniform in [base, 3*prev]) instead of plain
  // exponential doubling; avoids synchronized retry waves.
  bool decorrelated_jitter = true;
  // Retry budget: each first attempt earns `budget_ratio` tokens, each
  // retry spends one; an empty bucket suppresses the retry. 0 disables
  // budgeting (unlimited retries up to max_attempts — the naive mode).
  double budget_ratio = 0.0;
  double budget_capacity = 50.0;

  bool enabled() const { return max_attempts > 1; }
  bool budgeted() const { return budget_ratio > 0.0; }
  // Backoff before retry number `attempt` (1-based first retry); `prev`
  // is the previous backoff (decorrelated jitter feeds on it).
  sim::Duration backoff(int attempt, sim::Duration prev, sim::Rng& rng) const;
};

// Token bucket shared by every logical request on one hop.
class RetryBudget {
 public:
  RetryBudget(double ratio, double capacity)
      : ratio_(ratio), capacity_(capacity), tokens_(capacity) {}

  void on_request() {
    if (ratio_ <= 0.0) return;
    tokens_ = std::min(capacity_, tokens_ + ratio_);
  }
  // Returns false when the budget is exhausted (retry suppressed).
  bool try_spend() {
    if (ratio_ <= 0.0) return true;  // unbudgeted
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }
  double tokens() const { return tokens_; }

 private:
  double ratio_;
  double capacity_;
  double tokens_;
};

// --- hedging ---------------------------------------------------------------

struct HedgePolicy {
  bool enabled = false;
  // Hedge once the attempt has outlived this percentile of recently
  // observed hop latencies ("request reissue after the 95th percentile").
  double percentile = 0.95;
  // Delay used until `warmup_samples` latencies have been observed.
  sim::Duration initial_delay = sim::Duration::millis(500);
  sim::Duration min_delay = sim::Duration::millis(10);
  std::size_t warmup_samples = 64;
  int max_hedges = 1;  // extra copies per logical request
};

// Sliding-window quantile estimator over the last `capacity` latencies.
// Deterministic: a plain ring buffer, quantile by sorting a copy.
class LatencyEstimator {
 public:
  explicit LatencyEstimator(std::size_t capacity = 256);
  void record(sim::Duration d);
  std::size_t count() const { return total_; }
  // Quantile q in [0,1] over the window; zero when empty.
  sim::Duration quantile(double q) const;

 private:
  std::vector<sim::Duration> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::size_t total_ = 0;
};

// --- circuit breaking ------------------------------------------------------

struct BreakerPolicy {
  bool enabled = false;
  // Open when the failure rate over an evaluation window reaches this.
  double failure_threshold = 0.5;
  // Outcomes needed before the window is evaluated.
  std::uint32_t min_samples = 20;
  sim::Duration window = sim::Duration::seconds(1);
  // How long an open breaker rejects before probing (half-open).
  sim::Duration open_for = sim::Duration::seconds(2);
  int half_open_probes = 1;
};

// Closed -> Open (failure rate) -> Half-open (after open_for) -> Closed
// (probe success) or back to Open (probe failure).
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker(sim::Simulation& sim, BreakerPolicy p) : sim_(sim), p_(p) {}

  // Gate consulted before each send; may transition kOpen -> kHalfOpen.
  // A true return in half-open state claims one probe slot.
  bool allow();
  void record_success();
  void record_failure();

  State state() const { return state_; }
  std::uint64_t opens() const { return opens_; }
  std::uint64_t rejects() const { return rejects_; }

 private:
  void evaluate();
  void reset_window();

  sim::Simulation& sim_;
  BreakerPolicy p_;
  State state_ = State::kClosed;
  std::uint32_t window_successes_ = 0;
  std::uint32_t window_failures_ = 0;
  sim::Time window_start_{};
  sim::Time opened_at_{};
  int probes_in_flight_ = 0;
  std::uint64_t opens_ = 0;
  std::uint64_t rejects_ = 0;
};

// --- the aggregate policy for one hop --------------------------------------

struct TailPolicy {
  // End-to-end budget stamped onto the request when it enters the system
  // (zero = no deadline). Propagates to every downstream tier via
  // Request::deadline; an over-budget request is cancelled, not queued.
  sim::Duration deadline = sim::Duration::zero();
  // Per-attempt timeout: the sender gives up on an attempt (and consults
  // the retry policy) after this long without a reply. Zero = react only
  // to explicit failure signals (connection failure, downstream error).
  sim::Duration attempt_timeout = sim::Duration::zero();
  RetryPolicy retry{};
  HedgePolicy hedge{};
  BreakerPolicy breaker{};

  bool any() const {
    return deadline > sim::Duration::zero() || attempt_timeout > sim::Duration::zero() ||
           retry.enabled() || hedge.enabled || breaker.enabled;
  }
};

struct PolicyStats {
  std::uint64_t retries = 0;             // re-sent attempts
  std::uint64_t retries_suppressed = 0;  // retry wanted but budget empty
  std::uint64_t hedges = 0;              // duplicate copies sent
  std::uint64_t hedge_wins = 0;          // hedged copy answered first
  std::uint64_t breaker_rejects = 0;     // fast-failed while open
  std::uint64_t breaker_opens = 0;
  std::uint64_t deadline_cancels = 0;    // cancelled before/instead of sending
};

// Per-hop runtime for one TailPolicy: breaker + budget + latency window.
// Owned by the sender side of a hop (a tier server or the client pool).
class HopGovernor {
 public:
  HopGovernor(sim::Simulation& sim, sim::Rng rng, TailPolicy p);

  const TailPolicy& policy() const { return p_; }
  PolicyStats& stats() { return stats_; }
  const PolicyStats& stats() const { return stats_; }
  CircuitBreaker* breaker() { return breaker_ ? &*breaker_ : nullptr; }
  const CircuitBreaker* breaker() const { return breaker_ ? &*breaker_ : nullptr; }

  // Breaker gate; counts rejects. True when the send may proceed.
  bool allow_send();
  // Feeds breaker state; call once per concluded attempt.
  void on_outcome(bool success);
  // Record an observed reply latency (feeds the hedge estimator).
  void record_latency(sim::Duration d);
  // Current hedge trigger delay (percentile of observed latencies once
  // warmed up, initial_delay before that).
  sim::Duration hedge_delay() const;
  // Earn budget for a new logical request.
  void on_request() { budget_.on_request(); }
  // Spend a retry token; counts suppressions.
  bool try_retry_token();
  // Backoff before retry `attempt`, remembering it for decorrelation.
  sim::Duration next_backoff(int attempt);

 private:
  sim::Simulation& sim_;
  sim::Rng rng_;
  TailPolicy p_;
  PolicyStats stats_;
  RetryBudget budget_;
  LatencyEstimator estimator_;
  std::optional<CircuitBreaker> breaker_;
  sim::Duration last_backoff_{};
};

// Human-readable reason a policy is invalid; empty when fine. Used by
// core::validate() to reject nonsensical configs with context.
std::string invalid_reason(const TailPolicy& p);

}  // namespace ntier::policy
