#include "workload/burst_model.h"

namespace ntier::workload {

BurstClock::BurstClock(sim::Simulation& sim, sim::Rng& rng, Config cfg)
    : sim_(sim), rng_(rng), cfg_(cfg) {
  if (cfg_.burst_index > 1.0) schedule_flip();
}

void BurstClock::schedule_flip() {
  const sim::Duration dwell =
      rng_.exp_duration(bursting_ ? cfg_.burst_dwell : cfg_.normal_dwell);
  sim_.after(
      dwell,
      [this] {
        bursting_ = !bursting_;
        if (bursting_) burst_starts_.push_back(sim_.now());
        schedule_flip();
      },
      sim::SchedClass::kTimer);
}

sim::Duration draw_think(sim::Rng& rng, sim::Duration mean, const BurstClock* clock) {
  const double scale = clock ? clock->think_scale() : 1.0;
  return rng.exp_duration(mean * scale);
}

}  // namespace ntier::workload
