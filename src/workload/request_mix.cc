#include "workload/request_mix.h"

namespace ntier::workload {

namespace {
double total_weight(const server::AppProfile& p) {
  double w = 0.0;
  for (const auto& c : p.classes) w += c.weight;
  return w;
}
}  // namespace

sim::Duration mean_web_cpu(const server::AppProfile& p) {
  double acc = 0.0;
  for (const auto& c : p.classes) acc += c.weight * (c.web_pre + c.web_post).to_seconds();
  return sim::Duration::from_seconds(acc / total_weight(p));
}

sim::Duration mean_db_cpu(const server::AppProfile& p) {
  double acc = 0.0;
  for (const auto& c : p.classes)
    acc += c.weight * c.db_queries * c.db_cpu.to_seconds();
  return sim::Duration::from_seconds(acc / total_weight(p));
}

OperatingPoint predict(const server::AppProfile& profile, std::size_t sessions,
                       sim::Duration mean_think) {
  // Base response time: sum of mean demands (no queueing) plus a couple
  // of link round trips; small against a 7 s think time.
  const double base_r = mean_web_cpu(profile).to_seconds() +
                        profile.mean_app_cpu().to_seconds() +
                        mean_db_cpu(profile).to_seconds() + 0.002;
  OperatingPoint op;
  op.throughput_rps =
      static_cast<double>(sessions) / (mean_think.to_seconds() + base_r);
  op.web_util = op.throughput_rps * mean_web_cpu(profile).to_seconds();
  op.app_util = op.throughput_rps * profile.mean_app_cpu().to_seconds();
  op.db_util = op.throughput_rps * mean_db_cpu(profile).to_seconds();
  return op;
}

}  // namespace ntier::workload
