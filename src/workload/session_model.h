// Markov session model: RUBBoS-style page navigation.
//
// Real RUBBoS clients do not draw each request independently — they walk
// a transition matrix between pages (browse the front page, open a
// story, go back, ...). The matrix's stationary distribution replaces
// the independent class weights; per-session state adds short-range
// correlation to the request mix (bursts of ViewStory from the same
// session), one more source of workload burstiness.
#pragma once

#include <cstddef>
#include <vector>

#include "server/app_profile.h"
#include "sim/random.h"

namespace ntier::workload {

class SessionModel {
 public:
  // `transition[i][j]` = P(next class = j | current class = i); each row
  // must sum to ~1 and the matrix must be square over the profile size.
  explicit SessionModel(std::vector<std::vector<double>> transition);

  std::size_t state_count() const { return rows_.size(); }
  std::size_t next(std::size_t current, sim::Rng& rng) const;

  // Stationary distribution via power iteration.
  std::vector<double> stationary(int iterations = 200) const;

  // Canonical browse matrix over the rubbos() profile classes
  // {Static, StoriesOfTheDay, ViewStory}.
  static SessionModel rubbos_browse();

 private:
  std::vector<std::vector<double>> rows_;
};

}  // namespace ntier::workload
