#include "workload/session_model.h"

#include <cassert>
#include <cmath>

namespace ntier::workload {

SessionModel::SessionModel(std::vector<std::vector<double>> transition)
    : rows_(std::move(transition)) {
  assert(!rows_.empty());
  for (const auto& row : rows_) {
    assert(row.size() == rows_.size() && "transition matrix must be square");
    double sum = 0.0;
    for (double p : row) {
      assert(p >= 0.0);
      sum += p;
    }
    assert(std::abs(sum - 1.0) < 1e-6 && "rows must be stochastic");
    (void)sum;
  }
}

std::size_t SessionModel::next(std::size_t current, sim::Rng& rng) const {
  assert(current < rows_.size());
  const auto& row = rows_[current];
  double u = rng.uniform();
  for (std::size_t j = 0; j < row.size(); ++j) {
    u -= row[j];
    if (u <= 0.0) return j;
  }
  return row.size() - 1;
}

std::vector<double> SessionModel::stationary(int iterations) const {
  const std::size_t n = rows_.size();
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> nxt(n, 0.0);
  for (int it = 0; it < iterations; ++it) {
    for (auto& v : nxt) v = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) nxt[j] += pi[i] * rows_[i][j];
    pi.swap(nxt);
  }
  return pi;
}

SessionModel SessionModel::rubbos_browse() {
  // States: 0=Static, 1=StoriesOfTheDay, 2=ViewStory. A browse session
  // alternates front-page loads with story views; static assets follow
  // dynamic pages. Stationary distribution ~ (0.15, 0.55, 0.30), the
  // rubbos() weights.
  // Stationary distribution: (0.151, 0.549, 0.300) — the rubbos()
  // weights to within half a percent.
  return SessionModel({
      {0.10, 0.60, 0.30},  // after a static hit
      {0.16, 0.54, 0.30},  // after the front page
      {0.16, 0.54, 0.30},  // after a story
  });
}

}  // namespace ntier::workload
