#include "workload/client.h"

namespace ntier::workload {

struct ClientPool::Flight {
  bool done = false;  // the logical request has been settled
  int attempts = 1;   // primary attempts issued (1 = the first)
};

ClientPool::ClientPool(sim::Simulation& sim, sim::Rng rng,
                       const server::AppProfile* profile, server::Server* front,
                       ClientConfig cfg, BurstClock* burst)
    : sim_(sim),
      rng_(rng),
      profile_(profile),
      front_(front),
      cfg_(cfg),
      burst_(burst),
      transport_(sim, cfg.rto, cfg.link) {
  if (cfg_.session_model != nullptr) {
    session_class_.resize(cfg_.sessions);
    for (auto& s : session_class_) s = profile_->pick(rng_);
  }
  if (cfg_.policy.any()) {
    // Dedicated jitter stream so policy randomness never perturbs the
    // think/class draws of a policy-free run with the same seed.
    governor_ = std::make_unique<policy::HopGovernor>(sim_, rng_.fork(0x7A11), cfg_.policy);
  }
}

void ClientPool::start() {
  for (std::size_t s = 0; s < cfg_.sessions; ++s) {
    // Exponential initial phase = the equilibrium residual of the
    // (exponential) think cycle, so the arrival process is stationary
    // from t=0 with no ramp-in overshoot.
    const auto phase = rng_.exp_duration(cfg_.mean_think);
    sim_.after(phase, [this, s] { issue(s); });
  }
}

void ClientPool::session_think(std::size_t session) {
  const auto think = draw_think(rng_, cfg_.mean_think, burst_);
  sim_.after(think, [this, session] { issue(session); });
}

std::size_t ClientPool::pick_class(std::size_t session) {
  if (cfg_.session_model == nullptr) return profile_->pick(rng_);
  std::size_t& state = session_class_[session];
  state = cfg_.session_model->next(state, rng_);
  return state;
}

// Finalizes one request exactly once (normal reply, timeout, or
// connection failure) and moves the session on.
void ClientPool::settle(std::size_t session, const server::RequestPtr& r) {
  r->completed = sim_.now();
  r->stamp("client:recv", sim_.now());
  if (r->traced()) {
    server::trace_close(r, server::trace_root(r), sim_.now());
    cfg_.tracer->finish(r->spans, r->latency());
  }
  ++completed_;
  if (r->failed) ++failed_;
  notify(r);
  session_think(session);
}

// Trace observer for the client->web TCP stack; null for untraced
// requests so the transport skips the call entirely.
net::RetransmitFn ClientPool::retransmit_observer(const server::RequestPtr& req) {
  if (!req->traced()) return {};
  const std::string site = "client->" + front_->name();
  const std::uint64_t root = server::trace_root(req);
  return [req, site, root](sim::Time at, sim::Duration rto, int attempt) {
    req->spans->add(trace::SpanKind::kRtoGap, site, root, at, at + rto, attempt);
  };
}

void ClientPool::issue(std::size_t session) {
  auto req = std::make_shared<server::Request>();
  req->id = next_id_++;
  req->class_index = pick_class(session);
  req->issued = sim_.now();
  req->tracing = cfg_.trace_requests;
  req->stamp("client:send", sim_.now());
  ++issued_;
  if (cfg_.tracer) {
    req->spans = cfg_.tracer->begin(req->id);
    server::trace_open(req, trace::SpanKind::kRequest, "client", trace::kNoSpan,
                       sim_.now());
  }

  if (governor_) {
    issue_governed(session, req);
    return;
  }

  // First of {reply, timeout, connection-failure} wins.
  auto settled = std::make_shared<bool>(false);

  server::Job job;
  job.req = req;
  job.parent_span = server::trace_root(req);
  job.reply = [this, session, settled](const server::RequestPtr& r) {
    // Response travels the return link before the client sees it.
    sim_.after(transport_.link().sample(), [this, session, settled, r] {
      if (*settled) return;  // stale response after a timeout
      *settled = true;
      settle(session, r);
    });
  };

  if (cfg_.timeout > sim::Duration::zero()) {
    sim_.after(cfg_.timeout, [this, session, settled, req] {
      if (*settled) return;
      *settled = true;
      ++timeouts_;
      req->failed = true;
      req->stamp("client:timeout", sim_.now());
      settle(session, req);
    });
  }

  transport_.send(
      [front = front_, job]() { return front->offer(job); },
      [this, req, session, settled](const net::TxOutcome& out) {
        req->total_drops += out.drops;
        if (!out.delivered) {
          // Connection never established: the user request fails.
          if (*settled) return;
          *settled = true;
          req->failed = true;
          settle(session, req);
        }
      },
      retransmit_observer(req));
}

void ClientPool::issue_governed(std::size_t session, const server::RequestPtr& req) {
  const policy::TailPolicy& pol = governor_->policy();
  governor_->on_request();
  if (pol.deadline > sim::Duration::zero()) req->deadline = sim_.now() + pol.deadline;

  auto fl = std::make_shared<Flight>();

  if (!governor_->allow_send()) {
    // Breaker open: the request fails instantly, no packet is sent.
    req->failed = true;
    req->stamp("client:breaker", sim_.now());
    server::trace_instant(req, trace::SpanKind::kBreakerReject, "client",
                          server::trace_root(req), sim_.now());
    fl->done = true;
    settle(session, req);
    return;
  }

  if (cfg_.timeout > sim::Duration::zero()) {
    sim_.after(cfg_.timeout, [this, session, fl, req] {
      if (fl->done) return;
      fl->done = true;
      ++timeouts_;
      req->failed = true;
      req->stamp("client:timeout", sim_.now());
      settle(session, req);
    });
  }
  if (req->has_deadline()) {
    // The deadline bounds the client's patience too: at expiry the
    // request is abandoned (every tier will also refuse to queue it).
    sim_.after(req->deadline - sim_.now(), [this, session, fl, req] {
      if (fl->done) return;
      fl->done = true;
      ++governor_->stats().deadline_cancels;
      req->failed = true;
      req->deadline_expired = true;
      req->stamp("client:deadline", sim_.now());
      server::trace_instant(req, trace::SpanKind::kDeadlineCancel, "client",
                            server::trace_root(req), sim_.now());
      settle(session, req);
    });
  }

  send_attempt(session, req, fl, /*is_hedge=*/false);

  if (pol.hedge.enabled) {
    const sim::Duration d = governor_->hedge_delay();
    for (int i = 1; i <= pol.hedge.max_hedges; ++i) {
      sim_.after(d * i, [this, session, fl, req, i] {
        if (fl->done) return;
        if (req->has_deadline() && sim_.now() >= req->deadline) return;
        ++req->hedge_copies;
        ++governor_->stats().hedges;
        server::trace_instant(req, trace::SpanKind::kHedge, "client",
                              server::trace_root(req), sim_.now(), /*detail=*/i);
        send_attempt(session, req, fl, /*is_hedge=*/true);
      });
    }
  }
}

void ClientPool::send_attempt(std::size_t session, const server::RequestPtr& req,
                              const std::shared_ptr<Flight>& fl, bool is_hedge) {
  // Per-attempt conclusion guard for breaker/latency accounting.
  auto concluded = std::make_shared<bool>(false);
  const sim::Time sent_at = sim_.now();

  server::Job job;
  job.req = req;
  job.parent_span = server::trace_root(req);
  job.reply = [this, session, req, fl, concluded, sent_at,
               is_hedge](const server::RequestPtr& r) {
    sim_.after(transport_.link().sample(),
               [this, session, r, fl, concluded, sent_at, is_hedge] {
                 if (!*concluded) {
                   *concluded = true;
                   governor_->on_outcome(!r->failed);
                   if (!r->failed) governor_->record_latency(sim_.now() - sent_at);
                 }
                 if (fl->done) return;  // stale/duplicate response
                 fl->done = true;
                 if (is_hedge) ++governor_->stats().hedge_wins;
                 settle(session, r);
               });
  };

  transport_.send(
      [front = front_, job]() { return front->offer(job); },
      [this, req, session, fl, concluded, is_hedge](const net::TxOutcome& out) {
        req->total_drops += out.drops;
        if (out.delivered) return;
        if (*concluded) return;
        *concluded = true;
        governor_->on_outcome(false);
        if (!is_hedge) retry_or_fail(session, req, fl);
      },
      retransmit_observer(req));

  const sim::Duration at = governor_->policy().attempt_timeout;
  if (!is_hedge && at > sim::Duration::zero()) {
    sim_.after(at, [this, session, req, fl, concluded] {
      if (fl->done || *concluded) return;
      *concluded = true;
      governor_->on_outcome(false);
      retry_or_fail(session, req, fl);
    });
  }
}

void ClientPool::retry_or_fail(std::size_t session, const server::RequestPtr& req,
                               const std::shared_ptr<Flight>& fl) {
  if (fl->done) return;
  const policy::RetryPolicy& rp = governor_->policy().retry;
  if (!rp.enabled() || fl->attempts >= rp.max_attempts) {
    settle_failed(session, req, fl);
    return;
  }
  if (req->has_deadline() && sim_.now() >= req->deadline) {
    ++governor_->stats().deadline_cancels;
    req->deadline_expired = true;
    settle_failed(session, req, fl);
    return;
  }
  if (!governor_->try_retry_token()) {
    settle_failed(session, req, fl);
    return;
  }
  const sim::Duration backoff = governor_->next_backoff(fl->attempts);
  ++governor_->stats().retries;
  server::trace_add(req, trace::SpanKind::kRetry, "client",
                    server::trace_root(req), sim_.now(), sim_.now() + backoff,
                    /*detail=*/fl->attempts);
  sim_.after(backoff, [this, session, req, fl] {
    if (fl->done) return;
    if (req->has_deadline() && sim_.now() >= req->deadline) {
      ++governor_->stats().deadline_cancels;
      req->deadline_expired = true;
      settle_failed(session, req, fl);
      return;
    }
    ++fl->attempts;
    ++req->app_retries;
    req->stamp("client:retry", sim_.now());
    send_attempt(session, req, fl, /*is_hedge=*/false);
  });
}

void ClientPool::settle_failed(std::size_t session, const server::RequestPtr& req,
                               const std::shared_ptr<Flight>& fl) {
  if (fl->done) return;
  fl->done = true;
  req->failed = true;
  settle(session, req);
}

}  // namespace ntier::workload
