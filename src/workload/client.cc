#include "workload/client.h"

namespace ntier::workload {

ClientPool::ClientPool(sim::Simulation& sim, sim::Rng rng,
                       const server::AppProfile* profile, server::Server* front,
                       ClientConfig cfg, BurstClock* burst)
    : sim_(sim),
      rng_(rng),
      profile_(profile),
      front_(front),
      cfg_(cfg),
      burst_(burst),
      transport_(sim, cfg.rto, cfg.link) {
  if (cfg_.session_model != nullptr) {
    session_class_.resize(cfg_.sessions);
    for (auto& s : session_class_) s = profile_->pick(rng_);
  }
}

void ClientPool::start() {
  for (std::size_t s = 0; s < cfg_.sessions; ++s) {
    // Exponential initial phase = the equilibrium residual of the
    // (exponential) think cycle, so the arrival process is stationary
    // from t=0 with no ramp-in overshoot.
    const auto phase = rng_.exp_duration(cfg_.mean_think);
    sim_.after(phase, [this, s] { issue(s); });
  }
}

void ClientPool::session_think(std::size_t session) {
  const auto think = draw_think(rng_, cfg_.mean_think, burst_);
  sim_.after(think, [this, session] { issue(session); });
}

std::size_t ClientPool::pick_class(std::size_t session) {
  if (cfg_.session_model == nullptr) return profile_->pick(rng_);
  std::size_t& state = session_class_[session];
  state = cfg_.session_model->next(state, rng_);
  return state;
}

// Finalizes one request exactly once (normal reply, timeout, or
// connection failure) and moves the session on.
void ClientPool::settle(std::size_t session, const server::RequestPtr& r) {
  r->completed = sim_.now();
  r->stamp("client:recv", sim_.now());
  ++completed_;
  if (r->failed) ++failed_;
  notify(r);
  session_think(session);
}

void ClientPool::issue(std::size_t session) {
  auto req = std::make_shared<server::Request>();
  req->id = next_id_++;
  req->class_index = pick_class(session);
  req->issued = sim_.now();
  req->tracing = cfg_.trace_requests;
  req->stamp("client:send", sim_.now());
  ++issued_;

  // First of {reply, timeout, connection-failure} wins.
  auto settled = std::make_shared<bool>(false);

  server::Job job;
  job.req = req;
  job.reply = [this, session, settled](const server::RequestPtr& r) {
    // Response travels the return link before the client sees it.
    sim_.after(transport_.link().sample(), [this, session, settled, r] {
      if (*settled) return;  // stale response after a timeout
      *settled = true;
      settle(session, r);
    });
  };

  if (cfg_.timeout > sim::Duration::zero()) {
    sim_.after(cfg_.timeout, [this, session, settled, req] {
      if (*settled) return;
      *settled = true;
      ++timeouts_;
      req->failed = true;
      req->stamp("client:timeout", sim_.now());
      settle(session, req);
    });
  }

  transport_.send(
      [front = front_, job]() { return front->offer(job); },
      [this, req, session, settled](const net::TxOutcome& out) {
        req->total_drops += out.drops;
        if (!out.delivered) {
          // Connection never established: the user request fails.
          if (*settled) return;
          *settled = true;
          req->failed = true;
          settle(session, req);
        }
      });
}

}  // namespace ntier::workload
