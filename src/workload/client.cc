#include "workload/client.h"

namespace ntier::workload {

// Per-logical-request policy state. Slab-pooled so every policy closure
// captures a 16-byte ref; the request and session ride inside.
struct ClientPool::Flight {
  server::RequestPtr req;
  std::size_t session = 0;
  bool done = false;  // the logical request has been settled
  int attempts = 1;   // primary attempts issued (1 = the first)
};

// Per-attempt conclusion guard (breaker/latency accounting), pooled for
// the same closure-size reason as Flight.
struct ClientPool::Attempt {
  FlPtr fl;
  bool concluded = false;
  sim::Time sent_at{};
  bool is_hedge = false;
};

sim::SlabPool<ClientPool::Flight>& ClientPool::flight_pool() {
  thread_local sim::SlabPool<Flight> pool;
  return pool;
}

sim::SlabPool<ClientPool::Attempt>& ClientPool::attempt_pool() {
  thread_local sim::SlabPool<Attempt> pool;
  return pool;
}

ClientPool::ClientPool(sim::Simulation& sim, sim::Rng rng,
                       const server::AppProfile* profile, server::Server* front,
                       ClientConfig cfg, BurstClock* burst)
    : sim_(sim),
      rng_(rng),
      profile_(profile),
      front_(front),
      cfg_(cfg),
      burst_(burst),
      transport_(sim, cfg.rto, cfg.link) {
  if (cfg_.session_model != nullptr) {
    session_class_.resize(cfg_.sessions);
    for (auto& s : session_class_) s = profile_->pick(rng_);
  }
  if (cfg_.policy.any()) {
    // Dedicated jitter stream so policy randomness never perturbs the
    // think/class draws of a policy-free run with the same seed.
    governor_ = std::make_unique<policy::HopGovernor>(sim_, rng_.fork(0x7A11), cfg_.policy);
  }
}

void ClientPool::start() {
  for (std::size_t s = 0; s < cfg_.sessions; ++s) {
    // Exponential initial phase = the equilibrium residual of the
    // (exponential) think cycle, so the arrival process is stationary
    // from t=0 with no ramp-in overshoot.
    const auto phase = rng_.exp_duration(cfg_.mean_think);
    sim_.after(phase, [this, s] { issue(s); }, sim::SchedClass::kTimer);
  }
}

void ClientPool::session_think(std::size_t session) {
  const auto think = draw_think(rng_, cfg_.mean_think, burst_);
  sim_.after(think, [this, session] { issue(session); },
             sim::SchedClass::kTimer);
}

std::size_t ClientPool::pick_class(std::size_t session) {
  if (cfg_.session_model == nullptr) return profile_->pick(rng_);
  std::size_t& state = session_class_[session];
  state = cfg_.session_model->next(state, rng_);
  return state;
}

// Finalizes one request exactly once (normal reply, timeout, or
// connection failure) and moves the session on.
void ClientPool::settle(std::size_t session, const server::RequestPtr& r) {
  r->completed = sim_.now();
  r->stamp("client:recv", sim_.now());
  if (r->traced()) {
    server::trace_close(r, server::trace_root(r), sim_.now());
    cfg_.tracer->finish(r->spans, r->latency());
  }
  ++completed_;
  if (r->failed) ++failed_;
  notify(r);
  session_think(session);
}

// Trace observer for the client->web TCP stack; null for untraced
// requests so the transport skips the call entirely.
net::RetransmitFn ClientPool::retransmit_observer(const server::RequestPtr& req) {
  if (!req->traced()) return {};
  std::string site = "client->" + front_->name();
  std::uint64_t root = server::trace_root(req);
  return [req, site, root](sim::Time at, sim::Duration rto, int attempt) {
    req->spans->add(trace::SpanKind::kRtoGap, site, root, at, at + rto, attempt);
  };
}

void ClientPool::issue(std::size_t session) {
  server::RequestPtr req = server::make_request();
  req->id = next_id_++;
  req->class_index = pick_class(session);
  req->issued = sim_.now();
  req->tracing = cfg_.trace_requests;
  req->stamp("client:send", sim_.now());
  ++issued_;
  if (cfg_.tracer) {
    req->spans = cfg_.tracer->begin(req->id);
    server::trace_open(req, trace::SpanKind::kRequest, "client", trace::kNoSpan,
                       sim_.now());
  }

  if (governor_) {
    issue_governed(session, req);
    return;
  }

  // First of {reply, timeout, connection-failure} wins; the guard lives
  // on the Request itself (Request::settled) so no heap cell is needed.
  server::Job job;
  job.req = req;
  job.parent_span = server::trace_root(req);
  job.reply = [this, session](const server::RequestPtr& r) {
    // Response travels the return link before the client sees it.
    sim_.after(transport_.link().sample(), [this, session, r] {
      if (r->settled) return;  // stale response after a timeout
      r->settled = true;
      settle(session, r);
    });
  };

  if (cfg_.timeout > sim::Duration::zero()) {
    sim_.after(cfg_.timeout, [this, session, req] {
      if (req->settled) return;
      req->settled = true;
      ++timeouts_;
      req->failed = true;
      req->stamp("client:timeout", sim_.now());
      settle(session, req);
    }, sim::SchedClass::kTimer);
  }

  transport_.send(
      [front = front_, job]() { return front->offer(job); },
      [this, req, session](const net::TxOutcome& out) {
        req->total_drops += out.drops;
        if (!out.delivered) {
          // Connection never established: the user request fails.
          if (req->settled) return;
          req->settled = true;
          req->failed = true;
          settle(session, req);
        }
      },
      retransmit_observer(req));
}

void ClientPool::issue_governed(std::size_t session, const server::RequestPtr& req) {
  const policy::TailPolicy& pol = governor_->policy();
  governor_->on_request();
  if (pol.deadline > sim::Duration::zero()) req->deadline = sim_.now() + pol.deadline;

  FlPtr fl = flight_pool().make();
  fl->req = req;
  fl->session = session;

  if (!governor_->allow_send()) {
    // Breaker open: the request fails instantly, no packet is sent.
    req->failed = true;
    req->stamp("client:breaker", sim_.now());
    server::trace_instant(req, trace::SpanKind::kBreakerReject, "client",
                          server::trace_root(req), sim_.now());
    fl->done = true;
    settle(session, req);
    return;
  }

  if (cfg_.timeout > sim::Duration::zero()) {
    sim_.after(cfg_.timeout, [this, fl] {
      if (fl->done) return;
      fl->done = true;
      ++timeouts_;
      fl->req->failed = true;
      fl->req->stamp("client:timeout", sim_.now());
      settle(fl->session, fl->req);
    }, sim::SchedClass::kTimer);
  }
  if (req->has_deadline()) {
    // The deadline bounds the client's patience too: at expiry the
    // request is abandoned (every tier will also refuse to queue it).
    sim_.after(req->deadline - sim_.now(), [this, fl] {
      if (fl->done) return;
      fl->done = true;
      ++governor_->stats().deadline_cancels;
      fl->req->failed = true;
      fl->req->deadline_expired = true;
      fl->req->stamp("client:deadline", sim_.now());
      server::trace_instant(fl->req, trace::SpanKind::kDeadlineCancel, "client",
                            server::trace_root(fl->req), sim_.now());
      settle(fl->session, fl->req);
    }, sim::SchedClass::kTimer);
  }

  send_attempt(fl, /*is_hedge=*/false);

  if (pol.hedge.enabled) {
    const sim::Duration d = governor_->hedge_delay();
    for (int i = 1; i <= pol.hedge.max_hedges; ++i) {
      sim_.after(d * i, [this, fl, i] {
        if (fl->done) return;
        if (fl->req->has_deadline() && sim_.now() >= fl->req->deadline) return;
        ++fl->req->hedge_copies;
        ++governor_->stats().hedges;
        server::trace_instant(fl->req, trace::SpanKind::kHedge, "client",
                              server::trace_root(fl->req), sim_.now(), /*detail=*/i);
        send_attempt(fl, /*is_hedge=*/true);
      }, sim::SchedClass::kTimer);
    }
  }
}

void ClientPool::send_attempt(const FlPtr& fl, bool is_hedge) {
  // Per-attempt conclusion guard for breaker/latency accounting.
  GaPtr ga = attempt_pool().make();
  ga->fl = fl;
  ga->sent_at = sim_.now();
  ga->is_hedge = is_hedge;

  server::Job job;
  job.req = fl->req;
  job.parent_span = server::trace_root(fl->req);
  job.reply = [this, ga](const server::RequestPtr& r) {
    sim_.after(transport_.link().sample(), [this, ga, r] {
      Flight& fl = *ga->fl;
      if (r->overload_shed && !fl.done) {
        // A tier shed this attempt with a retryable rejection: clear the
        // canned error and spend retry budget instead of settling.
        r->overload_shed = false;
        r->failed = false;
        if (!ga->concluded) {
          ga->concluded = true;
          governor_->on_outcome(false);
        }
        if (!ga->is_hedge) retry_or_fail(ga->fl);
        return;
      }
      if (!ga->concluded) {
        ga->concluded = true;
        governor_->on_outcome(!r->failed);
        if (!r->failed) governor_->record_latency(sim_.now() - ga->sent_at);
      }
      if (fl.done) return;  // stale/duplicate response
      fl.done = true;
      if (ga->is_hedge) ++governor_->stats().hedge_wins;
      settle(fl.session, r);
    });
  };

  transport_.send(
      [front = front_, job]() { return front->offer(job); },
      [this, ga](const net::TxOutcome& out) {
        ga->fl->req->total_drops += out.drops;
        if (out.delivered) return;
        if (ga->concluded) return;
        ga->concluded = true;
        governor_->on_outcome(false);
        if (!ga->is_hedge) retry_or_fail(ga->fl);
      },
      retransmit_observer(fl->req));

  const sim::Duration at = governor_->policy().attempt_timeout;
  if (!is_hedge && at > sim::Duration::zero()) {
    sim_.after(at, [this, ga] {
      if (ga->fl->done || ga->concluded) return;
      ga->concluded = true;
      governor_->on_outcome(false);
      retry_or_fail(ga->fl);
    }, sim::SchedClass::kTimer);
  }
}

void ClientPool::retry_or_fail(const FlPtr& fl) {
  if (fl->done) return;
  const policy::RetryPolicy& rp = governor_->policy().retry;
  if (!rp.enabled() || fl->attempts >= rp.max_attempts) {
    settle_failed(fl);
    return;
  }
  if (fl->req->has_deadline() && sim_.now() >= fl->req->deadline) {
    ++governor_->stats().deadline_cancels;
    fl->req->deadline_expired = true;
    settle_failed(fl);
    return;
  }
  if (!governor_->try_retry_token()) {
    settle_failed(fl);
    return;
  }
  const sim::Duration backoff = governor_->next_backoff(fl->attempts);
  ++governor_->stats().retries;
  server::trace_add(fl->req, trace::SpanKind::kRetry, "client",
                    server::trace_root(fl->req), sim_.now(), sim_.now() + backoff,
                    /*detail=*/fl->attempts);
  sim_.after(backoff, [this, fl] {
    if (fl->done) return;
    if (fl->req->has_deadline() && sim_.now() >= fl->req->deadline) {
      ++governor_->stats().deadline_cancels;
      fl->req->deadline_expired = true;
      settle_failed(fl);
      return;
    }
    ++fl->attempts;
    ++fl->req->app_retries;
    fl->req->stamp("client:retry", sim_.now());
    send_attempt(fl, /*is_hedge=*/false);
  }, sim::SchedClass::kTimer);
}

void ClientPool::settle_failed(const FlPtr& fl) {
  if (fl->done) return;
  fl->done = true;
  fl->req->failed = true;
  settle(fl->session, fl->req);
}

}  // namespace ntier::workload
