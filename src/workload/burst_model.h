// Workload burstiness (the paper's "burst index", after Mi et al. ICAC'09).
//
// RUBBoS injects burstiness by modulating client think times with a
// 2-state Markov process shared by all clients: in the burst state the
// mean think time shrinks by the burst index I, multiplying the arrival
// rate for the dwell; the steady state has the configured mean. Burst
// index 1 degenerates to plain exponential think times (SysSteady's
// default); SysBursty uses I = 100.
#pragma once

#include <vector>

#include "sim/random.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace ntier::workload {

class BurstClock {
 public:
  struct Config {
    double burst_index = 1.0;  // think-time divisor while bursting
    sim::Duration burst_dwell = sim::Duration::millis(800);
    sim::Duration normal_dwell = sim::Duration::seconds(14);
  };

  // rng must outlive the clock. A burst_index <= 1 never enters the
  // burst state (no events scheduled).
  BurstClock(sim::Simulation& sim, sim::Rng& rng, Config cfg);

  bool bursting() const { return bursting_; }
  // Multiplier applied to think-time means right now (1/I in a burst).
  double think_scale() const { return bursting_ ? 1.0 / cfg_.burst_index : 1.0; }

  // Start times of every burst dwell (for figure time markers).
  const std::vector<sim::Time>& burst_starts() const { return burst_starts_; }

 private:
  void schedule_flip();

  sim::Simulation& sim_;
  sim::Rng& rng_;
  Config cfg_;
  bool bursting_ = false;
  std::vector<sim::Time> burst_starts_;
};

// Draws one think time honoring the optional shared burst clock.
sim::Duration draw_think(sim::Rng& rng, sim::Duration mean, const BurstClock* clock);

}  // namespace ntier::workload
