// Closed-loop client population (the RUBBoS load generator).
//
// N sessions each cycle through think -> request -> response. The
// closed-loop law X = N / (R + Z) pins the paper's operating points:
// think time 7 s puts WL 4000/7000/8000 at ~572/990/1103 req/s. Client
// packets refused by the web tier retransmit per the client RtoPolicy —
// these retransmissions ARE the paper's VLRT requests.
//
// An optional TailPolicy turns the naive browser into a tail-tolerant
// one: the request is stamped with an end-to-end deadline (propagated
// through every tier), failed or timed-out attempts are re-issued with
// backoff under a retry budget, duplicate (hedged) copies go out after a
// percentile delay, and a circuit breaker fast-fails while the front
// tier looks sick.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/link.h"
#include "net/rto_policy.h"
#include "net/transport.h"
#include "policy/tail_policy.h"
#include "server/app_profile.h"
#include "server/request.h"
#include "server/server_base.h"
#include "sim/random.h"
#include "sim/simulation.h"
#include "trace/tracer.h"
#include "workload/burst_model.h"
#include "workload/session_model.h"

namespace ntier::workload {

struct ClientConfig {
  std::size_t sessions = 1000;
  sim::Duration mean_think = sim::Duration::seconds(7);
  net::RtoPolicy rto = net::RtoPolicy::rhel6();
  net::Link link{};
  bool trace_requests = false;
  // Completions before this instant are not reported (warm-up).
  sim::Time measure_from = sim::Time::origin();
  // Browser-style request timeout; zero disables. A timed-out request is
  // recorded as failed and the session moves on (the straggling response
  // is discarded when it eventually arrives).
  sim::Duration timeout = sim::Duration::zero();
  // Optional Markov page-navigation model (see workload/session_model.h);
  // null = independent draws from the profile weights.
  const SessionModel* session_model = nullptr;
  // Tail-tolerance policy applied at the client hop (deadline stamping,
  // retries, hedging, circuit breaking). Default: all disabled — the
  // naive browser of the paper.
  policy::TailPolicy policy{};
  // Distributed-tracing collector (owned by the experiment); null = no
  // span trees. The client opens the root span at issue, closes it at
  // settle, and hands the finished tree back via Tracer::finish.
  trace::Tracer* tracer = nullptr;
};

class ClientPool {
 public:
  using CompletionFn = std::function<void(const server::RequestPtr&)>;

  // `front` is the web tier; `burst` (optional) modulates think times.
  ClientPool(sim::Simulation& sim, sim::Rng rng, const server::AppProfile* profile,
             server::Server* front, ClientConfig cfg, BurstClock* burst = nullptr);

  // Begins all sessions (each with a randomized initial think phase).
  void start();

  // Registers a listener called for every measured completion (after
  // warm-up); listeners accumulate and run in registration order.
  void on_complete(CompletionFn fn) { listeners_.push_back(std::move(fn)); }

  std::uint64_t issued() const { return issued_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t failed() const { return failed_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t in_flight() const { return issued_ - completed_; }
  const net::TxStats& tx_stats() const { return transport_.stats(); }
  // The client's TCP stack toward the web tier (fault-injection target).
  net::Transport& transport() { return transport_; }
  // Policy runtime; null when no policy is configured.
  policy::HopGovernor* governor() { return governor_ ? governor_.get() : nullptr; }
  const policy::HopGovernor* governor() const { return governor_ ? governor_.get() : nullptr; }

 private:
  struct Flight;   // per-logical-request policy state (slab-pooled)
  struct Attempt;  // per-attempt conclusion guard (slab-pooled)
  using FlPtr = sim::PoolRef<Flight>;
  using GaPtr = sim::PoolRef<Attempt>;

  static sim::SlabPool<Flight>& flight_pool();
  static sim::SlabPool<Attempt>& attempt_pool();

  void session_think(std::size_t session);
  net::RetransmitFn retransmit_observer(const server::RequestPtr& req);
  void issue(std::size_t session);
  void issue_governed(std::size_t session, const server::RequestPtr& req);
  void send_attempt(const FlPtr& fl, bool is_hedge);
  void retry_or_fail(const FlPtr& fl);
  void settle_failed(const FlPtr& fl);

  sim::Simulation& sim_;
  sim::Rng rng_;
  const server::AppProfile* profile_;
  server::Server* front_;
  ClientConfig cfg_;
  BurstClock* burst_;
  net::Transport transport_;
  std::unique_ptr<policy::HopGovernor> governor_;

  void notify(const server::RequestPtr& r) {
    if (r->completed < cfg_.measure_from) return;
    for (auto& fn : listeners_) fn(r);
  }

  std::size_t pick_class(std::size_t session);
  void settle(std::size_t session, const server::RequestPtr& r);

  std::vector<CompletionFn> listeners_;
  std::vector<std::size_t> session_class_;  // Markov state per session
  std::uint64_t next_id_ = 1;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t timeouts_ = 0;
};

}  // namespace ntier::workload
