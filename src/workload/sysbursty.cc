#include "workload/sysbursty.h"

namespace ntier::workload {

InterferenceLoad::InterferenceLoad(sim::Simulation& sim, cpu::VmCpu* vm, BatchConfig cfg)
    : sim_(sim), vm_(vm), batch_(cfg), batch_mode_(true), rng_(1) {
  sim_.at(batch_.first_at, [this] { fire_batch(); }, sim::SchedClass::kTimer);
}

InterferenceLoad::InterferenceLoad(sim::Simulation& sim, cpu::VmCpu* vm, sim::Rng rng,
                                   MmppConfig cfg)
    : sim_(sim), vm_(vm), mmpp_(cfg), batch_mode_(false), rng_(rng) {
  clock_ = std::make_unique<BurstClock>(sim, rng_, cfg.burst);
  for (std::size_t c = 0; c < mmpp_.clients; ++c) client_think(c);
}

void InterferenceLoad::fire_batch() {
  marks_.push_back(sim_.now());
  for (std::size_t i = 0; i < batch_.batch_size; ++i) {
    ++jobs_;
    vm_->submit(batch_.demand_per_job, [this] { ++done_; });
  }
  sim_.after(batch_.period, [this] { fire_batch(); },
             sim::SchedClass::kTimer);
}

void InterferenceLoad::client_think(std::size_t idx) {
  // Think times shrink by the burst index while the shared clock is in
  // its burst state; the loop stays closed so the backlog on the bursty
  // VM is bounded by the client population.
  const auto think = draw_think(rng_, mmpp_.mean_think, clock_.get());
  sim_.after(
      think,
      [this, idx] {
        ++jobs_;
        vm_->submit(mmpp_.demand_per_job, [this, idx] {
          ++done_;
          client_think(idx);
        });
      },
      sim::SchedClass::kTimer);
}

}  // namespace ntier::workload
