// Request-mix utilities layered over AppProfile.
//
// Closed-loop operating-point math used by scenario builders and tests:
// predicts throughput and per-tier utilization from a workload size so
// experiments can assert they run at the paper's operating points
// (43/75/85 % at WL 4000/7000/8000).
#pragma once

#include <cstddef>

#include "server/app_profile.h"
#include "sim/time.h"

namespace ntier::workload {

struct OperatingPoint {
  double throughput_rps = 0.0;  // X = N / (R + Z)
  double web_util = 0.0;        // fraction of one core
  double app_util = 0.0;
  double db_util = 0.0;
};

// Predicts the operating point for `sessions` closed-loop clients with
// `mean_think`, assuming negligible queueing (R ~ base response time).
OperatingPoint predict(const server::AppProfile& profile, std::size_t sessions,
                       sim::Duration mean_think);

// Mean CPU demand per request at each tier under the mix.
sim::Duration mean_web_cpu(const server::AppProfile& profile);
sim::Duration mean_db_cpu(const server::AppProfile& profile);

}  // namespace ntier::workload
