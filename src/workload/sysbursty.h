// SysBursty: the co-located bursty tenant (paper §IV-A, Fig 2).
//
// In the testbed SysBursty is a full second RUBBoS deployment, but only
// its co-located server's CPU demand interferes with SysSteady — so we
// model exactly that component: a load source submitting CPU jobs to the
// interference VM sharing SysSteady's physical core. Two modes:
//
//  * Batch (paper §V-B): "a batch of 400 ViewStory requests arriving
//    every 15 seconds", creating reproducible millibottlenecks of a few
//    hundred ms.
//  * MMPP (paper §IV-A): 400 clients with burst index 100, via the
//    shared BurstClock — stochastic bursts for the Fig 1 histograms.
//
// The interference VM's scheduler weight defaults to > 1: the paper
// observes SysBursty grabbing (nearly) the whole core during bursts
// ("requires 100% of CPU"), starving SysSteady well below its fair
// share; the weight reproduces that measured starvation in our fluid
// fair-share model (see DESIGN.md §2; ablation_qdepth sweeps it).
#pragma once

#include <cstdint>
#include <vector>

#include "cpu/host_core.h"
#include "sim/random.h"
#include "sim/simulation.h"
#include "workload/burst_model.h"

namespace ntier::workload {

class InterferenceLoad {
 public:
  struct BatchConfig {
    sim::Duration period = sim::Duration::seconds(15);
    std::size_t batch_size = 400;
    sim::Duration demand_per_job = sim::Duration::micros(1500);
    sim::Time first_at = sim::Time::from_seconds(5.0);
  };
  struct MmppConfig {
    // SysBursty is a *closed-loop* population (the RUBBoS generator):
    // 400 clients whose think times collapse by the burst index during
    // a burst dwell. Closed-loop matters: during a burst the co-located
    // server saturates but its backlog stays bounded by the client
    // count, exactly like the testbed.
    std::size_t clients = 400;
    sim::Duration mean_think = sim::Duration::seconds(7);
    sim::Duration demand_per_job = sim::Duration::micros(1500);
    BurstClock::Config burst{};  // set burst_index ~ 100
  };

  // Deterministic batches.
  InterferenceLoad(sim::Simulation& sim, cpu::VmCpu* vm, BatchConfig cfg);
  // Stochastic MMPP arrivals (owns its BurstClock).
  InterferenceLoad(sim::Simulation& sim, cpu::VmCpu* vm, sim::Rng rng, MmppConfig cfg);

  std::uint64_t jobs_submitted() const { return jobs_; }
  std::uint64_t jobs_completed() const { return done_; }
  // Burst onset times — the figures' time markers (batch fire times in
  // batch mode, burst-state entries in MMPP mode).
  const std::vector<sim::Time>& burst_marks() const {
    return batch_mode_ ? marks_ : clock_->burst_starts();
  }

 private:
  void fire_batch();
  void client_think(std::size_t idx);

  sim::Simulation& sim_;
  cpu::VmCpu* vm_;
  BatchConfig batch_{};
  MmppConfig mmpp_{};
  bool batch_mode_ = true;
  sim::Rng rng_;
  std::unique_ptr<BurstClock> clock_;
  std::uint64_t jobs_ = 0;
  std::uint64_t done_ = 0;
  std::vector<sim::Time> marks_;
};

}  // namespace ntier::workload
