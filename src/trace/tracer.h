// Tracer: per-run trace collection with bounded-memory sampling.
//
// Decides which requests get a span tree and which finished trees are
// retained for analysis/export. Three sampling modes keep memory bounded
// at production request counts:
//   kAll      — every request is traced and retained (tests, short runs);
//   kVlrtOnly — every request records spans in flight, but at completion
//               only VLRT requests (latency >= vlrt_threshold) are kept;
//               memory is bounded by the in-flight population plus the
//               (rare) VLRT set — the standard tail-sampling trade;
//   kSampled  — deterministic head sampling: request ids where
//               id % sample_every_n == 1 are traced (no RNG draw, so
//               enabling tracing never perturbs the simulation).
//
// `max_traces` hard-caps retention in every mode; once reached, further
// finished traces are dropped (counted in dropped_by_cap()) — the run
// keeps going, the export just notes the truncation.
//
// All counters are monotonic over one run. Units: `vlrt_threshold` is a
// simulated duration (default the paper's 3 s VLRT line).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.h"
#include "trace/span.h"

namespace ntier::trace {

enum class TraceMode : std::uint8_t {
  kOff,       // no request carries a span tree (zero overhead)
  kAll,       // trace and retain everything
  kVlrtOnly,  // trace in flight, retain only VLRT completions
  kSampled,   // deterministic 1-in-N head sampling
};

const char* to_string(TraceMode m);

struct TraceConfig {
  TraceMode mode = TraceMode::kOff;
  // kSampled: trace ids with id % sample_every_n == 1 (ids start at 1,
  // so the first request of a run is always in the sample).
  std::uint64_t sample_every_n = 100;
  // kVlrtOnly retention line (the paper's VLRT definition).
  sim::Duration vlrt_threshold = sim::Duration::seconds(3);
  // Hard cap on retained traces across all modes.
  std::size_t max_traces = 200000;
};

class Tracer {
 public:
  explicit Tracer(TraceConfig cfg) : cfg_(cfg) {}

  const TraceConfig& config() const { return cfg_; }
  bool enabled() const { return cfg_.mode != TraceMode::kOff; }

  // Called at request issue: returns a fresh span tree for the request,
  // or null when this request is not sampled.
  TracePtr begin(std::uint64_t request_id);

  // Called at request completion (the root span must be closed by the
  // caller first). Retains or discards per the sampling mode.
  void finish(const TracePtr& trace, sim::Duration latency);

  // Observer invoked once per finished span tree, BEFORE the retention
  // decision — so trees the sampling mode would discard are seen too.
  // The obs flight recorder rides here; hooks must not schedule events
  // or draw randomness (the tracing layer's zero-perturbation contract
  // extends to them).
  void set_finish_hook(std::function<void(const TracePtr&, sim::Duration)> hook) {
    finish_hook_ = std::move(hook);
  }

  // Retained traces, in completion order (deterministic per seed).
  const std::vector<TracePtr>& traces() const {
    return traces_;
  }

  std::uint64_t begun() const { return begun_; }
  std::uint64_t retained() const { return traces_.size(); }
  std::uint64_t discarded() const { return discarded_; }
  std::uint64_t dropped_by_cap() const { return dropped_by_cap_; }

 private:
  TraceConfig cfg_;
  std::function<void(const TracePtr&, sim::Duration)> finish_hook_;
  std::vector<TracePtr> traces_;
  std::uint64_t begun_ = 0;
  std::uint64_t discarded_ = 0;
  std::uint64_t dropped_by_cap_ = 0;
};

}  // namespace ntier::trace
