// Trace export: Chrome trace_event JSON and a compact span CSV.
//
// The JSON is the Chrome/Perfetto `trace_event` format (JSON-object
// flavor: {"traceEvents": [...], "displayTimeUnit": "ms"}). Open the
// file in chrome://tracing or https://ui.perfetto.dev to scrub through
// requests visually. Mapping:
//   - pid 1, process name "ntier" (one simulated system per file);
//   - tid = request id — each request renders as its own track, so a
//     VLRT request's 3 s rto_gap bar is visible at a glance;
//   - spans with duration -> complete events (ph "X", ts/dur in µs);
//   - zero-length markers (drops, hedges, cancels) -> instant events
//     (ph "i", thread scope);
//   - span id / parent id / detail are preserved under "args" so the
//     tree can be rebuilt from the file.
// `ts` is simulated microseconds since the run origin. Output depends
// only on recorded spans — same seed, byte-identical file.
//
// The CSV is one row per span (schema documented in docs/METRICS.md)
// for spreadsheet/pandas post-processing without a JSON parser.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "trace/span.h"

namespace ntier::trace {

using TraceList = std::vector<TracePtr>;

// Chrome trace_event JSON for all retained traces.
std::string chrome_trace_json(const TraceList& traces);

// "request_id,span_id,parent_id,kind,site,begin_us,end_us,duration_us,
//  detail,closed" rows, one per span.
std::string spans_csv(const TraceList& traces);

}  // namespace ntier::trace
