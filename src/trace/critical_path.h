// CriticalPath: attribute every microsecond of a request to a cause.
//
// Walks a RequestTrace span tree and partitions the root interval
// (client send -> client receive) into non-overlapping segments, each
// charged to the deepest span covering that instant. The result answers
// the paper's micro-level question mechanically: a VLRT request shows
// "2997 ms rto_gap at apache->tomcat, 41 ms pool_queue at tomcat,
// 12 ms service at mysql", i.e. the 3 seconds are the retransmission
// wait in front of the overflowing tier, not service anywhere.
//
// Attribution rules:
//  - children are swept in begin-time order; an instant covered by two
//    overlapping siblings (hedged duplicates) is charged to the earlier
//    one for the overlap, then the later one takes over — every instant
//    is charged exactly once, so the segment sum equals the end-to-end
//    latency EXACTLY (integral µs arithmetic, no rounding);
//  - a span that never closed (request abandoned mid-flight) is clamped
//    to its parent's end;
//  - zero-length marker spans (drops, policy events) get no time.
//
// Units: all durations are simulated time; `share` fields are fractions
// of the root duration in [0, 1].
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/span.h"

namespace ntier::trace {

struct CriticalPath {
  // One (kind, site) bucket of attributed time, e.g. ("rto_gap",
  // "apache->tomcat"). Sorted by time, largest first.
  struct Item {
    SpanKind kind = SpanKind::kRequest;
    std::string site;
    sim::Duration time;
    double share = 0.0;  // time / total
  };

  std::uint64_t request_id = 0;
  sim::Duration total;       // root span duration == sum of all items
  std::vector<Item> items;

  // Total attributed to one kind across all sites (e.g. all RTO gaps).
  sim::Duration by_kind(SpanKind k) const;
  // Largest bucket; valid only when !items.empty().
  const Item& dominant() const { return items.front(); }
  // "latency 3050.2 ms: 2997.0 ms rto_gap at apache->tomcat (98.3%), ..."
  std::string to_string() const;
};

// Computes the attribution for one request. The root must be closed
// (completed request); traces without a closed root return total = 0
// and no items.
CriticalPath critical_path(const RequestTrace& trace);

}  // namespace ntier::trace
