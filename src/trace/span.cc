#include "trace/span.h"

#include <cassert>

namespace ntier::trace {

const char* to_string(SpanKind k) {
  switch (k) {
    case SpanKind::kRequest: return "request";
    case SpanKind::kHop: return "hop";
    case SpanKind::kAcceptQueue: return "accept_queue";
    case SpanKind::kPoolQueue: return "pool_queue";
    case SpanKind::kService: return "service";
    case SpanKind::kDisk: return "disk";
    case SpanKind::kDownstream: return "downstream";
    case SpanKind::kRtoGap: return "rto_gap";
    case SpanKind::kRetry: return "retry_backoff";
    case SpanKind::kHedge: return "hedge";
    case SpanKind::kDeadlineCancel: return "deadline_cancel";
    case SpanKind::kBreakerReject: return "breaker_reject";
    case SpanKind::kDrop: return "drop";
    case SpanKind::kOverloadShed: return "overload_shed";
    case SpanKind::kBrownout: return "brownout";
  }
  return "?";
}

std::uint64_t RequestTrace::open(SpanKind kind, std::string site,
                                 std::uint64_t parent, sim::Time begin,
                                 int detail) {
  assert(parent == kNoSpan ? spans_.empty() : parent < spans_.size());
  Span s;
  s.id = spans_.size();
  s.parent = parent;
  s.kind = kind;
  s.site = std::move(site);
  s.begin = begin;
  s.end = begin;
  s.detail = detail;
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

void RequestTrace::close(std::uint64_t id, sim::Time end) {
  if (id == kNoSpan) return;
  assert(id < spans_.size());
  Span& s = spans_[id];
  if (s.closed_) return;
  assert(end >= s.begin);
  s.end = end;
  s.closed_ = true;
}

std::uint64_t RequestTrace::add(SpanKind kind, std::string site,
                                std::uint64_t parent, sim::Time begin,
                                sim::Time end, int detail) {
  const std::uint64_t id = open(kind, std::move(site), parent, begin, detail);
  close(id, end);
  return id;
}

std::uint64_t RequestTrace::instant(SpanKind kind, std::string site,
                                    std::uint64_t parent, sim::Time at,
                                    int detail) {
  return add(kind, std::move(site), parent, at, at, detail);
}

}  // namespace ntier::trace
