#include "trace/critical_path.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace ntier::trace {

namespace {

struct Walker {
  const std::vector<Span>& spans;
  std::vector<std::vector<std::uint64_t>> children;
  // Accumulated self-time per (kind, site).
  std::map<std::pair<SpanKind, std::string>, sim::Duration> buckets;

  explicit Walker(const RequestTrace& t) : spans(t.spans()) {
    children.resize(spans.size());
    for (const Span& s : spans)
      if (s.parent != kNoSpan) children[s.parent].push_back(s.id);
    // Allocation order is open order; sweep wants begin order. Stable
    // sort keeps same-instant siblings in open order for determinism.
    for (auto& kids : children)
      std::stable_sort(kids.begin(), kids.end(),
                       [this](std::uint64_t a, std::uint64_t b) {
                         return spans[a].begin < spans[b].begin;
                       });
  }

  void charge(const Span& s, sim::Time a, sim::Time b) {
    if (b <= a) return;
    buckets[{s.kind, s.site}] += b - a;
  }

  // Attributes [a, b) among `s` and its descendants.
  void attribute(const Span& s, sim::Time a, sim::Time b) {
    sim::Time cursor = a;
    for (std::uint64_t cid : children[s.id]) {
      const Span& c = spans[cid];
      // Unclosed child: the request left it dangling; clamp to parent.
      const sim::Time cend = c.closed() ? c.end : b;
      const sim::Time from = std::max(c.begin, cursor);
      const sim::Time to = std::min(cend, b);
      if (to <= from) continue;
      charge(s, cursor, from);  // parent self-time before this child
      attribute(c, from, to);
      cursor = to;
    }
    charge(s, cursor, b);  // parent self-time after the last child
  }
};

}  // namespace

CriticalPath critical_path(const RequestTrace& trace) {
  CriticalPath out;
  out.request_id = trace.request_id();
  if (trace.empty() || !trace.root().closed()) return out;
  const Span& root = trace.root();
  out.total = root.duration();

  Walker w(trace);
  w.attribute(root, root.begin, root.end);

  for (const auto& [key, time] : w.buckets) {
    if (time <= sim::Duration::zero()) continue;
    CriticalPath::Item item;
    item.kind = key.first;
    item.site = key.second;
    item.time = time;
    item.share = out.total > sim::Duration::zero() ? time / out.total : 0.0;
    out.items.push_back(std::move(item));
  }
  std::stable_sort(out.items.begin(), out.items.end(),
                   [](const auto& a, const auto& b) { return a.time > b.time; });
  return out;
}

sim::Duration CriticalPath::by_kind(SpanKind k) const {
  sim::Duration sum;
  for (const Item& i : items)
    if (i.kind == k) sum += i.time;
  return sum;
}

std::string CriticalPath::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "request %llu, latency %.1f ms:",
                static_cast<unsigned long long>(request_id), total.to_millis());
  std::string out = buf;
  for (const Item& i : items) {
    std::snprintf(buf, sizeof buf, " %.1f ms %s at %s (%.1f%%),",
                  i.time.to_millis(), trace::to_string(i.kind), i.site.c_str(),
                  i.share * 100.0);
    out += buf;
  }
  if (!items.empty()) out.pop_back();  // trailing comma
  return out;
}

}  // namespace ntier::trace
