#include "trace/tracer.h"

namespace ntier::trace {

const char* to_string(TraceMode m) {
  switch (m) {
    case TraceMode::kOff: return "off";
    case TraceMode::kAll: return "all";
    case TraceMode::kVlrtOnly: return "vlrt";
    case TraceMode::kSampled: return "sampled";
  }
  return "?";
}

TracePtr Tracer::begin(std::uint64_t request_id) {
  switch (cfg_.mode) {
    case TraceMode::kOff:
      return nullptr;
    case TraceMode::kSampled:
      if (request_id % cfg_.sample_every_n != 1 % cfg_.sample_every_n)
        return nullptr;
      break;
    case TraceMode::kAll:
    case TraceMode::kVlrtOnly:
      break;
  }
  ++begun_;
  return trace_pool().make(request_id);
}

void Tracer::finish(const TracePtr& trace,
                    sim::Duration latency) {
  if (!trace) return;
  if (finish_hook_) finish_hook_(trace, latency);
  if (cfg_.mode == TraceMode::kVlrtOnly && latency < cfg_.vlrt_threshold) {
    ++discarded_;
    return;
  }
  if (traces_.size() >= cfg_.max_traces) {
    ++dropped_by_cap_;
    return;
  }
  traces_.push_back(trace);
}

}  // namespace ntier::trace
