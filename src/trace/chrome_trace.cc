#include "trace/chrome_trace.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace ntier::trace {

namespace {

// Minimal JSON string escaping (site names are ASCII identifiers, but a
// correct file must escape quotes/backslashes/control bytes anyway).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

std::string chrome_trace_json(const TraceList& traces) {
  std::string out;
  out.reserve(256 + traces.size() * 512);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"ntier\"}}";
  for (const auto& t : traces) {
    if (!t || t->empty()) continue;
    const std::uint64_t rid = t->request_id();
    append(out,
           ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":%" PRIu64 ",\"args\":{\"name\":\"request %" PRIu64 "\"}}",
           rid, rid);
    for (const Span& s : t->spans()) {
      const std::string name =
          std::string(to_string(s.kind)) + " " + json_escape(s.site);
      const std::int64_t ts = s.begin.count_micros();
      const std::int64_t dur = s.duration().count_micros();
      if (s.closed() && dur > 0) {
        append(out,
               ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%" PRId64
               ",\"dur\":%" PRId64 ",\"pid\":1,\"tid\":%" PRIu64
               ",\"args\":{\"span\":%" PRIu64 ",\"parent\":%" PRId64
               ",\"detail\":%d}}",
               name.c_str(), to_string(s.kind), ts, dur, rid, s.id,
               s.parent == kNoSpan ? -1 : static_cast<std::int64_t>(s.parent),
               s.detail);
      } else {
        append(out,
               ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"ts\":%" PRId64
               ",\"s\":\"t\",\"pid\":1,\"tid\":%" PRIu64
               ",\"args\":{\"span\":%" PRIu64 ",\"parent\":%" PRId64
               ",\"detail\":%d,\"closed\":%s}}",
               name.c_str(), to_string(s.kind), ts, rid, s.id,
               s.parent == kNoSpan ? -1 : static_cast<std::int64_t>(s.parent),
               s.detail, s.closed() ? "true" : "false");
      }
    }
  }
  out += "\n]}\n";
  return out;
}

std::string spans_csv(const TraceList& traces) {
  std::string out =
      "request_id,span_id,parent_id,kind,site,begin_us,end_us,duration_us,"
      "detail,closed\n";
  for (const auto& t : traces) {
    if (!t) continue;
    for (const Span& s : t->spans()) {
      append(out,
             "%" PRIu64 ",%" PRIu64 ",%" PRId64 ",%s,%s,%" PRId64 ",%" PRId64
             ",%" PRId64 ",%d,%d\n",
             t->request_id(), s.id,
             s.parent == kNoSpan ? -1 : static_cast<std::int64_t>(s.parent),
             to_string(s.kind), s.site.c_str(), s.begin.count_micros(),
             s.end.count_micros(), s.duration().count_micros(), s.detail,
             s.closed() ? 1 : 0);
    }
  }
  return out;
}

}  // namespace ntier::trace
