// Per-request distributed-tracing spans.
//
// A RequestTrace is the span tree of ONE logical request as it crosses
// the tier chain: a root span for the whole client-visible lifetime, one
// hop span per server visit, and nested child spans for everything time
// can be spent on — accept-backlog wait, run-queue/pool wait, CPU and
// disk service, downstream-call wait, RTO retransmission gaps, and
// tail-policy events (retry backoff, hedges, deadline cancels, breaker
// rejections). The tree is what the paper's manual micro-level event
// analysis reconstructs by aligning per-tier timestamps; here every
// span is recorded in-line at µs resolution, so `critical_path.h` can
// answer "where did this request's 3 seconds go" mechanically.
//
// Units: all span boundaries are simulated `sim::Time` instants
// (integral microseconds since the simulation origin). A span that was
// opened but never closed (request abandoned mid-flight, or still in
// the system when the run ends) reports `closed() == false`; analyzers
// clamp such spans to the enclosing span's end.
//
// Layering: this library depends only on `sim/` — servers, transports,
// and clients record into it, and `core/` analyzes it, without cycles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/slab_pool.h"
#include "sim/time.h"

namespace ntier::trace {

// Sentinel parent for root spans / "not traced" span handles.
inline constexpr std::uint64_t kNoSpan = ~0ull;

// What a slice of a request's lifetime was spent on.
enum class SpanKind : std::uint8_t {
  kRequest,        // root: client send -> client receive
  kHop,            // one server visit: admission -> reply
  kAcceptQueue,    // waiting in a TCP accept backlog (sync tiers)
  kPoolQueue,      // waiting for a worker/stage slot or a connection pool
  kService,        // CPU work step executing on the tier's VM
  kDisk,           // disk work step on the tier's IoDevice
  kDownstream,     // waiting on the downstream tier (dispatch -> reply)
  kRtoGap,         // TCP retransmission wait after a dropped/lost packet
  kRetry,          // policy-layer retry backoff wait
  kHedge,          // instant: a hedged duplicate was sent
  kDeadlineCancel, // instant: the end-to-end deadline expired here
  kBreakerReject,  // instant: circuit breaker fast-failed the send
  kDrop,           // instant: an admission refusal (the dropped packet)
  kOverloadShed,   // instant: the overload controller shed the request
  kBrownout,       // instant: admitted for the degraded (brownout) response
};

// Stable lowercase name ("rto_gap", "service", ...) used in exports.
const char* to_string(SpanKind k);

struct Span {
  std::uint64_t id = kNoSpan;      // index into RequestTrace::spans()
  std::uint64_t parent = kNoSpan;  // kNoSpan for the root span
  SpanKind kind = SpanKind::kRequest;
  // Where the time was spent: a tier name ("tomcat"), a hop
  // ("tomcat->mysql" for downstream/RTO spans), or "client".
  std::string site;
  sim::Time begin;                 // open instant (µs, simulated)
  sim::Time end;                   // close instant; valid iff closed()
  // Kind-specific small integer: retransmission/retry attempt number
  // for kRtoGap/kRetry, drop reason for kDrop (0 = queue overflow,
  // 1 = refused while crashed, 2 = load-shed), else 0.
  int detail = 0;
  bool closed_ = false;

  bool closed() const { return closed_; }
  // Duration of a closed span; zero for instants and unclosed spans.
  sim::Duration duration() const {
    return closed_ ? end - begin : sim::Duration::zero();
  }
};

// Append-only span tree for one request. Span ids are allocation order
// (parents always precede children), which makes same-seed runs emit
// byte-identical exports.
class RequestTrace {
 public:
  explicit RequestTrace(std::uint64_t request_id) : request_id_(request_id) {}

  std::uint64_t request_id() const { return request_id_; }

  // Opens a span; returns its id (pass to close()). `parent` may be
  // kNoSpan only for the root.
  std::uint64_t open(SpanKind kind, std::string site, std::uint64_t parent,
                     sim::Time begin, int detail = 0);
  // Closes an open span at `end`; idempotent (later closes are ignored)
  // so first-reply-wins races cannot corrupt the tree.
  void close(std::uint64_t id, sim::Time end);
  // Records a closed span in one call (begin and end already known).
  std::uint64_t add(SpanKind kind, std::string site, std::uint64_t parent,
                    sim::Time begin, sim::Time end, int detail = 0);
  // Records a zero-length marker span (policy events, drops).
  std::uint64_t instant(SpanKind kind, std::string site, std::uint64_t parent,
                        sim::Time at, int detail = 0);

  const std::vector<Span>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }
  // The root (first-opened) span. Undefined when empty().
  const Span& root() const { return spans_.front(); }
  // Root duration if the root is closed, else zero.
  sim::Duration total() const { return root().duration(); }

 private:
  std::uint64_t request_id_;
  std::vector<Span> spans_;
};

// Span trees are slab-pooled (the per-request object is recycled; span
// storage itself still grows with the tree — tracing explicitly costs
// memory). TracePtr replaces the former shared_ptr<RequestTrace>.
using TracePtr = sim::PoolRef<RequestTrace>;

// Thread-local pool behind Tracer::begin; exposed for tests.
inline sim::SlabPool<RequestTrace>& trace_pool() {
  thread_local sim::SlabPool<RequestTrace> pool;
  return pool;
}

}  // namespace ntier::trace
