// Requests and the micro-level event trace.
//
// A Request is created by a client, traverses the tier chain, and flows
// back. Per the paper's methodology, "all the messages exchanged between
// servers are timestamped" — the trace records every admission, drop,
// and completion so experiments can do micro-level event analysis.
//
// Requests are slab-pooled (sim/slab_pool.h): RequestPtr is an
// intrusively refcounted PoolRef, so the steady-state issue/settle cycle
// reuses warmed slots instead of hitting the allocator once per request
// (shared_ptr cost one object + one control block each). Stale handles
// are caught by the pool's generation check in debug builds. The pool is
// thread-local: one simulation runs on one thread (the sweep engine's
// worker model), and thread_local storage outlives every stack-owned
// experiment, so refs can never dangle past their pool.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/inline_fn.h"
#include "sim/slab_pool.h"
#include "sim/time.h"
#include "trace/span.h"

namespace ntier::server {

struct Request {
  std::uint64_t id = 0;
  std::size_t class_index = 0;  // into AppProfile::classes
  sim::Time issued;             // client send time
  sim::Time completed;          // client receive time (set by client)
  int total_drops = 0;          // packet drops suffered across all hops
  bool failed = false;          // abandoned after max retransmissions
  // Client-side first-winner guard: set when the issuing client settles
  // the request (reply, timeout, or connection failure) so later
  // stragglers are discarded. Lives here rather than in a per-request
  // heap cell so the ungoverned client path stays allocation-free.
  bool settled = false;

  // --- tail-tolerance metadata (see policy/tail_policy.h) ---------------
  // Absolute completion budget, propagated across every tier: a server
  // admitting the request after this instant cancels it instead of
  // queueing it. Time::max() = no deadline.
  sim::Time deadline = sim::Time::max();
  bool deadline_expired = false;  // cancelled because the budget ran out
  int app_retries = 0;            // policy-layer re-sends (not TCP retransmits)
  int hedge_copies = 0;           // duplicate copies issued by hedging

  bool has_deadline() const { return deadline != sim::Time::max(); }

  // --- overload-control metadata (see policy/overload/overload.h) -------
  // Set (together with `failed`) by a tier that shed this request with an
  // immediate error reply. The upstream governed sender treats the reply
  // as a *retryable* rejection: it clears both flags and routes the
  // attempt through its retry policy (spending retry budget) instead of
  // settling the request.
  bool overload_shed = false;
  // Brownout: a tier under pressure marked the request for the cheap
  // degraded response; every tier skips its kDownstream steps for it.
  bool degraded = false;

  // Micro-level event trace (enabled per experiment; costs memory).
  struct Stamp {
    std::string where;  // "apache:admit", "tomcat:drop", "client:send", ...
    sim::Time at;
  };
  std::vector<Stamp> trace;
  bool tracing = false;

  void stamp(std::string where, sim::Time at) {
    if (tracing) trace.push_back(Stamp{std::move(where), at});
  }
  // Two-piece form: the "<tier>:<event>" label is concatenated only when
  // the micro-trace is on, so untraced hot paths do no string work.
  void stamp(const std::string& prefix, const char* suffix, sim::Time at) {
    if (tracing) trace.push_back(Stamp{prefix + suffix, at});
  }

  // --- distributed-tracing span tree (see trace/span.h) ------------------
  // Null unless the run's Tracer sampled this request. The tree is the
  // trace context: it travels with the request across every tier, and
  // each layer hangs its spans under the parent span id carried by the
  // Job that delivered the request (W3C-style propagation, in-process).
  trace::TracePtr spans;

  bool traced() const { return spans != nullptr; }

  sim::Duration latency() const { return completed - issued; }
};

using RequestPtr = sim::PoolRef<Request>;

// Thread-local slab pool backing make_request(); exposed so tests and
// benches can inspect occupancy / pre-warm it.
inline sim::SlabPool<Request>& request_pool() {
  thread_local sim::SlabPool<Request> pool;
  return pool;
}

// Creates a fresh (value-initialized) pooled Request. Allocates only
// while the pool grows to the run's in-flight high-water mark.
inline RequestPtr make_request() { return request_pool().make(); }

// One unit of work offered to a server: the request plus the way back.
// `reply` is invoked by the serving tier when its work (including all
// downstream work) finishes; the *sender* embeds any return-path latency
// inside the callback.
struct Job {
  // Reply callbacks capture at most a few handles; 48 inline bytes.
  using ReplyFn = sim::InlineFn<void(const RequestPtr&)>;

  RequestPtr req;
  ReplyFn reply;
  // Trace-context propagation: the sender's span this hop nests under
  // (the client's root span, or the sender's downstream-wait span).
  // trace::kNoSpan when the request is untraced.
  std::uint64_t parent_span = trace::kNoSpan;
};

// Pool for Jobs whose reply must be deferred through the event queue
// (deadline cancels, load-shed errors): a whole Job exceeds the EventFn
// inline budget, so the event captures a 16-byte ref instead.
inline sim::SlabPool<Job>& job_pool() {
  thread_local sim::SlabPool<Job> pool;
  return pool;
}

// No-op-safe span helpers: every instrumentation site goes through
// these, so untraced requests pay one pointer test and nothing else
// (site strings are copied only when the request is traced).
inline std::uint64_t trace_open(const RequestPtr& r, trace::SpanKind k,
                                const std::string& site, std::uint64_t parent,
                                sim::Time begin, int detail = 0) {
  if (!r->traced()) return trace::kNoSpan;
  return r->spans->open(k, site, parent, begin, detail);
}
inline void trace_close(const RequestPtr& r, std::uint64_t id, sim::Time end) {
  if (r->traced()) r->spans->close(id, end);
}
inline void trace_add(const RequestPtr& r, trace::SpanKind k,
                      const std::string& site, std::uint64_t parent,
                      sim::Time begin, sim::Time end, int detail = 0) {
  if (r->traced()) r->spans->add(k, site, parent, begin, end, detail);
}
inline void trace_instant(const RequestPtr& r, trace::SpanKind k,
                          const std::string& site, std::uint64_t parent,
                          sim::Time at, int detail = 0) {
  if (r->traced()) r->spans->instant(k, site, parent, at, detail);
}
// The request's root span id (the client opens it first), or kNoSpan.
inline std::uint64_t trace_root(const RequestPtr& r) {
  return (r->traced() && !r->spans->empty()) ? r->spans->root().id
                                             : trace::kNoSpan;
}

}  // namespace ntier::server
