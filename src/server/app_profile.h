// Application profile: what each request class costs at each tier.
//
// Substitutes for the RUBBoS servlet/database code. Demands are chosen so
// the simulated operating points match the paper's (DESIGN.md §5): with a
// 7 s mean think time, WL 4000/7000/8000 clients give ~572/990/1103 req/s
// and 43/75/85 % utilization of the bottleneck (app tier) CPU.
//
// The app-tier CPU is split into pre-query and post-query halves. The
// split matters for Fig 9: an event-driven app server dispatches a
// request's DB query after only the *pre* work, so after a
// millibottleneck it floods the DB tier far faster than the DB drains —
// the batch-release downstream CTQO.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.h"
#include "sim/time.h"

namespace ntier::server {

struct RequestClassProfile {
  std::string name;
  bool is_static = false;   // served entirely by the web tier
  double weight = 1.0;      // relative frequency in the mix

  sim::Duration web_pre;    // web tier work before forwarding
  sim::Duration web_post;   // web tier work after the app reply
  sim::Duration app_pre;    // app tier work before the first DB query
  sim::Duration app_post;   // app tier work after the last DB reply
  int db_queries = 1;       // sequential queries per request
  sim::Duration db_cpu;     // DB CPU per query
  sim::Duration db_io;      // DB disk service per query
};

struct AppProfile {
  std::vector<RequestClassProfile> classes;

  // RUBBoS-like browse mix: static content, StoriesOfTheDay (light) and
  // ViewStory (heavier, the class SysBursty batches).
  static AppProfile rubbos();

  // Weighted class draw.
  std::size_t pick(sim::Rng& rng) const;
  const RequestClassProfile& at(std::size_t i) const { return classes.at(i); }
  std::size_t index_of(const std::string& name) const;

  // Mean app-tier CPU demand per request (bottleneck-tier utilization
  // predictor: util = throughput * this).
  sim::Duration mean_app_cpu() const;
};

// --- tier-local work programs -------------------------------------------

struct WorkStep {
  enum class Kind { kCpu, kDisk, kDownstream };
  Kind kind = Kind::kCpu;
  sim::Duration amount;  // CPU demand or disk service time
};

using Program = std::vector<WorkStep>;

// The program a web-tier server runs for a class (static classes have no
// downstream step).
Program web_program(const RequestClassProfile& c);
// App-tier: pre CPU, then per query a downstream step followed by a slice
// of the post work.
Program app_program(const RequestClassProfile& c);
// DB-tier: CPU then disk (disk step omitted when db_io == 0).
Program db_program(const RequestClassProfile& c);

}  // namespace ntier::server
