#include "server/staged_server.h"

#include <cassert>

namespace ntier::server {

sim::SlabPool<StagedServer::Ctx>& StagedServer::ctx_pool() {
  thread_local sim::SlabPool<Ctx> pool;
  return pool;
}

StagedServer::StagedServer(sim::Simulation& sim, std::string name, cpu::VmCpu* vm,
                           const AppProfile* profile,
                           std::function<Program(const RequestClassProfile&)> program_fn,
                           StagedConfig cfg)
    : Server(sim, std::move(name), vm, profile, std::move(program_fn)),
      cfg_(cfg),
      site_ingress_(name_ + ":ingress"),
      site_cont_(name_ + ":cont") {
  assert(cfg.ingress.threads > 0 && cfg.continuation.threads > 0);
}

bool StagedServer::do_offer(Job job) {
  note_offer();
  if (ingress_q_.size() >= cfg_.ingress.queue_cap) {
    note_drop();
    job.req->stamp(name_, ":drop", sim_.now());
    trace_instant(job.req, trace::SpanKind::kDrop, name_, job.parent_span,
                  sim_.now(), /*detail=*/0);
    return false;
  }
  note_accept();
  job.req->stamp(name_, ":admit", sim_.now());
  CtxPtr ctx = ctx_pool().make();
  ctx->prog = &program_for(*job.req);
  ctx->job = std::move(job);
  ctx->hop = trace_open(ctx->job.req, trace::SpanKind::kHop, name_,
                        ctx->job.parent_span, sim_.now());
  ctx->qspan = trace_open(ctx->job.req, trace::SpanKind::kPoolQueue,
                          site_ingress_, ctx->hop, sim_.now());
  ctx->enq = sim_.now();
  ingress_q_.push_back(std::move(ctx));
  pump();
  return true;
}

void StagedServer::abort_queued() {
  while (!ingress_q_.empty()) {
    CtxPtr ctx = std::move(ingress_q_.front());
    ingress_q_.pop_front();
    trace_close(ctx->job.req, ctx->qspan, sim_.now());
    trace_close(ctx->job.req, ctx->hop, sim_.now());
    abort_job(std::move(ctx->job));
  }
}

void StagedServer::pump() {
  // Continuation stage first: completing in-flight work frees memory and
  // replies upstream (SEDA's output stages run ahead of accept stages).
  while (cont_active_ < cfg_.continuation.threads && !cont_q_.empty()) {
    CtxPtr ctx = std::move(cont_q_.front());
    cont_q_.pop_front();
    ++cont_active_;
    trace_close(ctx->job.req, ctx->qspan, sim_.now());
    ctx->qspan = trace::kNoSpan;
    run_step(ctx, /*continuation_stage=*/true);
  }
  while (ingress_active_ < cfg_.ingress.threads && !ingress_q_.empty()) {
    // Ingress (fresh arrivals) goes through the overload queue
    // discipline; continuation work above is committed, never shed.
    auto next = policy::overload::pop_next(
        overload(), ingress_q_, sim_.now(),
        [](const CtxPtr& c) { return c->enq; },
        [this](CtxPtr c) {
          trace_close(c->job.req, c->qspan, sim_.now());
          trace_close(c->job.req, c->hop, sim_.now());
          shed_job(std::move(c->job), /*accepted=*/true, /*detail=*/2);
        });
    if (!next) break;
    CtxPtr ctx = std::move(*next);
    ++ingress_active_;
    trace_close(ctx->job.req, ctx->qspan, sim_.now());
    ctx->qspan = trace::kNoSpan;
    run_step(ctx, /*continuation_stage=*/false);
  }
}

void StagedServer::run_step(const CtxPtr& ctx, bool continuation_stage) {
  if (ctx->pc >= ctx->prog->size()) {
    finish(ctx, continuation_stage);
    return;
  }
  const WorkStep& step = (*ctx->prog)[ctx->pc];
  switch (step.kind) {
    case WorkStep::Kind::kCpu: {
      if (step.amount <= sim::Duration::zero()) {
        ++ctx->pc;
        run_step(ctx, continuation_stage);
        return;
      }
      const std::uint64_t sp = trace_open(ctx->job.req, trace::SpanKind::kService,
                                          name_, ctx->hop, sim_.now());
      vm_->submit(step.amount, [this, ctx, sp, continuation_stage] {
        trace_close(ctx->job.req, sp, sim_.now());
        ++ctx->pc;
        run_step(ctx, continuation_stage);
      });
      return;
    }
    case WorkStep::Kind::kDisk: {
      assert(io_ != nullptr && "kDisk step requires attach_io()");
      const std::uint64_t sp = trace_open(ctx->job.req, trace::SpanKind::kDisk,
                                          name_, ctx->hop, sim_.now());
      io_->submit_service(step.amount, [this, ctx, sp, continuation_stage] {
        trace_close(ctx->job.req, sp, sim_.now());
        ++ctx->pc;
        run_step(ctx, continuation_stage);
      });
      return;
    }
    case WorkStep::Kind::kDownstream: {
      if (ctx->job.req->degraded) {
        // Brownout: the degraded response skips the downstream chain
        // while keeping its stage slot (no work left to wait on).
        ++ctx->pc;
        run_step(ctx, continuation_stage);
        return;
      }
      // Release this stage's slot; the reply re-enters via the
      // continuation queue (unbounded: the request is already ours).
      if (continuation_stage) {
        --cont_active_;
      } else {
        --ingress_active_;
      }
      dispatch_downstream(ctx->job.req, ctx->hop, [this, ctx] {
        ++ctx->pc;
        ctx->qspan = trace_open(ctx->job.req, trace::SpanKind::kPoolQueue,
                                site_cont_, ctx->hop, sim_.now());
        cont_q_.push_back(ctx);
        pump();
      });
      pump();
      return;
    }
  }
}

void StagedServer::finish(const CtxPtr& ctx, bool continuation_stage) {
  note_reply();
  ctx->job.req->stamp(name_, ":reply", sim_.now());
  trace_close(ctx->job.req, ctx->hop, sim_.now());
  ctx->job.reply(ctx->job.req);
  if (continuation_stage) {
    --cont_active_;
  } else {
    --ingress_active_;
  }
  pump();
}

}  // namespace ntier::server
