#include "server/sync_server.h"

#include <algorithm>
#include <cassert>
#include <iterator>

namespace ntier::server {

sim::SlabPool<SyncServer::Ctx>& SyncServer::ctx_pool() {
  thread_local sim::SlabPool<Ctx> pool;
  return pool;
}

SyncServer::SyncServer(sim::Simulation& sim, std::string name, cpu::VmCpu* vm,
                       const AppProfile* profile,
                       std::function<Program(const RequestClassProfile&)> program_fn,
                       SyncConfig cfg)
    : Server(sim, std::move(name), vm, profile, std::move(program_fn)),
      cfg_(cfg),
      site_dbpool_(name_ + ":dbpool"),
      site_cookie_(name_ + ":syncookie"),
      threads_(cfg.threads_per_process),
      accept_q_(cfg.backlog) {
  assert(cfg.threads_per_process > 0);
  accept_q_.set_mode(cfg_.admission);
  if (cfg_.db_pool > 0) pool_ = std::make_unique<ConnectionPool>(cfg_.db_pool);
  arm_gc(sim_, *vm_, cfg_.overhead, [this] { return busy_; });
}

bool SyncServer::do_offer(Job job) {
  note_offer();
  if (busy_ < threads_) {
    note_accept();
    job.req->stamp(name_, ":admit", sim_.now());
    const std::uint64_t hop = trace_open(job.req, trace::SpanKind::kHop, name_,
                                         job.parent_span, sim_.now());
    start(std::move(job), hop);
    return true;
  }
  const auto admit = accept_q_.try_admit(sim_.now());
  if (admit != net::TcpQueue::Admit::kDrop) {
    note_accept();
    job.req->stamp(name_, ":backlog", sim_.now());
    Queued q;
    q.hop = trace_open(job.req, trace::SpanKind::kHop, name_, job.parent_span,
                       sim_.now());
    q.qspan = trace_open(job.req, trace::SpanKind::kAcceptQueue, name_, q.hop,
                         sim_.now());
    q.enq = sim_.now();
    q.cookie = (admit == net::TcpQueue::Admit::kCookie);
    q.job = std::move(job);
    backlog_q_.push_back(std::move(q));
    check_spawn();
    return true;
  }
  if (cfg_.shed_on_overload) {
    // Fail fast: a canned overload error costs no worker and no queue
    // slot; the sender sees an accepted-and-answered request.
    ++shed_;
    job.req->failed = true;
    job.req->stamp(name_, ":shed", sim_.now());
    trace_instant(job.req, trace::SpanKind::kDrop, name_, job.parent_span,
                  sim_.now(), /*detail=*/2);
    auto jr = job_pool().make(std::move(job));
    sim_.after(sim::Duration::micros(50), [jr] { jr->reply(jr->req); },
               sim::SchedClass::kTimer);
    check_spawn();
    return true;
  }
  note_drop();
  job.req->stamp(name_, ":drop", sim_.now());
  trace_instant(job.req, trace::SpanKind::kDrop, name_, job.parent_span,
                sim_.now(), /*detail=*/0);
  check_spawn();
  return false;
}

void SyncServer::start(Job job, std::uint64_t hop, bool cookie) {
  ++busy_;
  if (busy_ == threads_ && exhausted_since_ == sim::Time::max())
    exhausted_since_ = sim_.now();
  CtxPtr ctx = ctx_pool().make();
  ctx->prog = &program_for(*job.req);
  ctx->job = std::move(job);
  ctx->hop = hop;
  if (cookie && cfg_.cookie_penalty > sim::Duration::zero()) {
    // SYN-cookie slow path: the worker reconstructs the connection state
    // (cookie decode, option recovery) before the request program runs —
    // the "accepted but slow" cost that replaced the drop.
    const std::uint64_t sp = trace_open(ctx->job.req, trace::SpanKind::kService,
                                        site_cookie_, ctx->hop, sim_.now());
    vm_->submit(cfg_.cookie_penalty, [this, ctx, sp] {
      trace_close(ctx->job.req, sp, sim_.now());
      run_step(ctx);
    });
    return;
  }
  run_step(ctx);
}

void SyncServer::start_queued(Queued q) {
  trace_close(q.job.req, q.qspan, sim_.now());
  start(std::move(q.job), q.hop, q.cookie);
}

void SyncServer::run_step(const CtxPtr& ctx) {
  if (ctx->pc >= ctx->prog->size()) {
    finish(ctx);
    return;
  }
  const WorkStep& step = (*ctx->prog)[ctx->pc];
  switch (step.kind) {
    case WorkStep::Kind::kCpu: {
      if (step.amount <= sim::Duration::zero()) {
        ++ctx->pc;
        run_step(ctx);
        return;
      }
      const auto demand = cfg_.overhead.inflate(step.amount, busy_);
      // The service span includes CPU-contention stall (demand vs wall
      // time inside VmCpu) — it measures occupancy, not pure work.
      const std::uint64_t sp = trace_open(ctx->job.req, trace::SpanKind::kService,
                                          name_, ctx->hop, sim_.now());
      vm_->submit(demand, [this, ctx, sp] {
        trace_close(ctx->job.req, sp, sim_.now());
        ++ctx->pc;
        run_step(ctx);
      });
      return;
    }
    case WorkStep::Kind::kDisk: {
      assert(io_ != nullptr && "kDisk step requires attach_io()");
      const std::uint64_t sp = trace_open(ctx->job.req, trace::SpanKind::kDisk,
                                          name_, ctx->hop, sim_.now());
      io_->submit_service(step.amount, [this, ctx, sp] {
        trace_close(ctx->job.req, sp, sim_.now());
        ++ctx->pc;
        run_step(ctx);
      });
      return;
    }
    case WorkStep::Kind::kDownstream: {
      if (ctx->job.req->degraded) {
        // Brownout: the degraded response skips the downstream chain.
        ++ctx->pc;
        run_step(ctx);
        return;
      }
      if (pool_) {
        // The worker thread blocks until a DB connection frees — this
        // wait is still *inside* the server (counted in queued_requests).
        ctx->sp = trace_open(ctx->job.req, trace::SpanKind::kPoolQueue,
                             site_dbpool_, ctx->hop, sim_.now());
        pool_->acquire([this, ctx] {
          trace_close(ctx->job.req, ctx->sp, sim_.now());
          ctx->sp = trace::kNoSpan;
          begin_downstream(ctx);
        });
      } else {
        begin_downstream(ctx);
      }
      return;
    }
  }
}

void SyncServer::begin_downstream(const CtxPtr& ctx) {
  dispatch_downstream(ctx->job.req, ctx->hop, [this, ctx] {
    if (pool_) pool_->release();
    ++ctx->pc;
    run_step(ctx);
  });
}

void SyncServer::finish(const CtxPtr& ctx) {
  note_reply();
  ctx->job.req->stamp(name_, ":reply", sim_.now());
  trace_close(ctx->job.req, ctx->hop, sim_.now());
  ctx->job.reply(ctx->job.req);
  worker_freed();
}

std::optional<SyncServer::Queued> SyncServer::take_from_backlog() {
  if (cfg_.edf && backlog_q_.size() > 1) {
    // EDF: rotate the earliest-deadline entry to the front so the FIFO
    // pop below (and the overload layer's sojourn accounting) serves
    // it. Time::max() (no deadline) naturally ranks last; strict <
    // keeps the FIFO order among equal deadlines.
    auto best = backlog_q_.begin();
    for (auto it = std::next(backlog_q_.begin()); it != backlog_q_.end(); ++it)
      if (it->job.req->deadline < best->job.req->deadline) best = it;
    if (best != backlog_q_.begin())
      std::rotate(backlog_q_.begin(), best, std::next(best));
  }
  return policy::overload::pop_next(
      overload(), backlog_q_, sim_.now(),
      [](const Queued& q) { return q.enq; },
      [this](Queued q) {
        accept_q_.pop();
        trace_close(q.job.req, q.qspan, sim_.now());
        trace_close(q.job.req, q.hop, sim_.now());
        shed_job(std::move(q.job), /*accepted=*/true, /*detail=*/2);
      });
}

void SyncServer::worker_freed() {
  --busy_;
  if (!backlog_q_.empty()) {
    if (auto next = take_from_backlog()) {
      accept_q_.pop();
      start_queued(std::move(*next));
    }
  }
  // The pool stays "exhausted" if the backlog immediately refilled the
  // freed worker; the timer only resets when capacity truly opened up.
  if (busy_ < threads_) exhausted_since_ = sim::Time::max();
}

void SyncServer::abort_queued() {
  while (!backlog_q_.empty()) {
    Queued q = std::move(backlog_q_.front());
    backlog_q_.pop_front();
    accept_q_.pop();
    trace_close(q.job.req, q.qspan, sim_.now());
    trace_close(q.job.req, q.hop, sim_.now());
    abort_job(std::move(q.job));
  }
  // Workers currently executing keep running (their state is lost to the
  // client anyway once the reply path refuses, but the simulation lets
  // them drain to keep CPU accounting simple).
}

void SyncServer::check_spawn() {
  if (processes_ >= cfg_.max_processes) return;
  if (exhausted_since_ == sim::Time::max()) return;
  if (sim_.now() - exhausted_since_ < cfg_.process_spawn_after) return;
  // Apache prefork: bring up another process worth of workers and let
  // them drain the backlog immediately.
  ++processes_;
  threads_ += cfg_.threads_per_process;
  exhausted_since_ = sim_.now();  // exhaustion timer restarts for the larger pool
  while (busy_ < threads_ && !backlog_q_.empty()) {
    auto next = take_from_backlog();
    if (!next) break;
    accept_q_.pop();
    start_queued(std::move(*next));
  }
}

}  // namespace ntier::server
