#include "server/sync_server.h"

#include <cassert>

namespace ntier::server {

SyncServer::SyncServer(sim::Simulation& sim, std::string name, cpu::VmCpu* vm,
                       const AppProfile* profile,
                       std::function<Program(const RequestClassProfile&)> program_fn,
                       SyncConfig cfg)
    : Server(sim, std::move(name), vm, profile, std::move(program_fn)),
      cfg_(cfg),
      threads_(cfg.threads_per_process),
      accept_q_(cfg.backlog) {
  assert(cfg.threads_per_process > 0);
  if (cfg_.db_pool > 0) pool_ = std::make_unique<ConnectionPool>(cfg_.db_pool);
  arm_gc(sim_, *vm_, cfg_.overhead, [this] { return busy_; });
}

bool SyncServer::do_offer(Job job) {
  note_offer();
  if (busy_ < threads_) {
    note_accept();
    job.req->stamp(name_ + ":admit", sim_.now());
    start(std::move(job));
    return true;
  }
  if (accept_q_.try_push(sim_.now())) {
    note_accept();
    job.req->stamp(name_ + ":backlog", sim_.now());
    backlog_q_.push_back(std::move(job));
    check_spawn();
    return true;
  }
  if (cfg_.shed_on_overload) {
    // Fail fast: a canned overload error costs no worker and no queue
    // slot; the sender sees an accepted-and-answered request.
    ++shed_;
    job.req->failed = true;
    job.req->stamp(name_ + ":shed", sim_.now());
    sim_.after(sim::Duration::micros(50),
               [job = std::move(job)] { job.reply(job.req); });
    check_spawn();
    return true;
  }
  note_drop();
  job.req->stamp(name_ + ":drop", sim_.now());
  check_spawn();
  return false;
}

void SyncServer::start(Job job) {
  ++busy_;
  if (busy_ == threads_ && exhausted_since_ == sim::Time::max())
    exhausted_since_ = sim_.now();
  auto ctx = std::make_shared<Ctx>();
  ctx->prog = program_for(*job.req);
  ctx->job = std::move(job);
  run_step(ctx);
}

void SyncServer::run_step(const std::shared_ptr<Ctx>& ctx) {
  if (ctx->pc >= ctx->prog.size()) {
    finish(ctx);
    return;
  }
  const WorkStep& step = ctx->prog[ctx->pc];
  switch (step.kind) {
    case WorkStep::Kind::kCpu: {
      if (step.amount <= sim::Duration::zero()) {
        ++ctx->pc;
        run_step(ctx);
        return;
      }
      const auto demand = cfg_.overhead.inflate(step.amount, busy_);
      vm_->submit(demand, [this, ctx] {
        ++ctx->pc;
        run_step(ctx);
      });
      return;
    }
    case WorkStep::Kind::kDisk: {
      assert(io_ != nullptr && "kDisk step requires attach_io()");
      io_->submit_service(step.amount, [this, ctx] {
        ++ctx->pc;
        run_step(ctx);
      });
      return;
    }
    case WorkStep::Kind::kDownstream: {
      auto go = [this, ctx] {
        dispatch_downstream(ctx->job.req, [this, ctx] {
          if (pool_) pool_->release();
          ++ctx->pc;
          run_step(ctx);
        });
      };
      if (pool_) {
        // The worker thread blocks until a DB connection frees — this
        // wait is still *inside* the server (counted in queued_requests).
        pool_->acquire(std::move(go));
      } else {
        go();
      }
      return;
    }
  }
}

void SyncServer::finish(const std::shared_ptr<Ctx>& ctx) {
  note_reply();
  ctx->job.req->stamp(name_ + ":reply", sim_.now());
  ctx->job.reply(ctx->job.req);
  worker_freed();
}

void SyncServer::worker_freed() {
  --busy_;
  if (!backlog_q_.empty()) {
    Job next = std::move(backlog_q_.front());
    backlog_q_.pop_front();
    accept_q_.pop();
    start(std::move(next));
  }
  // The pool stays "exhausted" if the backlog immediately refilled the
  // freed worker; the timer only resets when capacity truly opened up.
  if (busy_ < threads_) exhausted_since_ = sim::Time::max();
}

void SyncServer::abort_queued() {
  while (!backlog_q_.empty()) {
    Job job = std::move(backlog_q_.front());
    backlog_q_.pop_front();
    accept_q_.pop();
    abort_job(std::move(job));
  }
  // Workers currently executing keep running (their state is lost to the
  // client anyway once the reply path refuses, but the simulation lets
  // them drain to keep CPU accounting simple).
}

void SyncServer::check_spawn() {
  if (processes_ >= cfg_.max_processes) return;
  if (exhausted_since_ == sim::Time::max()) return;
  if (sim_.now() - exhausted_since_ < cfg_.process_spawn_after) return;
  // Apache prefork: bring up another process worth of workers and let
  // them drain the backlog immediately.
  ++processes_;
  threads_ += cfg_.threads_per_process;
  exhausted_since_ = sim_.now();  // exhaustion timer restarts for the larger pool
  while (busy_ < threads_ && !backlog_q_.empty()) {
    Job next = std::move(backlog_q_.front());
    backlog_q_.pop_front();
    accept_q_.pop();
    start(std::move(next));
  }
}

}  // namespace ntier::server
