// AsyncServer: event-driven server (Nginx, XTomcat, XMySQL/InnoDB).
//
// No thread is held across a downstream call: a request parks in the
// server while its query is outstanding, and a lightweight queue of
// LiteQDepth (65535 connections for Nginx/XTomcat, 2000 InnoDB wait
// slots for XMySQL) bounds admission — in practice never reached, so
// the server does not drop packets during millibottlenecks. The flip
// side reproduced here: after a freeze ends, all parked requests
// dispatch their downstream queries nearly at once (only the small
// `pre` CPU in front), flooding a synchronous downstream tier — the
// batch-release downstream CTQO of Fig 9.
#pragma once

#include <deque>
#include <memory>

#include "server/server_base.h"

namespace ntier::server {

struct AsyncConfig {
  // Admission bound (the paper's LiteQDepth).
  std::size_t lite_q_depth = 65535;
  // Concurrent requests allowed in a CPU/disk processing step. InnoDB
  // runs 8 worker threads; pure event loops are effectively unbounded
  // (set high).
  std::size_t max_active = 4096;
};

class AsyncServer : public Server {
 public:
  AsyncServer(sim::Simulation& sim, std::string name, cpu::VmCpu* vm,
              const AppProfile* profile,
              std::function<Program(const RequestClassProfile&)> program_fn,
              AsyncConfig cfg);

  std::size_t busy_workers() const override { return active_; }
  std::size_t backlog_depth() const override { return wait_q_.size() + resume_q_.size(); }
  std::size_t max_sys_q_depth() const override { return cfg_.lite_q_depth; }
  std::size_t lite_q_depth() const { return cfg_.lite_q_depth; }
  const AsyncConfig& config() const { return cfg_; }

 protected:
  bool do_offer(Job job) override;
  // Crash: parked-but-unstarted connections are reset with a failure
  // reply; work already in a processing step drains.
  void abort_queued() override;

 private:
  // Per-admission execution state, slab-pooled (closures capture a
  // 16-byte CtxPtr; the Program is shared per class).
  struct Ctx {
    Job job;
    const Program* prog = nullptr;
    std::size_t pc = 0;
    std::uint64_t hop = trace::kNoSpan;    // this server's visit span
    std::uint64_t qspan = trace::kNoSpan;  // open run-queue wait, if parked
    sim::Time enq{};  // wait-queue entry time (overload sojourn accounting)
  };
  using CtxPtr = sim::PoolRef<Ctx>;

  static sim::SlabPool<Ctx>& ctx_pool();
  void pump();
  void run_step(const CtxPtr& ctx);  // holds an active slot
  void release_slot() { --active_; }

  AsyncConfig cfg_;
  std::size_t active_ = 0;
  std::deque<CtxPtr> wait_q_;    // admitted, not yet started
  std::deque<CtxPtr> resume_q_;  // downstream reply arrived, continue
};

}  // namespace ntier::server
