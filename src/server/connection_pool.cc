#include "server/connection_pool.h"

namespace ntier::server {

void ConnectionPool::acquire(sim::EventFn granted) {
  if (in_use_ < size_) {
    ++in_use_;
    ++grants_;
    granted();
    return;
  }
  waiters_.push_back(std::move(granted));
}

void ConnectionPool::release() {
  if (!waiters_.empty()) {
    auto next = std::move(waiters_.front());
    waiters_.pop_front();
    ++grants_;
    next();  // connection stays in_use_, handed over directly
    return;
  }
  if (in_use_ > 0) --in_use_;
}

}  // namespace ntier::server
