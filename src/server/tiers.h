// Tier presets: the six concrete servers of the paper with their
// published configuration (Fig 13 + §III-§V numbers).
//
//   Apache  — sync web,  150 threads/process, up to 2 processes, backlog 128
//   Tomcat  — sync app,  150 threads (165 in the NX=1 runs), DB pool 50
//   MySQL   — sync DB,   100 threads, backlog 128
//   Nginx   — async web, LiteQDepth 65535
//   XTomcat — async app, LiteQDepth 65535 (NIO + async JDBC: no DB pool)
//   XMySQL  — MySQL/InnoDB lightweight queue: 8 threads + 2000 wait slots
#pragma once

#include <memory>

#include "server/async_server.h"
#include "server/sync_server.h"

namespace ntier::server::tiers {

SyncConfig apache_config();
SyncConfig tomcat_config(std::size_t threads = 150);
SyncConfig mysql_config();
AsyncConfig nginx_config();
AsyncConfig xtomcat_config();
AsyncConfig xmysql_config();

std::unique_ptr<SyncServer> make_apache(sim::Simulation& sim, cpu::VmCpu* vm,
                                        const AppProfile* profile,
                                        SyncConfig cfg = apache_config());
std::unique_ptr<SyncServer> make_tomcat(sim::Simulation& sim, cpu::VmCpu* vm,
                                        const AppProfile* profile,
                                        SyncConfig cfg = tomcat_config());
std::unique_ptr<SyncServer> make_mysql(sim::Simulation& sim, cpu::VmCpu* vm,
                                       const AppProfile* profile,
                                       SyncConfig cfg = mysql_config());
std::unique_ptr<AsyncServer> make_nginx(sim::Simulation& sim, cpu::VmCpu* vm,
                                        const AppProfile* profile,
                                        AsyncConfig cfg = nginx_config());
std::unique_ptr<AsyncServer> make_xtomcat(sim::Simulation& sim, cpu::VmCpu* vm,
                                          const AppProfile* profile,
                                          AsyncConfig cfg = xtomcat_config());
std::unique_ptr<AsyncServer> make_xmysql(sim::Simulation& sim, cpu::VmCpu* vm,
                                         const AppProfile* profile,
                                         AsyncConfig cfg = xmysql_config());

}  // namespace ntier::server::tiers
