// Blocking connection pool (Tomcat's JDBC pool, size 50 in the paper).
//
// The pool is the hidden queue bound between app and DB tier in the
// synchronous system: at most `size` queries can be in flight to MySQL,
// which is why sync MySQL never overflows — the overflow surfaces
// upstream instead (upstream CTQO, paper §V-B).
#pragma once

#include <cstdint>
#include <deque>

#include "sim/event_queue.h"

namespace ntier::server {

class ConnectionPool {
 public:
  explicit ConnectionPool(std::size_t size) : size_(size) {}

  // Calls `granted` when a connection is available (possibly
  // immediately, synchronously). FIFO among waiters.
  void acquire(sim::EventFn granted);

  // Returns a connection; hands it to the oldest waiter if any.
  void release();

  std::size_t size() const { return size_; }
  std::size_t in_use() const { return in_use_; }
  std::size_t waiting() const { return waiters_.size(); }
  std::uint64_t total_grants() const { return grants_; }

 private:
  std::size_t size_;
  std::size_t in_use_ = 0;
  std::uint64_t grants_ = 0;
  std::deque<sim::EventFn> waiters_;
};

}  // namespace ntier::server
