// Server: common machinery for every tier server model.
//
// A server admits Jobs (offer); admission can fail — that is a dropped
// packet, the central event of the paper. Each server runs on a VmCpu,
// may own an IoDevice for its disk steps, and may have one downstream
// server reached through a retransmitting Transport (the RPC chain).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cpu/host_core.h"
#include "cpu/io_device.h"
#include "net/link.h"
#include "net/rto_policy.h"
#include "net/transport.h"
#include "server/app_profile.h"
#include "server/request.h"
#include "sim/simulation.h"

namespace ntier::server {

class Server {
 public:
  struct Stats {
    std::uint64_t offered = 0;    // admission attempts (incl. retransmits)
    std::uint64_t accepted = 0;   // jobs admitted
    std::uint64_t dropped = 0;    // admission refusals (dropped packets)
    std::uint64_t completed = 0;  // jobs replied
    std::uint64_t failed = 0;     // downstream sends abandoned
  };

  // `program_fn` maps a request class to this tier's work program.
  Server(sim::Simulation& sim, std::string name, cpu::VmCpu* vm, const AppProfile* profile,
         std::function<Program(const RequestClassProfile&)> program_fn);
  virtual ~Server() = default;
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Attempts to admit one job. Returns false when the packet is dropped
  // (sender will retransmit per its RtoPolicy).
  virtual bool offer(Job job) = 0;

  // Wires the downstream hop of the RPC/async chain.
  void connect_downstream(Server* next, net::RtoPolicy rto, net::Link link);
  // Attaches a disk for kDisk steps (DB tier, collectl flush target).
  void attach_io(cpu::IoDevice* dev) { io_ = dev; }

  // --- observability -----------------------------------------------------
  const std::string& name() const { return name_; }
  cpu::VmCpu* vm() const { return vm_; }
  cpu::IoDevice* io() const { return io_; }
  const Stats& stats() const { return stats_; }
  // Total requests inside this server (the paper's "queued requests"
  // per-tier series; bounded by MaxSysQDepth for sync servers).
  std::size_t queued_requests() const { return in_system_; }
  virtual std::size_t busy_workers() const = 0;
  virtual std::size_t backlog_depth() const = 0;
  // Current admission capacity: thread pool + TCP backlog for sync
  // servers (the paper's MaxSysQDepth), LiteQDepth for async ones.
  virtual std::size_t max_sys_q_depth() const = 0;
  // Timestamps of every admission drop at this server.
  const std::vector<sim::Time>& drop_times() const { return drop_times_; }
  net::Transport* downstream_transport() { return transport_ ? transport_.get() : nullptr; }
  Server* downstream() const { return downstream_; }

 protected:
  Program program_for(const Request& r) const {
    return program_fn_(profile_->at(r.class_index));
  }

  void note_offer() { ++stats_.offered; }
  void note_accept() { ++stats_.accepted; ++in_system_; }
  void note_drop() {
    ++stats_.dropped;
    drop_times_.push_back(sim_.now());
  }
  void note_reply() { ++stats_.completed; --in_system_; }

  // Sends the request downstream with retransmission-on-drop; `on_reply`
  // fires after the downstream tier replies (return-link latency
  // included). On permanent failure the request is marked failed and
  // `on_reply` still fires so the chain unwinds.
  void dispatch_downstream(const RequestPtr& req, std::function<void()> on_reply);

  sim::Simulation& sim_;
  std::string name_;
  cpu::VmCpu* vm_;
  cpu::IoDevice* io_ = nullptr;
  const AppProfile* profile_;
  std::function<Program(const RequestClassProfile&)> program_fn_;

  Server* downstream_ = nullptr;
  std::unique_ptr<net::Transport> transport_;

  Stats stats_;
  std::size_t in_system_ = 0;
  std::vector<sim::Time> drop_times_;
};

}  // namespace ntier::server
