// Server: common machinery for every tier server model.
//
// A server admits Jobs (offer); admission can fail — that is a dropped
// packet, the central event of the paper. Each server runs on a VmCpu,
// may own an IoDevice for its disk steps, and may have one downstream
// server reached through a retransmitting Transport (the RPC chain) —
// or, for graph topologies (src/graph), a set of fan-out Routes, each
// with its own transport and a per-attempt replica picker; a
// kDownstream step then contacts every route in parallel and resumes
// at the fan-in barrier.
//
// Three cross-cutting layers hang off this base:
//  - the fault gate (set_down): a crashed server refuses every packet
//    (counted as drops -> sender retransmits) and can abort queued work;
//  - the tail-tolerance policy layer (enable_tail_policy): deadline
//    enforcement at admission, and deadline/retry/hedge/breaker logic on
//    the downstream hop inside dispatch_downstream — note that with a
//    policy enabled a "failed" request can be a breaker fast-fail or a
//    deadline cancel, not only an exhausted retransmission;
//  - the tracing layer (trace/span.h): when a request carries a span
//    tree, every admission records a hop span under the sender-provided
//    Job::parent_span, dispatch_downstream records the downstream-wait
//    span plus RTO-gap and policy-event child spans, and the concrete
//    server models add queue-wait and service spans. Untraced requests
//    skip all of it (null-pointer test per site), and tracing schedules
//    no events and draws no randomness — a traced run is event-for-event
//    identical to an untraced one at the same seed.
//
// Hot-path memory: dispatch bookkeeping (DispatchState, per-attempt
// policy state) is slab-pooled and every callback is an InlineFn, so a
// steady-state request costs no allocations here (docs/PERFORMANCE.md).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cpu/host_core.h"
#include "cpu/io_device.h"
#include "net/link.h"
#include "net/rto_policy.h"
#include "net/tcp_queue.h"
#include "net/transport.h"
#include "policy/overload/overload.h"
#include "policy/tail_policy.h"
#include "server/app_profile.h"
#include "server/request.h"
#include "sim/random.h"
#include "sim/simulation.h"

namespace ntier::server {

namespace detail {
struct DispatchState;  // per-dispatch bookkeeping (slab-pooled)
struct GovAttempt;     // per-attempt policy state (slab-pooled)
struct JoinState;      // fan-out barrier bookkeeping (slab-pooled)
}  // namespace detail

class Server {
 public:
  struct Stats {
    std::uint64_t offered = 0;    // admission attempts (incl. retransmits)
    std::uint64_t accepted = 0;   // jobs admitted
    std::uint64_t dropped = 0;    // admission refusals (dropped packets)
    std::uint64_t completed = 0;  // jobs replied
    // Downstream dispatches that settled as failures: retransmission
    // exhausted, or (policy layer) breaker fast-fail / deadline cancel /
    // retry budget exhausted.
    std::uint64_t failed = 0;
    // --- resilience layer ---
    std::uint64_t refused_down = 0;  // packets refused while crashed
    std::uint64_t expired = 0;       // cancelled at admission: deadline passed
    std::uint64_t aborted = 0;       // queued work reset by a crash
    std::uint64_t ds_retries = 0;    // policy-layer downstream re-sends
    std::uint64_t hedges_sent = 0;   // duplicate downstream copies
  };

  // `program_fn` maps a request class to this tier's work program.
  Server(sim::Simulation& sim, std::string name, cpu::VmCpu* vm, const AppProfile* profile,
         std::function<Program(const RequestClassProfile&)> program_fn);
  virtual ~Server() = default;
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Attempts to admit one job. Returns false when the packet is dropped
  // (sender will retransmit per its RtoPolicy). Applies the crash gate
  // and deadline cancellation before the model-specific admission.
  bool offer(Job job);

  // Wires the downstream hop of the RPC/async chain.
  void connect_downstream(Server* next, net::RtoPolicy rto, net::Link link);

  // --- fan-out routes (graph topologies; src/graph) -----------------------
  // One fan-out edge of a service graph: `pick` selects the destination
  // server for each delivery attempt — replica load balancing re-picks
  // on every retransmit, policy retry, and hedge copy — over the
  // route's own retransmitting Transport. `label` names the edge in
  // trace spans ("front->db").
  struct Route {
    std::function<Server*()> pick;
    std::unique_ptr<net::Transport> transport;
    std::string label;
  };

  // Adds one fan-out route. A server with routes dispatches every
  // kDownstream step to ALL routes in parallel and resumes at the
  // fan-in barrier once the last route settles (a failed route marks
  // the request failed but the barrier still waits for every sibling).
  // Mutually exclusive with connect_downstream, which remains the
  // single-downstream fast path used by chain topologies — a server
  // with no routes runs the exact pre-graph dispatch code.
  void add_route(std::function<Server*()> pick, net::RtoPolicy rto, net::Link link,
                 std::string label);
  std::size_t route_count() const { return routes_.size(); }
  // Route access for telemetry/fault wiring (index < route_count()).
  net::Transport* route_transport(std::size_t i) { return routes_.at(i).transport.get(); }
  const std::string& route_label(std::size_t i) const { return routes_.at(i).label; }
  // Attaches a disk for kDisk steps (DB tier, collectl flush target).
  void attach_io(cpu::IoDevice* dev) { io_ = dev; }

  // --- fault gate (driven by fault::FaultInjector) ------------------------
  // A down server refuses every connection; with abort_queued, work that
  // was admitted but not yet started is answered with a connection-reset
  // failure at crash time (in-flight work lost), otherwise it drains.
  void set_down(bool down, bool abort_queued_work = false);
  bool is_down() const { return down_; }

  // --- tail-tolerance policy for the downstream hop -----------------------
  // `rng` feeds backoff jitter; fork it from the experiment master seed.
  void enable_tail_policy(const policy::TailPolicy& p, sim::Rng rng);
  policy::HopGovernor* governor() { return governor_ ? governor_.get() : nullptr; }
  const policy::HopGovernor* governor() const { return governor_ ? governor_.get() : nullptr; }

  // --- overload control (admission + queue management) --------------------
  // Installs an AdmissionController consulted in offer() (queue cap,
  // token bucket, brownout) and at the model's dequeue sites (CoDel,
  // adaptive-LIFO). No-op for a kNone policy: the run stays event-
  // identical to a build without the overload layer.
  void enable_overload_control(const policy::overload::OverloadPolicy& p);
  policy::overload::AdmissionController* overload() {
    return overload_ ? overload_.get() : nullptr;
  }
  const policy::overload::AdmissionController* overload() const {
    return overload_ ? overload_.get() : nullptr;
  }

  // --- observability -----------------------------------------------------
  const std::string& name() const { return name_; }
  cpu::VmCpu* vm() const { return vm_; }
  cpu::IoDevice* io() const { return io_; }
  const Stats& stats() const { return stats_; }
  // Total requests inside this server (the paper's "queued requests"
  // per-tier series; bounded by MaxSysQDepth for sync servers).
  std::size_t queued_requests() const { return in_system_; }
  virtual std::size_t busy_workers() const = 0;
  virtual std::size_t backlog_depth() const = 0;
  // Current admission capacity: thread pool + TCP backlog for sync
  // servers (the paper's MaxSysQDepth), LiteQDepth for async ones.
  virtual std::size_t max_sys_q_depth() const = 0;
  // Timestamps of every admission drop at this server.
  const std::vector<sim::Time>& drop_times() const { return drop_times_; }
  // The kernel accept queue, when this server model has one (sync
  // servers); null for async/staged models. Used by the telemetry layer
  // to publish the SYN-cookie slow-path counter for non-drop admission
  // modes (net/tcp_queue.h) without perturbing default runs.
  virtual const net::TcpQueue* accept_queue() const { return nullptr; }
  net::Transport* downstream_transport() { return transport_ ? transport_.get() : nullptr; }
  Server* downstream() const { return downstream_; }

 protected:
  // Model-specific admission (thread pool, lite queue, staged ingress).
  virtual bool do_offer(Job job) = 0;
  // Crash hook: fail-and-reply every admitted-but-unstarted job. Models
  // in-flight work lost on crash; implementations call abort_job().
  virtual void abort_queued() {}

  // Per-class programs are pure functions of the class profile, so they
  // are built once at construction and shared by reference — the per-
  // request Program copy (a vector allocation) is gone.
  const Program& program_for(const Request& r) const {
    return programs_[r.class_index];
  }

  void note_offer() { ++stats_.offered; }
  void note_accept() { ++stats_.accepted; ++in_system_; }
  void note_drop() {
    ++stats_.dropped;
    drop_times_.push_back(sim_.now());
  }
  void note_reply() { ++stats_.completed; --in_system_; }

  // Answers `job` with a connection-reset failure right now (used by
  // abort_queued implementations; keeps accepted = completed + in-system).
  void abort_job(Job job);

  // Answers `job` with a retryable overload rejection: marks it
  // failed + overload_shed and replies after a tiny fixed service cost
  // (an error page is cheap but still crosses the wire). `accepted` says
  // whether the job was already admitted (dequeue-time shed), so the
  // accepted == completed + in-system invariant holds either way.
  // `detail` distinguishes the shed site in the trace (0 = admission,
  // 2 = dequeue).
  void shed_job(Job job, bool accepted, int detail);

  // Sends the request downstream with retransmission-on-drop; `on_reply`
  // fires after the downstream tier replies (return-link latency
  // included). On permanent failure the request is marked failed and
  // `on_reply` still fires so the chain unwinds. When a tail policy is
  // enabled this also applies deadline fast-fail, breaker fast-fail,
  // retries with backoff, and hedged duplicates (first reply wins).
  // `parent_span` is the caller's hop span (trace::kNoSpan when the
  // request is untraced): the downstream-wait span, RTO gaps, and policy
  // events recorded here nest under it, and the downstream tier's hop
  // nests under the downstream-wait span via Job::parent_span.
  void dispatch_downstream(const RequestPtr& req, std::uint64_t parent_span,
                           sim::EventFn on_reply);

  sim::Simulation& sim_;
  std::string name_;
  cpu::VmCpu* vm_;
  cpu::IoDevice* io_ = nullptr;
  const AppProfile* profile_;
  std::function<Program(const RequestClassProfile&)> program_fn_;
  std::vector<Program> programs_;  // one per request class, built once

  Server* downstream_ = nullptr;
  std::unique_ptr<net::Transport> transport_;
  std::vector<Route> routes_;
  std::unique_ptr<policy::HopGovernor> governor_;
  std::unique_ptr<policy::overload::AdmissionController> overload_;
  bool down_ = false;

  Stats stats_;
  std::size_t in_system_ = 0;
  std::vector<sim::Time> drop_times_;

 private:
  using StPtr = sim::PoolRef<detail::DispatchState>;
  using GaPtr = sim::PoolRef<detail::GovAttempt>;
  // One route's worth of dispatch (route == nullptr: the legacy single
  // connect_downstream hop). All policy/trace machinery is shared.
  void dispatch_via(Route* route, const RequestPtr& req, std::uint64_t parent_span,
                    sim::EventFn on_reply);
  net::RetransmitFn retransmit_observer(const StPtr& st);
  void send_attempt(const StPtr& st, bool is_hedge);
  void retry_or_fail(const StPtr& st);
  void fail_dispatch(const StPtr& st);
};

}  // namespace ntier::server
