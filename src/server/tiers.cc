#include "server/tiers.h"

namespace ntier::server::tiers {

SyncConfig apache_config() {
  SyncConfig c;
  c.threads_per_process = 150;
  c.max_processes = 2;  // prefork: MaxSysQDepth 278 -> 428 (Fig 3(b))
  c.process_spawn_after = sim::Duration::seconds(2);
  c.backlog = 128;
  return c;
}

SyncConfig tomcat_config(std::size_t threads) {
  SyncConfig c;
  c.threads_per_process = threads;
  c.max_processes = 1;
  c.backlog = 128;
  c.db_pool = 50;  // JDBC pool: sync MySQL's real input bound
  return c;
}

SyncConfig mysql_config() {
  SyncConfig c;
  c.threads_per_process = 100;
  c.max_processes = 1;
  c.backlog = 128;  // MaxSysQDepth(MySQL) = 228
  return c;
}

AsyncConfig nginx_config() {
  AsyncConfig c;
  c.lite_q_depth = 65535;
  c.max_active = 4096;
  return c;
}

AsyncConfig xtomcat_config() {
  AsyncConfig c;
  c.lite_q_depth = 65535;
  c.max_active = 4096;
  return c;
}

AsyncConfig xmysql_config() {
  AsyncConfig c;
  c.lite_q_depth = 2000;  // InnoDB lightweight wait queue
  c.max_active = 8;       // innodb_thread_concurrency
  return c;
}

namespace {
Program web_fn(const RequestClassProfile& c) { return web_program(c); }
Program app_fn(const RequestClassProfile& c) { return app_program(c); }
Program db_fn(const RequestClassProfile& c) { return db_program(c); }
}  // namespace

std::unique_ptr<SyncServer> make_apache(sim::Simulation& sim, cpu::VmCpu* vm,
                                        const AppProfile* profile, SyncConfig cfg) {
  return std::make_unique<SyncServer>(sim, "apache", vm, profile, web_fn, cfg);
}

std::unique_ptr<SyncServer> make_tomcat(sim::Simulation& sim, cpu::VmCpu* vm,
                                        const AppProfile* profile, SyncConfig cfg) {
  return std::make_unique<SyncServer>(sim, "tomcat", vm, profile, app_fn, cfg);
}

std::unique_ptr<SyncServer> make_mysql(sim::Simulation& sim, cpu::VmCpu* vm,
                                       const AppProfile* profile, SyncConfig cfg) {
  return std::make_unique<SyncServer>(sim, "mysql", vm, profile, db_fn, cfg);
}

std::unique_ptr<AsyncServer> make_nginx(sim::Simulation& sim, cpu::VmCpu* vm,
                                        const AppProfile* profile, AsyncConfig cfg) {
  return std::make_unique<AsyncServer>(sim, "nginx", vm, profile, web_fn, cfg);
}

std::unique_ptr<AsyncServer> make_xtomcat(sim::Simulation& sim, cpu::VmCpu* vm,
                                          const AppProfile* profile, AsyncConfig cfg) {
  return std::make_unique<AsyncServer>(sim, "xtomcat", vm, profile, app_fn, cfg);
}

std::unique_ptr<AsyncServer> make_xmysql(sim::Simulation& sim, cpu::VmCpu* vm,
                                         const AppProfile* profile, AsyncConfig cfg) {
  return std::make_unique<AsyncServer>(sim, "xmysql", vm, profile, db_fn, cfg);
}

}  // namespace ntier::server::tiers
