#include "server/server_base.h"

#include <cassert>
#include <utility>

namespace ntier::server {
namespace detail {

// Per-dispatch bookkeeping, shared by every attempt/hedge/timeout closure
// of one downstream call. Slab-pooled: closures capture a 16-byte ref.
struct DispatchState {
  RequestPtr req;
  sim::EventFn on_reply;
  bool settled = false;  // a reply (or permanent failure) already unwound
  int attempts = 1;      // primary attempts started (1 = the first send)
  int hedges = 0;        // duplicate copies issued
  // The hop this dispatch travels: the route's transport (fan-out) or
  // the legacy connect_downstream transport. `route` is null on the
  // legacy path; its pick() chooses the destination per attempt.
  net::Transport* tx = nullptr;
  Server::Route* route = nullptr;
  // Tracing: the downstream-wait span all attempts/gaps/policy events of
  // this dispatch nest under, and its site label ("tomcat->mysql") —
  // built only for traced requests.
  std::uint64_t ds_span = trace::kNoSpan;
  std::string site;

  // Closes the downstream-wait span and resumes the caller. Runs once
  // per dispatch (callers guard via `settled`).
  void unwind(sim::Time now) {
    trace_close(req, ds_span, now);
    on_reply();
  }
};

// Per-attempt policy state (conclusion guard + latency clock). Pooled so
// the governed path's reply/timeout/result closures stay within the
// InlineFn budget.
struct GovAttempt {
  sim::PoolRef<DispatchState> st;
  bool concluded = false;  // this attempt already counted for the breaker
  sim::Time sent_at{};
  bool is_hedge = false;
};

// Fan-in barrier of one fan-out dispatch: the caller's continuation
// fires when the last route settles. Pooled so per-route closures
// capture a 16-byte ref.
struct JoinState {
  int pending = 0;
  sim::EventFn on_reply;
};

}  // namespace detail

namespace {

using detail::DispatchState;
using detail::GovAttempt;
using detail::JoinState;

sim::SlabPool<DispatchState>& dispatch_pool() {
  thread_local sim::SlabPool<DispatchState> pool;
  return pool;
}

sim::SlabPool<GovAttempt>& attempt_pool() {
  thread_local sim::SlabPool<GovAttempt> pool;
  return pool;
}

sim::SlabPool<JoinState>& join_pool() {
  thread_local sim::SlabPool<JoinState> pool;
  return pool;
}

}  // namespace

Server::Server(sim::Simulation& sim, std::string name, cpu::VmCpu* vm,
               const AppProfile* profile,
               std::function<Program(const RequestClassProfile&)> program_fn)
    : sim_(sim),
      name_(std::move(name)),
      vm_(vm),
      profile_(profile),
      program_fn_(std::move(program_fn)) {
  assert(profile_ != nullptr);
  programs_.reserve(profile_->classes.size());
  for (const RequestClassProfile& c : profile_->classes)
    programs_.push_back(program_fn_(c));
}

void Server::connect_downstream(Server* next, net::RtoPolicy rto, net::Link link) {
  assert(routes_.empty() && "connect_downstream and add_route are exclusive");
  downstream_ = next;
  transport_ = std::make_unique<net::Transport>(sim_, rto, link);
}

void Server::add_route(std::function<Server*()> pick, net::RtoPolicy rto,
                       net::Link link, std::string label) {
  assert(downstream_ == nullptr && "connect_downstream and add_route are exclusive");
  assert(pick != nullptr);
  Route rt;
  rt.pick = std::move(pick);
  rt.transport = std::make_unique<net::Transport>(sim_, rto, link);
  rt.label = std::move(label);
  routes_.push_back(std::move(rt));
}

void Server::enable_tail_policy(const policy::TailPolicy& p, sim::Rng rng) {
  if (!p.any()) return;
  governor_ = std::make_unique<policy::HopGovernor>(sim_, std::move(rng), p);
}

void Server::enable_overload_control(const policy::overload::OverloadPolicy& p) {
  if (!p.any()) return;
  overload_ = std::make_unique<policy::overload::AdmissionController>(p);
}

bool Server::offer(Job job) {
  if (down_) {
    // Crashed: the connection is refused. To the sender this is the same
    // unacked packet as a full accept queue — it retransmits per its RTO.
    note_offer();
    ++stats_.refused_down;
    job.req->stamp(name_, ":refused", sim_.now());
    trace_instant(job.req, trace::SpanKind::kDrop, name_, job.parent_span,
                  sim_.now(), /*detail=*/1);
    note_drop();
    return false;
  }
  if (job.req->has_deadline() && sim_.now() >= job.req->deadline) {
    // Over budget: cancel instead of queueing. The packet is *accepted*
    // (returning true) so the sender does not retransmit cancelled work;
    // the failure reply unwinds the chain immediately.
    note_offer();
    ++stats_.expired;
    job.req->failed = true;
    job.req->deadline_expired = true;
    job.req->stamp(name_, ":expired", sim_.now());
    trace_instant(job.req, trace::SpanKind::kDeadlineCancel, name_,
                  job.parent_span, sim_.now());
    auto jr = job_pool().make(std::move(job));
    sim_.after(sim::Duration::zero(), [jr] { jr->reply(jr->req); },
               sim::SchedClass::kImmediate);
    return true;
  }
  if (overload_ != nullptr) {
    using Decision = policy::overload::AdmissionController::Decision;
    using ShedMode = policy::overload::OverloadPolicy::ShedMode;
    switch (overload_->on_offer(sim_.now(), in_system_)) {
      case Decision::kAdmit:
        break;
      case Decision::kDegrade:
        // Brownout: admit, but serve the cheap response — every tier
        // skips its downstream steps for a degraded request.
        if (!job.req->degraded) {
          job.req->degraded = true;
          job.req->stamp(name_, ":degraded", sim_.now());
          trace_instant(job.req, trace::SpanKind::kBrownout, name_,
                        job.parent_span, sim_.now());
        }
        break;
      case Decision::kShed:
        note_offer();
        if (overload_->policy().shed_mode == ShedMode::kTcpDrop) {
          // Paper baseline: refuse the packet like a full accept queue;
          // the sender's TCP stack retransmits per its RTO.
          job.req->stamp(name_, ":shed_drop", sim_.now());
          trace_instant(job.req, trace::SpanKind::kOverloadShed, name_,
                        job.parent_span, sim_.now(), /*detail=*/1);
          note_drop();
          return false;
        }
        shed_job(std::move(job), /*accepted=*/false, /*detail=*/0);
        return true;
    }
  }
  return do_offer(std::move(job));
}

void Server::set_down(bool down, bool abort_queued_work) {
  down_ = down;
  if (down && abort_queued_work) abort_queued();
}

void Server::abort_job(Job job) {
  ++stats_.aborted;
  job.req->failed = true;
  job.req->stamp(name_, ":aborted", sim_.now());
  // The aborted job still gets a (failure) reply, preserving the
  // conservation invariant accepted == completed + in-system.
  note_reply();
  job.reply(job.req);
}

void Server::shed_job(Job job, bool accepted, int detail) {
  job.req->failed = true;
  job.req->overload_shed = true;
  job.req->stamp(name_, ":shed", sim_.now());
  trace_instant(job.req, trace::SpanKind::kOverloadShed, name_, job.parent_span,
                sim_.now(), detail);
  if (accepted) note_reply();
  // The canned rejection is produced without a worker but still crosses
  // the wire; reply off this stack frame after a token service cost.
  auto jr = job_pool().make(std::move(job));
  sim_.after(sim::Duration::micros(50), [jr] { jr->reply(jr->req); },
             sim::SchedClass::kTimer);
}

void Server::dispatch_downstream(const RequestPtr& req, std::uint64_t parent_span,
                                 sim::EventFn on_reply) {
  if (!routes_.empty()) {
    // Fan-out: contact every route in parallel. The caller's
    // continuation fires at the fan-in barrier, once the last route
    // settles — a failed route marks the request failed, but the
    // barrier still waits for every sibling before resuming.
    auto jn = join_pool().make();
    jn->pending = static_cast<int>(routes_.size());
    jn->on_reply = std::move(on_reply);
    for (Route& rt : routes_) {
      dispatch_via(&rt, req, parent_span, [jn] {
        if (--jn->pending == 0) jn->on_reply();
      });
    }
    return;
  }
  dispatch_via(nullptr, req, parent_span, std::move(on_reply));
}

void Server::dispatch_via(Route* route, const RequestPtr& req,
                          std::uint64_t parent_span, sim::EventFn on_reply) {
  assert(route != nullptr || (downstream_ != nullptr && transport_ != nullptr));

  // Tracing: one downstream-wait span covers this dispatch from first
  // send to unwind; RTO gaps and policy events nest under it, and the
  // downstream tier's hop span nests under it via Job::parent_span.
  StPtr st = dispatch_pool().make();
  st->req = req;
  st->on_reply = std::move(on_reply);
  st->tx = route != nullptr ? route->transport.get() : transport_.get();
  st->route = route;
  if (req->traced()) {
    st->site = name_ + "->" + (route != nullptr ? route->label : downstream_->name());
    st->ds_span = trace_open(req, trace::SpanKind::kDownstream, st->site,
                             parent_span, sim_.now());
  }

  if (!governor_) {
    // Plain path: single send, retransmission handled inside Transport.
    Job down;
    down.req = req;
    down.parent_span = st->ds_span;
    // The downstream tier calls this at its completion instant; the
    // return-path link latency belongs to this (sending) side.
    down.reply = [this, st](const RequestPtr&) {
      sim_.after(st->tx->link().sample(), [this, st] { st->unwind(sim_.now()); });
    };
    st->tx->send(
        [route, next = downstream_, down = std::move(down)](/*attempt*/) {
          return (route != nullptr ? route->pick() : next)->offer(down);
        },
        [this, st](const net::TxOutcome& out) {
          st->req->total_drops += out.drops;
          if (!out.delivered) {
            // Connection abandoned after max retries: fail the request and
            // unwind so upstream threads/clients are released.
            st->req->failed = true;
            ++stats_.failed;
            st->unwind(sim_.now());
          }
        },
        retransmit_observer(st));
    return;
  }

  const policy::TailPolicy& pol = governor_->policy();
  governor_->on_request();

  if (req->has_deadline() && sim_.now() >= req->deadline) {
    // Budget already spent before the hop: cancel without sending.
    ++governor_->stats().deadline_cancels;
    st->settled = true;
    req->failed = true;
    req->deadline_expired = true;
    ++stats_.failed;
    trace_instant(req, trace::SpanKind::kDeadlineCancel, st->site, st->ds_span,
                  sim_.now());
    sim_.after(sim::Duration::zero(), [this, st] { st->unwind(sim_.now()); },
               sim::SchedClass::kImmediate);
    return;
  }
  if (!governor_->allow_send()) {
    // Breaker open: fast-fail instead of queueing onto a sick downstream.
    st->settled = true;
    req->failed = true;
    ++stats_.failed;
    trace_instant(req, trace::SpanKind::kBreakerReject, st->site, st->ds_span,
                  sim_.now());
    sim_.after(sim::Duration::zero(), [this, st] { st->unwind(sim_.now()); },
               sim::SchedClass::kImmediate);
    return;
  }

  send_attempt(st, /*is_hedge=*/false);

  if (pol.hedge.enabled) {
    // Hedge copies fire at multiples of the current percentile delay
    // (scheduled up front: deterministic, no self-referential timers).
    const sim::Duration d = governor_->hedge_delay();
    for (int i = 1; i <= pol.hedge.max_hedges; ++i) {
      sim_.after(d * i, [this, st, i] {
        if (st->settled) return;
        if (st->req->has_deadline() && sim_.now() >= st->req->deadline) return;
        ++st->hedges;
        ++st->req->hedge_copies;
        ++governor_->stats().hedges;
        ++stats_.hedges_sent;
        trace_instant(st->req, trace::SpanKind::kHedge, st->site, st->ds_span,
                      sim_.now(), /*detail=*/i);
        send_attempt(st, /*is_hedge=*/true);
      }, sim::SchedClass::kTimer);
    }
  }
}

net::RetransmitFn Server::retransmit_observer(const StPtr& st) {
  if (!st->req->traced()) return {};
  // Each refused/lost attempt costs the sender one whole RTO before the
  // next attempt — the paper's 3 s mechanism, recorded verbatim.
  return [st](sim::Time at, sim::Duration rto, int attempt) {
    st->req->spans->add(trace::SpanKind::kRtoGap, st->site, st->ds_span, at,
                        at + rto, attempt);
  };
}

void Server::send_attempt(const StPtr& st, bool is_hedge) {
  // Per-attempt conclusion guard: an attempt concludes exactly once for
  // breaker/latency accounting (timeout, transport failure, or reply).
  GaPtr ga = attempt_pool().make();
  ga->st = st;
  ga->sent_at = sim_.now();
  ga->is_hedge = is_hedge;

  Job down;
  down.req = st->req;
  down.parent_span = st->ds_span;
  down.reply = [this, ga](const RequestPtr&) {
    sim_.after(ga->st->tx->link().sample(), [this, ga] {
      DispatchState& st = *ga->st;
      if (st.req->overload_shed && !st.settled) {
        // The downstream tier shed this attempt with a retryable
        // rejection: clear the canned error and consult the retry policy
        // (spending retry budget) instead of settling the dispatch — the
        // shed/retry contract of docs/OVERLOAD.md.
        st.req->overload_shed = false;
        st.req->failed = false;
        if (!ga->concluded) {
          ga->concluded = true;
          governor_->on_outcome(false);
        }
        if (!ga->is_hedge) retry_or_fail(ga->st);
        return;
      }
      if (!ga->concluded) {
        ga->concluded = true;
        governor_->on_outcome(!st.req->failed);
        if (!st.req->failed) governor_->record_latency(sim_.now() - ga->sent_at);
      }
      if (st.settled) return;  // another copy already unwound
      st.settled = true;
      if (ga->is_hedge) ++governor_->stats().hedge_wins;
      st.unwind(sim_.now());
    });
  };

  st->tx->send(
      [route = st->route, next = downstream_, down = std::move(down)](/*attempt*/) {
        return (route != nullptr ? route->pick() : next)->offer(down);
      },
      [this, ga](const net::TxOutcome& out) {
        ga->st->req->total_drops += out.drops;
        if (out.delivered) return;  // conclusion arrives with the reply
        if (ga->concluded) return;  // attempt_timeout already took over
        ga->concluded = true;
        governor_->on_outcome(false);
        // Hedge copies never settle on failure — the primary chain owns
        // the retry/fail decision and a surviving copy may still win.
        if (!ga->is_hedge) retry_or_fail(ga->st);
      },
      retransmit_observer(st));

  const sim::Duration at = governor_->policy().attempt_timeout;
  if (!is_hedge && at > sim::Duration::zero()) {
    sim_.after(at, [this, ga] {
      if (ga->st->settled || ga->concluded) return;
      ga->concluded = true;
      governor_->on_outcome(false);
      // The timed-out attempt stays in flight downstream (its work is not
      // recalled); if it lands before the retry it still wins via `st`.
      retry_or_fail(ga->st);
    }, sim::SchedClass::kTimer);
  }
}

void Server::retry_or_fail(const StPtr& st) {
  if (st->settled) return;
  const policy::RetryPolicy& rp = governor_->policy().retry;
  if (!rp.enabled() || st->attempts >= rp.max_attempts) {
    fail_dispatch(st);
    return;
  }
  if (st->req->has_deadline() && sim_.now() >= st->req->deadline) {
    ++governor_->stats().deadline_cancels;
    st->req->deadline_expired = true;
    trace_instant(st->req, trace::SpanKind::kDeadlineCancel, st->site,
                  st->ds_span, sim_.now());
    fail_dispatch(st);
    return;
  }
  if (!governor_->try_retry_token()) {
    fail_dispatch(st);
    return;
  }
  const sim::Duration backoff = governor_->next_backoff(st->attempts);
  ++governor_->stats().retries;
  ++stats_.ds_retries;
  // The backoff interval itself is a trace span: idle wall-clock the
  // request spends between attempts, charged to the policy layer.
  trace_add(st->req, trace::SpanKind::kRetry, st->site, st->ds_span, sim_.now(),
            sim_.now() + backoff, /*detail=*/st->attempts);
  sim_.after(backoff, [this, st] {
    if (st->settled) return;
    if (st->req->has_deadline() && sim_.now() >= st->req->deadline) {
      ++governor_->stats().deadline_cancels;
      st->req->deadline_expired = true;
      trace_instant(st->req, trace::SpanKind::kDeadlineCancel, st->site,
                    st->ds_span, sim_.now());
      fail_dispatch(st);
      return;
    }
    ++st->attempts;
    ++st->req->app_retries;
    send_attempt(st, /*is_hedge=*/false);
  }, sim::SchedClass::kTimer);
}

void Server::fail_dispatch(const StPtr& st) {
  if (st->settled) return;
  st->settled = true;
  st->req->failed = true;
  ++stats_.failed;
  st->unwind(sim_.now());
}

}  // namespace ntier::server
