#include "server/server_base.h"

#include <cassert>

namespace ntier::server {

Server::Server(sim::Simulation& sim, std::string name, cpu::VmCpu* vm,
               const AppProfile* profile,
               std::function<Program(const RequestClassProfile&)> program_fn)
    : sim_(sim),
      name_(std::move(name)),
      vm_(vm),
      profile_(profile),
      program_fn_(std::move(program_fn)) {
  assert(profile_ != nullptr);
}

void Server::connect_downstream(Server* next, net::RtoPolicy rto, net::Link link) {
  downstream_ = next;
  transport_ = std::make_unique<net::Transport>(sim_, rto, link);
}

void Server::dispatch_downstream(const RequestPtr& req, std::function<void()> on_reply) {
  assert(downstream_ != nullptr && transport_ != nullptr);
  auto reply_cb = std::make_shared<std::function<void()>>(std::move(on_reply));
  Job down;
  down.req = req;
  // The downstream tier calls this at its completion instant; the
  // return-path link latency belongs to this (sending) side.
  down.reply = [this, reply_cb](const RequestPtr&) {
    sim_.after(transport_->link().sample(), [reply_cb] { (*reply_cb)(); });
  };
  transport_->send(
      [next = downstream_, down](/*attempt*/) { return next->offer(down); },
      [this, req, reply_cb](const net::TxOutcome& out) {
        req->total_drops += out.drops;
        if (!out.delivered) {
          // Connection abandoned after max retries: fail the request and
          // unwind so upstream threads/clients are released.
          req->failed = true;
          ++stats_.failed;
          (*reply_cb)();
        }
      });
}

}  // namespace ntier::server
