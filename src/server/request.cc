#include "server/request.h"

namespace ntier::server {}
