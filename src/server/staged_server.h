// StagedServer: SEDA-style staged event-driven server.
//
// The paper's related work spans the events-vs-threads debate (SEDA
// [33], Capriccio-style threads [29]); SEDA is the classic middle point
// between our SyncServer and AsyncServer: request processing is split
// into stages, each with its own *bounded* event queue and a small
// thread pool, and downstream I/O never blocks a stage thread.
//
// Two stages model a tier: `ingress` runs the work up to the first
// downstream call; `continuation` runs everything after a downstream
// reply. Admission overflow at the ingress queue is a dropped packet
// (SEDA sheds at stage boundaries); continuation work — replies already
// inside the server — is never shed.
//
// Compared on the paper's millibottleneck scenarios, a staged tier sits
// between sync (MaxSysQDepth ~ 10^2) and async (LiteQDepth ~ 10^4-10^5):
// its bounded stage queue postpones CTQO roughly in proportion to the
// queue cap (bench/ext_seda).
#pragma once

#include <deque>
#include <memory>

#include "server/server_base.h"

namespace ntier::server {

struct StageConfig {
  std::size_t queue_cap = 1000;  // bounded event queue (admission bound)
  std::size_t threads = 16;      // stage thread pool
};

struct StagedConfig {
  StageConfig ingress{};
  StageConfig continuation{};
};

class StagedServer : public Server {
 public:
  StagedServer(sim::Simulation& sim, std::string name, cpu::VmCpu* vm,
               const AppProfile* profile,
               std::function<Program(const RequestClassProfile&)> program_fn,
               StagedConfig cfg);

  std::size_t busy_workers() const override { return ingress_active_ + cont_active_; }
  std::size_t backlog_depth() const override {
    return ingress_q_.size() + cont_q_.size();
  }
  std::size_t max_sys_q_depth() const override {
    return cfg_.ingress.queue_cap + cfg_.ingress.threads;
  }
  const StagedConfig& config() const { return cfg_; }

 protected:
  bool do_offer(Job job) override;
  // Crash: the bounded ingress queue is dropped with failure replies;
  // continuation work (already past a downstream round trip) drains.
  void abort_queued() override;

 private:
  // Per-admission execution state, slab-pooled (closures capture a
  // 16-byte CtxPtr; the Program is shared per class).
  struct Ctx {
    Job job;
    const Program* prog = nullptr;
    std::size_t pc = 0;
    std::uint64_t hop = trace::kNoSpan;    // this server's visit span
    std::uint64_t qspan = trace::kNoSpan;  // open stage-queue wait, if parked
    sim::Time enq{};  // ingress-queue entry time (overload sojourn accounting)
  };
  using CtxPtr = sim::PoolRef<Ctx>;

  static sim::SlabPool<Ctx>& ctx_pool();
  void pump();
  // Runs steps while holding a slot of the given stage; the downstream
  // step releases the slot and re-enters via the continuation queue.
  void run_step(const CtxPtr& ctx, bool continuation_stage);
  void finish(const CtxPtr& ctx, bool continuation_stage);

  StagedConfig cfg_;
  const std::string site_ingress_;  // "<name>:ingress" (built once)
  const std::string site_cont_;     // "<name>:cont" (built once)
  std::deque<CtxPtr> ingress_q_;
  std::deque<CtxPtr> cont_q_;
  std::size_t ingress_active_ = 0;
  std::size_t cont_active_ = 0;
};

}  // namespace ntier::server
