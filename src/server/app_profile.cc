#include "server/app_profile.h"

#include <cassert>
#include <stdexcept>

namespace ntier::server {

using sim::Duration;

AppProfile AppProfile::rubbos() {
  AppProfile p;
  // Static content: Apache/Nginx only.
  p.classes.push_back(RequestClassProfile{
      .name = "Static",
      .is_static = true,
      .weight = 0.15,
      .web_pre = Duration::micros(50),
      .web_post = Duration::zero(),
      .app_pre = Duration::zero(),
      .app_post = Duration::zero(),
      .db_queries = 0,
      .db_cpu = Duration::zero(),
      .db_io = Duration::zero()});
  // Light dynamic page (e.g. StoriesOfTheDay): one query.
  p.classes.push_back(RequestClassProfile{
      .name = "StoriesOfTheDay",
      .is_static = false,
      .weight = 0.55,
      .web_pre = Duration::micros(60),
      .web_post = Duration::micros(40),
      .app_pre = Duration::micros(150),
      .app_post = Duration::micros(600),
      .db_queries = 1,
      .db_cpu = Duration::micros(350),
      .db_io = Duration::micros(15)});
  // Heavier dynamic page (ViewStory): two queries.
  p.classes.push_back(RequestClassProfile{
      .name = "ViewStory",
      .is_static = false,
      .weight = 0.30,
      .web_pre = Duration::micros(60),
      .web_post = Duration::micros(40),
      .app_pre = Duration::micros(200),
      .app_post = Duration::micros(960),
      .db_queries = 2,
      .db_cpu = Duration::micros(300),
      .db_io = Duration::micros(15)});
  return p;
}

std::size_t AppProfile::pick(sim::Rng& rng) const {
  assert(!classes.empty());
  double total = 0.0;
  for (const auto& c : classes) total += c.weight;
  double u = rng.uniform() * total;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    u -= classes[i].weight;
    if (u <= 0.0) return i;
  }
  return classes.size() - 1;
}

std::size_t AppProfile::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < classes.size(); ++i)
    if (classes[i].name == name) return i;
  throw std::out_of_range("AppProfile: no class named " + name);
}

Duration AppProfile::mean_app_cpu() const {
  double total_w = 0.0;
  double acc_s = 0.0;
  for (const auto& c : classes) {
    total_w += c.weight;
    acc_s += c.weight * (c.app_pre + c.app_post).to_seconds();
  }
  return total_w > 0 ? Duration::from_seconds(acc_s / total_w) : Duration::zero();
}

Program web_program(const RequestClassProfile& c) {
  Program prog;
  prog.push_back({WorkStep::Kind::kCpu, c.web_pre});
  if (!c.is_static) {
    prog.push_back({WorkStep::Kind::kDownstream, Duration::zero()});
    prog.push_back({WorkStep::Kind::kCpu, c.web_post});
  }
  return prog;
}

Program app_program(const RequestClassProfile& c) {
  Program prog;
  prog.push_back({WorkStep::Kind::kCpu, c.app_pre});
  const int q = c.db_queries;
  if (q <= 0) {
    prog.push_back({WorkStep::Kind::kCpu, c.app_post});
    return prog;
  }
  const Duration slice = c.app_post / q;
  for (int i = 0; i < q; ++i) {
    prog.push_back({WorkStep::Kind::kDownstream, Duration::zero()});
    prog.push_back({WorkStep::Kind::kCpu, slice});
  }
  return prog;
}

Program db_program(const RequestClassProfile& c) {
  Program prog;
  prog.push_back({WorkStep::Kind::kCpu, c.db_cpu});
  if (c.db_io > Duration::zero())
    prog.push_back({WorkStep::Kind::kDisk, c.db_io});
  return prog;
}

}  // namespace ntier::server
