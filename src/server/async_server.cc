#include "server/async_server.h"

#include <cassert>

namespace ntier::server {

sim::SlabPool<AsyncServer::Ctx>& AsyncServer::ctx_pool() {
  thread_local sim::SlabPool<Ctx> pool;
  return pool;
}

AsyncServer::AsyncServer(sim::Simulation& sim, std::string name, cpu::VmCpu* vm,
                         const AppProfile* profile,
                         std::function<Program(const RequestClassProfile&)> program_fn,
                         AsyncConfig cfg)
    : Server(sim, std::move(name), vm, profile, std::move(program_fn)), cfg_(cfg) {
  assert(cfg.max_active > 0);
}

bool AsyncServer::do_offer(Job job) {
  note_offer();
  if (in_system_ >= cfg_.lite_q_depth) {
    note_drop();
    job.req->stamp(name_, ":drop", sim_.now());
    trace_instant(job.req, trace::SpanKind::kDrop, name_, job.parent_span,
                  sim_.now(), /*detail=*/0);
    return false;
  }
  note_accept();
  job.req->stamp(name_, ":admit", sim_.now());
  CtxPtr ctx = ctx_pool().make();
  ctx->prog = &program_for(*job.req);
  ctx->job = std::move(job);
  ctx->hop = trace_open(ctx->job.req, trace::SpanKind::kHop, name_,
                        ctx->job.parent_span, sim_.now());
  ctx->qspan = trace_open(ctx->job.req, trace::SpanKind::kPoolQueue, name_,
                          ctx->hop, sim_.now());
  ctx->enq = sim_.now();
  wait_q_.push_back(std::move(ctx));
  pump();
  return true;
}

void AsyncServer::abort_queued() {
  while (!wait_q_.empty()) {
    CtxPtr ctx = std::move(wait_q_.front());
    wait_q_.pop_front();
    trace_close(ctx->job.req, ctx->qspan, sim_.now());
    trace_close(ctx->job.req, ctx->hop, sim_.now());
    abort_job(std::move(ctx->job));
  }
}

void AsyncServer::pump() {
  while (active_ < cfg_.max_active && (!resume_q_.empty() || !wait_q_.empty())) {
    CtxPtr ctx;
    if (!resume_q_.empty()) {  // resumed work first (completions beat arrivals)
      ctx = std::move(resume_q_.front());
      resume_q_.pop_front();
    } else {
      // Fresh arrivals go through the overload queue discipline
      // (adaptive-LIFO pick, CoDel / stale-sojourn sheds); resumed work
      // is committed and is never shed here.
      auto next = policy::overload::pop_next(
          overload(), wait_q_, sim_.now(),
          [](const CtxPtr& c) { return c->enq; },
          [this](CtxPtr c) {
            trace_close(c->job.req, c->qspan, sim_.now());
            trace_close(c->job.req, c->hop, sim_.now());
            shed_job(std::move(c->job), /*accepted=*/true, /*detail=*/2);
          });
      if (!next) break;
      ctx = std::move(*next);
    }
    ++active_;
    trace_close(ctx->job.req, ctx->qspan, sim_.now());
    ctx->qspan = trace::kNoSpan;
    run_step(ctx);
  }
}

void AsyncServer::run_step(const CtxPtr& ctx) {
  if (ctx->pc >= ctx->prog->size()) {
    note_reply();
    ctx->job.req->stamp(name_, ":reply", sim_.now());
    trace_close(ctx->job.req, ctx->hop, sim_.now());
    ctx->job.reply(ctx->job.req);
    release_slot();
    pump();
    return;
  }
  const WorkStep& step = (*ctx->prog)[ctx->pc];
  switch (step.kind) {
    case WorkStep::Kind::kCpu: {
      if (step.amount <= sim::Duration::zero()) {
        ++ctx->pc;
        run_step(ctx);
        return;
      }
      const std::uint64_t sp = trace_open(ctx->job.req, trace::SpanKind::kService,
                                          name_, ctx->hop, sim_.now());
      vm_->submit(step.amount, [this, ctx, sp] {
        trace_close(ctx->job.req, sp, sim_.now());
        ++ctx->pc;
        run_step(ctx);
      });
      return;
    }
    case WorkStep::Kind::kDisk: {
      assert(io_ != nullptr && "kDisk step requires attach_io()");
      const std::uint64_t sp = trace_open(ctx->job.req, trace::SpanKind::kDisk,
                                          name_, ctx->hop, sim_.now());
      io_->submit_service(step.amount, [this, ctx, sp] {
        trace_close(ctx->job.req, sp, sim_.now());
        ++ctx->pc;
        run_step(ctx);
      });
      return;
    }
    case WorkStep::Kind::kDownstream: {
      if (ctx->job.req->degraded) {
        // Brownout: the degraded response skips the downstream chain.
        ++ctx->pc;
        run_step(ctx);
        return;
      }
      // Event-driven call: park the request, free the slot, continue via
      // the callback when the reply lands (Fig 14's eventHandler).
      release_slot();
      dispatch_downstream(ctx->job.req, ctx->hop, [this, ctx] {
        ++ctx->pc;
        // The reply landed but the event loop may be saturated: the wait
        // for an active slot is another run-queue span.
        ctx->qspan = trace_open(ctx->job.req, trace::SpanKind::kPoolQueue,
                                name_, ctx->hop, sim_.now());
        resume_q_.push_back(ctx);
        pump();
      });
      pump();
      return;
    }
  }
}

}  // namespace ntier::server
