// SyncServer: thread-per-request RPC server (Apache, Tomcat BIO, MySQL).
//
// A worker thread owns a request for its whole lifetime, *including*
// downstream RPC waits — the tight coupling the paper identifies as the
// CTQO enabler. Admission capacity is MaxSysQDepth = live threads + TCP
// backlog; beyond that packets drop. An optional process manager mimics
// Apache prefork: when every thread has been busy for a sustained
// period, another process (thread pool) is spawned, raising
// MaxSysQDepth (the 278 -> 428 second-level overflow in Fig 3(b)).
#pragma once

#include <deque>
#include <memory>
#include <optional>

#include "cpu/thread_overhead.h"
#include "net/tcp_queue.h"
#include "server/connection_pool.h"
#include "server/server_base.h"

namespace ntier::server {

struct SyncConfig {
  std::size_t threads_per_process = 150;
  std::size_t max_processes = 1;
  // Spawn another process once the pool has been continuously exhausted
  // this long (only if max_processes allows).
  sim::Duration process_spawn_after = sim::Duration::seconds(2);
  std::size_t backlog = 128;  // TCP accept-queue capacity
  // Downstream connection pool size; 0 = unlimited (no pool).
  std::size_t db_pool = 0;
  cpu::ThreadOverheadModel overhead{};
  // Alternative design (§V-E adjacent): instead of letting TCP drop the
  // packet (3 s retransmit), reply with an immediate error ("503") when
  // MaxSysQDepth is full. Trades VLRT for explicit failures. Intended
  // for the client-facing tier.
  bool shed_on_overload = false;
  // Backlog dequeue discipline: false = FCFS (default, the paper's
  // accept queue), true = earliest-deadline-first — a freed worker
  // serves the queued request with the tightest absolute deadline;
  // requests without a deadline rank last, FIFO among equals. Graph
  // nodes select this with sched=edf (docs/TOPOLOGY.md).
  bool edf = false;
  // Accept-queue overflow behaviour (net/tcp_queue.h): kTcpDrop is the
  // paper's drop-and-retransmit kernel; kSynCookies admits the overflow
  // on the stateless slow path (costing `cookie_penalty` of extra CPU
  // per cookie-admitted request); kBypass never refuses (kernel-bypass
  // transports queue in userspace). Protocol profiles (net/protocol.h)
  // set both fields via core::apply_protocol or the graph grammar.
  net::AdmissionMode admission = net::AdmissionMode::kTcpDrop;
  sim::Duration cookie_penalty = sim::Duration::zero();
};

class SyncServer : public Server {
 public:
  SyncServer(sim::Simulation& sim, std::string name, cpu::VmCpu* vm,
             const AppProfile* profile,
             std::function<Program(const RequestClassProfile&)> program_fn,
             SyncConfig cfg);

  std::size_t busy_workers() const override { return busy_; }
  std::size_t backlog_depth() const override { return accept_q_.depth(); }
  std::size_t max_sys_q_depth() const override { return threads_ + accept_q_.capacity(); }
  std::size_t thread_count() const { return threads_; }
  std::size_t process_count() const { return processes_; }
  // Requests answered with an immediate overload error (shed mode).
  std::uint64_t shed_count() const { return shed_; }
  // Accept queue, for admission-mode telemetry (cookie_admits probe).
  const net::TcpQueue* accept_queue() const override { return &accept_q_; }
  ConnectionPool* pool() { return pool_ ? pool_.get() : nullptr; }
  const SyncConfig& config() const { return cfg_; }

 protected:
  bool do_offer(Job job) override;
  // Crash: the TCP backlog is lost with the process — every queued-but-
  // unstarted job is answered with a connection-reset failure.
  void abort_queued() override;

 private:
  // Per-admission execution state: program counter plus the open trace
  // spans. Slab-pooled; event closures capture a 16-byte CtxPtr.
  struct Ctx {
    Job job;
    const Program* prog = nullptr;  // shared per-class program
    std::size_t pc = 0;
    std::uint64_t hop = trace::kNoSpan;  // this server's visit span
    std::uint64_t sp = trace::kNoSpan;   // open step/pool-wait span
  };
  using CtxPtr = sim::PoolRef<Ctx>;
  // A job parked in the TCP backlog, with its open trace spans: the hop
  // span (whole visit) and the accept-queue wait nested under it.
  struct Queued {
    Job job;
    std::uint64_t hop = trace::kNoSpan;
    std::uint64_t qspan = trace::kNoSpan;
    sim::Time enq{};  // backlog entry time (overload sojourn accounting)
    bool cookie = false;  // admitted via the SYN-cookie slow path
  };

  static sim::SlabPool<Ctx>& ctx_pool();
  void start(Job job, std::uint64_t hop, bool cookie = false);
  void run_step(const CtxPtr& ctx);
  void begin_downstream(const CtxPtr& ctx);
  void finish(const CtxPtr& ctx);
  void worker_freed();
  void check_spawn();
  void start_queued(Queued q);
  // Pops the next backlog entry under the overload controller's queue
  // discipline (FIFO / adaptive-LIFO / CoDel + stale sheds); nullopt
  // when the discipline shed the whole backlog. Keeps accept_q_ in step.
  std::optional<Queued> take_from_backlog();

  SyncConfig cfg_;
  const std::string site_dbpool_;  // "<name>:dbpool" (built once)
  const std::string site_cookie_;  // "<name>:syncookie" (built once)
  std::size_t threads_;     // current total across processes
  std::size_t processes_ = 1;
  std::size_t busy_ = 0;
  net::TcpQueue accept_q_;
  std::deque<Queued> backlog_q_;
  std::unique_ptr<ConnectionPool> pool_;
  sim::Time exhausted_since_ = sim::Time::max();
  std::uint64_t shed_ = 0;
};

}  // namespace ntier::server
