// Quickstart: build a synchronous 3-tier system, inject VM-consolidation
// millibottlenecks, run 30 simulated seconds, and print what the paper
// would call the micro-level event analysis: throughput, latency tail,
// queue peaks, dropped packets, and the CTQO classification.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "ntier.h"

int main() {
  using namespace ntier;

  core::ExperimentConfig cfg = core::scenarios::fig3_consolidation_sync();
  cfg.name = "quickstart";
  cfg.duration = sim::Duration::seconds(30);

  std::puts(core::config_banner(cfg).c_str());
  auto sys = core::run_system(cfg);
  auto summary = core::summarize(*sys);
  std::puts(summary.to_string().c_str());

  std::puts("--- CPU demand (% of vCPU, peak per 1s row) ---");
  std::puts(core::timeline_panel(sys->sampler(),
                                 {"tomcat.demand", "sysbursty.demand", "apache.demand"},
                                 sys->simulation().now(), sim::Duration::seconds(1))
                .c_str());
  std::puts("--- queued requests per tier (peak per 1s row) ---");
  std::puts(core::timeline_panel(sys->sampler(),
                                 {"apache.queue", "tomcat.queue", "mysql.queue"},
                                 sys->simulation().now(), sim::Duration::seconds(1))
                .c_str());
  std::puts(core::vlrt_panel(sys->latency()).c_str());
  std::puts(core::validate_run(*sys).to_string().c_str());
  return 0;
}
