// Async migration study: the paper's §V narrative as a program.
//
// Starting from the synchronous Apache-Tomcat-MySQL stack, replace one
// server at a time with its asynchronous counterpart (NX=0..3) and run
// each architecture under the *same* CPU millibottleneck (SysBursty
// batches co-located with the app tier). Prints where the drops move at
// each step — upstream CTQO at Apache, downstream CTQO at Tomcat, then
// at MySQL, then nothing.
#include <cstdio>

#include "core/ctqo_analyzer.h"
#include "core/experiment.h"
#include "core/scenarios.h"
#include "metrics/table.h"

int main() {
  using namespace ntier;

  metrics::Table table({"NX", "stack", "web_drops", "app_drops", "db_drops",
                        "vlrt", "classification"});

  for (auto arch : {core::Architecture::kSync, core::Architecture::kNx1,
                    core::Architecture::kNx2, core::Architecture::kNx3}) {
    // One scenario, only the architecture changes.
    auto cfg = core::scenarios::fig9_nx2_xtomcat();
    cfg.name = std::string("migration-") + core::to_string(arch);
    cfg.system.arch = arch;
    cfg.duration = sim::Duration::seconds(40);

    auto sys = core::run_system(cfg);
    const auto report = core::analyze_ctqo(*sys);
    std::string kind = "no CTQO";
    if (report.upstream_episodes > 0 && report.downstream_episodes > 0)
      kind = "upstream + downstream";
    else if (report.upstream_episodes > 0)
      kind = "upstream CTQO";
    else if (report.downstream_episodes > 0)
      kind = "downstream CTQO";

    table.add_row({std::to_string(static_cast<int>(arch)), core::to_string(arch),
                   metrics::Table::num(sys->web()->stats().dropped),
                   metrics::Table::num(sys->app()->stats().dropped),
                   metrics::Table::num(sys->db()->stats().dropped),
                   metrics::Table::num(sys->latency().vlrt_count()), kind});
  }

  std::puts("Replacing synchronous servers one by one under the same app-tier");
  std::puts("millibottleneck (paper §V):\n");
  std::puts(table.to_string().c_str());
  std::puts("expected: drops at the web tier (NX=0), then the app tier (NX=1),");
  std::puts("then the DB tier (NX=2), then nowhere (NX=3).");
  return 0;
}
