// Micro-level event analysis: the paper's methodology applied to one
// run. Enables per-request tracing, reruns the Fig 3 scenario, then
// prints the hop-by-hop timeline of a VLRT request next to a normal one,
// followed by the automatic CTQO classification.
#include <cstdio>

#include "core/ctqo_analyzer.h"
#include "core/experiment.h"
#include "core/scenarios.h"
#include "core/trace_analysis.h"
#include "monitor/trace_store.h"

int main() {
  using namespace ntier;

  auto cfg = core::scenarios::fig3_consolidation_sync();
  cfg.name = "microanalysis";
  cfg.workload.trace_requests = true;
  cfg.duration = sim::Duration::seconds(15);

  core::NTierSystem sys(cfg);
  server::RequestPtr vlrt, normal;
  monitor::TraceStore store;
  sys.clients().on_complete([&](const server::RequestPtr& r) {
    store.record(r);
    if (!vlrt && r->total_drops > 0) vlrt = r;
    if (!normal && r->total_drops == 0 && r->latency() > sim::Duration::millis(2))
      normal = r;
  });
  sys.run();

  auto dump = [](const char* title, const server::RequestPtr& r) {
    if (!r) {
      std::printf("%s: none observed\n", title);
      return;
    }
    std::printf("%s: request %llu, latency %.1f ms, %d dropped packet(s)\n", title,
                static_cast<unsigned long long>(r->id), r->latency().to_millis(),
                r->total_drops);
    for (const auto& s : r->trace)
      std::printf("  %9.3fs  %s\n", s.at.to_seconds(), s.where.c_str());
    std::puts("");
  };

  std::puts("=== micro-level event analysis (paper §IV methodology) ===\n");
  dump("normal request", normal);
  dump("VLRT request", vlrt);

  std::puts("per-hop breakdown, normal population:");
  std::puts(core::analyze_traces(store.normal()).to_table().c_str());
  std::puts("per-hop breakdown, VLRT/dropped population (latency lives in the");
  std::puts("RTO waits *outside* every tier — the CTQO signature):");
  std::puts(core::analyze_traces(store.anomalous()).to_table().c_str());

  std::puts("automatic classification of every drop episode:");
  std::puts(core::analyze_ctqo(sys).to_string().c_str());
  return 0;
}
