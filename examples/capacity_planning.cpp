// Capacity planning with the library: what is the largest closed-loop
// population each architecture sustains with zero VLRT requests, given
// that consolidation bursts WILL happen?
//
// This operationalizes the paper's abstract: the sync stack shows VLRT
// from ~43% utilization, while the fully asynchronous stack stays clean
// through 83%+.
#include <cstdio>

#include "core/experiment.h"
#include "core/scenarios.h"
#include "metrics/table.h"

namespace {

using namespace ntier;

// True when a run at this workload produced zero VLRT requests.
bool clean_at(core::Architecture arch, std::size_t sessions) {
  auto cfg = core::scenarios::fig3_consolidation_sync();
  cfg.name = "capacity-probe";
  cfg.system.arch = arch;
  cfg.workload.sessions = sessions;
  cfg.duration = sim::Duration::seconds(30);
  auto sys = core::run_system(cfg);
  return sys->latency().vlrt_count() == 0;
}

// Largest clean workload by bisection over client population.
std::size_t max_clean_workload(core::Architecture arch) {
  std::size_t lo = 500, hi = 12000;
  if (clean_at(arch, hi)) return hi;
  if (!clean_at(arch, lo)) return 0;
  while (hi - lo > 250) {
    const std::size_t mid = (lo + hi) / 2;
    (clean_at(arch, mid) ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace

int main() {
  metrics::Table table({"stack", "max_clean_WL", "approx_rps", "approx_app_util"});
  for (auto arch : {core::Architecture::kSync, core::Architecture::kNx3}) {
    const std::size_t wl = max_clean_workload(arch);
    const double rps = static_cast<double>(wl) / 7.0;
    const double util = rps * 760.5e-6 * 100.0;
    // Past ~100% the closed loop saturates at the service rate: the
    // async stack stays VLRT-free all the way to full utilization.
    const std::string util_s = util >= 100.0
                                   ? std::string("100% (saturated)")
                                   : metrics::Table::num(util, 0) + "%";
    table.add_row({core::to_string(arch), std::to_string(wl),
                   metrics::Table::num(rps, 0), util_s});
  }
  std::puts("Largest VLRT-free workload under recurring consolidation bursts:");
  std::puts(table.to_string().c_str());
  std::puts("paper: sync shows VLRT from 43% util; async stays clean at 83%+.");
  return 0;
}
