// Sweep engine: grid enumeration, replication statistics, the
// jobs-invariance determinism contract, and the indexed-heap property
// test against a lazy-cancellation std::priority_queue oracle.
#include "sweep/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <queue>
#include <stdexcept>
#include <vector>

#include "core/experiment.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sweep/grid.h"
#include "sweep/stats.h"

namespace ntier::sweep {
namespace {

// ---------------------------------------------------------------- grid

TEST(Grid, RowMajorEnumeration) {
  Grid g;
  g.add_axis("a", {1, 2, 3}).add_axis("b", {10, 20});
  ASSERT_EQ(g.axis_count(), 2u);
  ASSERT_EQ(g.size(), 6u);
  const auto pts = g.points();
  ASSERT_EQ(pts.size(), 6u);
  // Axis 0 slowest, axis 1 fastest; index == position.
  const double want[6][2] = {{1, 10}, {1, 20}, {2, 10}, {2, 20}, {3, 10}, {3, 20}};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(pts[i].index, i);
    EXPECT_EQ(pts[i].value(0), want[i][0]);
    EXPECT_EQ(pts[i].value(1), want[i][1]);
  }
  EXPECT_EQ(pts[3].label(g.axes()), "a=2 b=20");
}

TEST(Grid, SingleAxis) {
  Grid g;
  g.add_axis("wl", {3000, 5000, 7000});
  const auto pts = g.points();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[2].value(0), 7000);
  EXPECT_EQ(pts[0].label(g.axes()), "wl=3000");
}

TEST(Grid, EmptyGridHasNoPoints) {
  Grid g;
  EXPECT_EQ(g.size(), 0u);
  EXPECT_TRUE(g.points().empty());
}

TEST(Grid, RejectsBadAxes) {
  Grid g;
  g.add_axis("a", {1});
  EXPECT_THROW(g.add_axis("a", {2}), std::invalid_argument);  // duplicate
  EXPECT_THROW(g.add_axis("", {2}), std::invalid_argument);   // unnamed
  EXPECT_THROW(g.add_axis("b", {}), std::invalid_argument);   // empty values
}

// --------------------------------------------------------------- stats

TEST(Stats, TCriticalTable) {
  EXPECT_DOUBLE_EQ(t_critical_95(0), 0.0);
  EXPECT_DOUBLE_EQ(t_critical_95(1), 12.706);
  EXPECT_DOUBLE_EQ(t_critical_95(2), 4.303);
  EXPECT_DOUBLE_EQ(t_critical_95(4), 2.776);
  EXPECT_DOUBLE_EQ(t_critical_95(30), 2.042);
  // Between tabulated rows the next smaller df is used (wider interval).
  EXPECT_DOUBLE_EQ(t_critical_95(45), 2.021);
  EXPECT_DOUBLE_EQ(t_critical_95(1000), 1.96);
}

TEST(Stats, TIntervalClosedFormFixture) {
  // {1..5}: mean 3, sample stddev sqrt(2.5); half-width
  // t_{0.975,4} * s / sqrt(5) = 2.776 * sqrt(0.5).
  const Interval iv = t_interval({1, 2, 3, 4, 5});
  EXPECT_EQ(iv.n, 5u);
  EXPECT_DOUBLE_EQ(iv.mean, 3.0);
  EXPECT_NEAR(iv.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_NEAR(iv.half_width, 2.776 * std::sqrt(0.5), 1e-12);
  EXPECT_NEAR(iv.lo(), 3.0 - 2.776 * std::sqrt(0.5), 1e-12);
  EXPECT_NEAR(iv.hi(), 3.0 + 2.776 * std::sqrt(0.5), 1e-12);
}

TEST(Stats, TIntervalDegenerateInputs) {
  const Interval empty = t_interval({});
  EXPECT_EQ(empty.n, 0u);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  EXPECT_DOUBLE_EQ(empty.half_width, 0.0);
  const Interval one = t_interval({42.0});
  EXPECT_EQ(one.n, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 42.0);
  EXPECT_DOUBLE_EQ(one.half_width, 0.0);  // no spread estimate from n=1
  const Interval flat = t_interval({7, 7, 7});
  EXPECT_DOUBLE_EQ(flat.mean, 7.0);
  EXPECT_DOUBLE_EQ(flat.half_width, 0.0);
}

// -------------------------------------------------------------- engine

core::ExperimentConfig tiny_config(const GridPoint& p) {
  core::ExperimentConfig cfg;
  cfg.name = "tiny";
  cfg.workload.sessions = static_cast<std::size_t>(p.value(0));
  cfg.duration = sim::Duration::seconds(3);
  cfg.seed = 11;
  return cfg;
}

Grid tiny_grid() {
  Grid g;
  g.add_axis("sessions", {200, 400});
  return g;
}

TEST(SweepEngine, ReplicationSeedsAndShape) {
  SweepOptions opt;
  opt.replications = 2;
  opt.jobs = 1;
  const SweepResult res = run_sweep(tiny_grid(), tiny_config, opt);
  ASSERT_EQ(res.points.size(), 2u);
  EXPECT_EQ(res.replications, 2u);
  EXPECT_EQ(res.runs, 4u);
  for (const PointResult& pt : res.points) {
    ASSERT_EQ(pt.reps.size(), 2u);
    EXPECT_EQ(pt.base_seed, 11u);
    EXPECT_EQ(pt.reps[0].seed, 11u);
    EXPECT_EQ(pt.reps[1].seed, 12u);  // replication r runs cfg.seed + r
    EXPECT_GT(pt.reps[0].events, 0u);
    EXPECT_GT(pt.completed_mean, 0.0);
    EXPECT_EQ(pt.throughput_rps.n, 2u);
  }
  EXPECT_GT(res.total_events, 0u);
}

TEST(SweepEngine, ReplicationMatchesSoloRun) {
  // Replication r of a point must be bit-identical to a standalone run
  // of the same config with seed + r (the isolation invariant).
  SweepOptions opt;
  opt.replications = 2;
  opt.jobs = 2;
  const SweepResult res = run_sweep(tiny_grid(), tiny_config, opt);

  auto cfg = tiny_config(res.points[1].point);
  cfg.seed += 1;
  auto sys = core::run_system(cfg);
  const core::ExperimentSummary solo = core::summarize(*sys);
  const core::ExperimentSummary& rep = res.points[1].reps[1].summary;
  EXPECT_EQ(rep.latency.count, solo.latency.count);
  EXPECT_EQ(rep.latency.vlrt_count, solo.latency.vlrt_count);
  EXPECT_EQ(rep.total_drops, solo.total_drops);
  EXPECT_DOUBLE_EQ(rep.throughput_rps, solo.throughput_rps);
  EXPECT_EQ(rep.latency.mean.count_micros(), solo.latency.mean.count_micros());
  EXPECT_EQ(rep.latency.p99.count_micros(), solo.latency.p99.count_micros());
}

TEST(SweepEngine, JobsInvariantArtifacts) {
  // The determinism contract: the reduced CSV and manifest are
  // byte-identical for any worker count.
  SweepOptions serial;
  serial.replications = 3;
  serial.jobs = 1;
  SweepOptions parallel = serial;
  parallel.jobs = 8;
  const SweepResult a = run_sweep(tiny_grid(), tiny_config, serial);
  const SweepResult b = run_sweep(tiny_grid(), tiny_config, parallel);
  EXPECT_EQ(a.csv(), b.csv());
  EXPECT_EQ(a.manifest_json(), b.manifest_json());
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_EQ(a.total_events, b.total_events);
  // And the worker count leaks into no artifact.
  EXPECT_EQ(a.manifest_json().find("jobs"), std::string::npos);
}

TEST(SweepEngine, CsvShapeAndRegistryMerge) {
  SweepOptions opt;
  opt.replications = 2;
  opt.jobs = 2;
  const SweepResult res = run_sweep(tiny_grid(), tiny_config, opt);
  const std::string csv = res.csv();
  // Header + one row per grid point.
  std::size_t lines = 0;
  for (char c : csv)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 1u + res.points.size());
  EXPECT_EQ(csv.rfind("sessions,name,replications,", 0), 0u);
  // Registry totals: merged name-sorted sums over the replications.
  const auto& totals = res.points[0].registry_totals;
  ASSERT_FALSE(totals.empty());
  for (std::size_t i = 1; i < totals.size(); ++i)
    EXPECT_LT(totals[i - 1].first, totals[i].first);
  double want = 0.0, got = 0.0;
  for (const auto& rep : res.points[0].reps)
    for (const auto& [name, v] : rep.registry)
      if (name == totals[0].first) want += v;
  for (const auto& [name, v] : totals)
    if (name == totals[0].first) got = v;
  EXPECT_DOUBLE_EQ(got, want);
}

TEST(SweepEngine, RejectsBadOptionsAndConfigs) {
  SweepOptions opt;
  opt.replications = 0;
  EXPECT_THROW(run_sweep(tiny_grid(), tiny_config, opt), std::invalid_argument);
  opt.replications = 1;
  opt.jobs = 0;
  EXPECT_THROW(run_sweep(tiny_grid(), tiny_config, opt), std::invalid_argument);
  opt.jobs = 1;
  const auto bad_bind = [](const GridPoint&) {
    core::ExperimentConfig cfg;
    cfg.workload.sessions = 0;  // invalid: no load generators
    return cfg;
  };
  EXPECT_THROW(run_sweep(tiny_grid(), bad_bind, opt), std::invalid_argument);
}

TEST(SweepEngine, CtqoOnsetPerSlice) {
  // Synthesize onsets without running heavy configs: drive the real
  // engine over a tiny 2x2 grid, then check the slice bookkeeping on the
  // result (onset detection itself is pure reduction logic).
  Grid g;
  g.add_axis("wl", {200, 400}).add_axis("nx", {0, 1});
  SweepOptions opt;
  opt.replications = 1;
  opt.jobs = 2;
  const SweepResult res = run_sweep(g, tiny_config, opt);
  // One onset record per combination of the non-primary axes.
  ASSERT_EQ(res.onsets.size(), 2u);
  EXPECT_EQ(res.onsets[0].slice_label, "nx=0");
  EXPECT_EQ(res.onsets[1].slice_label, "nx=1");
  for (const CtqoOnset& o : res.onsets) {
    // Tiny overprovisioned runs never overflow a queue: no onset.
    EXPECT_FALSE(o.found);
  }
}

// ---------------------------------------------- indexed-heap property

// Lazy-cancellation oracle: the semantics the old event queue had and
// the new indexed heap must preserve — strict (when, seq) pop order.
class OracleQueue {
 public:
  struct Handle {
    std::shared_ptr<bool> dead;
    void cancel() {
      if (dead) *dead = true;
    }
  };

  Handle push(sim::Time when, std::uint64_t id) {
    auto dead = std::make_shared<bool>(false);
    heap_.push(Entry{when, next_seq_++, id, dead});
    return Handle{std::move(dead)};
  }

  // Pops the earliest live entry; returns its id or -1 when empty.
  std::int64_t pop() {
    while (!heap_.empty() && *heap_.top().dead) heap_.pop();
    if (heap_.empty()) return -1;
    Entry e = heap_.top();
    heap_.pop();
    *e.dead = true;
    return static_cast<std::int64_t>(e.id);
  }

  std::size_t live_size() {
    // The lazy heap only knows an upper bound; count the live ones.
    auto copy = heap_;
    std::size_t n = 0;
    while (!copy.empty()) {
      if (!*copy.top().dead) ++n;
      copy.pop();
    }
    return n;
  }

 private:
  struct Entry {
    sim::Time when;
    std::uint64_t seq;
    std::uint64_t id;
    std::shared_ptr<bool> dead;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

TEST(IndexedHeapProperty, MatchesPriorityQueueOracle) {
  // Random op mix over both queues; after every op the heap must agree
  // with the oracle on size, next_time, and the exact pop sequence.
  sim::EventQueue q;
  OracleQueue oracle;
  std::vector<sim::EventHandle> handles;
  std::vector<OracleQueue::Handle> oracle_handles;
  std::vector<std::int64_t> fired;  // ids popped from the indexed heap
  std::vector<std::int64_t> oracle_fired;
  sim::Rng rng(99);
  std::uint64_t next_id = 0;

  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t op = rng.next_u64() % 10;
    if (op < 5) {  // push (duplicate timestamps on purpose: % 64)
      const auto when = sim::Time::from_micros(
          static_cast<std::int64_t>(rng.next_u64() % 64));
      const std::uint64_t id = next_id++;
      handles.push_back(q.push(when, [id, &fired] {
        fired.push_back(static_cast<std::int64_t>(id));
      }));
      oracle_handles.push_back(oracle.push(when, id));
    } else if (op < 8 && !handles.empty()) {  // cancel a random handle
      const std::size_t i = rng.next_u64() % handles.size();
      EXPECT_EQ(handles[i].pending(), !*oracle_handles[i].dead);
      handles[i].cancel();
      oracle_handles[i].cancel();
      EXPECT_FALSE(handles[i].pending());
    } else {  // pop
      const std::int64_t want = oracle.pop();
      if (want < 0) {
        EXPECT_FALSE(q.pop_and_run());
      } else {
        ASSERT_TRUE(q.pop_and_run());
        ASSERT_FALSE(fired.empty());
        EXPECT_EQ(fired.back(), want);
        oracle_fired.push_back(want);
      }
    }
    if (step % 512 == 0) {
      EXPECT_EQ(q.size(), oracle.live_size());
      EXPECT_EQ(q.empty(), oracle.live_size() == 0);
    }
  }
  // Drain both completely and compare the full pop sequences.
  for (std::int64_t want = oracle.pop(); want >= 0; want = oracle.pop()) {
    ASSERT_TRUE(q.pop_and_run());
    oracle_fired.push_back(want);
  }
  EXPECT_FALSE(q.pop_and_run());
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(fired, oracle_fired);
}

}  // namespace
}  // namespace ntier::sweep
