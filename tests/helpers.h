// Shared scaffolding for server-layer tests.
#pragma once

#include <memory>
#include <vector>

#include "cpu/host_core.h"
#include "server/app_profile.h"
#include "server/request.h"
#include "sim/simulation.h"

namespace ntier::test {

// One-class profile whose per-tier programs are supplied directly by the
// test through custom program functions.
inline server::AppProfile one_class_profile() {
  server::AppProfile p;
  server::RequestClassProfile c;
  c.name = "only";
  c.weight = 1.0;
  c.web_pre = sim::Duration::micros(100);
  c.app_pre = sim::Duration::micros(100);
  c.app_post = sim::Duration::micros(100);
  c.db_queries = 1;
  c.db_cpu = sim::Duration::micros(100);
  p.classes.push_back(c);
  return p;
}

inline server::RequestPtr make_request(sim::Time now, std::uint64_t id = 1) {
  auto r = server::make_request();
  r->id = id;
  r->issued = now;
  r->class_index = 0;
  return r;
}

// Collects replies with their times.
struct ReplySink {
  std::vector<std::pair<std::uint64_t, sim::Time>> replies;
  sim::Simulation* sim;
  explicit ReplySink(sim::Simulation& s) : sim(&s) {}
  server::Job job(std::uint64_t id = 1) {
    server::Job j;
    j.req = make_request(sim->now(), id);
    j.reply = [this](const server::RequestPtr& r) {
      replies.emplace_back(r->id, sim->now());
    };
    return j;
  }
};

// A program of a single CPU step.
inline server::Program cpu_only(sim::Duration d) {
  return {server::WorkStep{server::WorkStep::Kind::kCpu, d}};
}

// cpu -> downstream -> cpu.
inline server::Program cpu_down_cpu(sim::Duration pre, sim::Duration post) {
  return {server::WorkStep{server::WorkStep::Kind::kCpu, pre},
          server::WorkStep{server::WorkStep::Kind::kDownstream, sim::Duration::zero()},
          server::WorkStep{server::WorkStep::Kind::kCpu, post}};
}

}  // namespace ntier::test
