// Seed-robustness: the paper's qualitative results must hold across
// random seeds, not just the default one.
#include <gtest/gtest.h>

#include "core/chain.h"
#include "core/ctqo_analyzer.h"
#include "core/experiment.h"
#include "core/scenarios.h"

namespace ntier::core {
namespace {

using sim::Duration;
using sim::Time;

class Seeded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Seeded, Fig3UpstreamCtqoHolds) {
  auto cfg = scenarios::fig3_consolidation_sync();
  cfg.seed = GetParam();
  auto sys = run_system(cfg);
  // Drops dominated by the web tier; never at MySQL.
  EXPECT_GT(sys->web()->stats().dropped, 100u);
  EXPECT_EQ(sys->db()->stats().dropped, 0u);
  EXPECT_GT(sys->web()->stats().dropped, sys->app()->stats().dropped);
  const auto report = analyze_ctqo(*sys);
  EXPECT_GE(report.upstream_episodes, 3u);
  EXPECT_GT(sys->latency().vlrt_count(), 100u);
}

TEST_P(Seeded, Fig10AsyncStaysCleanUnderBursts) {
  auto cfg = scenarios::fig10_nx3_xtomcat();
  cfg.seed = GetParam();
  auto sys = run_system(cfg);
  EXPECT_EQ(summarize(*sys).total_drops, 0u);
  EXPECT_EQ(sys->latency().vlrt_count(), 0u);
}

TEST_P(Seeded, OperatingPointStableAtWl7000) {
  ExperimentConfig cfg;
  cfg.workload.sessions = 7000;
  cfg.duration = Duration::seconds(25);
  cfg.workload.measure_from = Time::from_seconds(5);
  cfg.seed = GetParam();
  auto sys = run_system(cfg);
  const double rps =
      sys->latency().throughput_rps(Time::from_seconds(5), sys->simulation().now());
  EXPECT_NEAR(rps, 990.0, 80.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Seeded,
                         ::testing::Values(11u, 222u, 3333u, 44444u, 555555u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(Robustness, Fig12ShapeMonotone) {
  // Sync throughput declines monotonically with concurrency; async does
  // not collapse (stays within 5% of its own max).
  double prev_sync = 1e18;
  double async_max = 0.0, async_min = 1e18;
  for (std::size_t conc : {100u, 400u, 1600u}) {
    auto s = summarize(*run_system(scenarios::fig12_point(Architecture::kSync, conc)));
    EXPECT_LT(s.throughput_rps, prev_sync) << "sync should decline at " << conc;
    prev_sync = s.throughput_rps;
    auto a = summarize(*run_system(scenarios::fig12_point(Architecture::kNx3, conc)));
    async_max = std::max(async_max, a.throughput_rps);
    async_min = std::min(async_min, a.throughput_rps);
  }
  EXPECT_GT(async_min, 0.95 * async_max);
  // End-to-end factor of the collapse (paper: 1159/374 ~ 3.1x).
  auto s100 = summarize(*run_system(scenarios::fig12_point(Architecture::kSync, 100)));
  auto s1600 = summarize(*run_system(scenarios::fig12_point(Architecture::kSync, 1600)));
  EXPECT_GT(s100.throughput_rps / s1600.throughput_rps, 2.0);
}

TEST(Robustness, ChainWithStagedTier) {
  // The chain builder accepts staged tiers; a staged front absorbs a
  // burst that overflows the sync front.
  ChainConfig cfg;
  ChainTierSpec front;
  front.name = "front";
  front.staged = true;
  front.staged_cfg.ingress.queue_cap = 5000;
  front.program_fn = relay_fn(Duration::micros(60), Duration::micros(40));
  cfg.tiers.push_back(std::move(front));
  ChainTierSpec leaf;
  leaf.name = "leaf";
  leaf.sync.threads_per_process = 400;
  leaf.sync.backlog = 4000;
  leaf.program_fn = leaf_fn(Duration::micros(500));
  cfg.tiers.push_back(std::move(leaf));
  cfg.workload.sessions = 5000;
  cfg.duration = Duration::seconds(25);
  cfg.freeze_tier = 1;
  cfg.freeze.first = Time::from_seconds(8);
  cfg.freeze.pause = Duration::millis(900);
  cfg.freeze.period = Duration::seconds(60);
  ChainSystem sys(cfg);
  sys.run();
  EXPECT_EQ(sys.tier(0)->stats().dropped, 0u);
  EXPECT_GT(sys.clients().completed(), 10000u);
}

TEST(Robustness, ShedModeKeepsServerConserved) {
  auto cfg = scenarios::fig3_consolidation_sync();
  cfg.system.web_shed_on_overload = true;
  cfg.duration = Duration::seconds(15);
  auto sys = run_system(cfg);
  const auto& st = sys->web()->stats();
  EXPECT_EQ(st.accepted, st.completed + sys->web()->queued_requests());
  EXPECT_EQ(sys->clients().issued(),
            sys->clients().completed() + sys->clients().in_flight());
}

TEST(Robustness, TimeoutPlusDropsStillConserved) {
  auto cfg = scenarios::fig3_consolidation_sync();
  cfg.workload.client_timeout = Duration::seconds(4);
  cfg.duration = Duration::seconds(20);
  auto sys = run_system(cfg);
  const auto& c = sys->clients();
  EXPECT_EQ(c.issued(), c.completed() + c.in_flight());
  EXPECT_GT(c.timeouts(), 0u);
  EXPECT_LE(c.in_flight(), cfg.workload.sessions);
}

}  // namespace
}  // namespace ntier::core
