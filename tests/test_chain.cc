// Tests of the generalized arbitrary-depth chain (core/chain.h): the
// paper's CTQO mechanics must hold for n > 3 tiers.
#include "core/chain.h"

#include <gtest/gtest.h>

namespace ntier::core {
namespace {

using sim::Duration;
using sim::Time;

ChainTierSpec sync_tier(std::string name, std::size_t threads,
                        std::function<server::Program(const server::RequestClassProfile&)> fn) {
  ChainTierSpec t;
  t.name = std::move(name);
  t.async = false;
  t.sync.threads_per_process = threads;
  t.sync.max_processes = 1;
  t.sync.backlog = 128;
  t.program_fn = std::move(fn);
  return t;
}

ChainTierSpec async_tier(std::string name,
                         std::function<server::Program(const server::RequestClassProfile&)> fn) {
  ChainTierSpec t;
  t.name = std::move(name);
  t.async = true;
  t.program_fn = std::move(fn);
  return t;
}

// Four tiers: front -> relay1 -> relay2 -> leaf; leaf CPU dominates.
ChainConfig four_tier(bool all_async) {
  ChainConfig cfg;
  auto mk = [&](std::string name, std::size_t threads, auto fn) {
    return all_async ? async_tier(name, fn) : sync_tier(name, threads, fn);
  };
  cfg.tiers.push_back(mk("front", 150, relay_fn(Duration::micros(50), Duration::micros(50))));
  cfg.tiers.push_back(mk("relay1", 150, relay_fn(Duration::micros(80), Duration::micros(80))));
  cfg.tiers.push_back(mk("relay2", 150, relay_fn(Duration::micros(80), Duration::micros(80))));
  cfg.tiers.push_back(mk("leaf", 100, leaf_fn(Duration::micros(500))));
  cfg.workload.sessions = 5000;  // ~714 req/s -> leaf at ~36 %
  cfg.duration = Duration::seconds(30);
  return cfg;
}

TEST(ChainSystem, BuildsArbitraryDepth) {
  ChainSystem sys(four_tier(false));
  EXPECT_EQ(sys.tier_count(), 4u);
  EXPECT_EQ(sys.tier(0)->name(), "front");
  EXPECT_EQ(sys.tier(3)->name(), "leaf");
  EXPECT_EQ(sys.tier(0)->downstream(), sys.tier(1));
  EXPECT_EQ(sys.tier(2)->downstream(), sys.tier(3));
  EXPECT_EQ(sys.tier(3)->downstream(), nullptr);
}

TEST(ChainSystem, QuietChainServesTraffic) {
  ChainSystem sys(four_tier(false));
  sys.run();
  EXPECT_GT(sys.clients().completed(), 10000u);
  EXPECT_EQ(sys.total_drops(), 0u);
  EXPECT_EQ(sys.latency().vlrt_count(), 0u);
}

TEST(ChainSystem, UpstreamCtqoCascadesThroughFourTiers) {
  auto cfg = four_tier(false);
  cfg.freeze_tier = 3;  // millibottleneck in the leaf
  cfg.freeze.first = Time::from_seconds(8);
  cfg.freeze.period = Duration::seconds(12);
  cfg.freeze.pause = Duration::millis(900);
  ChainSystem sys(cfg);
  sys.run();
  // Drops surface at the front tier (the only tier facing an unbounded
  // source); every intermediate sync tier is bounded by its upstream's
  // thread pool.
  EXPECT_GT(sys.tier(0)->stats().dropped, 20u);
  EXPECT_EQ(sys.tier(1)->stats().dropped, 0u);
  EXPECT_EQ(sys.tier(2)->stats().dropped, 0u);
  EXPECT_EQ(sys.tier(3)->stats().dropped, 0u);
  const auto report = analyze_ctqo(sys);
  ASSERT_GE(report.episodes.size(), 1u);
  EXPECT_EQ(report.episodes[0].kind, CtqoEpisode::Kind::kUpstream);
  EXPECT_EQ(report.episodes[0].drop_tier, 0);
  EXPECT_EQ(report.episodes[0].bottleneck_tier, 3);
}

TEST(ChainSystem, QueueCascadeOrderMatchesDepth) {
  auto cfg = four_tier(false);
  cfg.freeze_tier = 3;
  cfg.freeze.first = Time::from_seconds(8);
  cfg.freeze.period = Duration::seconds(100);  // single episode
  cfg.freeze.pause = Duration::millis(900);
  ChainSystem sys(cfg);
  sys.run();
  // Each tier's queue saturates later the further it is from the
  // bottleneck: leaf-adjacent first, then upward (upstream CTQO order).
  const auto t_relay2 = sys.sampler().series("relay2.queue").first_time_at_least(
      100.0, Time::from_seconds(8), Time::from_seconds(12));
  const auto t_relay1 = sys.sampler().series("relay1.queue").first_time_at_least(
      100.0, Time::from_seconds(8), Time::from_seconds(12));
  const auto t_front = sys.sampler().series("front.queue").first_time_at_least(
      100.0, Time::from_seconds(8), Time::from_seconds(12));
  ASSERT_NE(t_relay2, Time::max());
  ASSERT_NE(t_relay1, Time::max());
  ASSERT_NE(t_front, Time::max());
  EXPECT_LE(t_relay2, t_relay1);
  EXPECT_LE(t_relay1, t_front);
}

TEST(ChainSystem, AllAsyncChainAbsorbsMillibottleneck) {
  auto cfg = four_tier(true);
  cfg.freeze_tier = 3;
  cfg.freeze.first = Time::from_seconds(8);
  cfg.freeze.period = Duration::seconds(12);
  cfg.freeze.pause = Duration::millis(900);
  ChainSystem sys(cfg);
  sys.run();
  EXPECT_EQ(sys.total_drops(), 0u);
  EXPECT_EQ(sys.latency().vlrt_count(), 0u);
  ASSERT_NE(sys.injector(), nullptr);
  EXPECT_GE(sys.injector()->pause_times().size(), 2u);
}

TEST(ChainSystem, SyncInflightBoundedByUpstreamThreads) {
  auto cfg = four_tier(false);
  cfg.freeze_tier = 3;
  cfg.freeze.first = Time::from_seconds(5);
  cfg.freeze.period = Duration::seconds(10);
  cfg.freeze.pause = Duration::millis(900);
  ChainSystem sys(cfg);
  sys.run();
  // Tier k+1 never holds more than tier k's thread count (plus its own
  // processing) — the invariant that localizes drops at the front.
  EXPECT_LE(sys.sampler().series("relay1.queue").max_value(), 150.0 + 0.5);
  EXPECT_LE(sys.sampler().series("leaf.queue").max_value(), 150.0 + 0.5);
}

TEST(ChainSystem, ConservationPerTier) {
  auto cfg = four_tier(false);
  cfg.freeze_tier = 3;
  cfg.freeze.first = Time::from_seconds(5);
  cfg.freeze.pause = Duration::millis(500);
  ChainSystem sys(cfg);
  sys.run();
  EXPECT_EQ(sys.clients().issued(),
            sys.clients().completed() + sys.clients().in_flight());
  for (std::size_t i = 0; i < sys.tier_count(); ++i) {
    const auto& st = sys.tier(i)->stats();
    EXPECT_EQ(st.accepted, st.completed + sys.tier(i)->queued_requests())
        << sys.tier(i)->name();
  }
}

TEST(ChainSystem, DiskTierWorks) {
  ChainConfig cfg;
  cfg.tiers.push_back(sync_tier("front", 200, relay_fn(Duration::micros(50),
                                                       Duration::micros(50))));
  auto leaf = sync_tier("db", 100, leaf_fn(Duration::micros(300), Duration::micros(20)));
  leaf.has_disk = true;
  cfg.tiers.push_back(std::move(leaf));
  cfg.workload.sessions = 1000;
  cfg.duration = Duration::seconds(10);
  ChainSystem sys(cfg);
  sys.run();
  ASSERT_NE(sys.tier_disk(1), nullptr);
  EXPECT_GT(sys.tier_disk(1)->ops_completed(), 1000u);
  EXPECT_TRUE(sys.sampler().has_series("db.disk.busy"));
  EXPECT_EQ(sys.total_drops(), 0u);
}

TEST(ChainSystem, TwoTierMinimalChain) {
  ChainConfig cfg;
  cfg.tiers.push_back(sync_tier("front", 150, relay_fn(Duration::micros(50),
                                                       Duration::micros(50))));
  cfg.tiers.push_back(sync_tier("back", 100, leaf_fn(Duration::micros(400))));
  cfg.workload.sessions = 1000;
  cfg.duration = Duration::seconds(10);
  ChainSystem sys(cfg);
  sys.run();
  EXPECT_GT(sys.clients().completed(), 1000u);
  EXPECT_EQ(sys.total_drops(), 0u);
}

TEST(ChainSystem, DeterministicForSeed) {
  auto run_once = [] {
    auto cfg = four_tier(false);
    cfg.freeze_tier = 3;
    cfg.freeze.first = Time::from_seconds(5);
    cfg.freeze.pause = Duration::millis(800);
    cfg.duration = Duration::seconds(15);
    ChainSystem sys(cfg);
    sys.run();
    return std::tuple(sys.clients().completed(), sys.total_drops());
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ntier::core
