// Property-style parameterized sweeps over architectures and workloads
// (DESIGN.md §6 invariants).
#include <gtest/gtest.h>

#include "core/ctqo_analyzer.h"
#include "core/experiment.h"
#include "core/scenarios.h"

namespace ntier::core {
namespace {

using sim::Duration;
using sim::Time;

// --- Invariant 5: no millibottleneck => no VLRT, any arch x workload ----

struct QuietCase {
  Architecture arch;
  std::size_t sessions;
};

class QuietSystem : public ::testing::TestWithParam<QuietCase> {};

TEST_P(QuietSystem, NoVlrtNoDrops) {
  const auto p = GetParam();
  ExperimentConfig cfg;
  cfg.system.arch = p.arch;
  cfg.workload.sessions = p.sessions;
  cfg.duration = Duration::seconds(20);
  cfg.seed = 7 + p.sessions;
  auto sys = run_system(cfg);
  EXPECT_EQ(sys->latency().vlrt_count(), 0u);
  EXPECT_EQ(sys->web()->stats().dropped, 0u);
  EXPECT_EQ(sys->app()->stats().dropped, 0u);
  EXPECT_EQ(sys->db()->stats().dropped, 0u);
  EXPECT_GT(sys->clients().completed(), p.sessions);
}

// Sync-app-tier systems are capped at WL 6000 (~64 % util): above that,
// purely stochastic arrival bursts occasionally peg the app tier for a
// couple of seconds — a *natural* millibottleneck that overflows
// MaxSysQDepth exactly as the paper predicts (we saw Apache hit 276 and
// drop at WL 7000 with no injected interference at all). The fully
// asynchronous stack is drop-free even at WL 8000 (83-85 % util) — the
// abstract's headline contrast.
INSTANTIATE_TEST_SUITE_P(
    ArchWorkloadGrid, QuietSystem,
    ::testing::Values(QuietCase{Architecture::kSync, 2000},
                      QuietCase{Architecture::kSync, 4000},
                      QuietCase{Architecture::kSync, 6000},
                      QuietCase{Architecture::kNx1, 4000},
                      QuietCase{Architecture::kNx1, 6000},
                      QuietCase{Architecture::kNx2, 4000},
                      QuietCase{Architecture::kNx2, 6000},
                      QuietCase{Architecture::kNx3, 4000},
                      QuietCase{Architecture::kNx3, 7000},
                      QuietCase{Architecture::kNx3, 8000}),
    [](const auto& info) {
      return std::string(info.param.arch == Architecture::kSync   ? "sync"
                         : info.param.arch == Architecture::kNx1  ? "nx1"
                         : info.param.arch == Architecture::kNx2  ? "nx2"
                                                                  : "nx3") +
             "_wl" + std::to_string(info.param.sessions);
    });

// --- Invariant 4: closed-loop law across workloads ----------------------

class ClosedLoop : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ClosedLoop, ThroughputTracksSessions) {
  const std::size_t n = GetParam();
  ExperimentConfig cfg;
  cfg.workload.sessions = n;
  cfg.duration = Duration::seconds(30);
  cfg.workload.measure_from = Time::from_seconds(10);
  cfg.seed = n;
  auto sys = run_system(cfg);
  const double rps =
      sys->latency().throughput_rps(Time::from_seconds(10), sys->simulation().now());
  const double expected = static_cast<double>(n) / 7.0;
  EXPECT_NEAR(rps, expected, 0.08 * expected + 5.0);
}

INSTANTIATE_TEST_SUITE_P(Workloads, ClosedLoop,
                         ::testing::Values(1000u, 2000u, 4000u, 6000u, 8000u),
                         [](const auto& info) {
                           return "wl" + std::to_string(info.param);
                         });

// --- Invariant 2: queue bounds under every bottleneck scenario -----------

class PaperScenario : public ::testing::TestWithParam<int> {
 public:
  static ExperimentConfig config(int id) {
    using namespace scenarios;
    switch (id) {
      case 0: return fig3_consolidation_sync();
      case 1: return fig5_logflush_sync();
      case 2: return fig7_nx1();
      case 3: return fig8_nx2_mysql();
      case 4: return fig9_nx2_xtomcat();
      case 5: return fig10_nx3_xtomcat();
      default: return fig11_nx3_logflush();
    }
  }
};

TEST_P(PaperScenario, QueuesRespectMaxSysQDepth) {
  auto cfg = PaperScenario::config(GetParam());
  cfg.duration = std::min(cfg.duration, Duration::seconds(30));
  auto sys = run_system(cfg);
  for (auto tier : {Tier::kWeb, Tier::kApp, Tier::kDb}) {
    const auto* srv = sys->tier(tier);
    const double peak = sys->sampler().series(srv->name() + ".queue").max_value();
    EXPECT_LE(peak, static_cast<double>(srv->max_sys_q_depth()))
        << srv->name() << " exceeded its admission bound";
  }
}

TEST_P(PaperScenario, UtilizationSamplesWithinRange) {
  auto cfg = PaperScenario::config(GetParam());
  cfg.duration = std::min(cfg.duration, Duration::seconds(30));
  auto sys = run_system(cfg);
  for (auto tier : {Tier::kWeb, Tier::kApp, Tier::kDb}) {
    const auto& name = sys->tier_vm(tier)->name();
    for (const char* suffix : {".cpu", ".demand", ".stall"}) {
      const auto& line = sys->sampler().series(name + suffix);
      EXPECT_GE(line.max_value(), 0.0);
      EXPECT_LE(line.max_value(), 100.5) << name << suffix;
    }
  }
}

TEST_P(PaperScenario, DropsAndOnlyDropsCauseVlrt) {
  // Invariant 7: a request dropped k times carries >= k RTOs of latency;
  // an undropped request never reaches the 3 s VLRT threshold (queueing
  // alone stays in the sub-3 s continuum).
  auto cfg = PaperScenario::config(GetParam());
  cfg.duration = std::min(cfg.duration, Duration::seconds(30));
  NTierSystem sys(cfg);
  std::uint64_t checked = 0;
  sys.clients().on_complete([&](const server::RequestPtr& r) {
    ++checked;
    if (r->total_drops > 0) {
      EXPECT_GE(r->latency(), Duration::seconds(3) * r->total_drops)
          << "request " << r->id << " with " << r->total_drops << " drops";
    } else {
      EXPECT_LT(r->latency(), Duration::seconds(3));
    }
  });
  sys.run();
  EXPECT_GT(checked, 1000u);
}

TEST_P(PaperScenario, ConservationHolds) {
  auto cfg = PaperScenario::config(GetParam());
  cfg.duration = std::min(cfg.duration, Duration::seconds(30));
  auto sys = run_system(cfg);
  const auto& c = sys->clients();
  EXPECT_EQ(c.issued(), c.completed() + c.in_flight());
  for (auto tier : {Tier::kWeb, Tier::kApp, Tier::kDb}) {
    const auto* srv = sys->tier(tier);
    EXPECT_EQ(srv->stats().accepted,
              srv->stats().completed + srv->queued_requests())
        << srv->name();
  }
}

std::string scenario_name(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"fig3", "fig5", "fig7", "fig8", "fig9", "fig10", "fig11"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, PaperScenario, ::testing::Range(0, 7),
                         scenario_name);

// --- Invariant 3: sync chains bound downstream in-flight -----------------

class SyncChainBound : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SyncChainBound, DbInflightNeverExceedsPool) {
  ExperimentConfig cfg;
  cfg.system.arch = Architecture::kSync;
  cfg.system.db_pool = GetParam();
  cfg.workload.sessions = 7000;
  cfg.duration = Duration::seconds(15);
  cfg.bottleneck.kind = MillibottleneckSpec::Kind::kConsolidationBatch;
  cfg.bottleneck.target = Tier::kDb;  // stress the DB tier itself
  cfg.bottleneck.batch.first_at = Time::from_seconds(3);
  auto sys = run_system(cfg);
  EXPECT_LE(sys->sampler().series("mysql.queue").max_value(),
            static_cast<double>(GetParam()) + 0.5);
  EXPECT_EQ(sys->db()->stats().dropped, 0u);
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, SyncChainBound, ::testing::Values(10u, 50u, 100u),
                         [](const auto& info) {
                           return "pool" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace ntier::core
