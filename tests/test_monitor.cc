#include <gtest/gtest.h>

#include "helpers.h"
#include "monitor/collectl.h"
#include "monitor/sampler.h"
#include "monitor/vlrt_tracker.h"
#include "server/sync_server.h"

namespace ntier::monitor {
namespace {

using sim::Duration;
using sim::Simulation;
using sim::Time;

// --- Sampler -------------------------------------------------------------

TEST(Sampler, VmUtilizationWindows) {
  Simulation sim;
  cpu::HostCpu host(sim, 1.0);
  auto* vm = host.add_vm("a");
  Sampler sampler(sim, Duration::millis(50));
  sampler.track_vm("a", vm);
  sampler.start();
  // 100% busy from 0 to 100ms, idle after.
  vm->submit(Duration::millis(100), [] {});
  sim.run_until(Time::from_seconds(0.3));
  const auto& cpu = sampler.series("a.cpu");
  EXPECT_NEAR(cpu.value_at(0), 100.0, 1.0);
  EXPECT_NEAR(cpu.value_at(1), 100.0, 1.0);
  EXPECT_NEAR(cpu.value_at(2), 0.0, 1.0);
}

TEST(Sampler, DemandShowsContention) {
  Simulation sim;
  cpu::HostCpu host(sim, 1.0);
  auto* a = host.add_vm("a");
  auto* b = host.add_vm("b");
  Sampler sampler(sim, Duration::millis(50));
  sampler.track_vm("a", a);
  sampler.start();
  a->submit(Duration::millis(50), [] {});
  b->submit(Duration::millis(50), [] {});
  sim.run_until(Time::from_seconds(0.2));
  // a runs at 50% for 100ms but wants CPU the whole time.
  EXPECT_NEAR(sampler.series("a.cpu").value_at(0), 50.0, 2.0);
  EXPECT_NEAR(sampler.series("a.demand").value_at(0), 100.0, 2.0);
}

TEST(Sampler, StallSeriesDuringFreeze) {
  Simulation sim;
  cpu::HostCpu host(sim, 1.0);
  auto* vm = host.add_vm("a");
  Sampler sampler(sim, Duration::millis(50));
  sampler.track_vm("a", vm);
  sampler.start();
  vm->submit(Duration::millis(10), [] {});
  vm->freeze_for(Duration::millis(50));
  sim.run_until(Time::from_seconds(0.2));
  EXPECT_NEAR(sampler.series("a.stall").value_at(0), 100.0, 2.0);
}

TEST(Sampler, ServerQueueGauge) {
  Simulation sim;
  cpu::HostCpu host(sim, 1.0);
  auto* vm = host.add_vm("srv");
  auto profile = test::one_class_profile();
  server::SyncServer srv(
      sim, "srv", vm, &profile,
      [](const server::RequestClassProfile&) {
        return test::cpu_only(Duration::millis(200));
      },
      server::SyncConfig{.threads_per_process = 1});
  Sampler sampler(sim, Duration::millis(50));
  sampler.track_server("srv", &srv);
  sampler.start();
  test::ReplySink sink(sim);
  srv.offer(sink.job(1));
  srv.offer(sink.job(2));
  sim.run_until(Time::from_seconds(0.1));
  EXPECT_EQ(sampler.series("srv.queue").value_at(1), 2.0);
}

TEST(Sampler, IoBusySeries) {
  Simulation sim;
  cpu::IoDevice dev(sim, "d");
  Sampler sampler(sim, Duration::millis(50));
  sampler.track_io("d", &dev);
  sampler.start();
  dev.submit_service(Duration::millis(75), [] {});
  sim.run_until(Time::from_seconds(0.2));
  EXPECT_NEAR(sampler.series("d.busy").value_at(0), 100.0, 1.0);
  EXPECT_NEAR(sampler.series("d.busy").value_at(1), 50.0, 2.0);
  EXPECT_NEAR(sampler.series("d.busy").value_at(2), 0.0, 1.0);
}

TEST(Sampler, SaturatedWindows) {
  Simulation sim;
  cpu::HostCpu host(sim, 1.0);
  auto* vm = host.add_vm("a");
  Sampler sampler(sim, Duration::millis(50));
  sampler.track_vm("a", vm);
  sampler.start();
  sim.after(Duration::millis(100), [&] { vm->submit(Duration::millis(100), [] {}); });
  sim.run_until(Time::from_seconds(0.5));
  const auto sat = sampler.saturated_windows("a");
  ASSERT_GE(sat.size(), 2u);
  EXPECT_EQ(sat[0], Time::from_micros(100'000));
}

TEST(Sampler, UnknownSeriesThrows) {
  Simulation sim;
  Sampler sampler(sim);
  EXPECT_THROW((void)sampler.series("nope"), std::out_of_range);
  EXPECT_FALSE(sampler.has_series("nope"));
}

TEST(Sampler, SeriesNamesListed) {
  Simulation sim;
  cpu::HostCpu host(sim, 1.0);
  auto* vm = host.add_vm("a");
  Sampler sampler(sim);
  sampler.track_vm("a", vm);
  const auto names = sampler.series_names();
  EXPECT_EQ(names.size(), 3u);
  EXPECT_TRUE(sampler.has_series("a.cpu"));
  EXPECT_TRUE(sampler.has_series("a.demand"));
  EXPECT_TRUE(sampler.has_series("a.stall"));
}

// --- Collectl ------------------------------------------------------------

TEST(Collectl, FlushScheduleMatchesPaper) {
  Simulation sim;
  cpu::IoDevice disk(sim, "d");
  Collectl::Config cfg;
  cfg.first_flush = Time::from_seconds(10);
  cfg.flush_period = Duration::seconds(30);
  Collectl collectl(sim, &disk, cfg);
  sim.run_until(Time::from_seconds(80));
  // 10, 40, 70 — the Fig 5(a) marks.
  ASSERT_EQ(collectl.flush_times().size(), 3u);
  EXPECT_EQ(collectl.flush_times()[0], Time::from_seconds(10));
  EXPECT_EQ(collectl.flush_times()[1], Time::from_seconds(40));
  EXPECT_EQ(collectl.flush_times()[2], Time::from_seconds(70));
  EXPECT_EQ(collectl.flushes_completed(), 3u);
}

TEST(Collectl, FlushOccupiesDiskHundredsOfMs) {
  Simulation sim;
  cpu::IoDevice disk(sim, "d");  // 50 MiB/s
  Collectl::Config cfg;
  cfg.first_flush = Time::from_seconds(1);
  cfg.bytes_per_flush = 20ull * 1024 * 1024;
  Collectl collectl(sim, &disk, cfg);
  sim.run_until(Time::from_seconds(2));
  const double busy = disk.busy_seconds_until(sim.now());
  EXPECT_NEAR(busy, 0.4, 0.02);
}

TEST(Collectl, SmallDbIoStallsBehindFlush) {
  Simulation sim;
  cpu::IoDevice disk(sim, "d");
  Collectl::Config cfg;
  cfg.first_flush = Time::from_seconds(1);
  Collectl collectl(sim, &disk, cfg);
  double done = -1;
  sim.after(Duration::millis(1001), [&] {
    disk.submit_service(Duration::micros(15), [&] { done = sim.now().to_seconds(); });
  });
  sim.run_until(Time::from_seconds(3));
  EXPECT_GT(done, 1.3);  // stalled behind the flush
}

// --- LatencyCollector ----------------------------------------------------

server::RequestPtr finished(double issued_s, double completed_s, int drops = 0) {
  auto r = server::make_request();
  r->issued = Time::from_seconds(issued_s);
  r->completed = Time::from_seconds(completed_s);
  r->total_drops = drops;
  return r;
}

TEST(LatencyCollector, CountsAndHistogram) {
  LatencyCollector c;
  c.record(finished(0.0, 0.005));
  c.record(finished(0.0, 3.05, 1));
  EXPECT_EQ(c.completed(), 2u);
  EXPECT_EQ(c.vlrt_count(), 1u);
  EXPECT_EQ(c.dropped_request_count(), 1u);
  EXPECT_EQ(c.histogram().total(), 2u);
}

TEST(LatencyCollector, VlrtWindowPlacement) {
  LatencyCollector c;
  c.record(finished(0.0, 5.01));  // VLRT completing at 5.01s
  c.record(finished(5.0, 5.02));  // normal
  EXPECT_DOUBLE_EQ(c.vlrt_per_window().value_at_time(Time::from_seconds(5.01)), 1.0);
}

TEST(LatencyCollector, ThroughputWindows) {
  LatencyCollector c;
  for (int i = 0; i < 100; ++i) c.record(finished(0.0, 1.0 + i * 0.01));
  EXPECT_NEAR(c.throughput_rps(Time::from_seconds(1), Time::from_seconds(2)), 100.0, 1.0);
}

TEST(LatencyCollector, DigestFields) {
  LatencyCollector c;
  for (int i = 1; i <= 100; ++i) c.record(finished(0.0, i * 0.001));
  const auto d = c.digest();
  EXPECT_EQ(d.count, 100u);
  EXPECT_NEAR(d.p50.to_millis(), 50.0, 2.0);
  EXPECT_NEAR(d.max.to_millis(), 100.0, 0.5);
  EXPECT_EQ(d.vlrt_count, 0u);
}

TEST(LatencyCollector, FailedRequests) {
  LatencyCollector c;
  auto r = finished(0.0, 21.0, 7);
  r->failed = true;
  c.record(r);
  EXPECT_EQ(c.failed_count(), 1u);
}

TEST(LatencyCollector, CustomThreshold) {
  LatencyCollector::Config cfg;
  cfg.vlrt_threshold = Duration::seconds(1);
  LatencyCollector c(cfg);
  c.record(finished(0.0, 1.5));
  EXPECT_EQ(c.vlrt_count(), 1u);
  EXPECT_EQ(c.vlrt_threshold(), Duration::seconds(1));
}

}  // namespace
}  // namespace ntier::monitor
