#include "metrics/summary.h"

#include "sim/random.h"

#include <gtest/gtest.h>

namespace ntier::metrics {
namespace {

TEST(Running, EmptyIsZero) {
  Running r;
  EXPECT_EQ(r.count(), 0u);
  EXPECT_DOUBLE_EQ(r.mean(), 0.0);
  EXPECT_DOUBLE_EQ(r.variance(), 0.0);
  EXPECT_DOUBLE_EQ(r.min(), 0.0);
}

TEST(Running, MeanMinMax) {
  Running r;
  for (double v : {4.0, 2.0, 6.0}) r.add(v);
  EXPECT_DOUBLE_EQ(r.mean(), 4.0);
  EXPECT_DOUBLE_EQ(r.min(), 2.0);
  EXPECT_DOUBLE_EQ(r.max(), 6.0);
  EXPECT_EQ(r.count(), 3u);
}

TEST(Running, SampleVariance) {
  Running r;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) r.add(v);
  EXPECT_NEAR(r.variance(), 4.571428, 1e-5);
  EXPECT_NEAR(r.stddev(), 2.13809, 1e-4);
}

TEST(Running, SingleSampleVarianceZero) {
  Running r;
  r.add(42.0);
  EXPECT_DOUBLE_EQ(r.variance(), 0.0);
}

TEST(DispersionIndex, ExponentialArrivalsScvNearOne) {
  DispersionIndex d;
  sim::Rng rng(3);
  sim::Time t;
  for (int i = 0; i < 20000; ++i) {
    t += rng.exp_duration(sim::Duration::millis(10));
    d.add_arrival(t);
  }
  EXPECT_NEAR(d.scv(), 1.0, 0.08);
}

TEST(DispersionIndex, DeterministicArrivalsScvZero) {
  DispersionIndex d;
  for (int i = 0; i < 100; ++i)
    d.add_arrival(sim::Time::from_micros(i * 1000));
  EXPECT_NEAR(d.scv(), 0.0, 1e-9);
}

TEST(DispersionIndex, BurstyArrivalsScvHigh) {
  DispersionIndex d;
  sim::Time t;
  // 10 tight arrivals then a long gap, repeatedly: SCV >> 1.
  for (int g = 0; g < 50; ++g) {
    for (int i = 0; i < 10; ++i) {
      t += sim::Duration::micros(100);
      d.add_arrival(t);
    }
    t += sim::Duration::seconds(1);
  }
  EXPECT_GT(d.scv(), 3.0);
}

TEST(LatencyDigest, ToStringContainsFields) {
  LatencyDigest d;
  d.count = 10;
  d.mean = sim::Duration::millis(5);
  d.p50 = sim::Duration::millis(4);
  d.p99 = sim::Duration::millis(50);
  d.p999 = sim::Duration::millis(100);
  d.max = sim::Duration::seconds(3);
  d.vlrt_count = 2;
  const std::string s = d.to_string();
  EXPECT_NE(s.find("n=10"), std::string::npos);
  EXPECT_NE(s.find("vlrt=2"), std::string::npos);
  EXPECT_NE(s.find("3000.0ms"), std::string::npos);
}

}  // namespace
}  // namespace ntier::metrics
